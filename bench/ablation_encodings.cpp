//===- bench/ablation_encodings.cpp - Cardinality-encoding ablation --------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Design-choice ablation (DESIGN.md): the sequential-counter cardinality
/// encoding vs the naive pairwise expansion, and the effect of the
/// cube-split threshold (the paper's ET heuristic) on parallel solving.
/// The expected shape: sequential counters scale polynomially where the
/// pairwise encoding blows up combinatorially, and a moderate split
/// threshold beats both no splitting and over-splitting.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

static void BM_Ablation_Cardinality(benchmark::State &State) {
  bool Naive = State.range(0) != 0;
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 1);
  VerifyOptions O;
  O.CardEnc = Naive ? smt::CardinalityEncoding::PairwiseNaive
                    : smt::CardinalityEncoding::SequentialCounter;
  State.SetLabel(Naive ? "pairwise-naive" : "sequential-counter");
  for (auto _ : State) {
    VerificationResult R = verifyScenario(S, O);
    if (!R.Verified) {
      State.SkipWithError("verification failed");
      return;
    }
    State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
  }
}

static void BM_Ablation_SplitThreshold(benchmark::State &State) {
  uint32_t Threshold = static_cast<uint32_t>(State.range(0));
  StabilizerCode Code = makeRotatedSurfaceCode(5);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 2);
  VerifyOptions O;
  O.Parallel = Threshold > 0;
  O.SplitThreshold = Threshold;
  for (auto _ : State) {
    VerificationResult R = verifyScenario(S, O);
    if (!R.Verified) {
      State.SkipWithError("verification failed");
      return;
    }
    State.counters["cubes"] = static_cast<double>(R.NumCubes);
  }
}

BENCHMARK(BM_Ablation_Cardinality)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_SplitThreshold)
    ->Arg(0)  // sequential baseline
    ->Arg(10) // mild splitting
    ->Arg(25) // the paper's "n" default
    ->Arg(40) // aggressive splitting
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
