//===- bench/chrono_ab.cpp - Chronological backtracking A/B ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chronological backtracking against classic backjumping on the two
/// workloads that decided the Auto policy (BENCH_table3.json,
/// `chrono_backtrack`): the incremental tanner1 distance search with
/// native XOR, where trail-saving across weight-bound probes wins
/// ~20%, and the surface9 t=4 cube walk, where prefix-crossing chrono
/// measurably LOSES — deep backjumps below the cube prefix let the
/// learnt clause assert early, and bt-by-one inflates conflicts ~18%.
/// Both sides of each A/B run interleaved in one binary so the numbers
/// share a machine state. The surface benchmarks are heavy (~5 s per
/// iteration); filter with --benchmark_filter='Tanner' for quick runs.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

namespace {

void runTanner1Distance(benchmark::State &State, smt::ChronoMode Chrono) {
  StabilizerCode Code = makeTannerISubstitute();
  State.SetLabel(Code.Name + (Chrono == smt::ChronoMode::On
                                  ? " xor=on chrono=on"
                                  : " xor=on chrono=off"));
  VerifyOptions Opts;
  Opts.Xor = smt::XorMode::On;
  Opts.Chrono = Chrono;
  for (auto _ : State) {
    DistanceResult R = computeDistance(Code, Opts);
    if (!R.Ok || R.Distance != Code.Distance) {
      State.SkipWithError(("distance search failed for " + Code.Name).c_str());
      return;
    }
    State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
    State.counters["chrono_bts"] =
        static_cast<double>(R.Stats.ChronoBacktracks);
    State.counters["saved_lits"] =
        static_cast<double>(R.Stats.TrailSavedLits);
  }
}

void runSurfaceMemory(benchmark::State &State, smt::ChronoMode Chrono) {
  StabilizerCode Code = makeRotatedSurfaceCode(9);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 4);
  State.SetLabel(std::string("surface9 t=4 j=1 chrono=") +
                 (Chrono == smt::ChronoMode::On ? "on" : "off"));
  VerifyOptions VO;
  VO.Parallel = true;
  VO.Threads = 1; // per-core number: the tracked JSON row is --jobs 1
  VO.Chrono = Chrono;
  for (auto _ : State) {
    VerificationResult R = verifyScenario(S, VO);
    if (!R.StructuralOk || !R.Verified) {
      State.SkipWithError("verification failed");
      return;
    }
    State.counters["cubes"] = static_cast<double>(R.NumCubes);
    State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
    State.counters["conflicts_per_cube"] =
        static_cast<double>(R.Stats.Conflicts) /
        static_cast<double>(R.CubesSolved ? R.CubesSolved : 1);
    State.counters["chrono_bts"] =
        static_cast<double>(R.Stats.ChronoBacktracks);
  }
}

void BM_DistanceTanner1Chrono(benchmark::State &State) {
  runTanner1Distance(State, smt::ChronoMode::On);
}
void BM_DistanceTanner1Classic(benchmark::State &State) {
  runTanner1Distance(State, smt::ChronoMode::Off);
}
void BM_Surface9T4Chrono(benchmark::State &State) {
  runSurfaceMemory(State, smt::ChronoMode::On);
}
void BM_Surface9T4Classic(benchmark::State &State) {
  runSurfaceMemory(State, smt::ChronoMode::Off);
}

} // namespace

BENCHMARK(BM_DistanceTanner1Chrono)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistanceTanner1Classic)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Surface9T4Chrono)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Surface9T4Classic)->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
