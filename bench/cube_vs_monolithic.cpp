//===- bench/cube_vs_monolithic.cpp - Cube-path regression tracking --------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks the PR 1 regression by number instead of anecdote: surface-code
/// memory verification with the cube-and-conquer path versus the
/// monolithic solve, at growing distance. The PR 1 engine lost to
/// monolithic on surface9 t=4 (33.7 s vs 12.8 s on the original box);
/// the preprocessed, incrementally-reused pipeline must keep the cube
/// path AHEAD of monolithic. The surface9 rows reproduce the exact
/// BENCH_table3.json configuration; smaller distances keep CI runs
/// honest but cheap. Also benchmarks the preprocessing toggle so the
/// GF(2) layer's cost/benefit stays visible.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

namespace {

void runSurfaceMemory(benchmark::State &State, size_t Distance,
                      uint32_t MaxErrors, bool Cube, bool Preprocess) {
  StabilizerCode Code = makeRotatedSurfaceCode(Distance);
  Scenario S =
      makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, MaxErrors);
  VerifyOptions VO;
  VO.Parallel = Cube;
  VO.Threads = 1; // per-core comparison: same budget for both strategies
  VO.Preprocess = Preprocess;
  uint64_t Cubes = 0, Conflicts = 0, Pruned = 0;
  for (auto _ : State) {
    VerificationResult R = verifyScenario(S, VO);
    if (!R.StructuralOk || !R.Verified)
      State.SkipWithError("verification failed");
    Cubes = R.NumCubes;
    Pruned = R.CubesPruned;
    Conflicts = R.Stats.Conflicts;
  }
  State.counters["cubes"] = static_cast<double>(Cubes);
  State.counters["pruned"] = static_cast<double>(Pruned);
  State.counters["conflicts"] = static_cast<double>(Conflicts);
}

} // namespace

#define SURFACE_BENCH(Name, D, T, Cube, Prep)                                  \
  static void Name(benchmark::State &State) {                                  \
    runSurfaceMemory(State, D, T, Cube, Prep);                                 \
  }                                                                            \
  BENCHMARK(Name)->Unit(benchmark::kMillisecond)

SURFACE_BENCH(BM_Surface5T2_Cube, 5, 2, true, true);
SURFACE_BENCH(BM_Surface5T2_Monolithic, 5, 2, false, true);
SURFACE_BENCH(BM_Surface7T3_Cube, 7, 3, true, true);
SURFACE_BENCH(BM_Surface7T3_Cube_NoPreprocess, 7, 3, true, false);
SURFACE_BENCH(BM_Surface7T3_Monolithic, 7, 3, false, true);

// The PR 1 regression case itself. Heavy (~10 s per iteration on a dev
// box); benchmark filters keep it out of quick runs:
//   bench_cube_vs_monolithic --benchmark_filter='Surface9'
SURFACE_BENCH(BM_Surface9T4_Cube, 9, 4, true, true)->Iterations(1);
SURFACE_BENCH(BM_Surface9T4_Monolithic, 9, 4, false, true)->Iterations(1);

BENCHMARK_MAIN();
