//===- bench/dist_overhead.cpp - Distribution-layer overhead ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the distributed path costs over the in-process engine at
/// equal parallelism: the same scenario verified (a) on the local cube
/// engine at one slot and (b) through a coordinator + one single-slot
/// loopback worker — full problem serialization, batch framing, result
/// decoding and scheduling, no sockets. The --jobs 1 delta is the pure
/// codec + scheduler overhead and must stay below 10% on surface9 t=4
/// (BENCH_table3.json, dist_overhead records); surface7 t=3 tracks the
/// smaller-problem regime where fixed costs weigh relatively more.
///
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "dist/Transport.h"
#include "dist/Worker.h"
#include "engine/VerificationEngine.h"
#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace veriqec;

namespace {

Scenario surfaceMemory(size_t Distance, uint32_t MaxErrors) {
  StabilizerCode Code = makeRotatedSurfaceCode(Distance);
  return makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, MaxErrors);
}

void reportCounters(benchmark::State &State, const VerificationResult &R) {
  State.counters["cubes"] = static_cast<double>(R.NumCubes);
  State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
  State.counters["verified"] = R.Verified ? 1 : 0;
}

void runInProcess(benchmark::State &State, size_t Distance,
                  uint32_t MaxErrors) {
  Scenario S = surfaceMemory(Distance, MaxErrors);
  VerifyOptions VO;
  VO.Parallel = true;
  engine::VerificationEngine Engine(1);
  VerificationResult Last;
  for (auto _ : State)
    Last = Engine.verifyAll({&S, 1}, VO).front();
  reportCounters(State, Last);
}

void runLoopbackDist(benchmark::State &State, size_t Distance,
                     uint32_t MaxErrors) {
  Scenario S = surfaceMemory(Distance, MaxErrors);
  VerifyOptions VO;
  VO.Parallel = true;
  dist::Coordinator Coord;
  std::vector<std::thread> Workers = dist::spawnLoopbackWorkers(Coord, 1);
  if (!Coord.waitForWorkers(1, 10000)) {
    State.SkipWithError("loopback worker failed to register");
    Coord.shutdownWorkers();
    Workers.front().join();
    return;
  }
  engine::VerificationEngine Engine(1);
  VerificationResult Last;
  for (auto _ : State)
    Last = Engine.verifyAll({&S, 1}, VO, Coord).front();
  reportCounters(State, Last);
  Coord.shutdownWorkers();
  Workers.front().join();
}

void BM_Surface7T3_InProcess(benchmark::State &State) {
  runInProcess(State, 7, 3);
}
void BM_Surface7T3_LoopbackDist(benchmark::State &State) {
  runLoopbackDist(State, 7, 3);
}
void BM_Surface9T4_InProcess(benchmark::State &State) {
  runInProcess(State, 9, 4);
}
void BM_Surface9T4_LoopbackDist(benchmark::State &State) {
  runLoopbackDist(State, 9, 4);
}

BENCHMARK(BM_Surface7T3_InProcess)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Surface7T3_LoopbackDist)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Surface9T4_InProcess)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Surface9T4_LoopbackDist)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

BENCHMARK_MAIN();
