//===- bench/distance_xor_ab.cpp - Distance-mode XOR A/B ------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `veriqec distance` workload on the LDPC registry rows, with the
/// native XOR engine on and off — the tracked numbers behind the
/// Gauss-in-the-loop claim (BENCH_table3.json, `distance_xor_ab`). The
/// CNF-encoded baseline is only benchmarked on the rows where it
/// terminates in benchmark-friendly time; tanner1/tanner1-full without
/// XOR run 41 s / 86 s on the reference box and are left to the tracked
/// JSON rather than ruining every bench sweep.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

namespace {

void runDistance(benchmark::State &State, StabilizerCode (*Make)(),
                 bool NativeXor) {
  StabilizerCode Code = Make();
  State.SetLabel(Code.Name + (NativeXor ? " xor=on" : " xor=off"));
  VerifyOptions Opts;
  Opts.Xor = NativeXor ? smt::XorMode::On : smt::XorMode::Off;
  for (auto _ : State) {
    DistanceResult R = computeDistance(Code, Opts);
    if (!R.Ok || R.Distance != Code.Distance) {
      State.SkipWithError(("distance search failed for " + Code.Name).c_str());
      return;
    }
    State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
    State.counters["solver_calls"] = static_cast<double>(R.SolverCalls);
    State.counters["xor_elims"] =
        static_cast<double>(R.Stats.XorEliminations);
  }
}

void BM_DistanceHgp98Xor(benchmark::State &State) {
  runDistance(State, makeHgp98, true);
}
void BM_DistanceHgp98Cnf(benchmark::State &State) {
  runDistance(State, makeHgp98, false);
}
void BM_DistanceTanner2Xor(benchmark::State &State) {
  runDistance(State, makeTannerIISubstitute, true);
}
void BM_DistanceTanner2Cnf(benchmark::State &State) {
  runDistance(State, makeTannerIISubstitute, false);
}
void BM_DistanceTanner1Xor(benchmark::State &State) {
  runDistance(State, makeTannerISubstitute, true);
}
void BM_DistanceTanner1FullXor(benchmark::State &State) {
  runDistance(State, makeTannerIFull, true);
}

} // namespace

BENCHMARK(BM_DistanceHgp98Xor)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistanceHgp98Cnf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistanceTanner2Xor)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistanceTanner2Cnf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistanceTanner1Xor)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistanceTanner1FullXor)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
