//===- bench/fig4_general_verification.cpp - Paper Fig. 4 ------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 4: wall time of *general* verification (accurate decoding and
/// correction, Eqn. (14)) on rotated surface codes as the distance grows,
/// sequential vs cube-parallel. The paper runs d up to 11 (sequential
/// times out at d = 9 on a 256-core server); this harness sweeps the
/// distances the built-in solver finishes at example scale — the shape to
/// reproduce is the exponential growth in d and the parallel speedup.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

namespace {

void runGeneralVerification(benchmark::State &State, bool Parallel) {
  size_t D = static_cast<size_t>(State.range(0));
  StabilizerCode Code = makeRotatedSurfaceCode(D);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z,
                                  static_cast<uint32_t>((D - 1) / 2));
  VerifyOptions O;
  O.Parallel = Parallel;
  for (auto _ : State) {
    VerificationResult R = verifyScenario(S, O);
    if (!R.Verified) {
      State.SkipWithError("verification unexpectedly failed");
      return;
    }
    State.counters["conflicts"] =
        static_cast<double>(R.Stats.Conflicts);
    State.counters["cubes"] = static_cast<double>(R.NumCubes);
    State.counters["goals"] = static_cast<double>(R.NumGoals);
  }
}

} // namespace

static void BM_Fig4_Sequential(benchmark::State &State) {
  runGeneralVerification(State, /*Parallel=*/false);
}
static void BM_Fig4_Parallel(benchmark::State &State) {
  runGeneralVerification(State, /*Parallel=*/true);
}

BENCHMARK(BM_Fig4_Sequential)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig4_Parallel)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
