//===- bench/fig6_precise_detection.cpp - Paper Fig. 6 ---------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 6: wall time of the precise-detection verification (Eqn. (15)) on
/// rotated surface codes vs distance. Two regimes per distance: d_t = d
/// (every error of weight < d is detectable — expect UNSAT/verified) and
/// d_t = d + 1 (a minimum-weight undetectable logical exists — expect a
/// SAT witness of weight exactly d).
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

static void BM_Fig6_DetectionHolds(benchmark::State &State) {
  size_t D = static_cast<size_t>(State.range(0));
  StabilizerCode Code = makeRotatedSurfaceCode(D);
  for (auto _ : State) {
    DetectionResult R = verifyDetection(Code, D - 1);
    if (!R.Detects) {
      State.SkipWithError("detection property unexpectedly failed");
      return;
    }
    State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
  }
}

static void BM_Fig6_FindsMinWeightLogical(benchmark::State &State) {
  size_t D = static_cast<size_t>(State.range(0));
  StabilizerCode Code = makeRotatedSurfaceCode(D);
  for (auto _ : State) {
    DetectionResult R = verifyDetection(Code, D);
    if (R.Detects || !R.CounterExample ||
        R.CounterExample->weight() != D) {
      State.SkipWithError("expected a weight-d logical witness");
      return;
    }
  }
}

BENCHMARK(BM_Fig6_DetectionHolds)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Arg(11)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig6_FindsMinWeightLogical)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Arg(11)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
