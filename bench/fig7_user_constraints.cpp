//===- bench/fig7_user_constraints.cpp - Paper Fig. 7 ----------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 7 / Section 7.2: verification under user-provided error
/// constraints. The paper's two constraint families on a distance-d
/// rotated surface code:
///   locality    — errors confined to (d^2-1)/2 randomly chosen qubits;
///   discreteness — the d^2 qubits split into d segments, at most one
///                  error per segment;
/// and their conjunction, which scales furthest. The measured shape:
/// each constraint alone helps moderately; combined they give the big
/// win (the paper verifies d = 19 with both).
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "support/Rng.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

namespace {

enum ConstraintMode { None = 0, Locality = 1, Discreteness = 2, Both = 3 };

void runConstrained(benchmark::State &State, ConstraintMode Mode) {
  size_t D = static_cast<size_t>(State.range(0));
  StabilizerCode Code = makeRotatedSurfaceCode(D);
  uint32_t T = static_cast<uint32_t>((D - 1) / 2);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, T);

  // Random-but-seeded locality support of (d^2 - 1)/2 qubits.
  Rng R(2024 + D);
  std::vector<bool> Allowed(D * D, false);
  size_t Budget = (D * D - 1) / 2;
  while (Budget) {
    size_t Q = R.nextBelow(D * D);
    if (!Allowed[Q]) {
      Allowed[Q] = true;
      --Budget;
    }
  }

  VerifyOptions O;
  O.Parallel = true;
  O.ExtraConstraint = [&, Mode](smt::BoolContext &Ctx) {
    std::vector<smt::ExprRef> Parts;
    if (Mode & Locality)
      for (size_t Q = 0; Q != D * D; ++Q)
        if (!Allowed[Q])
          Parts.push_back(Ctx.mkNot(Ctx.mkVar(S.ErrorVars[Q])));
    if (Mode & Discreteness)
      for (size_t Seg = 0; Seg != D; ++Seg) {
        std::vector<smt::ExprRef> SegVars;
        for (size_t I = 0; I != D; ++I)
          SegVars.push_back(Ctx.mkVar(S.ErrorVars[Seg * D + I]));
        Parts.push_back(Ctx.mkAtMost(std::move(SegVars), 1));
      }
    if (Parts.empty())
      return Ctx.mkTrue();
    return Ctx.mkAnd(std::move(Parts));
  };

  for (auto _ : State) {
    VerificationResult Res = verifyScenario(S, O);
    if (!Res.Verified) {
      State.SkipWithError("verification unexpectedly failed");
      return;
    }
    State.counters["cubes"] = static_cast<double>(Res.NumCubes);
    State.counters["conflicts"] =
        static_cast<double>(Res.Stats.Conflicts);
  }
}

} // namespace

static void BM_Fig7_Unconstrained(benchmark::State &State) {
  runConstrained(State, None);
}
static void BM_Fig7_Locality(benchmark::State &State) {
  runConstrained(State, Locality);
}
static void BM_Fig7_Discreteness(benchmark::State &State) {
  runConstrained(State, Discreteness);
}
static void BM_Fig7_Both(benchmark::State &State) {
  runConstrained(State, Both);
}

BENCHMARK(BM_Fig7_Unconstrained)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig7_Locality)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig7_Discreteness)
    ->Arg(5)
    ->Arg(7)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig7_Both)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Arg(11)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
