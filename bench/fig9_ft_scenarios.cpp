//===- bench/fig9_ft_scenarios.cpp - Paper Fig. 8/9/10, Section 7.3 --------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-tolerant computation scenarios of Section 7.3: logical GHZ
/// preparation over three Steane blocks (Fig. 9), the logical CNOT with
/// propagated errors (Fig. 10), errors inside the correction step and
/// multi-cycle memory — the scenario matrix of Fig. 8 / Table 4.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

namespace {

void verifyOrSkip(benchmark::State &State, const Scenario &S) {
  VerificationResult R = verifyScenario(S);
  if (!R.StructuralOk || !R.Verified) {
    State.SkipWithError(("failed: " + S.Name + " " + R.Error).c_str());
    return;
  }
  State.counters["qubits"] = static_cast<double>(S.NumQubits);
  State.counters["goals"] = static_cast<double>(R.NumGoals);
  State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
}

} // namespace

static void BM_Fig9_GhzPreparation(benchmark::State &State) {
  StabilizerCode Code = makeSteaneCode();
  LogicalBasis Basis = State.range(0) ? LogicalBasis::X : LogicalBasis::Z;
  Scenario S = makeGhzScenario(Code, PauliKind::Y, Basis, 1);
  for (auto _ : State)
    verifyOrSkip(State, S);
}

static void BM_Fig10_LogicalCnot(benchmark::State &State) {
  StabilizerCode Code = makeSteaneCode();
  LogicalBasis Basis = State.range(0) ? LogicalBasis::X : LogicalBasis::Z;
  Scenario S = makeLogicalCnotScenario(Code, PauliKind::Y, Basis, 1);
  for (auto _ : State)
    verifyOrSkip(State, S);
}

static void BM_Fig8_CorrectionStepError(benchmark::State &State) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeCorrectionStepErrorScenario(Code, PauliKind::X,
                                               LogicalBasis::Z, 1);
  for (auto _ : State)
    verifyOrSkip(State, S);
}

static void BM_Fig8_MultiCycle(benchmark::State &State) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMultiCycleScenario(
      Code, PauliKind::X, LogicalBasis::Z,
      static_cast<size_t>(State.range(0)), 1);
  for (auto _ : State)
    verifyOrSkip(State, S);
}

static void BM_Fig8_OneCycleLogicalH(benchmark::State &State) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeLogicalHScenario(Code, PauliKind::Y, LogicalBasis::X, 1);
  for (auto _ : State)
    verifyOrSkip(State, S);
}

BENCHMARK(BM_Fig9_GhzPreparation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig10_LogicalCnot)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig8_CorrectionStepError)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig8_MultiCycle)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig8_OneCycleLogicalH)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
