//===- bench/micro_substrates.cpp - Substrate micro-benchmarks -------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput of the substrates everything else is built on: Pauli
/// multiplication and Clifford conjugation, tableau measurement rounds
/// (the Stim-role engine), GF(2) elimination and the CDCL solver on a
/// pigeonhole family.
///
//===----------------------------------------------------------------------===//

#include "gf2/BitMatrix.h"
#include "pauli/Tableau.h"
#include "sat/Solver.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

static void BM_Micro_PauliMultiply(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Rng R(1);
  Pauli A(N), B(N);
  for (size_t Q = 0; Q != N; ++Q) {
    A.setKind(Q, static_cast<PauliKind>(R.nextBelow(4)));
    B.setKind(Q, static_cast<PauliKind>(R.nextBelow(4)));
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(A * B);
}

static void BM_Micro_CliffordConjugation(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Rng R(2);
  Pauli P(N);
  for (size_t Q = 0; Q != N; ++Q)
    P.setKind(Q, static_cast<PauliKind>(R.nextBelow(4)));
  for (auto _ : State) {
    P.conjugate(GateKind::CNOT, 0, N / 2);
    P.conjugate(GateKind::H, N / 3);
    benchmark::DoNotOptimize(P);
  }
}

static void BM_Micro_TableauMeasurementRound(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Rng R(3);
  Tableau T(N);
  for (size_t Q = 0; Q + 1 < N; ++Q)
    T.applyGate(GateKind::CNOT, Q, Q + 1);
  Pauli ZZ(N);
  ZZ.setKind(0, PauliKind::Z);
  ZZ.setKind(N - 1, PauliKind::Z);
  for (auto _ : State)
    benchmark::DoNotOptimize(T.measure(ZZ, R));
}

static void BM_Micro_Gf2Solve(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Rng R(4);
  BitMatrix A(N, N);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      if (R.nextBool())
        A.set(I, J);
  BitVector X(N);
  for (size_t I = 0; I != N; ++I)
    if (R.nextBool())
      X.set(I);
  BitVector B = A.multiply(X);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.solve(B));
}

static void BM_Micro_SatPigeonhole(benchmark::State &State) {
  int Holes = static_cast<int>(State.range(0));
  for (auto _ : State) {
    sat::Solver S;
    std::vector<std::vector<sat::Var>> P(Holes + 1,
                                         std::vector<sat::Var>(Holes));
    for (int I = 0; I <= Holes; ++I)
      for (int J = 0; J != Holes; ++J)
        P[I][J] = S.newVar();
    for (int I = 0; I <= Holes; ++I) {
      std::vector<sat::Lit> C;
      for (int J = 0; J != Holes; ++J)
        C.push_back(sat::mkLit(P[I][J]));
      S.addClause(C);
    }
    for (int J = 0; J != Holes; ++J)
      for (int I1 = 0; I1 <= Holes; ++I1)
        for (int I2 = I1 + 1; I2 <= Holes; ++I2)
          S.addClause(~sat::mkLit(P[I1][J]), ~sat::mkLit(P[I2][J]));
    if (S.solve() != sat::SolveResult::Unsat) {
      State.SkipWithError("pigeonhole must be UNSAT");
      return;
    }
    State.counters["conflicts"] =
        static_cast<double>(S.stats().Conflicts);
  }
}

BENCHMARK(BM_Micro_PauliMultiply)->Arg(64)->Arg(361)->Arg(1024);
BENCHMARK(BM_Micro_CliffordConjugation)->Arg(64)->Arg(361);
BENCHMARK(BM_Micro_TableauMeasurementRound)->Arg(49)->Arg(121)->Arg(361);
BENCHMARK(BM_Micro_Gf2Solve)->Arg(128)->Arg(512);
BENCHMARK(BM_Micro_SatPigeonhole)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
