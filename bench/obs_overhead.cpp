//===- bench/obs_overhead.cpp - Observability overhead A/B ----------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation cost on the tracked surface9 t=4 --jobs 1 workload
/// (BENCH_table3.json, `obs_overhead`): the compiled-in-but-off side
/// pays one relaxed atomic load per instrumentation site (trace +
/// metrics gates cold), the enabled side additionally records every
/// span/instant into the per-thread trace buffers, feeds the per-cube
/// histograms, and renders the trace JSON at run end. Both sides run
/// interleaved in one binary so the numbers share a machine state. The
/// third configuration in the tracked A/B — instrumentation compiled
/// OUT with -DVERIQEC_DISABLE_OBS — needs its own build; point a second
/// build dir at CMAKE_CXX_FLAGS=-DVERIQEC_DISABLE_OBS and run this
/// bench's Off case there.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

namespace {

void runSurfaceMemory(benchmark::State &State, bool Obs) {
  StabilizerCode Code = makeRotatedSurfaceCode(9);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 4);
  State.SetLabel(std::string("surface9 t=4 j=1 obs=") + (Obs ? "on" : "off"));
  VerifyOptions VO;
  VO.Parallel = true;
  VO.Threads = 1; // per-core number: the tracked JSON row is --jobs 1
  for (auto _ : State) {
    if (Obs) {
      obs::beginTrace();
      obs::setMetricsEnabled(true);
    }
    VerificationResult R = verifyScenario(S, VO);
    if (Obs) {
      // The render is part of the enabled path's cost: a real --trace
      // run serializes at run end, inside the user's wall clock.
      obs::stopTrace();
      std::string Json = obs::renderTraceJson();
      benchmark::DoNotOptimize(Json);
      State.counters["trace_bytes"] = static_cast<double>(Json.size());
      obs::setMetricsEnabled(false);
      obs::Registry::global().reset();
    }
    if (!R.StructuralOk || !R.Verified) {
      State.SkipWithError("verification failed");
      return;
    }
    State.counters["cubes"] = static_cast<double>(R.NumCubes);
    State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
  }
}

void BM_Surface9T4ObsOff(benchmark::State &State) {
  runSurfaceMemory(State, false);
}
void BM_Surface9T4ObsOn(benchmark::State &State) {
  runSurfaceMemory(State, true);
}

} // namespace

BENCHMARK(BM_Surface9T4ObsOff)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Surface9T4ObsOn)->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
