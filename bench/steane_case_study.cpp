//===- bench/steane_case_study.cpp - Paper Section 5.2 ---------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.2 case study: Steane(E, H) for E in {Y, H, T}. The Y row
/// exercises the case-1 phase comparison, the H row the generator
/// re-expression of Proposition 5.2 (case 2), and the T row the
/// non-commuting case-3 heuristic (taint resolution). Times are per
/// verified Hoare triple.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

static void BM_Steane_YError(benchmark::State &State) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeLogicalHScenario(Code, PauliKind::Y, LogicalBasis::X, 1);
  for (auto _ : State) {
    VerificationResult R = verifyScenario(S);
    if (!R.Verified)
      State.SkipWithError("Steane(Y,H) failed");
    State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
  }
}

static void BM_Steane_HError(benchmark::State &State) {
  StabilizerCode Code = makeSteaneCode();
  // All seven locations, as the paper's general claim requires.
  for (auto _ : State) {
    for (size_t Loc = 0; Loc != 7; ++Loc) {
      Scenario S = makeNonPauliErrorScenario(Code, GateKind::H, Loc,
                                             LogicalBasis::X);
      VerificationResult R = verifyScenario(S);
      if (!R.Verified) {
        State.SkipWithError("Steane(H) failed");
        return;
      }
    }
  }
  State.counters["locations"] = 7;
}

static void BM_Steane_TError(benchmark::State &State) {
  StabilizerCode Code = makeSteaneCode();
  for (auto _ : State) {
    for (size_t Loc = 0; Loc != 7; ++Loc) {
      for (LogicalBasis Basis : {LogicalBasis::X, LogicalBasis::Z}) {
        Scenario S =
            makeNonPauliErrorScenario(Code, GateKind::T, Loc, Basis);
        VerificationResult R = verifyScenario(S);
        if (!R.Verified) {
          State.SkipWithError("Steane(T) failed");
          return;
        }
      }
    }
  }
  State.counters["triples"] = 14;
}

BENCHMARK(BM_Steane_YError)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Steane_HError)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Steane_TError)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
