//===- bench/table3_code_benchmark.cpp - Paper Table 3 ---------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 3: the benchmark of 14 stabilizer codes with three verification
/// targets — accurate correction (odd-distance codes), detection
/// (large LDPC blocks) and error detection (the d=2 post-selection
/// family). One benchmark per row; rows whose construction is a
/// documented substitution carry the paper's parameters in the label
/// (see DESIGN.md). Sizes use the scaled-down suite; the shape to
/// reproduce is the per-target cost ordering and growth with n.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

namespace {

void runTable3Row(benchmark::State &State, size_t RowIndex) {
  static std::vector<BenchmarkCodeEntry> Suite = makeBenchmarkSuite(true);
  const BenchmarkCodeEntry &Entry = Suite[RowIndex];
  const StabilizerCode &Code = Entry.Code;
  State.SetLabel(Code.Name + " " + Entry.PaperParameters);

  for (auto _ : State) {
    switch (Entry.Target) {
    case BenchmarkTarget::AccurateCorrection: {
      uint32_t T = static_cast<uint32_t>((Code.Distance - 1) / 2);
      Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z,
                                      std::max<uint32_t>(T, 1));
      VerificationResult R = verifyScenario(S, {});
      if (!R.Verified) {
        State.SkipWithError(("correction failed for " + Code.Name).c_str());
        return;
      }
      State.counters["conflicts"] = static_cast<double>(R.Stats.Conflicts);
      break;
    }
    case BenchmarkTarget::Detection: {
      // Large-block LDPC rows: verify that all weight < d errors are
      // detectable (d_t = declared distance).
      DetectionResult R = verifyDetection(Code, Code.Distance - 1);
      if (!R.Detects) {
        State.SkipWithError(("detection failed for " + Code.Name).c_str());
        return;
      }
      break;
    }
    case BenchmarkTarget::ErrorDetection: {
      // d=2 family: every single-qubit Pauli error is detectable.
      DetectionResult R = verifyDetection(Code, 1);
      if (!R.Detects) {
        State.SkipWithError(
            ("error-detection failed for " + Code.Name).c_str());
        return;
      }
      break;
    }
    }
    State.counters["n"] = static_cast<double>(Code.NumQubits);
    State.counters["k"] = static_cast<double>(Code.NumLogical);
  }
}

} // namespace

#define TABLE3_ROW(Index)                                                     \
  static void BM_Table3_Row##Index(benchmark::State &State) {                 \
    runTable3Row(State, Index);                                               \
  }                                                                           \
  BENCHMARK(BM_Table3_Row##Index)->Unit(benchmark::kMillisecond)->Iterations(1)

TABLE3_ROW(0);
TABLE3_ROW(1);
TABLE3_ROW(2);
TABLE3_ROW(3);
TABLE3_ROW(4);
TABLE3_ROW(5);
TABLE3_ROW(6);
TABLE3_ROW(7);
TABLE3_ROW(8);
TABLE3_ROW(9);
TABLE3_ROW(10);
TABLE3_ROW(11);
TABLE3_ROW(12);
TABLE3_ROW(13);
TABLE3_ROW(14);

BENCHMARK_MAIN();
