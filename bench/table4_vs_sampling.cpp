//===- bench/table4_vs_sampling.cpp - Paper Table 4 / Section 7.2 ----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 4 / Section 7.2's comparison with simulation-based testing (the
/// role Stim plays): sampling throughput on the stabilizer tableau with a
/// concrete decoder vs the verifier's one-shot exhaustive guarantee. The
/// `certainty_samples` counter reports how many samples exhaustive
/// testing would need (the paper's 19^18 ~ 2^76 argument: at d = 19 with
/// both constraints this exceeds any testing budget, while verification
/// finishes).
///
//===----------------------------------------------------------------------===//

#include "decoder/Decoder.h"
#include "qec/Codes.h"
#include "sim/SamplingTester.h"
#include "verifier/Verifier.h"

#include <benchmark/benchmark.h>

using namespace veriqec;

static void BM_Table4_SamplingThroughput(benchmark::State &State) {
  size_t D = static_cast<size_t>(State.range(0));
  StabilizerCode Code = makeRotatedSurfaceCode(D);
  LookupDecoder Dec(Code, (D - 1) / 2);
  Rng R(42);
  uint64_t Failures = 0, Samples = 0;
  for (auto _ : State) {
    SamplingReport Report =
        sampleMemoryCorrection(Code, Dec, (D - 1) / 2, 200, R);
    Failures += Report.Failures;
    Samples += Report.Samples;
  }
  State.counters["samples_per_s"] = benchmark::Counter(
      static_cast<double>(Samples), benchmark::Counter::kIsRate);
  State.counters["failures"] = static_cast<double>(Failures);
  State.counters["certainty_samples"] = static_cast<double>(
      errorConfigurationCount(Code.NumQubits, (D - 1) / 2));
}

static void BM_Table4_VerifierExhaustive(benchmark::State &State) {
  size_t D = static_cast<size_t>(State.range(0));
  StabilizerCode Code = makeRotatedSurfaceCode(D);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z,
                                  static_cast<uint32_t>((D - 1) / 2));
  VerifyOptions O;
  O.Parallel = true;
  for (auto _ : State) {
    VerificationResult R = verifyScenario(S, O);
    if (!R.Verified) {
      State.SkipWithError("verification failed");
      return;
    }
    State.counters["configs_covered"] = static_cast<double>(
        errorConfigurationCount(Code.NumQubits, (D - 1) / 2));
  }
}

BENCHMARK(BM_Table4_SamplingThroughput)
    ->Arg(3)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Table4_VerifierExhaustive)
    ->Arg(3)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
