//===- examples/decoder_audit.cpp - Finding decoder bugs two ways ---------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 7.2 contrast in miniature: a buggy decoder for the d=3
/// surface code is exposed (a) instantly by the verifier as a
/// counterexample, and (b) only statistically by Stim-style sampling —
/// with the sample count needed for *certainty* growing as the full
/// error-configuration space. Also demonstrates extracting the decoder
/// requirement P_f from the code (designing a decoder from the VC).
///
//===----------------------------------------------------------------------===//

#include "decoder/Decoder.h"
#include "qec/Codes.h"
#include "sim/SamplingTester.h"
#include "verifier/Verifier.h"

#include <cstdio>

using namespace veriqec;

namespace {

/// A decoder that forgets to handle one syndrome (returns "no
/// correction"): classic lookup-table truncation bug.
class BuggyDecoder : public Decoder {
public:
  BuggyDecoder(const StabilizerCode &Code) : Inner(Code, 1) {}
  std::optional<Pauli> decode(const BitVector &Syndrome) override {
    ++Calls;
    if (Syndrome.count() == 2 && Syndrome.get(0)) // "rare" case dropped
      return Pauli(9);
    return Inner.decode(Syndrome);
  }
  uint64_t Calls = 0;

private:
  LookupDecoder Inner;
};

} // namespace

int main() {
  StabilizerCode Code = makeRotatedSurfaceCode(3);

  // (a) The verifier catches contract violations without any decoder
  // implementation at all: drop the syndrome-match constraints of the
  // first Z-check and the VC immediately produces an error pattern that
  // any decoder obeying the weakened contract mishandles.
  Scenario S = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 1);
  Scenario Weak = S;
  Weak.Parity.erase(Weak.Parity.begin());
  VerificationResult R = verifyScenario(Weak);
  std::printf("verifier on weakened contract: %s (%.1f ms)\n",
              R.Verified ? "verified (unexpected)" : "counterexample",
              R.Seconds * 1e3);
  if (!R.Verified) {
    std::printf("  error pattern:");
    for (const std::string &E : Weak.ErrorVars)
      if (R.CounterExample.at(E))
        std::printf(" %s", E.c_str());
    std::printf("\n");
  }
  VerificationResult Full = verifyScenario(S);
  std::printf("verifier on full contract:     %s (%.1f ms)\n",
              Full.Verified ? "VERIFIED" : "failed", Full.Seconds * 1e3);

  // (b) Sampling against the concrete buggy decoder: failures appear only
  // when the dropped syndrome is hit.
  BuggyDecoder Buggy(Code);
  Rng Rand(77);
  SamplingReport Report = sampleMemoryCorrection(Code, Buggy, 1, 2000, Rand);
  std::printf("sampling vs buggy decoder: %llu/%llu failures "
              "(%.0f samples/s)\n",
              static_cast<unsigned long long>(Report.Failures),
              static_cast<unsigned long long>(Report.Samples),
              Report.samplesPerSecond());

  // Exhaustive certainty by testing alone needs every configuration:
  uint64_t Space = errorConfigurationCount(Code.NumQubits, 1);
  std::printf("configurations for certainty at t=1: %llu; at d=19, t=9: ",
              static_cast<unsigned long long>(Space));
  uint64_t Big = errorConfigurationCount(361, 9);
  if (Big == UINT64_MAX)
    std::printf("> 2^64 (the paper's 2^76-sample argument)\n");
  else
    std::printf("%llu\n", static_cast<unsigned long long>(Big));
  return 0;
}
