//===- examples/fault_tolerant_ghz.cpp - Fig. 9 GHZ preparation -----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-tolerant logical GHZ preparation over three Steane blocks
/// (Fig. 9): first formally verified (any single Y error anywhere among
/// the 21 physical qubits is corrected), then demonstrated concretely on
/// the stabilizer simulator with a lookup decoder and a random injected
/// error in every run.
///
//===----------------------------------------------------------------------===//

#include "decoder/Decoder.h"
#include "qec/Codes.h"
#include "sem/Interpreter.h"
#include "verifier/Verifier.h"

#include <cstdio>

using namespace veriqec;

namespace {

Pauli embedBlock(const Pauli &P, size_t Block, size_t Total) {
  Pauli Out(Total);
  for (size_t Q = 0; Q != P.numQubits(); ++Q)
    Out.setKind(Block * P.numQubits() + Q, P.kindAt(Q));
  return Out.abs();
}

} // namespace

int main() {
  StabilizerCode Steane = makeSteaneCode();
  const size_t Blocks = 3, Total = Blocks * 7;

  // -- Formal verification ---------------------------------------------------
  for (LogicalBasis Basis : {LogicalBasis::Z, LogicalBasis::X}) {
    Scenario S = makeGhzScenario(Steane, PauliKind::Y, Basis, 1);
    VerificationResult R = verifyScenario(S);
    std::printf("GHZ prep (21 qubits), basis %c: %s  %.2fs  goals=%zu\n",
                Basis == LogicalBasis::Z ? 'Z' : 'X',
                R.Verified ? "VERIFIED" : "FAILED", R.Seconds, R.NumGoals);
  }

  // -- Concrete demonstration -------------------------------------------------
  Scenario S = makeGhzScenario(Steane, PauliKind::Y, LogicalBasis::Z, 1);
  DecoderRegistry Decoders;
  LookupDecoder Lookup(Steane, 1);
  auto decode = [&](const std::vector<int64_t> &Syn, bool WantX) {
    BitVector SynBits(Steane.Generators.size());
    for (size_t I = 0; I != Syn.size(); ++I)
      if (Syn[I])
        SynBits.set(I);
    std::vector<int64_t> Out(7, 0);
    if (auto C = Lookup.decode(SynBits))
      for (size_t Q = 0; Q != 7; ++Q) {
        PauliKind K = C->kindAt(Q);
        Out[Q] = WantX ? (K == PauliKind::X || K == PauliKind::Y)
                       : (K == PauliKind::Z || K == PauliKind::Y);
      }
    return Out;
  };
  for (const char *Tag : {"b0", "b1", "b2"}) {
    Decoders.define(std::string("decode_x") + Tag,
                    [decode](const std::vector<int64_t> &In) {
                      return decode(In, true);
                    });
    Decoders.define(std::string("decode_z") + Tag,
                    [decode](const std::vector<int64_t> &In) {
                      return decode(In, false);
                    });
  }

  Rng R(12345);
  int Good = 0;
  const int Runs = 100;
  for (int Trial = 0; Trial != Runs; ++Trial) {
    // One random Y error somewhere among the 21 qubits.
    CMem Mem;
    size_t Block = R.nextBelow(Blocks), Qubit = R.nextBelow(7);
    Mem["e" + std::to_string(Block) + "_" + std::to_string(Qubit)] = 1;

    // Prepare logical |000>: |0...0> projected onto every generator's +1
    // eigenspace by forced measurements (logical Zs already hold).
    StabilizerRun Run{std::move(Mem), Tableau(Total)};
    for (size_t B = 0; B != Blocks; ++B)
      for (const Pauli &G : Steane.Generators)
        Run.State.measure(embedBlock(G, B, Total), R, /*Forced=*/false);

    runStabilizerFrom(S.Program, Run, Decoders, R);

    // The post-specs with constant phases are the code stabilizers; the
    // logical specs have phase b<j> which is 0 for |000>.
    bool Ok = true;
    for (const GenSpec &G : S.Post) {
      Pauli Expect = G.Base;
      if (G.PhaseConstant)
        Expect.negate();
      if (!Run.State.isStabilizedBy(Expect))
        Ok = false;
    }
    Good += Ok;
  }
  std::printf("simulated GHZ runs with one random Y error: %d/%d reached "
              "the verified GHZ stabilizer state\n",
              Good, Runs);
  return Good == Runs ? 0 : 1;
}
