//===- examples/parse_and_verify.cpp - The DSL front end ------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Uses the concrete syntax (the role of the Lark grammar in the original
/// Veri-QEC): parse the 3-qubit repetition-code correction program of
/// Example 4.2 from text, pretty-print it back, compute the backward wlp
/// of Fig. 3 for the postcondition of Example 4.2, and verify the
/// corresponding scenario.
///
//===----------------------------------------------------------------------===//

#include "logic/Wlp.h"
#include "prog/Parser.h"
#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <cstdio>

using namespace veriqec;

int main() {
  // Example 4.2: the correction stage of the 3-qubit repetition code.
  const char *Source = R"(
    // correction stage: apply X wherever the decoder said so
    for i in 0..2 do [x_i] q[i] *= X end
  )";
  ParseResult PR = parseProgram(Source);
  if (auto *Err = std::get_if<ParseError>(&PR)) {
    std::printf("%s\n", Err->render().c_str());
    return 1;
  }
  StmtPtr Prog = Stmt::flatten(std::get<StmtPtr>(PR));
  std::printf("parsed program:\n%s\n\n", Prog->toString(2).c_str());

  // Postcondition of Example 4.2: Z1Z2 /\ Z2Z3 /\ (-1)^b Z1.
  AssertPtr Post = Assertion::conj(
      {Assertion::pauliAtom(*Pauli::fromString("ZZI")),
       Assertion::pauliAtom(*Pauli::fromString("IZZ")),
       Assertion::pauliAtom(*Pauli::fromString("ZII"),
                            ClassicalExpr::var("b"))});
  WlpResult W = wlp(Prog, Post, 3);
  if (!W.ok()) {
    std::printf("wlp failed: %s\n", W.Error.c_str());
    return 1;
  }
  std::printf("wlp (Example 4.2's derived precondition):\n  %s\n\n",
              W.Pre->toString().c_str());

  // And the full memory verification of the repetition code.
  StabilizerCode Code = makeRepetitionCode(3);
  Scenario S = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 1);
  std::printf("generated Table-1 style program:\n%s\n\n",
              S.Program->toString(2).c_str());
  VerificationResult R = verifyScenario(S);
  std::printf("repetition-3 memory vs one X error: %s\n",
              R.Verified ? "VERIFIED" : "FAILED");
  return R.Verified ? 0 : 1;
}
