//===- examples/quickstart.cpp - Verifying the Steane code in 60 lines ----===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Section 2.2 / Eqn. (2)): build the
/// [[7,1,3]] Steane code, verify that one error-correction cycle corrects
/// any single Pauli error, and verify the fault-tolerant logical Hadamard
/// with propagation errors. Then break the decoder contract and watch the
/// verifier produce a counterexample.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <cstdio>

using namespace veriqec;

int main() {
  StabilizerCode Steane = makeSteaneCode();
  std::printf("code: %s [[%zu,%zu,%zu]]\n", Steane.Name.c_str(),
              Steane.NumQubits, Steane.NumLogical, Steane.Distance);

  // 1. One cycle of error correction corrects any single Y error.
  Scenario Memory =
      makeMemoryScenario(Steane, PauliKind::Y, LogicalBasis::Z, 1);
  VerificationResult R = verifyScenario(Memory);
  std::printf("memory, <=1 Y error:      %s (%.1f ms, %llu conflicts)\n",
              R.Verified ? "VERIFIED" : "FAILED", R.Seconds * 1e3,
              static_cast<unsigned long long>(R.Stats.Conflicts));

  // 2. The fault-tolerant logical Hadamard of Eqn. (2): propagation
  // errors + standard errors, at most one in total.
  for (LogicalBasis Basis : {LogicalBasis::X, LogicalBasis::Z}) {
    Scenario LogicalH =
        makeLogicalHScenario(Steane, PauliKind::Y, Basis, 1);
    VerificationResult RH = verifyScenario(LogicalH);
    std::printf("Steane(Y,H), basis %c:     %s (%.1f ms)\n",
                Basis == LogicalBasis::X ? 'X' : 'Z',
                RH.Verified ? "VERIFIED" : "FAILED", RH.Seconds * 1e3);
  }

  // 3. Two errors exceed the distance-3 budget: the verifier finds a
  // concrete uncorrectable pattern.
  Scenario TooMany =
      makeMemoryScenario(Steane, PauliKind::Y, LogicalBasis::Z, 2);
  VerificationResult R2 = verifyScenario(TooMany);
  std::printf("memory, <=2 Y errors:     %s\n",
              R2.Verified ? "VERIFIED" : "counterexample found");
  if (!R2.Verified) {
    std::printf("  offending errors:");
    for (const std::string &E : TooMany.ErrorVars)
      if (R2.CounterExample.at(E))
        std::printf(" %s", E.c_str());
    std::printf("\n");
  }

  // 4. A decoder that ignores minimum-weight is caught immediately.
  Scenario Weak = makeMemoryScenario(Steane, PauliKind::X, LogicalBasis::Z, 1);
  Weak.Weights.clear();
  VerificationResult R3 = verifyScenario(Weak);
  std::printf("weakened decoder contract: %s\n",
              R3.Verified ? "VERIFIED (unexpected!)"
                          : "counterexample found, as expected");
  return R.Verified ? 0 : 1;
}
