//===- examples/surface_code_verification.cpp - Section 7.1/7.2 demo ------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// General verification of rotated surface codes (accurate correction,
/// Eqn. (14), and precise detection, Eqn. (15)) across distances, plus
/// verification under user-provided error constraints (locality and
/// discreteness, Section 7.2) — the workloads behind Fig. 4, Fig. 6 and
/// Fig. 7 at example scale.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <cstdio>

using namespace veriqec;

int main() {
  for (size_t D : {3, 5}) {
    StabilizerCode Code = makeRotatedSurfaceCode(D);
    uint32_t T = static_cast<uint32_t>((D - 1) / 2);

    Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, T);
    VerifyOptions Par;
    Par.Parallel = true;
    VerificationResult R = verifyScenario(S, Par);
    std::printf("surface d=%zu correction (t=%u): %s  %.2fs  cubes=%llu\n",
                D, T, R.Verified ? "VERIFIED" : "FAILED", R.Seconds,
                static_cast<unsigned long long>(R.NumCubes));

    DetectionResult Det = verifyDetection(Code, D - 1);
    std::printf("surface d=%zu detection  (w<%zu): %s  %.2fs\n", D, D,
                Det.Detects ? "VERIFIED" : "FAILED", Det.Seconds);
    DetectionResult Beyond = verifyDetection(Code, D);
    std::printf("surface d=%zu detection  (w<=%zu): %s", D, D,
                Beyond.Detects ? "holds (unexpected)" : "fails, witness ");
    if (Beyond.CounterExample)
      std::printf("%s", Beyond.CounterExample->toString().c_str());
    std::printf("\n");
  }

  // User-provided constraints (the Fig. 7 idea) prune the search space
  // at the same error budget, speeding the proof up: discreteness — at
  // most one error per row of the d=5 lattice — keeps the verified
  // property while cutting solver work.
  StabilizerCode Code = makeRotatedSurfaceCode(5);
  Scenario S = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 2);
  VerificationResult Plain = verifyScenario(S);
  VerifyOptions O;
  O.ExtraConstraint = [&](smt::BoolContext &Ctx) {
    std::vector<smt::ExprRef> Rows;
    for (size_t Row = 0; Row != 5; ++Row) {
      std::vector<smt::ExprRef> RowVars;
      for (size_t Col = 0; Col != 5; ++Col)
        RowVars.push_back(Ctx.mkVar(S.ErrorVars[Row * 5 + Col]));
      Rows.push_back(Ctx.mkAtMost(std::move(RowVars), 1));
    }
    return Ctx.mkAnd(std::move(Rows));
  };
  VerificationResult Constrained = verifyScenario(S, O);
  std::printf("d=5 t=2 unconstrained:             %s  conflicts=%llu\n",
              Plain.Verified ? "VERIFIED" : "FAILED",
              static_cast<unsigned long long>(Plain.Stats.Conflicts));
  std::printf("d=5 t=2 with discreteness pruning: %s  conflicts=%llu\n",
              Constrained.Verified ? "VERIFIED" : "FAILED",
              static_cast<unsigned long long>(Constrained.Stats.Conflicts));

  // Constraints do NOT extend the correction radius: allowing up to 5
  // spread-out errors is genuinely uncorrectable and the verifier shows
  // a concrete witness.
  Scenario Wide = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 5);
  VerificationResult Over = verifyScenario(Wide, O);
  std::printf("d=5, <=5 errors (1 per row):       %s\n",
              Over.Verified ? "VERIFIED (unexpected)"
                            : "counterexample, as theory demands");
  return Plain.Verified && Constrained.Verified ? 0 : 1;
}
