//===- assertion/PauliExpr.cpp - Pauli expressions (Eqn. (4)) --------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "assertion/PauliExpr.h"

#include "support/Assert.h"

using namespace veriqec;

PauliExpr::PauliExpr(const Pauli &P) : N(P.numQubits()) {
  assert(P.isHermitian() && "PExp terms are Hermitian");
  Sqrt2Ring C(P.signBit() ? -1 : 1);
  addTerm(P.abs(), C);
}

void PauliExpr::addTerm(const Pauli &P, const Sqrt2Ring &C) {
  if (C.isZero())
    return;
  assert(P.isHermitian() && !P.signBit() && "terms carry + sign");
  Key K{P.xBits(), P.zBits()};
  auto [It, Inserted] = Terms.try_emplace(std::move(K), C);
  if (!Inserted) {
    It->second = It->second + C;
    if (It->second.isZero())
      Terms.erase(It);
  }
}

bool PauliExpr::isSinglePauli() const {
  if (Terms.size() != 1)
    return false;
  const Sqrt2Ring &C = Terms.begin()->second;
  return C == Sqrt2Ring(1) || C == Sqrt2Ring(-1);
}

std::vector<std::pair<Pauli, Sqrt2Ring>> PauliExpr::terms() const {
  std::vector<std::pair<Pauli, Sqrt2Ring>> Out;
  for (const auto &[K, C] : Terms) {
    Pauli P(N);
    for (size_t Q = 0; Q != N; ++Q) {
      bool X = K.X.get(Q), Z = K.Z.get(Q);
      if (X && Z)
        P.setKind(Q, PauliKind::Y);
      else if (X)
        P.setKind(Q, PauliKind::X);
      else if (Z)
        P.setKind(Q, PauliKind::Z);
    }
    Out.emplace_back(P.abs(), C);
  }
  return Out;
}

PauliExpr PauliExpr::operator+(const PauliExpr &O) const {
  assert((isZero() || O.isZero() || N == O.N) && "qubit count mismatch");
  PauliExpr Out = *this;
  if (Out.N == 0)
    Out.N = O.N;
  for (const auto &[P, C] : O.terms())
    Out.addTerm(P, C);
  return Out;
}

PauliExpr PauliExpr::operator-() const { return scaled(Sqrt2Ring(-1)); }

PauliExpr PauliExpr::scaled(const Sqrt2Ring &C) const {
  PauliExpr Out;
  Out.N = N;
  if (C.isZero())
    return Out;
  for (const auto &[K, Coef] : Terms)
    Out.Terms.emplace(K, Coef * C);
  return Out;
}

PauliExpr PauliExpr::operator*(const PauliExpr &O) const {
  assert(N == O.N && "qubit count mismatch");
  PauliExpr Out;
  Out.N = N;
  // Individual term products may pick up an i factor (anticommuting
  // letters); those imaginary parts must cancel in the full sum for the
  // result to stay inside the real algebra PExp. Track them separately
  // and insist on cancellation.
  PauliExpr Imag;
  Imag.N = N;
  for (const auto &[PA, CA] : terms())
    for (const auto &[PB, CB] : O.terms()) {
      Pauli Prod = PA * PB;
      Pauli Abs = Prod.abs();
      unsigned Rel = (Prod.phaseExp() + 4u - Abs.phaseExp()) & 3u;
      Sqrt2Ring C = CA * CB;
      switch (Rel) {
      case 0:
        Out.addTerm(Abs, C);
        break;
      case 2:
        Out.addTerm(Abs, C * Sqrt2Ring(-1));
        break;
      case 1:
        Imag.addTerm(Abs, C);
        break;
      case 3:
        Imag.addTerm(Abs, C * Sqrt2Ring(-1));
        break;
      }
    }
  assert(Imag.isZero() &&
         "PExp products must stay real (imaginary parts must cancel)");
  return Out;
}

void PauliExpr::conjugateByT(size_t Q, bool Dagger) {
  // (U-T): T^dagger X T = (X - Y)/sqrt2, T^dagger Y T = (X + Y)/sqrt2;
  // for Tdg the Y signs swap. Z and I letters are unchanged.
  std::map<Key, Sqrt2Ring> Old = std::move(Terms);
  Terms.clear();
  Sqrt2Ring Inv = Sqrt2Ring::invSqrt2();
  for (auto &[K, C] : Old) {
    bool X = K.X.get(Q), Z = K.Z.get(Q);
    Pauli P(N);
    for (size_t I = 0; I != N; ++I) {
      bool Xb = K.X.get(I), Zb = K.Z.get(I);
      if (Xb && Zb)
        P.setKind(I, PauliKind::Y);
      else if (Xb)
        P.setKind(I, PauliKind::X);
      else if (Zb)
        P.setKind(I, PauliKind::Z);
    }
    P = P.abs();
    if (!X) {
      addTerm(P, C); // I or Z at q: unchanged
      continue;
    }
    bool IsY = X && Z;
    // Letter X: -> (X -+ Y)/sqrt2; letter Y: -> (+-X + Y)/sqrt2.
    Pauli WithX = P, WithY = P;
    WithX.setKind(Q, PauliKind::X);
    WithY.setKind(Q, PauliKind::Y);
    WithX = WithX.abs();
    WithY = WithY.abs();
    Sqrt2Ring CI = C * Inv;
    if (!IsY) {
      addTerm(WithX, CI);
      addTerm(WithY, Dagger ? CI : CI * Sqrt2Ring(-1));
    } else {
      addTerm(WithY, CI);
      addTerm(WithX, Dagger ? CI * Sqrt2Ring(-1) : CI);
    }
  }
}

void PauliExpr::conjugateInverse(GateKind Kind, size_t Q0, size_t Q1) {
  if (Kind == GateKind::T || Kind == GateKind::Tdg) {
    conjugateByT(Q0, Kind == GateKind::Tdg);
    return;
  }
  // Clifford: conjugate each term, folding signs into coefficients.
  std::vector<std::pair<Pauli, Sqrt2Ring>> Old = terms();
  Terms.clear();
  for (auto &[P, C] : Old) {
    P.conjugateInverse(Kind, Q0, Q1);
    assert(P.isHermitian());
    if (P.signBit()) {
      P.negate();
      C = C * Sqrt2Ring(-1);
    }
    addTerm(P, C);
  }
}

void PauliExpr::conjugate(GateKind Kind, size_t Q0, size_t Q1) {
  conjugateInverse(inverseGate(Kind), Q0, Q1);
}

bool PauliExpr::operator==(const PauliExpr &O) const {
  return N == O.N && Terms == O.Terms;
}

std::string PauliExpr::toString() const {
  if (Terms.empty())
    return "0";
  std::string S;
  for (const auto &[P, C] : terms()) {
    if (!S.empty())
      S += " + ";
    S += C.toString() + "*" + P.toString();
  }
  return S;
}
