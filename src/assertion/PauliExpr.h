//===- assertion/PauliExpr.h - Pauli expressions (Eqn. (4)) -----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Pauli-expression language PExp of Section 3.1: real linear
/// combinations of Pauli operators with coefficients in Z[1/sqrt2]
/// (SExp). Closed under conjugation by the whole Clifford+T gate set —
/// the content of Theorem 3.1, which tests/pauliexpr_test.cpp verifies
/// against dense matrices. This is the exact algebra behind the
/// "tainted" generators of the VC engine: a T-tainted generator is the
/// PauliExpr T_q g T_q^dagger, e.g. (1/sqrt2) X1 X3 (X5 - Y5) X7 in the
/// paper's Section 5.2.2.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_ASSERTION_PAULIEXPR_H
#define VERIQEC_ASSERTION_PAULIEXPR_H

#include "pauli/Pauli.h"
#include "ring/Sqrt2Ring.h"

#include <map>
#include <string>
#include <vector>

namespace veriqec {

/// A finite sum  sum_i c_i * P_i  with c_i in Z[1/sqrt2] and P_i
/// Hermitian Pauli operators with + sign (the sign lives in c_i).
class PauliExpr {
public:
  PauliExpr() = default;

  /// The expression consisting of the single (signed, Hermitian) Pauli.
  explicit PauliExpr(const Pauli &P);

  /// Number of qubits (0 for the empty expression).
  size_t numQubits() const { return N; }

  bool isZero() const { return Terms.empty(); }

  /// True if the expression is a single Pauli with coefficient +-1.
  bool isSinglePauli() const;

  /// The terms, deterministically ordered.
  std::vector<std::pair<Pauli, Sqrt2Ring>> terms() const;

  PauliExpr operator+(const PauliExpr &O) const;
  PauliExpr operator-() const;
  PauliExpr operator-(const PauliExpr &O) const { return *this + (-O); }

  /// Operator product (bilinear extension of Pauli multiplication; terms
  /// whose product carries an imaginary phase are rejected by assertion —
  /// PExp is a real algebra, and Clifford+T conjugation never leaves it).
  PauliExpr operator*(const PauliExpr &O) const;

  /// Scalar multiple.
  PauliExpr scaled(const Sqrt2Ring &C) const;

  /// Conjugation this <- U^dagger * this * U (the Fig. 3 substitution
  /// direction), for the full gate set including T/Tdg. For T on qubit q:
  /// X_q -> (X_q - Y_q)/sqrt2, Y_q -> (X_q + Y_q)/sqrt2 (rule (U-T)).
  void conjugateInverse(GateKind Kind, size_t Q0, size_t Q1 = ~size_t{0});

  /// Forward conjugation this <- U * this * U^dagger.
  void conjugate(GateKind Kind, size_t Q0, size_t Q1 = ~size_t{0});

  bool operator==(const PauliExpr &O) const;

  /// e.g. "(1 + 0*sqrt2)/2^1... X1X3X5X7 - ..." (deterministic order).
  std::string toString() const;

private:
  /// Key: the letters (x/z rows) of a Hermitian +-signed Pauli.
  struct Key {
    BitVector X, Z;
    bool operator<(const Key &O) const {
      if (!(X == O.X))
        return X < O.X;
      return Z < O.Z;
    }
    bool operator==(const Key &O) const { return X == O.X && Z == O.Z; }
  };

  void addTerm(const Pauli &P, const Sqrt2Ring &C);
  void conjugateByT(size_t Q, bool Dagger);

  size_t N = 0;
  std::map<Key, Sqrt2Ring> Terms;
};

} // namespace veriqec

#endif // VERIQEC_ASSERTION_PAULIEXPR_H
