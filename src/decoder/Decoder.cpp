//===- decoder/Decoder.cpp - Syndrome decoders ------------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "decoder/Decoder.h"

#include "smt/BoolExpr.h"
#include "smt/CubeSolver.h"
#include "support/Assert.h"

using namespace veriqec;

Decoder::~Decoder() = default;

LookupDecoder::LookupDecoder(const StabilizerCode &Code, size_t MaxWeight) {
  size_t N = Code.NumQubits;
  // Enumerate error supports of increasing weight so the first entry per
  // syndrome is minimum-weight.
  Table.emplace(BitVector(Code.Generators.size()), Pauli(N));

  std::vector<size_t> Support;
  const PauliKind Kinds[3] = {PauliKind::X, PauliKind::Y, PauliKind::Z};

  // Recursive enumeration of supports and letters.
  auto enumerate = [&](auto &&Self, size_t Start, size_t Remaining,
                       Pauli &Error) -> void {
    if (Remaining == 0) {
      BitVector Syn = Code.syndromeOf(Error);
      Table.emplace(Syn, Error); // keeps the earlier (lighter) entry
      return;
    }
    for (size_t Q = Start; Q + Remaining <= N + 1 && Q != N; ++Q) {
      for (PauliKind K : Kinds) {
        Error.setKind(Q, K);
        Self(Self, Q + 1, Remaining - 1, Error);
      }
      Error.setKind(Q, PauliKind::I);
    }
  };
  for (size_t W = 1; W <= MaxWeight; ++W) {
    Pauli Error(N);
    enumerate(enumerate, 0, W, Error);
  }
}

std::optional<Pauli> LookupDecoder::decode(const BitVector &Syndrome) {
  auto It = Table.find(Syndrome);
  if (It == Table.end())
    return std::nullopt;
  return It->second.abs();
}

std::optional<Pauli> SatDecoder::decode(const BitVector &Syndrome) {
  using namespace smt;
  assert(Syndrome.size() == Code.Generators.size() && "syndrome size");
  size_t N = Code.NumQubits;
  BoolContext Ctx;
  std::vector<ExprRef> XVars, ZVars, SupportVars;
  for (size_t Q = 0; Q != N; ++Q) {
    XVars.push_back(Ctx.mkVar("x" + std::to_string(Q)));
    ZVars.push_back(Ctx.mkVar("z" + std::to_string(Q)));
    SupportVars.push_back(Ctx.mkOr(XVars[Q], ZVars[Q]));
  }
  std::vector<ExprRef> Constraints;
  for (size_t G = 0; G != Code.Generators.size(); ++G) {
    const Pauli &Gen = Code.Generators[G];
    std::vector<ExprRef> Parity;
    for (size_t Q = 0; Q != N; ++Q) {
      if (Gen.zBits().get(Q))
        Parity.push_back(XVars[Q]);
      if (Gen.xBits().get(Q))
        Parity.push_back(ZVars[Q]);
    }
    ExprRef P = Parity.empty() ? Ctx.mkFalse() : Ctx.mkXor(std::move(Parity));
    Constraints.push_back(Syndrome.get(G) ? P : Ctx.mkNot(P));
  }
  ExprRef Base = Ctx.mkAnd(Constraints);

  for (size_t W = 0; W <= N; ++W) {
    ExprRef Root =
        Ctx.mkAnd(Base, Ctx.mkAtMost(SupportVars, static_cast<uint32_t>(W)));
    SolveOutcome Out = solveExpr(Ctx, Root);
    if (Out.Result != sat::SolveResult::Sat)
      continue;
    Pauli Correction(N);
    for (size_t Q = 0; Q != N; ++Q) {
      bool X = Out.Model.at("x" + std::to_string(Q));
      bool Z = Out.Model.at("z" + std::to_string(Q));
      if (X && Z)
        Correction.setKind(Q, PauliKind::Y);
      else if (X)
        Correction.setKind(Q, PauliKind::X);
      else if (Z)
        Correction.setKind(Q, PauliKind::Z);
    }
    return Correction.abs();
  }
  return std::nullopt;
}
