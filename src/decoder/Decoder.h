//===- decoder/Decoder.h - Syndrome decoders --------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimum-weight syndrome decoders. The verification conditions reason
/// about decoders symbolically through the contract P_f (Section 5.2); the
/// concrete decoders here serve the sampling baseline (Section 7.2's Stim
/// comparison) and decoder-audit examples.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_DECODER_DECODER_H
#define VERIQEC_DECODER_DECODER_H

#include "qec/StabilizerCode.h"

#include <optional>
#include <unordered_map>

namespace veriqec {

/// Interface: maps a syndrome (one bit per generator) to a Pauli
/// correction whose syndrome matches, or nullopt if none is known.
class Decoder {
public:
  virtual ~Decoder();

  /// Decodes \p Syndrome into a correction operator.
  virtual std::optional<Pauli> decode(const BitVector &Syndrome) = 0;
};

/// Table decoder: precomputes the minimum-weight correction for every
/// syndrome reachable by errors of weight <= MaxWeight (breadth-first over
/// weights, so entries are automatically minimum-weight).
class LookupDecoder : public Decoder {
public:
  LookupDecoder(const StabilizerCode &Code, size_t MaxWeight);

  std::optional<Pauli> decode(const BitVector &Syndrome) override;

  size_t tableSize() const { return Table.size(); }

private:
  std::unordered_map<BitVector, Pauli> Table;
};

/// SAT decoder: finds a minimum-weight correction for an arbitrary
/// syndrome with iterative cardinality-bounded SAT queries. Handles codes
/// whose syndrome space is too large to tabulate.
class SatDecoder : public Decoder {
public:
  explicit SatDecoder(const StabilizerCode &Code) : Code(Code) {}

  std::optional<Pauli> decode(const BitVector &Syndrome) override;

private:
  const StabilizerCode &Code;
};

} // namespace veriqec

#endif // VERIQEC_DECODER_DECODER_H
