//===- dist/Codec.cpp - Versioned binary wire format -----------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "dist/Codec.h"

#include "obs/Trace.h"

#include <algorithm>
#include <limits>

using namespace veriqec;
using namespace veriqec::dist;
using sat::Lit;
using sat::Var;

namespace {

// -- Shared sub-codecs -------------------------------------------------------

void encodeStats(Encoder &E, const sat::SolverStats &S) {
  E.u64(S.Decisions);
  // WireVersion 4: the one Propagations counter became the binary/long
  // split, and the chrono counters joined at the tail.
  E.u64(S.BinPropagations);
  E.u64(S.LongPropagations);
  E.u64(S.Conflicts);
  E.u64(S.LearnedClauses);
  E.u64(S.Restarts);
  E.u64(S.XorPropagations);
  E.u64(S.XorConflicts);
  E.u64(S.XorEliminations);
  // WireVersion 3: arena telemetry.
  E.u64(S.ArenaBytes);
  E.u64(S.WastedBytes);
  E.u64(S.Compactions);
  E.u64(S.ChronoBacktracks);
  E.u64(S.OutOfOrderAssignments);
  E.u64(S.TrailSavedLits);
}

sat::SolverStats decodeStats(Decoder &D) {
  sat::SolverStats S;
  S.Decisions = D.u64();
  S.BinPropagations = D.u64();
  S.LongPropagations = D.u64();
  S.Conflicts = D.u64();
  S.LearnedClauses = D.u64();
  S.Restarts = D.u64();
  S.XorPropagations = D.u64();
  S.XorConflicts = D.u64();
  S.XorEliminations = D.u64();
  S.ArenaBytes = D.u64();
  S.WastedBytes = D.u64();
  S.Compactions = D.u64();
  S.ChronoBacktracks = D.u64();
  S.OutOfOrderAssignments = D.u64();
  S.TrailSavedLits = D.u64();
  return S;
}

void encodeModel(Encoder &E,
                 const std::unordered_map<std::string, bool> &Model) {
  // Sorted for a canonical byte stream (maps have no iteration order).
  std::vector<std::pair<std::string, bool>> Entries(Model.begin(),
                                                    Model.end());
  std::sort(Entries.begin(), Entries.end());
  E.u32(static_cast<uint32_t>(Entries.size()));
  for (const auto &[Name, Value] : Entries) {
    E.str(Name);
    E.boolean(Value);
  }
}

std::unordered_map<std::string, bool> decodeModel(Decoder &D) {
  std::unordered_map<std::string, bool> Model;
  uint32_t N = D.count(5); // 4-byte length + >= 0 chars + 1 bool
  for (uint32_t I = 0; I != N && D.ok(); ++I) {
    std::string Name = D.str();
    bool Value = D.boolean();
    Model.emplace(std::move(Name), Value);
  }
  return Model;
}

void encodeRows(Encoder &E, const std::vector<smt::ParityRow> &Rows) {
  E.u32(static_cast<uint32_t>(Rows.size()));
  for (const smt::ParityRow &R : Rows) {
    E.u32(static_cast<uint32_t>(R.Vars.size()));
    for (uint32_t V : R.Vars)
      E.u32(V);
    E.boolean(R.Rhs);
  }
}

std::vector<smt::ParityRow> decodeRows(Decoder &D) {
  std::vector<smt::ParityRow> Rows;
  uint32_t N = D.count(5);
  Rows.reserve(N);
  for (uint32_t I = 0; I != N && D.ok(); ++I) {
    smt::ParityRow R;
    uint32_t M = D.count(4);
    R.Vars.reserve(M);
    for (uint32_t J = 0; J != M && D.ok(); ++J)
      R.Vars.push_back(D.u32());
    R.Rhs = D.boolean();
    Rows.push_back(std::move(R));
  }
  return Rows;
}

void encodeConfig(Encoder &E, const engine::CubeRunConfig &C) {
  E.boolean(C.HardenBudget);
  E.u32(C.BudgetBound);
  E.u64(C.ConflictBudget);
  E.u64(C.RandomSeed);
  E.boolean(C.LogProofs);
  // WireVersion 4.
  E.boolean(C.Chrono);
}

engine::CubeRunConfig decodeConfig(Decoder &D) {
  engine::CubeRunConfig C;
  C.HardenBudget = D.boolean();
  C.BudgetBound = D.u32();
  C.ConflictBudget = D.u64();
  C.RandomSeed = D.u64();
  C.LogProofs = D.boolean();
  C.Chrono = D.boolean();
  return C;
}

// -- Per-message bodies ------------------------------------------------------

void encodeBody(Encoder &E, const HelloMsg &M) {
  E.u32(M.Magic);
  E.u32(M.Version);
  E.u32(M.Slots);
}

void encodeBody(Encoder &E, const HelloAckMsg &M) {
  E.u32(M.Magic);
  E.u32(M.Version);
  E.boolean(M.Accepted);
  E.str(M.Reason);
}

void encodeBody(Encoder &E, const ProblemMsg &M) {
  E.u32(M.ProblemId);
  encodeConfig(E, M.Config);
  E.boolean(M.Persistent);
  ProblemCodec::encode(E, *M.Problem);
}

void encodeBody(Encoder &E, const CubeBatchMsg &M) {
  E.u32(M.ProblemId);
  E.u32(M.BatchId);
  E.litVecs(M.Cubes);
}

void encodeBody(Encoder &E, const BatchResultMsg &M) {
  E.u32(M.ProblemId);
  E.u32(M.BatchId);
  E.u8(static_cast<uint8_t>(M.Status));
  encodeModel(E, M.Model);
  encodeStats(E, M.Stats);
  E.u64(M.Solved);
  E.u64(M.PrunedGf2);
  E.u64(M.PrunedCore);
  E.litVecs(M.NewCores);
  E.u32(static_cast<uint32_t>(M.ProofChunks.size()));
  for (const auto &[Slot, Chunk] : M.ProofChunks) {
    E.u32(Slot);
    E.str(Chunk);
  }
}

void encodeBody(Encoder &E, const CoresMsg &M) {
  E.u32(M.ProblemId);
  E.litVecs(M.Cores);
}

void encodeBody(Encoder &E, const CancelMsg &M) { E.u32(M.ProblemId); }

void encodeBody(Encoder &E, const StealRequestMsg &M) { E.u32(M.MaxBatches); }

void encodeBody(Encoder &E, const StealReplyMsg &M) {
  E.u32(static_cast<uint32_t>(M.Batches.size()));
  for (const auto &[ProblemId, BatchId] : M.Batches) {
    E.u32(ProblemId);
    E.u32(BatchId);
  }
}

void encodeBody(Encoder &, const ShutdownMsg &) {}

void encodeBody(Encoder &E, const HeartbeatMsg &M) {
  E.u32(M.BatchesInFlight);
  E.u64(M.CubesDelta);
  E.u64(M.ConflictsDelta);
}

void encodeBody(Encoder &E, const EvictedMsg &M) { E.str(M.Reason); }

} // namespace

// -- ProblemCodec ------------------------------------------------------------

void ProblemCodec::encode(Encoder &E, const smt::VerificationProblem &P) {
  E.u64(P.Cnf.NumVars);
  E.u32(static_cast<uint32_t>(P.Cnf.Clauses.size()));
  for (const std::vector<Lit> &C : P.Cnf.Clauses)
    E.lits(C);
  {
    std::vector<std::pair<uint32_t, Var>> Entries(P.Cnf.VarOfBoolVar.begin(),
                                                  P.Cnf.VarOfBoolVar.end());
    std::sort(Entries.begin(), Entries.end());
    E.u32(static_cast<uint32_t>(Entries.size()));
    for (const auto &[BoolId, V] : Entries) {
      E.u32(BoolId);
      E.i32(V);
    }
  }
  E.u32(static_cast<uint32_t>(P.NamedVars.size()));
  for (const auto &[Name, V] : P.NamedVars) {
    E.str(Name);
    E.i32(V);
  }
  E.u32(static_cast<uint32_t>(P.XorRows.size()));
  for (const auto &[Vars, Rhs] : P.XorRows) {
    E.u32(static_cast<uint32_t>(Vars.size()));
    for (Var V : Vars)
      E.i32(V);
    E.boolean(Rhs);
  }
  E.boolean(P.TriviallyUnsat);
  E.u64(P.Prep.LinearConjuncts);
  E.u64(P.Prep.LinearVars);
  E.u64(P.Prep.RowsKept);
  E.u64(P.Prep.UnitsFixed);
  E.u64(P.Prep.VarsEliminated);
  E.u64(P.Prep.EquivAliased);
  E.u64(P.Prep.ResidueConjuncts);
  E.boolean(P.Prep.TriviallyUnsat);
  E.u32(static_cast<uint32_t>(P.VarNames.size()));
  for (const std::string &Name : P.VarNames)
    E.str(Name);
  E.u32(static_cast<uint32_t>(P.Eliminated.size()));
  for (const smt::VarReconstruction &R : P.Eliminated) {
    E.u32(R.VarId);
    E.u32(static_cast<uint32_t>(R.Deps.size()));
    for (uint32_t Dep : R.Deps)
      E.u32(Dep);
    E.boolean(R.Constant);
  }
  encodeRows(E, P.Pruner.rows());
  E.boolean(P.PruneByElimination);
  E.lits(P.BudgetCounter);
  E.u64(P.NumBudgetTerms);
  {
    std::vector<std::pair<int32_t, uint32_t>> Entries(P.BoolVarOfSat.begin(),
                                                      P.BoolVarOfSat.end());
    std::sort(Entries.begin(), Entries.end());
    E.u32(static_cast<uint32_t>(Entries.size()));
    for (const auto &[SatVar, BoolId] : Entries) {
      E.i32(SatVar);
      E.u32(BoolId);
    }
  }
}

std::shared_ptr<smt::VerificationProblem> ProblemCodec::decode(Decoder &D) {
  // Private constructor: the codec is a friend of the struct.
  std::shared_ptr<smt::VerificationProblem> P(new smt::VerificationProblem());
  P->Cnf.NumVars = D.u64();
  // Everything downstream indexes by CNF variable (solver loading) or
  // BoolContext id (reconstruction, pruning rows), so both universes are
  // range-checked against their declared sizes as they are read — a
  // corrupted id must fail the frame, not balloon an index vector or
  // walk a solver off its arrays.
  if (P->Cnf.NumVars >
      static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    D.fail();
    return nullptr;
  }
  auto cnfVar = [&](int32_t V) {
    if (V < 0 || static_cast<uint64_t>(V) >= P->Cnf.NumVars)
      D.fail();
    return V;
  };
  auto cnfLit = [&](Lit L) {
    cnfVar(L.var());
    return L;
  };
  uint32_t NumClauses = D.count(4);
  P->Cnf.Clauses.reserve(NumClauses);
  for (uint32_t I = 0; I != NumClauses && D.ok(); ++I) {
    std::vector<Lit> Clause = D.lits();
    for (Lit L : Clause)
      cnfLit(L);
    P->Cnf.Clauses.push_back(std::move(Clause));
  }
  uint32_t NumMapped = D.count(8);
  for (uint32_t I = 0; I != NumMapped && D.ok(); ++I) {
    uint32_t BoolId = D.u32();
    P->Cnf.VarOfBoolVar.emplace(BoolId, cnfVar(D.i32()));
  }
  uint32_t NumNamed = D.count(8);
  P->NamedVars.reserve(NumNamed);
  for (uint32_t I = 0; I != NumNamed && D.ok(); ++I) {
    std::string Name = D.str();
    P->NamedVars.emplace_back(std::move(Name), cnfVar(D.i32()));
  }
  uint32_t NumXor = D.count(5);
  P->XorRows.reserve(NumXor);
  for (uint32_t I = 0; I != NumXor && D.ok(); ++I) {
    uint32_t M = D.count(4);
    std::vector<Var> Vars;
    Vars.reserve(M);
    for (uint32_t J = 0; J != M && D.ok(); ++J)
      Vars.push_back(cnfVar(D.i32()));
    bool Rhs = D.boolean();
    P->XorRows.emplace_back(std::move(Vars), Rhs);
  }
  P->TriviallyUnsat = D.boolean();
  P->Prep.LinearConjuncts = D.u64();
  P->Prep.LinearVars = D.u64();
  P->Prep.RowsKept = D.u64();
  P->Prep.UnitsFixed = D.u64();
  P->Prep.VarsEliminated = D.u64();
  P->Prep.EquivAliased = D.u64();
  P->Prep.ResidueConjuncts = D.u64();
  P->Prep.TriviallyUnsat = D.boolean();
  uint32_t NumNames = D.count(4);
  P->VarNames.reserve(NumNames);
  for (uint32_t I = 0; I != NumNames && D.ok(); ++I)
    P->VarNames.push_back(D.str());
  auto boolId = [&](uint32_t V) {
    if (V >= P->VarNames.size())
      D.fail();
    return V;
  };
  uint32_t NumElim = D.count(9);
  P->Eliminated.reserve(NumElim);
  for (uint32_t I = 0; I != NumElim && D.ok(); ++I) {
    smt::VarReconstruction R;
    R.VarId = boolId(D.u32());
    uint32_t M = D.count(4);
    R.Deps.reserve(M);
    for (uint32_t J = 0; J != M && D.ok(); ++J)
      R.Deps.push_back(boolId(D.u32()));
    R.Constant = D.boolean();
    P->Eliminated.push_back(std::move(R));
  }
  std::vector<smt::ParityRow> PrunerRows = decodeRows(D);
  for (const smt::ParityRow &R : PrunerRows)
    for (uint32_t V : R.Vars)
      boolId(V);
  if (!D.ok())
    return nullptr; // before the propagator sizes its per-var index
  P->Pruner = smt::ParityPropagator(std::move(PrunerRows));
  P->PruneByElimination = D.boolean();
  P->BudgetCounter = D.lits();
  for (Lit L : P->BudgetCounter)
    cnfLit(L);
  P->NumBudgetTerms = D.u64();
  uint32_t NumRev = D.count(8);
  for (uint32_t I = 0; I != NumRev && D.ok(); ++I) {
    int32_t SatVar = cnfVar(D.i32());
    P->BoolVarOfSat.emplace(SatVar, boolId(D.u32()));
  }
  if (!D.ok())
    return nullptr;
  return P;
}

// -- Top-level message codec -------------------------------------------------

std::vector<uint8_t> veriqec::dist::encodeMessage(const Message &M) {
  obs::TraceSpan Span("wire_encode", {{"kind", M.index()}});
  Encoder E;
  E.u8(static_cast<uint8_t>(MsgKind::Hello) +
       static_cast<uint8_t>(M.index()));
  std::visit([&E](const auto &Body) { encodeBody(E, Body); }, M);
  std::vector<uint8_t> Out = E.take();
  Span.arg("bytes", Out.size());
  return Out;
}

bool veriqec::dist::decodeMessage(std::span<const uint8_t> Payload,
                                  Message &Out) {
  obs::TraceSpan Span("wire_decode", {{"bytes", Payload.size()}});
  Decoder D(Payload);
  switch (static_cast<MsgKind>(D.u8())) {
  case MsgKind::Hello: {
    HelloMsg M;
    M.Magic = D.u32();
    M.Version = D.u32();
    M.Slots = D.u32();
    Out = M;
    break;
  }
  case MsgKind::HelloAck: {
    HelloAckMsg M;
    M.Magic = D.u32();
    M.Version = D.u32();
    M.Accepted = D.boolean();
    M.Reason = D.str();
    Out = std::move(M);
    break;
  }
  case MsgKind::Problem: {
    ProblemMsg M;
    M.ProblemId = D.u32();
    M.Config = decodeConfig(D);
    M.Persistent = D.boolean();
    M.Problem = ProblemCodec::decode(D);
    if (!M.Problem)
      return false;
    Out = std::move(M);
    break;
  }
  case MsgKind::CubeBatch: {
    CubeBatchMsg M;
    M.ProblemId = D.u32();
    M.BatchId = D.u32();
    M.Cubes = D.litVecs();
    Out = std::move(M);
    break;
  }
  case MsgKind::BatchResult: {
    BatchResultMsg M;
    M.ProblemId = D.u32();
    M.BatchId = D.u32();
    uint8_t S = D.u8();
    if (S > static_cast<uint8_t>(BatchStatus::Cancelled))
      return false;
    M.Status = static_cast<BatchStatus>(S);
    M.Model = decodeModel(D);
    M.Stats = decodeStats(D);
    M.Solved = D.u64();
    M.PrunedGf2 = D.u64();
    M.PrunedCore = D.u64();
    M.NewCores = D.litVecs();
    uint32_t NumChunks = D.count(8); // 4-byte slot + 4-byte length each
    M.ProofChunks.reserve(NumChunks);
    for (uint32_t I = 0; I != NumChunks && D.ok(); ++I) {
      uint32_t Slot = D.u32();
      M.ProofChunks.emplace_back(Slot, D.str());
    }
    Out = std::move(M);
    break;
  }
  case MsgKind::Cores: {
    CoresMsg M;
    M.ProblemId = D.u32();
    M.Cores = D.litVecs();
    Out = std::move(M);
    break;
  }
  case MsgKind::Cancel: {
    CancelMsg M;
    M.ProblemId = D.u32();
    Out = M;
    break;
  }
  case MsgKind::StealRequest: {
    StealRequestMsg M;
    M.MaxBatches = D.u32();
    Out = M;
    break;
  }
  case MsgKind::StealReply: {
    StealReplyMsg M;
    uint32_t N = D.count(8);
    M.Batches.reserve(N);
    for (uint32_t I = 0; I != N && D.ok(); ++I) {
      uint32_t ProblemId = D.u32();
      M.Batches.emplace_back(ProblemId, D.u32());
    }
    Out = std::move(M);
    break;
  }
  case MsgKind::Shutdown:
    Out = ShutdownMsg{};
    break;
  case MsgKind::Heartbeat: {
    HeartbeatMsg M;
    M.BatchesInFlight = D.u32();
    M.CubesDelta = D.u64();
    M.ConflictsDelta = D.u64();
    Out = M;
    break;
  }
  case MsgKind::Evicted: {
    EvictedMsg M;
    M.Reason = D.str();
    Out = std::move(M);
    break;
  }
  default:
    return false;
  }
  return D.ok() && D.atEnd();
}
