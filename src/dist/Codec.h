//===- dist/Codec.h - Versioned binary wire format --------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire vocabulary of the distributed verification layer: a
/// length-prefixed, versioned, little-endian binary format that
/// round-trips everything a remote cube worker needs — whole encoded
/// smt::VerificationProblems (CNF clauses, native XOR rows, pruning rows,
/// reconstruction records, budget-layer metadata), cube batches,
/// per-batch results with counterexample models and solver statistics,
/// and failed-assumption cores for cross-node subtree pruning. Framing
/// (the u32 length prefix) belongs to the transport (dist/Transport.h);
/// this layer encodes and decodes frame payloads. Decoding is strict:
/// any truncation, over-length count, unknown tag or trailing byte
/// poisons the Decoder and rejects the frame, so a corrupted or
/// version-skewed peer can never smuggle a half-parsed message into the
/// scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_DIST_CODEC_H
#define VERIQEC_DIST_CODEC_H

#include "engine/CubeRun.h"
#include "smt/CubeSolver.h"

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace veriqec::dist {

/// First bytes of every Hello: rejects non-veriqec peers outright.
constexpr uint32_t WireMagic = 0x43455156; // "VQEC" little-endian
/// Bumped on every incompatible wire change; the handshake refuses a
/// mismatch in either direction. v2: CubeRunConfig::LogProofs and
/// BatchResultMsg::ProofChunks. v3: arena telemetry in SolverStats.
/// v4: the binary/long propagation split + chrono counters in
/// SolverStats and CubeRunConfig::Chrono. v5: progress Heartbeat
/// (worker -> coordinator) and Evicted (coordinator -> worker) frames.
constexpr uint32_t WireVersion = 5;
/// Upper bound on one frame payload (a surface-scale problem is a few
/// MB; anything near this is a corrupt length prefix, not data).
constexpr uint32_t MaxFrameBytes = 256u << 20;

// -- Byte-level primitives ---------------------------------------------------

/// Append-only little-endian byte writer.
class Encoder {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void boolean(bool V) { u8(V ? 1 : 0); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  void lit(sat::Lit L) { i32(L.Code); }
  void lits(const std::vector<sat::Lit> &Ls) {
    u32(static_cast<uint32_t>(Ls.size()));
    for (sat::Lit L : Ls)
      lit(L);
  }
  void litVecs(const std::vector<std::vector<sat::Lit>> &Vs) {
    u32(static_cast<uint32_t>(Vs.size()));
    for (const std::vector<sat::Lit> &V : Vs)
      lits(V);
  }

  const std::vector<uint8_t> &bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian byte reader. Every underrun or
/// out-of-range count sets the sticky failure flag and yields zero
/// values; callers check ok() once at the end instead of after every
/// field.
class Decoder {
public:
  explicit Decoder(std::span<const uint8_t> Data) : Data(Data) {}

  bool ok() const { return !Failed; }
  bool atEnd() const { return Pos == Data.size(); }
  void fail() { Failed = true; }
  size_t remaining() const { return Data.size() - Pos; }

  uint8_t u8() {
    if (remaining() < 1) {
      Failed = true;
      return 0;
    }
    return Data[Pos++];
  }
  bool boolean() {
    uint8_t V = u8();
    if (V > 1)
      Failed = true; // corrupt: bools are canonical 0/1 on the wire
    return V == 1;
  }
  uint32_t u32() {
    if (remaining() < 4) {
      Failed = true;
      Pos = Data.size();
      return 0;
    }
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  uint64_t u64() {
    if (remaining() < 8) {
      Failed = true;
      Pos = Data.size();
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  /// Reads a count that prefixes \p ElemBytes-sized elements; fails (and
  /// returns 0) when the announced count cannot fit in the remaining
  /// bytes — the defense against corrupt length fields triggering huge
  /// allocations.
  uint32_t count(size_t ElemBytes) {
    uint32_t N = u32();
    if (!Failed && static_cast<uint64_t>(N) * ElemBytes > remaining()) {
      Failed = true;
      return 0;
    }
    return N;
  }
  std::string str() {
    uint32_t N = count(1);
    if (Failed)
      return {};
    std::string S(reinterpret_cast<const char *>(Data.data() + Pos), N);
    Pos += N;
    return S;
  }
  sat::Lit lit() {
    sat::Lit L;
    L.Code = i32();
    return L;
  }
  std::vector<sat::Lit> lits() {
    uint32_t N = count(4);
    std::vector<sat::Lit> Out;
    if (Failed)
      return Out;
    Out.reserve(N);
    for (uint32_t I = 0; I != N && !Failed; ++I)
      Out.push_back(lit());
    return Out;
  }
  std::vector<std::vector<sat::Lit>> litVecs() {
    uint32_t N = count(4);
    std::vector<std::vector<sat::Lit>> Out;
    if (Failed)
      return Out;
    Out.reserve(N);
    for (uint32_t I = 0; I != N && !Failed; ++I)
      Out.push_back(lits());
    return Out;
  }

private:
  std::span<const uint8_t> Data;
  size_t Pos = 0;
  bool Failed = false;
};

// -- Problem codec -----------------------------------------------------------

/// Serializes whole smt::VerificationProblems. A friend of the struct:
/// it reaches the private reconstruction/pruning state and rebuilds
/// instances through the private default constructor, so a decoded
/// problem is behaviorally identical to the coordinator's original
/// (makeSolver, cubeRefuted, readModel, weight assumptions — everything).
class ProblemCodec {
public:
  static void encode(Encoder &E, const smt::VerificationProblem &P);
  /// Returns nullptr (and poisons \p D) on any malformed input.
  static std::shared_ptr<smt::VerificationProblem> decode(Decoder &D);
};

// -- Messages ----------------------------------------------------------------

enum class MsgKind : uint8_t {
  Hello = 1,     ///< worker -> coordinator: version + slot count
  HelloAck,      ///< coordinator -> worker: accept / version-reject
  Problem,       ///< coordinator -> worker: encoded problem + config
  CubeBatch,     ///< coordinator -> worker: a batch of cubes to discharge
  BatchResult,   ///< worker -> coordinator: verdict, stats, model, cores
  Cores,         ///< coordinator -> worker: cross-node core broadcast
  Cancel,        ///< coordinator -> worker: stop + forget one problem
  StealRequest,  ///< coordinator -> worker: give back queued batches
  StealReply,    ///< worker -> coordinator: the batch ids it gave back
  Shutdown,      ///< coordinator -> worker: exit cleanly
  Heartbeat,     ///< worker -> coordinator: periodic progress report
  Evicted,       ///< coordinator -> worker: dropped, stop grinding
};

struct HelloMsg {
  uint32_t Magic = WireMagic;
  uint32_t Version = WireVersion;
  uint32_t Slots = 1;
};

struct HelloAckMsg {
  uint32_t Magic = WireMagic;
  uint32_t Version = WireVersion;
  bool Accepted = false;
  std::string Reason; ///< human-readable rejection cause
};

struct ProblemMsg {
  uint32_t ProblemId = 0;
  engine::CubeRunConfig Config;
  /// The problem serves many incremental cube sets (the distance
  /// search): the worker resets its run's verdict state between
  /// batches after a decided set, instead of treating the latched
  /// cancel as "this problem is over".
  bool Persistent = false;
  std::shared_ptr<smt::VerificationProblem> Problem;
};

struct CubeBatchMsg {
  uint32_t ProblemId = 0;
  uint32_t BatchId = 0;
  std::vector<std::vector<sat::Lit>> Cubes;
};

/// Verdict of one batch. AllUnsat means every cube was discharged UNSAT
/// (or pruned); Sat/GlobalUnsat decide the whole problem.
enum class BatchStatus : uint8_t {
  AllUnsat = 0,
  Sat,
  Aborted,
  GlobalUnsat,
  Cancelled,
};

struct BatchResultMsg {
  uint32_t ProblemId = 0;
  uint32_t BatchId = 0;
  BatchStatus Status = BatchStatus::AllUnsat;
  /// Counterexample model (named variables, reconstruction already
  /// applied worker-side) when Status == Sat.
  std::unordered_map<std::string, bool> Model;
  /// Solver-statistics DELTA since the worker's previous report for this
  /// problem (slot solvers persist across batches, so totals would
  /// double-count).
  sat::SolverStats Stats;
  uint64_t Solved = 0;
  uint64_t PrunedGf2 = 0;
  uint64_t PrunedCore = 0;
  /// Strict-subset UNSAT cores discovered in this batch, for the
  /// coordinator to broadcast to sibling workers.
  std::vector<std::vector<sat::Lit>> NewCores;
  /// With CubeRunConfig::LogProofs: per-slot proof text accrued since
  /// the worker's previous report, as (slot, chunk) pairs. Chunks are
  /// record-atomic; the coordinator concatenates chunks of the same
  /// (worker, slot) in arrival order into one stream per slot.
  std::vector<std::pair<uint32_t, std::string>> ProofChunks;
};

struct CoresMsg {
  uint32_t ProblemId = 0;
  std::vector<std::vector<sat::Lit>> Cores;
};

struct CancelMsg {
  uint32_t ProblemId = 0;
};

struct StealRequestMsg {
  /// Give back up to this many not-yet-started batches (from the back of
  /// the local queue).
  uint32_t MaxBatches = 1;
};

struct StealReplyMsg {
  /// (ProblemId, BatchId) pairs the worker relinquished; the coordinator
  /// re-grants them from its own batch store.
  std::vector<std::pair<uint32_t, uint32_t>> Batches;
};

struct ShutdownMsg {};

/// Periodic worker -> coordinator progress report (WorkerOptions::
/// HeartbeatMs). ANY frame refreshes the coordinator's silence timer,
/// so a heartbeating worker is never declared dead by WorkerTimeoutMs
/// while it grinds a hard batch; the payload additionally feeds the
/// coordinator's `--progress` rendering.
struct HeartbeatMsg {
  /// Batches started but not yet resulted (0 or 1 today — the worker
  /// runs one batch at a time — plus its locally queued backlog).
  uint32_t BatchesInFlight = 0;
  /// Cubes discharged (solved or pruned) since the previous heartbeat.
  uint64_t CubesDelta = 0;
  /// Solver conflicts spent since the previous heartbeat (observed at
  /// cube granularity: a slot publishes after each cube completes).
  uint64_t ConflictsDelta = 0;
};

/// Coordinator -> worker eviction notice, sent just before the link is
/// closed on a silence timeout. The epoch check already ignores any
/// result the evicted worker might still send; this frame lets the
/// worker abort its in-flight solves instead of grinding to the end of
/// a batch nobody will accept.
struct EvictedMsg {
  std::string Reason; ///< human-readable cause (for the worker's stderr)
};

using Message =
    std::variant<HelloMsg, HelloAckMsg, ProblemMsg, CubeBatchMsg,
                 BatchResultMsg, CoresMsg, CancelMsg, StealRequestMsg,
                 StealReplyMsg, ShutdownMsg, HeartbeatMsg, EvictedMsg>;

/// Encodes one message into a frame payload (kind tag + body).
std::vector<uint8_t> encodeMessage(const Message &M);

/// Strict decode of one frame payload; false on any malformed input
/// (truncated, over-long, unknown kind, trailing bytes).
bool decodeMessage(std::span<const uint8_t> Payload, Message &Out);

} // namespace veriqec::dist

#endif // VERIQEC_DIST_CODEC_H
