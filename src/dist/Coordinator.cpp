//===- dist/Coordinator.cpp - Distributed cube scheduling ------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"

#include "obs/Progress.h"
#include "proof/ProofLog.h"
#include "support/Timer.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <thread>

using namespace veriqec;
using namespace veriqec::dist;
using sat::Lit;
using Clock = std::chrono::steady_clock;

struct Coordinator::WorkerState {
  std::unique_ptr<Link> L;
  /// Stable identity for proof-stream bookkeeping: WorkerState objects
  /// are destroyed when a worker drops, but its shipped proof chunks
  /// must survive under the same key.
  uint64_t Serial = 0;
  uint32_t Slots = 0;
  bool Ready = false; ///< handshake complete
  bool Dead = false;
  /// A steal request is in flight (or recently failed — cleared on the
  /// next message from this worker, so an empty-handed victim is not
  /// hammered with requests).
  bool StealPending = false;
  std::set<BatchKey> Outstanding; ///< granted, no result yet
  std::set<uint32_t> KnowsProblem;
  Clock::time_point LastActivity = Clock::now();
};

struct Coordinator::ActiveProblem {
  std::shared_ptr<const smt::VerificationProblem> Problem;
  engine::CubeRunConfig Config;
  /// Batch contents stay here so a stolen or requeued batch can be
  /// re-granted without asking anyone. Wire batch ids are monotone per
  /// problem and never reused: the current cube set occupies
  /// [FirstBatchId, FirstBatchId + BatchDone.size()), so a straggler
  /// result from a persistent problem's PREVIOUS solveCubes epoch can
  /// never be attributed to the current one.
  std::vector<std::vector<std::vector<Lit>>> BatchCubes;
  std::vector<uint8_t> BatchDone;
  uint32_t FirstBatchId = 0;
  uint32_t NextBatchId = 0;
  size_t DoneCount = 0;

  /// Index of a wire batch id in the CURRENT cube set; SIZE_MAX for
  /// stale or out-of-range ids.
  size_t indexOf(uint32_t BatchId) const {
    if (BatchId < FirstBatchId ||
        static_cast<size_t>(BatchId - FirstBatchId) >= BatchDone.size())
      return SIZE_MAX;
    return BatchId - FirstBatchId;
  }
  bool Decided = false; ///< SAT or GlobalUnsat ended the problem early
  bool AnyAborted = false;
  bool Finished = false;
  /// Open-handle problems persist worker-side between solveCubes calls.
  bool Persistent = false;
  smt::SolveOutcome Outcome;
  std::vector<std::vector<Lit>> Cores; ///< broadcast cache for joiners
  /// With Config.LogProofs: proof text per (worker serial, slot),
  /// concatenated in arrival order. A persistent problem accumulates
  /// across solveCubes epochs — remote slot solvers persist, so later
  /// derivations resolve against clauses learnt in earlier epochs and
  /// the streams are only checkable whole.
  std::map<std::pair<uint64_t, uint32_t>, std::string> ProofStreams;
  Timer ProblemClock;
  static constexpr size_t MaxCores = 256;
};

Coordinator::Coordinator(CoordinatorOptions Opts) : Opts(Opts) {}

Coordinator::~Coordinator() { shutdownWorkers(); }

void Coordinator::addWorker(std::unique_ptr<Link> L) {
  PendingLinks.push_back(std::move(L));
}

void Coordinator::attachListener(std::unique_ptr<Listener> L) {
  Listeners.push_back(std::move(L));
}

size_t Coordinator::numWorkers() const {
  size_t N = 0;
  for (const std::unique_ptr<WorkerState> &W : Workers)
    N += W->Ready && !W->Dead;
  return N;
}

size_t Coordinator::numSlots() const {
  size_t N = 0;
  for (const std::unique_ptr<WorkerState> &W : Workers)
    if (W->Ready && !W->Dead)
      N += W->Slots;
  return std::max<size_t>(N, 1);
}

void Coordinator::pumpAccept() {
  for (std::unique_ptr<Listener> &L : Listeners)
    while (std::unique_ptr<Link> New = L->accept(0))
      PendingLinks.push_back(std::move(New));
}

void Coordinator::pumpHandshakes() {
  for (size_t I = 0; I < PendingLinks.size();) {
    std::unique_ptr<Link> &L = PendingLinks[I];
    if (L->closed()) {
      PendingLinks.erase(PendingLinks.begin() + I);
      continue;
    }
    std::vector<uint8_t> Frame;
    if (!L->receive(Frame, 0)) {
      ++I;
      continue;
    }
    Message M;
    HelloMsg const *Hello = nullptr;
    if (decodeMessage(Frame, M))
      Hello = std::get_if<HelloMsg>(&M);
    HelloAckMsg Ack;
    if (!Hello || Hello->Magic != WireMagic) {
      Ack.Accepted = false;
      Ack.Reason = "not a veriqec worker hello";
    } else if (Hello->Version != WireVersion) {
      Ack.Accepted = false;
      Ack.Reason = "wire version mismatch (coordinator " +
                   std::to_string(WireVersion) + ", worker " +
                   std::to_string(Hello->Version) + ")";
    } else if (Hello->Slots == 0) {
      Ack.Accepted = false;
      Ack.Reason = "worker offered zero slots";
    } else {
      Ack.Accepted = true;
    }
    L->send(encodeMessage(Ack));
    if (Ack.Accepted) {
      auto W = std::make_unique<WorkerState>();
      W->L = std::move(L);
      W->Serial = NextWorkerSerial++;
      W->Slots = Hello->Slots;
      W->Ready = true;
      W->LastActivity = Clock::now();
      Workers.push_back(std::move(W));
    } else {
      L->close();
    }
    PendingLinks.erase(PendingLinks.begin() + I);
  }
}

bool Coordinator::waitForWorkers(size_t N, int TimeoutMs) {
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (numWorkers() < N) {
    pumpAccept();
    pumpHandshakes();
    if (numWorkers() >= N)
      break;
    if (Clock::now() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(Opts.PollMs));
  }
  return true;
}

bool Coordinator::sendBatch(WorkerState &W, uint32_t ProblemId,
                            uint32_t BatchId) {
  ActiveProblem &AP = *Problems.at(ProblemId);
  if (!W.KnowsProblem.count(ProblemId)) {
    ProblemMsg PM;
    PM.ProblemId = ProblemId;
    PM.Config = AP.Config;
    PM.Persistent = AP.Persistent;
    // The codec takes a shared_ptr<non-const>; encoding only reads.
    PM.Problem = std::const_pointer_cast<smt::VerificationProblem>(
        AP.Problem);
    if (!W.L->send(encodeMessage(PM)))
      return false;
    if (!AP.Cores.empty()) {
      CoresMsg CM;
      CM.ProblemId = ProblemId;
      CM.Cores = AP.Cores;
      W.L->send(encodeMessage(CM));
    }
    W.KnowsProblem.insert(ProblemId);
  }
  CubeBatchMsg BM;
  BM.ProblemId = ProblemId;
  BM.BatchId = BatchId;
  BM.Cubes = AP.BatchCubes[AP.indexOf(BatchId)];
  if (!W.L->send(encodeMessage(BM)))
    return false;
  W.Outstanding.insert({ProblemId, BatchId});
  return true;
}

Coordinator::WorkerState *Coordinator::pickGrantee() {
  WorkerState *Best = nullptr;
  double BestLoad = 0;
  for (std::unique_ptr<WorkerState> &W : Workers) {
    if (!W->Ready || W->Dead)
      continue;
    double Load =
        static_cast<double>(W->Outstanding.size()) / W->Slots;
    if (!Best || Load < BestLoad) {
      Best = W.get();
      BestLoad = Load;
    }
  }
  return Best;
}

void Coordinator::grantWork() {
  while (!Queue.empty()) {
    BatchKey Key = Queue.front();
    auto It = Problems.find(Key.first);
    size_t Idx =
        It == Problems.end() ? SIZE_MAX : It->second->indexOf(Key.second);
    if (Idx == SIZE_MAX || It->second->BatchDone[Idx]) {
      Queue.pop_front(); // problem gone, stale epoch, or satisfied
      continue;
    }
    WorkerState *W = pickGrantee();
    if (!W)
      return;
    Queue.pop_front();
    if (!sendBatch(*W, Key.first, Key.second)) {
      // Send failure = the link died under us; requeue and let the dead
      // sweep handle the worker.
      Queue.push_front(Key);
      W->Dead = true;
      return;
    }
  }
}

void Coordinator::stealForIdle() {
  if (!Queue.empty())
    return;
  // One idle worker is enough to ask; more idlers are served as replies
  // arrive.
  bool AnyIdle = false;
  for (std::unique_ptr<WorkerState> &W : Workers)
    if (W->Ready && !W->Dead && W->Outstanding.empty())
      AnyIdle = true;
  if (!AnyIdle)
    return;
  WorkerState *Victim = nullptr;
  for (std::unique_ptr<WorkerState> &W : Workers) {
    if (!W->Ready || W->Dead || W->StealPending)
      continue;
    if (W->Outstanding.size() < 2)
      continue; // only the in-flight batch: nothing to give back
    if (!Victim || W->Outstanding.size() > Victim->Outstanding.size())
      Victim = W.get();
  }
  if (!Victim)
    return;
  StealRequestMsg SR;
  SR.MaxBatches =
      static_cast<uint32_t>(Victim->Outstanding.size() / 2);
  if (Victim->L->send(encodeMessage(SR)))
    Victim->StealPending = true;
  else
    Victim->Dead = true;
}

void Coordinator::handleStealReply(WorkerState &W, const StealReplyMsg &R) {
  W.StealPending = false;
  for (const auto &[ProblemId, BatchId] : R.Batches) {
    BatchKey Key{ProblemId, BatchId};
    if (!W.Outstanding.erase(Key))
      continue; // already resulted or requeued
    auto It = Problems.find(ProblemId);
    size_t Idx =
        It == Problems.end() ? SIZE_MAX : It->second->indexOf(BatchId);
    if (Idx == SIZE_MAX || It->second->BatchDone[Idx])
      continue;
    Queue.push_back(Key);
    ++Stats.BatchesStolen;
  }
}

void Coordinator::cancelRemaining(ActiveProblem &AP, uint32_t ProblemId) {
  // Scrub the queue and every worker's outstanding set; mark all
  // not-yet-done batches done so the completion count converges.
  std::deque<BatchKey> Keep;
  for (const BatchKey &Key : Queue)
    if (Key.first != ProblemId)
      Keep.push_back(Key);
  Queue.swap(Keep);
  for (std::unique_ptr<WorkerState> &W : Workers) {
    if (W->Dead)
      continue;
    bool Knew = false;
    for (auto It = W->Outstanding.begin(); It != W->Outstanding.end();) {
      if (It->first == ProblemId) {
        It = W->Outstanding.erase(It);
        Knew = true;
      } else {
        ++It;
      }
    }
    // Tell every worker that ever saw the problem to abort in-flight
    // solves and free its state. Persistent problems keep their remote
    // solvers (the next solveCubes call reuses them); their in-flight
    // work self-drains since each probe is one batch.
    if (!AP.Persistent && (Knew || W->KnowsProblem.count(ProblemId))) {
      CancelMsg CM;
      CM.ProblemId = ProblemId;
      W->L->send(encodeMessage(CM));
      W->KnowsProblem.erase(ProblemId);
    }
  }
  for (size_t B = 0; B != AP.BatchDone.size(); ++B)
    if (!AP.BatchDone[B]) {
      AP.BatchDone[B] = 1;
      ++AP.DoneCount;
    }
}

void Coordinator::shardCubes(uint32_t ProblemId, ActiveProblem &AP,
                             std::vector<std::vector<Lit>> &&Cubes) {
  // Contiguous batches — a few per fleet slot so stealing can rebalance
  // — queued eagerly (the grant loop spreads them across the registered
  // workers). Each cube set gets a FRESH wire-id range so stragglers
  // from a persistent problem's previous set fall outside indexOf().
  AP.BatchCubes.clear();
  size_t TargetBatches = std::min(
      Cubes.size(), std::max<size_t>(1, numSlots() * Opts.BatchesPerSlot));
  size_t Chunk =
      TargetBatches ? (Cubes.size() + TargetBatches - 1) / TargetBatches : 0;
  for (size_t B = 0; B * Chunk < Cubes.size(); ++B) {
    size_t Begin = B * Chunk, End = std::min(Cubes.size(), Begin + Chunk);
    AP.BatchCubes.emplace_back(
        std::make_move_iterator(Cubes.begin() + Begin),
        std::make_move_iterator(Cubes.begin() + End));
  }
  AP.BatchDone.assign(AP.BatchCubes.size(), 0);
  AP.FirstBatchId = AP.NextBatchId;
  AP.NextBatchId += static_cast<uint32_t>(AP.BatchCubes.size());
  AP.ProblemClock = Timer();
  for (uint32_t B = 0; B != AP.BatchCubes.size(); ++B)
    Queue.push_back({ProblemId, AP.FirstBatchId + B});
  if (AP.BatchCubes.empty())
    finishProblem(AP);
}

void Coordinator::finishProblem(ActiveProblem &AP) {
  if (AP.Finished)
    return;
  AP.Finished = true;
  if (!AP.Decided)
    AP.Outcome.Result = AP.AnyAborted ? sat::SolveResult::Aborted
                                      : sat::SolveResult::Unsat;
  AP.Outcome.SolveSeconds = AP.ProblemClock.seconds();
  if (AP.Config.LogProofs && AP.Outcome.Result == sat::SolveResult::Unsat) {
    // Streams are copied, not drained: a persistent problem's next
    // solveCubes epoch extends them.
    std::vector<std::string> Streams;
    Streams.reserve(AP.ProofStreams.size());
    for (const auto &[Key, Text] : AP.ProofStreams)
      Streams.push_back(Text);
    // The cube-coverage count is enforced only for a one-shot problem
    // that ran to completion: a global refutation cancels siblings
    // unconcluded, and a persistent problem's cumulative streams
    // conclude cubes of every epoch so far.
    AP.Outcome.Proof = proof::assembleProof(
        proof::buildProofHeader(*AP.Problem, AP.Config.HardenBudget,
                                AP.Config.BudgetBound),
        Streams,
        (AP.Decided || AP.Persistent)
            ? std::nullopt
            : std::optional<uint64_t>(AP.Outcome.NumCubes));
  }
}

void Coordinator::handleResult(WorkerState &W, BatchResultMsg &&R) {
  W.Outstanding.erase({R.ProblemId, R.BatchId});
  auto It = Problems.find(R.ProblemId);
  if (It == Problems.end())
    return;
  ActiveProblem &AP = *It->second;
  // Proof chunks are appended before ANY early-out: a duplicate or
  // stale-epoch result still extends its (worker, slot) stream, and
  // dropping it would leave a gap the checker's deletion serials and
  // RUP replay cannot cross.
  if (AP.Config.LogProofs)
    for (auto &[Slot, Chunk] : R.ProofChunks)
      AP.ProofStreams[{W.Serial, Slot}] += Chunk;
  size_t Idx = AP.indexOf(R.BatchId);
  if (Idx == SIZE_MAX)
    return; // corrupt id, or a straggler from an earlier cube set
  // Statistics deltas are problem-level truth regardless of batch
  // bookkeeping (a worker reports each solved cube exactly once).
  AP.Outcome.Stats += R.Stats;
  AP.Outcome.CubesSolved += R.Solved;
  AP.Outcome.CubesPrunedGf2 += R.PrunedGf2;
  AP.Outcome.CubesPrunedCore += R.PrunedCore;
  AP.Outcome.CubesPruned += R.PrunedGf2 + R.PrunedCore;

  // Cross-node core pruning: new cores go to every sibling that knows
  // the problem.
  if (!R.NewCores.empty() && !AP.Finished) {
    CoresMsg CM;
    CM.ProblemId = R.ProblemId;
    for (const std::vector<Lit> &Core : R.NewCores)
      if (AP.Cores.size() < ActiveProblem::MaxCores)
        AP.Cores.push_back(Core);
    CM.Cores = std::move(R.NewCores);
    for (std::unique_ptr<WorkerState> &Other : Workers) {
      if (Other.get() == &W || Other->Dead || !Other->Ready)
        continue;
      if (Other->KnowsProblem.count(R.ProblemId)) {
        Other->L->send(encodeMessage(CM));
        ++Stats.CoreBroadcasts;
      }
    }
  }

  if (AP.BatchDone[Idx])
    return; // duplicate (stolen-and-raced or post-cancel): counted above
  switch (R.Status) {
  case BatchStatus::Sat:
    AP.BatchDone[Idx] = 1;
    ++AP.DoneCount;
    if (!AP.Decided) {
      AP.Decided = true;
      AP.Outcome.Result = sat::SolveResult::Sat;
      AP.Outcome.Model = std::move(R.Model);
      cancelRemaining(AP, R.ProblemId);
    }
    break;
  case BatchStatus::GlobalUnsat:
    AP.BatchDone[Idx] = 1;
    ++AP.DoneCount;
    if (!AP.Decided) {
      AP.Decided = true;
      AP.Outcome.Result = sat::SolveResult::Unsat;
      cancelRemaining(AP, R.ProblemId);
    }
    break;
  case BatchStatus::AllUnsat:
    AP.BatchDone[Idx] = 1;
    ++AP.DoneCount;
    break;
  case BatchStatus::Aborted:
    AP.AnyAborted = true;
    AP.BatchDone[Idx] = 1;
    ++AP.DoneCount;
    break;
  case BatchStatus::Cancelled:
    // The worker was cancelled under this batch (or never knew the
    // problem). If the problem is still live the work is NOT done:
    // requeue it.
    Queue.push_back({R.ProblemId, R.BatchId});
    ++Stats.BatchesRequeued;
    break;
  }
  if (AP.DoneCount == AP.BatchDone.size())
    finishProblem(AP);
}

bool Coordinator::pumpLinks() {
  bool Any = false;
  for (std::unique_ptr<WorkerState> &W : Workers) {
    if (W->Dead || !W->Ready)
      continue;
    std::vector<uint8_t> Frame;
    while (W->L->receive(Frame, 0)) {
      Any = true;
      W->LastActivity = Clock::now();
      W->StealPending = false;
      Message M;
      if (!decodeMessage(Frame, M)) {
        W->Dead = true; // unusable stream
        break;
      }
      if (BatchResultMsg *R = std::get_if<BatchResultMsg>(&M))
        handleResult(*W, std::move(*R));
      else if (const StealReplyMsg *S = std::get_if<StealReplyMsg>(&M))
        handleStealReply(*W, *S);
      else if (const HeartbeatMsg *H = std::get_if<HeartbeatMsg>(&M)) {
        // The LastActivity refresh above is the heartbeat's real job —
        // it is what keeps a grinding worker off the silence timer. The
        // payload feeds the live progress line.
        ++Stats.HeartbeatsReceived;
        HbCubes += H->CubesDelta;
        HbConflicts += H->ConflictsDelta;
      }
      // Anything else from a worker is protocol noise; ignore.
    }
    if (W->L->closed())
      W->Dead = true;
  }
  return Any;
}

void Coordinator::requeueOutstanding(WorkerState &W) {
  for (const BatchKey &Key : W.Outstanding) {
    auto It = Problems.find(Key.first);
    size_t Idx =
        It == Problems.end() ? SIZE_MAX : It->second->indexOf(Key.second);
    if (Idx == SIZE_MAX || It->second->BatchDone[Idx])
      continue;
    Queue.push_back(Key);
    ++Stats.BatchesRequeued;
  }
  W.Outstanding.clear();
  W.KnowsProblem.clear();
}

void Coordinator::dropDeadWorkers() {
  Clock::time_point Now = Clock::now();
  for (std::unique_ptr<WorkerState> &W : Workers) {
    if (!W->Ready || W->Dead)
      continue;
    if (Opts.WorkerTimeoutMs > 0 && !W->Outstanding.empty() &&
        Now - W->LastActivity >
            std::chrono::milliseconds(Opts.WorkerTimeoutMs)) {
      // Tell the worker it was written off before cutting the link: its
      // batches are requeued below, so anything it is still grinding
      // would be discarded by the epoch check anyway. Queued frames
      // survive close() on both transports, so this is reliable.
      EvictedMsg EM;
      EM.Reason = "silence timeout (" +
                  std::to_string(Opts.WorkerTimeoutMs) + " ms)";
      W->L->send(encodeMessage(EM));
      W->L->close();
      W->Dead = true;
    }
  }
  for (size_t I = 0; I < Workers.size();) {
    WorkerState &W = *Workers[I];
    if (W.Ready && W.Dead) {
      ++Stats.WorkersDropped;
      requeueOutstanding(W);
      Workers.erase(Workers.begin() + I);
      continue;
    }
    ++I;
  }
}

void Coordinator::runUntilDone(const std::vector<uint32_t> &ProblemIds) {
  auto allDone = [&] {
    for (uint32_t Id : ProblemIds)
      if (!Problems.at(Id)->Finished)
        return false;
    return true;
  };
  while (!allDone()) {
    pumpAccept();
    pumpHandshakes();
    bool Busy = pumpLinks();
    dropDeadWorkers();
    if (numWorkers() == 0 && PendingLinks.empty()) {
      // The whole fleet is gone: outstanding problems cannot make
      // progress. Finish them as inconclusive rather than hanging.
      for (uint32_t Id : ProblemIds) {
        ActiveProblem &AP = *Problems.at(Id);
        if (AP.Finished)
          continue;
        AP.AnyAborted = true;
        cancelRemaining(AP, Id);
        finishProblem(AP);
      }
      return;
    }
    grantWork();
    stealForIdle();
    if (obs::progressEnabled()) {
      size_t BatchesDone = 0, BatchesTotal = 0;
      for (uint32_t Id : ProblemIds) {
        ActiveProblem &AP = *Problems.at(Id);
        BatchesDone += AP.DoneCount;
        BatchesTotal += AP.BatchDone.size();
      }
      obs::progressLine(
          "dist: workers " + std::to_string(numWorkers()) + "  batches " +
          std::to_string(BatchesDone) + "/" + std::to_string(BatchesTotal) +
          "  queued " + std::to_string(Queue.size()) + "  hb cubes " +
          std::to_string(HbCubes) + " conflicts " +
          std::to_string(HbConflicts));
    }
    if (!Busy)
      std::this_thread::sleep_for(std::chrono::milliseconds(Opts.PollMs));
  }
  obs::progressDone();
}

std::vector<smt::SolveOutcome>
Coordinator::solveAll(std::span<const engine::CubeProblem> CubeProblems) {
  std::vector<uint32_t> Ids(CubeProblems.size(), 0);
  std::vector<smt::SolveOutcome> Local(CubeProblems.size());
  std::vector<uint32_t> LiveIds;
  size_t Slots = numSlots();
  for (size_t I = 0; I != CubeProblems.size(); ++I) {
    // The identical encode + threshold + enumeration the in-process
    // engine runs — only the slot count (the fleet's) differs.
    engine::PreparedProblem P =
        engine::prepareCubeProblem(CubeProblems[I], Slots);
    smt::SolveOutcome Seed;
    Seed.Prep = P.Encoded->Prep;
    Seed.CnfVars = P.Encoded->Cnf.NumVars;
    Seed.CnfClauses = P.Encoded->Cnf.Clauses.size();
    if (P.Encoded->TriviallyUnsat) {
      Seed.Result = sat::SolveResult::Unsat;
      Seed.NumCubes = 0;
      Seed.CubesSolved = 0;
      if (P.Config.LogProofs)
        Seed.Proof = proof::buildTrivialProof(*P.Encoded);
      Local[I] = std::move(Seed);
      continue;
    }
    std::vector<std::vector<Lit>> Cubes = std::move(P.Cubes);
    Seed.SplitThresholdUsed = P.SplitThresholdUsed;
    Seed.NumCubes = Cubes.size();
    Seed.CubesSolved = 0;
    uint32_t Id = openProblem(std::move(P.Encoded), P.Config);
    ActiveProblem &AP = *Problems.at(Id);
    AP.Persistent = false;
    AP.Outcome = std::move(Seed);
    shardCubes(Id, AP, std::move(Cubes));
    Ids[I] = Id;
    LiveIds.push_back(Id);
    // Encoding is serial on this thread, but the fleet need not wait
    // for the whole batch: shardCubes queued eagerly, so granting here
    // puts workers on problem 1 while problem 2 is still encoding.
    pumpAccept();
    pumpHandshakes();
    pumpLinks();
    grantWork();
  }

  runUntilDone(LiveIds);

  std::vector<smt::SolveOutcome> Outcomes;
  Outcomes.reserve(CubeProblems.size());
  for (size_t I = 0; I != CubeProblems.size(); ++I) {
    if (Ids[I] == 0) {
      Outcomes.push_back(std::move(Local[I]));
      continue;
    }
    Outcomes.push_back(std::move(Problems.at(Ids[I])->Outcome));
    // Frees the workers' per-problem state too (decided problems already
    // sent Cancel through cancelRemaining; this covers the all-UNSAT
    // completions).
    closeProblem(Ids[I]);
  }
  return Outcomes;
}

uint32_t
Coordinator::openProblem(std::shared_ptr<const smt::VerificationProblem> P,
                         const engine::CubeRunConfig &Config) {
  uint32_t Id = NextProblemId++;
  auto AP = std::make_unique<ActiveProblem>();
  AP->Problem = std::move(P);
  AP->Config = Config;
  AP->Persistent = true;
  Problems.emplace(Id, std::move(AP));
  return Id;
}

smt::SolveOutcome
Coordinator::solveCubes(uint32_t Handle,
                        std::vector<std::vector<Lit>> Cubes) {
  ActiveProblem &AP = *Problems.at(Handle);
  // Fresh per-call verdict state; worker-side solvers persist.
  AP.BatchCubes.clear();
  AP.BatchDone.clear();
  AP.DoneCount = 0;
  AP.Decided = false;
  AP.AnyAborted = false;
  AP.Finished = false;
  AP.Outcome = smt::SolveOutcome();
  AP.Outcome.NumCubes = Cubes.size();
  AP.Outcome.CubesSolved = 0;
  AP.Outcome.Prep = AP.Problem->Prep;
  AP.Outcome.CnfVars = AP.Problem->Cnf.NumVars;
  AP.Outcome.CnfClauses = AP.Problem->Cnf.Clauses.size();
  shardCubes(Handle, AP, std::move(Cubes));
  runUntilDone({Handle});
  return std::move(AP.Outcome);
}

void Coordinator::closeProblem(uint32_t Handle) {
  auto It = Problems.find(Handle);
  if (It == Problems.end())
    return;
  CancelMsg CM;
  CM.ProblemId = Handle;
  for (std::unique_ptr<WorkerState> &W : Workers) {
    if (W->Dead || !W->Ready)
      continue;
    if (W->KnowsProblem.erase(Handle))
      W->L->send(encodeMessage(CM));
  }
  Problems.erase(It);
}

std::vector<std::thread>
veriqec::dist::spawnLoopbackWorkers(Coordinator &C,
                                    std::vector<WorkerOptions> PerWorker) {
  std::vector<std::thread> Threads;
  Threads.reserve(PerWorker.size());
  for (const WorkerOptions &WO : PerWorker) {
    LoopbackPair Pair = makeLoopbackPair();
    C.addWorker(std::move(Pair.A));
    Threads.emplace_back([End = std::move(Pair.B), WO]() mutable {
      runWorker(std::move(End), WO);
    });
  }
  return Threads;
}

void Coordinator::shutdownWorkers() {
  for (std::unique_ptr<WorkerState> &W : Workers) {
    if (!W->Dead && W->Ready)
      W->L->send(encodeMessage(ShutdownMsg{}));
    W->L->close();
  }
  Workers.clear();
  for (std::unique_ptr<Link> &L : PendingLinks)
    L->close();
  PendingLinks.clear();
}
