//===- dist/Coordinator.h - Distributed cube scheduling ---------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator half of the distributed verification layer — an
/// engine::CubeBackend whose solver slots live in other processes (or on
/// other machines). Problems are preprocessed and encoded locally, cubes
/// enumerated with the slot-targeting split heuristic over the fleet's
/// TOTAL slot count, and the resulting batches sharded eagerly across
/// every registered worker. From there the scheduler re-balances:
///
///   * an idle worker triggers a steal — the busiest sibling hands back
///     queued batches, which are re-granted to the idle one;
///   * strict-subset UNSAT cores reported by one worker are broadcast to
///     all others, so remote solvers prune sibling subtrees exactly like
///     the in-process core pruning of engine::CubeRun;
///   * the first SAT cube cancels the whole problem fleet-wide (in-flight
///     solves abort mid-search through the cancel flag);
///   * batches assigned to a dropped or timed-out worker are requeued and
///     re-granted, so a killed worker costs duplicated work, never a
///     wrong or missing verdict.
///
/// A handle-based incremental API (openProblem/solveCubes/closeProblem)
/// ships a problem once and then solves many cube sets against the same
/// remote slot solvers — the distributed form of the distance search's
/// encode-once/assume-many loop.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_DIST_COORDINATOR_H
#define VERIQEC_DIST_COORDINATOR_H

#include "dist/Codec.h"
#include "dist/Transport.h"
#include "dist/Worker.h"
#include "engine/CubeEngine.h"

#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

namespace veriqec::dist {

struct CoordinatorOptions {
  /// Shard granularity: target this many batches per fleet slot, so
  /// stealing has material even after the eager shard.
  size_t BatchesPerSlot = 4;
  /// Event-loop poll granularity.
  int PollMs = 2;
  /// A worker silent for this long while holding outstanding batches is
  /// declared dead: it receives an Evicted frame (so it stops grinding
  /// work whose results the epoch check would discard anyway), its link
  /// is closed, and its batches are requeued. 0 disables the timer (link
  /// closure still triggers requeue — the common crash signal on TCP).
  /// This is a SILENCE timer, but heartbeats count as activity: a worker
  /// started with WorkerOptions::HeartbeatMs well below this bound can
  /// grind one batch indefinitely without being declared dead, so the
  /// timeout only needs to clear the heartbeat interval, not the
  /// worst-case single-batch solve time.
  int WorkerTimeoutMs = 0;
};

/// Observability counters (tested by the kill-a-worker and steal paths).
struct CoordinatorStats {
  uint64_t WorkersDropped = 0;
  uint64_t BatchesRequeued = 0;
  uint64_t BatchesStolen = 0;
  uint64_t CoreBroadcasts = 0;
  uint64_t HeartbeatsReceived = 0;
};

class Coordinator : public engine::CubeBackend {
public:
  explicit Coordinator(CoordinatorOptions Opts = {});
  ~Coordinator() override;

  /// Hands a fresh (pre-handshake) link to the coordinator; the
  /// handshake completes inside waitForWorkers()/solve pumps.
  void addWorker(std::unique_ptr<Link> L);

  /// Accepts late-joining workers during runs.
  void attachListener(std::unique_ptr<Listener> L);

  /// Pumps accepts + handshakes until \p N workers are ready (or the
  /// deadline passes). True when the fleet reached N.
  bool waitForWorkers(size_t N, int TimeoutMs);

  size_t numWorkers() const;
  /// Total remote solver slots (drives the cube-split heuristic).
  size_t numSlots() const override;

  // engine::CubeBackend: the whole scenario pipeline runs on this.
  std::vector<smt::SolveOutcome>
  solveAll(std::span<const engine::CubeProblem> Problems) override;

  /// Incremental API: registers an encoded problem without solving.
  /// The problem ships lazily to each worker that receives one of its
  /// batches, exactly once; worker-side slot solvers persist until
  /// closeProblem().
  uint32_t openProblem(std::shared_ptr<const smt::VerificationProblem> P,
                       const engine::CubeRunConfig &Config);

  /// Solves one cube set against an open problem (blocking). Cubes may
  /// be assumption sets of any origin — the distance search sends its
  /// weight-bound literals as a single cube per probe.
  smt::SolveOutcome solveCubes(uint32_t Handle,
                               std::vector<std::vector<sat::Lit>> Cubes);

  /// Frees worker-side state of an open problem.
  void closeProblem(uint32_t Handle);

  /// Sends Shutdown to every live worker (they exit their loops).
  void shutdownWorkers();

  const CoordinatorStats &stats() const { return Stats; }

private:
  struct WorkerState;
  struct ActiveProblem;
  using BatchKey = std::pair<uint32_t, uint32_t>; // (problem, batch)

  void pumpAccept();
  void pumpHandshakes();
  /// Drains every worker link; true when at least one message arrived.
  bool pumpLinks();
  void handleResult(WorkerState &W, BatchResultMsg &&R);
  void handleStealReply(WorkerState &W, const StealReplyMsg &R);
  void grantWork();
  void stealForIdle();
  void dropDeadWorkers();
  void requeueOutstanding(WorkerState &W);
  void cancelRemaining(ActiveProblem &AP, uint32_t ProblemId);
  void finishProblem(ActiveProblem &AP);
  /// Shards one cube set into batches with a FRESH wire-id epoch and
  /// queues them (shared by solveAll and solveCubes so the epoch
  /// bookkeeping that rejects stragglers cannot diverge).
  void shardCubes(uint32_t ProblemId, ActiveProblem &AP,
                  std::vector<std::vector<sat::Lit>> &&Cubes);
  /// Runs the event loop until every listed problem finished. Problems
  /// that cannot make progress (fleet died) finish as Aborted.
  void runUntilDone(const std::vector<uint32_t> &ProblemIds);
  WorkerState *pickGrantee();
  bool sendBatch(WorkerState &W, uint32_t ProblemId, uint32_t BatchId);

  CoordinatorOptions Opts;
  CoordinatorStats Stats;
  std::vector<std::unique_ptr<Listener>> Listeners;
  std::vector<std::unique_ptr<Link>> PendingLinks;
  std::vector<std::unique_ptr<WorkerState>> Workers;
  std::unordered_map<uint32_t, std::unique_ptr<ActiveProblem>> Problems;
  std::deque<BatchKey> Queue;
  uint32_t NextProblemId = 1;
  uint64_t NextWorkerSerial = 1;
  /// Fleet-wide cube/conflict totals reported via heartbeats (batch
  /// results fold their own deltas into the problem outcomes; these feed
  /// only the live --progress line, which wants mid-batch movement).
  uint64_t HbCubes = 0, HbConflicts = 0;
};

/// Spawns one in-process loopback worker per entry of \p PerWorker and
/// registers it with \p C (the fleet-lifecycle boilerplate shared by
/// `--dist loopback:N`, the differential harness, the benches and the
/// tests). Join the returned threads AFTER Coordinator::shutdownWorkers()
/// — shutdown is what makes the worker loops exit.
std::vector<std::thread> spawnLoopbackWorkers(Coordinator &C,
                                              std::vector<WorkerOptions>
                                                  PerWorker);

/// Convenience: \p N identical workers.
inline std::vector<std::thread>
spawnLoopbackWorkers(Coordinator &C, size_t N, WorkerOptions Opts = {}) {
  return spawnLoopbackWorkers(C, std::vector<WorkerOptions>(N, Opts));
}

} // namespace veriqec::dist

#endif // VERIQEC_DIST_COORDINATOR_H
