//===- dist/Transport.cpp - Frame transports (TCP, loopback) ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "dist/Transport.h"

#include "dist/Codec.h"

#include <arpa/inet.h>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace veriqec;
using namespace veriqec::dist;

namespace {

// -- TCP ---------------------------------------------------------------------

bool parseHostPort(const std::string &HostPort, sockaddr_in &Addr,
                   std::string &Err, bool AllowPortZero) {
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos) {
    Err = "expected host:port, got '" + HostPort + "'";
    return false;
  }
  std::string Host = HostPort.substr(0, Colon);
  const char *PortStr = HostPort.c_str() + Colon + 1;
  char *End = nullptr;
  unsigned long Port = 0;
  if (PortStr[0] >= '0' && PortStr[0] <= '9')
    Port = std::strtoul(PortStr, &End, 10);
  // Digits only, no trailing garbage; port 0 means "ephemeral", which
  // only makes sense for a listener (a connect to port 0 can only be a
  // typo and would otherwise fail with a misleading errno).
  if (End == nullptr || *End != '\0' || Port > 65535 ||
      (Port == 0 && !AllowPortZero)) {
    Err = "bad port in '" + HostPort + "'";
    return false;
  }
  Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (Host.empty() || Host == "*")
    Addr.sin_addr.s_addr = htonl(INADDR_ANY);
  else if (inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad IPv4 address '" + Host + "' (hostnames not supported)";
    return false;
  }
  return true;
}

/// One connected TCP socket with frame reassembly. The socket is
/// non-blocking; receive() polls, send() polls for writability and
/// writes synchronously (frames are small next to solve times, and
/// back-pressure from a slow worker is acceptable).
class TcpLink : public Link {
public:
  explicit TcpLink(int Fd) : Fd(Fd) {
    fcntl(Fd, F_SETFL, fcntl(Fd, F_GETFL, 0) | O_NONBLOCK);
    int One = 1;
    setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
  }
  ~TcpLink() override { close(); }

  bool send(std::span<const uint8_t> Payload) override {
    std::lock_guard<std::mutex> Lock(SendMutex);
    if (Closed)
      return false;
    uint8_t Header[4];
    uint32_t N = static_cast<uint32_t>(Payload.size());
    for (int I = 0; I != 4; ++I)
      Header[I] = static_cast<uint8_t>(N >> (8 * I));
    return writeAll(Header, 4) && writeAll(Payload.data(), Payload.size());
  }

  bool receive(std::vector<uint8_t> &Payload, int TimeoutMs) override {
    // Frames fully received before the peer hung up stay readable (same
    // contract as the loopback transport): a worker's final BatchResult
    // or a trailing Shutdown must not vanish with the connection.
    if (popFrame(Payload))
      return true;
    if (Closed)
      return false;
    pollfd P{Fd, POLLIN, 0};
    if (::poll(&P, 1, TimeoutMs) <= 0)
      return false;
    readAvailable();
    return popFrame(Payload);
  }

  bool closed() const override { return Closed; }

  void close() override {
    Closed = true;
    std::lock_guard<std::mutex> Lock(SendMutex);
    if (!FdClosed) {
      FdClosed = true;
      ::shutdown(Fd, SHUT_RDWR);
      ::close(Fd);
    }
  }

private:
  bool writeAll(const uint8_t *Data, size_t N) {
    size_t Off = 0;
    while (Off < N) {
      // MSG_NOSIGNAL: a peer that died mid-run must surface as EPIPE
      // (link closed -> batches requeued), not kill the process.
      ssize_t W = ::send(Fd, Data + Off, N - Off, MSG_NOSIGNAL);
      if (W > 0) {
        Off += static_cast<size_t>(W);
        continue;
      }
      if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd P{Fd, POLLOUT, 0};
        if (::poll(&P, 1, 10000) <= 0) {
          markClosed();
          return false;
        }
        continue;
      }
      if (W < 0 && errno == EINTR)
        continue;
      markClosed();
      return false;
    }
    return true;
  }

  void readAvailable() {
    uint8_t Buf[64 << 10];
    while (true) {
      ssize_t R = ::read(Fd, Buf, sizeof Buf);
      if (R > 0) {
        RecvBuf.insert(RecvBuf.end(), Buf, Buf + R);
        if (static_cast<size_t>(R) < sizeof Buf)
          return;
        continue;
      }
      if (R < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return;
      if (R < 0 && errno == EINTR)
        continue;
      // EOF or hard error: the peer is gone.
      Closed = true;
      return;
    }
  }

  bool popFrame(std::vector<uint8_t> &Payload) {
    if (RecvBuf.size() < 4)
      return false;
    uint32_t N = 0;
    for (int I = 0; I != 4; ++I)
      N |= static_cast<uint32_t>(RecvBuf[I]) << (8 * I);
    if (N > MaxFrameBytes) {
      // A length this large is a corrupt or hostile prefix; there is no
      // way to resynchronize a byte stream, so drop the link.
      Closed = true;
      return false;
    }
    if (RecvBuf.size() < 4 + static_cast<size_t>(N))
      return false;
    Payload.assign(RecvBuf.begin() + 4, RecvBuf.begin() + 4 + N);
    RecvBuf.erase(RecvBuf.begin(), RecvBuf.begin() + 4 + N);
    return true;
  }

  /// Send-path failure: already under SendMutex.
  void markClosed() {
    Closed = true;
    if (!FdClosed) {
      FdClosed = true;
      ::shutdown(Fd, SHUT_RDWR);
      ::close(Fd);
    }
  }

  int Fd;
  std::mutex SendMutex;
  std::vector<uint8_t> RecvBuf;
  std::atomic<bool> Closed{false};
  bool FdClosed = false; ///< guarded by SendMutex
};

class TcpListener : public Listener {
public:
  TcpListener(int Fd, uint16_t Port) : Fd(Fd), BoundPort(Port) {
    fcntl(Fd, F_SETFL, fcntl(Fd, F_GETFL, 0) | O_NONBLOCK);
  }
  ~TcpListener() override { ::close(Fd); }

  std::unique_ptr<Link> accept(int TimeoutMs) override {
    pollfd P{Fd, POLLIN, 0};
    if (::poll(&P, 1, TimeoutMs) <= 0)
      return nullptr;
    int C = ::accept(Fd, nullptr, nullptr);
    if (C < 0)
      return nullptr;
    return std::make_unique<TcpLink>(C);
  }

  uint16_t port() const override { return BoundPort; }

private:
  int Fd;
  uint16_t BoundPort;
};

// -- Loopback ----------------------------------------------------------------

/// Shared state of one loopback pair: a frame queue per direction.
struct LoopbackCore {
  std::mutex Mutex;
  std::condition_variable Cv;
  std::deque<std::vector<uint8_t>> Queue[2];
  bool Dead[2] = {false, false}; ///< per-end close flag
};

class LoopbackLink : public Link {
public:
  LoopbackLink(std::shared_ptr<LoopbackCore> Core, int End)
      : Core(std::move(Core)), End(End) {}
  ~LoopbackLink() override { close(); }

  bool send(std::span<const uint8_t> Payload) override {
    std::lock_guard<std::mutex> Lock(Core->Mutex);
    if (Core->Dead[End] || Core->Dead[1 - End])
      return false;
    Core->Queue[1 - End].emplace_back(Payload.begin(), Payload.end());
    Core->Cv.notify_all();
    return true;
  }

  bool receive(std::vector<uint8_t> &Payload, int TimeoutMs) override {
    std::unique_lock<std::mutex> Lock(Core->Mutex);
    std::deque<std::vector<uint8_t>> &Q = Core->Queue[End];
    Core->Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs), [&] {
      return !Q.empty() || Core->Dead[End] || Core->Dead[1 - End];
    });
    if (Q.empty())
      return false;
    Payload = std::move(Q.front());
    Q.pop_front();
    return true;
  }

  bool closed() const override {
    std::lock_guard<std::mutex> Lock(Core->Mutex);
    // Like TCP: the link is dead once either end hung up, but frames
    // already delivered to our queue stay readable via receive().
    return Core->Dead[End] || Core->Dead[1 - End];
  }

  void close() override {
    std::lock_guard<std::mutex> Lock(Core->Mutex);
    Core->Dead[End] = true;
    Core->Cv.notify_all();
  }

private:
  std::shared_ptr<LoopbackCore> Core;
  int End;
};

} // namespace

std::unique_ptr<Listener> veriqec::dist::listenTcp(const std::string &HostPort,
                                                   std::string &Err) {
  sockaddr_in Addr;
  if (!parseHostPort(HostPort, Addr, Err, /*AllowPortZero=*/true))
    return nullptr;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::strerror(errno);
    return nullptr;
  }
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0 ||
      ::listen(Fd, 64) != 0) {
    Err = std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  socklen_t Len = sizeof Addr;
  getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  return std::make_unique<TcpListener>(Fd, ntohs(Addr.sin_port));
}

std::unique_ptr<Link> veriqec::dist::connectTcp(const std::string &HostPort,
                                                std::string &Err) {
  sockaddr_in Addr;
  if (!parseHostPort(HostPort, Addr, Err, /*AllowPortZero=*/false))
    return nullptr;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::strerror(errno);
    return nullptr;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0) {
    Err = std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  return std::make_unique<TcpLink>(Fd);
}

bool veriqec::dist::validTcpAddress(const std::string &HostPort,
                                    bool AllowPortZero, std::string &Err) {
  sockaddr_in Addr;
  return parseHostPort(HostPort, Addr, Err, AllowPortZero);
}

LoopbackPair veriqec::dist::makeLoopbackPair() {
  auto Core = std::make_shared<LoopbackCore>();
  LoopbackPair Pair;
  Pair.A = std::make_unique<LoopbackLink>(Core, 0);
  Pair.B = std::make_unique<LoopbackLink>(Core, 1);
  return Pair;
}
