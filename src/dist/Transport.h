//===- dist/Transport.h - Frame transports (TCP, loopback) ------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Message framing and delivery between coordinator and workers, beneath
/// the codec: a Link carries whole frames (u32 little-endian length
/// prefix + payload) in both directions, a Listener accepts new Links.
/// Two implementations, both dependency-free:
///
///   * TCP (poll-based, non-blocking reads with frame reassembly) — the
///     real multi-node transport behind `veriqec serve` / `veriqec
///     worker`;
///   * loopback (two in-process queues under a mutex) — deterministic
///     in-process workers for tests, fuzzing and `--dist loopback:N`,
///     exercising the full codec + scheduler path with no sockets.
///
/// Failure semantics are uniform: once a peer disappears (socket EOF /
/// error, or the loopback end destroyed), closed() turns true, sends are
/// dropped and receive() returns nothing — the coordinator treats such a
/// link as a dropped worker and requeues its outstanding batches.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_DIST_TRANSPORT_H
#define VERIQEC_DIST_TRANSPORT_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace veriqec::dist {

/// A bidirectional frame pipe to one peer. Implementations are
/// thread-compatible: one thread may send while another receives, but
/// each direction has at most one user at a time.
class Link {
public:
  virtual ~Link() = default;

  /// Queues one frame payload (the transport adds the length prefix).
  /// Returns false once the link is closed; a false send means the peer
  /// will never see the message, not that it may arrive later.
  virtual bool send(std::span<const uint8_t> Payload) = 0;

  /// Waits up to \p TimeoutMs for one whole frame; true and fills
  /// \p Payload when one arrived. False on timeout AND on closure —
  /// disambiguate with closed().
  virtual bool receive(std::vector<uint8_t> &Payload, int TimeoutMs) = 0;

  /// The peer is gone (or close() was called); no further traffic.
  virtual bool closed() const = 0;

  virtual void close() = 0;
};

/// Accepts incoming Links.
class Listener {
public:
  virtual ~Listener() = default;

  /// Waits up to \p TimeoutMs for one connection; nullptr on timeout.
  virtual std::unique_ptr<Link> accept(int TimeoutMs) = 0;

  /// The port actually bound (useful with port 0 = ephemeral).
  virtual uint16_t port() const = 0;
};

/// Binds a TCP listener on "host:port" (port 0 picks an ephemeral one).
/// nullptr + \p Err on failure.
std::unique_ptr<Listener> listenTcp(const std::string &HostPort,
                                    std::string &Err);

/// Connects to a TCP coordinator at "host:port". nullptr + \p Err on
/// failure (no retries here; callers that race a starting coordinator
/// loop themselves).
std::unique_ptr<Link> connectTcp(const std::string &HostPort,
                                 std::string &Err);

/// Validates a "host:port" string without touching the network — lets a
/// connect-retry loop fail fast on a typo instead of sniffing error
/// strings. \p AllowPortZero permits the listener's ephemeral-port form.
bool validTcpAddress(const std::string &HostPort, bool AllowPortZero,
                     std::string &Err);

/// An in-process link pair: frames sent on A arrive on B and vice versa.
struct LoopbackPair {
  std::unique_ptr<Link> A;
  std::unique_ptr<Link> B;
};
LoopbackPair makeLoopbackPair();

} // namespace veriqec::dist

#endif // VERIQEC_DIST_TRANSPORT_H
