//===- dist/Worker.cpp - Remote cube-discharge worker ----------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "dist/Worker.h"

#include "dist/Codec.h"
#include "engine/CubeRun.h"
#include "engine/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>
#include <unordered_map>

using namespace veriqec;
using namespace veriqec::dist;
using sat::Lit;

namespace {

/// Worker-side state of one problem. Slot solvers (inside Run) persist
/// across batches, so learnt clauses and assumption-trail reuse work
/// across the whole problem exactly as in-process — and across the
/// incremental cube sets of a persistent problem (distance probes).
struct ProblemState {
  std::shared_ptr<smt::VerificationProblem> Problem;
  std::unique_ptr<engine::CubeRun> Run;
  bool Persistent = false;
  /// Counter totals already reported; batch results carry deltas.
  sat::SolverStats ReportedStats;
  uint64_t ReportedSolved = 0, ReportedGf2 = 0, ReportedCore = 0;
};

/// The batch currently on the pool.
struct InflightBatch {
  CubeBatchMsg Batch;
  ProblemState *State = nullptr;
  std::atomic<size_t> Remaining{0};
  std::atomic<bool> AnySat{false};
  std::atomic<bool> AnyAborted{false};
  std::atomic<bool> AnyCancelled{false};
};

class WorkerLoop {
public:
  WorkerLoop(std::unique_ptr<Link> L, const WorkerOptions &Opts)
      : L(std::move(L)), Opts(Opts),
        Pool(std::max<size_t>(1, Opts.Jobs)) {}

  int run() {
    if (!handshake())
      return 1;
    std::vector<uint8_t> Frame;
    while (true) {
      maybeStartBatch();
      if (StreamCorrupt) {
        // A well-framed but semantically invalid message (out-of-range
        // cube literal): the stream cannot be trusted, same as a decode
        // failure.
        L->close();
        return 1;
      }
      // Drain before honoring closure: a Shutdown (or Cancel) that was
      // delivered just before the peer hung up must still be seen.
      if (L->receive(Frame, Opts.PollMs)) {
        Message M;
        if (!decodeMessage(Frame, M)) {
          // A malformed frame means the stream is unusable; bail out.
          L->close();
          return 1;
        }
        if (std::holds_alternative<ShutdownMsg>(M)) {
          finishInflight(/*Block=*/true);
          return 0;
        }
        handle(M);
        if (Evicted) {
          // The coordinator already requeued everything this worker
          // holds; grinding on would be wasted work. Cancel, drain the
          // pool (the result send below no-ops on the closed link), and
          // surface the eviction as a distinct exit code.
          for (auto &KV : Problems)
            KV.second.Run->cancel();
          finishInflight(/*Block=*/true);
          L->close();
          return 3;
        }
      } else if (L->closed()) {
        // Abrupt closure (coordinator died): abort the in-flight batch
        // and drain it off the pool before tearing the state down.
        if (Inflight) {
          Inflight->State->Run->cancel();
          finishInflight(/*Block=*/true);
        }
        return 1;
      }
      maybeHeartbeat();
      if (finishInflight(/*Block=*/false)) {
        ++BatchesDone;
        if (Opts.MaxBatches && BatchesDone >= Opts.MaxBatches) {
          // Crash hook: vanish without a goodbye, like a killed process.
          L->close();
          return 2;
        }
      }
    }
  }

private:
  bool handshake() {
    HelloMsg Hello;
    Hello.Slots = static_cast<uint32_t>(Pool.numWorkers());
    if (!L->send(encodeMessage(Hello)))
      return false;
    std::vector<uint8_t> Frame;
    // Generous deadline: the coordinator may be busy encoding problems.
    for (int Waited = 0; Waited < 10000; Waited += 50) {
      if (L->receive(Frame, 50)) {
        Message M;
        if (!decodeMessage(Frame, M))
          return false;
        const HelloAckMsg *Ack = std::get_if<HelloAckMsg>(&M);
        if (!Ack || Ack->Magic != WireMagic)
          return false;
        if (!Ack->Accepted || Ack->Version != WireVersion) {
          // The coordinator ships a human-readable cause (version skew,
          // zero slots); losing it would leave the operator with a bare
          // exit code.
          std::fprintf(stderr, "veriqec worker: coordinator refused: %s\n",
                       Ack->Reason.empty() ? "(no reason given)"
                                           : Ack->Reason.c_str());
          return false;
        }
        return true;
      }
      if (L->closed())
        return false;
    }
    return false;
  }

  void handle(const Message &M) {
    if (const ProblemMsg *P = std::get_if<ProblemMsg>(&M)) {
      ProblemState &S = Problems[P->ProblemId];
      S.Problem = P->Problem;
      S.Persistent = P->Persistent;
      S.Run = std::make_unique<engine::CubeRun>(*S.Problem, P->Config,
                                                Pool.numWorkers());
    } else if (const CubeBatchMsg *B = std::get_if<CubeBatchMsg>(&M)) {
      Pending.push_back(*B);
    } else if (const CoresMsg *C = std::get_if<CoresMsg>(&M)) {
      auto It = Problems.find(C->ProblemId);
      if (It != Problems.end())
        It->second.Run->addExternalCores(C->Cores);
    } else if (const CancelMsg *C = std::get_if<CancelMsg>(&M)) {
      auto It = Problems.find(C->ProblemId);
      if (It != Problems.end())
        It->second.Run->cancel();
      std::deque<CubeBatchMsg> Keep;
      for (CubeBatchMsg &B : Pending)
        if (B.ProblemId != C->ProblemId)
          Keep.push_back(std::move(B));
      Pending.swap(Keep);
      // Free the state now unless its batch is still on the pool (the
      // cancel flag drains it quickly); then it is freed on completion.
      if (It != Problems.end()) {
        if (Inflight && Inflight->State == &It->second)
          EraseAfterInflight = true;
        else
          Problems.erase(It);
      }
    } else if (const StealRequestMsg *S = std::get_if<StealRequestMsg>(&M)) {
      StealReplyMsg Reply;
      for (uint32_t I = 0; I != S->MaxBatches && !Pending.empty(); ++I) {
        // Give from the back: the front is next to run locally, and the
        // back shares the least assumption prefix with it.
        Reply.Batches.emplace_back(Pending.back().ProblemId,
                                   Pending.back().BatchId);
        Pending.pop_back();
      }
      L->send(encodeMessage(Reply));
    } else if (std::holds_alternative<EvictedMsg>(M)) {
      Evicted = true;
    }
    // Hello/HelloAck/BatchResult/StealReply are peer-direction messages;
    // ignore them.
  }

  /// Sends a HeartbeatMsg every Opts.HeartbeatMs while work is queued or
  /// in flight. Deltas are against the last heartbeat (not the last
  /// batch result), read from CubeRun's relaxed counters — safe while
  /// slots are mid-solve.
  void maybeHeartbeat() {
    if (!Opts.HeartbeatMs || (!Inflight && Pending.empty()))
      return;
    auto Now = std::chrono::steady_clock::now();
    if (LastHeartbeat != std::chrono::steady_clock::time_point{} &&
        Now - LastHeartbeat < std::chrono::milliseconds(Opts.HeartbeatMs))
      return;
    LastHeartbeat = Now;
    uint64_t Solved = 0, Conflicts = 0;
    for (const auto &KV : Problems) {
      Solved += KV.second.Run->solved();
      Conflicts += KV.second.Run->conflictsObserved();
    }
    HeartbeatMsg Hb;
    Hb.BatchesInFlight =
        static_cast<uint32_t>((Inflight ? 1 : 0) + Pending.size());
    Hb.CubesDelta = Solved - HbSolvedReported;
    Hb.ConflictsDelta = Conflicts - HbConflictsReported;
    HbSolvedReported = Solved;
    HbConflictsReported = Conflicts;
    L->send(encodeMessage(Hb));
  }

  void maybeStartBatch() {
    if (Inflight || Pending.empty())
      return;
    CubeBatchMsg Batch = std::move(Pending.front());
    Pending.pop_front();
    auto It = Problems.find(Batch.ProblemId);
    if (It == Problems.end()) {
      // Problem already cancelled/freed: report so the coordinator's
      // bookkeeping (if it still cares) sees the batch surface again.
      BatchResultMsg R;
      R.ProblemId = Batch.ProblemId;
      R.BatchId = Batch.BatchId;
      R.Status = BatchStatus::Cancelled;
      L->send(encodeMessage(R));
      return;
    }
    ProblemState &S = It->second;
    // The codec range-checks every id INSIDE a problem, but cube
    // literals arrive in separate frames with no problem context: check
    // them here, the one choke point before they reach a solver (an
    // out-of-range var would index the solver's arrays out of bounds).
    for (const std::vector<sat::Lit> &Cube : Batch.Cubes)
      for (sat::Lit L : Cube)
        if (L.var() < 0 ||
            static_cast<uint64_t>(L.var()) >= S.Problem->Cnf.NumVars) {
          StreamCorrupt = true;
          return;
        }
    if (S.Run->cancelled() && S.Persistent)
      // A persistent problem's previous cube set is decided; this batch
      // belongs to a FRESH set against the same solvers. One-shot
      // problems keep the cancel latched instead: their remaining local
      // batches drain as Cancelled at no cost until the coordinator's
      // Cancel message lands.
      S.Run->reset();
    Inflight = std::make_unique<InflightBatch>();
    Inflight->Batch = std::move(Batch);
    Inflight->State = &S;
    // Batch boundary: point lemma retention at the cubes about to run,
    // so the slot solvers keep the clauses this batch still needs.
    S.Run->setPendingCubes(Inflight->Batch.Cubes);
    size_t N = Inflight->Batch.Cubes.size();
    size_t Slots = Pool.numWorkers();
    size_t NumTasks = std::min(N, Slots);
    Inflight->Remaining.store(NumTasks, std::memory_order_relaxed);
    if (NumTasks == 0)
      return; // empty batch: Remaining is 0, finishInflight acks it
    size_t Chunk = (N + NumTasks - 1) / NumTasks;
    InflightBatch *B = Inflight.get();
    if (Opts.GrindFirstBatchMs && BatchesDone == 0) {
      GrindArmed = true;
      GrindDeadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(Opts.GrindFirstBatchMs);
    }
    for (size_t T = 0; T != NumTasks; ++T) {
      size_t Begin = T * Chunk, End = std::min(N, Begin + Chunk);
      Pool.submitTo(T, [B, Begin, End] {
        int Slot = engine::ThreadPool::currentWorkerIndex();
        for (size_t C = Begin; C < End; ++C) {
          switch (B->State->Run->runCube(static_cast<size_t>(Slot),
                                         B->Batch.Cubes[C], C)) {
          case engine::CubeRun::CubeOutcome::Sat:
            B->AnySat.store(true, std::memory_order_relaxed);
            break;
          case engine::CubeRun::CubeOutcome::Aborted:
            B->AnyAborted.store(true, std::memory_order_relaxed);
            break;
          case engine::CubeRun::CubeOutcome::Cancelled:
            B->AnyCancelled.store(true, std::memory_order_relaxed);
            break;
          default:
            break;
          }
        }
        B->Remaining.fetch_sub(1, std::memory_order_acq_rel);
      });
    }
  }

  /// True when a batch just completed (its result was sent).
  bool finishInflight(bool Block) {
    if (!Inflight)
      return false;
    if (Block) {
      while (Inflight->Remaining.load(std::memory_order_acquire) != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } else if (Inflight->Remaining.load(std::memory_order_acquire) != 0) {
      return false;
    }
    if (GrindArmed && !Block) {
      // Grind hook: the cubes are done, but pretend they are not — the
      // protocol loop keeps polling (and heartbeating, if enabled) with
      // the batch still counted as in flight.
      if (std::chrono::steady_clock::now() < GrindDeadline)
        return false;
      GrindArmed = false;
    }
    ProblemState &S = *Inflight->State;
    engine::CubeRun &Run = *S.Run;
    BatchResultMsg R;
    R.ProblemId = Inflight->Batch.ProblemId;
    R.BatchId = Inflight->Batch.BatchId;
    if (Inflight->AnySat.load())
      R.Status = BatchStatus::Sat;
    else if (Run.globalUnsat())
      R.Status = BatchStatus::GlobalUnsat;
    else if (Inflight->AnyAborted.load())
      R.Status = BatchStatus::Aborted;
    else if (Inflight->AnyCancelled.load())
      R.Status = BatchStatus::Cancelled;
    else
      R.Status = BatchStatus::AllUnsat;
    if (R.Status == BatchStatus::Sat)
      R.Model = Run.model();
    sat::SolverStats Now;
    Run.accumulateStats(Now);
    R.Stats = Now - S.ReportedStats;
    S.ReportedStats = Now;
    R.Solved = Run.solved() - S.ReportedSolved;
    R.PrunedGf2 = Run.prunedGf2() - S.ReportedGf2;
    R.PrunedCore = Run.prunedCore() - S.ReportedCore;
    S.ReportedSolved = Run.solved();
    S.ReportedGf2 = Run.prunedGf2();
    S.ReportedCore = Run.prunedCore();
    R.NewCores = Run.drainOutboundCores();
    // The batch has quiesced, so the slot logs are stable: ship whatever
    // each slot derived/concluded since the previous report. Chunk
    // boundaries are record-aligned; the coordinator concatenates.
    for (size_t Slot = 0; Slot != Run.numSlots(); ++Slot) {
      std::string Chunk = Run.drainSlotProof(Slot);
      if (!Chunk.empty())
        R.ProofChunks.emplace_back(static_cast<uint32_t>(Slot),
                                   std::move(Chunk));
    }
    L->send(encodeMessage(R));
    if (EraseAfterInflight) {
      Problems.erase(Inflight->Batch.ProblemId);
      EraseAfterInflight = false;
    }
    Inflight.reset();
    return true;
  }

  std::unique_ptr<Link> L;
  WorkerOptions Opts;
  std::unordered_map<uint32_t, ProblemState> Problems;
  std::deque<CubeBatchMsg> Pending;
  std::unique_ptr<InflightBatch> Inflight;
  bool EraseAfterInflight = false;
  bool StreamCorrupt = false;
  bool Evicted = false;
  bool GrindArmed = false;
  std::chrono::steady_clock::time_point GrindDeadline;
  std::chrono::steady_clock::time_point LastHeartbeat;
  uint64_t HbSolvedReported = 0, HbConflictsReported = 0;
  uint64_t BatchesDone = 0;
  /// Declared last: destroyed (and its threads joined) FIRST, so pool
  /// tasks can never outlive the problem/batch state they reference.
  engine::ThreadPool Pool;
};

} // namespace

int veriqec::dist::runWorker(std::unique_ptr<Link> L,
                             const WorkerOptions &Opts) {
  WorkerLoop Loop(std::move(L), Opts);
  return Loop.run();
}
