//===- dist/Worker.h - Remote cube-discharge worker -------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker half of the distributed verification layer: connects to a
/// coordinator, receives encoded VerificationProblems and cube batches,
/// and discharges them on a local thread pool through the exact
/// engine::CubeRun machinery the in-process scheduler uses — per-slot
/// reusable solvers, GF(2) cube refutation, sibling-core pruning (fed
/// additionally by cross-node core broadcasts), budget hardening and
/// native XOR all behave identically to a local run. The protocol loop
/// stays responsive while a batch is in flight, so cancellations (a
/// sibling worker found SAT) abort in-flight solves mid-search and steal
/// requests hand queued batches back for re-balancing.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_DIST_WORKER_H
#define VERIQEC_DIST_WORKER_H

#include "dist/Transport.h"

#include <cstdint>
#include <memory>

namespace veriqec::dist {

struct WorkerOptions {
  /// Local solver slots (threads).
  size_t Jobs = 1;
  /// Test hook: after this many batch results, drop the link abruptly
  /// and exit — simulates a worker crash mid-run for the coordinator's
  /// requeue path. 0 = run until shutdown.
  uint64_t MaxBatches = 0;
  /// Protocol poll granularity while computing.
  int PollMs = 2;
  /// Send a HeartbeatMsg (batches in flight, cube/conflict deltas) this
  /// often while work is queued or running, so the coordinator can tell
  /// a grinding worker from a dead one. 0 = no heartbeats (the
  /// coordinator then falls back to its silence timeout alone).
  int HeartbeatMs = 0;
  /// Test hook: hold the first batch's result for this long after its
  /// cubes finish — simulates a batch that grinds far past the
  /// coordinator's WorkerTimeoutMs. Heartbeats (if enabled) keep
  /// flowing, which is exactly what the grinding-vs-dead tests probe.
  /// 0 = report results immediately.
  int GrindFirstBatchMs = 0;
};

/// Runs the worker protocol on \p L until the coordinator sends Shutdown
/// or the link dies. Returns 0 on clean shutdown, 1 on handshake or link
/// failure, 2 when the MaxBatches crash hook fired, 3 when the
/// coordinator evicted this worker (its batches were requeued elsewhere;
/// continuing to grind them would be wasted work).
int runWorker(std::unique_ptr<Link> L, const WorkerOptions &Opts = {});

} // namespace veriqec::dist

#endif // VERIQEC_DIST_WORKER_H
