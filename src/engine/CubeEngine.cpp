//===- engine/CubeEngine.cpp - Work-stealing cube-and-conquer --------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "engine/CubeEngine.h"

#include "support/Assert.h"
#include "support/Timer.h"

#include <memory>
#include <mutex>

using namespace veriqec;
using namespace veriqec::engine;
using sat::Lit;
using sat::SolveResult;
using sat::Var;
using smt::SolveOutcome;

namespace {

void enumerateCubesRec(const std::vector<Var> &SplitVars, uint32_t Distance,
                       uint32_t Threshold, uint32_t MaxOnes,
                       std::vector<Lit> &Prefix, uint32_t Ones,
                       std::vector<std::vector<Lit>> &Out) {
  uint32_t Bits = static_cast<uint32_t>(Prefix.size());
  bool Exhausted = Bits >= SplitVars.size();
  if (Exhausted || 2 * Distance * Ones + Bits > Threshold) {
    Out.push_back(Prefix);
    return;
  }
  Var Next = SplitVars[Bits];
  // Zero branch first: low-weight cubes are cheap and likely decisive.
  Prefix.push_back(~sat::mkLit(Next));
  enumerateCubesRec(SplitVars, Distance, Threshold, MaxOnes, Prefix, Ones,
                    Out);
  Prefix.pop_back();
  if (Ones + 1 <= MaxOnes) {
    Prefix.push_back(sat::mkLit(Next));
    enumerateCubesRec(SplitVars, Distance, Threshold, MaxOnes, Prefix,
                      Ones + 1, Out);
    Prefix.pop_back();
  }
}

/// Shared state of one problem while its cubes are in flight.
struct ProblemRun {
  const CubeProblem *Input = nullptr;
  std::unique_ptr<smt::EncodedProblem> Encoded;
  std::vector<std::vector<Lit>> Cubes;

  /// Set by the first SAT cube; the workers' solvers poll it as their
  /// abort flag, so in-flight sibling solves stop mid-search too.
  std::atomic<bool> Cancel{false};
  std::atomic<bool> AnyAborted{false};
  std::atomic<uint64_t> Solved{0};
  std::atomic<uint64_t> Remaining{0};

  /// One lazily-built solver slot per pool worker. A slot is only ever
  /// touched by the worker whose index it is, so no locking.
  std::vector<std::unique_ptr<sat::Solver>> Slots;

  /// Clause exchange between the slots: lemmas learned on one worker's
  /// cubes are valid for every sibling cube and imported lazily.
  sat::SharedClausePool LearntPool;

  std::mutex Mutex; // guards Out.Model / Out.Result on the SAT path
  SolveOutcome Out;
  Timer Clock;
};

void runCube(ProblemRun &Run, size_t CubeIdx, WaitGroup &Wg) {
  if (!Run.Cancel.load(std::memory_order_relaxed)) {
    int Worker = ThreadPool::currentWorkerIndex();
    if (Worker < 0)
      fatalError("cube task executed off the pool");
    std::unique_ptr<sat::Solver> &Slot = Run.Slots[Worker];
    if (!Slot) {
      Slot = std::make_unique<sat::Solver>(Run.Encoded->makeSolver());
      Slot->setAbortFlag(&Run.Cancel);
      Slot->attachSharedPool(&Run.LearntPool, Worker);
      if (Run.Input->Opts.ConflictBudget)
        Slot->setConflictBudget(Run.Input->Opts.ConflictBudget);
      if (Run.Input->Opts.RandomSeed)
        Slot->setRandomSeed(Run.Input->Opts.RandomSeed +
                            static_cast<uint64_t>(Worker) + 1);
    }
    SolveResult R = Slot->solve(Run.Cubes[CubeIdx]);
    if (R != SolveResult::Aborted)
      Run.Solved.fetch_add(1, std::memory_order_relaxed);
    if (R == SolveResult::Sat) {
      std::lock_guard<std::mutex> Lock(Run.Mutex);
      if (!Run.Cancel.exchange(true)) {
        Run.Out.Result = SolveResult::Sat;
        Run.Encoded->readModel(*Slot, Run.Out.Model);
      }
    } else if (R == SolveResult::Aborted &&
               !Run.Cancel.load(std::memory_order_relaxed)) {
      Run.AnyAborted.store(true, std::memory_order_relaxed);
    }
  }
  if (Run.Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
    Run.Out.SolveSeconds = Run.Clock.seconds();
  Wg.done();
}

} // namespace

std::vector<std::vector<Lit>>
veriqec::engine::enumerateCubes(const std::vector<Var> &SplitVars,
                                uint32_t Distance, uint32_t Threshold,
                                uint32_t MaxOnes) {
  std::vector<std::vector<Lit>> Cubes;
  // Threshold 0 disables splitting (SolveOptions contract): one open cube.
  if (Threshold == 0 || SplitVars.empty()) {
    Cubes.emplace_back();
    return Cubes;
  }
  std::vector<Lit> Prefix;
  enumerateCubesRec(SplitVars, Distance, Threshold, MaxOnes, Prefix, 0,
                    Cubes);
  return Cubes;
}

SolveOutcome CubeEngine::solve(const smt::BoolContext &Ctx, smt::ExprRef Root,
                               const smt::SolveOptions &Opts) {
  CubeProblem Problem{&Ctx, Root, Opts};
  return solveAll({&Problem, 1}).front();
}

ThreadPool &CubeEngine::pool() {
  std::lock_guard<std::mutex> Lock(PoolMutex);
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Width);
  return *Pool;
}

std::vector<SolveOutcome>
CubeEngine::solveAll(std::span<const CubeProblem> Problems) {
  // A lone unsplit problem has exactly one cube: solve it on the calling
  // thread so purely sequential verification never spawns the pool.
  if (Problems.size() == 1) {
    const smt::SolveOptions &O = Problems[0].Opts;
    if (O.SplitVars.empty() || O.SplitThreshold == 0) {
      SolveOutcome Out =
          smt::solveExpr(*Problems[0].Ctx, Problems[0].Root, O);
      Out.CubesSolved = Out.Result == SolveResult::Aborted ? 0 : 1;
      std::vector<SolveOutcome> Outcomes;
      Outcomes.push_back(std::move(Out));
      return Outcomes;
    }
  }

  ThreadPool &Workers = pool();
  std::vector<std::unique_ptr<ProblemRun>> Runs;
  Runs.reserve(Problems.size());
  for (const CubeProblem &P : Problems) {
    auto Run = std::make_unique<ProblemRun>();
    Run->Input = &P;
    Run->Slots.resize(Workers.numWorkers());
    Runs.push_back(std::move(Run));
  }

  // Phase 1: encode every problem and enumerate its cubes. Encoding is
  // itself farmed out so a large batch builds its CNFs concurrently.
  WaitGroup EncodeWg;
  EncodeWg.add(Runs.size());
  for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
    ProblemRun *Run = RunPtr.get();
    Workers.submit([Run, &EncodeWg] {
      const smt::SolveOptions &O = Run->Input->Opts;
      Run->Encoded = std::make_unique<smt::EncodedProblem>(
          *Run->Input->Ctx, Run->Input->Root, O.CardEnc);
      std::vector<Var> SplitVars;
      for (const std::string &Name : O.SplitVars)
        SplitVars.push_back(Run->Encoded->varOfName(Name));
      Run->Cubes =
          enumerateCubes(SplitVars, O.DistanceHint, O.SplitThreshold,
                         O.MaxOnes);
      EncodeWg.done();
    });
  }
  EncodeWg.wait();

  // Phase 2: every cube of every problem becomes one task. Each worker
  // receives a *contiguous* chunk of the ET enumeration: neighbouring
  // cubes share long assumption prefixes, so a worker's reusable solver
  // amortizes its learned clauses across its chunk instead of hopping
  // around the prefix tree. Work stealing rebalances the tail (thieves
  // take from the victim's far end, keeping the chunks contiguous).
  WaitGroup CubeWg;
  size_t ProblemIdx = 0;
  for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
    ProblemRun *Run = RunPtr.get();
    size_t N = Run->Cubes.size();
    Run->Out.NumCubes = N;
    Run->Remaining.store(N, std::memory_order_relaxed);
    Run->Clock = Timer();
    CubeWg.add(N);
    size_t NumWorkers = Workers.numWorkers();
    size_t Chunk = (N + NumWorkers - 1) / NumWorkers;
    for (size_t C = 0; C != N; ++C)
      // Offset successive problems' chunks so a batch of small problems
      // still spreads across all workers.
      Workers.submitTo(ProblemIdx + C / Chunk, [Run, C, &CubeWg] {
        runCube(*Run, C, CubeWg);
      });
    ++ProblemIdx;
  }
  CubeWg.wait();

  // Finalize: aggregate worker stats, derive the verdict.
  std::vector<SolveOutcome> Outcomes;
  Outcomes.reserve(Runs.size());
  for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
    ProblemRun &Run = *RunPtr;
    for (const std::unique_ptr<sat::Solver> &Slot : Run.Slots) {
      if (!Slot)
        continue;
      const sat::SolverStats &S = Slot->stats();
      Run.Out.Stats.Decisions += S.Decisions;
      Run.Out.Stats.Propagations += S.Propagations;
      Run.Out.Stats.Conflicts += S.Conflicts;
      Run.Out.Stats.LearnedClauses += S.LearnedClauses;
      Run.Out.Stats.Restarts += S.Restarts;
    }
    Run.Out.CubesSolved = Run.Solved.load();
    if (Run.Out.Result != SolveResult::Sat)
      Run.Out.Result = Run.AnyAborted.load() ? SolveResult::Aborted
                                             : SolveResult::Unsat;
    Outcomes.push_back(std::move(Run.Out));
  }
  return Outcomes;
}

CubeEngine &CubeEngine::shared() {
  static CubeEngine Engine;
  return Engine;
}

// -- smt-layer facade --------------------------------------------------------
//
// Declared in smt/CubeSolver.h; defined here so the smt layer contains no
// threading. A caller-specified thread count that differs from the shared
// pool gets a private engine (the deterministic-concurrency tests sweep
// 1/2/4/8 threads this way).

smt::SolveOutcome veriqec::smt::solveExprParallel(const BoolContext &Ctx,
                                                  ExprRef Root,
                                                  const SolveOptions &Opts) {
  if (Opts.NumThreads == 0 ||
      Opts.NumThreads == CubeEngine::shared().numWorkers())
    return CubeEngine::shared().solve(Ctx, Root, Opts);
  CubeEngine Local(Opts.NumThreads);
  return Local.solve(Ctx, Root, Opts);
}
