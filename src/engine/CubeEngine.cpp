//===- engine/CubeEngine.cpp - Work-stealing cube-and-conquer --------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "engine/CubeEngine.h"

#include "support/Assert.h"
#include "support/Timer.h"

#include <algorithm>
#include <memory>
#include <mutex>

using namespace veriqec;
using namespace veriqec::engine;
using sat::Lit;
using sat::SolveResult;
using sat::Var;
using smt::SolveOutcome;

namespace {

void enumerateCubesRec(const std::vector<Var> &SplitVars, uint32_t Distance,
                       uint32_t Threshold, uint32_t MaxOnes,
                       std::vector<Lit> &Prefix, uint32_t Ones,
                       std::vector<std::vector<Lit>> &Out) {
  uint32_t Bits = static_cast<uint32_t>(Prefix.size());
  bool Exhausted = Bits >= SplitVars.size();
  if (Exhausted || 2 * Distance * Ones + Bits > Threshold) {
    Out.push_back(Prefix);
    return;
  }
  Var Next = SplitVars[Bits];
  // Zero branch first: low-weight cubes are cheap and likely decisive.
  Prefix.push_back(~sat::mkLit(Next));
  enumerateCubesRec(SplitVars, Distance, Threshold, MaxOnes, Prefix, Ones,
                    Out);
  Prefix.pop_back();
  if (Ones + 1 <= MaxOnes) {
    Prefix.push_back(sat::mkLit(Next));
    enumerateCubesRec(SplitVars, Distance, Threshold, MaxOnes, Prefix,
                      Ones + 1, Out);
    Prefix.pop_back();
  }
}

/// Shared state of one problem while its cubes are in flight.
struct ProblemRun {
  const CubeProblem *Input = nullptr;
  std::unique_ptr<smt::VerificationProblem> Encoded;
  std::vector<std::vector<Lit>> Cubes;

  /// Set by the first SAT cube; the workers' solvers poll it as their
  /// abort flag, so in-flight sibling solves stop mid-search too.
  std::atomic<bool> Cancel{false};
  /// Set when a cube's UNSAT refutation used none of the cube's own
  /// assumption literals (sat::Solver::conflictCore): the whole problem
  /// is UNSAT and the remaining cubes are redundant.
  std::atomic<bool> GlobalUnsat{false};
  std::atomic<bool> AnyAborted{false};
  std::atomic<uint64_t> Solved{0};
  /// Cubes refuted with no SAT call, by cause: the GF(2) parity oracle
  /// (elimination-strength when the problem runs native XOR) vs. a
  /// sibling's stored UNSAT core. Split so the refutation rate of each
  /// mechanism is visible in --bench-out instead of vanishing into one
  /// per-worker sum.
  std::atomic<uint64_t> PrunedGf2{0};
  std::atomic<uint64_t> PrunedCore{0};
  std::atomic<uint64_t> Remaining{0};

  /// UNSAT cores that used only a strict subset of their cube's
  /// assumption literals. Any later cube containing such a core is UNSAT
  /// without solving — with the ET enumeration's shared prefixes this
  /// regularly discharges whole subtrees of sibling cubes. The master
  /// list is guarded by CoreMutex and append-only; workers scan their
  /// own snapshot (refreshed only when CoreCount says it is stale), so
  /// the common case costs one relaxed load per cube, not a lock.
  /// Capped so snapshot refreshes and subset checks stay cheap.
  std::vector<std::vector<Lit>> RefutedCores;
  std::atomic<size_t> CoreCount{0};
  std::mutex CoreMutex;
  static constexpr size_t MaxRefutedCores = 256;

  /// One lazily-built solver slot per pool worker. A slot is only ever
  /// touched by the worker whose index it is, so no locking.
  std::vector<std::unique_ptr<sat::Solver>> Slots;
  /// Per-worker snapshots of RefutedCores (owner-only, like Slots).
  std::vector<std::vector<std::vector<Lit>>> CoreSnapshots;

  /// Clause exchange between the slots: lemmas learned on one worker's
  /// cubes are valid for every sibling cube and imported lazily.
  sat::SharedClausePool LearntPool;

  std::mutex Mutex; // guards Out.Model / Out.Result on the SAT path
  SolveOutcome Out;
  Timer Clock;
};

/// True iff every literal of \p Core occurs in the sorted \p CubeSorted.
bool coreSubsumesCube(const std::vector<Lit> &Core,
                      const std::vector<Lit> &CubeSorted) {
  for (Lit L : Core)
    if (!std::binary_search(CubeSorted.begin(), CubeSorted.end(), L))
      return false;
  return true;
}

void runCube(ProblemRun &Run, size_t CubeIdx) {
  if (!Run.Cancel.load(std::memory_order_relaxed)) {
    int Worker = ThreadPool::currentWorkerIndex();
    if (Worker < 0)
      fatalError("cube task executed off the pool");
    const std::vector<Lit> &Cube = Run.Cubes[CubeIdx];
    bool Subsumed = false;
    if (Run.CoreCount.load(std::memory_order_acquire) != 0) {
      std::vector<std::vector<Lit>> &Snapshot = Run.CoreSnapshots[Worker];
      if (Snapshot.size() <
          Run.CoreCount.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> Lock(Run.CoreMutex);
        Snapshot = Run.RefutedCores;
      }
      std::vector<Lit> CubeSorted = Cube;
      std::sort(CubeSorted.begin(), CubeSorted.end());
      for (const std::vector<Lit> &Core : Snapshot)
        if (coreSubsumesCube(Core, CubeSorted)) {
          Subsumed = true;
          break;
        }
    }
    // GF(2) propagation (with elimination under native XOR) over the
    // preprocessor's reduced rows can refute a cube outright — no
    // solver, no conflicts. A stored sibling core that fits inside this
    // cube does the same.
    bool Gf2Refuted = !Subsumed && Run.Encoded->cubeRefuted(Cube);
    if (Subsumed || Gf2Refuted) {
      Run.Solved.fetch_add(1, std::memory_order_relaxed);
      (Subsumed ? Run.PrunedCore : Run.PrunedGf2)
          .fetch_add(1, std::memory_order_relaxed);
    } else {
      std::unique_ptr<sat::Solver> &Slot = Run.Slots[Worker];
      if (!Slot) {
        Slot = std::make_unique<sat::Solver>(Run.Encoded->makeSolver());
        // One bound per problem: harden the weight layer as root-level
        // units in this worker's solver (the shared CnfFormula stays
        // bound-independent).
        if (!Run.Input->Opts.BudgetVars.empty())
          Run.Encoded->assertWeightBound(*Slot,
                                         Run.Input->Opts.BudgetBound);
        Slot->setAbortFlag(&Run.Cancel);
        Slot->attachSharedPool(&Run.LearntPool, Worker);
        if (Run.Input->Opts.ConflictBudget)
          Slot->setConflictBudget(Run.Input->Opts.ConflictBudget);
        if (Run.Input->Opts.RandomSeed)
          Slot->setRandomSeed(Run.Input->Opts.RandomSeed +
                              static_cast<uint64_t>(Worker) + 1);
      }
      SolveResult R = Slot->solve(Cube);
      if (R != SolveResult::Aborted)
        Run.Solved.fetch_add(1, std::memory_order_relaxed);
      if (R == SolveResult::Sat) {
        std::lock_guard<std::mutex> Lock(Run.Mutex);
        if (!Run.Cancel.exchange(true)) {
          Run.Out.Result = SolveResult::Sat;
          Run.Encoded->readModel(*Slot, Run.Out.Model);
        }
      } else if (R == SolveResult::Unsat) {
        const std::vector<Lit> &Core = Slot->conflictCore();
        if (Core.empty() && !Cube.empty()) {
          // The refutation used no assumptions at all: the problem is
          // UNSAT under its root clauses alone and the siblings are
          // redundant.
          Run.GlobalUnsat.store(true, std::memory_order_relaxed);
          Run.Cancel.store(true, std::memory_order_relaxed);
        } else if (!Core.empty() && Core.size() + 1 < Cube.size()) {
          // A strict-subset core refutes every sibling cube containing
          // it; remember it so they are pruned without a solver. (The
          // +1 slack: a core one literal short of the cube subsumes
          // almost nothing, not worth the per-cube checks.)
          std::lock_guard<std::mutex> Lock(Run.CoreMutex);
          if (Run.RefutedCores.size() < ProblemRun::MaxRefutedCores) {
            Run.RefutedCores.push_back(Core);
            Run.CoreCount.store(Run.RefutedCores.size(),
                                std::memory_order_release);
          }
        }
      } else if (R == SolveResult::Aborted &&
                 !Run.Cancel.load(std::memory_order_relaxed)) {
        Run.AnyAborted.store(true, std::memory_order_relaxed);
      }
    }
  }
  if (Run.Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
    Run.Out.SolveSeconds = Run.Clock.seconds();
}

} // namespace

std::vector<std::vector<Lit>>
veriqec::engine::enumerateCubes(const std::vector<Var> &SplitVars,
                                uint32_t Distance, uint32_t Threshold,
                                uint32_t MaxOnes) {
  std::vector<std::vector<Lit>> Cubes;
  // Threshold 0 disables splitting (SolveOptions contract): one open cube.
  if (Threshold == 0 || SplitVars.empty()) {
    Cubes.emplace_back();
    return Cubes;
  }
  std::vector<Lit> Prefix;
  enumerateCubesRec(SplitVars, Distance, Threshold, MaxOnes, Prefix, 0,
                    Cubes);
  return Cubes;
}

SolveOutcome CubeEngine::solve(const smt::BoolContext &Ctx, smt::ExprRef Root,
                               const smt::SolveOptions &Opts) {
  CubeProblem Problem{&Ctx, Root, Opts};
  return solveAll({&Problem, 1}).front();
}

ThreadPool &CubeEngine::pool() {
  std::lock_guard<std::mutex> Lock(PoolMutex);
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Width);
  return *Pool;
}

std::vector<SolveOutcome>
CubeEngine::solveAll(std::span<const CubeProblem> Problems) {
  // A lone unsplit problem has exactly one cube: solve it on the calling
  // thread so purely sequential verification never spawns the pool.
  if (Problems.size() == 1) {
    const smt::SolveOptions &O = Problems[0].Opts;
    if (O.SplitVars.empty() || O.SplitThreshold == 0) {
      SolveOutcome Out =
          smt::solveExpr(*Problems[0].Ctx, Problems[0].Root, O);
      Out.CubesSolved = Out.Result == SolveResult::Aborted ? 0 : 1;
      std::vector<SolveOutcome> Outcomes;
      Outcomes.push_back(std::move(Out));
      return Outcomes;
    }
  }

  ThreadPool &Workers = pool();
  std::vector<std::unique_ptr<ProblemRun>> Runs;
  Runs.reserve(Problems.size());
  for (const CubeProblem &P : Problems) {
    auto Run = std::make_unique<ProblemRun>();
    Run->Input = &P;
    Run->Slots.resize(Workers.numWorkers());
    Run->CoreSnapshots.resize(Workers.numWorkers());
    Runs.push_back(std::move(Run));
  }

  // Phase 1: encode every problem and enumerate its cubes. Encoding is
  // itself farmed out so a large batch builds its CNFs concurrently.
  WaitGroup EncodeWg;
  EncodeWg.add(Runs.size());
  for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
    ProblemRun *Run = RunPtr.get();
    Workers.submit([Run, &EncodeWg] {
      const smt::SolveOptions &O = Run->Input->Opts;
      Run->Encoded = std::make_unique<smt::VerificationProblem>(
          *Run->Input->Ctx, Run->Input->Root,
          smt::makeProblemOptions(*Run->Input->Ctx, O));
      if (Run->Encoded->TriviallyUnsat) {
        // Refuted during preprocessing: no cubes, no solver.
        Run->Cubes.clear();
        EncodeWg.done();
        return;
      }
      std::vector<Var> SplitVars;
      for (const std::string &Name : O.SplitVars)
        SplitVars.push_back(Run->Encoded->varOfName(Name));
      Run->Cubes =
          enumerateCubes(SplitVars, O.DistanceHint, O.SplitThreshold,
                         O.MaxOnes);
      EncodeWg.done();
    });
  }
  EncodeWg.wait();

  // Phase 2: the cubes of every problem are dispatched as *contiguous
  // range* tasks — a few per worker, not one per cube, so the ET
  // enumeration's tens of thousands of mostly-trivial cubes do not pay
  // per-task queue and allocation overhead. Contiguity also means
  // neighbouring cubes share long assumption prefixes, which both the
  // worker's reusable solver (learnt clauses) and the incremental
  // assumption-trail reuse in sat::Solver exploit. Work stealing
  // rebalances whole ranges (thieves take from the victim's far end,
  // keeping ranges contiguous).
  WaitGroup CubeWg;
  size_t ProblemIdx = 0;
  size_t NumWorkers = Workers.numWorkers();
  // Several ranges per worker so stealing can still balance uneven
  // hardness within one problem.
  constexpr size_t RangesPerWorker = 8;
  for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
    ProblemRun *Run = RunPtr.get();
    size_t N = Run->Cubes.size();
    Run->Out.NumCubes = N;
    Run->Remaining.store(N, std::memory_order_relaxed);
    Run->Clock = Timer();
    size_t NumRanges = std::min(N, NumWorkers * RangesPerWorker);
    size_t Chunk = NumRanges ? (N + NumRanges - 1) / NumRanges : 0;
    size_t PerWorker = (NumRanges + NumWorkers - 1) / NumWorkers;
    CubeWg.add(NumRanges);
    for (size_t G = 0; G != NumRanges; ++G) {
      size_t Begin = std::min(N, G * Chunk);
      size_t End = std::min(N, Begin + Chunk);
      // Offset successive problems' ranges so a batch of small problems
      // still spreads across all workers.
      Workers.submitTo(ProblemIdx + G / PerWorker,
                       [Run, Begin, End, &CubeWg] {
                         for (size_t C = Begin; C < End; ++C)
                           runCube(*Run, C);
                         CubeWg.done();
                       });
    }
    ++ProblemIdx;
  }
  CubeWg.wait();

  // Finalize: aggregate worker stats, derive the verdict.
  std::vector<SolveOutcome> Outcomes;
  Outcomes.reserve(Runs.size());
  for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
    ProblemRun &Run = *RunPtr;
    for (const std::unique_ptr<sat::Solver> &Slot : Run.Slots) {
      if (!Slot)
        continue;
      const sat::SolverStats &S = Slot->stats();
      Run.Out.Stats.Decisions += S.Decisions;
      Run.Out.Stats.Propagations += S.Propagations;
      Run.Out.Stats.Conflicts += S.Conflicts;
      Run.Out.Stats.LearnedClauses += S.LearnedClauses;
      Run.Out.Stats.Restarts += S.Restarts;
      Run.Out.Stats.XorPropagations += S.XorPropagations;
      Run.Out.Stats.XorConflicts += S.XorConflicts;
      Run.Out.Stats.XorEliminations += S.XorEliminations;
    }
    Run.Out.CubesSolved = Run.Solved.load();
    Run.Out.CubesPrunedGf2 = Run.PrunedGf2.load();
    Run.Out.CubesPrunedCore = Run.PrunedCore.load();
    Run.Out.CubesPruned = Run.Out.CubesPrunedGf2 + Run.Out.CubesPrunedCore;
    Run.Out.Prep = Run.Encoded->Prep;
    Run.Out.CnfVars = Run.Encoded->Cnf.NumVars;
    Run.Out.CnfClauses = Run.Encoded->Cnf.Clauses.size();
    if (Run.Out.Result != SolveResult::Sat)
      // A core-certified global refutation outranks sibling aborts: the
      // cubes cancelled mid-search were redundant, not inconclusive.
      Run.Out.Result = Run.GlobalUnsat.load()  ? SolveResult::Unsat
                       : Run.AnyAborted.load() ? SolveResult::Aborted
                                               : SolveResult::Unsat;
    Outcomes.push_back(std::move(Run.Out));
  }
  return Outcomes;
}

CubeEngine &CubeEngine::shared() {
  static CubeEngine Engine;
  return Engine;
}

// -- smt-layer facade --------------------------------------------------------
//
// Declared in smt/CubeSolver.h; defined here so the smt layer contains no
// threading. A caller-specified thread count that differs from the shared
// pool gets a private engine (the deterministic-concurrency tests sweep
// 1/2/4/8 threads this way).

smt::SolveOutcome veriqec::smt::solveExprParallel(const BoolContext &Ctx,
                                                  ExprRef Root,
                                                  const SolveOptions &Opts) {
  if (Opts.NumThreads == 0 ||
      Opts.NumThreads == CubeEngine::shared().numWorkers())
    return CubeEngine::shared().solve(Ctx, Root, Opts);
  CubeEngine Local(Opts.NumThreads);
  return Local.solve(Ctx, Root, Opts);
}
