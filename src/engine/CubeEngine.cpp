//===- engine/CubeEngine.cpp - Work-stealing cube-and-conquer --------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "engine/CubeEngine.h"

#include "engine/CubeRun.h"
#include "obs/Progress.h"
#include "obs/Trace.h"
#include "proof/ProofLog.h"
#include "support/Assert.h"
#include "support/Timer.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

using namespace veriqec;
using namespace veriqec::engine;
using sat::Lit;
using sat::SolveResult;
using sat::Var;
using smt::SolveOutcome;

namespace {

void enumerateCubesRec(const std::vector<Var> &SplitVars, uint32_t Distance,
                       uint32_t Threshold, uint32_t MaxOnes,
                       std::vector<Lit> &Prefix, uint32_t Ones,
                       std::vector<std::vector<Lit>> &Out) {
  uint32_t Bits = static_cast<uint32_t>(Prefix.size());
  bool Exhausted = Bits >= SplitVars.size();
  if (Exhausted || 2 * Distance * Ones + Bits > Threshold) {
    Out.push_back(Prefix);
    return;
  }
  Var Next = SplitVars[Bits];
  // Zero branch first: low-weight cubes are cheap and likely decisive.
  Prefix.push_back(~sat::mkLit(Next));
  enumerateCubesRec(SplitVars, Distance, Threshold, MaxOnes, Prefix, Ones,
                    Out);
  Prefix.pop_back();
  if (Ones + 1 <= MaxOnes) {
    Prefix.push_back(sat::mkLit(Next));
    enumerateCubesRec(SplitVars, Distance, Threshold, MaxOnes, Prefix,
                      Ones + 1, Out);
    Prefix.pop_back();
  }
}

/// Shared state of one problem while its cubes are in flight. The
/// per-cube discharge logic (slot solvers, pruning, cancellation) lives
/// in CubeRun — shared with the distributed worker — and this wrapper
/// keeps only what the in-process scheduler needs on top: the cube list,
/// the outstanding-cube countdown and the assembled outcome.
struct ProblemRun {
  const CubeProblem *Input = nullptr;
  std::shared_ptr<smt::VerificationProblem> Encoded;
  std::vector<std::vector<Lit>> Cubes;
  std::unique_ptr<CubeRun> Run;

  std::atomic<uint64_t> Remaining{0};
  SolveOutcome Out;
  Timer Clock;
};

void dischargeCube(ProblemRun &P, size_t CubeIdx) {
  int Worker = ThreadPool::currentWorkerIndex();
  if (Worker < 0)
    fatalError("cube task executed off the pool");
  P.Run->runCube(static_cast<size_t>(Worker), P.Cubes[CubeIdx], CubeIdx);
  if (P.Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
    P.Out.SolveSeconds = P.Clock.seconds();
}

} // namespace

std::vector<std::vector<Lit>>
veriqec::engine::enumerateCubes(const std::vector<Var> &SplitVars,
                                uint32_t Distance, uint32_t Threshold,
                                uint32_t MaxOnes) {
  std::vector<std::vector<Lit>> Cubes;
  // Threshold 0 disables splitting (SolveOptions contract): one open cube.
  if (Threshold == 0 || SplitVars.empty()) {
    Cubes.emplace_back();
    return Cubes;
  }
  std::vector<Lit> Prefix;
  enumerateCubesRec(SplitVars, Distance, Threshold, MaxOnes, Prefix, 0,
                    Cubes);
  return Cubes;
}

uint64_t veriqec::engine::countCubes(size_t NumSplitVars, uint32_t Distance,
                                     uint32_t Threshold, uint32_t MaxOnes,
                                     uint64_t Cap) {
  if (Threshold == 0 || NumSplitVars == 0)
    return 1;
  Cap = std::max<uint64_t>(Cap, 1);
  // The subtree below a node depends only on (bits, ones), so the leaf
  // count is a small DP instead of a walk over the (potentially
  // enormous) enumeration tree. Ones never exceeds min(bits, MaxOnes).
  size_t OnesCap =
      static_cast<size_t>(std::min<uint64_t>(MaxOnes, NumSplitVars));
  auto saturatingAdd = [Cap](uint64_t A, uint64_t B) {
    return std::min(Cap, A + B); // both summands are <= Cap <= 2^63
  };
  std::vector<uint64_t> Next(OnesCap + 1, 1), Cur(OnesCap + 1, 1);
  // Bits == NumSplitVars: every node is an exhausted leaf (count 1).
  for (size_t Bits = NumSplitVars; Bits-- > 0;) {
    size_t MaxO = std::min(Bits, OnesCap);
    for (size_t Ones = 0; Ones <= MaxO; ++Ones) {
      if (2ull * Distance * Ones + Bits > Threshold) {
        Cur[Ones] = 1; // ET leaf
        continue;
      }
      uint64_t Zero = Next[Ones];
      uint64_t One = (Ones + 1 <= MaxOnes && Ones + 1 <= OnesCap)
                         ? Next[Ones + 1]
                         : 0;
      Cur[Ones] = saturatingAdd(Zero, One);
    }
    std::swap(Cur, Next);
  }
  return Next[0];
}

uint32_t veriqec::engine::pickSplitThreshold(size_t NumSplitVars,
                                             uint32_t Distance,
                                             uint32_t MaxThreshold,
                                             uint32_t MaxOnes,
                                             size_t TotalSlots,
                                             uint64_t *CubeCountOut) {
  // 8 cubes per slot scales the set to the fleet; the floor keeps the
  // solver-reuse machinery fed on small fleets (see the header comment
  // for the measured numbers behind both constants).
  constexpr uint64_t CubesPerSlot = 8, MinAutoCubes = 8192;
  uint64_t Target =
      std::max(CubesPerSlot * std::max<size_t>(TotalSlots, 1), MinAutoCubes);
  uint64_t Cap = 32 * Target;
  auto count = [&](uint32_t T) {
    return countCubes(NumSplitVars, Distance, T, MaxOnes, Cap);
  };
  uint32_t Chosen = MaxThreshold;
  if (MaxThreshold > 1 && count(MaxThreshold) >= Target) {
    uint32_t Lo = 1, Hi = MaxThreshold;
    while (Lo < Hi) {
      uint32_t Mid = Lo + (Hi - Lo) / 2;
      if (count(Mid) >= Target)
        Hi = Mid;
      else
        Lo = Mid + 1;
    }
    Chosen = Lo;
  }
  if (CubeCountOut)
    *CubeCountOut = count(Chosen);
  return Chosen;
}

PreparedProblem veriqec::engine::prepareCubeProblem(const CubeProblem &P,
                                                    size_t TotalSlots) {
  const smt::SolveOptions &O = P.Opts;
  PreparedProblem Out;
  Out.Encoded = std::make_shared<smt::VerificationProblem>(
      *P.Ctx, P.Root, smt::makeProblemOptions(*P.Ctx, O));
  Out.Config.HardenBudget = !O.BudgetVars.empty();
  Out.Config.BudgetBound = O.BudgetBound;
  Out.Config.ConflictBudget = O.ConflictBudget;
  Out.Config.RandomSeed = O.RandomSeed;
  Out.Config.LogProofs = O.LogProofs;
  // Auto resolves to OFF for cube workloads: measured on surface9 t=4,
  // chrono inflates conflicts ~18% here — cube prefixes are short and a
  // full backjump below the prefix lets the learnt clause assert early,
  // which beats keeping the prefix trail alive. (Contrast the distance
  // search, whose weight-bound prefixes are long: Auto is On there.)
  Out.Config.Chrono = O.Chrono == smt::ChronoMode::On;
  if (Out.Encoded->TriviallyUnsat)
    return Out; // refuted during preprocessing: no cubes, no solver
  std::vector<Var> SplitVars;
  for (const std::string &Name : O.SplitVars)
    SplitVars.push_back(Out.Encoded->varOfName(Name));
  // Order the split variables by GF(2) row participation: variables
  // that sit in no kept parity row contribute nothing to the GF(2)
  // cube pruner, so assuming them early wastes shared-prefix budget —
  // push them behind every row-constrained variable. WITHIN each class
  // the declaration order is preserved deliberately: error indicators
  // are declared in lattice order, so a cube prefix fixes a contiguous
  // patch of the code, and every stronger participation sort we tried
  // (count descending, count ascending, first-row clustering) scatters
  // that patch and regressed surface9 t=4 by 4-20x in conflicts, with
  // GF(2) prunes collapsing 24 -> 0-2. The cube COUNT is
  // order-invariant (the ET cut depends only on bits/ones), so fleet
  // sizing is unaffected; the stable partition keeps the order
  // deterministic, which the local-vs-distributed verdict-equality
  // invariant needs.
  std::vector<size_t> Participation(SplitVars.size());
  for (size_t I = 0; I != SplitVars.size(); ++I)
    Participation[I] = Out.Encoded->parityParticipation(SplitVars[I]);
  std::vector<size_t> Order(SplitVars.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::stable_partition(Order.begin(), Order.end(),
                        [&](size_t I) { return Participation[I] != 0; });
  std::vector<Var> Ordered;
  Ordered.reserve(SplitVars.size());
  for (size_t I : Order)
    Ordered.push_back(SplitVars[I]);
  SplitVars = std::move(Ordered);
  uint32_t Threshold = O.SplitThreshold;
  if (O.AutoSplitThreshold && Threshold != 0 && !SplitVars.empty())
    // Size the cube set to the fleet instead of taking the flat
    // budget-exhaustion cut: ~8 cubes per slot (with the reuse floor)
    // keeps stealing able to rebalance uneven hardness without flooding
    // the queues with near-trivial cubes.
    Threshold = pickSplitThreshold(SplitVars.size(), O.DistanceHint,
                                   Threshold, O.MaxOnes, TotalSlots);
  {
    obs::TraceSpan Span("cube_enumerate",
                        {{"split_vars", SplitVars.size()},
                         {"threshold", Threshold}});
    Out.Cubes =
        enumerateCubes(SplitVars, O.DistanceHint, Threshold, O.MaxOnes);
    Span.arg("cubes", Out.Cubes.size());
  }
  Out.SplitThresholdUsed =
      (!SplitVars.empty() && Threshold != 0) ? Threshold : 0;
  return Out;
}

SolveOutcome CubeEngine::solve(const smt::BoolContext &Ctx, smt::ExprRef Root,
                               const smt::SolveOptions &Opts) {
  CubeProblem Problem{&Ctx, Root, Opts};
  return solveAll({&Problem, 1}).front();
}

ThreadPool &CubeEngine::pool() {
  std::lock_guard<std::mutex> Lock(PoolMutex);
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Width);
  return *Pool;
}

std::vector<SolveOutcome>
CubeEngine::solveAll(std::span<const CubeProblem> Problems) {
  // A lone unsplit problem has exactly one cube: solve it on the calling
  // thread so purely sequential verification never spawns the pool.
  if (Problems.size() == 1) {
    const smt::SolveOptions &O = Problems[0].Opts;
    if (O.SplitVars.empty() || O.SplitThreshold == 0) {
      SolveOutcome Out =
          smt::solveExpr(*Problems[0].Ctx, Problems[0].Root, O);
      Out.CubesSolved = Out.Result == SolveResult::Aborted ? 0 : 1;
      std::vector<SolveOutcome> Outcomes;
      Outcomes.push_back(std::move(Out));
      return Outcomes;
    }
  }

  ThreadPool &Workers = pool();
  std::vector<std::unique_ptr<ProblemRun>> Runs;
  Runs.reserve(Problems.size());
  for (const CubeProblem &P : Problems) {
    auto Run = std::make_unique<ProblemRun>();
    Run->Input = &P;
    Runs.push_back(std::move(Run));
  }

  // Phase 1: encode every problem and enumerate its cubes. Encoding is
  // itself farmed out so a large batch builds its CNFs concurrently.
  WaitGroup EncodeWg;
  EncodeWg.add(Runs.size());
  size_t NumWorkers = Workers.numWorkers();
  for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
    ProblemRun *Run = RunPtr.get();
    Workers.submit([Run, NumWorkers, &EncodeWg] {
      PreparedProblem P = prepareCubeProblem(*Run->Input, NumWorkers);
      Run->Encoded = std::move(P.Encoded);
      Run->Cubes = std::move(P.Cubes);
      Run->Out.SplitThresholdUsed = P.SplitThresholdUsed;
      if (!Run->Encoded->TriviallyUnsat)
        Run->Run =
            std::make_unique<CubeRun>(*Run->Encoded, P.Config, NumWorkers);
      EncodeWg.done();
    });
  }
  EncodeWg.wait();

  // Phase 2: the cubes of every problem are dispatched as *contiguous
  // range* tasks — a few per worker, not one per cube, so the ET
  // enumeration's tens of thousands of mostly-trivial cubes do not pay
  // per-task queue and allocation overhead. Contiguity also means
  // neighbouring cubes share long assumption prefixes, which both the
  // worker's reusable solver (learnt clauses) and the incremental
  // assumption-trail reuse in sat::Solver exploit. Work stealing
  // rebalances whole ranges (thieves take from the victim's far end,
  // keeping ranges contiguous).
  WaitGroup CubeWg;
  size_t ProblemIdx = 0;
  // Several ranges per worker so stealing can still balance uneven
  // hardness within one problem.
  constexpr size_t RangesPerWorker = 8;
  for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
    ProblemRun *Run = RunPtr.get();
    size_t N = Run->Cubes.size();
    Run->Out.NumCubes = N;
    if (Run->Run)
      // Seed the lemma-retention view with the full cube set (all of it
      // pending at dispatch); slot solvers refresh from it per cube.
      Run->Run->setPendingCubes(Run->Cubes);
    Run->Remaining.store(N, std::memory_order_relaxed);
    Run->Clock = Timer();
    size_t NumRanges = std::min(N, NumWorkers * RangesPerWorker);
    size_t Chunk = NumRanges ? (N + NumRanges - 1) / NumRanges : 0;
    size_t PerWorker = (NumRanges + NumWorkers - 1) / NumWorkers;
    CubeWg.add(NumRanges);
    for (size_t G = 0; G != NumRanges; ++G) {
      size_t Begin = std::min(N, G * Chunk);
      size_t End = std::min(N, Begin + Chunk);
      // Offset successive problems' ranges so a batch of small problems
      // still spreads across all workers.
      Workers.submitTo(ProblemIdx + G / PerWorker,
                       [Run, Begin, End, &CubeWg] {
                         for (size_t C = Begin; C < End; ++C)
                           dischargeCube(*Run, C);
                         CubeWg.done();
                       });
    }
    ++ProblemIdx;
  }
  // Live progress (opt-in): poll the runs' relaxed counters from the
  // calling thread until every cube is accounted for, then fall through
  // to the real barrier. Remaining hits zero at most a task-epilogue
  // ahead of CubeWg, so the wait below returns immediately.
  if (obs::progressEnabled()) {
    uint64_t Total = 0;
    for (std::unique_ptr<ProblemRun> &RunPtr : Runs)
      Total += RunPtr->Out.NumCubes;
    while (true) {
      uint64_t Left = 0, Done = 0, Pruned = 0, Conflicts = 0;
      for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
        Left += RunPtr->Remaining.load(std::memory_order_relaxed);
        if (RunPtr->Run) {
          Done += RunPtr->Run->solved();
          Pruned += RunPtr->Run->prunedGf2() + RunPtr->Run->prunedCore();
          Conflicts += RunPtr->Run->conflictsObserved();
        }
      }
      obs::progressLine("cubes " + std::to_string(Done) + "/" +
                            std::to_string(Total) + "  pruned " +
                            std::to_string(Pruned) + "  conflicts " +
                            std::to_string(Conflicts),
                        /*Force=*/Left == 0);
      if (Left == 0)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    obs::progressDone();
  }
  CubeWg.wait();

  // Finalize: aggregate worker stats, derive the verdict.
  std::vector<SolveOutcome> Outcomes;
  Outcomes.reserve(Runs.size());
  for (std::unique_ptr<ProblemRun> &RunPtr : Runs) {
    ProblemRun &Run = *RunPtr;
    if (Run.Run) {
      CubeRun &R = *Run.Run;
      R.accumulateStats(Run.Out.Stats);
      Run.Out.CubesSolved = R.solved();
      Run.Out.CubesPrunedGf2 = R.prunedGf2();
      Run.Out.CubesPrunedCore = R.prunedCore();
      Run.Out.CubesPruned =
          Run.Out.CubesPrunedGf2 + Run.Out.CubesPrunedCore;
      if (R.satFound()) {
        Run.Out.Result = SolveResult::Sat;
        Run.Out.Model = R.model();
      } else {
        // A core-certified global refutation outranks sibling aborts:
        // the cubes cancelled mid-search were redundant, not
        // inconclusive.
        Run.Out.Result = R.globalUnsat()  ? SolveResult::Unsat
                         : R.anyAborted() ? SolveResult::Aborted
                                          : SolveResult::Unsat;
      }
      if (Run.Input->Opts.LogProofs &&
          Run.Out.Result == SolveResult::Unsat) {
        std::vector<std::string> Streams;
        Streams.reserve(R.numSlots());
        for (size_t S = 0; S != R.numSlots(); ++S)
          Streams.push_back(R.drainSlotProof(S));
        // Under a global refutation the sibling cubes were cancelled
        // without conclusions, so the cube count is not enforced.
        Run.Out.Proof = proof::assembleProof(
            proof::buildProofHeader(*Run.Encoded,
                                    !Run.Input->Opts.BudgetVars.empty(),
                                    Run.Input->Opts.BudgetBound),
            Streams,
            R.globalUnsat()
                ? std::nullopt
                : std::optional<uint64_t>(Run.Out.NumCubes));
      }
    } else {
      // Trivially UNSAT during preprocessing.
      Run.Out.NumCubes = 0;
      Run.Out.CubesSolved = 0;
      Run.Out.Result = SolveResult::Unsat;
      if (Run.Input->Opts.LogProofs)
        Run.Out.Proof = proof::buildTrivialProof(*Run.Encoded);
    }
    Run.Out.Prep = Run.Encoded->Prep;
    Run.Out.CnfVars = Run.Encoded->Cnf.NumVars;
    Run.Out.CnfClauses = Run.Encoded->Cnf.Clauses.size();
    Outcomes.push_back(std::move(Run.Out));
  }
  return Outcomes;
}

CubeEngine &CubeEngine::shared() {
  static CubeEngine Engine;
  return Engine;
}

// -- smt-layer facade --------------------------------------------------------
//
// Declared in smt/CubeSolver.h; defined here so the smt layer contains no
// threading. A caller-specified thread count that differs from the shared
// pool gets a private engine (the deterministic-concurrency tests sweep
// 1/2/4/8 threads this way).

smt::SolveOutcome veriqec::smt::solveExprParallel(const BoolContext &Ctx,
                                                  ExprRef Root,
                                                  const SolveOptions &Opts) {
  if (Opts.NumThreads == 0 ||
      Opts.NumThreads == CubeEngine::shared().numWorkers())
    return CubeEngine::shared().solve(Ctx, Root, Opts);
  CubeEngine Local(Opts.NumThreads);
  return Local.solve(Ctx, Root, Opts);
}
