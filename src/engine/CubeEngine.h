//===- engine/CubeEngine.h - Work-stealing cube-and-conquer -----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression-level half of the verification engine: cube-and-conquer
/// SAT discharge over a shared work-stealing thread pool. Cubes produced
/// by the paper's ET split heuristic (Section 7.1 / Appendix D.4,
/// ET = 2d*N(ones) + N(bits)) become pool tasks; each worker lazily
/// instantiates one reusable solver per problem from the shared CNF
/// encoding and discharges every cube it pops or steals under
/// assumptions, so learned clauses on the shared prefix carry over and
/// the CNF is never re-encoded per cube. The first SAT cube cancels all
/// outstanding siblings of its problem. solveAll() multiplexes many
/// independent problems over the same pool — the substrate of the batch
/// verifyAll() path.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_ENGINE_CUBEENGINE_H
#define VERIQEC_ENGINE_CUBEENGINE_H

#include "engine/ThreadPool.h"
#include "smt/CubeSolver.h"

#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace veriqec::engine {

/// Enumerates assumption cubes over \p SplitVars with the ET heuristic:
/// a branch is extended while ET = 2*Distance*ones + bits stays within
/// \p Threshold; branches whose ones-count exceeds \p MaxOnes are pruned
/// as infeasible under the weight constraint. The zero branch is taken
/// first so cubes come out in (roughly) increasing weight order.
std::vector<std::vector<sat::Lit>>
enumerateCubes(const std::vector<sat::Var> &SplitVars, uint32_t Distance,
               uint32_t Threshold, uint32_t MaxOnes);

/// One satisfiability problem for the batch API.
struct CubeProblem {
  const smt::BoolContext *Ctx = nullptr;
  smt::ExprRef Root;
  smt::SolveOptions Opts;
};

class CubeEngine {
public:
  /// \p NumThreads = 0 picks the hardware concurrency. The pool itself
  /// is created on first use, so engines that only ever see
  /// single-cube (sequential) problems never spawn a thread.
  explicit CubeEngine(size_t NumThreads = 0)
      : Width(NumThreads ? NumThreads
                         : std::max(1u, std::thread::hardware_concurrency())) {
  }

  size_t numWorkers() const { return Width; }

  /// Cube-and-conquer solve of one problem (blocks until decided).
  smt::SolveOutcome solve(const smt::BoolContext &Ctx, smt::ExprRef Root,
                          const smt::SolveOptions &Opts);

  /// Solves many independent problems over the same pool: every cube of
  /// every problem is in flight together, a SAT cube cancels only its own
  /// problem's siblings, and statistics are aggregated per problem.
  std::vector<smt::SolveOutcome> solveAll(std::span<const CubeProblem> Problems);

  /// Process-wide engine sized to the hardware, created on first use.
  /// The solveExprParallel()/verifyScenario() facades run on it whenever
  /// the caller does not request a specific thread count.
  static CubeEngine &shared();

private:
  ThreadPool &pool();

  size_t Width;
  std::mutex PoolMutex;
  std::unique_ptr<ThreadPool> Pool;
};

} // namespace veriqec::engine

#endif // VERIQEC_ENGINE_CUBEENGINE_H
