//===- engine/CubeEngine.h - Work-stealing cube-and-conquer -----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression-level half of the verification engine: cube-and-conquer
/// SAT discharge over a shared work-stealing thread pool. Cubes produced
/// by the paper's ET split heuristic (Section 7.1 / Appendix D.4,
/// ET = 2d*N(ones) + N(bits)) become pool tasks; each worker lazily
/// instantiates one reusable solver per problem from the shared CNF
/// encoding and discharges every cube it pops or steals under
/// assumptions, so learned clauses on the shared prefix carry over and
/// the CNF is never re-encoded per cube. The first SAT cube cancels all
/// outstanding siblings of its problem. solveAll() multiplexes many
/// independent problems over the same pool — the substrate of the batch
/// verifyAll() path.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_ENGINE_CUBEENGINE_H
#define VERIQEC_ENGINE_CUBEENGINE_H

#include "engine/CubeRun.h"
#include "engine/ThreadPool.h"
#include "smt/CubeSolver.h"

#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace veriqec::engine {

/// Enumerates assumption cubes over \p SplitVars with the ET heuristic:
/// a branch is extended while ET = 2*Distance*ones + bits stays within
/// \p Threshold; branches whose ones-count exceeds \p MaxOnes are pruned
/// as infeasible under the weight constraint. The zero branch is taken
/// first so cubes come out in (roughly) increasing weight order.
std::vector<std::vector<sat::Lit>>
enumerateCubes(const std::vector<sat::Var> &SplitVars, uint32_t Distance,
               uint32_t Threshold, uint32_t MaxOnes);

/// Exact number of cubes enumerateCubes() would emit for \p NumSplitVars
/// split variables, computed by a (bits, ones) dynamic program without
/// materializing anything; saturates at \p Cap so threshold probes stay
/// cheap.
uint64_t countCubes(size_t NumSplitVars, uint32_t Distance,
                    uint32_t Threshold, uint32_t MaxOnes, uint64_t Cap);

/// Cube-split sizing heuristic: the smallest ET threshold whose cube
/// count reaches max(8x \p TotalSlots, 8192), bounded above by
/// \p MaxThreshold (the budget-exhaustion cut, which stays the ceiling).
/// The slot term sizes the cube set to the fleet (local threads x
/// nodes); the floor keeps the per-slot count high enough that the
/// reusable solvers' assumption-prefix reuse and sibling-core pruning
/// have material to work with — measured on surface9 t=4 at one slot,
/// 305 cubes run 14.9 s and 10.4k cubes 5.2 s, while the old flat cut's
/// 21k cubes pay 7.6 s of near-trivial dispatch (ROADMAP "cube-split
/// heuristics"). Monotonicity of the cube count in the threshold makes
/// a binary search exact. \p CubeCountOut (optional) receives the count
/// at the chosen threshold, saturated at 32x the target.
uint32_t pickSplitThreshold(size_t NumSplitVars, uint32_t Distance,
                            uint32_t MaxThreshold, uint32_t MaxOnes,
                            size_t TotalSlots,
                            uint64_t *CubeCountOut = nullptr);

/// One satisfiability problem for the batch API.
struct CubeProblem {
  const smt::BoolContext *Ctx = nullptr;
  smt::ExprRef Root;
  smt::SolveOptions Opts;
};

/// A CubeProblem encoded and split: the shared immutable problem, its
/// cube list, the threshold the enumeration actually used, and the
/// per-problem run configuration. Cubes is empty when the preprocessor
/// refuted the problem outright (Encoded->TriviallyUnsat).
struct PreparedProblem {
  std::shared_ptr<smt::VerificationProblem> Encoded;
  std::vector<std::vector<sat::Lit>> Cubes;
  uint32_t SplitThresholdUsed = 0;
  CubeRunConfig Config;
};

/// The one CubeProblem -> (encoding, cubes, config) translation, shared
/// by the in-process engine and the distributed coordinator so the two
/// schedulers cannot desynchronize (their verdicts are compared in CI):
/// preprocess + encode, resolve an auto split threshold against
/// \p TotalSlots (the fleet-wide slot count), enumerate the cubes.
PreparedProblem prepareCubeProblem(const CubeProblem &P, size_t TotalSlots);

/// Where a batch of cube problems is discharged: in-process on the
/// work-stealing pool (CubeEngine) or sharded across remote workers
/// (dist::Coordinator). VerificationEngine::verifyAll is parameterized
/// on this, so every scenario workload runs unchanged on either
/// substrate.
class CubeBackend {
public:
  virtual ~CubeBackend() = default;

  /// Solves many independent problems; one outcome per problem, in
  /// order.
  virtual std::vector<smt::SolveOutcome>
  solveAll(std::span<const CubeProblem> Problems) = 0;

  /// Total solver slots behind this backend (local threads x nodes);
  /// drives the cube-split sizing heuristic.
  virtual size_t numSlots() const = 0;
};

class CubeEngine : public CubeBackend {
public:
  /// \p NumThreads = 0 picks the hardware concurrency. The pool itself
  /// is created on first use, so engines that only ever see
  /// single-cube (sequential) problems never spawn a thread.
  explicit CubeEngine(size_t NumThreads = 0)
      : Width(NumThreads ? NumThreads
                         : std::max(1u, std::thread::hardware_concurrency())) {
  }

  size_t numWorkers() const { return Width; }
  size_t numSlots() const override { return Width; }

  /// Cube-and-conquer solve of one problem (blocks until decided).
  smt::SolveOutcome solve(const smt::BoolContext &Ctx, smt::ExprRef Root,
                          const smt::SolveOptions &Opts);

  /// Solves many independent problems over the same pool: every cube of
  /// every problem is in flight together, a SAT cube cancels only its own
  /// problem's siblings, and statistics are aggregated per problem.
  std::vector<smt::SolveOutcome>
  solveAll(std::span<const CubeProblem> Problems) override;

  /// Process-wide engine sized to the hardware, created on first use.
  /// The solveExprParallel()/verifyScenario() facades run on it whenever
  /// the caller does not request a specific thread count.
  static CubeEngine &shared();

private:
  ThreadPool &pool();

  size_t Width;
  std::mutex PoolMutex;
  std::unique_ptr<ThreadPool> Pool;
};

} // namespace veriqec::engine

#endif // VERIQEC_ENGINE_CUBEENGINE_H
