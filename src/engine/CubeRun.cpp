//===- engine/CubeRun.cpp - Shared per-problem cube discharge --------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "engine/CubeRun.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Assert.h"
#include "support/Timer.h"

#include <algorithm>

using namespace veriqec;
using namespace veriqec::engine;
using sat::Lit;
using sat::SolveResult;

namespace {

/// True iff every literal of \p Core occurs in the sorted \p CubeSorted.
bool coreSubsumesCube(const std::vector<Lit> &Core,
                      const std::vector<Lit> &CubeSorted) {
  for (Lit L : Core)
    if (!std::binary_search(CubeSorted.begin(), CubeSorted.end(), L))
      return false;
  return true;
}

} // namespace

CubeRun::CubeRun(const smt::VerificationProblem &Problem,
                 const CubeRunConfig &Cfg, size_t NumSlots)
    : Problem(Problem), Cfg(Cfg) {
  Slots.resize(NumSlots);
  CoreSnapshots.resize(NumSlots);
  SlotConflictBase.resize(NumSlots, 0);
  if (Cfg.LogProofs) {
    SlotLogs.resize(NumSlots);
    for (std::unique_ptr<proof::SlotProofLog> &Log : SlotLogs)
      Log = std::make_unique<proof::SlotProofLog>();
  }
}

std::string CubeRun::drainSlotProof(size_t Slot) {
  if (Slot >= SlotLogs.size() || !SlotLogs[Slot])
    return {};
  return SlotLogs[Slot]->drain();
}

void CubeRun::storeCore(const std::vector<Lit> &Core, bool Outbound) {
  std::lock_guard<std::mutex> Lock(CoreMutex);
  if (RefutedCores.size() >= MaxRefutedCores)
    return;
  RefutedCores.push_back(Core);
  CoreCount.store(RefutedCores.size(), std::memory_order_release);
  if (Outbound)
    OutboundCores.push_back(Core);
}

void CubeRun::addExternalCores(std::span<const std::vector<Lit>> Cores) {
  for (const std::vector<Lit> &Core : Cores)
    storeCore(Core, /*Outbound=*/false);
}

std::vector<std::vector<Lit>> CubeRun::drainOutboundCores() {
  std::lock_guard<std::mutex> Lock(CoreMutex);
  std::vector<std::vector<Lit>> Out;
  Out.swap(OutboundCores);
  return Out;
}

void CubeRun::setPendingCubes(std::span<const std::vector<Lit>> Cubes) {
  // A cube assumes a handful of split variables; count, per variable,
  // how many of the still-unsolved cubes mention it. Lemmas over
  // high-count variables are shared structure across the pending work.
  auto Counts = std::make_shared<std::vector<uint32_t>>();
  for (const std::vector<Lit> &Cube : Cubes)
    for (Lit L : Cube) {
      size_t V = static_cast<size_t>(L.var());
      if (V >= Counts->size())
        Counts->resize(V + 1, 0);
      ++(*Counts)[V];
    }
  std::lock_guard<std::mutex> Lock(RetentionMutex);
  RetentionView = std::move(Counts);
}

std::shared_ptr<const std::vector<uint32_t>> CubeRun::retentionView() const {
  std::lock_guard<std::mutex> Lock(RetentionMutex);
  return RetentionView;
}

void CubeRun::accumulateStats(sat::SolverStats &Out) const {
  for (const std::unique_ptr<sat::Solver> &Slot : Slots)
    if (Slot)
      Out += Slot->stats();
}

CubeRun::CubeOutcome CubeRun::runCube(size_t Slot,
                                      const std::vector<Lit> &Cube,
                                      uint64_t CubeId) {
  if (cancelled())
    return CubeOutcome::Cancelled;
  assert(Slot < Slots.size() && "slot index out of range");

  bool Subsumed = false;
  const std::vector<Lit> *MatchedCore = nullptr;
  if (CoreCount.load(std::memory_order_acquire) != 0) {
    std::vector<std::vector<Lit>> &Snapshot = CoreSnapshots[Slot];
    if (Snapshot.size() < CoreCount.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> Lock(CoreMutex);
      Snapshot = RefutedCores;
    }
    std::vector<Lit> CubeSorted = Cube;
    std::sort(CubeSorted.begin(), CubeSorted.end());
    for (const std::vector<Lit> &Core : Snapshot)
      if (coreSubsumesCube(Core, CubeSorted)) {
        Subsumed = true;
        MatchedCore = &Core;
        break;
      }
  }
  // GF(2) propagation (with elimination under native XOR) over the
  // preprocessor's reduced rows can refute a cube outright — no solver,
  // no conflicts. A stored sibling core that fits inside this cube does
  // the same.
  if (Subsumed || Problem.cubeRefuted(Cube)) {
    Solved.fetch_add(1, std::memory_order_relaxed);
    (Subsumed ? PrunedCore : PrunedGf2)
        .fetch_add(1, std::memory_order_relaxed);
    if (Cfg.LogProofs) {
      if (Subsumed)
        // The cited core's own q record may live in another slot's
        // stream (or another node's); the checker validates prunes
        // against all streams in a second pass.
        SlotLogs[Slot]->logCorePrune(*MatchedCore, Cube);
      else
        // GF(2)-refuted: the whole cube is the core; the checker
        // re-derives the contradiction by eliminating the header's
        // x-rows (or unit-propagating the parity CNF) under the cube.
        SlotLogs[Slot]->logConclusion(Cube, Cube);
    }
    return Subsumed ? CubeOutcome::PrunedCore : CubeOutcome::PrunedGf2;
  }

  // One span per solver-discharged cube (pruned cubes never reach
  // here); construction is a relaxed load when tracing is off.
  obs::TraceSpan Span("cube_solve", {{"slot", Slot}, {"cube", CubeId}});
  bool Observe = obs::metricsEnabled();
  Timer CubeClock;

  std::unique_ptr<sat::Solver> &Reused = Slots[Slot];
  if (!Reused) {
    Reused = std::make_unique<sat::Solver>(Problem.makeSolver());
    // One bound per problem: harden the weight layer as root-level units
    // in this slot's solver (the shared CnfFormula stays
    // bound-independent).
    if (Cfg.HardenBudget)
      Problem.assertWeightBound(*Reused, Cfg.BudgetBound);
    Reused->setChrono(Cfg.Chrono);
    Reused->setAbortFlag(&Cancel);
    if (Cfg.LogProofs)
      // Proof mode forgoes cross-slot lemma exchange: a pool-imported
      // clause is justified by another slot's derivations, so it would
      // not replay as RUP inside this slot's stream.
      Reused->setProofSink(SlotLogs[Slot].get());
    else
      Reused->attachSharedPool(&LearntPool, static_cast<int>(Slot));
    if (Cfg.ConflictBudget)
      Reused->setConflictBudget(Cfg.ConflictBudget);
    if (Cfg.RandomSeed)
      Reused->setRandomSeed(Cfg.RandomSeed + static_cast<uint64_t>(Slot) + 1);
  }
  Reused->setRetentionView(retentionView());
  SolveResult R = Reused->solve(Cube);
  // Publish this slot's conflict total at cube granularity: the only
  // mid-run stats channel, so heartbeat senders never race a solver.
  uint64_t ConflictsNow = Reused->stats().Conflicts;
  uint64_t ConflictsDelta = ConflictsNow - SlotConflictBase[Slot];
  SlotConflictBase[Slot] = ConflictsNow;
  ConflictsObserved.fetch_add(ConflictsDelta, std::memory_order_relaxed);
  Span.arg("conflicts", ConflictsDelta);
  if (Observe) {
    static obs::Histogram &ConflictHist =
        obs::Registry::global().histogram("engine.cube_conflicts");
    static obs::Histogram &WallHist =
        obs::Registry::global().histogram("engine.cube_wall_us");
    ConflictHist.observe(ConflictsDelta);
    WallHist.observe(static_cast<uint64_t>(CubeClock.seconds() * 1e6));
  }
  if (R != SolveResult::Aborted)
    Solved.fetch_add(1, std::memory_order_relaxed);
  if (R == SolveResult::Sat) {
    std::lock_guard<std::mutex> Lock(ModelMutex);
    if (!Cancel.exchange(true)) {
      Problem.readModel(*Reused, Model);
      SatFlag.store(true, std::memory_order_release);
    }
    return CubeOutcome::Sat;
  }
  if (R == SolveResult::Unsat) {
    const std::vector<Lit> &Core = Reused->conflictCore();
    if (Cfg.LogProofs)
      // An empty core concludes the whole problem (GlobalUnsat below);
      // the checker treats it the same way.
      SlotLogs[Slot]->logConclusion(Core, Cube, Reused->conflictCoreHints());
    if (Core.empty() && !Cube.empty()) {
      // The refutation used no assumptions at all: the problem is UNSAT
      // under its root clauses alone and the siblings are redundant.
      GlobalUnsat.store(true, std::memory_order_relaxed);
      Cancel.store(true, std::memory_order_relaxed);
    } else if (!Core.empty() && Core.size() + 1 < Cube.size()) {
      // A strict-subset core refutes every sibling cube containing it;
      // remember it so they are pruned without a solver — and queue it
      // for cross-node broadcast. (The +1 slack: a core one literal
      // short of the cube subsumes almost nothing, not worth the
      // per-cube checks.)
      storeCore(Core, /*Outbound=*/true);
    }
    return CubeOutcome::Unsat;
  }
  // Aborted: cancellation mid-search is not a budget abort.
  if (!cancelled()) {
    AnyAborted.store(true, std::memory_order_relaxed);
    return CubeOutcome::Aborted;
  }
  return CubeOutcome::Cancelled;
}
