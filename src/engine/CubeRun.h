//===- engine/CubeRun.h - Shared per-problem cube discharge -----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread-safe shared state of one problem while its cubes are being
/// discharged: per-slot reusable solvers (lazily built from the shared
/// encoding), first-SAT cancellation, global-UNSAT detection via empty
/// failed-assumption cores, GF(2) cube refutation and sibling-core
/// subtree pruning, plus cross-slot learned-clause exchange. Extracted
/// from CubeEngine so the in-process work-stealing scheduler and the
/// distributed worker (dist/Worker.h) run the identical per-cube logic —
/// the distributed layer additionally feeds cores in from other nodes
/// (addExternalCores) and drains locally discovered ones for broadcast
/// (drainOutboundCores).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_ENGINE_CUBERUN_H
#define VERIQEC_ENGINE_CUBERUN_H

#include "proof/ProofLog.h"
#include "sat/Solver.h"
#include "smt/CubeSolver.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace veriqec::engine {

/// Per-problem solve configuration — the serializable subset of
/// smt::SolveOptions a (possibly remote) cube worker needs.
struct CubeRunConfig {
  /// Harden sum(budget terms) <= BudgetBound as root-level units in every
  /// slot solver (one bound per problem). Off for searches that probe
  /// many bounds by assumption (the distance search sends the bound
  /// literals inside each cube instead).
  bool HardenBudget = false;
  uint32_t BudgetBound = 0;
  uint64_t ConflictBudget = 0; ///< 0 = unlimited
  uint64_t RandomSeed = 0;     ///< 0 = deterministic branching
  /// Chronological backtracking in every slot solver (the resolved form
  /// of smt::ChronoMode; the cube workload's Auto default is on — long
  /// assumption prefixes are exactly what it protects).
  bool Chrono = false;
  /// Attach a proof::SlotProofLog to every slot solver and record a
  /// conclusion (q/c) per discharged cube. Disables the cross-slot
  /// learnt-clause pool: an imported lemma is justified by another
  /// slot's derivation chain and would not be RUP in this stream.
  bool LogProofs = false;
};

class CubeRun {
public:
  /// What happened to one cube.
  enum class CubeOutcome {
    Unsat,      ///< discharged UNSAT by a solver call
    PrunedGf2,  ///< refuted by the GF(2) parity oracle, no solver call
    PrunedCore, ///< subsumed by a stored sibling UNSAT core
    Sat,        ///< satisfiable — model captured, run cancelled
    Aborted,    ///< solver gave up (conflict budget)
    Cancelled,  ///< run was cancelled before/while solving this cube
  };

  /// \p Problem must outlive the run and is shared read-only across
  /// slots. \p NumSlots bounds the slot indices runCube() accepts.
  CubeRun(const smt::VerificationProblem &Problem, const CubeRunConfig &Cfg,
          size_t NumSlots);

  /// Discharges one cube on slot \p Slot. Slots are exclusive: at most
  /// one thread may use a given slot at any time (the slot owns a
  /// reusable solver whose learnt clauses carry across cubes); distinct
  /// slots may run concurrently. \p CubeId is observability-only: it
  /// labels this cube's trace span (the enumeration index in-process,
  /// the batch-relative index on a distributed worker).
  CubeOutcome runCube(size_t Slot, const std::vector<sat::Lit> &Cube,
                      uint64_t CubeId = 0);

  void cancel() { Cancel.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Cancel.load(std::memory_order_relaxed); }

  /// Clears the per-run verdict state (cancel/SAT/global-UNSAT/abort
  /// flags and the captured model) while keeping slot solvers, learnt
  /// clauses, stored cores and cumulative counters: the distributed
  /// worker reuses one CubeRun across many incremental cube sets of a
  /// persistent problem (the distance search's probes). Call only while
  /// quiescent.
  void reset() {
    Cancel.store(false, std::memory_order_relaxed);
    GlobalUnsat.store(false, std::memory_order_relaxed);
    AnyAborted.store(false, std::memory_order_relaxed);
    SatFlag.store(false, std::memory_order_relaxed);
    Model.clear();
  }

  /// A cube's UNSAT refutation used none of its assumption literals: the
  /// problem is UNSAT under its root clauses alone.
  bool globalUnsat() const {
    return GlobalUnsat.load(std::memory_order_relaxed);
  }
  /// Some cube aborted on its conflict budget (excludes cancellation).
  bool anyAborted() const { return AnyAborted.load(std::memory_order_relaxed); }
  bool satFound() const { return SatFlag.load(std::memory_order_acquire); }

  /// Model of the first SAT cube. Valid when satFound(); call only after
  /// the run has quiesced (no slot inside runCube()).
  const std::unordered_map<std::string, bool> &model() const { return Model; }

  uint64_t solved() const { return Solved.load(std::memory_order_relaxed); }
  uint64_t prunedGf2() const {
    return PrunedGf2.load(std::memory_order_relaxed);
  }
  uint64_t prunedCore() const {
    return PrunedCore.load(std::memory_order_relaxed);
  }

  /// Solver conflicts spent so far, observed at cube granularity: each
  /// slot publishes its solver's running total after every cube, so this
  /// is safe to read while slots are mid-solve (unlike accumulateStats,
  /// which walks the solvers themselves). Feeds the worker heartbeat's
  /// conflict delta.
  uint64_t conflictsObserved() const {
    return ConflictsObserved.load(std::memory_order_relaxed);
  }

  /// Merges cores discovered on OTHER nodes into the pruning list (they
  /// are not re-broadcast through drainOutboundCores).
  void addExternalCores(std::span<const std::vector<sat::Lit>> Cores);

  /// Locally discovered strict-subset cores not yet drained — the
  /// distributed worker ships these to the coordinator for cross-node
  /// sibling pruning.
  std::vector<std::vector<sat::Lit>> drainOutboundCores();

  /// Rebuilds the variable → pending-cube-count retention view from the
  /// cube set about to be dispatched; slot solvers pick it up before
  /// their next cube and bias reduceDB toward lemmas whose variables
  /// many unsolved cubes assume. Call at batch boundaries (the
  /// in-process engine once per dispatch, the distributed worker per
  /// incoming batch); safe while slots run — they swap the fresh view in
  /// at their next cube.
  void setPendingCubes(std::span<const std::vector<sat::Lit>> Cubes);

  /// Sums the slot solvers' statistics into \p Out. Call only while the
  /// slots are quiescent (between batches / after the run).
  void accumulateStats(sat::SolverStats &Out) const;

  size_t numSlots() const { return Slots.size(); }

  /// Moves out everything slot \p Slot's proof log has accumulated since
  /// the last drain (empty when not logging or nothing happened). Record
  /// boundaries are respected: runCube() writes whole records, so a
  /// drain between cubes never splits one. Chunks drained from the same
  /// slot concatenate into one valid stream. Call only while the slot is
  /// quiescent (owner thread, or between batches).
  std::string drainSlotProof(size_t Slot);

private:
  void storeCore(const std::vector<sat::Lit> &Core, bool Outbound);
  std::shared_ptr<const std::vector<uint32_t>> retentionView() const;

  const smt::VerificationProblem &Problem;
  CubeRunConfig Cfg;

  std::atomic<bool> Cancel{false};
  std::atomic<bool> GlobalUnsat{false};
  std::atomic<bool> AnyAborted{false};
  std::atomic<bool> SatFlag{false};
  std::atomic<uint64_t> Solved{0};
  std::atomic<uint64_t> PrunedGf2{0};
  std::atomic<uint64_t> PrunedCore{0};
  /// See conflictsObserved(). Owner-only per-slot bases live in
  /// SlotConflictBase; only the published sum is shared.
  std::atomic<uint64_t> ConflictsObserved{0};

  /// UNSAT cores that used only a strict subset of their cube's
  /// assumption literals. Any later cube containing such a core is UNSAT
  /// without solving — with the ET enumeration's shared prefixes this
  /// regularly discharges whole subtrees of sibling cubes. The master
  /// list is guarded by CoreMutex and append-only; slots scan their own
  /// snapshot (refreshed only when CoreCount says it is stale), so the
  /// common case costs one relaxed load per cube, not a lock. Capped so
  /// snapshot refreshes and subset checks stay cheap.
  std::vector<std::vector<sat::Lit>> RefutedCores;
  std::vector<std::vector<sat::Lit>> OutboundCores;
  std::atomic<size_t> CoreCount{0};
  std::mutex CoreMutex;
  static constexpr size_t MaxRefutedCores = 256;

  /// One lazily-built solver per slot; a slot is only ever touched by one
  /// thread at a time, so no locking.
  std::vector<std::unique_ptr<sat::Solver>> Slots;
  /// One proof stream per slot (owner-only, like Slots); allocated
  /// eagerly in the constructor when Cfg.LogProofs so pruned cubes have
  /// somewhere to conclude before the slot solver exists. unique_ptr for
  /// address stability — the slot solver keeps a raw sink pointer.
  std::vector<std::unique_ptr<proof::SlotProofLog>> SlotLogs;
  /// Per-slot snapshots of RefutedCores (owner-only, like Slots).
  std::vector<std::vector<std::vector<sat::Lit>>> CoreSnapshots;
  /// Per-slot last-published solver conflict totals (owner-only).
  std::vector<uint64_t> SlotConflictBase;

  /// Clause exchange between the slots: lemmas learned on one slot's
  /// cubes are valid for every sibling cube and imported lazily.
  sat::SharedClausePool LearntPool;

  std::mutex ModelMutex; // guards Model on the SAT path
  std::unordered_map<std::string, bool> Model;

  /// Current variable → pending-cube-count view (see setPendingCubes);
  /// swapped wholesale under the mutex, shared read-only with solvers.
  mutable std::mutex RetentionMutex;
  std::shared_ptr<const std::vector<uint32_t>> RetentionView;
};

} // namespace veriqec::engine

#endif // VERIQEC_ENGINE_CUBERUN_H
