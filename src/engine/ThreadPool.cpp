//===- engine/ThreadPool.cpp - Work-stealing thread pool -------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "engine/ThreadPool.h"

using namespace veriqec::engine;

namespace {
thread_local int CurrentWorker = -1;
} // namespace

ThreadPool::ThreadPool(size_t NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  for (size_t I = 0; I != NumThreads; ++I)
    Queues.push_back(std::make_unique<WorkStealingQueue<Task>>());
  for (size_t I = 0; I != NumThreads; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(IdleMutex);
    Stopping.store(true, std::memory_order_release);
  }
  IdleCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

int ThreadPool::currentWorkerIndex() { return CurrentWorker; }

void ThreadPool::submit(Task T) {
  size_t Target = RoundRobin.fetch_add(1, std::memory_order_relaxed);
  submitTo(Target % Queues.size(), std::move(T));
}

void ThreadPool::submitTo(size_t Worker, Task T) {
  Pending.fetch_add(1, std::memory_order_release);
  Queues[Worker % Queues.size()]->push(std::move(T));
  // Lock pairs with the worker's predicate check so the notify cannot slip
  // between "saw no work" and "went to sleep".
  std::lock_guard<std::mutex> Lock(IdleMutex);
  IdleCv.notify_one();
}

bool ThreadPool::tryGetTask(size_t Index, Task &Out) {
  if (Queues[Index]->tryPop(Out))
    return true;
  for (size_t Off = 1; Off != Queues.size(); ++Off)
    if (Queues[(Index + Off) % Queues.size()]->trySteal(Out))
      return true;
  return false;
}

void ThreadPool::workerLoop(size_t Index) {
  CurrentWorker = static_cast<int>(Index);
  Task T;
  for (;;) {
    if (tryGetTask(Index, T)) {
      Pending.fetch_sub(1, std::memory_order_release);
      T();
      T = Task();
      continue;
    }
    std::unique_lock<std::mutex> Lock(IdleMutex);
    IdleCv.wait(Lock, [this] {
      return Stopping.load(std::memory_order_acquire) ||
             Pending.load(std::memory_order_acquire) != 0;
    });
    if (Stopping.load(std::memory_order_acquire) &&
        Pending.load(std::memory_order_acquire) == 0)
      return;
  }
}
