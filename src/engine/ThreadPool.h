//===- engine/ThreadPool.h - Work-stealing thread pool ----------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared worker pool of the verification engine. Each worker owns a
/// WorkStealingQueue; submission round-robins tasks across the queues and
/// an idle worker steals from its siblings before sleeping. Completion is
/// tracked externally with WaitGroup so one pool can multiplex many
/// concurrent solve batches (the batch verifyAll path).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_ENGINE_THREADPOOL_H
#define VERIQEC_ENGINE_THREADPOOL_H

#include "engine/WorkStealingQueue.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace veriqec::engine {

/// Counts outstanding tasks of one logical batch; wait() blocks the
/// submitting thread until every task called done().
class WaitGroup {
public:
  void add(size_t N) { Count.fetch_add(N, std::memory_order_relaxed); }

  void done() {
    if (Count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> Lock(Mutex);
      Cv.notify_all();
    }
  }

  void wait() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock,
            [this] { return Count.load(std::memory_order_acquire) == 0; });
  }

private:
  std::atomic<size_t> Count{0};
  std::mutex Mutex;
  std::condition_variable Cv;
};

class ThreadPool {
public:
  using Task = std::function<void()>;

  /// \p NumThreads = 0 picks the hardware concurrency.
  explicit ThreadPool(size_t NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t numWorkers() const { return Queues.size(); }

  /// Enqueues a task on the next queue in round-robin order.
  void submit(Task T);

  /// Enqueues a task on a specific worker's queue (used to keep the cubes
  /// of one problem clustered on few workers when many problems share the
  /// pool).
  void submitTo(size_t Worker, Task T);

  /// Index of the pool worker running the current thread, or -1 when
  /// called from outside the pool. Lets tasks address per-worker state
  /// (e.g. the reusable SAT solver slots) without locks.
  static int currentWorkerIndex();

private:
  void workerLoop(size_t Index);
  bool tryGetTask(size_t Index, Task &Out);

  std::vector<std::unique_ptr<WorkStealingQueue<Task>>> Queues;
  std::vector<std::thread> Threads;
  std::atomic<size_t> RoundRobin{0};
  std::atomic<size_t> Pending{0};
  std::atomic<bool> Stopping{false};
  std::mutex IdleMutex;
  std::condition_variable IdleCv;
};

} // namespace veriqec::engine

#endif // VERIQEC_ENGINE_THREADPOOL_H
