//===- engine/VerificationEngine.cpp - Batch scenario verification ---------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "engine/VerificationEngine.h"

#include "obs/Trace.h"
#include "support/Timer.h"
#include "vcgen/SymbolicFlow.h"

#include <algorithm>

using namespace veriqec;
using namespace veriqec::engine;
using namespace veriqec::smt;

namespace {

/// Scenario VC under construction: the BoolContext must outlive the SAT
/// discharge, so it lives here rather than on the stack of a helper.
struct PreparedScenario {
  BoolContext Ctx;
  BuiltVc Vc;
  VerificationResult Result;
  double BuildSeconds = 0;
};

/// Steps 1-2 of the pipeline: symbolic execution and VC assembly.
void prepareScenario(const Scenario &S, const VerifyOptions &Opts,
                     PreparedScenario &P) {
  obs::TraceSpan Span("scenario_build", {{"qubits", S.NumQubits}});
  Timer Clock;
  P.Vc = buildScenarioVc(P.Ctx, S, Opts);
  if (!P.Vc.Ok) {
    P.Result.Error = P.Vc.Error;
    P.BuildSeconds = Clock.seconds();
    return;
  }
  P.Result.StructuralOk = true;
  P.Result.NumGoals = P.Vc.NumGoals;
  P.BuildSeconds = Clock.seconds();
}

/// Discharge configuration for one scenario (the ET split heuristic's
/// parameters come from the scenario's error structure).
SolveOptions makeSolveOptions(const Scenario &S, const VerifyOptions &Opts) {
  SolveOptions SO;
  SO.CardEnc = Opts.CardEnc;
  SO.Preprocess = Opts.Preprocess;
  SO.Xor = Opts.Xor;
  SO.Chrono = Opts.Chrono;
  SO.ConflictBudget = Opts.ConflictBudget;
  SO.RandomSeed = Opts.RandomSeed;
  SO.LogProofs = Opts.LogProofs;
  if (Opts.Parallel && !S.ErrorVars.empty()) {
    // An auto threshold is an upper bound: the backend lowers it so the
    // cube count targets ~8x its total slots (pickSplitThreshold).
    SO.AutoSplitThreshold = Opts.SplitThreshold == 0;
    SO.SplitVars = S.ErrorVars;
    SO.DistanceHint = std::max<uint32_t>(
        2, S.MaxErrors == ~uint32_t{0} ? 2 : 2 * S.MaxErrors + 1);
    // Auto ET threshold: the paper uses n, but splitting only pays
    // until the weight budget is exhausted — once ET passes
    // 2d*MaxOnes, every extension is a forced zero-tail that multiplies
    // near-trivial cubes without narrowing the search (measured ~25%
    // of cube-path wall-clock on surface9 t=4). The +4 slack keeps the
    // cubes that just placed their last feasible one.
    uint32_t Auto = static_cast<uint32_t>(S.NumQubits);
    if (S.MaxErrors != ~uint32_t{0})
      Auto = static_cast<uint32_t>(std::min<uint64_t>(
          Auto, 2ull * SO.DistanceHint * S.MaxErrors + 4));
    SO.SplitThreshold = Opts.SplitThreshold ? Opts.SplitThreshold : Auto;
    SO.MaxOnes = S.MaxErrors;
  }
  return SO;
}

void applyOutcome(SolveOutcome &&Outcome, PreparedScenario &P) {
  P.Result.Stats = Outcome.Stats;
  P.Result.NumCubes = Outcome.NumCubes;
  P.Result.CubesSolved = Outcome.CubesSolved;
  P.Result.CubesPruned = Outcome.CubesPruned;
  P.Result.CubesPrunedGf2 = Outcome.CubesPrunedGf2;
  P.Result.CubesPrunedCore = Outcome.CubesPrunedCore;
  P.Result.Prep = Outcome.Prep;
  P.Result.CnfVars = Outcome.CnfVars;
  P.Result.CnfClauses = Outcome.CnfClauses;
  P.Result.SplitThresholdUsed = Outcome.SplitThresholdUsed;
  P.Result.Verified = Outcome.Result == sat::SolveResult::Unsat;
  P.Result.Aborted = Outcome.Result == sat::SolveResult::Aborted;
  if (Outcome.Result == sat::SolveResult::Sat)
    P.Result.CounterExample = std::move(Outcome.Model);
  P.Result.Proof = std::move(Outcome.Proof);
  P.Result.Seconds = P.BuildSeconds + Outcome.SolveSeconds;
}

} // namespace

BuiltVc veriqec::engine::buildScenarioVc(BoolContext &Ctx, const Scenario &S,
                                         const VerifyOptions &Opts) {
  obs::TraceSpan Span("vc_gen", {{"qubits", S.NumQubits}});
  SymbolicFlow Flow(S.NumQubits);
  for (const GenSpec &G : S.Pre) {
    PhaseExpr Phase(G.PhaseConstant);
    if (!G.PhaseVar.empty())
      Phase.xorVar(Flow.vars().id(G.PhaseVar));
    Flow.addInitialGenerator(G.Base, Phase);
  }
  FlowResult FR = Flow.run(S.Program);
  if (!FR.Ok) {
    BuiltVc Out;
    Out.Error = "symbolic flow: " + FR.Error;
    return Out;
  }

  VcSpec Spec;
  Spec.Vars = &Flow.vars();
  Spec.Flow = std::move(FR);
  for (const GenSpec &G : S.Post) {
    PhaseExpr Phase(G.PhaseConstant);
    if (!G.PhaseVar.empty())
      Phase.xorVar(Flow.vars().id(G.PhaseVar));
    Spec.Targets.push_back({G.Base, std::move(Phase)});
  }
  Spec.ErrorVars = S.ErrorVars;
  Spec.MaxTotalErrors = S.MaxErrors;
  Spec.ParityConstraints = S.Parity;
  Spec.WeightConstraints = S.Weights;
  Spec.ExtraConstraint = Opts.ExtraConstraint;

  BuiltVc Vc = buildVc(Ctx, Spec);
  if (!Vc.Ok)
    Vc.Error = "vc assembly: " + Vc.Error;
  return Vc;
}

VerificationResult VerificationEngine::verify(const Scenario &S,
                                              const VerifyOptions &Opts) {
  return verifyAll({&S, 1}, Opts).front();
}

std::vector<VerificationResult>
VerificationEngine::verifyAll(std::span<const Scenario> Scenarios,
                              const VerifyOptions &Opts) {
  return verifyAll(Scenarios, Opts, Cubes);
}

std::vector<VerificationResult>
VerificationEngine::verifyAll(std::span<const Scenario> Scenarios,
                              const VerifyOptions &Opts,
                              CubeBackend &Backend) {
  // VC assembly is pure per scenario; build them all first (cheap next to
  // SAT), then hand every structurally-sound VC to the cube scheduler in
  // one batch so all cubes share the pool.
  std::vector<PreparedScenario> Prepared(Scenarios.size());
  for (size_t I = 0; I != Scenarios.size(); ++I)
    prepareScenario(Scenarios[I], Opts, Prepared[I]);

  std::vector<CubeProblem> Problems;
  std::vector<size_t> ProblemOf; // index into Prepared
  for (size_t I = 0; I != Scenarios.size(); ++I) {
    if (!Prepared[I].Result.StructuralOk)
      continue;
    CubeProblem P;
    P.Ctx = &Prepared[I].Ctx;
    P.Opts = makeSolveOptions(Scenarios[I], Opts);
    // Encode-once, assume-many: with the sequential-counter encoding the
    // error budget is not baked into the CNF — the weight layer enforces
    // it by assumptions, so the encoding is bound-independent. The
    // pairwise ablation encoding keeps the legacy baked atom (its whole
    // point is to encode the cardinality differently).
    const BuiltVc &Vc = Prepared[I].Vc;
    if (!Vc.BudgetVars.empty() &&
        Opts.CardEnc == CardinalityEncoding::SequentialCounter) {
      P.Root = Vc.NegatedVcBase;
      P.Opts.BudgetVars = Vc.BudgetVars;
      P.Opts.BudgetBound = Vc.BudgetBound;
    } else {
      P.Root = Vc.NegatedVc;
    }
    Problems.push_back(P);
    ProblemOf.push_back(I);
  }

  std::vector<SolveOutcome> Outcomes = Backend.solveAll(Problems);
  for (size_t J = 0; J != Outcomes.size(); ++J)
    applyOutcome(std::move(Outcomes[J]), Prepared[ProblemOf[J]]);

  std::vector<VerificationResult> Results;
  Results.reserve(Scenarios.size());
  for (PreparedScenario &P : Prepared) {
    if (!P.Result.StructuralOk)
      P.Result.Seconds = P.BuildSeconds;
    Results.push_back(std::move(P.Result));
  }
  return Results;
}

VerificationEngine &VerificationEngine::shared() {
  static VerificationEngine Engine;
  return Engine;
}
