//===- engine/VerificationEngine.h - Batch scenario verification -*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario-level half of the verification engine: owns a CubeEngine
/// (work-stealing pool + cube-and-conquer scheduler) and drives whole
/// Scenarios through symbolic execution, VC assembly and SAT discharge on
/// it. verifyAll() multiplexes many scenarios over the same pool — VC
/// encodings build concurrently and every scenario's cubes share the
/// workers — with per-scenario verdicts, counterexamples and statistics.
/// The verifyScenario()/verifyDetection() functions in verifier/Verifier.h
/// are thin facades over the process-wide instance.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_ENGINE_VERIFICATIONENGINE_H
#define VERIQEC_ENGINE_VERIFICATIONENGINE_H

#include "engine/CubeEngine.h"
#include "verifier/Verifier.h"

#include <span>

namespace veriqec::engine {

/// Steps 1-2 of the verification pipeline — symbolic flow plus negated-VC
/// assembly into \p Ctx — without the SAT discharge. The engine's own
/// verifyAll() runs on this; it is exposed so the testing/ oracles can
/// re-evaluate engine verdicts (certificate checking needs the exact
/// BoolExpr the engine solved). \p Ctx must outlive any solving of the
/// returned VC.
BuiltVc buildScenarioVc(smt::BoolContext &Ctx, const Scenario &S,
                        const VerifyOptions &Opts = {});

class VerificationEngine {
public:
  /// \p NumThreads = 0 picks the hardware concurrency.
  explicit VerificationEngine(size_t NumThreads = 0) : Cubes(NumThreads) {}

  size_t numWorkers() const { return Cubes.numWorkers(); }

  /// Verifies one scenario on the engine's pool. Opts.Parallel selects
  /// cube splitting; Opts.Threads is ignored here (the pool size rules).
  VerificationResult verify(const Scenario &S, const VerifyOptions &Opts = {});

  /// Verifies a batch of scenarios over the same pool, one result per
  /// scenario in order. Scenarios are independent: a counterexample in
  /// one cancels only that scenario's outstanding cubes.
  std::vector<VerificationResult> verifyAll(std::span<const Scenario> Scenarios,
                                            const VerifyOptions &Opts = {});

  /// Same pipeline, but the SAT discharge runs on \p Backend instead of
  /// this engine's pool — this is how a whole scenario workload is
  /// sharded across remote workers (dist::Coordinator) without the
  /// verification layers knowing: symbolic flow and VC assembly still
  /// happen here, only the cube scheduling is swapped out.
  std::vector<VerificationResult> verifyAll(std::span<const Scenario> Scenarios,
                                            const VerifyOptions &Opts,
                                            CubeBackend &Backend);

  /// The engine's cube-level scheduler (for expression workloads).
  CubeEngine &cubes() { return Cubes; }

  /// Process-wide engine sized to the hardware, created on first use.
  static VerificationEngine &shared();

private:
  CubeEngine Cubes;
};

} // namespace veriqec::engine

#endif // VERIQEC_ENGINE_VERIFICATIONENGINE_H
