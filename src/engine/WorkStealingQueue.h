//===- engine/WorkStealingQueue.h - Per-worker task deque -------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deque underlying the engine's work-stealing scheduler. Each pool
/// worker owns one queue: the owner pushes and pops at the front so cubes
/// run in the ET enumeration order (low-weight cubes first — they are
/// cheap and likely decisive, see CubeSolver.h), while idle workers steal
/// from the back, taking the deepest cubes and keeping contention off the
/// owner's end. Tasks are coarse (one SAT call each), so a small mutex per
/// queue is cheaper than a lock-free deque and trivially correct.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_ENGINE_WORKSTEALINGQUEUE_H
#define VERIQEC_ENGINE_WORKSTEALINGQUEUE_H

#include <deque>
#include <mutex>
#include <utility>

namespace veriqec::engine {

template <typename T> class WorkStealingQueue {
public:
  void push(T Item) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Items.push_back(std::move(Item));
  }

  /// Owner side: next task in submission order.
  bool tryPop(T &Out) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  /// Thief side: takes from the opposite end.
  bool trySteal(T &Out) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Items.empty())
      return false;
    Out = std::move(Items.back());
    Items.pop_back();
    return true;
  }

  bool empty() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.empty();
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.size();
  }

private:
  mutable std::mutex Mutex;
  std::deque<T> Items;
};

} // namespace veriqec::engine

#endif // VERIQEC_ENGINE_WORKSTEALINGQUEUE_H
