//===- gf2/BitMatrix.cpp - Dense GF(2) matrix algebra ---------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "gf2/BitMatrix.h"

#include "support/Assert.h"

using namespace veriqec;

BitMatrix BitMatrix::fromRows(std::vector<BitVector> RowsIn) {
  BitMatrix M;
  if (!RowsIn.empty()) {
    M.NumCols = RowsIn.front().size();
    for ([[maybe_unused]] const BitVector &R : RowsIn)
      assert(R.size() == M.NumCols && "rows must share a width");
  }
  M.Rows = std::move(RowsIn);
  return M;
}

BitMatrix BitMatrix::identity(size_t N) {
  BitMatrix M(N, N);
  for (size_t I = 0; I != N; ++I)
    M.set(I, I);
  return M;
}

void BitMatrix::appendRow(BitVector Row) {
  if (Rows.empty() && NumCols == 0)
    NumCols = Row.size();
  assert(Row.size() == NumCols && "row width mismatch");
  Rows.push_back(std::move(Row));
}

BitMatrix BitMatrix::transposed() const {
  BitMatrix T(NumCols, Rows.size());
  for (size_t R = 0, RE = Rows.size(); R != RE; ++R)
    for (size_t C = Rows[R].findFirst(); C < NumCols;
         C = Rows[R].findNext(C + 1))
      T.set(C, R);
  return T;
}

BitVector BitMatrix::multiply(const BitVector &V) const {
  assert(V.size() == NumCols && "vector width mismatch");
  BitVector Out(Rows.size());
  for (size_t R = 0, RE = Rows.size(); R != RE; ++R)
    if (Rows[R].dotParity(V))
      Out.set(R);
  return Out;
}

BitMatrix BitMatrix::multiply(const BitMatrix &Other) const {
  assert(NumCols == Other.numRows() && "dimension mismatch");
  BitMatrix Out(Rows.size(), Other.numCols());
  for (size_t R = 0, RE = Rows.size(); R != RE; ++R) {
    BitVector &OutRow = Out.row(R);
    const BitVector &InRow = Rows[R];
    for (size_t K = InRow.findFirst(); K < NumCols; K = InRow.findNext(K + 1))
      OutRow ^= Other.row(K);
  }
  return Out;
}

std::vector<size_t> BitMatrix::rowReduce() {
  std::vector<size_t> Pivots;
  size_t PivotRow = 0;
  for (size_t Col = 0; Col != NumCols && PivotRow != Rows.size(); ++Col) {
    // Find a row with a 1 in this column at or below PivotRow.
    size_t Found = Rows.size();
    for (size_t R = PivotRow; R != Rows.size(); ++R)
      if (Rows[R].get(Col)) {
        Found = R;
        break;
      }
    if (Found == Rows.size())
      continue;
    swapRows(PivotRow, Found);
    // Eliminate this column from every other row (reduced form).
    for (size_t R = 0; R != Rows.size(); ++R)
      if (R != PivotRow && Rows[R].get(Col))
        Rows[R] ^= Rows[PivotRow];
    Pivots.push_back(Col);
    ++PivotRow;
  }
  return Pivots;
}

size_t BitMatrix::rank() const {
  BitMatrix Copy = *this;
  return Copy.rowReduce().size();
}

std::optional<BitVector> BitMatrix::solve(const BitVector &B) const {
  assert(B.size() == Rows.size() && "rhs height mismatch");
  // Row-reduce the augmented matrix [A | b].
  BitMatrix Aug(Rows.size(), NumCols + 1);
  for (size_t R = 0; R != Rows.size(); ++R) {
    const BitVector &Src = Rows[R];
    BitVector &Dst = Aug.row(R);
    for (size_t C = Src.findFirst(); C < NumCols; C = Src.findNext(C + 1))
      Dst.set(C);
    if (B.get(R))
      Dst.set(NumCols);
  }
  std::vector<size_t> Pivots = Aug.rowReduce();
  // Inconsistent iff some pivot landed in the augmented column.
  if (!Pivots.empty() && Pivots.back() == NumCols)
    return std::nullopt;
  BitVector X(NumCols);
  for (size_t R = 0; R != Pivots.size(); ++R)
    if (Aug.get(R, NumCols))
      X.set(Pivots[R]);
  return X;
}

std::vector<BitVector> BitMatrix::nullspaceBasis() const {
  BitMatrix Reduced = *this;
  std::vector<size_t> Pivots = Reduced.rowReduce();
  // Mark pivot columns; every other column is free.
  BitVector IsPivot(NumCols);
  for (size_t P : Pivots)
    IsPivot.set(P);

  std::vector<BitVector> Basis;
  for (size_t Free = 0; Free != NumCols; ++Free) {
    if (IsPivot.get(Free))
      continue;
    BitVector V(NumCols);
    V.set(Free);
    // Back-substitute: pivot variable of row R equals the row's entry in
    // the free column (RREF has exactly one pivot per reduced row).
    for (size_t R = 0; R != Pivots.size(); ++R)
      if (Reduced.get(R, Free))
        V.set(Pivots[R]);
    Basis.push_back(std::move(V));
  }
  return Basis;
}

std::optional<BitVector>
BitMatrix::expressInRowSpace(const BitVector &Target) const {
  assert(Target.size() == NumCols && "target width mismatch");
  // c^T A = t  <=>  A^T c = t.
  return transposed().solve(Target);
}

std::string BitMatrix::toString() const {
  std::string S;
  for (const BitVector &R : Rows) {
    S += R.toString();
    S += '\n';
  }
  return S;
}
