//===- gf2/BitMatrix.h - Dense GF(2) matrix algebra ------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense matrices over GF(2) with the elimination routines the stabilizer
/// formalism needs: rank/RREF, linear solves, nullspace bases, and
/// expressing vectors over a generating set (the engine behind
/// Proposition 5.2's generator re-expression).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_GF2_BITMATRIX_H
#define VERIQEC_GF2_BITMATRIX_H

#include "support/BitVector.h"

#include <optional>
#include <string>
#include <vector>

namespace veriqec {

/// Dense matrix over GF(2); rows are BitVectors of equal length.
class BitMatrix {
public:
  BitMatrix() = default;

  /// Creates a zero matrix of \p NumRows x \p NumCols.
  BitMatrix(size_t NumRows, size_t NumCols)
      : NumCols(NumCols), Rows(NumRows, BitVector(NumCols)) {}

  /// Builds a matrix from existing rows; all rows must share a length.
  static BitMatrix fromRows(std::vector<BitVector> RowsIn);

  /// The n x n identity.
  static BitMatrix identity(size_t N);

  size_t numRows() const { return Rows.size(); }
  size_t numCols() const { return NumCols; }

  bool get(size_t R, size_t C) const { return Rows[R].get(C); }
  void set(size_t R, size_t C, bool V = true) { Rows[R].set(C, V); }

  const BitVector &row(size_t R) const { return Rows[R]; }
  BitVector &row(size_t R) { return Rows[R]; }

  /// Appends \p Row (must have numCols() bits, unless the matrix is empty in
  /// which case it defines the width).
  void appendRow(BitVector Row);

  /// XORs row \p Src into row \p Dst.
  void addRowInto(size_t Src, size_t Dst) { Rows[Dst] ^= Rows[Src]; }

  void swapRows(size_t A, size_t B) { std::swap(Rows[A], Rows[B]); }

  BitMatrix transposed() const;

  /// Matrix-vector product (over GF(2)); \p V has numCols() bits.
  BitVector multiply(const BitVector &V) const;

  /// Matrix-matrix product; this->numCols() must equal Other.numRows().
  BitMatrix multiply(const BitMatrix &Other) const;

  /// Reduces the matrix in place to reduced row-echelon form.
  /// \returns the pivot column of each nonzero row, in order.
  std::vector<size_t> rowReduce();

  /// Rank (does not modify the matrix).
  size_t rank() const;

  /// Solves x such that (*this) * x = B. \returns nullopt if inconsistent.
  /// When the system is underdetermined an arbitrary solution is returned
  /// (free variables set to zero).
  std::optional<BitVector> solve(const BitVector &B) const;

  /// A basis of { x : (*this) * x = 0 }.
  std::vector<BitVector> nullspaceBasis() const;

  /// Expresses \p Target as a GF(2) combination of this matrix's *rows*:
  /// finds c with c^T * (*this) = Target. \returns the row-selector c, or
  /// nullopt if Target is outside the row space. This is the workhorse of
  /// the case-2 VC reduction (writing a primed generator as a product of
  /// the original generating set).
  std::optional<BitVector> expressInRowSpace(const BitVector &Target) const;

  /// True if \p Target lies in the row space.
  bool rowSpaceContains(const BitVector &Target) const {
    return expressInRowSpace(Target).has_value();
  }

  bool operator==(const BitMatrix &Other) const {
    return NumCols == Other.NumCols && Rows == Other.Rows;
  }

  /// Multi-line 0/1 rendering for diagnostics.
  std::string toString() const;

private:
  size_t NumCols = 0;
  std::vector<BitVector> Rows;
};

} // namespace veriqec

#endif // VERIQEC_GF2_BITMATRIX_H
