//===- logic/Assertion.cpp - The assertion language of Section 3 -----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "logic/Assertion.h"

#include "support/Assert.h"

using namespace veriqec;

namespace {
std::shared_ptr<Assertion> makeNode(AssertKind K) {
  auto A = std::make_shared<Assertion>();
  A->Kind = K;
  return A;
}
} // namespace

AssertPtr Assertion::boolAtom(CExprPtr B) {
  auto A = makeNode(AssertKind::BoolAtom);
  A->Bool = std::move(B);
  return A;
}

AssertPtr Assertion::pauliAtom(Pauli Base, CExprPtr PhaseBit) {
  auto A = makeNode(AssertKind::PauliAtom);
  // Fold an explicit sign into the phase bit.
  if (Base.signBit()) {
    Base.negate();
    PhaseBit = PhaseBit ? ClassicalExpr::logicalNot(std::move(PhaseBit))
                        : ClassicalExpr::boolean(true);
  }
  A->Base = std::move(Base);
  A->PhaseBit = std::move(PhaseBit);
  return A;
}

AssertPtr Assertion::logicalNot(AssertPtr A) {
  auto N = makeNode(AssertKind::Not);
  N->Kids = {std::move(A)};
  return N;
}

AssertPtr Assertion::conj(AssertPtr A, AssertPtr B) {
  auto N = makeNode(AssertKind::And);
  N->Kids = {std::move(A), std::move(B)};
  return N;
}

AssertPtr Assertion::conj(std::vector<AssertPtr> Kids) {
  assert(!Kids.empty() && "empty conjunction");
  AssertPtr Acc = Kids.front();
  for (size_t I = 1; I != Kids.size(); ++I)
    Acc = conj(Acc, Kids[I]);
  return Acc;
}

AssertPtr Assertion::disj(AssertPtr A, AssertPtr B) {
  auto N = makeNode(AssertKind::Or);
  N->Kids = {std::move(A), std::move(B)};
  return N;
}

AssertPtr Assertion::implies(AssertPtr A, AssertPtr B) {
  auto N = makeNode(AssertKind::Implies);
  N->Kids = {std::move(A), std::move(B)};
  return N;
}

DenseSubspace Assertion::evaluate(const CMem &Mem, size_t NumQubits) const {
  switch (Kind) {
  case AssertKind::BoolAtom:
    return Bool->evaluateBool(Mem) ? DenseSubspace::full(NumQubits)
                                   : DenseSubspace::zero(NumQubits);
  case AssertKind::PauliAtom: {
    bool Sign = PhaseBit && PhaseBit->evaluateBool(Mem);
    return DenseSubspace::eigenspaceOf(Base, Sign);
  }
  case AssertKind::Not:
    return Kids[0]->evaluate(Mem, NumQubits).complement();
  case AssertKind::And:
    return Kids[0]->evaluate(Mem, NumQubits)
        .meet(Kids[1]->evaluate(Mem, NumQubits));
  case AssertKind::Or:
    return Kids[0]->evaluate(Mem, NumQubits)
        .join(Kids[1]->evaluate(Mem, NumQubits));
  case AssertKind::Implies:
    return Kids[0]->evaluate(Mem, NumQubits)
        .sasakiImplies(Kids[1]->evaluate(Mem, NumQubits));
  }
  unreachable("unknown AssertKind");
}

AssertPtr Assertion::substituteClassical(const AssertPtr &A,
                                         const std::string &Var,
                                         const CExprPtr &Replacement) {
  auto Copy = std::make_shared<Assertion>(*A);
  Copy->Bool = ClassicalExpr::substitute(A->Bool, Var, Replacement);
  Copy->PhaseBit = ClassicalExpr::substitute(A->PhaseBit, Var, Replacement);
  for (AssertPtr &Kid : Copy->Kids)
    Kid = substituteClassical(Kid, Var, Replacement);
  return Copy;
}

AssertPtr Assertion::conjugateInverse(const AssertPtr &A, GateKind Kind,
                                      size_t Q0, size_t Q1) {
  auto Copy = std::make_shared<Assertion>(*A);
  if (A->Kind == AssertKind::PauliAtom) {
    Copy->Base.conjugateInverse(Kind, Q0, Q1);
    if (Copy->Base.signBit()) {
      Copy->Base.negate();
      Copy->PhaseBit = Copy->PhaseBit
                           ? ClassicalExpr::logicalNot(Copy->PhaseBit)
                           : ClassicalExpr::boolean(true);
    }
  }
  for (AssertPtr &Kid : Copy->Kids)
    Kid = conjugateInverse(Kid, Kind, Q0, Q1);
  return Copy;
}

std::string Assertion::toString() const {
  switch (Kind) {
  case AssertKind::BoolAtom:
    return Bool->toString();
  case AssertKind::PauliAtom: {
    std::string S;
    if (PhaseBit)
      S += "(-1)^(" + PhaseBit->toString() + ")";
    return S + Base.toString();
  }
  case AssertKind::Not:
    return "!(" + Kids[0]->toString() + ")";
  case AssertKind::And:
    return "(" + Kids[0]->toString() + " /\\ " + Kids[1]->toString() + ")";
  case AssertKind::Or:
    return "(" + Kids[0]->toString() + " \\/ " + Kids[1]->toString() + ")";
  case AssertKind::Implies:
    return "(" + Kids[0]->toString() + " => " + Kids[1]->toString() + ")";
  }
  unreachable("unknown AssertKind");
}

bool veriqec::satisfies(const std::vector<DenseBranch> &Branches,
                        const AssertPtr &A, size_t NumQubits) {
  for (const DenseBranch &B : Branches) {
    if (B.State.isZero())
      continue;
    DenseSubspace S = A->evaluate(B.Mem, NumQubits);
    if (!S.contains(B.State, 1e-7))
      return false;
  }
  return true;
}
