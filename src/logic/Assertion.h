//===- logic/Assertion.h - The assertion language of Section 3 --*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hybrid classical-quantum assertion language of Definition 3.2:
///   A ::= b | P | !A | A && A | A || A | A => A
/// with Boolean atoms over the classical memory and Pauli atoms
/// interpreted as +1-eigenspaces, connectives interpreted in Birkhoff-
/// von Neumann quantum logic (meet / join / orthocomplement / Sasaki
/// implication). The dense evaluator realizes J A K_m : CMem -> S(H) and
/// the satisfaction relation of Definition 3.4, the ground truth used by
/// the soundness harness.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_LOGIC_ASSERTION_H
#define VERIQEC_LOGIC_ASSERTION_H

#include "pauli/Pauli.h"
#include "prog/ClassicalExpr.h"
#include "sem/DenseSubspace.h"
#include "sem/Interpreter.h"

#include <memory>
#include <string>
#include <vector>

namespace veriqec {

enum class AssertKind : uint8_t {
  BoolAtom,
  PauliAtom, ///< (-1)^PhaseBit * Base, interpreted as its +1 eigenspace
  Not,
  And,
  Or,
  Implies, ///< Sasaki implication
};

class Assertion;
using AssertPtr = std::shared_ptr<const Assertion>;

/// Immutable assertion tree.
class Assertion {
public:
  AssertKind Kind;
  CExprPtr Bool;     ///< BoolAtom
  Pauli Base;        ///< PauliAtom letters (+ sign)
  CExprPtr PhaseBit; ///< PauliAtom sign: (-1)^PhaseBit (null = +)
  std::vector<AssertPtr> Kids;

  static AssertPtr boolAtom(CExprPtr B);
  static AssertPtr pauliAtom(Pauli Base, CExprPtr PhaseBit = nullptr);
  static AssertPtr logicalNot(AssertPtr A);
  static AssertPtr conj(AssertPtr A, AssertPtr B);
  static AssertPtr conj(std::vector<AssertPtr> Kids);
  static AssertPtr disj(AssertPtr A, AssertPtr B);
  static AssertPtr implies(AssertPtr A, AssertPtr B);

  /// J A K_m as a subspace of the NumQubits-qubit space.
  DenseSubspace evaluate(const CMem &Mem, size_t NumQubits) const;

  /// Substitutes a classical expression for a variable in every Boolean
  /// atom and phase bit (rule (Assign)).
  static AssertPtr substituteClassical(const AssertPtr &A,
                                       const std::string &Var,
                                       const CExprPtr &Replacement);

  /// Conjugates every Pauli atom in place: Base <- U^dagger Base U
  /// (the unitary substitution rules of Fig. 3). Clifford gates only.
  static AssertPtr conjugateInverse(const AssertPtr &A, GateKind Kind,
                                    size_t Q0, size_t Q1 = ~size_t{0});

  std::string toString() const;
};

/// Satisfaction (Definition 3.4) of an ensemble of program branches:
/// groups branches by classical memory and checks that every branch
/// state lies in J A K_m.
bool satisfies(const std::vector<DenseBranch> &Branches, const AssertPtr &A,
               size_t NumQubits);

} // namespace veriqec

#endif // VERIQEC_LOGIC_ASSERTION_H
