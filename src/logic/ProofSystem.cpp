//===- logic/ProofSystem.cpp - Hilbert-style assertion proofs --------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "logic/ProofSystem.h"

#include "support/Assert.h"

using namespace veriqec;

namespace {

/// Structural equality of assertion trees (pointer-free).
bool sameAssertion(const AssertPtr &A, const AssertPtr &B) {
  if (A == B)
    return true;
  if (!A || !B || A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case AssertKind::BoolAtom:
    return A->Bool->toString() == B->Bool->toString();
  case AssertKind::PauliAtom: {
    if (!(A->Base == B->Base))
      return false;
    bool HasA = A->PhaseBit != nullptr, HasB = B->PhaseBit != nullptr;
    if (HasA != HasB)
      return false;
    return !HasA || A->PhaseBit->toString() == B->PhaseBit->toString();
  }
  default:
    if (A->Kids.size() != B->Kids.size())
      return false;
    for (size_t I = 0; I != A->Kids.size(); ++I)
      if (!sameAssertion(A->Kids[I], B->Kids[I]))
        return false;
    return true;
  }
}

} // namespace

bool Derivation::structurallyValid(const ProofStep &Step) {
  auto premise = [&](size_t I) -> const Sequent & {
    return Steps[Step.Premises[I]].Result;
  };
  auto needPremises = [&](size_t Count) {
    if (Step.Premises.size() != Count) {
      LastError = "wrong premise count";
      return false;
    }
    for (size_t P : Step.Premises)
      if (P >= Steps.size()) {
        LastError = "premise index out of range";
        return false;
      }
    return true;
  };

  const Sequent &R = Step.Result;
  switch (Step.Rule) {
  case ProofRule::DoubleNegation:
    // !!A |- A.
    if (!needPremises(0))
      return false;
    if (R.Gamma->Kind != AssertKind::Not ||
        R.Gamma->Kids[0]->Kind != AssertKind::Not ||
        !sameAssertion(R.Gamma->Kids[0]->Kids[0], R.Conclusion)) {
      LastError = "double-negation shape mismatch";
      return false;
    }
    return true;
  case ProofRule::Identity:
    if (!needPremises(0))
      return false;
    if (!sameAssertion(R.Gamma, R.Conclusion)) {
      LastError = "identity requires Gamma == A";
      return false;
    }
    return true;
  case ProofRule::TrueIntro:
    if (!needPremises(0))
      return false;
    if (R.Conclusion->Kind != AssertKind::BoolAtom ||
        !R.Conclusion->Bool->evaluateBool(CMem{})) {
      LastError = "conclusion must be the true atom";
      return false;
    }
    return true;
  case ProofRule::FalseElim:
    if (!needPremises(0))
      return false;
    if (R.Gamma->Kind != AssertKind::BoolAtom ||
        R.Gamma->Bool->evaluateBool(CMem{})) {
      LastError = "context must be the false atom";
      return false;
    }
    return true;
  case ProofRule::AndIntro: {
    if (!needPremises(2))
      return false;
    const Sequent &P0 = premise(0), &P1 = premise(1);
    if (!sameAssertion(P0.Gamma, R.Gamma) ||
        !sameAssertion(P1.Gamma, R.Gamma) ||
        R.Conclusion->Kind != AssertKind::And ||
        !sameAssertion(R.Conclusion->Kids[0], P0.Conclusion) ||
        !sameAssertion(R.Conclusion->Kids[1], P1.Conclusion)) {
      LastError = "and-intro shape mismatch";
      return false;
    }
    return true;
  }
  case ProofRule::AndElim: {
    if (!needPremises(1))
      return false;
    const Sequent &P = premise(0);
    if (P.Conclusion->Kind != AssertKind::And ||
        !sameAssertion(P.Gamma, R.Gamma) ||
        !sameAssertion(P.Conclusion->Kids[Step.Which ? 1 : 0],
                       R.Conclusion)) {
      LastError = "and-elim shape mismatch";
      return false;
    }
    return true;
  }
  case ProofRule::Weaken: {
    // From A |- B derive (G && A) |- B.
    if (!needPremises(1))
      return false;
    const Sequent &P = premise(0);
    if (R.Gamma->Kind != AssertKind::And ||
        !sameAssertion(R.Gamma->Kids[1], P.Gamma) ||
        !sameAssertion(R.Conclusion, P.Conclusion)) {
      LastError = "weaken shape mismatch";
      return false;
    }
    return true;
  }
  case ProofRule::OrElim: {
    if (!needPremises(2))
      return false;
    const Sequent &P0 = premise(0), &P1 = premise(1);
    if (R.Gamma->Kind != AssertKind::Or ||
        !sameAssertion(R.Gamma->Kids[0], P0.Gamma) ||
        !sameAssertion(R.Gamma->Kids[1], P1.Gamma) ||
        !sameAssertion(P0.Conclusion, R.Conclusion) ||
        !sameAssertion(P1.Conclusion, R.Conclusion)) {
      LastError = "or-elim shape mismatch";
      return false;
    }
    return true;
  }
  case ProofRule::OrIntro: {
    if (!needPremises(1))
      return false;
    const Sequent &P = premise(0);
    if (R.Conclusion->Kind != AssertKind::Or ||
        !sameAssertion(P.Gamma, R.Gamma) ||
        !sameAssertion(R.Conclusion->Kids[Step.Which ? 1 : 0],
                       P.Conclusion)) {
      LastError = "or-intro shape mismatch";
      return false;
    }
    return true;
  }
  case ProofRule::ModusPonens: {
    // From A |- B => C and A |- B conclude A |- C.
    if (!needPremises(2))
      return false;
    const Sequent &Imp = premise(0), &Arg = premise(1);
    if (Imp.Conclusion->Kind != AssertKind::Implies ||
        !sameAssertion(Imp.Gamma, R.Gamma) ||
        !sameAssertion(Arg.Gamma, R.Gamma) ||
        !sameAssertion(Imp.Conclusion->Kids[0], Arg.Conclusion) ||
        !sameAssertion(Imp.Conclusion->Kids[1], R.Conclusion)) {
      LastError = "modus-ponens shape mismatch";
      return false;
    }
    return true;
  }
  case ProofRule::SasakiIntro: {
    // From (A && B) |- C, with A C B, conclude A |- B => C. The
    // commutativity side condition is discharged by checkSemantics.
    if (!needPremises(1))
      return false;
    const Sequent &P = premise(0);
    if (P.Gamma->Kind != AssertKind::And ||
        R.Conclusion->Kind != AssertKind::Implies ||
        !sameAssertion(P.Gamma->Kids[0], R.Gamma) ||
        !sameAssertion(P.Gamma->Kids[1], R.Conclusion->Kids[0]) ||
        !sameAssertion(P.Conclusion, R.Conclusion->Kids[1])) {
      LastError = "sasaki-intro shape mismatch";
      return false;
    }
    return true;
  }
  }
  unreachable("unknown ProofRule");
}

std::optional<size_t> Derivation::addStep(ProofStep Step) {
  if (!structurallyValid(Step))
    return std::nullopt;
  Steps.push_back(std::move(Step));
  return Steps.size() - 1;
}

std::optional<size_t>
Derivation::checkSemantics(const std::vector<CMem> &Mems) const {
  for (size_t I = 0; I != Steps.size(); ++I) {
    const ProofStep &S = Steps[I];
    if (!entailsSemantically(S.Result.Gamma, S.Result.Conclusion, Mems, N))
      return I;
    if (S.Rule == ProofRule::SasakiIntro) {
      const Sequent &P = Steps[S.Premises[0]].Result;
      if (!commuteSemantically(P.Gamma->Kids[0], P.Gamma->Kids[1], Mems, N))
        return I;
    }
  }
  return std::nullopt;
}

bool veriqec::entailsSemantically(const AssertPtr &A, const AssertPtr &B,
                                  const std::vector<CMem> &Mems,
                                  size_t NumQubits) {
  for (const CMem &M : Mems)
    if (!A->evaluate(M, NumQubits).isSubspaceOf(B->evaluate(M, NumQubits)))
      return false;
  return true;
}

bool veriqec::commuteSemantically(const AssertPtr &A, const AssertPtr &B,
                                  const std::vector<CMem> &Mems,
                                  size_t NumQubits) {
  for (const CMem &M : Mems) {
    DenseSubspace SA = A->evaluate(M, NumQubits);
    DenseSubspace SB = B->evaluate(M, NumQubits);
    // S commutes with T iff S = (S ^ T) v (S ^ T^perp).
    DenseSubspace Rebuilt =
        SA.meet(SB).join(SA.meet(SB.complement()));
    if (!Rebuilt.equals(SA))
      return false;
  }
  return true;
}
