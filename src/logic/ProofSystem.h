//===- logic/ProofSystem.h - Hilbert-style assertion proofs -----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Hilbert-style proof system for the assertion logic (Fig. 11 /
/// Appendix A.4): a checked derivation format for entailments
/// Gamma |- A between assertions. Each inference is validated
/// structurally when the derivation is built; the whole system is also
/// validated against the dense quantum-logic semantics in the tests
/// (rule-by-rule soundness on random instances). Rule 11 requires a
/// commutativity side condition (A C B), discharged semantically.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_LOGIC_PROOFSYSTEM_H
#define VERIQEC_LOGIC_PROOFSYSTEM_H

#include "logic/Assertion.h"

#include <optional>
#include <string>
#include <vector>

namespace veriqec {

/// The eleven rules of Fig. 11.
enum class ProofRule : uint8_t {
  DoubleNegation, // 1.  !!A |- A
  Identity,       // 2.  A |- A
  TrueIntro,      // 3.  A |- true
  FalseElim,      // 4.  false |- A
  AndIntro,       // 5.  G|-A, G|-B  =>  G |- A && B
  AndElim,        // 6.  G |- A1 && A2  =>  G |- Ai
  Weaken,         // 7.  A |- B  =>  G && A |- B
  OrElim,         // 8.  G|-A, G'|-A  =>  G || G' |- A
  OrIntro,        // 9.  G |- Ai  =>  G |- A1 || A2
  ModusPonens,    // 10. A |- B => C, A |- B  =>  A |- C
  SasakiIntro,    // 11. A && B |- C, A C B  =>  A |- B => C
};

/// A sequent Gamma |- A (Gamma is a single assertion; conjunctions model
/// multi-premise contexts, matching the paper's presentation).
struct Sequent {
  AssertPtr Gamma;
  AssertPtr Conclusion;
};

/// One derivation step referencing earlier steps by index.
struct ProofStep {
  ProofRule Rule;
  std::vector<size_t> Premises; ///< indices of earlier steps
  Sequent Result;
  /// For AndElim / OrIntro: which disjunct/conjunct (0 or 1).
  int Which = 0;
};

/// A checked derivation. Steps are appended through rule constructors
/// that validate the inference shape; check() additionally validates
/// every step semantically on a list of classical memories.
class Derivation {
public:
  explicit Derivation(size_t NumQubits) : N(NumQubits) {}

  /// Appends a step; returns its index or nullopt (with LastError set)
  /// if the inference is malformed.
  std::optional<size_t> addStep(ProofStep Step);

  size_t size() const { return Steps.size(); }
  const ProofStep &step(size_t I) const { return Steps[I]; }
  const std::string &lastError() const { return LastError; }

  /// Semantic validation: for every step and memory, J Gamma K_m is
  /// contained in J Conclusion K_m. \returns the first failing step.
  std::optional<size_t> checkSemantics(const std::vector<CMem> &Mems) const;

private:
  bool structurallyValid(const ProofStep &Step);

  size_t N;
  std::vector<ProofStep> Steps;
  std::string LastError;
};

/// Helper: semantic entailment J A K_m <= J B K_m for every memory.
bool entailsSemantically(const AssertPtr &A, const AssertPtr &B,
                         const std::vector<CMem> &Mems, size_t NumQubits);

/// Helper: do A and B commute (as subspaces) on every memory? This is
/// the side condition of rule 11.
bool commuteSemantically(const AssertPtr &A, const AssertPtr &B,
                         const std::vector<CMem> &Mems, size_t NumQubits);

} // namespace veriqec

#endif // VERIQEC_LOGIC_PROOFSYSTEM_H
