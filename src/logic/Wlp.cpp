//===- logic/Wlp.cpp - Backward proof-system rules of Fig. 3 ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "logic/Wlp.h"

#include "support/Assert.h"

using namespace veriqec;

namespace {

WlpResult fail(std::string Msg) { return {nullptr, std::move(Msg)}; }

/// The substitution A[-Y_i/Y_i, -Z_i/Z_i] used by (Init) and the derived
/// [b] q*=X rule equals conjugation of every Pauli atom by X_i (and
/// likewise for the other Pauli gates).
AssertPtr conjugateByPauli(const AssertPtr &A, GateKind PauliGate, size_t Q) {
  return Assertion::conjugateInverse(A, PauliGate, Q);
}

} // namespace

WlpResult veriqec::wlp(const StmtPtr &S, const AssertPtr &Post,
                       size_t NumQubits) {
  switch (S->Kind) {
  case StmtKind::Skip:
    return {Post, ""};

  case StmtKind::Seq: {
    AssertPtr Acc = Post;
    for (size_t I = S->Body.size(); I-- > 0;) {
      WlpResult R = wlp(S->Body[I], Acc, NumQubits);
      if (!R.ok())
        return R;
      Acc = R.Pre;
    }
    return {Acc, ""};
  }

  case StmtKind::Unitary: {
    if (!isCliffordGate(S->Gate))
      return fail("wlp for T gates requires the Pauli-expression extension");
    CMem Empty;
    size_t Q0 = static_cast<size_t>(S->Qubit0->evaluate(Empty));
    size_t Q1 = S->Qubit1 ? static_cast<size_t>(S->Qubit1->evaluate(Empty))
                          : ~size_t{0};
    return {Assertion::conjugateInverse(Post, S->Gate, Q0, Q1), ""};
  }

  case StmtKind::GuardedGate: {
    CMem Empty;
    size_t Q = static_cast<size_t>(S->Qubit0->evaluate(Empty));
    if (!isCliffordGate(S->Gate))
      return fail("wlp for guarded T errors requires the extension");
    if (S->Gate == GateKind::X || S->Gate == GateKind::Y ||
        S->Gate == GateKind::Z) {
      // Derived rule: flip the phase bit of every atom anticommuting with
      // the error, conditioned on the guard. Implemented via the general
      // decomposition (!b /\ A) \/ (b /\ A[conjugated]); for Pauli gates
      // the conjugated form is exact and the derived rule follows.
      AssertPtr Conj = conjugateByPauli(Post, S->Gate, Q);
      AssertPtr NotB =
          Assertion::boolAtom(ClassicalExpr::logicalNot(S->Guard));
      AssertPtr B = Assertion::boolAtom(S->Guard);
      return {Assertion::disj(Assertion::conj(NotB, Post),
                              Assertion::conj(B, Conj)),
              ""};
    }
    // Guarded non-Pauli Clifford error: same (If)-style decomposition.
    AssertPtr Conj = Assertion::conjugateInverse(Post, S->Gate, Q);
    AssertPtr NotB = Assertion::boolAtom(ClassicalExpr::logicalNot(S->Guard));
    AssertPtr B = Assertion::boolAtom(S->Guard);
    return {Assertion::disj(Assertion::conj(NotB, Post),
                            Assertion::conj(B, Conj)),
            ""};
  }

  case StmtKind::Assign:
    return {Assertion::substituteClassical(Post, S->Targets[0], S->Value),
            ""};

  case StmtKind::Measure: {
    // (Meas): (P /\ A[0/x]) \/ (!P /\ A[1/x]).
    CMem Empty;
    Pauli P = S->Measured.resolve(NumQubits, Empty);
    CExprPtr PhaseBit = S->Measured.PhaseBit;
    AssertPtr PAtom = Assertion::pauliAtom(P, PhaseBit);
    AssertPtr A0 = Assertion::substituteClassical(
        Post, S->Targets[0], ClassicalExpr::constant(0));
    AssertPtr A1 = Assertion::substituteClassical(
        Post, S->Targets[0], ClassicalExpr::constant(1));
    return {Assertion::disj(Assertion::conj(PAtom, A0),
                            Assertion::conj(Assertion::logicalNot(PAtom), A1)),
            ""};
  }

  case StmtKind::Init: {
    // (Init): (Z_i /\ A) \/ (-Z_i /\ A[-Y_i/Y_i, -Z_i/Z_i]).
    CMem Empty;
    size_t Q = static_cast<size_t>(S->Qubit0->evaluate(Empty));
    Pauli Z = Pauli::single(NumQubits, Q, PauliKind::Z);
    Pauli MinusZ = Z;
    MinusZ.negate();
    AssertPtr Flipped = conjugateByPauli(Post, GateKind::X, Q);
    return {Assertion::disj(
                Assertion::conj(Assertion::pauliAtom(Z), Post),
                Assertion::conj(Assertion::pauliAtom(MinusZ), Flipped)),
            ""};
  }

  case StmtKind::If: {
    // (If): (!b /\ wlp(S0)) \/ (b /\ wlp(S1)).
    WlpResult Then = wlp(S->Body[0], Post, NumQubits);
    if (!Then.ok())
      return Then;
    WlpResult Else = wlp(S->Body[1], Post, NumQubits);
    if (!Else.ok())
      return Else;
    AssertPtr B = Assertion::boolAtom(S->Cond);
    AssertPtr NotB = Assertion::boolAtom(ClassicalExpr::logicalNot(S->Cond));
    return {Assertion::disj(Assertion::conj(NotB, Else.Pre),
                            Assertion::conj(B, Then.Pre)),
            ""};
  }

  case StmtKind::DecoderCall:
    return fail("wlp across decoder calls needs the contract machinery "
                "(use the symbolic flow)");
  case StmtKind::While:
    return fail("(While) requires a user-provided invariant");
  case StmtKind::For:
    return fail("flatten for-loops before computing wlp");
  }
  unreachable("unknown StmtKind");
}
