//===- logic/Wlp.h - Backward proof-system rules of Fig. 3 ------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The literal backward weakest-liberal-precondition transformer of the
/// paper's proof system (Fig. 3): (Skip), (Init), (Assign), (Meas), the
/// unitary substitution rules (U-X ... U-iSWAP), (Seq), (If) and the
/// derived rules for guarded Pauli errors. Every rule except (While) and
/// (Con) computes the exact wlp (Theorem A.11); soundness is
/// machine-checked against the dense semantics by tests/soundness_test.cpp
/// — the bounded-instance substitute for the paper's Coq development.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_LOGIC_WLP_H
#define VERIQEC_LOGIC_WLP_H

#include "logic/Assertion.h"
#include "prog/Ast.h"

#include <optional>
#include <string>

namespace veriqec {

/// Result of a wlp computation: the precondition or the reason a
/// construct is unsupported (T gates, while loops, decoder calls).
struct WlpResult {
  AssertPtr Pre;
  std::string Error;
  bool ok() const { return Pre != nullptr; }
};

/// Computes wlp.S.Post for a flattened program (Clifford fragment).
WlpResult wlp(const StmtPtr &S, const AssertPtr &Post, size_t NumQubits);

} // namespace veriqec

#endif // VERIQEC_LOGIC_WLP_H
