//===- obs/Metrics.cpp - Named counters, gauges and histograms -------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/Assert.h"
#include "support/Json.h"

using namespace veriqec;
using namespace veriqec::obs;

#ifndef VERIQEC_DISABLE_OBS
std::atomic<bool> obs::detail::MetricsOn{false};
#endif

void obs::setMetricsEnabled(bool On) {
#ifdef VERIQEC_DISABLE_OBS
  (void)On;
#else
  detail::MetricsOn.store(On, std::memory_order_relaxed);
#endif
}

Registry &Registry::global() {
  static Registry R;
  return R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entry &E = Entries[Name];
  if (!E.C) {
    if (E.G || E.H)
      fatalError("metric '" + Name + "' already registered as another kind");
    E.K = Kind::Counter;
    E.C = std::make_unique<Counter>();
  }
  return *E.C;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entry &E = Entries[Name];
  if (!E.G) {
    if (E.C || E.H)
      fatalError("metric '" + Name + "' already registered as another kind");
    E.K = Kind::Gauge;
    E.G = std::make_unique<Gauge>();
  }
  return *E.G;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entry &E = Entries[Name];
  if (!E.H) {
    if (E.C || E.G)
      fatalError("metric '" + Name + "' already registered as another kind");
    E.K = Kind::Histogram;
    E.H = std::make_unique<Histogram>();
  }
  return *E.H;
}

std::string Registry::snapshotJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, E] : Entries) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += jsonEscape(Name);
    Out += "\":";
    switch (E.K) {
    case Kind::Counter:
      Out += std::to_string(E.C->value());
      break;
    case Kind::Gauge:
      Out += std::to_string(E.G->value());
      break;
    case Kind::Histogram: {
      const Histogram &H = *E.H;
      uint64_t N = H.count();
      Out += "{\"count\":" + std::to_string(N);
      Out += ",\"sum\":" + std::to_string(H.sum());
      Out += ",\"mean\":" +
             jsonNumber(N ? static_cast<double>(H.sum()) /
                                static_cast<double>(N)
                          : 0.0);
      Out += ",\"max\":" + std::to_string(H.max());
      Out += ",\"buckets\":{";
      bool FirstB = true;
      for (size_t B = 0; B != Histogram::NumBuckets; ++B) {
        uint64_t C = H.bucket(B);
        if (!C)
          continue;
        if (!FirstB)
          Out += ',';
        FirstB = false;
        // Bucket label = exclusive upper bound of the sample range
        // ([2^B, 2^(B+1)); the last bucket has no finite bound).
        Out += B + 1 == Histogram::NumBuckets
                   ? std::string("\"rest\"")
                   : "\"lt_" + std::to_string(uint64_t{1} << (B + 1)) + "\"";
        Out += ":" + std::to_string(C);
      }
      Out += "}}";
      break;
    }
    }
  }
  Out += '}';
  return Out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, E] : Entries) {
    if (E.C)
      E.C->set(0);
    if (E.G)
      E.G->set(0);
    if (E.H)
      E.H->clear();
  }
}
