//===- obs/Metrics.h - Named counters, gauges and histograms ----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One registry for every quantitative signal the stack emits: named
/// counters (monotone totals), gauges (last-written values) and
/// power-of-two-bucket histograms (per-cube conflict and wall-time
/// distributions). The end-of-run SolverStats/CoordinatorStats totals
/// that used to be hand-threaded into each output path are published
/// here once and snapshotted as JSON into `--bench-out` and
/// `--metrics-out`.
///
/// Cost model mirrors obs/Trace.h: hot-path observation sites
/// (Histogram::observe, Counter::add) are gated on one relaxed atomic
/// load and are lock-free atomics past the gate; -DVERIQEC_DISABLE_OBS
/// folds the gate to constant false. Registry lookups take a mutex —
/// resolve a metric once (function-local static reference) instead of
/// looking it up per observation.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_OBS_METRICS_H
#define VERIQEC_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace veriqec::obs {

#ifdef VERIQEC_DISABLE_OBS
inline constexpr bool metricsEnabled() { return false; }
#else
namespace detail {
extern std::atomic<bool> MetricsOn;
} // namespace detail

/// True while metrics collection is on — the one relaxed load every
/// hot-path observation site pays when it is off.
inline bool metricsEnabled() {
  return detail::MetricsOn.load(std::memory_order_relaxed);
}
#endif

/// Turns hot-path collection on/off. End-of-run publishing (set/inc on
/// a snapshot boundary) works regardless of the gate.
void setMetricsEnabled(bool On);

/// Monotone counter.
class Counter {
public:
  /// Hot-path increment: gated, relaxed.
  void add(uint64_t N = 1) {
    if (metricsEnabled())
      V.fetch_add(N, std::memory_order_relaxed);
  }
  /// Ungated absolute store for end-of-run publishing of totals that
  /// were counted elsewhere (SolverStats, CoordinatorStats).
  void set(uint64_t N) { V.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written value.
class Gauge {
public:
  void set(uint64_t N) { V.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Power-of-two-bucket histogram over uint64 samples: bucket B counts
/// samples in [2^B, 2^(B+1)), with bucket 0 also absorbing zeros.
/// Tracks count, sum and max exactly; the buckets give the shape.
class Histogram {
public:
  static constexpr size_t NumBuckets = 64;

  /// Hot-path observation: gated, lock-free.
  void observe(uint64_t Sample) {
    if (!metricsEnabled())
      return;
    Buckets[bucketOf(Sample)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Sample, std::memory_order_relaxed);
    uint64_t Seen = Max.load(std::memory_order_relaxed);
    while (Sample > Seen &&
           !Max.compare_exchange_weak(Seen, Sample,
                                      std::memory_order_relaxed))
      ;
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t B) const {
    return Buckets[B].load(std::memory_order_relaxed);
  }

  /// Zeroes every cell. Call only while observers are quiescent.
  void clear() {
    for (std::atomic<uint64_t> &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

  static size_t bucketOf(uint64_t Sample) {
    size_t B = 0;
    while (Sample > 1) {
      Sample >>= 1;
      ++B;
    }
    return B;
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// The process-wide metric namespace. Instruments are created on first
/// lookup and live forever (references stay valid); names are unique
/// across kinds — looking up an existing name as a different kind is a
/// programming error and fatals.
class Registry {
public:
  static Registry &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// One JSON object, names sorted: counters/gauges as numbers,
  /// histograms as {"count","sum","mean","max","buckets":{"2^B": n}}.
  std::string snapshotJson() const;

  /// Zeroes every instrument's values. Instruments themselves (and any
  /// cached references to them) persist — hot sites cache a reference in
  /// a function-local static, so dropping entries would dangle them.
  void reset();

private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind K;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };
  mutable std::mutex Mutex;
  std::map<std::string, Entry> Entries;
};

} // namespace veriqec::obs

#endif // VERIQEC_OBS_METRICS_H
