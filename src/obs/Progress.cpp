//===- obs/Progress.cpp - Opt-in live progress line ------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "obs/Progress.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

using namespace veriqec;

namespace {

std::atomic<bool> ProgressOn{false};

struct ProgressState {
  std::mutex Mutex;
  std::chrono::steady_clock::time_point LastRender;
  size_t LastLen = 0;
  bool Rendered = false;
};

ProgressState &state() {
  static ProgressState S;
  return S;
}

} // namespace

bool obs::progressEnabled() {
  return ProgressOn.load(std::memory_order_relaxed);
}

void obs::setProgressEnabled(bool On) {
  ProgressOn.store(On, std::memory_order_relaxed);
}

void obs::progressLine(const std::string &Text, bool Force) {
  if (!progressEnabled())
    return;
  ProgressState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto Now = std::chrono::steady_clock::now();
  if (!Force && S.Rendered &&
      Now - S.LastRender < std::chrono::milliseconds(200))
    return;
  S.LastRender = Now;
  std::fputc('\r', stderr);
  std::fputs(Text.c_str(), stderr);
  // Blank out any tail of a longer previous line.
  for (size_t I = Text.size(); I < S.LastLen; ++I)
    std::fputc(' ', stderr);
  std::fflush(stderr);
  S.LastLen = Text.size();
  S.Rendered = true;
}

void obs::progressDone() {
  ProgressState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (!S.Rendered)
    return;
  std::fputc('\n', stderr);
  std::fflush(stderr);
  S.Rendered = false;
  S.LastLen = 0;
}
