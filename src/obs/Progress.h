//===- obs/Progress.h - Opt-in live progress line ---------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One carriage-return-overwritten status line on stderr, throttled so
/// render sites (the coordinator event loop, the in-process cube
/// monitor) can call it every poll tick. Opt-in via `--progress`; the
/// verdict output on stdout is untouched, so piped/scripted runs are
/// unaffected even with the line on.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_OBS_PROGRESS_H
#define VERIQEC_OBS_PROGRESS_H

#include <string>

namespace veriqec::obs {

/// Whether `--progress` rendering is on (process-wide, set by the CLI).
bool progressEnabled();
void setProgressEnabled(bool On);

/// Renders \p Text as the live line (prefixed "\r", space-padded to
/// cover the previous render). Throttled to ~5 renders/second unless
/// \p Force; no-op while progress is disabled.
void progressLine(const std::string &Text, bool Force = false);

/// Terminates the live line with a newline if one was rendered (call
/// before printing regular output).
void progressDone();

} // namespace veriqec::obs

#endif // VERIQEC_OBS_PROGRESS_H
