//===- obs/Trace.cpp - Chrome trace-event recording ------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "support/Json.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

using namespace veriqec;
using namespace veriqec::obs;

namespace {

struct Event {
  const char *Name;
  uint64_t StartUs;
  uint64_t DurUs;
  bool Instant;
  uint8_t NumArgs;
  TraceArg Args[MaxTraceArgs];
};

/// Per-thread event buffer. Only its owner thread appends; the flusher
/// reads under the registry mutex while the owners are quiescent (the
/// documented contract of endTrace()/renderTraceJson()).
struct ThreadBuffer {
  uint32_t Tid = 0;
  std::vector<Event> Events;
};

/// Memory bound: a runaway per-cube trace stops recording instead of
/// eating the heap; the drop count surfaces in the rendered JSON.
constexpr size_t MaxEventsPerThread = 1u << 20;

struct TraceRegistry {
  std::mutex Mutex;
  /// Buffers are never removed: a thread_local pointer into this list
  /// must stay valid for the thread's whole lifetime (pool threads
  /// persist across runs).
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  std::atomic<uint64_t> Dropped{0};
};

TraceRegistry &registry() {
  static TraceRegistry R;
  return R;
}

ThreadBuffer &threadBuffer() {
  thread_local ThreadBuffer *TB = nullptr;
  if (!TB) {
    TraceRegistry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Buffers.push_back(std::make_unique<ThreadBuffer>());
    R.Buffers.back()->Tid = static_cast<uint32_t>(R.Buffers.size());
    TB = R.Buffers.back().get();
  }
  return *TB;
}

void appendEventJson(std::string &Out, const Event &E, uint32_t Tid) {
  Out += "{\"name\":\"";
  Out += jsonEscape(E.Name);
  Out += E.Instant ? "\",\"ph\":\"i\",\"s\":\"t\"" : "\",\"ph\":\"X\"";
  Out += ",\"ts\":";
  Out += std::to_string(E.StartUs);
  if (!E.Instant) {
    Out += ",\"dur\":";
    Out += std::to_string(E.DurUs);
  }
  Out += ",\"pid\":1,\"tid\":";
  Out += std::to_string(Tid);
  if (E.NumArgs) {
    Out += ",\"args\":{";
    for (uint8_t I = 0; I != E.NumArgs; ++I) {
      if (I)
        Out += ',';
      Out += '"';
      Out += jsonEscape(E.Args[I].Key);
      Out += "\":";
      Out += std::to_string(E.Args[I].Value);
    }
    Out += '}';
  }
  Out += '}';
}

} // namespace

#ifndef VERIQEC_DISABLE_OBS
std::atomic<bool> obs::detail::TraceOn{false};
#endif

uint64_t obs::detail::nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - registry().Epoch)
          .count());
}

void obs::detail::record(const char *Name, uint64_t StartUs, uint64_t DurUs,
                         bool Instant, const TraceArg *Args, size_t NumArgs) {
  ThreadBuffer &TB = threadBuffer();
  if (TB.Events.size() >= MaxEventsPerThread) {
    registry().Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event E;
  E.Name = Name;
  E.StartUs = StartUs;
  E.DurUs = DurUs;
  E.Instant = Instant;
  E.NumArgs = static_cast<uint8_t>(std::min(NumArgs, MaxTraceArgs));
  for (uint8_t I = 0; I != E.NumArgs; ++I)
    E.Args[I] = Args[I];
  TB.Events.push_back(E);
}

void obs::beginTrace() {
  TraceRegistry &R = registry();
  {
    std::lock_guard<std::mutex> Lock(R.Mutex);
    for (std::unique_ptr<ThreadBuffer> &TB : R.Buffers)
      TB->Events.clear();
    R.Epoch = std::chrono::steady_clock::now();
    R.Dropped.store(0, std::memory_order_relaxed);
  }
#ifndef VERIQEC_DISABLE_OBS
  detail::TraceOn.store(true, std::memory_order_relaxed);
#endif
}

void obs::stopTrace() {
#ifndef VERIQEC_DISABLE_OBS
  detail::TraceOn.store(false, std::memory_order_relaxed);
#endif
}

std::string obs::renderTraceJson() {
  TraceRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const std::unique_ptr<ThreadBuffer> &TB : R.Buffers)
    for (const Event &E : TB->Events) {
      if (!First)
        Out += ',';
      First = false;
      appendEventJson(Out, E, TB->Tid);
    }
  uint64_t Dropped = R.Dropped.load(std::memory_order_relaxed);
  if (Dropped) {
    Event E{};
    E.Name = "trace_events_dropped";
    E.Instant = true;
    E.NumArgs = 1;
    E.Args[0] = {"count", Dropped};
    if (!First)
      Out += ',';
    appendEventJson(Out, E, 0);
  }
  Out += "]}";
  return Out;
}

bool obs::endTrace(const std::string &Path, std::string &Err) {
  stopTrace();
  std::string Json = renderTraceJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Err = "cannot open " + Path;
    return false;
  }
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok)
    Err = "short write to " + Path;
  return Ok;
}
