//===- obs/Trace.h - Chrome trace-event recording ---------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured tracing for the whole verification stack: RAII spans and
/// instant events appended to per-thread buffers (no lock, no allocation
/// beyond the buffer's amortized growth) and flushed at run end to Chrome
/// trace-event JSON — load the file in Perfetto or chrome://tracing to
/// see where a run's time goes, per thread, per phase, per cube.
///
/// Cost model: every instrumentation site starts with one relaxed atomic
/// load (traceEnabled()); with tracing off that load is the entire cost.
/// Building with -DVERIQEC_DISABLE_OBS turns the gate into a constant
/// false, so the compiler removes the sites outright.
///
/// Timestamps come from std::chrono::steady_clock (monotonic), relative
/// to the beginTrace() epoch, in microseconds.
///
/// Threading contract: event append is owner-thread-only and lock-free;
/// beginTrace()/endTrace()/renderTraceJson() must run while the
/// instrumented threads are quiescent (between solves — exactly where
/// the drivers call them).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_OBS_TRACE_H
#define VERIQEC_OBS_TRACE_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace veriqec::obs {

/// One key/value argument attached to a span or instant event. Keys must
/// be string literals (stored by pointer); values are integral — slot
/// indices, cube ids, conflict counts, byte sizes.
struct TraceArg {
  const char *Key = nullptr;
  uint64_t Value = 0;
};

/// Spans/instants carry at most this many arguments; extras are dropped.
inline constexpr size_t MaxTraceArgs = 4;

#ifdef VERIQEC_DISABLE_OBS
/// Compile-time kill switch engaged: the gate is a constant, and every
/// instrumentation site behind it folds to nothing.
inline constexpr bool traceEnabled() { return false; }
#else
namespace detail {
extern std::atomic<bool> TraceOn;
} // namespace detail

/// True while a trace is being collected — the one relaxed load every
/// instrumentation site pays when tracing is off.
inline bool traceEnabled() {
  return detail::TraceOn.load(std::memory_order_relaxed);
}
#endif

/// Starts collecting (discarding any previously collected events) and
/// re-anchors the timestamp epoch.
void beginTrace();

/// Stops collecting. Already-collected events stay renderable.
void stopTrace();

/// Renders everything collected since beginTrace() as a Chrome
/// trace-event JSON document (the {"traceEvents": [...]} object form).
std::string renderTraceJson();

/// stopTrace() + renderTraceJson() to a file. False (and \p Err) when
/// the file cannot be written.
bool endTrace(const std::string &Path, std::string &Err);

namespace detail {
uint64_t nowUs();
void record(const char *Name, uint64_t StartUs, uint64_t DurUs, bool Instant,
            const TraceArg *Args, size_t NumArgs);
} // namespace detail

/// RAII span: one "ph":"X" complete event from construction to
/// destruction on the calling thread's track. \p Name must be a string
/// literal. When tracing is off, construction is one relaxed load.
class TraceSpan {
public:
  explicit TraceSpan(const char *SpanName) {
    if (traceEnabled()) {
      Name = SpanName;
      StartUs = detail::nowUs();
    }
  }
  TraceSpan(const char *SpanName, std::initializer_list<TraceArg> As)
      : TraceSpan(SpanName) {
    if (Name)
      for (const TraceArg &A : As)
        arg(A.Key, A.Value);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() {
    if (Name)
      detail::record(Name, StartUs, detail::nowUs() - StartUs,
                     /*Instant=*/false, Args, NumArgs);
  }

  /// Attaches an argument known only mid-span (e.g. the conflict count
  /// of the solve the span wraps). No-op when the span is inactive.
  void arg(const char *Key, uint64_t Value) {
    if (Name && NumArgs < MaxTraceArgs)
      Args[NumArgs++] = {Key, Value};
  }

private:
  const char *Name = nullptr; ///< null = inactive (tracing was off)
  uint64_t StartUs = 0;
  TraceArg Args[MaxTraceArgs];
  size_t NumArgs = 0;
};

/// One "ph":"i" instant event (heartbeats, steals, evictions, requeues).
inline void traceInstant(const char *Name,
                         std::initializer_list<TraceArg> As = {}) {
  if (!traceEnabled())
    return;
  size_t N = std::min(As.size(), MaxTraceArgs);
  detail::record(Name, detail::nowUs(), 0, /*Instant=*/true, As.begin(), N);
}

} // namespace veriqec::obs

#endif // VERIQEC_OBS_TRACE_H
