//===- pauli/Gates.h - The paper's gate set ---------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unitary gate set of the paper's programming language (Section 4.1):
/// single-qubit {X, Y, Z, H, S, T} and two-qubit {CNOT, CZ, iSWAP},
/// extended with the inverses needed internally (Sdg, Tdg, iSWAPdg).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_PAULI_GATES_H
#define VERIQEC_PAULI_GATES_H

#include <cstdint>

namespace veriqec {

/// Gate identifiers for the Clifford+T set of the paper.
enum class GateKind : uint8_t {
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  CNOT,
  CZ,
  ISWAP,
  ISWAPdg,
};

/// True for two-qubit gates.
inline bool isTwoQubitGate(GateKind K) {
  return K == GateKind::CNOT || K == GateKind::CZ || K == GateKind::ISWAP ||
         K == GateKind::ISWAPdg;
}

/// True for gates in the Clifford group (everything except T/Tdg).
inline bool isCliffordGate(GateKind K) {
  return K != GateKind::T && K != GateKind::Tdg;
}

/// The inverse gate.
inline GateKind inverseGate(GateKind K) {
  switch (K) {
  case GateKind::S:
    return GateKind::Sdg;
  case GateKind::Sdg:
    return GateKind::S;
  case GateKind::T:
    return GateKind::Tdg;
  case GateKind::Tdg:
    return GateKind::T;
  case GateKind::ISWAP:
    return GateKind::ISWAPdg;
  case GateKind::ISWAPdg:
    return GateKind::ISWAP;
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
  case GateKind::H:
  case GateKind::CNOT:
  case GateKind::CZ:
    return K; // self-inverse
  }
  return K;
}

/// Printable mnemonic.
inline const char *gateName(GateKind K) {
  switch (K) {
  case GateKind::X:
    return "X";
  case GateKind::Y:
    return "Y";
  case GateKind::Z:
    return "Z";
  case GateKind::H:
    return "H";
  case GateKind::S:
    return "S";
  case GateKind::Sdg:
    return "Sdg";
  case GateKind::T:
    return "T";
  case GateKind::Tdg:
    return "Tdg";
  case GateKind::CNOT:
    return "CNOT";
  case GateKind::CZ:
    return "CZ";
  case GateKind::ISWAP:
    return "iSWAP";
  case GateKind::ISWAPdg:
    return "iSWAPdg";
  }
  return "?";
}

} // namespace veriqec

#endif // VERIQEC_PAULI_GATES_H
