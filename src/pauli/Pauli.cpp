//===- pauli/Pauli.cpp - n-qubit Pauli operators --------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "pauli/Pauli.h"

#include "support/Assert.h"

using namespace veriqec;

Pauli Pauli::single(size_t NumQubits, size_t Qubit, PauliKind Kind) {
  assert(Qubit < NumQubits && "qubit index out of range");
  Pauli P(NumQubits);
  P.setKind(Qubit, Kind);
  if (Kind == PauliKind::Y)
    P.PhaseExp = 1; // Y = i X Z
  return P;
}

void Pauli::setKind(size_t Qubit, PauliKind Kind) {
  X.set(Qubit, Kind == PauliKind::X || Kind == PauliKind::Y);
  Z.set(Qubit, Kind == PauliKind::Z || Kind == PauliKind::Y);
}

std::optional<Pauli> Pauli::fromString(const std::string &Str) {
  size_t Pos = 0;
  uint8_t Phase = 0;
  // Optional sign prefix: +, -, i, -i, +i.
  if (Pos < Str.size() && (Str[Pos] == '+' || Str[Pos] == '-')) {
    if (Str[Pos] == '-')
      Phase = 2;
    ++Pos;
  }
  if (Pos < Str.size() && Str[Pos] == 'i') {
    Phase = (Phase + 1) & 3;
    ++Pos;
  }
  std::string Letters = Str.substr(Pos);
  Pauli P(Letters.size());
  size_t NumY = 0;
  for (size_t I = 0; I != Letters.size(); ++I) {
    switch (Letters[I]) {
    case 'I':
      break;
    case 'X':
      P.setKind(I, PauliKind::X);
      break;
    case 'Y':
      P.setKind(I, PauliKind::Y);
      ++NumY;
      break;
    case 'Z':
      P.setKind(I, PauliKind::Z);
      break;
    default:
      return std::nullopt;
    }
  }
  // The string denotes the literal letter product (each Y carries its own
  // i), so the stored phase is the prefix plus one i per Y.
  P.PhaseExp = static_cast<uint8_t>((Phase + NumY) & 3);
  return P;
}

Pauli Pauli::operator*(const Pauli &Other) const {
  assert(numQubits() == Other.numQubits() && "qubit count mismatch");
  Pauli R(numQubits());
  // Moving Other's X letters left past this operator's Z letters
  // contributes (-1) per crossing: i^{2 * |Z1 & X2|}.
  unsigned Cross = Z.dotParity(Other.X) ? 2u : 0u;
  R.X = X ^ Other.X;
  R.Z = Z ^ Other.Z;
  R.PhaseExp = static_cast<uint8_t>((PhaseExp + Other.PhaseExp + Cross) & 3);
  return R;
}

namespace {

/// Image of one single-qubit generator (X_q or Z_q) under conjugation by a
/// gate: letters on the (at most two) involved qubits plus a sign.
struct LocalImage {
  PauliKind OnQ0;
  PauliKind OnQ1;
  bool Negate;
};

/// Forward conjugation images F(P) = U P U^dagger for generators on the
/// gate's qubits. Order of entries: X_{q0}, Z_{q0}, X_{q1}, Z_{q1}.
/// Pauli gates (X/Y/Z) are handled separately (sign flips only).
void forwardImages(GateKind K, LocalImage Images[4]) {
  using PK = PauliKind;
  auto set = [&](int Idx, PK A, PK B, bool Neg) {
    Images[Idx] = {A, B, Neg};
  };
  switch (K) {
  case GateKind::H:
    set(0, PK::Z, PK::I, false); // X -> Z
    set(1, PK::X, PK::I, false); // Z -> X
    break;
  case GateKind::S:
    set(0, PK::Y, PK::I, false); // X -> Y
    set(1, PK::Z, PK::I, false); // Z -> Z
    break;
  case GateKind::Sdg:
    set(0, PK::Y, PK::I, true); // X -> -Y
    set(1, PK::Z, PK::I, false);
    break;
  case GateKind::CNOT:
    set(0, PK::X, PK::X, false); // Xc -> Xc Xt
    set(1, PK::Z, PK::I, false); // Zc -> Zc
    set(2, PK::I, PK::X, false); // Xt -> Xt
    set(3, PK::Z, PK::Z, false); // Zt -> Zc Zt
    break;
  case GateKind::CZ:
    set(0, PK::X, PK::Z, false); // Xa -> Xa Zb
    set(1, PK::Z, PK::I, false);
    set(2, PK::Z, PK::X, false); // Xb -> Za Xb
    set(3, PK::I, PK::Z, false);
    break;
  case GateKind::ISWAP:
    // Derived from the paper's (U-iSWAP) substitution rule by inversion;
    // validated against dense matrices in tests/pauli_test.cpp.
    set(0, PK::Z, PK::Y, true);  // Xa -> -Za Yb
    set(1, PK::I, PK::Z, false); // Za -> Zb
    set(2, PK::Y, PK::Z, true);  // Xb -> -Ya Zb
    set(3, PK::Z, PK::I, false); // Zb -> Za
    break;
  case GateKind::ISWAPdg:
    // The paper's backward substitution for iSWAP, used forward for the
    // inverse gate.
    set(0, PK::Z, PK::Y, false); // Xa -> Za Yb
    set(1, PK::I, PK::Z, false); // Za -> Zb
    set(2, PK::Y, PK::Z, false); // Xb -> Ya Zb
    set(3, PK::Z, PK::I, false); // Zb -> Za
    break;
  default:
    unreachable("forwardImages: not a non-Pauli Clifford gate");
  }
}

} // namespace

void Pauli::conjugate(GateKind Kind, size_t Q0, size_t Q1) {
  assert(isCliffordGate(Kind) && "T-gate conjugation is not Pauli-closed");
  assert(Q0 < numQubits() && "qubit out of range");
  assert((!isTwoQubitGate(Kind) || (Q1 < numQubits() && Q1 != Q0)) &&
         "two-qubit gate needs two distinct qubits");

  // Pauli gates only flip signs of anticommuting letters.
  if (Kind == GateKind::X || Kind == GateKind::Y || Kind == GateKind::Z) {
    bool Xb = X.get(Q0), Zb = Z.get(Q0);
    bool Anti = false;
    if (Kind == GateKind::X)
      Anti = Zb;
    else if (Kind == GateKind::Z)
      Anti = Xb;
    else
      Anti = Xb ^ Zb;
    if (Anti)
      negate();
    return;
  }

  LocalImage Images[4];
  forwardImages(Kind, Images);
  bool TwoQubit = isTwoQubitGate(Kind);

  // Factor out the local part: P = i^ph * Rest * Xq0^xa Zq0^za Xq1^xb Zq1^zb.
  bool Xa = X.get(Q0), Za = Z.get(Q0);
  bool Xb = TwoQubit && X.get(Q1), Zb = TwoQubit && Z.get(Q1);
  X.set(Q0, false);
  Z.set(Q0, false);
  if (TwoQubit) {
    X.set(Q1, false);
    Z.set(Q1, false);
  }

  auto multiplyImage = [&](const LocalImage &Img) {
    Pauli Im(numQubits());
    if (Img.OnQ0 != PauliKind::I)
      Im *= Pauli::single(numQubits(), Q0, Img.OnQ0);
    if (TwoQubit && Img.OnQ1 != PauliKind::I)
      Im *= Pauli::single(numQubits(), Q1, Img.OnQ1);
    if (Img.Negate)
      Im.negate();
    *this *= Im;
  };

  if (Xa)
    multiplyImage(Images[0]);
  if (Za)
    multiplyImage(Images[1]);
  if (Xb)
    multiplyImage(Images[2]);
  if (Zb)
    multiplyImage(Images[3]);
}

void Pauli::conjugateInverse(GateKind Kind, size_t Q0, size_t Q1) {
  conjugate(inverseGate(Kind), Q0, Q1);
}

std::string Pauli::toString() const {
  unsigned Rel = (PhaseExp + 4u - (yCount() & 3u)) & 3u;
  std::string S;
  switch (Rel) {
  case 0:
    break;
  case 1:
    S = "i";
    break;
  case 2:
    S = "-";
    break;
  case 3:
    S = "-i";
    break;
  }
  for (size_t Q = 0, E = numQubits(); Q != E; ++Q) {
    switch (kindAt(Q)) {
    case PauliKind::I:
      S.push_back('I');
      break;
    case PauliKind::X:
      S.push_back('X');
      break;
    case PauliKind::Y:
      S.push_back('Y');
      break;
    case PauliKind::Z:
      S.push_back('Z');
      break;
    }
  }
  return S;
}
