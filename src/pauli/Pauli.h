//===- pauli/Pauli.h - n-qubit Pauli operators ------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// n-qubit Pauli strings in the symplectic (X/Z bit-row) representation
/// with an i^k global phase, plus exact Clifford conjugation. This is the
/// algebraic core shared by the assertion logic, the tableau simulator and
/// the QEC code library.
///
/// Convention: a Pauli is  i^Phase * prod_q X_q^{x_q} Z_q^{z_q}.
/// A single-qubit Y is stored as x=z=1, Phase=1 (Y = i X Z).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_PAULI_PAULI_H
#define VERIQEC_PAULI_PAULI_H

#include "pauli/Gates.h"
#include "support/BitVector.h"

#include <cstdint>
#include <optional>
#include <string>

namespace veriqec {

/// The four single-qubit Pauli letters.
enum class PauliKind : uint8_t { I, X, Y, Z };

/// An n-qubit Pauli operator with exact i^k phase tracking.
class Pauli {
public:
  Pauli() = default;

  /// The identity on \p NumQubits qubits.
  explicit Pauli(size_t NumQubits)
      : X(NumQubits), Z(NumQubits), PhaseExp(0) {}

  /// A single Pauli letter \p Kind on qubit \p Qubit of an
  /// \p NumQubits-qubit system.
  static Pauli single(size_t NumQubits, size_t Qubit, PauliKind Kind);

  /// Parses strings like "XIYZ" or "-XZZX" or "+iXY" (index 0 leftmost).
  /// \returns nullopt on malformed input.
  static std::optional<Pauli> fromString(const std::string &Str);

  size_t numQubits() const { return X.size(); }

  /// The Pauli letter on \p Qubit, ignoring the global phase.
  PauliKind kindAt(size_t Qubit) const {
    bool Xb = X.get(Qubit), Zb = Z.get(Qubit);
    if (Xb && Zb)
      return PauliKind::Y;
    if (Xb)
      return PauliKind::X;
    if (Zb)
      return PauliKind::Z;
    return PauliKind::I;
  }

  /// Sets the letter on \p Qubit (adjusting only the x/z bits; the global
  /// phase convention Y = iXZ is maintained through hermitian accessors).
  void setKind(size_t Qubit, PauliKind Kind);

  const BitVector &xBits() const { return X; }
  const BitVector &zBits() const { return Z; }
  uint8_t phaseExp() const { return PhaseExp; }

  /// Number of qubits acted on non-trivially (the Hamming weight).
  size_t weight() const { return (X | Z).count(); }

  /// True if the operator is the identity up to phase.
  bool isIdentityUpToPhase() const { return X.none() && Z.none(); }

  /// True if the operator is exactly +I.
  bool isIdentity() const { return isIdentityUpToPhase() && PhaseExp == 0; }

  /// True if this operator is Hermitian (phase is +/-1 after accounting
  /// for the i per Y letter).
  bool isHermitian() const { return ((PhaseExp - yCount()) & 1) == 0; }

  /// For a Hermitian Pauli: 0 if the sign is +, 1 if it is -.
  bool signBit() const {
    assert(isHermitian() && "sign of a non-Hermitian Pauli");
    return ((PhaseExp - yCount()) & 3) == 2;
  }

  /// Flips the overall sign.
  void negate() { PhaseExp = (PhaseExp + 2) & 3; }

  /// The same letters with a + sign (Hermitian representative).
  Pauli abs() const {
    Pauli P = *this;
    P.PhaseExp = static_cast<uint8_t>(P.yCount() & 3);
    return P;
  }

  /// True if the two operators commute (phases are irrelevant).
  bool commutesWith(const Pauli &Other) const {
    return !(X.dotParity(Other.Z) ^ Z.dotParity(Other.X));
  }

  /// Operator product with exact phase tracking.
  Pauli operator*(const Pauli &Other) const;
  Pauli &operator*=(const Pauli &Other) {
    *this = *this * Other;
    return *this;
  }

  /// Letters-only equality (ignores the phase).
  bool sameLetters(const Pauli &Other) const {
    return X == Other.X && Z == Other.Z;
  }

  bool operator==(const Pauli &Other) const {
    return sameLetters(Other) && PhaseExp == Other.PhaseExp;
  }
  bool operator!=(const Pauli &Other) const { return !(*this == Other); }

  /// Conjugates in place by the Clifford gate \p Kind on \p Q0 (and \p Q1
  /// for two-qubit gates): this <- U * this * U^dagger. \p Kind must be a
  /// Clifford gate (not T); the assertion layer handles T separately.
  void conjugate(GateKind Kind, size_t Q0, size_t Q1 = ~size_t{0});

  /// Conjugates by the inverse gate: this <- U^dagger * this * U. This is
  /// the substitution direction used by the backward wlp rules of Fig. 3.
  void conjugateInverse(GateKind Kind, size_t Q0, size_t Q1 = ~size_t{0});

  /// Renders e.g. "-XIYZ" ("+i"/"-i" prefixes appear for non-Hermitian
  /// phases).
  std::string toString() const;

  /// Stable hash over letters and phase.
  size_t hash() const {
    return X.hash() * 31 + Z.hash() * 7 + PhaseExp;
  }

private:
  size_t yCount() const { return X.andCount(Z); }

  BitVector X;
  BitVector Z;
  uint8_t PhaseExp = 0; // exponent of i, mod 4
};

} // namespace veriqec

#endif // VERIQEC_PAULI_PAULI_H
