//===- pauli/Tableau.cpp - Stabilizer tableau simulator -------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "pauli/Tableau.h"

#include "support/Assert.h"

using namespace veriqec;

Tableau::Tableau(size_t NumQubits) : N(NumQubits) {
  Stabs.reserve(N);
  Destabs.reserve(N);
  for (size_t Q = 0; Q != N; ++Q) {
    Stabs.push_back(Pauli::single(N, Q, PauliKind::Z));
    Destabs.push_back(Pauli::single(N, Q, PauliKind::X));
  }
}

void Tableau::applyGate(GateKind Kind, size_t Q0, size_t Q1) {
  assert(isCliffordGate(Kind) && "tableau cannot apply T");
  for (Pauli &P : Stabs)
    P.conjugate(Kind, Q0, Q1);
  for (Pauli &P : Destabs)
    P.conjugate(Kind, Q0, Q1);
}

void Tableau::applyPauli(const Pauli &P) {
  assert(P.numQubits() == N && "qubit count mismatch");
  for (Pauli &S : Stabs)
    if (!S.commutesWith(P))
      S.negate();
  for (Pauli &D : Destabs)
    if (!D.commutesWith(P))
      D.negate();
}

std::optional<bool> Tableau::deterministicOutcome(const Pauli &P) const {
  assert(P.numQubits() == N && "qubit count mismatch");
  assert(P.isHermitian() && "measured Pauli must be Hermitian");
  for (const Pauli &S : Stabs)
    if (!S.commutesWith(P))
      return std::nullopt;
  // P commutes with the whole group: P = +/- product of the stabilizers
  // whose destabilizer partners anticommute with P.
  Pauli Acc(N);
  for (size_t I = 0; I != N; ++I)
    if (!Destabs[I].commutesWith(P))
      Acc *= Stabs[I];
  assert(Acc.sameLetters(P.abs()) || Acc.sameLetters(P) ||
         (Acc.xBits() == P.xBits() && Acc.zBits() == P.zBits()));
  assert(Acc.isHermitian());
  return Acc.signBit() != P.signBit();
}

bool Tableau::measure(const Pauli &P, Rng &R, std::optional<bool> Forced) {
  assert(P.numQubits() == N && "qubit count mismatch");
  assert(P.isHermitian() && "measured Pauli must be Hermitian");

  // Deterministic case.
  if (std::optional<bool> Det = deterministicOutcome(P)) {
    assert((!Forced || *Forced == *Det) &&
           "postselected branch has probability zero");
    return *Det;
  }

  // Random case: some stabilizer anticommutes with P.
  size_t Anchor = N;
  for (size_t I = 0; I != N; ++I)
    if (!Stabs[I].commutesWith(P)) {
      Anchor = I;
      break;
    }
  assert(Anchor != N && "non-deterministic measurement needs an anchor");

  Pauli OldStab = Stabs[Anchor];
  // Every other anticommuting row absorbs the anchor stabilizer so it
  // commutes with P afterwards.
  for (size_t I = 0; I != N; ++I) {
    if (I != Anchor && !Stabs[I].commutesWith(P))
      Stabs[I] *= OldStab;
    if (!Destabs[I].commutesWith(P))
      Destabs[I] *= OldStab;
  }
  bool Outcome = Forced ? *Forced : R.nextBool();
  Destabs[Anchor] = OldStab;
  Stabs[Anchor] = P;
  if (Outcome)
    Stabs[Anchor].negate();
  return Outcome;
}

void Tableau::reset(size_t Q, Rng &R) {
  bool Outcome = measure(Pauli::single(N, Q, PauliKind::Z), R);
  if (Outcome)
    applyPauli(Pauli::single(N, Q, PauliKind::X));
}
