//===- pauli/Tableau.h - Stabilizer tableau simulator -----------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Aaronson-Gottesman style stabilizer tableau with destabilizers,
/// supporting Clifford gates, Pauli errors, arbitrary Pauli measurements
/// and qubit reset. This is the simulation substrate playing the role Stim
/// plays in the paper's Section 7.2 comparison, and the engine behind the
/// stabilizer interpreter of the program semantics.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_PAULI_TABLEAU_H
#define VERIQEC_PAULI_TABLEAU_H

#include "pauli/Pauli.h"
#include "support/Rng.h"

#include <optional>
#include <vector>

namespace veriqec {

/// Stabilizer state of n qubits, initialized to |0...0>.
class Tableau {
public:
  explicit Tableau(size_t NumQubits);

  size_t numQubits() const { return N; }

  /// Applies a Clifford gate (T is rejected by assertion).
  void applyGate(GateKind Kind, size_t Q0, size_t Q1 = ~size_t{0});

  /// Applies a Pauli operator as an error/correction (only signs change).
  void applyPauli(const Pauli &P);

  /// Measures the Hermitian Pauli \p P. Outcome 0 means the +1 eigenvalue
  /// (the paper's convention for x := meas[P]). Random outcomes are drawn
  /// from \p R; pass \p Forced to postselect a branch (assertion-fails if
  /// that branch has probability 0).
  bool measure(const Pauli &P, Rng &R,
               std::optional<bool> Forced = std::nullopt);

  /// If the measurement of \p P would be deterministic, returns its
  /// outcome; otherwise nullopt.
  std::optional<bool> deterministicOutcome(const Pauli &P) const;

  /// Resets qubit \p Q to |0> (measure Z and flip on outcome 1).
  void reset(size_t Q, Rng &R);

  /// True if the state is stabilized by \p P (i.e. measuring P yields 0
  /// with certainty).
  bool isStabilizedBy(const Pauli &P) const {
    std::optional<bool> Det = deterministicOutcome(P);
    return Det.has_value() && !*Det;
  }

  const Pauli &stabilizer(size_t I) const { return Stabs[I]; }
  const Pauli &destabilizer(size_t I) const { return Destabs[I]; }

private:
  size_t N;
  std::vector<Pauli> Stabs;
  std::vector<Pauli> Destabs;
};

} // namespace veriqec

#endif // VERIQEC_PAULI_TABLEAU_H
