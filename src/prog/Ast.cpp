//===- prog/Ast.cpp - QEC program abstract syntax --------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "prog/Ast.h"

#include "support/Assert.h"

using namespace veriqec;

Pauli ProgPauli::resolve(size_t NumQubits, const CMem &Mem) const {
  Pauli P(NumQubits);
  for (const Factor &F : Factors) {
    int64_t Q = F.QubitIndex->evaluate(Mem);
    assert(Q >= 0 && static_cast<size_t>(Q) < NumQubits &&
           "qubit index out of range");
    // Repeated letters on one qubit multiply; resolve() only supports the
    // common disjoint-factor form used by programs.
    assert(P.kindAt(static_cast<size_t>(Q)) == PauliKind::I &&
           "duplicate qubit in measured Pauli");
    P.setKind(static_cast<size_t>(Q), F.Kind);
  }
  return P.abs();
}

std::string ProgPauli::toString() const {
  std::string S;
  if (PhaseBit)
    S += "(-1)^(" + PhaseBit->toString() + ") ";
  for (const Factor &F : Factors) {
    switch (F.Kind) {
    case PauliKind::X:
      S += "X";
      break;
    case PauliKind::Y:
      S += "Y";
      break;
    case PauliKind::Z:
      S += "Z";
      break;
    case PauliKind::I:
      S += "I";
      break;
    }
    S += "[" + F.QubitIndex->toString() + "]";
  }
  return S;
}

namespace {
std::shared_ptr<Stmt> makeStmt(StmtKind K) {
  auto S = std::make_shared<Stmt>();
  S->Kind = K;
  return S;
}
} // namespace

StmtPtr Stmt::skip() { return makeStmt(StmtKind::Skip); }

StmtPtr Stmt::init(CExprPtr Qubit) {
  auto S = makeStmt(StmtKind::Init);
  S->Qubit0 = std::move(Qubit);
  return S;
}

StmtPtr Stmt::unitary1(GateKind G, CExprPtr Qubit) {
  assert(!isTwoQubitGate(G) && "unitary1 needs a single-qubit gate");
  auto S = makeStmt(StmtKind::Unitary);
  S->Gate = G;
  S->Qubit0 = std::move(Qubit);
  return S;
}

StmtPtr Stmt::unitary2(GateKind G, CExprPtr Q0, CExprPtr Q1) {
  assert(isTwoQubitGate(G) && "unitary2 needs a two-qubit gate");
  auto S = makeStmt(StmtKind::Unitary);
  S->Gate = G;
  S->Qubit0 = std::move(Q0);
  S->Qubit1 = std::move(Q1);
  return S;
}

StmtPtr Stmt::guardedGate(CExprPtr Guard, GateKind G, CExprPtr Qubit) {
  assert(!isTwoQubitGate(G) && "guarded gates are single-qubit");
  auto S = makeStmt(StmtKind::GuardedGate);
  S->Guard = std::move(Guard);
  S->Gate = G;
  S->Qubit0 = std::move(Qubit);
  return S;
}

StmtPtr Stmt::assign(std::string Var, CExprPtr Value) {
  auto S = makeStmt(StmtKind::Assign);
  S->Targets = {std::move(Var)};
  S->Value = std::move(Value);
  return S;
}

StmtPtr Stmt::measure(std::string Var, ProgPauli P) {
  auto S = makeStmt(StmtKind::Measure);
  S->Targets = {std::move(Var)};
  S->Measured = std::move(P);
  return S;
}

StmtPtr Stmt::decoderCall(std::vector<std::string> Outs, std::string Func,
                          std::vector<CExprPtr> Ins) {
  auto S = makeStmt(StmtKind::DecoderCall);
  S->Targets = std::move(Outs);
  S->DecoderName = std::move(Func);
  S->Arguments = std::move(Ins);
  return S;
}

StmtPtr Stmt::seq(std::vector<StmtPtr> Stmts) {
  if (Stmts.size() == 1)
    return Stmts.front();
  auto S = makeStmt(StmtKind::Seq);
  // Flatten nested sequences for canonical form.
  for (StmtPtr &Child : Stmts) {
    if (Child->Kind == StmtKind::Seq)
      S->Body.insert(S->Body.end(), Child->Body.begin(), Child->Body.end());
    else if (Child->Kind != StmtKind::Skip)
      S->Body.push_back(std::move(Child));
  }
  if (S->Body.empty())
    return skip();
  if (S->Body.size() == 1)
    return S->Body.front();
  return S;
}

StmtPtr Stmt::ifElse(CExprPtr Cond, StmtPtr Then, StmtPtr Else) {
  auto S = makeStmt(StmtKind::If);
  S->Cond = std::move(Cond);
  S->Body = {std::move(Then), std::move(Else)};
  return S;
}

StmtPtr Stmt::whileLoop(CExprPtr Cond, StmtPtr BodyStmt) {
  auto S = makeStmt(StmtKind::While);
  S->Cond = std::move(Cond);
  S->Body = {std::move(BodyStmt)};
  return S;
}

StmtPtr Stmt::forLoop(std::string Var, CExprPtr Lo, CExprPtr Hi,
                      StmtPtr BodyStmt) {
  auto S = makeStmt(StmtKind::For);
  S->LoopVar = std::move(Var);
  S->LoopLo = std::move(Lo);
  S->LoopHi = std::move(Hi);
  S->Body = {std::move(BodyStmt)};
  return S;
}

StmtPtr Stmt::substituteVar(const StmtPtr &S, const std::string &Name,
                            const CExprPtr &Replacement) {
  auto Sub = [&](const CExprPtr &E) {
    return ClassicalExpr::substitute(E, Name, Replacement);
  };
  auto Copy = std::make_shared<Stmt>(*S);
  Copy->Qubit0 = Sub(S->Qubit0);
  Copy->Qubit1 = Sub(S->Qubit1);
  Copy->Guard = Sub(S->Guard);
  Copy->Value = Sub(S->Value);
  Copy->Cond = Sub(S->Cond);
  Copy->LoopLo = Sub(S->LoopLo);
  Copy->LoopHi = Sub(S->LoopHi);
  for (auto &F : Copy->Measured.Factors)
    F.QubitIndex = Sub(F.QubitIndex);
  Copy->Measured.PhaseBit = Sub(S->Measured.PhaseBit);
  for (auto &A : Copy->Arguments)
    A = Sub(A);
  // Loop variables shadow: do not substitute inside a For that rebinds.
  if (S->Kind == StmtKind::For && S->LoopVar == Name)
    return Copy;
  for (auto &Child : Copy->Body)
    Child = substituteVar(Child, Name, Replacement);
  return Copy;
}

StmtPtr Stmt::flatten(const StmtPtr &S) {
  switch (S->Kind) {
  case StmtKind::For: {
    CMem Empty;
    // Loop bounds must be closed after outer unrolling.
    int64_t Lo = S->LoopLo->evaluate(Empty);
    int64_t Hi = S->LoopHi->evaluate(Empty);
    std::vector<StmtPtr> Unrolled;
    for (int64_t I = Lo; I <= Hi; ++I) {
      StmtPtr Iter = substituteVar(S->Body[0], S->LoopVar,
                                   ClassicalExpr::constant(I));
      Unrolled.push_back(flatten(Iter));
    }
    return seq(std::move(Unrolled));
  }
  case StmtKind::Seq: {
    std::vector<StmtPtr> Out;
    for (const StmtPtr &Child : S->Body)
      Out.push_back(flatten(Child));
    return seq(std::move(Out));
  }
  case StmtKind::If:
    return ifElse(S->Cond, flatten(S->Body[0]), flatten(S->Body[1]));
  case StmtKind::While:
    return whileLoop(S->Cond, flatten(S->Body[0]));
  default:
    return S;
  }
}

std::string Stmt::toString(size_t Indent) const {
  std::string Pad(Indent, ' ');
  switch (Kind) {
  case StmtKind::Skip:
    return Pad + "skip";
  case StmtKind::Init:
    return Pad + "q[" + Qubit0->toString() + "] := |0>";
  case StmtKind::Unitary:
    if (Qubit1)
      return Pad + "q[" + Qubit0->toString() + "], q[" + Qubit1->toString() +
             "] *= " + gateName(Gate);
    return Pad + "q[" + Qubit0->toString() + "] *= " + gateName(Gate);
  case StmtKind::GuardedGate:
    return Pad + "[" + Guard->toString() + "] q[" + Qubit0->toString() +
           "] *= " + gateName(Gate);
  case StmtKind::Assign:
    return Pad + Targets[0] + " := " + Value->toString();
  case StmtKind::Measure:
    return Pad + Targets[0] + " := meas[" + Measured.toString() + "]";
  case StmtKind::DecoderCall: {
    std::string Out = Pad;
    for (size_t I = 0; I != Targets.size(); ++I)
      Out += (I ? ", " : "") + Targets[I];
    Out += " := " + DecoderName + "(";
    for (size_t I = 0; I != Arguments.size(); ++I)
      Out += (I ? ", " : "") + Arguments[I]->toString();
    return Out + ")";
  }
  case StmtKind::Seq: {
    std::string Out;
    for (size_t I = 0; I != Body.size(); ++I)
      Out += (I ? " #\n" : "") + Body[I]->toString(Indent);
    return Out;
  }
  case StmtKind::If:
    return Pad + "if " + Cond->toString() + " then\n" +
           Body[0]->toString(Indent + 2) + "\n" + Pad + "else\n" +
           Body[1]->toString(Indent + 2) + "\n" + Pad + "end";
  case StmtKind::While:
    return Pad + "while " + Cond->toString() + " do\n" +
           Body[0]->toString(Indent + 2) + "\n" + Pad + "end";
  case StmtKind::For:
    return Pad + "for " + LoopVar + " in " + LoopLo->toString() + ".." +
           LoopHi->toString() + " do\n" + Body[0]->toString(Indent + 2) +
           "\n" + Pad + "end";
  }
  unreachable("unknown StmtKind");
}
