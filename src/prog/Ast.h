//===- prog/Ast.h - QEC program abstract syntax -----------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program syntax of Section 4.1:
///   S ::= skip | q[i] := |0> | q[i] *= U1 | q[i],q[j] *= U2
///       | x := e | x := meas[P] | S # S
///       | if b then S else S end | while b do S end
/// plus the paper's sugar: `for i in a..b do S end` (Table 1) and the
/// guarded error `[b] q[i] *= U` (Section 4.2), and a decoder-call form
/// `x1,...,xn := f(e1,...,em)` used by the correction step. Qubit indices
/// may be expressions; `flatten` resolves loops and indices to constants.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_PROG_AST_H
#define VERIQEC_PROG_AST_H

#include "pauli/Gates.h"
#include "pauli/Pauli.h"
#include "prog/ClassicalExpr.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace veriqec {

/// A Pauli expression appearing in a program: a Pauli-letter product over
/// expression-indexed qubits with an optional (-1)^phase prefix
/// (syntactic form of meas[(-1)^b Z_i] etc.).
struct ProgPauli {
  struct Factor {
    PauliKind Kind;
    CExprPtr QubitIndex;
  };
  std::vector<Factor> Factors;
  CExprPtr PhaseBit; ///< null = + sign; else (-1)^PhaseBit

  /// Resolves to a concrete Pauli of \p NumQubits qubits under \p Mem
  /// (indices must evaluate to valid 0-based qubits). The phase bit is
  /// returned separately.
  Pauli resolve(size_t NumQubits, const CMem &Mem) const;
  bool phaseBitValue(const CMem &Mem) const {
    return PhaseBit && PhaseBit->evaluateBool(Mem);
  }
  std::string toString() const;
};

/// Statement kinds.
enum class StmtKind : uint8_t {
  Skip,
  Init,        ///< q[i] := |0>
  Unitary,     ///< q[i] *= U1  or  q[i],q[j] *= U2
  GuardedGate, ///< [b] q[i] *= U (error-injection sugar)
  Assign,      ///< x := e
  Measure,     ///< x := meas[P]
  DecoderCall, ///< x1,..,xn := f(e1,..,em)
  Seq,         ///< S1 # S2 # ...
  If,          ///< if b then S1 else S0 end
  While,       ///< while b do S end
  For,         ///< for i in a..b do S end (sugar)
};

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/// Immutable program statement tree.
struct Stmt {
  StmtKind Kind;

  // Init / Unitary / GuardedGate.
  GateKind Gate = GateKind::X;
  CExprPtr Qubit0, Qubit1;
  CExprPtr Guard; ///< GuardedGate only

  // Assign / Measure / DecoderCall.
  std::vector<std::string> Targets; ///< assigned variables
  CExprPtr Value;                   ///< Assign rhs
  ProgPauli Measured;               ///< Measure operand
  std::string DecoderName;          ///< DecoderCall callee
  std::vector<CExprPtr> Arguments;  ///< DecoderCall inputs

  // Structured statements.
  std::vector<StmtPtr> Body; ///< Seq children; If: {Then, Else}; While/For: {Body}
  CExprPtr Cond;             ///< If/While guard
  std::string LoopVar;       ///< For variable
  CExprPtr LoopLo, LoopHi;   ///< For bounds (inclusive)

  // -- Constructors ---------------------------------------------------------
  static StmtPtr skip();
  static StmtPtr init(CExprPtr Qubit);
  static StmtPtr unitary1(GateKind G, CExprPtr Qubit);
  static StmtPtr unitary2(GateKind G, CExprPtr Q0, CExprPtr Q1);
  static StmtPtr guardedGate(CExprPtr Guard, GateKind G, CExprPtr Qubit);
  static StmtPtr assign(std::string Var, CExprPtr Value);
  static StmtPtr measure(std::string Var, ProgPauli P);
  static StmtPtr decoderCall(std::vector<std::string> Outs, std::string Func,
                             std::vector<CExprPtr> Ins);
  static StmtPtr seq(std::vector<StmtPtr> Stmts);
  static StmtPtr ifElse(CExprPtr Cond, StmtPtr Then, StmtPtr Else);
  static StmtPtr whileLoop(CExprPtr Cond, StmtPtr Body);
  static StmtPtr forLoop(std::string Var, CExprPtr Lo, CExprPtr Hi,
                         StmtPtr Body);

  /// Expands `for` loops (bounds must be constant after outer-loop
  /// substitution) and resolves loop variables, producing a program whose
  /// only structured nodes are Seq/If/While. Qubit indices that mention
  /// loop variables become constants.
  static StmtPtr flatten(const StmtPtr &S);

  /// Substitutes \p Replacement for variable \p Name in all expressions
  /// (used by flatten for loop unrolling).
  static StmtPtr substituteVar(const StmtPtr &S, const std::string &Name,
                               const CExprPtr &Replacement);

  /// Pretty-prints in the paper's concrete syntax.
  std::string toString(size_t Indent = 0) const;
};

} // namespace veriqec

#endif // VERIQEC_PROG_AST_H
