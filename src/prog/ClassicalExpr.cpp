//===- prog/ClassicalExpr.cpp - Classical program expressions -------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "prog/ClassicalExpr.h"

#include "support/Assert.h"

#include <algorithm>

using namespace veriqec;

namespace veriqec {
/// Internal factory with access to the private constructor.
struct CExprFactory {
  static std::shared_ptr<ClassicalExpr> make(CExprKind K) {
    return std::shared_ptr<ClassicalExpr>(new ClassicalExpr(K));
  }
};
} // namespace veriqec

namespace {

CExprPtr makeBinary(CExprKind K, CExprPtr A, CExprPtr B) {
  auto N = CExprFactory::make(K);
  N->Lhs = std::move(A);
  N->Rhs = std::move(B);
  return N;
}

CExprPtr makeUnary(CExprKind K, CExprPtr A) {
  auto N = CExprFactory::make(K);
  N->Lhs = std::move(A);
  return N;
}

} // namespace

CExprPtr ClassicalExpr::constant(int64_t V) {
  auto N = CExprFactory::make(CExprKind::Const);
  N->Value = V;
  return N;
}

CExprPtr ClassicalExpr::var(std::string Name) {
  auto N = CExprFactory::make(CExprKind::Var);
  N->Name = std::move(Name);
  return N;
}

CExprPtr ClassicalExpr::neg(CExprPtr A) {
  return makeUnary(CExprKind::Neg, std::move(A));
}
CExprPtr ClassicalExpr::add(CExprPtr A, CExprPtr B) {
  return makeBinary(CExprKind::Add, std::move(A), std::move(B));
}
CExprPtr ClassicalExpr::mul(CExprPtr A, CExprPtr B) {
  return makeBinary(CExprKind::Mul, std::move(A), std::move(B));
}
CExprPtr ClassicalExpr::eq(CExprPtr A, CExprPtr B) {
  return makeBinary(CExprKind::Eq, std::move(A), std::move(B));
}
CExprPtr ClassicalExpr::le(CExprPtr A, CExprPtr B) {
  return makeBinary(CExprKind::Le, std::move(A), std::move(B));
}
CExprPtr ClassicalExpr::logicalNot(CExprPtr A) {
  return makeUnary(CExprKind::Not, std::move(A));
}
CExprPtr ClassicalExpr::logicalAnd(CExprPtr A, CExprPtr B) {
  return makeBinary(CExprKind::And, std::move(A), std::move(B));
}
CExprPtr ClassicalExpr::logicalOr(CExprPtr A, CExprPtr B) {
  return makeBinary(CExprKind::Or, std::move(A), std::move(B));
}
CExprPtr ClassicalExpr::implies(CExprPtr A, CExprPtr B) {
  return makeBinary(CExprKind::Imp, std::move(A), std::move(B));
}
CExprPtr ClassicalExpr::parityXor(CExprPtr A, CExprPtr B) {
  return makeBinary(CExprKind::Xor, std::move(A), std::move(B));
}

CExprPtr ClassicalExpr::sum(const std::vector<CExprPtr> &Terms) {
  if (Terms.empty())
    return constant(0);
  CExprPtr Acc = Terms.front();
  for (size_t I = 1; I != Terms.size(); ++I)
    Acc = add(Acc, Terms[I]);
  return Acc;
}

int64_t ClassicalExpr::evaluate(const CMem &Mem) const {
  switch (Kind) {
  case CExprKind::Const:
    return Value;
  case CExprKind::Var: {
    auto It = Mem.find(Name);
    return It == Mem.end() ? 0 : It->second;
  }
  case CExprKind::Neg:
    return -Lhs->evaluate(Mem);
  case CExprKind::Add:
    return Lhs->evaluate(Mem) + Rhs->evaluate(Mem);
  case CExprKind::Mul:
    return Lhs->evaluate(Mem) * Rhs->evaluate(Mem);
  case CExprKind::Eq:
    return Lhs->evaluate(Mem) == Rhs->evaluate(Mem);
  case CExprKind::Le:
    return Lhs->evaluate(Mem) <= Rhs->evaluate(Mem);
  case CExprKind::Not:
    return !Lhs->evaluateBool(Mem);
  case CExprKind::And:
    return Lhs->evaluateBool(Mem) && Rhs->evaluateBool(Mem);
  case CExprKind::Or:
    return Lhs->evaluateBool(Mem) || Rhs->evaluateBool(Mem);
  case CExprKind::Imp:
    return !Lhs->evaluateBool(Mem) || Rhs->evaluateBool(Mem);
  case CExprKind::Xor:
    return Lhs->evaluateBool(Mem) != Rhs->evaluateBool(Mem);
  }
  unreachable("unknown CExprKind");
}

CExprPtr ClassicalExpr::substitute(const CExprPtr &E, const std::string &Name,
                                   const CExprPtr &Replacement) {
  if (!E)
    return E;
  switch (E->Kind) {
  case CExprKind::Const:
    return E;
  case CExprKind::Var:
    return E->Name == Name ? Replacement : E;
  default: {
    CExprPtr NewL = substitute(E->Lhs, Name, Replacement);
    CExprPtr NewR = substitute(E->Rhs, Name, Replacement);
    if (NewL == E->Lhs && NewR == E->Rhs)
      return E;
    if (!NewR)
      return makeUnary(E->Kind, std::move(NewL));
    return makeBinary(E->Kind, std::move(NewL), std::move(NewR));
  }
  }
}

void ClassicalExpr::collectVars(std::vector<std::string> &Out) const {
  if (Kind == CExprKind::Var) {
    if (std::find(Out.begin(), Out.end(), Name) == Out.end())
      Out.push_back(Name);
    return;
  }
  if (Lhs)
    Lhs->collectVars(Out);
  if (Rhs)
    Rhs->collectVars(Out);
}

std::string ClassicalExpr::toString() const {
  switch (Kind) {
  case CExprKind::Const:
    return std::to_string(Value);
  case CExprKind::Var:
    return Name;
  case CExprKind::Neg:
    return "-" + Lhs->toString();
  case CExprKind::Add:
    return "(" + Lhs->toString() + " + " + Rhs->toString() + ")";
  case CExprKind::Mul:
    return "(" + Lhs->toString() + " * " + Rhs->toString() + ")";
  case CExprKind::Eq:
    return "(" + Lhs->toString() + " == " + Rhs->toString() + ")";
  case CExprKind::Le:
    return "(" + Lhs->toString() + " <= " + Rhs->toString() + ")";
  case CExprKind::Not:
    return "!" + Lhs->toString();
  case CExprKind::And:
    return "(" + Lhs->toString() + " && " + Rhs->toString() + ")";
  case CExprKind::Or:
    return "(" + Lhs->toString() + " || " + Rhs->toString() + ")";
  case CExprKind::Imp:
    return "(" + Lhs->toString() + " -> " + Rhs->toString() + ")";
  case CExprKind::Xor:
    return "(" + Lhs->toString() + " ^ " + Rhs->toString() + ")";
  }
  unreachable("unknown CExprKind");
}
