//===- prog/ClassicalExpr.h - Classical program expressions -----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical integer/Boolean expression language of Appendix A.1:
/// IExp: n | x | -a | a+a | a*a;  BExp: true | false | x | a==a | a<=a |
/// !b | b&&b | b||b | b->b, with bool<->int coercion (true=1, false=0).
/// Expressions are immutable shared trees; evaluation happens against a
/// classical memory (CMem), substitution supports the (Assign) wlp rule.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_PROG_CLASSICALEXPR_H
#define VERIQEC_PROG_CLASSICALEXPR_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace veriqec {

/// Classical memory: variable name -> integer value (bools are 0/1).
using CMem = std::map<std::string, int64_t>;

/// Expression node kinds (integer- and bool-valued share one tree type;
/// bools are canonically 0/1 integers, per the paper's coercion).
enum class CExprKind : uint8_t {
  Const, ///< integer literal
  Var,   ///< program variable
  Neg,   ///< -a
  Add,   ///< a + b
  Mul,   ///< a * b
  Eq,    ///< a == b  (bool)
  Le,    ///< a <= b  (bool)
  Not,   ///< !b
  And,   ///< b && c
  Or,    ///< b || c
  Imp,   ///< b -> c
  Xor,   ///< b ^ c (mod-2 sum; ubiquitous in syndrome arithmetic)
};

class ClassicalExpr;
using CExprPtr = std::shared_ptr<const ClassicalExpr>;

/// Immutable classical expression tree.
class ClassicalExpr {
public:
  CExprKind Kind;
  int64_t Value = 0;   ///< for Const
  std::string Name;    ///< for Var
  CExprPtr Lhs, Rhs;   ///< children (Rhs null for unary)

  static CExprPtr constant(int64_t V);
  static CExprPtr boolean(bool B) { return constant(B ? 1 : 0); }
  static CExprPtr var(std::string Name);
  static CExprPtr neg(CExprPtr A);
  static CExprPtr add(CExprPtr A, CExprPtr B);
  static CExprPtr mul(CExprPtr A, CExprPtr B);
  static CExprPtr eq(CExprPtr A, CExprPtr B);
  static CExprPtr le(CExprPtr A, CExprPtr B);
  static CExprPtr logicalNot(CExprPtr A);
  static CExprPtr logicalAnd(CExprPtr A, CExprPtr B);
  static CExprPtr logicalOr(CExprPtr A, CExprPtr B);
  static CExprPtr implies(CExprPtr A, CExprPtr B);
  static CExprPtr parityXor(CExprPtr A, CExprPtr B);

  /// Sum of a list of expressions (0 for empty).
  static CExprPtr sum(const std::vector<CExprPtr> &Terms);

  /// Evaluates under \p Mem; unbound variables evaluate to 0.
  int64_t evaluate(const CMem &Mem) const;

  /// Boolean view of evaluate(): nonzero = true.
  bool evaluateBool(const CMem &Mem) const { return evaluate(Mem) != 0; }

  /// Capture-free substitution of \p Replacement for variable \p Name
  /// (the engine of the (Assign) rule's A[e/x]).
  static CExprPtr substitute(const CExprPtr &E, const std::string &Name,
                             const CExprPtr &Replacement);

  /// Collects the free variables into \p Out.
  void collectVars(std::vector<std::string> &Out) const;

  std::string toString() const;

private:
  ClassicalExpr(CExprKind K) : Kind(K) {}
  friend struct CExprFactory;
};

} // namespace veriqec

#endif // VERIQEC_PROG_CLASSICALEXPR_H
