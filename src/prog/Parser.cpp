//===- prog/Parser.cpp - Concrete syntax parser -----------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "prog/Parser.h"

#include "support/Assert.h"

#include <cctype>

using namespace veriqec;

namespace {

enum class TokKind : uint8_t {
  End,
  Ident,
  Number,
  KwSkip,
  KwIf,
  KwThen,
  KwElse,
  KwEnd,
  KwWhile,
  KwDo,
  KwFor,
  KwIn,
  KwMeas,
  KwTrue,
  KwFalse,
  Ket0,      // |0>
  Assign,    // :=
  MulAssign, // *=
  LBracket,
  RBracket,
  LParen,
  RParen,
  Comma,
  Hash, // statement separator (also ';')
  DotDot,
  Plus,
  Minus,
  Star,
  Caret,
  Bang,
  AndAnd,
  OrOr,
  Arrow, // ->
  EqEq,
  Le,
  PhasePrefix, // (-1)^
};

struct Token {
  TokKind Kind;
  std::string Text;
  int64_t Number = 0;
  size_t Line = 1, Column = 1;
};

/// Hand-written lexer producing the full token stream up front.
class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) {}

  std::variant<std::vector<Token>, ParseError> run() {
    std::vector<Token> Out;
    while (true) {
      skipSpace();
      if (Pos >= Src.size()) {
        Out.push_back({TokKind::End, "", 0, Line, Col});
        return Out;
      }
      size_t TokLine = Line, TokCol = Col;
      char C = Src[Pos];
      auto push = [&](TokKind K, size_t Len) {
        Out.push_back({K, Src.substr(Pos, Len), 0, TokLine, TokCol});
        advance(Len);
      };
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        size_t Start = Pos;
        while (Pos < Src.size() &&
               (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
                Src[Pos] == '_'))
          advance(1);
        std::string Word = Src.substr(Start, Pos - Start);
        TokKind K = keywordOf(Word);
        Out.push_back({K, Word, 0, TokLine, TokCol});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(C))) {
        size_t Start = Pos;
        while (Pos < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[Pos])))
          advance(1);
        Token T{TokKind::Number, Src.substr(Start, Pos - Start), 0, TokLine,
                TokCol};
        T.Number = std::stoll(T.Text);
        Out.push_back(T);
        continue;
      }
      if (startsWith("(-1)^")) {
        push(TokKind::PhasePrefix, 5);
        continue;
      }
      if (startsWith("|0>")) {
        push(TokKind::Ket0, 3);
        continue;
      }
      if (startsWith(":=")) {
        push(TokKind::Assign, 2);
        continue;
      }
      if (startsWith("*=")) {
        push(TokKind::MulAssign, 2);
        continue;
      }
      if (startsWith("..")) {
        push(TokKind::DotDot, 2);
        continue;
      }
      if (startsWith("&&")) {
        push(TokKind::AndAnd, 2);
        continue;
      }
      if (startsWith("||")) {
        push(TokKind::OrOr, 2);
        continue;
      }
      if (startsWith("->")) {
        push(TokKind::Arrow, 2);
        continue;
      }
      if (startsWith("==")) {
        push(TokKind::EqEq, 2);
        continue;
      }
      if (startsWith("<=")) {
        push(TokKind::Le, 2);
        continue;
      }
      switch (C) {
      case '[':
        push(TokKind::LBracket, 1);
        continue;
      case ']':
        push(TokKind::RBracket, 1);
        continue;
      case '(':
        push(TokKind::LParen, 1);
        continue;
      case ')':
        push(TokKind::RParen, 1);
        continue;
      case ',':
        push(TokKind::Comma, 1);
        continue;
      case '#':
      case ';':
        push(TokKind::Hash, 1);
        continue;
      case '+':
        push(TokKind::Plus, 1);
        continue;
      case '-':
        push(TokKind::Minus, 1);
        continue;
      case '*':
        push(TokKind::Star, 1);
        continue;
      case '^':
        push(TokKind::Caret, 1);
        continue;
      case '!':
        push(TokKind::Bang, 1);
        continue;
      default:
        return ParseError{std::string("unexpected character '") + C + "'",
                          TokLine, TokCol};
      }
    }
  }

private:
  static TokKind keywordOf(const std::string &W) {
    if (W == "skip")
      return TokKind::KwSkip;
    if (W == "if")
      return TokKind::KwIf;
    if (W == "then")
      return TokKind::KwThen;
    if (W == "else")
      return TokKind::KwElse;
    if (W == "end")
      return TokKind::KwEnd;
    if (W == "while")
      return TokKind::KwWhile;
    if (W == "do")
      return TokKind::KwDo;
    if (W == "for")
      return TokKind::KwFor;
    if (W == "in")
      return TokKind::KwIn;
    if (W == "meas")
      return TokKind::KwMeas;
    if (W == "true")
      return TokKind::KwTrue;
    if (W == "false")
      return TokKind::KwFalse;
    return TokKind::Ident;
  }

  bool startsWith(const char *S) const {
    return Src.compare(Pos, std::string::traits_type::length(S), S) == 0;
  }

  void skipSpace() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          advance(1);
        continue;
      }
      if (C != ' ' && C != '\t' && C != '\r' && C != '\n')
        return;
      advance(1);
    }
  }

  void advance(size_t Len) {
    for (size_t I = 0; I != Len && Pos < Src.size(); ++I, ++Pos) {
      if (Src[Pos] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  size_t Line = 1, Col = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Toks(std::move(Tokens)) {}

  ParseResult parseProgramTop() {
    StmtPtr P = parseSequence();
    if (Failed)
      return Error;
    if (!at(TokKind::End)) {
      fail("trailing input after program");
      return Error;
    }
    return P;
  }

  std::variant<CExprPtr, ParseError> parseExprTop() {
    CExprPtr E = parseBoolExpr();
    if (Failed)
      return Error;
    if (!at(TokKind::End)) {
      fail("trailing input after expression");
      return Error;
    }
    return E;
  }

private:
  // -- Statements -----------------------------------------------------------

  StmtPtr parseSequence(bool StopAtKeyword = false) {
    std::vector<StmtPtr> Stmts;
    while (!Failed) {
      Stmts.push_back(parseStatement());
      if (Failed)
        break;
      if (at(TokKind::Hash)) {
        consume();
        // Allow a trailing separator before a closing keyword.
        if (at(TokKind::End) || at(TokKind::KwEnd) || at(TokKind::KwElse))
          break;
        continue;
      }
      break;
    }
    (void)StopAtKeyword;
    if (Failed)
      return Stmt::skip();
    return Stmt::seq(std::move(Stmts));
  }

  StmtPtr parseStatement() {
    if (at(TokKind::KwSkip)) {
      consume();
      return Stmt::skip();
    }
    if (at(TokKind::KwIf))
      return parseIf();
    if (at(TokKind::KwWhile))
      return parseWhile();
    if (at(TokKind::KwFor))
      return parseFor();
    if (at(TokKind::LBracket))
      return parseGuardedGate();
    if (at(TokKind::Ident) && peek().Text == "q")
      return parseQubitStatement();
    if (at(TokKind::Ident))
      return parseAssignLike();
    fail("expected a statement");
    return Stmt::skip();
  }

  StmtPtr parseIf() {
    expect(TokKind::KwIf, "if");
    CExprPtr Cond = parseBoolExpr();
    expect(TokKind::KwThen, "then");
    StmtPtr Then = parseSequence();
    expect(TokKind::KwElse, "else");
    StmtPtr Else = parseSequence();
    expect(TokKind::KwEnd, "end");
    return Stmt::ifElse(std::move(Cond), std::move(Then), std::move(Else));
  }

  StmtPtr parseWhile() {
    expect(TokKind::KwWhile, "while");
    CExprPtr Cond = parseBoolExpr();
    expect(TokKind::KwDo, "do");
    StmtPtr Body = parseSequence();
    expect(TokKind::KwEnd, "end");
    return Stmt::whileLoop(std::move(Cond), std::move(Body));
  }

  StmtPtr parseFor() {
    expect(TokKind::KwFor, "for");
    std::string Var = expectIdent();
    expect(TokKind::KwIn, "in");
    CExprPtr Lo = parseIntExpr();
    expect(TokKind::DotDot, "..");
    CExprPtr Hi = parseIntExpr();
    expect(TokKind::KwDo, "do");
    StmtPtr Body = parseSequence();
    expect(TokKind::KwEnd, "end");
    return Stmt::forLoop(std::move(Var), std::move(Lo), std::move(Hi),
                         std::move(Body));
  }

  StmtPtr parseGuardedGate() {
    expect(TokKind::LBracket, "[");
    CExprPtr Guard = parseBoolExpr();
    expect(TokKind::RBracket, "]");
    CExprPtr Q = parseQubitRef();
    expect(TokKind::MulAssign, "*=");
    GateKind G = parseGateName(false);
    return Stmt::guardedGate(std::move(Guard), G, std::move(Q));
  }

  StmtPtr parseQubitStatement() {
    CExprPtr Q0 = parseQubitRef();
    if (at(TokKind::Comma)) {
      consume();
      CExprPtr Q1 = parseQubitRef();
      expect(TokKind::MulAssign, "*=");
      GateKind G = parseGateName(true);
      return Stmt::unitary2(G, std::move(Q0), std::move(Q1));
    }
    if (at(TokKind::Assign)) {
      consume();
      expect(TokKind::Ket0, "|0>");
      return Stmt::init(std::move(Q0));
    }
    expect(TokKind::MulAssign, "*=");
    GateKind G = parseGateName(false);
    return Stmt::unitary1(G, std::move(Q0));
  }

  StmtPtr parseAssignLike() {
    std::vector<std::string> Targets{expectIdent()};
    while (at(TokKind::Comma)) {
      consume();
      Targets.push_back(expectIdent());
    }
    expect(TokKind::Assign, ":=");
    if (at(TokKind::KwMeas)) {
      consume();
      expect(TokKind::LBracket, "[");
      ProgPauli P = parsePauli();
      expect(TokKind::RBracket, "]");
      if (Targets.size() != 1) {
        fail("measurement assigns exactly one variable");
        return Stmt::skip();
      }
      return Stmt::measure(Targets[0], std::move(P));
    }
    // Decoder call: ident '(' args ')'.
    if (at(TokKind::Ident) && peekAhead(1).Kind == TokKind::LParen) {
      std::string Func = expectIdent();
      expect(TokKind::LParen, "(");
      std::vector<CExprPtr> Args;
      if (!at(TokKind::RParen)) {
        Args.push_back(parseIntExpr());
        while (at(TokKind::Comma)) {
          consume();
          Args.push_back(parseIntExpr());
        }
      }
      expect(TokKind::RParen, ")");
      return Stmt::decoderCall(std::move(Targets), std::move(Func),
                               std::move(Args));
    }
    if (Targets.size() != 1) {
      fail("plain assignment has exactly one target");
      return Stmt::skip();
    }
    CExprPtr Value = parseBoolExpr();
    return Stmt::assign(Targets[0], std::move(Value));
  }

  CExprPtr parseQubitRef() {
    Token T = peek();
    if (!(at(TokKind::Ident) && T.Text == "q")) {
      fail("expected qubit reference q[...]");
      return ClassicalExpr::constant(0);
    }
    consume();
    expect(TokKind::LBracket, "[");
    CExprPtr Idx = parseIntExpr();
    expect(TokKind::RBracket, "]");
    return Idx;
  }

  GateKind parseGateName(bool TwoQubit) {
    std::string Name = expectIdent();
    struct Entry {
      const char *Name;
      GateKind Kind;
    };
    static const Entry Table[] = {
        {"X", GateKind::X},         {"Y", GateKind::Y},
        {"Z", GateKind::Z},         {"H", GateKind::H},
        {"S", GateKind::S},         {"Sdg", GateKind::Sdg},
        {"T", GateKind::T},         {"Tdg", GateKind::Tdg},
        {"CNOT", GateKind::CNOT},   {"CZ", GateKind::CZ},
        {"iSWAP", GateKind::ISWAP}, {"iSWAPdg", GateKind::ISWAPdg},
    };
    for (const Entry &E : Table)
      if (Name == E.Name) {
        if (isTwoQubitGate(E.Kind) != TwoQubit) {
          fail(std::string("gate ") + Name + " has the wrong arity here");
          break;
        }
        return E.Kind;
      }
    if (!Failed)
      fail("unknown gate '" + Name + "'");
    // Arity-correct placeholder so recovery paths stay well-formed.
    return TwoQubit ? GateKind::CNOT : GateKind::X;
  }

  ProgPauli parsePauli() {
    ProgPauli P;
    if (at(TokKind::PhasePrefix)) {
      consume();
      expect(TokKind::LParen, "(");
      P.PhaseBit = parseBoolExpr();
      expect(TokKind::RParen, ")");
    }
    while (at(TokKind::Ident) && !Failed) {
      std::string L = peek().Text;
      PauliKind K;
      if (L == "X")
        K = PauliKind::X;
      else if (L == "Y")
        K = PauliKind::Y;
      else if (L == "Z")
        K = PauliKind::Z;
      else
        break;
      consume();
      expect(TokKind::LBracket, "[");
      CExprPtr Idx = parseIntExpr();
      expect(TokKind::RBracket, "]");
      P.Factors.push_back({K, std::move(Idx)});
    }
    if (P.Factors.empty())
      fail("expected a Pauli expression");
    return P;
  }

  // -- Expressions ----------------------------------------------------------
  // bool := imp; imp := or ('->' imp)?; or := and ('||' and)*;
  // and := xor ('&&' xor)*; xor := cmp ('^' cmp)*;
  // cmp := int (('=='|'<=') int)?; int := term (('+'|'-') term)*;
  // term := factor ('*' factor)*; factor := NUM | IDENT | '(' bool ')'
  //       | '-' factor | '!' factor | 'true' | 'false'

  CExprPtr parseBoolExpr() {
    CExprPtr L = parseOr();
    if (at(TokKind::Arrow)) {
      consume();
      CExprPtr R = parseBoolExpr();
      return ClassicalExpr::implies(std::move(L), std::move(R));
    }
    return L;
  }

  CExprPtr parseOr() {
    CExprPtr L = parseAnd();
    while (at(TokKind::OrOr)) {
      consume();
      L = ClassicalExpr::logicalOr(std::move(L), parseAnd());
    }
    return L;
  }

  CExprPtr parseAnd() {
    CExprPtr L = parseXor();
    while (at(TokKind::AndAnd)) {
      consume();
      L = ClassicalExpr::logicalAnd(std::move(L), parseXor());
    }
    return L;
  }

  CExprPtr parseXor() {
    CExprPtr L = parseCompare();
    while (at(TokKind::Caret)) {
      consume();
      L = ClassicalExpr::parityXor(std::move(L), parseCompare());
    }
    return L;
  }

  CExprPtr parseCompare() {
    CExprPtr L = parseIntExpr();
    if (at(TokKind::EqEq)) {
      consume();
      return ClassicalExpr::eq(std::move(L), parseIntExpr());
    }
    if (at(TokKind::Le)) {
      consume();
      return ClassicalExpr::le(std::move(L), parseIntExpr());
    }
    return L;
  }

  CExprPtr parseIntExpr() {
    CExprPtr L = parseTerm();
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      bool IsMinus = at(TokKind::Minus);
      consume();
      CExprPtr R = parseTerm();
      if (IsMinus)
        R = ClassicalExpr::neg(std::move(R));
      L = ClassicalExpr::add(std::move(L), std::move(R));
    }
    return L;
  }

  CExprPtr parseTerm() {
    CExprPtr L = parseFactor();
    while (at(TokKind::Star)) {
      consume();
      L = ClassicalExpr::mul(std::move(L), parseFactor());
    }
    return L;
  }

  CExprPtr parseFactor() {
    if (at(TokKind::Number)) {
      int64_t V = peek().Number;
      consume();
      return ClassicalExpr::constant(V);
    }
    if (at(TokKind::KwTrue)) {
      consume();
      return ClassicalExpr::boolean(true);
    }
    if (at(TokKind::KwFalse)) {
      consume();
      return ClassicalExpr::boolean(false);
    }
    if (at(TokKind::Ident)) {
      std::string Name = peek().Text;
      consume();
      return ClassicalExpr::var(std::move(Name));
    }
    if (at(TokKind::Minus)) {
      consume();
      return ClassicalExpr::neg(parseFactor());
    }
    if (at(TokKind::Bang)) {
      consume();
      return ClassicalExpr::logicalNot(parseFactor());
    }
    if (at(TokKind::LParen)) {
      consume();
      CExprPtr E = parseBoolExpr();
      expect(TokKind::RParen, ")");
      return E;
    }
    fail("expected an expression");
    return ClassicalExpr::constant(0);
  }

  // -- Plumbing -------------------------------------------------------------

  const Token &peek() const { return Toks[Idx]; }
  const Token &peekAhead(size_t N) const {
    return Toks[std::min(Idx + N, Toks.size() - 1)];
  }
  bool at(TokKind K) const { return peek().Kind == K; }
  void consume() {
    if (Idx + 1 < Toks.size())
      ++Idx;
  }

  void expect(TokKind K, const char *What) {
    if (Failed)
      return;
    if (!at(K)) {
      fail(std::string("expected '") + What + "'");
      return;
    }
    consume();
  }

  std::string expectIdent() {
    if (Failed)
      return "";
    if (!at(TokKind::Ident)) {
      fail("expected an identifier");
      return "";
    }
    std::string Name = peek().Text;
    consume();
    return Name;
  }

  void fail(const std::string &Msg) {
    if (Failed)
      return;
    Failed = true;
    Error = {Msg, peek().Line, peek().Column};
  }

  std::vector<Token> Toks;
  size_t Idx = 0;
  bool Failed = false;
  ParseError Error;
};

} // namespace

ParseResult veriqec::parseProgram(const std::string &Source) {
  Lexer L(Source);
  auto Tokens = L.run();
  if (auto *Err = std::get_if<ParseError>(&Tokens))
    return *Err;
  Parser P(std::move(std::get<std::vector<Token>>(Tokens)));
  return P.parseProgramTop();
}

std::variant<CExprPtr, ParseError>
veriqec::parseClassicalExpr(const std::string &Source) {
  Lexer L(Source);
  auto Tokens = L.run();
  if (auto *Err = std::get_if<ParseError>(&Tokens))
    return *Err;
  Parser P(std::move(std::get<std::vector<Token>>(Tokens)));
  return P.parseExprTop();
}
