//===- prog/Parser.h - Concrete syntax parser -------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the paper's concrete program syntax (the
/// role Lark plays in the original Veri-QEC, Appendix D.2). Grammar:
///
///   program  := stmt (('#' | ';') stmt)*
///   stmt     := 'skip'
///             | 'q' '[' iexp ']' ':=' '|0>'
///             | 'q' '[' iexp ']' (',' 'q' '[' iexp ']')? '*=' GATE
///             | '[' bexp ']' 'q' '[' iexp ']' '*=' GATE
///             | IDENT (',' IDENT)* ':=' 'meas' '[' pauli ']'
///                                    | IDENT '(' iexp,* ')'  | iexp
///             | 'if' bexp 'then' program 'else' program 'end'
///             | 'while' bexp 'do' program 'end'
///             | 'for' IDENT 'in' iexp '..' iexp 'do' program 'end'
///   pauli    := ('(-1)^(' bexp ')')? (('X'|'Y'|'Z') '[' iexp ']')+
///
/// Expressions use C-like precedence; `^` is the mod-2 sum.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_PROG_PARSER_H
#define VERIQEC_PROG_PARSER_H

#include "prog/Ast.h"

#include <string>
#include <variant>

namespace veriqec {

/// Parse failure: message plus 1-based source position.
struct ParseError {
  std::string Message;
  size_t Line = 0;
  size_t Column = 0;

  std::string render() const {
    return "parse error at " + std::to_string(Line) + ":" +
           std::to_string(Column) + ": " + Message;
  }
};

/// Result of parsing: a program or an error.
using ParseResult = std::variant<StmtPtr, ParseError>;

/// Parses a full program.
ParseResult parseProgram(const std::string &Source);

/// Parses a standalone classical (Boolean/integer) expression.
std::variant<CExprPtr, ParseError> parseClassicalExpr(
    const std::string &Source);

} // namespace veriqec

#endif // VERIQEC_PROG_PARSER_H
