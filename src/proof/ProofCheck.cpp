//===- proof/ProofCheck.cpp - Independent proof checker -------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "proof/ProofCheck.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>
#include <vector>

using namespace veriqec;
using namespace veriqec::proof;

namespace {

// -- GF(2) rows over a sparse sorted variable support ------------------------

/// One parity constraint: XOR of Vars == Rhs. Vars are sorted, duplicate
/// free; used both for the preprocessor replay records (BoolContext
/// variable space) and for the solver's native XOR rows (SAT variable
/// space) folded under a partial assignment.
struct SparseRow {
  std::vector<uint32_t> Vars;
  uint8_t Rhs = 0;
};

/// Sorts a support and cancels duplicate variables in pairs (GF(2)).
void canonicalize(std::vector<uint32_t> &Vars) {
  std::sort(Vars.begin(), Vars.end());
  size_t Keep = 0;
  for (size_t I = 0; I != Vars.size();) {
    size_t J = I;
    while (J != Vars.size() && Vars[J] == Vars[I])
      ++J;
    if ((J - I) & 1)
      Vars[Keep++] = Vars[I];
    I = J;
  }
  Vars.resize(Keep);
}

SparseRow xorRows(const SparseRow &A, const SparseRow &B) {
  SparseRow Out;
  Out.Vars.reserve(A.Vars.size() + B.Vars.size());
  std::set_symmetric_difference(A.Vars.begin(), A.Vars.end(), B.Vars.begin(),
                                B.Vars.end(), std::back_inserter(Out.Vars));
  Out.Rhs = A.Rhs ^ B.Rhs;
  return Out;
}

/// Incremental row-echelon basis keyed by leading variable. insert()
/// returns false on the contradiction 0 == 1; inSpan() answers linear
/// membership (which is what validates preprocessor replay records).
class RowBasis {
public:
  SparseRow reduce(SparseRow R) const {
    while (!R.Vars.empty()) {
      auto It = ByLead.find(R.Vars.front());
      if (It == ByLead.end())
        break;
      R = xorRows(R, It->second);
    }
    return R;
  }

  bool insert(SparseRow R) {
    R = reduce(std::move(R));
    if (R.Vars.empty()) {
      Contradictory |= R.Rhs != 0;
      return R.Rhs == 0;
    }
    uint32_t Lead = R.Vars.front();
    ByLead.emplace(Lead, std::move(R));
    return true;
  }

  bool inSpan(const SparseRow &R) const {
    SparseRow Residue = reduce(R);
    if (!Residue.Vars.empty())
      return false;
    // A contradictory system spans every parity (0 == 1 absorbs the Rhs).
    return Residue.Rhs == 0 || Contradictory;
  }

  bool contradictory() const { return Contradictory; }

private:
  std::map<uint32_t, SparseRow> ByLead;
  bool Contradictory = false;
};

// -- Unit propagation replay -------------------------------------------------

/// Literal codes: 2*Var + (negated ? 1 : 0), mirroring DIMACS input
/// Lit = (Var+1) * sign.
constexpr uint32_t codeOf(uint32_t Var, bool Neg) { return 2 * Var + Neg; }
constexpr uint32_t varOf(uint32_t Code) { return Code >> 1; }
constexpr bool negOf(uint32_t Code) { return Code & 1; }
constexpr uint32_t negCode(uint32_t Code) { return Code ^ 1; }

/// The replayer: a two-watched-literal propagation core over the header
/// clauses plus one stream's accepted additions, with assumption levels
/// that unwind back to the persistent root trail.
class Replay {
public:
  Replay(size_t NumVars, const std::vector<std::vector<uint32_t>> &Header,
         const std::vector<SparseRow> &Xor)
      : NumHeaderClauses(Header.size()), XorSystem(Xor) {
    Assigns.assign(NumVars, -1);
    Watches.assign(2 * NumVars, {});
    for (const std::vector<uint32_t> &C : Header)
      installClause(C);
    if (!DbUnsat && propagate() != NoClause)
      DbUnsat = true;
  }

  bool dbUnsat() const { return DbUnsat; }

  /// Checks and installs one derived clause. Accepts iff the clause is
  /// RUP against the live database or, failing that, the XOR system is
  /// GF(2)-inconsistent under the negated clause (which is how clauses
  /// materialized by the solver's Gauss engine are justified).
  ///
  /// \p Hints, when present, name the antecedents the producer resolved
  /// (positive: earlier addition serial; negative: header clause record)
  /// in an order that makes each unit in turn under the negated clause.
  /// The hinted check IS unit propagation — every literal it asserts is
  /// forced by a live database clause — merely restricted to the named
  /// clauses, so acceptance through it needs no more trust than the full
  /// search; hints that do not pan out fall back to that full search.
  bool addDerived(const std::vector<uint32_t> &Lits,
                  const std::vector<int64_t> &Hints) {
    if (DbUnsat) {
      Additions.push_back(NoClause);
      return true;
    }
    bool Entailed =
        !Hints.empty() && refutesByHints(Lits, /*Negate=*/true, Hints);
    if (!Entailed)
      Entailed = refutes(Lits, /*Negate=*/true);
    if (Entailed) {
      installClause(Lits);
      if (!DbUnsat && propagate() != NoClause)
        DbUnsat = true;
    }
    Additions.push_back(Entailed && !Clauses.empty()
                            ? static_cast<int32_t>(Clauses.size() - 1)
                            : NoClause);
    return Entailed;
  }

  /// Deletes the stream's \p Serial-th addition (1-based).
  bool deleteDerived(uint64_t Serial) {
    if (Serial == 0 || Serial > Additions.size())
      return false;
    int32_t Idx = Additions[Serial - 1];
    if (Idx != NoClause)
      Deleted[Idx] = 1;
    return true;
  }

  /// Checks an UNSAT conclusion: asserting every core literal must
  /// produce a conflict under propagation, or leave the XOR system
  /// GF(2)-inconsistent. \p Hints, when present, name the reason cone of
  /// the producer's final conflict (same contract as addDerived hints).
  bool refutesCore(const std::vector<uint32_t> &Lits,
                   const std::vector<int64_t> &Hints) {
    if (DbUnsat)
      return true;
    if (!Hints.empty() && refutesByHints(Lits, /*Negate=*/false, Hints))
      return true;
    return refutes(Lits, /*Negate=*/false);
  }

private:
  static constexpr int32_t NoClause = -1;

  struct Watcher {
    uint32_t ClauseIdx;
    uint32_t Blocker;
  };

  std::vector<std::vector<uint32_t>> Clauses;
  std::vector<uint8_t> Deleted;
  std::vector<std::vector<Watcher>> Watches;
  std::vector<int8_t> Assigns; // per var: -1 undef, 0 false, 1 true
  std::vector<uint32_t> Trail; // asserted literal codes
  size_t PropHead = 0;
  bool DbUnsat = false;
  /// Per-addition clause index (NoClause for clauses absorbed at install
  /// or accepted after the database went unsat), indexed by serial - 1.
  std::vector<int32_t> Additions;
  /// Header records (o and b) install at clause indices [0,
  /// NumHeaderClauses): what a negative hint resolves through.
  size_t NumHeaderClauses = 0;
  const std::vector<SparseRow> &XorSystem;

  int8_t litValue(uint32_t Code) const {
    int8_t A = Assigns[varOf(Code)];
    if (A < 0)
      return -1;
    return negOf(Code) ? static_cast<int8_t>(1 - A) : A;
  }

  void enqueue(uint32_t Code) {
    Assigns[varOf(Code)] = negOf(Code) ? 0 : 1;
    Trail.push_back(Code);
  }

  /// Installs a clause at the root, picking watchable (non-false)
  /// literals and enqueueing an implied unit right away. Runs only with
  /// every assumption level unwound.
  ///
  /// Clauses are normalized first: producers may emit degenerate clauses
  /// (a parity chain over an aliased variable repeats a literal), and
  /// watched-literal propagation over the raw clause would treat the
  /// copies as distinct non-false literals — silently losing the
  /// clause's real propagation strength. Tautologies are installed as
  /// tombstones: always satisfied, they can never propagate.
  void installClause(std::vector<uint32_t> C) {
    std::sort(C.begin(), C.end());
    C.erase(std::unique(C.begin(), C.end()), C.end());
    for (size_t I = 0; I + 1 < C.size(); ++I)
      if (C[I + 1] == negCode(C[I])) {
        Clauses.push_back(std::move(C));
        Deleted.push_back(1);
        return;
      }
    size_t NonFalse = 0;
    for (size_t I = 0; I != C.size() && NonFalse < 2; ++I)
      if (litValue(C[I]) != 0)
        std::swap(C[NonFalse++], C[I]);
    uint32_t Idx = static_cast<uint32_t>(Clauses.size());
    Clauses.push_back(std::move(C));
    Deleted.push_back(0);
    const std::vector<uint32_t> &Lits = Clauses.back();
    if (NonFalse == 0) {
      DbUnsat = true;
      return;
    }
    if (Lits.size() >= 2) {
      Watches[Lits[0]].push_back({Idx, Lits[1]});
      Watches[Lits[1]].push_back({Idx, Lits[0]});
    }
    if (NonFalse == 1 && litValue(Lits[0]) < 0)
      enqueue(Lits[0]);
  }

  /// Propagates to fixpoint; returns a conflicting clause or NoClause.
  int32_t propagate() {
    while (PropHead < Trail.size()) {
      uint32_t False = negCode(Trail[PropHead++]);
      std::vector<Watcher> &WL = Watches[False];
      size_t Keep = 0;
      for (size_t I = 0; I != WL.size(); ++I) {
        Watcher W = WL[I];
        if (Deleted[W.ClauseIdx])
          continue;
        if (litValue(W.Blocker) == 1) {
          WL[Keep++] = W;
          continue;
        }
        std::vector<uint32_t> &C = Clauses[W.ClauseIdx];
        if (C[0] == False)
          std::swap(C[0], C[1]);
        if (litValue(C[0]) == 1) {
          WL[Keep++] = {W.ClauseIdx, C[0]};
          continue;
        }
        bool Moved = false;
        for (size_t K = 2; K != C.size(); ++K)
          if (litValue(C[K]) != 0) {
            std::swap(C[1], C[K]);
            Watches[C[1]].push_back({W.ClauseIdx, C[0]});
            Moved = true;
            break;
          }
        if (Moved)
          continue;
        WL[Keep++] = W;
        if (litValue(C[0]) == 0) {
          for (size_t J = I + 1; J != WL.size(); ++J)
            WL[Keep++] = WL[J];
          WL.resize(Keep);
          PropHead = Trail.size();
          return static_cast<int32_t>(W.ClauseIdx);
        }
        enqueue(C[0]);
      }
      WL.resize(Keep);
    }
    return NoClause;
  }

  void unwindTo(size_t Mark) {
    while (Trail.size() > Mark) {
      Assigns[varOf(Trail.back())] = -1;
      Trail.pop_back();
    }
    PropHead = Mark;
  }

  /// Resolves a hint to a live clause index, or NoClause when it names
  /// nothing usable (out of range, absorbed at install, or deleted —
  /// deleted clauses must not justify later additions through hints any
  /// more than through full propagation).
  int32_t hintClause(int64_t Hint) const {
    int32_t Idx = NoClause;
    if (Hint > 0 && static_cast<uint64_t>(Hint) <= Additions.size())
      Idx = Additions[static_cast<size_t>(Hint) - 1];
    else if (Hint < 0 && static_cast<uint64_t>(-Hint) <= NumHeaderClauses)
      Idx = static_cast<int32_t>(-Hint) - 1;
    if (Idx != NoClause && Deleted[Idx])
      return NoClause;
    return Idx;
  }

  /// The hinted check: asserts \p Lits (negated for RUP, as-is for a
  /// conclusion core), then walks the hints expecting each named clause
  /// to be unit (enqueueing its one unassigned literal) until one is
  /// conflicting. Returns false — never an error — on any deviation; the
  /// caller falls back to refutes().
  bool refutesByHints(const std::vector<uint32_t> &Lits, bool Negate,
                      const std::vector<int64_t> &Hints) {
    size_t Mark = Trail.size();
    for (uint32_t L : Lits) {
      uint32_t Assert = Negate ? negCode(L) : L;
      int8_t V = litValue(Assert);
      if (V == 0) {
        // Root-falsified assertion: a clause literal already true (RUP
        // mode, entailed) or a core literal already false (conflict).
        unwindTo(Mark);
        return true;
      }
      if (V < 0)
        enqueue(Assert);
    }
    for (int64_t H : Hints) {
      int32_t Idx = hintClause(H);
      if (Idx == NoClause) {
        unwindTo(Mark);
        return false;
      }
      uint32_t Unit = 0;
      int NumUndef = 0;
      for (uint32_t L : Clauses[Idx]) {
        int8_t V = litValue(L);
        if (V == 1 || (V < 0 && ++NumUndef > 1)) {
          NumUndef = 2; // satisfied or not unit: the hint is useless
          break;
        }
        if (V < 0)
          Unit = L;
      }
      if (NumUndef > 1) {
        unwindTo(Mark);
        return false;
      }
      if (NumUndef == 0) {
        unwindTo(Mark);
        return true; // all literals false: a genuine conflict
      }
      enqueue(Unit);
    }
    unwindTo(Mark);
    return false; // hints ran out without reaching a conflict
  }

  /// Core of both checks: asserts \p Lits (negated for RUP) on top of
  /// the root trail, propagates, and falls back to GF(2) elimination of
  /// the XOR system under the resulting assignment. Always unwinds.
  bool refutes(const std::vector<uint32_t> &Lits, bool Negate) {
    size_t Mark = Trail.size();
    bool Conflict = false, Satisfied = false;
    for (uint32_t L : Lits) {
      uint32_t Assert = Negate ? negCode(L) : L;
      int8_t V = litValue(Assert);
      if (V == 0) {
        (Negate ? Satisfied : Conflict) = true;
        break;
      }
      if (V < 0)
        enqueue(Assert);
    }
    if (Satisfied) {
      // RUP mode and some clause literal is already true at the root:
      // the clause is root-satisfied, hence entailed.
      unwindTo(Mark);
      return true;
    }
    if (!Conflict)
      Conflict = propagate() != NoClause;
    if (!Conflict)
      Conflict = xorInconsistent();
    unwindTo(Mark);
    return Conflict;
  }

  /// Full Gaussian elimination of the XOR rows folded under the current
  /// assignment; true iff the residual system is inconsistent.
  bool xorInconsistent() const {
    if (XorSystem.empty())
      return false;
    RowBasis Basis;
    for (const SparseRow &Row : XorSystem) {
      SparseRow Folded;
      Folded.Rhs = Row.Rhs;
      for (uint32_t V : Row.Vars) {
        int8_t A = Assigns[V];
        if (A < 0)
          Folded.Vars.push_back(V);
        else
          Folded.Rhs ^= A;
      }
      if (!Basis.insert(std::move(Folded)))
        return true;
    }
    return false;
  }
};

// -- Proof text parsing ------------------------------------------------------

/// Splits \p Text into whitespace-separated fields per line, dispatching
/// each record to the state machine below.
class Checker {
public:
  CheckResult run(std::string_view Text) {
    size_t Pos = 0, LineNo = 0;
    while (Pos < Text.size()) {
      size_t Eol = Text.find('\n', Pos);
      if (Eol == std::string_view::npos)
        Eol = Text.size();
      std::string_view Line = Text.substr(Pos, Eol - Pos);
      Pos = Eol + 1;
      ++LineNo;
      if (!handleLine(Line, LineNo))
        return Result;
    }
    finish();
    return Result;
  }

private:
  enum class Phase { ExpectMagic, Header, Streams };

  CheckResult Result;
  Phase State = Phase::ExpectMagic;
  size_t NumVars = 0;
  std::vector<std::vector<uint32_t>> HeaderClauses;
  std::vector<SparseRow> XorSystem;
  std::vector<SparseRow> OriginalRows; // pr, BoolContext space
  bool SawTrivial = false;
  bool SpanChecked = false;
  RowBasis OriginalBasis;

  std::vector<Replay> Pristine; // size 1 once built: the header state
  std::vector<Replay> Current;  // size 1 while inside a stream
  /// Cores proven unsatisfiable by q records (sorted literal codes).
  std::set<std::vector<uint32_t>> RefutedCores;
  std::set<std::vector<uint32_t>> ConcludedCubes;
  /// c records awaiting second-pass validation: (line, core).
  std::vector<std::pair<size_t, std::vector<uint32_t>>> PendingPrunes;
  uint64_t ExpectedConclusions = 0;
  bool SawExpected = false;

  bool fail(size_t LineNo, const std::string &What) {
    Result.Ok = false;
    Result.Error = "line " + std::to_string(LineNo) + ": " + What;
    return false;
  }

  /// Tokenizer and addition scratch, reused across the proof's millions
  /// of lines (a fresh vector per line is measurable at surface-code
  /// proof sizes).
  std::vector<std::string_view> TokScratch;
  std::vector<uint32_t> LitScratch;
  std::vector<int64_t> HintScratch;

  const std::vector<std::string_view> &split(std::string_view Line) {
    TokScratch.clear();
    size_t I = 0;
    while (I < Line.size()) {
      while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t' ||
                                 Line[I] == '\r'))
        ++I;
      size_t J = I;
      while (J < Line.size() && Line[J] != ' ' && Line[J] != '\t' &&
             Line[J] != '\r')
        ++J;
      if (J > I)
        TokScratch.push_back(Line.substr(I, J - I));
      I = J;
    }
    return TokScratch;
  }

  bool parseInt(std::string_view Tok, int64_t &Out) {
    auto [Ptr, Ec] =
        std::from_chars(Tok.data(), Tok.data() + Tok.size(), Out);
    return Ec == std::errc() && Ptr == Tok.data() + Tok.size();
  }

  /// Parses DIMACS literals from Toks[From..] up to a 0 terminator;
  /// advances From past the terminator. Codes are range-checked.
  bool parseLits(const std::vector<std::string_view> &Toks, size_t &From,
                 std::vector<uint32_t> &Out, size_t LineNo) {
    for (; From < Toks.size(); ++From) {
      int64_t L;
      if (!parseInt(Toks[From], L))
        return fail(LineNo, "bad literal token");
      if (L == 0) {
        ++From;
        return true;
      }
      uint64_t V = static_cast<uint64_t>(L < 0 ? -L : L) - 1;
      if (V >= NumVars)
        return fail(LineNo, "literal over undeclared variable");
      Out.push_back(codeOf(static_cast<uint32_t>(V), L < 0));
    }
    return fail(LineNo, "missing 0 terminator");
  }

  /// Parses "rhs var..var 0" into a sorted parity row over \p Space
  /// variables (1-based in the text).
  bool parseRow(const std::vector<std::string_view> &Toks, size_t From,
                size_t Space, SparseRow &Out, size_t LineNo) {
    int64_t Rhs;
    if (From >= Toks.size() || !parseInt(Toks[From], Rhs) ||
        (Rhs != 0 && Rhs != 1))
      return fail(LineNo, "bad parity rhs");
    for (++From; From < Toks.size(); ++From) {
      int64_t V;
      if (!parseInt(Toks[From], V))
        return fail(LineNo, "bad parity variable");
      if (V == 0) {
        Out.Rhs = static_cast<uint8_t>(Rhs);
        canonicalize(Out.Vars);
        return true;
      }
      if (V < 1 || (Space && static_cast<uint64_t>(V) > Space))
        return fail(LineNo, "parity variable out of range");
      Out.Vars.push_back(static_cast<uint32_t>(V - 1));
    }
    return fail(LineNo, "missing 0 terminator");
  }

  bool ensureSpanChecks(size_t LineNo) {
    if (SpanChecked)
      return true;
    SpanChecked = true;
    for (const SparseRow &R : OriginalRows)
      OriginalBasis.insert(R); // contradictions recorded, judged by 't'
    (void)LineNo;
    return true;
  }

  bool handleLine(std::string_view Line, size_t LineNo) {
    const std::vector<std::string_view> &Toks = split(Line);
    if (Toks.empty() || Toks[0].front() == '#')
      return true;
    std::string_view Tag = Toks[0];

    if (State == Phase::ExpectMagic) {
      if (Tag != "p" || Toks.size() < 4 || Toks[1] != "veriqec" ||
          Toks[2] != "proof" || Toks[3] != "1")
        return fail(LineNo, "not a veriqec proof (bad magic)");
      State = Phase::Header;
      return true;
    }

    if (Tag == "v") {
      int64_t N;
      if (State != Phase::Header || Toks.size() != 2 ||
          !parseInt(Toks[1], N) || N < 0)
        return fail(LineNo, "bad variable-count record");
      NumVars = static_cast<size_t>(N);
      Result.NumVars = NumVars;
      return true;
    }
    if (Tag == "o" || Tag == "b") {
      if (State != Phase::Header)
        return fail(LineNo, "clause record after streams began");
      std::vector<uint32_t> Lits;
      size_t From = 1;
      if (!parseLits(Toks, From, Lits, LineNo))
        return false;
      HeaderClauses.push_back(std::move(Lits));
      ++Result.HeaderClauses;
      return true;
    }
    if (Tag == "x") {
      if (State != Phase::Header)
        return fail(LineNo, "xor record after streams began");
      SparseRow Row;
      if (!parseRow(Toks, 1, NumVars, Row, LineNo))
        return false;
      XorSystem.push_back(std::move(Row));
      ++Result.XorRows;
      return true;
    }
    if (Tag == "pr" || Tag == "pk") {
      if (State != Phase::Header)
        return fail(LineNo, "replay record after streams began");
      SparseRow Row;
      if (!parseRow(Toks, 1, 0, Row, LineNo))
        return false;
      ++Result.ReplayRecords;
      if (Tag == "pr") {
        OriginalRows.push_back(std::move(Row));
        return true;
      }
      ensureSpanChecks(LineNo);
      if (!OriginalBasis.inSpan(Row))
        return fail(LineNo, "kept row outside the original row span");
      return true;
    }
    if (Tag == "pe") {
      // pe <var> <rhs> <deps..> 0: var == XOR(deps) ^ rhs, i.e. the row
      // {var, deps} == rhs must be spanned by the original system.
      if (State != Phase::Header)
        return fail(LineNo, "replay record after streams began");
      int64_t V, Rhs;
      if (Toks.size() < 4 || !parseInt(Toks[1], V) || V < 1 ||
          !parseInt(Toks[2], Rhs) || (Rhs != 0 && Rhs != 1))
        return fail(LineNo, "bad elimination record");
      SparseRow Row;
      Row.Vars.push_back(static_cast<uint32_t>(V - 1));
      for (size_t I = 3; I < Toks.size(); ++I) {
        int64_t D;
        if (!parseInt(Toks[I], D))
          return fail(LineNo, "bad elimination dependency");
        if (D == 0)
          break;
        if (D < 1)
          return fail(LineNo, "bad elimination dependency");
        Row.Vars.push_back(static_cast<uint32_t>(D - 1));
      }
      Row.Rhs = static_cast<uint8_t>(Rhs);
      canonicalize(Row.Vars);
      ++Result.ReplayRecords;
      ensureSpanChecks(LineNo);
      if (!OriginalBasis.inSpan(Row))
        return fail(LineNo, "elimination outside the original row span");
      return true;
    }
    if (Tag == "t") {
      if (State != Phase::Header)
        return fail(LineNo, "trivial-unsat record after streams began");
      ensureSpanChecks(LineNo);
      if (!OriginalBasis.contradictory())
        return fail(LineNo, "trivial-unsat claim but original rows are "
                            "consistent");
      SawTrivial = true;
      Result.GlobalUnsat = true;
      return true;
    }
    if (Tag == "s") {
      int64_t Slot;
      if (Toks.size() != 2 || !parseInt(Toks[1], Slot) || Slot < 0)
        return fail(LineNo, "bad stream record");
      ensureSpanChecks(LineNo);
      if (State == Phase::Header) {
        State = Phase::Streams;
        Pristine.emplace_back(NumVars, HeaderClauses, XorSystem);
      }
      Current.clear();
      Current.push_back(Pristine.front());
      ++Result.Streams;
      return true;
    }
    if (Tag == "a" || Tag == "d" || Tag == "q" || Tag == "c") {
      if (State != Phase::Streams || Current.empty())
        return fail(LineNo, "stream record outside a stream");
      Replay &R = Current.front();
      if (Tag == "a") {
        LitScratch.clear();
        size_t From = 1;
        if (!parseLits(Toks, From, LitScratch, LineNo))
          return false;
        // Optional second 0-terminated list: antecedent hints, positive
        // for an addition serial, negative for a header clause record.
        HintScratch.clear();
        if (From < Toks.size()) {
          for (; From < Toks.size(); ++From) {
            int64_t H;
            if (!parseInt(Toks[From], H))
              return fail(LineNo, "bad hint token");
            if (H == 0)
              break;
            HintScratch.push_back(H);
          }
          if (From >= Toks.size())
            return fail(LineNo, "missing 0 terminator");
        }
        ++Result.Additions;
        if (!R.addDerived(LitScratch, HintScratch))
          return fail(LineNo, "derived clause is not RUP and not "
                              "GF(2)-implied");
        return true;
      }
      if (Tag == "d") {
        int64_t Serial;
        if (Toks.size() != 2 || !parseInt(Toks[1], Serial) || Serial < 1)
          return fail(LineNo, "bad deletion record");
        ++Result.Deletions;
        if (!R.deleteDerived(static_cast<uint64_t>(Serial)))
          return fail(LineNo, "deletion of an unknown derived clause");
        return true;
      }
      // q/c: "<core lits> 0 <cube lits> 0"; q may append a hint list.
      std::vector<uint32_t> Core, Cube;
      size_t From = 1;
      if (!parseLits(Toks, From, Core, LineNo) ||
          !parseLits(Toks, From, Cube, LineNo))
        return false;
      HintScratch.clear();
      if (Tag == "q" && From < Toks.size()) {
        for (; From < Toks.size(); ++From) {
          int64_t H;
          if (!parseInt(Toks[From], H))
            return fail(LineNo, "bad hint token");
          if (H == 0)
            break;
          HintScratch.push_back(H);
        }
        if (From >= Toks.size())
          return fail(LineNo, "missing 0 terminator");
      }
      std::sort(Core.begin(), Core.end());
      std::sort(Cube.begin(), Cube.end());
      if (!std::includes(Cube.begin(), Cube.end(), Core.begin(), Core.end()))
        return fail(LineNo, "core is not a subset of its cube");
      if (Tag == "q") {
        if (!R.refutesCore(Core, HintScratch))
          return fail(LineNo, "core does not propagate to a conflict");
        RefutedCores.insert(Core);
        if (Core.empty())
          Result.GlobalUnsat = true; // cubes need not cover after this
      } else {
        PendingPrunes.emplace_back(LineNo, std::move(Core));
      }
      ConcludedCubes.insert(std::move(Cube));
      Result.Conclusions = ConcludedCubes.size();
      return true;
    }
    if (Tag == "n") {
      int64_t N;
      if (Toks.size() != 2 || !parseInt(Toks[1], N) || N < 0)
        return fail(LineNo, "bad conclusion-count record");
      ExpectedConclusions = static_cast<uint64_t>(N);
      SawExpected = true;
      return true;
    }
    return fail(LineNo, "unknown record '" + std::string(Tag) + "'");
  }

  void finish() {
    if (State == Phase::ExpectMagic) {
      fail(0, "empty proof");
      return;
    }
    // Second pass: a pruned cube's core must have been proven by some
    // q record (in any stream — cores are stream-independent facts).
    for (const auto &[LineNo, Core] : PendingPrunes)
      if (!RefutedCores.count(Core)) {
        fail(LineNo, "prune cites a core no conclusion proved");
        return;
      }
    if (SawExpected && !Result.GlobalUnsat &&
        ConcludedCubes.size() != ExpectedConclusions) {
      fail(0, "proof concludes " + std::to_string(ConcludedCubes.size()) +
                  " distinct cubes, problem needs " +
                  std::to_string(ExpectedConclusions));
      return;
    }
    if (!SawTrivial && !SawExpected && Result.Streams == 0) {
      fail(0, "proof has no streams and no trivial-unsat record");
      return;
    }
    Result.Ok = true;
  }
};

} // namespace

CheckResult veriqec::proof::checkProof(std::string_view Text) {
  Checker C;
  return C.run(Text);
}
