//===- proof/ProofCheck.h - Independent proof checker -----------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trusted side of proof-emitting verification: a deliberately tiny,
/// self-contained checker for the clause proofs the solver stack emits
/// (see proof/ProofLog.h for the producer). It depends on nothing outside
/// the standard library — in particular not on src/sat/ — so that a bug
/// in the solver cannot also hide in the checker.
///
/// A proof certifies UNSAT verdicts only. It carries a header (the CNF
/// the solver was given, native XOR rows, and the GF(2) preprocessor's
/// replay records) followed by one stream per solver: derived-clause
/// additions and deletions in DRAT style, plus per-cube conclusions
/// naming the assumption cube and the failed-assumption core. Additions
/// are replayed by reverse unit propagation with a GF(2)-elimination
/// fallback for clauses the XOR engine materialized; conclusions are
/// replayed by asserting the core and demanding a conflict. Cube
/// conclusions compose: a core proved in one stream may justify pruning
/// a subsumed cube in another.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_PROOF_PROOFCHECK_H
#define VERIQEC_PROOF_PROOFCHECK_H

#include <cstdint>
#include <string>
#include <string_view>

namespace veriqec::proof {

/// Outcome of checking one proof.
struct CheckResult {
  bool Ok = false;
  /// When !Ok: what failed, with the 1-based line of the offending record.
  std::string Error;

  // Telemetry (filled as far as checking got).
  uint64_t NumVars = 0;
  uint64_t HeaderClauses = 0;
  uint64_t XorRows = 0;
  uint64_t ReplayRecords = 0; ///< preprocessor pr/pk/pe records
  uint64_t Streams = 0;
  uint64_t Additions = 0;
  uint64_t Deletions = 0;
  /// Distinct cubes concluded across all streams (q and c records).
  uint64_t Conclusions = 0;
  /// The proof certifies the whole problem UNSAT regardless of cubes
  /// (an empty-core conclusion or a trivially-unsat header record).
  bool GlobalUnsat = false;
};

/// Replays \p Text and returns whether every record checks. Never throws;
/// malformed input is a rejection with a diagnostic, not a crash.
CheckResult checkProof(std::string_view Text);

} // namespace veriqec::proof

#endif // VERIQEC_PROOF_PROOFCHECK_H
