//===- proof/ProofLog.cpp - Proof emission --------------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "proof/ProofLog.h"

#include "obs/Trace.h"

#include <charconv>

using namespace veriqec;
using namespace veriqec::proof;

namespace {

/// Streams append millions of small integers (a surface-code proof is
/// tens of MB of them); formatting through std::to_string's temporary
/// strings is measurable against the <25% certification-overhead budget.
void appendInt(std::string &Out, int64_t V) {
  char Buf[24];
  Buf[0] = ' ';
  char *End = std::to_chars(Buf + 1, Buf + sizeof(Buf), V).ptr;
  Out.append(Buf, static_cast<size_t>(End - Buf));
}

void appendDimacs(std::string &Out, sat::Lit L) {
  appendInt(Out, (L.var() + 1) * (L.negated() ? -1 : 1));
}

void appendRow(std::string &Out, const char *Tag, bool Rhs,
               std::span<const uint32_t> Vars) {
  Out += Tag;
  Out += Rhs ? " 1" : " 0";
  for (uint32_t V : Vars) {
    Out += ' ';
    Out += std::to_string(V + 1);
  }
  Out += " 0\n";
}

void appendReplayRecords(std::string &Out, const smt::VerificationProblem &P) {
  for (const smt::ParityRow &R : P.OriginalRows)
    appendRow(Out, "pr", R.Rhs, R.Vars);
  for (const smt::ParityRow &R : P.keptRows())
    appendRow(Out, "pk", R.Rhs, R.Vars);
  for (const smt::VarReconstruction &E : P.reconstructions()) {
    Out += "pe ";
    Out += std::to_string(E.VarId + 1);
    Out += E.Constant ? " 1" : " 0";
    for (uint32_t D : E.Deps) {
      Out += ' ';
      Out += std::to_string(D + 1);
    }
    Out += " 0\n";
  }
}

} // namespace

void SlotProofLog::appendLits(std::span<const sat::Lit> Lits) {
  for (sat::Lit L : Lits)
    appendDimacs(Buf, L);
  Buf += " 0";
}

void SlotProofLog::onDerive(std::span<const sat::Lit> Lits,
                            std::span<const int64_t> Hints) {
  Buf += 'a';
  appendLits(Lits);
  if (!Hints.empty()) {
    for (int64_t H : Hints)
      appendInt(Buf, H);
    Buf += " 0";
  }
  Buf += '\n';
}

void SlotProofLog::onRetire(uint64_t Serial) {
  Buf += "d ";
  Buf += std::to_string(Serial);
  Buf += '\n';
}

void SlotProofLog::logConclusion(std::span<const sat::Lit> Core,
                                 std::span<const sat::Lit> Cube,
                                 std::span<const int64_t> Hints) {
  Buf += 'q';
  appendLits(Core);
  appendLits(Cube);
  if (!Hints.empty()) {
    for (int64_t H : Hints)
      appendInt(Buf, H);
    Buf += " 0";
  }
  Buf += '\n';
}

void SlotProofLog::logCorePrune(std::span<const sat::Lit> Core,
                                std::span<const sat::Lit> Cube) {
  Buf += 'c';
  appendLits(Core);
  appendLits(Cube);
  Buf += '\n';
}

std::string veriqec::proof::buildProofHeader(const smt::VerificationProblem &P,
                                             bool HardenBudget,
                                             uint32_t BudgetBound) {
  std::string Out = "p veriqec proof 1\nv ";
  Out += std::to_string(P.Cnf.NumVars);
  Out += '\n';
  for (const std::vector<sat::Lit> &C : P.Cnf.Clauses) {
    Out += 'o';
    for (sat::Lit L : C)
      appendDimacs(Out, L);
    Out += " 0\n";
  }
  if (HardenBudget) {
    std::vector<sat::Lit> Units;
    P.appendWeightAssumptions(BudgetBound, Units);
    for (sat::Lit L : Units) {
      Out += 'b';
      appendDimacs(Out, L);
      Out += " 0\n";
    }
  }
  for (const auto &[Vars, Rhs] : P.XorRows) {
    Out += 'x';
    Out += Rhs ? " 1" : " 0";
    for (sat::Var V : Vars) {
      Out += ' ';
      Out += std::to_string(V + 1);
    }
    Out += " 0\n";
  }
  appendReplayRecords(Out, P);
  return Out;
}

std::string veriqec::proof::buildTrivialProof(
    const smt::VerificationProblem &P) {
  std::string Out = "p veriqec proof 1\nv 0\n";
  appendReplayRecords(Out, P);
  Out += "t\n";
  return Out;
}

std::string veriqec::proof::assembleProof(std::string Header,
                                          std::span<const std::string> Streams,
                                          std::optional<uint64_t> Conclusions) {
  obs::TraceSpan Span("proof_assemble", {{"streams", Streams.size()}});
  size_t Slot = 0;
  for (const std::string &S : Streams) {
    size_t Idx = Slot++;
    if (S.empty())
      continue;
    Header += "s ";
    Header += std::to_string(Idx);
    Header += '\n';
    Header += S;
  }
  if (Conclusions) {
    Header += "n ";
    Header += std::to_string(*Conclusions);
    Header += '\n';
  }
  return Header;
}
