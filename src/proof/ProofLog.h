//===- proof/ProofLog.h - Proof emission -----------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The producing side of proof-emitting verification (the consuming side
/// is the self-contained proof/ProofCheck.h). A proof is plain text:
///
///   p veriqec proof 1
///   v N                    variable count of the encoding
///   o <lits> 0             original clause (DIMACS literals)
///   b <lits> 0             hardened weight-bound unit
///   x <rhs> <vars> 0       native XOR row (SAT variables, 1-based)
///   pr <rhs> <vars> 0      original lifted parity row (BoolContext vars)
///   pk <rhs> <vars> 0      kept row after reduction
///   pe <var> <c> <deps> 0  eliminated: var == XOR(deps) ^ c
///   t                      preprocessor refuted the problem outright
///   s <slot>               begin one solver's stream
///   a <lits> 0 [hints 0]   derived clause (learnt / XOR-materialized)
///   d <serial>             delete the stream's serial-th addition
///   q <core> 0 <cube> 0 [hints 0]
///                          cube UNSAT with this failed-assumption core
///   c <core> 0 <cube> 0    cube pruned by a core some q record proved
///   n <count>              distinct concluded cubes the problem needs
///
/// The header is built once per problem from the encoded
/// VerificationProblem; each solver slot owns a SlotProofLog that the
/// solver feeds through the sat::ClauseProofSink interface, and the
/// engine (or the distributed coordinator, for streams that arrive as
/// BatchResult chunks) concatenates header and streams into one
/// certificate.
///
/// An addition (and likewise a q conclusion) may carry a trailing
/// 0-terminated list: LRAT-style hints naming its antecedents, positive
/// for an earlier addition of the same stream (by serial) and negative
/// for a header clause record (-k is the k-th o/b record). Hints are
/// ordered so each named clause becomes unit in turn — under the negated
/// addition, or under the asserted core for a conclusion — with the last
/// one conflicting. The checker verifies hinted records without any
/// watched-literal search, and falls back to full reverse unit
/// propagation when the hints are absent or do not pan out (soundness
/// never rests on them).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_PROOF_PROOFLOG_H
#define VERIQEC_PROOF_PROOFLOG_H

#include "sat/Solver.h"
#include "smt/CubeSolver.h"

#include <optional>
#include <span>
#include <string>
#include <utility>

namespace veriqec::proof {

/// Buffered proof stream of one solver slot. Derivations and retirements
/// arrive through the sink interface while solve() runs; conclusions are
/// appended by the cube driver after each verdict. drain() hands the
/// accumulated text over (the distributed worker ships it as a chunk per
/// result batch; chunk boundaries are invisible after concatenation).
class SlotProofLog final : public sat::ClauseProofSink {
public:
  void onDerive(std::span<const sat::Lit> Lits,
                std::span<const int64_t> Hints = {}) override;
  void onRetire(uint64_t Serial) override;

  /// Records an UNSAT verdict: \p Core (a subset of \p Cube, possibly
  /// empty) propagates to a conflict against this stream's database.
  /// \p Hints, when non-empty, name the reason clauses of the
  /// refutation cone (sat::Solver::conflictCoreHints()) so the checker
  /// can replay the conflict without a propagation search.
  void logConclusion(std::span<const sat::Lit> Core,
                     std::span<const sat::Lit> Cube,
                     std::span<const int64_t> Hints = {});

  /// Records a cube pruned because \p Core — proven by a conclusion in
  /// some stream of the same proof — subsumes it.
  void logCorePrune(std::span<const sat::Lit> Core,
                    std::span<const sat::Lit> Cube);

  bool empty() const { return Buf.empty(); }
  std::string drain() { return std::exchange(Buf, {}); }

private:
  void appendLits(std::span<const sat::Lit> Lits);
  std::string Buf;
};

/// Builds the proof header for an encoded problem: clauses exactly as
/// VerificationProblem::loadInto() feeds them to every solver, the
/// weight-bound units assertWeightBound() would add when \p HardenBudget,
/// native XOR rows, and the preprocessor replay records (captured only
/// when the problem was built with ProblemOptions::CaptureProofData).
std::string buildProofHeader(const smt::VerificationProblem &P,
                             bool HardenBudget, uint32_t BudgetBound);

/// Complete certificate for a problem the preprocessor refuted before
/// any encoding: the replay records plus a trivial-unsat conclusion.
std::string buildTrivialProof(const smt::VerificationProblem &P);

/// Concatenates \p Header and the per-slot \p Streams into one proof,
/// appending the expected-conclusion count when given (omit it when an
/// empty-core conclusion certifies the whole problem, making per-cube
/// coverage moot).
std::string assembleProof(std::string Header,
                          std::span<const std::string> Streams,
                          std::optional<uint64_t> Conclusions);

} // namespace veriqec::proof

#endif // VERIQEC_PROOF_PROOFLOG_H
