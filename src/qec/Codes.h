//===- qec/Codes.h - Constructions of the benchmark codes -------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructions for the stabilizer codes of the paper's Table 3 plus a
/// few classics used in examples/tests. Codes that the paper cites from
/// sources whose explicit check matrices are not reproducible here are
/// substituted by members of the same family with tool-verified
/// parameters; every substitution is listed in DESIGN.md and each
/// constructor's comment.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_QEC_CODES_H
#define VERIQEC_QEC_CODES_H

#include "qec/StabilizerCode.h"

#include <string>
#include <vector>

namespace veriqec {

// -- Small classics ---------------------------------------------------------

/// The n-qubit bit-flip repetition code [[n,1,1]] (X-distance n): Z_i Z_{i+1}
/// checks. The paper's Example 4.2 and the scalable Coq demonstration use
/// this family.
StabilizerCode makeRepetitionCode(size_t N);

/// The [[7,1,3]] Steane code (Section 2.2).
StabilizerCode makeSteaneCode();

/// The perfect [[5,1,3]] code (XZZXI and cyclic shifts).
StabilizerCode makeFiveQubitCode();

/// A [[6,1,3]] code: the five-qubit code with one ancilla qubit fixed by
/// an extra Z generator. Substitution for the six-qubit code of
/// Calderbank et al. (same parameters; see DESIGN.md).
StabilizerCode makeSixQubitCode();

// -- Surface codes ----------------------------------------------------------

/// Rotated surface code on a Rows x Cols grid of data qubits
/// ([[Rows*Cols, 1, min(Rows, Cols)]]); Rows and Cols must be odd.
/// Qubits are indexed row-major (paper Fig. 5). The logical X is the left
/// column, the logical Z the bottom row.
StabilizerCode makeRotatedSurfaceCode(size_t Rows, size_t Cols);

/// Square rotated surface code of odd distance d, [[d^2, 1, d]].
inline StabilizerCode makeRotatedSurfaceCode(size_t D) {
  return makeRotatedSurfaceCode(D, D);
}

/// XZZX surface code [[dx*dz, 1, min(dx,dz)]] (Bonilla Ataides et al.):
/// the rotated surface code conjugated by Hadamards on the odd
/// sublattice, turning every check into the XZZX form.
StabilizerCode makeXzzxSurfaceCode(size_t Dx, size_t Dz);

// -- Algebraic families -----------------------------------------------------

/// Steane's quantum Reed-Muller code [[2^r - 1, 1, 3]] (r >= 3): X checks
/// are the r coordinate functions, Z checks all monomials of degree
/// 1..r-2 evaluated on the nonzero points of F_2^r.
StabilizerCode makeReedMullerCode(size_t R);

/// Gottesman's quantum Hamming-bound-saturating code
/// [[2^r, 2^r - r - 2, 3]] (r >= 3), built from all-X, all-Z and r mixed
/// generators whose X/Z supports are coordinate functions of k and
/// alpha*k over GF(2^r).
StabilizerCode makeGottesmanCode(size_t R);

/// Cyclic stabilizer code: generators are the cyclic shifts of \p Pattern
/// (a Pauli letter string of length n). Dependent shifts are dropped.
StabilizerCode makeCyclicCode(std::string Name, const std::string &Pattern,
                              size_t Distance = 0);

/// [[11,1,5]] cyclic code (XZZX pattern on an 11-ring); stands in for the
/// quantum dodecacode row of Table 3 (same parameters, tool-verified).
StabilizerCode makeDodecacodeSubstitute();

/// [[19,1,5]] cyclic code; stands in for the honeycomb color code row of
/// Table 3 (same parameters, tool-verified).
StabilizerCode makeHoneycombSubstitute();

// -- Product / LDPC codes ---------------------------------------------------

/// Hypergraph product of two classical parity-check matrices (Tillich-
/// Zemor): Hx = [H1 (x) I | I (x) H2^T], Hz = [I (x) H2 | H1^T (x) I].
StabilizerCode makeHypergraphProductCode(std::string Name,
                                         const BitMatrix &H1,
                                         const BitMatrix &H2,
                                         size_t Distance = 0);

/// [[98,18,4]] hypergraph product of the 7x7 circulant Hamming matrix
/// (polynomial 1 + x + x^3) with itself (Kovalev-Pryadko row of Table 3).
StabilizerCode makeHgp98();

/// Large-block LDPC substitute for Tanner code I ([[343,31,>=4]]): the
/// hypergraph product of circulant Hamming [7] and cyclic [15] matrices,
/// [[210,24,4]].
StabilizerCode makeTannerISubstitute();

/// Paper-scale variant of the Tanner I substitute: hypergraph product of
/// the circulant Hamming [7] and circulant [31] (1 + x^2 + x^5) matrices,
/// [[434,30,4]] — more qubits than the paper's Tanner code I row (343).
/// The distance-mode stress row: its dense GF(2) residue is intractable
/// for CNF-encoded parity chains and needs the solver's native XOR
/// engine (`--xor on`).
StabilizerCode makeTannerIFull();

/// High-rate substitute for Tanner code II ([[125,53,4]]): hypergraph
/// product of the extended-Hamming [8,4,4] self-dual matrix with itself,
/// [[80,16,4]].
StabilizerCode makeTannerIISubstitute();

// -- Error-detection (d=2 / post-selection) codes ----------------------------

/// The 3D color code on the cube, [[8,3,2]] (Kubica-Yoshida-Pastawski).
StabilizerCode makeCube832();

/// [[16,6,4]] self-dual CSS color code CSS(RM(2,4), RM(1,4)); stands in
/// for the carbon code [[12,2,4]] row (detection target, d=4).
StabilizerCode makeCarbonSubstitute();

/// [[3k+8, k, 2]] detection code (iceberg + Z-chain); stands in for the
/// Bravyi-Haah triorthogonal family row.
StabilizerCode makeTriorthogonalSubstitute(size_t K);

/// [[6k+2, 3k, 2]] detection code; stands in for the Campbell-Howard
/// family row.
StabilizerCode makeCampbellHowardSubstitute(size_t K);

// -- Registry ----------------------------------------------------------------

/// How Table 3 verifies a code.
enum class BenchmarkTarget { AccurateCorrection, Detection, ErrorDetection };

/// One row of the Table 3 benchmark.
struct BenchmarkCodeEntry {
  StabilizerCode Code;
  BenchmarkTarget Target;
  std::string PaperParameters; ///< the parameters printed in the paper
};

/// The 14-code benchmark of Table 3 (with documented substitutions), at
/// sizes scaled to this repo's solver budget when \p Small is true.
std::vector<BenchmarkCodeEntry> makeBenchmarkSuite(bool Small = true);

} // namespace veriqec

#endif // VERIQEC_QEC_CODES_H
