//===- qec/StabilizerCode.cpp - Stabilizer code representation ------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "qec/StabilizerCode.h"

#include "smt/BoolExpr.h"
#include "smt/CubeSolver.h"
#include "support/Assert.h"

using namespace veriqec;

namespace {

/// Symplectic row of a Pauli: [x bits | z bits].
BitVector symplecticRow(const Pauli &P) {
  size_t N = P.numQubits();
  BitVector Row(2 * N);
  for (size_t Q = P.xBits().findFirst(); Q < N; Q = P.xBits().findNext(Q + 1))
    Row.set(Q);
  for (size_t Q = P.zBits().findFirst(); Q < N; Q = P.zBits().findNext(Q + 1))
    Row.set(N + Q);
  return Row;
}

/// Pauli (with + sign) from a symplectic row.
Pauli pauliFromRow(const BitVector &Row) {
  size_t N = Row.size() / 2;
  Pauli P(N);
  for (size_t Q = 0; Q != N; ++Q) {
    bool X = Row.get(Q), Z = Row.get(N + Q);
    if (X && Z)
      P.setKind(Q, PauliKind::Y);
    else if (X)
      P.setKind(Q, PauliKind::X);
    else if (Z)
      P.setKind(Q, PauliKind::Z);
  }
  return P.abs();
}

/// Swaps the X and Z halves: commuting-with tests become plain GF(2) dot
/// products against swapped rows.
BitVector swapHalves(const BitVector &Row) {
  size_t N = Row.size() / 2;
  BitVector Out(2 * N);
  for (size_t I = Row.findFirst(); I < Row.size(); I = Row.findNext(I + 1))
    Out.set(I < N ? I + N : I - N);
  return Out;
}

bool symplecticProduct(const BitVector &A, const BitVector &B) {
  return A.dotParity(swapHalves(B));
}

} // namespace

StabilizerCode StabilizerCode::fromGenerators(std::string Name,
                                              std::vector<Pauli> Generators,
                                              size_t Distance) {
  assert(!Generators.empty() && "a code needs at least one generator");
  StabilizerCode Code;
  Code.Name = std::move(Name);
  Code.NumQubits = Generators.front().numQubits();
  Code.Distance = Distance;

  // Drop dependent generators (keep a maximal independent prefix).
  BitMatrix Accumulated;
  for (Pauli &G : Generators) {
    assert(G.numQubits() == Code.NumQubits && "generator size mismatch");
    assert(G.isHermitian() && "generators must be Hermitian");
    BitVector Row = symplecticRow(G);
    BitMatrix Test = Accumulated;
    Test.appendRow(Row);
    if (Test.rank() == Test.numRows()) {
      Accumulated = std::move(Test);
      Code.Generators.push_back(G.abs());
    }
  }
  assert(Code.Generators.size() <= Code.NumQubits &&
         "too many independent generators");
  Code.NumLogical = Code.NumQubits - Code.Generators.size();
  Code.deriveLogicals();
  return Code;
}

StabilizerCode StabilizerCode::fromCss(std::string Name, const BitMatrix &Hx,
                                       const BitMatrix &Hz, size_t Distance) {
  assert(Hx.numCols() == Hz.numCols() && "check matrices width mismatch");
  size_t N = Hx.numCols();
  std::vector<Pauli> Gens;
  auto addRows = [&](const BitMatrix &H, PauliKind Kind) {
    for (size_t R = 0; R != H.numRows(); ++R) {
      Pauli P(N);
      for (size_t Q = H.row(R).findFirst(); Q < N;
           Q = H.row(R).findNext(Q + 1))
        P.setKind(Q, Kind);
      Gens.push_back(P);
    }
  };
  addRows(Hx, PauliKind::X);
  addRows(Hz, PauliKind::Z);
  return fromGenerators(std::move(Name), std::move(Gens), Distance);
}

bool StabilizerCode::isCss() const {
  for (const Pauli &G : Generators)
    if (G.xBits().any() && G.zBits().any())
      return false;
  return true;
}

BitMatrix StabilizerCode::xCheckMatrix() const {
  BitMatrix H(0, NumQubits);
  for (const Pauli &G : Generators)
    if (G.xBits().any() && G.zBits().none())
      H.appendRow(G.xBits());
  return H;
}

BitMatrix StabilizerCode::zCheckMatrix() const {
  BitMatrix H(0, NumQubits);
  for (const Pauli &G : Generators)
    if (G.zBits().any() && G.xBits().none())
      H.appendRow(G.zBits());
  return H;
}

BitMatrix StabilizerCode::symplecticMatrix() const {
  BitMatrix M(0, 2 * NumQubits);
  for (const Pauli &G : Generators)
    M.appendRow(symplecticRow(G));
  return M;
}

BitVector StabilizerCode::syndromeOf(const Pauli &Error) const {
  BitVector S(Generators.size());
  for (size_t I = 0; I != Generators.size(); ++I)
    if (!Generators[I].commutesWith(Error))
      S.set(I);
  return S;
}

bool StabilizerCode::inStabilizerGroup(const Pauli &P) const {
  return symplecticMatrix().rowSpaceContains(symplecticRow(P));
}

bool StabilizerCode::isLogicalOperator(const Pauli &P) const {
  if (syndromeOf(P).any())
    return false;
  for (size_t I = 0; I != NumLogical; ++I)
    if (!P.commutesWith(LogicalX[I]) || !P.commutesWith(LogicalZ[I]))
      return true;
  return false;
}

void StabilizerCode::deriveLogicals() {
  size_t K = NumLogical;
  LogicalX.clear();
  LogicalZ.clear();
  if (K == 0)
    return;

  // Normalizer: rows v with symplectic product 0 against every generator,
  // i.e. kernel of the generator matrix with swapped halves.
  BitMatrix Swapped(0, 2 * NumQubits);
  for (const Pauli &G : Generators)
    Swapped.appendRow(swapHalves(symplecticRow(G)));
  std::vector<BitVector> Normalizer = Swapped.nullspaceBasis();

  // Quotient by the stabilizer row space: keep vectors independent of the
  // generators and of previously kept vectors.
  BitMatrix Span = symplecticMatrix();
  std::vector<BitVector> Quotient;
  for (const BitVector &V : Normalizer) {
    BitMatrix Test = Span;
    Test.appendRow(V);
    if (Test.rank() == Test.numRows()) {
      Span = std::move(Test);
      Quotient.push_back(V);
      if (Quotient.size() == 2 * K)
        break;
    }
  }
  assert(Quotient.size() == 2 * K && "quotient dimension mismatch");

  // Symplectic Gram-Schmidt: pair the quotient basis into (X_i, Z_i) with
  // the canonical anticommutation pattern.
  std::vector<BitVector> Pool = std::move(Quotient);
  while (!Pool.empty()) {
    BitVector U = Pool.front();
    Pool.erase(Pool.begin());
    size_t Partner = Pool.size();
    for (size_t I = 0; I != Pool.size(); ++I)
      if (symplecticProduct(U, Pool[I])) {
        Partner = I;
        break;
      }
    assert(Partner != Pool.size() && "non-degenerate form must pair up");
    BitVector V = Pool[Partner];
    Pool.erase(Pool.begin() + Partner);
    for (BitVector &W : Pool) {
      if (symplecticProduct(W, V))
        W ^= U;
      if (symplecticProduct(W, U))
        W ^= V;
    }
    LogicalX.push_back(pauliFromRow(U));
    LogicalZ.push_back(pauliFromRow(V));
  }

  // For CSS codes prefer pure-type logicals: if X_i is pure Z and Z_i is
  // pure X, swap the pair.
  for (size_t I = 0; I != K; ++I) {
    bool XiPureZ = LogicalX[I].xBits().none();
    bool ZiPureX = LogicalZ[I].zBits().none();
    if (XiPureZ && ZiPureX)
      std::swap(LogicalX[I], LogicalZ[I]);
  }
}

std::optional<std::string> StabilizerCode::validate() const {
  if (Generators.size() + NumLogical != NumQubits)
    return "generator count does not match n - k";
  for (size_t I = 0; I != Generators.size(); ++I) {
    if (!Generators[I].isHermitian() || Generators[I].signBit())
      return "generator " + std::to_string(I) + " is not a +1 Hermitian";
    for (size_t J = I + 1; J != Generators.size(); ++J)
      if (!Generators[I].commutesWith(Generators[J]))
        return "generators " + std::to_string(I) + " and " +
               std::to_string(J) + " anticommute";
  }
  if (symplecticMatrix().rank() != Generators.size())
    return "generators are dependent";
  if (LogicalX.size() != NumLogical || LogicalZ.size() != NumLogical)
    return "wrong number of logical operators";
  for (size_t I = 0; I != NumLogical; ++I) {
    for (size_t G = 0; G != Generators.size(); ++G) {
      if (!LogicalX[I].commutesWith(Generators[G]))
        return "logical X" + std::to_string(I) + " anticommutes with g" +
               std::to_string(G);
      if (!LogicalZ[I].commutesWith(Generators[G]))
        return "logical Z" + std::to_string(I) + " anticommutes with g" +
               std::to_string(G);
    }
    for (size_t J = 0; J != NumLogical; ++J) {
      bool ExpectAnti = I == J;
      if (LogicalX[I].commutesWith(LogicalZ[J]) == ExpectAnti)
        return "logical pairing violated at (" + std::to_string(I) + "," +
               std::to_string(J) + ")";
      if (I != J && (!LogicalX[I].commutesWith(LogicalX[J]) ||
                     !LogicalZ[I].commutesWith(LogicalZ[J])))
        return "logicals of equal type must commute";
    }
    if (inStabilizerGroup(LogicalX[I]) || inStabilizerGroup(LogicalZ[I]))
      return "logical operator lies in the stabilizer group";
  }
  return std::nullopt;
}

void StabilizerCode::conjugateBy(GateKind Kind, size_t Q0, size_t Q1) {
  for (Pauli &G : Generators) {
    G.conjugate(Kind, Q0, Q1);
    if (G.signBit())
      G.negate(); // generators are defined up to sign; keep +.
  }
  for (Pauli &L : LogicalX) {
    L.conjugate(Kind, Q0, Q1);
    if (L.signBit())
      L.negate();
  }
  for (Pauli &L : LogicalZ) {
    L.conjugate(Kind, Q0, Q1);
    if (L.signBit())
      L.negate();
  }
}

namespace {

/// Builds "P anticommutes with G" as a parity over the per-qubit error
/// variables Xq/Zq: sum over qubits of (x_q * Gz_q + z_q * Gx_q).
smt::ExprRef commutationParity(smt::BoolContext &Ctx, const Pauli &G,
                               const std::vector<smt::ExprRef> &XVars,
                               const std::vector<smt::ExprRef> &ZVars) {
  std::vector<smt::ExprRef> Terms;
  size_t N = G.numQubits();
  for (size_t Q = 0; Q != N; ++Q) {
    if (G.zBits().get(Q))
      Terms.push_back(XVars[Q]);
    if (G.xBits().get(Q))
      Terms.push_back(ZVars[Q]);
  }
  if (Terms.empty())
    return Ctx.mkFalse();
  return Ctx.mkXor(std::move(Terms));
}

size_t estimateDistanceImpl(const StabilizerCode &Code, size_t MaxWeight,
                            int TypeFilter /* -1 any, 0 X-type, 1 Z-type */) {
  using namespace smt;
  size_t N = Code.NumQubits;
  BoolContext Ctx;
  std::vector<ExprRef> XVars, ZVars, Support;
  for (size_t Q = 0; Q != N; ++Q) {
    XVars.push_back(TypeFilter == 1 ? Ctx.mkFalse()
                                    : Ctx.mkVar("x" + std::to_string(Q)));
    ZVars.push_back(TypeFilter == 0 ? Ctx.mkFalse()
                                    : Ctx.mkVar("z" + std::to_string(Q)));
    Support.push_back(Ctx.mkOr(XVars[Q], ZVars[Q]));
  }

  std::vector<ExprRef> Constraints;
  // Undetectable: commutes with every generator.
  for (const Pauli &G : Code.Generators)
    Constraints.push_back(
        Ctx.mkNot(commutationParity(Ctx, G, XVars, ZVars)));
  // Logical: anticommutes with at least one logical operator.
  std::vector<ExprRef> AntiAny;
  for (size_t I = 0; I != Code.NumLogical; ++I) {
    AntiAny.push_back(commutationParity(Ctx, Code.LogicalX[I], XVars, ZVars));
    AntiAny.push_back(commutationParity(Ctx, Code.LogicalZ[I], XVars, ZVars));
  }
  Constraints.push_back(Ctx.mkOr(std::move(AntiAny)));

  for (size_t W = 1; W <= MaxWeight; ++W) {
    std::vector<ExprRef> All = Constraints;
    All.push_back(Ctx.mkAtMost(Support, static_cast<uint32_t>(W)));
    SolveOutcome Out = solveExpr(Ctx, Ctx.mkAnd(std::move(All)));
    if (Out.Result == sat::SolveResult::Sat)
      return W;
  }
  return 0;
}

} // namespace

size_t veriqec::estimateDistance(const StabilizerCode &Code,
                                 size_t MaxWeight) {
  return estimateDistanceImpl(Code, MaxWeight, -1);
}

size_t veriqec::estimateDistanceOfType(const StabilizerCode &Code, bool XType,
                                       size_t MaxWeight) {
  return estimateDistanceImpl(Code, MaxWeight, XType ? 0 : 1);
}
