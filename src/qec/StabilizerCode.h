//===- qec/StabilizerCode.h - Stabilizer code representation ----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The [[n,k,d]] stabilizer code abstraction (Section 2.1 of the paper):
/// a minimal generating set of n-k commuting Pauli generators plus k pairs
/// of logical operators. Codes can be built from explicit generators or,
/// for CSS codes, from X/Z parity-check matrices; logical operators are
/// derived automatically by symplectic elimination. A SAT-based distance
/// estimator implements the paper's "estimation given by our tool"
/// (Table 3 caption).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_QEC_STABILIZERCODE_H
#define VERIQEC_QEC_STABILIZERCODE_H

#include "gf2/BitMatrix.h"
#include "pauli/Pauli.h"

#include <optional>
#include <string>
#include <vector>

namespace veriqec {

/// An [[n,k,d]] stabilizer code.
class StabilizerCode {
public:
  std::string Name;
  size_t NumQubits = 0;      ///< n
  size_t NumLogical = 0;     ///< k
  size_t Distance = 0;       ///< declared distance (0 = unknown)
  bool DistanceIsEstimate = false;

  /// n-k independent, commuting, Hermitian generators with + signs.
  std::vector<Pauli> Generators;
  /// k logical X operators; LogicalX[i] anticommutes exactly with
  /// LogicalZ[i] among the logicals and commutes with all generators.
  std::vector<Pauli> LogicalX;
  /// k logical Z operators.
  std::vector<Pauli> LogicalZ;

  /// Builds a code from explicit generators, deriving logical operators
  /// via symplectic elimination. Aborts on inconsistent input.
  static StabilizerCode fromGenerators(std::string Name,
                                       std::vector<Pauli> Generators,
                                       size_t Distance = 0);

  /// Builds a CSS code from X- and Z-type parity check matrices (rows of
  /// \p Hx become X-type generators). Dependent rows are dropped. Logical
  /// operators are pure X / pure Z.
  static StabilizerCode fromCss(std::string Name, const BitMatrix &Hx,
                                const BitMatrix &Hz, size_t Distance = 0);

  /// True if every generator is purely X-type or purely Z-type.
  bool isCss() const;

  /// X-type parity check matrix (rows = supports of X-type generators).
  BitMatrix xCheckMatrix() const;
  /// Z-type parity check matrix.
  BitMatrix zCheckMatrix() const;

  /// The (n-k) x 2n symplectic matrix [X | Z] of the generators.
  BitMatrix symplecticMatrix() const;

  /// Syndrome of a Pauli error: bit i is 1 iff the error anticommutes
  /// with generator i.
  BitVector syndromeOf(const Pauli &Error) const;

  /// True if \p P is a member of the stabilizer group up to sign.
  bool inStabilizerGroup(const Pauli &P) const;

  /// True if \p P commutes with every generator but acts non-trivially on
  /// the logical qubits (i.e. is an undetectable logical error).
  bool isLogicalOperator(const Pauli &P) const;

  /// Structural validation: commutation, independence, logical pairing.
  /// \returns nullopt on success, else a description of the violation.
  std::optional<std::string> validate() const;

  /// Applies a Clifford gate to the code definition (conjugates all
  /// generators and logicals); used e.g. to derive XZZX codes from CSS
  /// surface codes by local Hadamards.
  void conjugateBy(GateKind Kind, size_t Q0, size_t Q1 = ~size_t{0});

private:
  void deriveLogicals();
};

/// Minimum weight of an undetectable logical operator, found by iterative
/// SAT queries (weight w = 1, 2, ... up to \p MaxWeight). \returns 0 if no
/// logical operator of weight <= MaxWeight exists.
size_t estimateDistance(const StabilizerCode &Code, size_t MaxWeight);

/// Minimum weight of a pure-X-type (or pure-Z-type) logical, for CSS
/// distance splits (d_x / d_z).
size_t estimateDistanceOfType(const StabilizerCode &Code, bool XType,
                              size_t MaxWeight);

} // namespace veriqec

#endif // VERIQEC_QEC_STABILIZERCODE_H
