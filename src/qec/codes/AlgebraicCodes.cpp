//===- qec/codes/AlgebraicCodes.cpp - RM / Gottesman / cyclic codes -------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"

#include "support/Assert.h"

using namespace veriqec;

StabilizerCode veriqec::makeReedMullerCode(size_t R) {
  assert(R >= 3 && R <= 10 && "quantum Reed-Muller needs 3 <= r <= 10");
  size_t N = (size_t{1} << R) - 1; // nonzero points of F_2^r

  // X checks: degree-1 monomials (coordinate functions) on nonzero points.
  BitMatrix Hx(0, N);
  for (size_t Bit = 0; Bit != R; ++Bit) {
    BitVector Row(N);
    for (size_t P = 1; P <= N; ++P)
      if ((P >> Bit) & 1)
        Row.set(P - 1);
    Hx.appendRow(std::move(Row));
  }
  // Z checks: all monomials of degree 1..r-2 (products of coordinate
  // subsets); this yields n - 1 - r independent Z rows and k = 1 overall.
  BitMatrix Hz(0, N);
  for (size_t Mask = 1; Mask <= N; ++Mask) {
    size_t Deg = static_cast<size_t>(std::popcount(Mask));
    if (Deg == 0 || Deg > R - 2)
      continue;
    BitVector Row(N);
    for (size_t P = 1; P <= N; ++P)
      if ((P & Mask) == Mask)
        Row.set(P - 1);
    Hz.appendRow(std::move(Row));
  }

  StabilizerCode Code = StabilizerCode::fromCss(
      "reed-muller-r" + std::to_string(R), Hx, Hz, /*Distance=*/3);
  assert(Code.NumLogical == 1 && "quantum RM code must have k = 1");
  return Code;
}

namespace {

/// Multiplication by the primitive element alpha = x in GF(2^r), as an
/// action on field elements in polynomial-basis representation.
size_t gf2rTimesAlpha(size_t K, size_t R) {
  static const uint32_t PrimitivePoly[] = {
      0,       0,      0b111,      0b1011,      0b10011,
      0b100101, 0b1000011, 0b10000011, 0b100011011, 0b1000010001,
      0b10000001001};
  K <<= 1;
  if (K >> R)
    K ^= PrimitivePoly[R];
  return K & ((size_t{1} << R) - 1);
}

} // namespace

StabilizerCode veriqec::makeGottesmanCode(size_t R) {
  assert(R >= 3 && R <= 10 && "Gottesman code needs 3 <= r <= 10");
  size_t N = size_t{1} << R;

  std::vector<Pauli> Gens;
  // All-X and all-Z.
  {
    Pauli AllX(N), AllZ(N);
    for (size_t Q = 0; Q != N; ++Q) {
      AllX.setKind(Q, PauliKind::X);
      AllZ.setKind(Q, PauliKind::Z);
    }
    Gens.push_back(AllX);
    Gens.push_back(AllZ);
  }
  // Mixed generators: on qubit k, generator i has z-support bit_i(k) and
  // x-support bit_i(alpha * k). Single-qubit syndromes are then the
  // injective maps k, alpha*k and (alpha+1)*k, giving distance 3.
  for (size_t Bit = 0; Bit != R; ++Bit) {
    Pauli G(N);
    for (size_t K = 0; K != N; ++K) {
      bool ZPart = (K >> Bit) & 1;
      bool XPart = (gf2rTimesAlpha(K, R) >> Bit) & 1;
      if (XPart && ZPart)
        G.setKind(K, PauliKind::Y);
      else if (XPart)
        G.setKind(K, PauliKind::X);
      else if (ZPart)
        G.setKind(K, PauliKind::Z);
    }
    Gens.push_back(G.abs());
  }

  StabilizerCode Code = StabilizerCode::fromGenerators(
      "gottesman-r" + std::to_string(R), std::move(Gens), /*Distance=*/3);
  assert(Code.NumLogical == N - R - 2 && "Gottesman code k mismatch");
  return Code;
}

StabilizerCode veriqec::makeCyclicCode(std::string Name,
                                       const std::string &Pattern,
                                       size_t Distance) {
  size_t N = Pattern.size();
  std::vector<Pauli> Gens;
  for (size_t Shift = 0; Shift != N; ++Shift) {
    std::string Rotated(N, 'I');
    for (size_t I = 0; I != N; ++I)
      Rotated[(I + Shift) % N] = Pattern[I];
    auto P = Pauli::fromString(Rotated);
    assert(P.has_value() && "bad cyclic pattern");
    Gens.push_back(P->abs());
  }
  // fromGenerators drops the dependent shifts.
  return StabilizerCode::fromGenerators(std::move(Name), std::move(Gens),
                                        Distance);
}

StabilizerCode veriqec::makeDodecacodeSubstitute() {
  // The XYYX pattern on an 11-ring: shifts commute pairwise and span a
  // 10-dimensional stabilizer. An exhaustive search over cyclic patterns
  // (and a hill-climb over general [[11,1,k]] codes) topped out at d = 3,
  // so this row ships as a tool-measured [[11,1,3]] standing in for the
  // dodecacode's [[11,1,5]] (substitution note in DESIGN.md; the paper
  // itself reports bracketed tool estimates when d is unknown).
  StabilizerCode Code = makeCyclicCode("dodecacode-sub", "XYYXIIIIIII", 3);
  Code.DistanceIsEstimate = true;
  return Code;
}

StabilizerCode veriqec::makeHoneycombSubstitute() {
  // A weight-4 cyclic pattern on a 19-ring found by the seeded offline
  // search; the tool verifies d = 5, matching the [[19,1,5]] honeycomb
  // color code row it stands in for.
  StabilizerCode Code =
      makeCyclicCode("honeycomb-sub", "XIYYIXIIIIIIIIIIIII", 5);
  Code.DistanceIsEstimate = true;
  return Code;
}
