//===- qec/codes/BasicCodes.cpp - Repetition/Steane/5-qubit codes ---------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"

#include "support/Assert.h"

using namespace veriqec;

StabilizerCode veriqec::makeRepetitionCode(size_t N) {
  assert(N >= 2 && "repetition code needs >= 2 qubits");
  std::vector<Pauli> Gens;
  for (size_t I = 0; I + 1 != N; ++I) {
    Pauli G(N);
    G.setKind(I, PauliKind::Z);
    G.setKind(I + 1, PauliKind::Z);
    Gens.push_back(G);
  }
  // Bit-flip distance is N; the overall distance is 1 (a single Z is a
  // logical), which is the standard caveat for repetition codes.
  StabilizerCode Code =
      StabilizerCode::fromGenerators("repetition-" + std::to_string(N),
                                     std::move(Gens), /*Distance=*/N);
  Code.DistanceIsEstimate = false;
  return Code;
}

StabilizerCode veriqec::makeSteaneCode() {
  const char *GenStrings[6] = {
      "XIXIXIX", "IXXIIXX", "IIIXXXX", // g1..g3 of Section 2.2
      "ZIZIZIZ", "IZZIIZZ", "IIIZZZZ", // g4..g6
  };
  std::vector<Pauli> Gens;
  for (const char *S : GenStrings)
    Gens.push_back(*Pauli::fromString(S));
  return StabilizerCode::fromGenerators("steane", std::move(Gens), 3);
}

StabilizerCode veriqec::makeFiveQubitCode() {
  const char *GenStrings[4] = {"XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"};
  std::vector<Pauli> Gens;
  for (const char *S : GenStrings)
    Gens.push_back(*Pauli::fromString(S));
  return StabilizerCode::fromGenerators("five-qubit", std::move(Gens), 3);
}

StabilizerCode veriqec::makeSixQubitCode() {
  // The five-qubit code padded with one ancilla pinned by Z6. Same
  // [[6,1,3]] parameters as the six-qubit code of Calderbank et al.;
  // substitution documented in DESIGN.md.
  const char *GenStrings[5] = {"XZZXII", "IXZZXI", "XIXZZI", "ZXIXZI",
                               "IIIIIZ"};
  std::vector<Pauli> Gens;
  for (const char *S : GenStrings)
    Gens.push_back(*Pauli::fromString(S));
  return StabilizerCode::fromGenerators("six-qubit", std::move(Gens), 3);
}
