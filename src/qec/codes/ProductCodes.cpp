//===- qec/codes/ProductCodes.cpp - HGP and detection codes ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"

#include "support/Assert.h"

using namespace veriqec;

namespace {

/// Circulant n x n matrix whose first row is the coefficient vector of
/// \p Poly (bit i = coefficient of x^i).
BitMatrix circulant(size_t N, uint64_t Poly) {
  BitMatrix M(N, N);
  for (size_t R = 0; R != N; ++R)
    for (size_t I = 0; I != N; ++I)
      if ((Poly >> I) & 1)
        M.set(R, (R + I) % N);
  return M;
}

/// Kronecker product of GF(2) matrices.
BitMatrix kronecker(const BitMatrix &A, const BitMatrix &B) {
  BitMatrix Out(A.numRows() * B.numRows(), A.numCols() * B.numCols());
  for (size_t AR = 0; AR != A.numRows(); ++AR)
    for (size_t AC = 0; AC != A.numCols(); ++AC) {
      if (!A.get(AR, AC))
        continue;
      for (size_t BR = 0; BR != B.numRows(); ++BR)
        for (size_t BC = 0; BC != B.numCols(); ++BC)
          if (B.get(BR, BC))
            Out.set(AR * B.numRows() + BR, AC * B.numCols() + BC);
    }
  return Out;
}

/// Horizontal concatenation [A | B].
BitMatrix hconcat(const BitMatrix &A, const BitMatrix &B) {
  assert(A.numRows() == B.numRows() && "row count mismatch");
  BitMatrix Out(A.numRows(), A.numCols() + B.numCols());
  for (size_t R = 0; R != A.numRows(); ++R) {
    for (size_t C = 0; C != A.numCols(); ++C)
      if (A.get(R, C))
        Out.set(R, C);
    for (size_t C = 0; C != B.numCols(); ++C)
      if (B.get(R, C))
        Out.set(R, A.numCols() + C);
  }
  return Out;
}

} // namespace

StabilizerCode veriqec::makeHypergraphProductCode(std::string Name,
                                                  const BitMatrix &H1,
                                                  const BitMatrix &H2,
                                                  size_t Distance) {
  size_t N1 = H1.numCols(), M1 = H1.numRows();
  size_t N2 = H2.numCols(), M2 = H2.numRows();
  // Hx = [H1 (x) I_n2 | I_m1 (x) H2^T]; Hz = [I_n1 (x) H2 | H1^T (x) I_m2].
  BitMatrix Hx = hconcat(kronecker(H1, BitMatrix::identity(N2)),
                         kronecker(BitMatrix::identity(M1), H2.transposed()));
  BitMatrix Hz = hconcat(kronecker(BitMatrix::identity(N1), H2),
                         kronecker(H1.transposed(), BitMatrix::identity(M2)));
  StabilizerCode Code =
      StabilizerCode::fromCss(std::move(Name), Hx, Hz, Distance);
  Code.DistanceIsEstimate = Distance == 0;
  return Code;
}

StabilizerCode veriqec::makeHgp98() {
  // 7x7 circulant of the Hamming polynomial 1 + x + x^3 (rank 4; kernel is
  // the [7,3,4] simplex code), giving [[98,18,4]].
  BitMatrix H = circulant(7, 0b1011);
  return makeHypergraphProductCode("hgp-98", H, H, /*Distance=*/4);
}

StabilizerCode veriqec::makeTannerISubstitute() {
  // Mixed product of the circulant Hamming [7] matrix and the circulant
  // cyclic [15] matrix of 1 + x + x^4 -> [[210,24,4]]; stands in for the
  // Tanner code I row (large-block LDPC detection target).
  BitMatrix H7 = circulant(7, 0b1011);
  BitMatrix H15 = circulant(15, 0b10011);
  StabilizerCode Code =
      makeHypergraphProductCode("tanner-i-sub", H7, H15, /*Distance=*/4);
  return Code;
}

StabilizerCode veriqec::makeTannerIFull() {
  // Product of the circulant Hamming [7] matrix with the circulant [31]
  // matrix of the primitive polynomial 1 + x^2 + x^5 (rank 26; kernel is
  // the [31,5,16] simplex code). Distance inherits the [7,3,4] factor:
  // min(4, 16) = 4, tool-verified by `veriqec distance`.
  BitMatrix H7 = circulant(7, 0b1011);
  BitMatrix H31 = circulant(31, 0b100101);
  return makeHypergraphProductCode("tanner-i-full", H7, H31, /*Distance=*/4);
}

StabilizerCode veriqec::makeTannerIISubstitute() {
  // Self-product of the [8,4,4] extended Hamming parity-check matrix ->
  // [[80,16,4]]; stands in for the Tanner code II row (high-rate
  // detection target).
  BitMatrix H(4, 8);
  const uint8_t Rows[4] = {0b11111111, 0b00001111, 0b00110011, 0b01010101};
  for (size_t R = 0; R != 4; ++R)
    for (size_t C = 0; C != 8; ++C)
      if ((Rows[R] >> (7 - C)) & 1)
        H.set(R, C);
  return makeHypergraphProductCode("tanner-ii-sub", H, H, /*Distance=*/4);
}

StabilizerCode veriqec::makeCube832() {
  // Qubits on the cube's vertices, indexed by their coordinate bits
  // (x + 2y + 4z). One global X stabilizer and four independent Z faces.
  BitMatrix Hx(1, 8);
  for (size_t Q = 0; Q != 8; ++Q)
    Hx.set(0, Q);
  auto face = [](int Axis, int Value) {
    BitVector Row(8);
    for (size_t Q = 0; Q != 8; ++Q)
      if (((Q >> Axis) & 1) == static_cast<size_t>(Value))
        Row.set(Q);
    return Row;
  };
  BitMatrix Hz(0, 8);
  Hz.appendRow(face(0, 0));
  Hz.appendRow(face(0, 1));
  Hz.appendRow(face(1, 0));
  Hz.appendRow(face(2, 0));
  StabilizerCode Code = StabilizerCode::fromCss("cube-832", Hx, Hz, 2);
  assert(Code.NumLogical == 3 && "cube code must have k = 3");
  return Code;
}

StabilizerCode veriqec::makeCarbonSubstitute() {
  // CSS(RM(2,4), RM(1,4)) = the [[16,6,4]] color code: X checks from the
  // generator matrix of RM(1,4) (degree <= 1 on all 16 points), Z checks
  // identical (the code is self-dual).
  size_t N = 16;
  BitMatrix G(0, N);
  BitVector Ones(N, true);
  G.appendRow(Ones);
  for (size_t Bit = 0; Bit != 4; ++Bit) {
    BitVector Row(N);
    for (size_t P = 0; P != N; ++P)
      if ((P >> Bit) & 1)
        Row.set(P);
    G.appendRow(std::move(Row));
  }
  return StabilizerCode::fromCss("carbon-sub-1664", G, G, /*Distance=*/4);
}

StabilizerCode veriqec::makeTriorthogonalSubstitute(size_t K) {
  // Iceberg [[n, n-2, 2]] on n = 3k+8 qubits, cut down to k logicals by a
  // Z-chain of 2k+6 weight-2 checks.
  size_t N = 3 * K + 8;
  assert(N % 2 == 0 && "needs even n (even k)");
  BitMatrix Hx(1, N);
  for (size_t Q = 0; Q != N; ++Q)
    Hx.set(0, Q);
  BitMatrix Hz(0, N);
  BitVector AllZ(N, true);
  Hz.appendRow(AllZ);
  for (size_t I = 0; I != 2 * K + 6; ++I) {
    BitVector Row(N);
    Row.set(I);
    Row.set(I + 1);
    Hz.appendRow(std::move(Row));
  }
  StabilizerCode Code = StabilizerCode::fromCss(
      "triorthogonal-sub-k" + std::to_string(K), Hx, Hz, 2);
  assert(Code.NumLogical == K && "triorthogonal substitute k mismatch");
  return Code;
}

StabilizerCode veriqec::makeCampbellHowardSubstitute(size_t K) {
  // Iceberg on n = 6k+2 qubits with a Z-chain of 3k checks -> [[6k+2,3k,2]].
  size_t N = 6 * K + 2;
  BitMatrix Hx(1, N);
  for (size_t Q = 0; Q != N; ++Q)
    Hx.set(0, Q);
  BitMatrix Hz(0, N);
  BitVector AllZ(N, true);
  Hz.appendRow(AllZ);
  for (size_t I = 0; I != 3 * K; ++I) {
    BitVector Row(N);
    Row.set(I);
    Row.set(I + 1);
    Hz.appendRow(std::move(Row));
  }
  StabilizerCode Code = StabilizerCode::fromCss(
      "campbell-howard-sub-k" + std::to_string(K), Hx, Hz, 2);
  assert(Code.NumLogical == 3 * K && "Campbell-Howard substitute k mismatch");
  return Code;
}

std::vector<BenchmarkCodeEntry> veriqec::makeBenchmarkSuite(bool Small) {
  std::vector<BenchmarkCodeEntry> Suite;
  auto add = [&](StabilizerCode Code, BenchmarkTarget Target,
                 std::string PaperParams) {
    Suite.push_back({std::move(Code), Target, std::move(PaperParams)});
  };
  using BT = BenchmarkTarget;
  // Accurate-correction targets (Table 3, first block). The paper runs
  // surface d=11 / RM r=8 / XZZX 9x11 / Gottesman r=8 on a 256-core
  // server; Small scales those rows to this repo's solver budget.
  add(makeSteaneCode(), BT::AccurateCorrection, "[[7,1,3]]");
  add(makeRotatedSurfaceCode(Small ? 5 : 11), BT::AccurateCorrection,
      "[[d^2,1,d]] (d=11)");
  add(makeSixQubitCode(), BT::AccurateCorrection, "[[6,1,3]]");
  add(makeDodecacodeSubstitute(), BT::AccurateCorrection, "[[11,1,5]]");
  add(makeReedMullerCode(Small ? 4 : 8), BT::AccurateCorrection,
      "[[2^r-1,1,3]] (r=8)");
  add(makeXzzxSurfaceCode(Small ? 3 : 9, Small ? 5 : 11),
      BT::AccurateCorrection, "[[dx*dz,1,min]] (9x11)");
  add(makeGottesmanCode(Small ? 4 : 8), BT::AccurateCorrection,
      "[[2^r,2^r-r-2,3]] (r=8)");
  add(makeHoneycombSubstitute(), BT::AccurateCorrection, "[[19,1,5]]");
  // Detection targets.
  add(makeTannerISubstitute(), BT::Detection, "[[343,31,>=4]]");
  add(makeTannerIISubstitute(), BT::Detection, "[[125,53,4]]");
  add(makeHgp98(), BT::Detection, "[[98,18,4]]");
  // Error-detection codes (d=2 family, post-selection).
  add(makeCube832(), BT::ErrorDetection, "[[8,3,2]]");
  add(makeTriorthogonalSubstitute(Small ? 8 : 64), BT::ErrorDetection,
      "[[3k+8,k,2]] (k=64)");
  add(makeCarbonSubstitute(), BT::ErrorDetection, "[[12,2,4]]");
  add(makeCampbellHowardSubstitute(2), BT::ErrorDetection,
      "[[6k+2,3k,2]] (k=2)");
  return Suite;
}
