//===- qec/codes/SurfaceCodes.cpp - Rotated surface and XZZX codes --------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rotated surface code of the paper's Fig. 5 and the XZZX variant.
/// Construction (for a Rows x Cols grid of data qubits, both odd):
///   * bulk faces (r, c), 0 <= r <= Rows-2, 0 <= c <= Cols-2, acting on
///     the four corners {(r,c),(r,c+1),(r+1,c),(r+1,c+1)}: X-type when
///     (r+c) is odd, Z-type when even;
///   * weight-2 X checks on the top edge at even columns and on the
///     bottom edge at columns with the opposite parity;
///   * weight-2 Z checks on the left edge at odd rows and on the right
///     edge at even rows.
/// The logical X is the left column, the logical Z the bottom row.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"

#include "support/Assert.h"

using namespace veriqec;

StabilizerCode veriqec::makeRotatedSurfaceCode(size_t Rows, size_t Cols) {
  assert(Rows >= 2 && Cols >= 2 && (Rows % 2) == 1 && (Cols % 2) == 1 &&
         "rotated surface code needs odd dimensions");
  size_t N = Rows * Cols;
  auto qubit = [&](size_t R, size_t C) { return R * Cols + C; };

  std::vector<Pauli> Gens;
  // Bulk plaquettes.
  for (size_t R = 0; R + 1 != Rows; ++R)
    for (size_t C = 0; C + 1 != Cols; ++C) {
      PauliKind Kind = ((R + C) % 2 == 1) ? PauliKind::X : PauliKind::Z;
      Pauli G(N);
      G.setKind(qubit(R, C), Kind);
      G.setKind(qubit(R, C + 1), Kind);
      G.setKind(qubit(R + 1, C), Kind);
      G.setKind(qubit(R + 1, C + 1), Kind);
      Gens.push_back(G);
    }
  // Top/bottom boundary X checks. A top check at column c needs its
  // neighbouring bulk faces (0, c-1) and (0, c+1) to be X-type, i.e. c
  // even; on the bottom row the parity flips with Rows odd.
  for (size_t C = 0; C + 1 != Cols; C += 2) {
    Pauli G(N);
    G.setKind(qubit(0, C), PauliKind::X);
    G.setKind(qubit(0, C + 1), PauliKind::X);
    Gens.push_back(G);
  }
  for (size_t C = 1; C + 1 < Cols; C += 2) {
    Pauli G(N);
    G.setKind(qubit(Rows - 1, C), PauliKind::X);
    G.setKind(qubit(Rows - 1, C + 1), PauliKind::X);
    Gens.push_back(G);
  }
  // Left/right boundary Z checks (left at odd rows, right at even rows).
  for (size_t R = 1; R + 1 < Rows; R += 2) {
    Pauli G(N);
    G.setKind(qubit(R, 0), PauliKind::Z);
    G.setKind(qubit(R + 1, 0), PauliKind::Z);
    Gens.push_back(G);
  }
  for (size_t R = 0; R + 1 != Rows; R += 2) {
    Pauli G(N);
    G.setKind(qubit(R, Cols - 1), PauliKind::Z);
    G.setKind(qubit(R + 1, Cols - 1), PauliKind::Z);
    Gens.push_back(G);
  }

  std::string Name = "surface-" + std::to_string(Rows) + "x" +
                     std::to_string(Cols);
  StabilizerCode Code = StabilizerCode::fromGenerators(
      std::move(Name), std::move(Gens), std::min(Rows, Cols));
  assert(Code.NumLogical == 1 && "rotated surface code must have k = 1");
  return Code;
}

StabilizerCode veriqec::makeXzzxSurfaceCode(size_t Dx, size_t Dz) {
  StabilizerCode Code = makeRotatedSurfaceCode(Dx, Dz);
  // Hadamard the odd checkerboard sublattice: every bulk face becomes an
  // XZZX check (the defining property of the XZZX code).
  for (size_t R = 0; R != Dx; ++R)
    for (size_t C = 0; C != Dz; ++C)
      if ((R + C) % 2 == 1)
        Code.conjugateBy(GateKind::H, R * Dz + C);
  Code.Name = "xzzx-" + std::to_string(Dx) + "x" + std::to_string(Dz);
  return Code;
}
