//===- ring/Sqrt2Ring.cpp - Exact arithmetic in Z[1/sqrt(2)] ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "ring/Sqrt2Ring.h"

#include <cmath>

using namespace veriqec;

void Sqrt2Ring::normalize() {
  // (X + Y sqrt2)/2^T with both X, Y even can drop one power of 2 via
  // (2a + 2b sqrt2)/2^T = (2b + a sqrt2) * sqrt2 / 2^T = ... use the
  // sqrt2 factorization: dividing by sqrt2 maps (X, Y) -> (Y, X/2)... we
  // reduce by 2 directly: both even -> (X/2 + (Y/2) sqrt2)/2^(T-1).
  while (T > 0 && (X % 2 == 0) && (Y % 2 == 0)) {
    X /= 2;
    Y /= 2;
    --T;
  }
  if (X == 0 && Y == 0)
    T = 0;
}

Sqrt2Ring Sqrt2Ring::operator+(const Sqrt2Ring &O) const {
  // Bring to the common denominator 2^max(T, O.T).
  uint32_t MaxT = T > O.T ? T : O.T;
  int64_t AX = X << (MaxT - T), AY = Y << (MaxT - T);
  int64_t BX = O.X << (MaxT - O.T), BY = O.Y << (MaxT - O.T);
  return Sqrt2Ring(AX + BX, AY + BY, MaxT);
}

Sqrt2Ring Sqrt2Ring::operator*(const Sqrt2Ring &O) const {
  // (x1 + y1 s)(x2 + y2 s) = (x1 x2 + 2 y1 y2) + (x1 y2 + x2 y1) s.
  int64_t NX = X * O.X + 2 * Y * O.Y;
  int64_t NY = X * O.Y + Y * O.X;
  return Sqrt2Ring(NX, NY, T + O.T);
}

double Sqrt2Ring::toDouble() const {
  return (static_cast<double>(X) + static_cast<double>(Y) * std::sqrt(2.0)) /
         std::ldexp(1.0, static_cast<int>(T));
}

std::string Sqrt2Ring::toString() const {
  std::string S = "(" + std::to_string(X);
  if (Y != 0)
    S += (Y > 0 ? " + " : " - ") + std::to_string(Y < 0 ? -Y : Y) + "*sqrt2";
  S += ")";
  if (T)
    S += "/2^" + std::to_string(T);
  return S;
}
