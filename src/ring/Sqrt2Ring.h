//===- ring/Sqrt2Ring.h - Exact arithmetic in Z[1/sqrt(2)] ------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scalar ring Z[1/sqrt2] = { (x + y*sqrt2) / 2^t } of the paper's
/// SExp syntax (Eqn. (3)), which makes Pauli expressions closed under the
/// T gate (Theorem 3.1): T^dagger X T = (X - Y)/sqrt2 needs exactly these
/// factors. Values are kept in the canonical form (X + Y*sqrt2) / 2^T
/// with minimal T.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_RING_SQRT2RING_H
#define VERIQEC_RING_SQRT2RING_H

#include <cstdint>
#include <string>

namespace veriqec {

/// An element (X + Y*sqrt2) / 2^T of Z[1/sqrt2], canonicalized so that
/// T = 0 or X, Y are not both even.
class Sqrt2Ring {
public:
  Sqrt2Ring() = default;
  Sqrt2Ring(int64_t Integer) : X(Integer) { normalize(); }
  Sqrt2Ring(int64_t X, int64_t Y, uint32_t T) : X(X), Y(Y), T(T) {
    normalize();
  }

  /// sqrt(2).
  static Sqrt2Ring sqrt2() { return Sqrt2Ring(0, 1, 0); }
  /// 1/sqrt(2) = sqrt2 / 2.
  static Sqrt2Ring invSqrt2() { return Sqrt2Ring(0, 1, 1); }

  int64_t intPart() const { return X; }
  int64_t sqrt2Part() const { return Y; }
  uint32_t denomLog2() const { return T; }

  bool isZero() const { return X == 0 && Y == 0; }

  Sqrt2Ring operator+(const Sqrt2Ring &O) const;
  Sqrt2Ring operator-() const { return Sqrt2Ring(-X, -Y, T); }
  Sqrt2Ring operator-(const Sqrt2Ring &O) const { return *this + (-O); }
  Sqrt2Ring operator*(const Sqrt2Ring &O) const;

  bool operator==(const Sqrt2Ring &O) const {
    return X == O.X && Y == O.Y && T == O.T;
  }
  bool operator!=(const Sqrt2Ring &O) const { return !(*this == O); }

  /// Numeric value (for cross-checks against floating point).
  double toDouble() const;

  std::string toString() const;

private:
  void normalize();

  int64_t X = 0;
  int64_t Y = 0;
  uint32_t T = 0;
};

} // namespace veriqec

#endif // VERIQEC_RING_SQRT2RING_H
