//===- sat/ClauseArena.h - Relocating clause storage ------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver's clause database as one contiguous region of 32-bit words
/// (the minisat-family RegionAllocator discipline). A clause is a word
/// offset into the region:
///
///   [header] [activity] [proof id] [lit 0] [lit 1] ... [lit n-1]
///
/// The header packs the literal count with the learned/deleted/relocated
/// flags; the activity is a float (the VSIDS clause score only ever
/// feeds an ordering, so float resolution is plenty); the proof id is an
/// int32 carried *inside* the clause so compaction can never
/// desynchronize a clause from its proof identity — positive ids are
/// derivation serials, negative ids are negated proof-header record
/// indices, 0 is "no identity" (an imported lemma).
///
/// Deletion only marks the header and counts the words as wasted;
/// garbageCollect() (sat/Solver.cpp) copies the live clauses into a
/// fresh arena via reloc(), which forwards every later reference to the
/// clause's new home through the Reloced flag + a forwarding offset
/// stashed in the activity slot. Propagation touching clause literals
/// through one flat array — instead of a per-clause heap vector — is the
/// point: the inner propagate() loop is ~75% of cube-discharge time.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SAT_CLAUSEARENA_H
#define VERIQEC_SAT_CLAUSEARENA_H

#include "sat/SatTypes.h"
#include "support/Assert.h"

#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

namespace veriqec::sat {

/// Reference to a clause: the word offset of its header inside the
/// owning ClauseArena. int32_t so the watcher binary-mark encoding
/// (Solver.h) keeps its negative range.
using ClauseRef = int32_t;

/// A non-owning view of one clause in a ClauseArena. Cheap to copy
/// (one pointer); invalidated by any arena allocation or compaction.
class Clause {
public:
  uint32_t size() const { return Head[0] >> SizeShift; }
  bool learned() const { return Head[0] & LearnedBit; }
  void setLearned(bool B) {
    Head[0] = B ? (Head[0] | LearnedBit) : (Head[0] & ~LearnedBit);
  }
  bool deleted() const { return Head[0] & DeletedBit; }
  bool reloced() const { return Head[0] & RelocedBit; }

  float activity() const {
    float A;
    std::memcpy(&A, &Head[1], sizeof(A));
    return A;
  }
  void setActivity(float A) { std::memcpy(&Head[1], &A, sizeof(A)); }

  /// Proof identity (see file comment): derivation serial (> 0),
  /// negated header record index (< 0), or none (0).
  int32_t proofId() const { return static_cast<int32_t>(Head[2]); }
  void setProofId(int32_t Id) { Head[2] = static_cast<uint32_t>(Id); }

  Lit &operator[](size_t I) { return lits()[I]; }
  Lit operator[](size_t I) const {
    Lit L;
    L.Code = static_cast<int32_t>(Head[HeaderWords + I]);
    return L;
  }
  std::span<Lit> lits() {
    return {reinterpret_cast<Lit *>(Head + HeaderWords), size()};
  }
  std::span<const Lit> lits() const {
    return {reinterpret_cast<const Lit *>(Head + HeaderWords), size()};
  }

  static constexpr size_t HeaderWords = 3;

private:
  friend class ClauseArena;
  explicit Clause(uint32_t *Head) : Head(Head) {}

  static constexpr uint32_t LearnedBit = 1u;
  static constexpr uint32_t DeletedBit = 2u;
  static constexpr uint32_t RelocedBit = 4u;
  static constexpr uint32_t SizeShift = 3;

  void markDeleted() { Head[0] |= DeletedBit; }
  ClauseRef forward() const { return static_cast<ClauseRef>(Head[1]); }
  void setForward(ClauseRef To) {
    Head[0] |= RelocedBit;
    Head[1] = static_cast<uint32_t>(To);
  }

  uint32_t *Head;
};

class ClauseArena {
public:
  /// Stores a fresh clause and returns its reference. Activity starts at
  /// 0, the proof id at "none".
  ClauseRef alloc(std::span<const Lit> Lits, bool Learned) {
    size_t Need = Clause::HeaderWords + Lits.size();
    assert(Mem.size() + Need <=
               static_cast<size_t>(std::numeric_limits<int32_t>::max()) &&
           "clause arena exceeds the 2^31-word address space");
    ClauseRef Ref = static_cast<ClauseRef>(Mem.size());
    Mem.resize(Mem.size() + Need);
    uint32_t *Head = &Mem[static_cast<size_t>(Ref)];
    Head[0] = (static_cast<uint32_t>(Lits.size()) << 3) |
              (Learned ? 1u : 0u); // size << SizeShift | LearnedBit
    Head[1] = 0;
    Head[2] = 0;
    std::memcpy(Head + Clause::HeaderWords, Lits.data(),
                Lits.size() * sizeof(Lit));
    return Ref;
  }

  Clause operator[](ClauseRef Ref) const {
    assert(Ref >= 0 && static_cast<size_t>(Ref) < Mem.size() &&
           "clause reference outside the arena");
    return Clause(const_cast<uint32_t *>(&Mem[static_cast<size_t>(Ref)]));
  }

  /// Tombstones the clause (literals stay readable — conflict analysis
  /// may still walk a locked reason) and books its words as wasted.
  void markDeleted(ClauseRef Ref) {
    Clause C = (*this)[Ref];
    if (C.deleted())
      return;
    C.markDeleted();
    Wasted += Clause::HeaderWords + C.size();
  }

  /// Moves the clause behind \p Ref into \p To (once — later calls for
  /// the same clause follow the forwarding offset) and rewrites \p Ref.
  void reloc(ClauseRef &Ref, ClauseArena &To) {
    Clause C = (*this)[Ref];
    if (C.reloced()) {
      Ref = C.forward();
      return;
    }
    size_t Words = Clause::HeaderWords + C.size();
    ClauseRef NewRef = static_cast<ClauseRef>(To.Mem.size());
    To.Mem.insert(To.Mem.end(), C.Head, C.Head + Words);
    if (C.deleted())
      // A tombstone kept alive by a trail reason: its words are wasted in
      // the new arena too.
      To.Wasted += Words;
    C.setForward(NewRef);
    Ref = NewRef;
  }

  size_t sizeWords() const { return Mem.size(); }
  size_t sizeBytes() const { return Mem.size() * sizeof(uint32_t); }
  size_t wastedWords() const { return Wasted; }
  void reserveWords(size_t Words) { Mem.reserve(Words); }

private:
  std::vector<uint32_t> Mem;
  size_t Wasted = 0;
};

} // namespace veriqec::sat

#endif // VERIQEC_SAT_CLAUSEARENA_H
