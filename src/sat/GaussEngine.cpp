//===- sat/GaussEngine.cpp - Gauss-in-the-loop XOR reasoning --------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "sat/GaussEngine.h"

#include "gf2/BitMatrix.h"
#include "obs/Trace.h"
#include "sat/Solver.h"
#include "support/Assert.h"

#include <algorithm>

using namespace veriqec;
using namespace veriqec::sat;

void GaussEngine::addRow(std::vector<Var> Vars, bool Rhs) {
  Original.push_back({std::move(Vars), Rhs});
  Dirty = true;
}

bool GaussEngine::finalize() {
  Dirty = false;

  // Column space: every variable any registered row mentions.
  Var MaxVar = -1;
  for (const OriginalRow &R : Original)
    for (Var V : R.Vars)
      MaxVar = std::max(MaxVar, V);
  ColOfVar.assign(static_cast<size_t>(MaxVar) + 1, -1);
  VarOfCol.clear();
  for (const OriginalRow &R : Original)
    for (Var V : R.Vars)
      if (ColOfVar[V] < 0) {
        ColOfVar[V] = static_cast<int32_t>(VarOfCol.size());
        VarOfCol.push_back(V);
      }
  size_t NC = VarOfCol.size();

  // The basis keeps the rows AS REGISTERED — sparse. A one-time full
  // reduction would be tempting (echelon rows expose more single-row
  // units), but reduced rows are globally entangled: every assignment
  // would then touch half the matrix through the occurrence lists, and
  // every reason clause would carry the dense row's whole assigned
  // support. That densification is exactly the structure this engine
  // exists to avoid; cross-row strength comes from the on-demand
  // eliminations of deepCheck() instead, whose dense rows are transient
  // scratch. The basis never mutates, so backtracking needs no matrix
  // undo at all — only the counter mirror rolls back.
  Rows.clear();
  for (const OriginalRow &R : Original) {
    BitVector Row(NC + 1);
    for (Var V : R.Vars)
      Row.flip(static_cast<size_t>(ColOfVar[V]));
    if (R.Rhs)
      Row.flip(NC);
    Rows.push_back(std::move(Row));
  }

  // Consistency verdict on a scratch elimination: a pivot landing in
  // the right-hand-side column is the contradiction 0 == 1.
  {
    BitMatrix M = BitMatrix::fromRows(Rows);
    std::vector<size_t> Pivots = M.rowReduce();
    if (!Pivots.empty() && Pivots.back() == NC)
      return false;
  }

  RowsOfCol.assign(NC, {});
  Unknowns.assign(Rows.size(), 0);
  Residual.assign(Rows.size(), 0);
  PendingRows.clear();
  for (size_t R = 0; R != Rows.size(); ++R) {
    for (size_t C = Rows[R].findFirst(); C < NC; C = Rows[R].findNext(C + 1)) {
      RowsOfCol[C].push_back(static_cast<uint32_t>(R));
      ++Unknowns[R];
    }
    Residual[R] = Rows[R].get(NC);
    if (Unknowns[R] <= 1)
      PendingRows.push_back(static_cast<uint32_t>(R));
  }
  Applied.clear();
  TrailSeen = 0;
  AppliedSinceDeep = 0;
  return true;
}

void GaussEngine::syncTrail(Solver &S) {
  while (TrailSeen < S.Trail.size()) {
    Lit L = S.Trail[TrailSeen];
    Var V = L.var();
    if (static_cast<size_t>(V) < ColOfVar.size() && ColOfVar[V] >= 0) {
      uint32_t Col = static_cast<uint32_t>(ColOfVar[V]);
      uint8_t Val = !L.negated();
      Applied.push_back({static_cast<uint32_t>(TrailSeen), Col, Val});
      ++AppliedSinceDeep;
      for (uint32_t R : RowsOfCol[Col]) {
        --Unknowns[R];
        Residual[R] ^= Val;
        if (Unknowns[R] <= 1)
          PendingRows.push_back(R);
      }
    }
    ++TrailSeen;
  }
}

void GaussEngine::onBacktrack(size_t NewTrailSize) {
  while (!Applied.empty() && Applied.back().TrailPos >= NewTrailSize) {
    const AppliedEntry &E = Applied.back();
    for (uint32_t R : RowsOfCol[E.Col]) {
      ++Unknowns[R];
      Residual[R] ^= E.Value;
    }
    Applied.pop_back();
  }
  // PendingRows deliberately survives: a stale entry re-derives its row's
  // status live and no-ops if the row regained unknowns, while an entry
  // queued just before a conflict return must not be lost.
  TrailSeen = std::min(TrailSeen, NewTrailSize);
}

int32_t GaussEngine::processRow(Solver &S, const BitVector &Row) {
  size_t NC = VarOfCol.size();
  size_t UnknownCol = NC;
  bool Parity = Row.get(NC);
  size_t NumUnknown = 0;
  for (size_t C = Row.findFirst(); C < NC; C = Row.findNext(C + 1)) {
    LBool A = S.Assigns[VarOfCol[C]];
    if (A == LBool::Undef) {
      if (++NumUnknown > 1)
        return Solver::NoReason; // nothing to learn from this row yet
      UnknownCol = C;
    } else {
      Parity ^= A == LBool::True;
    }
  }
  if (NumUnknown > 1 || (NumUnknown == 0 && !Parity))
    return Solver::NoReason;

  // The reason/conflict clause: the implied literal (if any) plus the
  // negation of every assigned variable's current value. Root facts are
  // permanent in this solver, so level-0 dependencies are dropped.
  std::vector<Lit> Lits;
  if (NumUnknown == 1)
    Lits.push_back(Lit(VarOfCol[UnknownCol], !Parity));
  for (size_t C = Row.findFirst(); C < NC; C = Row.findNext(C + 1)) {
    if (C == UnknownCol)
      continue;
    Var V = VarOfCol[C];
    if (S.Level[V] > 0)
      Lits.push_back(Lit(V, S.Assigns[V] == LBool::True));
  }

  if (NumUnknown == 0) {
    ++S.Stats.XorConflicts;
    if (S.corruptXorReasonClause() && Lits.size() > 1)
      Lits.pop_back(); // planted-bug seam: an under-justified conflict
    return S.materializeXorClause(std::move(Lits));
  }

  ++S.Stats.XorPropagations;
  Lit Implied = Lits.front();
  if (S.decisionLevel() == 0) {
    // Root facts need no justification: analysis skips level 0. A proof
    // checker does need one, though — at the root every dependency sits
    // at level 0, so Lits is exactly the unit {Implied}, logged as a
    // derivation the checker re-justifies from the XOR system.
    if (S.ProofSink) {
      S.ProofSink->onDerive(Lits, {});
      ++S.DeriveCount;
    }
    S.enqueue(Implied, Solver::NoReason);
    return Solver::NoReason;
  }
  // Above the root EVERY implication carries a reason clause — even a
  // dependency-free one (all deps at level 0) gets its unit clause.
  // Enqueueing with NoReason instead would plant a pseudo-decision in
  // the middle of a trail segment, which first-UIP resolution cannot
  // expand.
  if (S.corruptXorReasonClause() && Lits.size() > 2)
    Lits.pop_back(); // planted-bug seam: an under-justified reason
  // Lazy reimplication under chronological backtracking: the implied
  // literal's level is the highest level among its dependencies (0 when
  // every dependency is a root fact), not wherever the search happens
  // to sit — so a later backtrack above that level keeps it.
  int32_t Lvl = -1;
  if (S.Chrono) {
    Lvl = 0;
    for (size_t I = 1; I != Lits.size(); ++I)
      Lvl = std::max(Lvl, S.Level[Lits[I].var()]);
  }
  S.enqueue(Implied, S.materializeXorClause(std::move(Lits)), Lvl);
  return Solver::NoReason;
}

int32_t GaussEngine::deepCheck(Solver &S) {
  obs::TraceSpan Span("gauss_elim", {{"rows", Rows.size()}});
  AppliedSinceDeep = 0;
  size_t NC = VarOfCol.size();

  // Fresh forward elimination of the residual system on a scratch copy
  // (rows that still have >= 2 unknowns), pivoting only on unassigned
  // columns. Rows keep their full width, so a combined row's assigned
  // support — the reason for whatever it implies — comes out for free.
  std::vector<BitVector> M;
  for (size_t R = 0; R != Rows.size(); ++R)
    if (Unknowns[R] >= 2)
      M.push_back(Rows[R]);
  if (M.size() < 2)
    return Solver::NoReason;
  ++S.Stats.XorEliminations;

  for (size_t I = 0; I != M.size(); ++I) {
    size_t P = NC;
    for (size_t C = M[I].findFirst(); C < NC; C = M[I].findNext(C + 1))
      if (S.Assigns[VarOfCol[C]] == LBool::Undef) {
        P = C;
        break;
      }
    if (P == NC)
      continue; // fully assigned combination; judged below
    for (size_t J = I + 1; J != M.size(); ++J)
      if (M[J].get(P))
        M[J] ^= M[I];
  }
  // Inspect every eliminated row live: implied units enqueue right here
  // (later rows then see the new assignments), a violated combination
  // returns its conflict.
  size_t Before = S.Trail.size();
  for (const BitVector &Row : M) {
    int32_t Confl = processRow(S, Row);
    if (Confl != Solver::NoReason) {
      DeepInterval = MinDeepInterval;
      return Confl;
    }
  }
  DeepInterval = S.Trail.size() != Before
                     ? MinDeepInterval
                     : std::min(DeepInterval * 2, MaxDeepInterval);
  return Solver::NoReason;
}

int32_t GaussEngine::propagate(Solver &S) {
  size_t Before = S.Trail.size();
  while (true) {
    syncTrail(S);
    if (PendingRows.empty())
      break;
    uint32_t R = PendingRows.back();
    PendingRows.pop_back();
    if (Unknowns[R] > 1)
      continue; // stale trigger (a backtrack regrew the row)
    int32_t Confl = processRow(S, Rows[R]);
    if (Confl != Solver::NoReason)
      return Confl;
  }
  if (S.Trail.size() != Before)
    return Solver::NoReason; // let CNF propagation consume the news first
  if (AppliedSinceDeep >= DeepInterval)
    return deepCheck(S);
  return Solver::NoReason;
}
