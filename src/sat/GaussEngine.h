//===- sat/GaussEngine.h - Gauss-in-the-loop XOR reasoning -----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Native XOR-constraint reasoning inside the CDCL solver, in the
/// CryptoMiniSat lineage: parity rows are kept as GF(2) equations instead
/// of being Tseitin-flattened into CNF. The engine holds the rows as a
/// static SPARSE basis — exactly as registered, deliberately never
/// reduced, since echelon rows are globally entangled and would densify
/// the occurrence lists and reason clauses (finalize() only runs a
/// scratch elimination for the consistency verdict). It mirrors the
/// solver trail into per-row unknown/parity counters for
/// watched-literal-cheap unit propagation, and periodically re-eliminates
/// the residual system over the still-unassigned columns to surface
/// implications no single row shows — the cross-row strength that makes
/// LDPC-scale parity subsystems tractable. Every implied literal and
/// conflict is justified by a materialized clause over the assigned
/// variables of the (possibly combined) row, so XOR-derived facts flow
/// through the solver's standard conflict analysis, assumption cores and
/// clause learning unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SAT_GAUSSENGINE_H
#define VERIQEC_SAT_GAUSSENGINE_H

#include "sat/SatTypes.h"
#include "support/BitVector.h"

#include <cstdint>
#include <vector>

namespace veriqec::sat {

class Solver;

/// The XOR component of a Solver. A value type with no back-pointer: the
/// owning solver passes itself into every call, so solvers stay movable
/// (and copyable for the test-seam subclasses).
class GaussEngine {
public:
  /// Registers the equation XOR(Vars) == Rhs. Duplicate variables cancel
  /// in pairs. Rows may be added at any time; the basis is (re)built by
  /// the next finalize().
  void addRow(std::vector<Var> Vars, bool Rhs);

  bool hasRows() const { return !Original.empty(); }
  size_t numRows() const { return Rows.size(); }
  bool needsFinalize() const { return Dirty; }

  /// Rebuilds the basis (the registered rows verbatim, kept sparse) and
  /// decides their standalone consistency on a scratch elimination.
  /// Must be called at decision level 0 (the engine re-syncs from trail
  /// position 0 afterwards). Returns false if the rows alone are
  /// contradictory (0 == 1).
  bool finalize();

  /// Brings the engine to fixpoint against \p S's trail: substitutes new
  /// assignments into the row counters, propagates rows with a single
  /// unknown, and — when enough has changed since the last one — runs a
  /// fresh elimination of the residual system for cross-row implications.
  /// Returns a conflict clause reference (materialized in \p S) or
  /// Solver's NoReason sentinel.
  int32_t propagate(Solver &S);

  /// The solver trail shrank to \p NewTrailSize entries; rolls the
  /// counter mirror back. The echelon basis itself never changes with
  /// the trail, so nothing else needs undoing.
  void onBacktrack(size_t NewTrailSize);

private:
  struct OriginalRow {
    std::vector<Var> Vars;
    bool Rhs = false;
  };

  /// Rows of the (sparse, as-registered) basis: bit i < NumCols is the
  /// coefficient of VarOfCol[i]; bit NumCols is the right-hand side.
  std::vector<BitVector> Rows;
  std::vector<OriginalRow> Original;

  std::vector<Var> VarOfCol;
  std::vector<int32_t> ColOfVar; ///< dense, -1 = not an XOR variable
  std::vector<std::vector<uint32_t>> RowsOfCol;

  /// Live mirror of the trail restricted to XOR variables.
  std::vector<uint32_t> Unknowns; ///< unassigned vars per row
  std::vector<uint8_t> Residual;  ///< rhs ^ XOR of assigned values
  struct AppliedEntry {
    uint32_t TrailPos;
    uint32_t Col;
    uint8_t Value;
  };
  std::vector<AppliedEntry> Applied;
  size_t TrailSeen = 0;

  /// Rows whose unknown count dropped to <= 1 (deduplicated lazily: a
  /// stale entry is re-checked against the live counters when popped).
  std::vector<uint32_t> PendingRows;

  /// Cross-row elimination pacing: a fresh elimination of the residual
  /// system runs once at least DeepInterval XOR variables were assigned
  /// since the last run and the fast path came up empty. The interval
  /// adapts — a barren elimination doubles it (up to MaxDeepInterval),
  /// a productive one resets it — so workloads whose rows never combine
  /// into anything pay a vanishing overhead while LDPC-style systems
  /// keep the full cross-row strength.
  uint32_t AppliedSinceDeep = 0;
  uint32_t DeepInterval = MinDeepInterval;
  static constexpr uint32_t MinDeepInterval = 8;
  static constexpr uint32_t MaxDeepInterval = 4096;

  bool Dirty = false;

  int32_t processRow(Solver &S, const BitVector &Row);
  int32_t deepCheck(Solver &S);
  void syncTrail(Solver &S);
};

} // namespace veriqec::sat

#endif // VERIQEC_SAT_GAUSSENGINE_H
