//===- sat/SatTypes.h - Variables, literals, truth values ------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic vocabulary of the CDCL solver: variables, literals in the
/// MiniSat-style packed encoding, and three-valued assignments.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SAT_SATTYPES_H
#define VERIQEC_SAT_SATTYPES_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace veriqec::sat {

/// A propositional variable, numbered from 0.
using Var = int32_t;

/// A literal: variable with polarity, packed as 2*var + (negated ? 1 : 0).
struct Lit {
  int32_t Code = -2;

  Lit() = default;
  Lit(Var V, bool Negated) : Code(2 * V + (Negated ? 1 : 0)) {}

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return Code == O.Code; }
  bool operator!=(const Lit &O) const { return Code != O.Code; }
  bool operator<(const Lit &O) const { return Code < O.Code; }

  /// A sentinel literal distinct from every real literal.
  static Lit undef() { return Lit(); }
  bool isUndef() const { return Code < 0; }
};

/// Positive literal of \p V.
inline Lit mkLit(Var V) { return Lit(V, false); }

/// Three-valued assignment.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lboolOf(bool B) { return B ? LBool::True : LBool::False; }
inline LBool negate(LBool B) {
  if (B == LBool::Undef)
    return B;
  return B == LBool::True ? LBool::False : LBool::True;
}

} // namespace veriqec::sat

#endif // VERIQEC_SAT_SATTYPES_H
