//===- sat/Solver.cpp - CDCL SAT solver -----------------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Assert.h"

#include <algorithm>
#include <unordered_set>

using namespace veriqec;
using namespace veriqec::sat;

uint64_t veriqec::sat::lubySequence(uint64_t I) {
  assert(I >= 1 && "luby sequence is 1-based");
  // MiniSat's formulation over the 0-based index X.
  uint64_t X = I - 1;
  uint64_t Size = 1, Seq = 0;
  while (Size < X + 1) {
    Size = 2 * Size + 1;
    ++Seq;
  }
  while (Size - 1 != X) {
    Size = (Size - 1) / 2;
    --Seq;
    X %= Size;
  }
  return 1ull << Seq;
}

namespace {
// Test knob (setDefaultGarbageFraction): the smt/engine layers construct
// slot solvers internally, so per-instance setGarbageFraction cannot
// reach them. Written only while no solver is running.
double DefaultGarbageFrac = 0.2;
} // namespace

void Solver::setDefaultGarbageFraction(double Frac) {
  DefaultGarbageFrac = Frac;
}

Solver::Solver() : GarbageFrac(DefaultGarbageFrac) {}

Var Solver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Model.push_back(LBool::Undef);
  SavedPhase.push_back(false);
  Reason.push_back(NoReason);
  Level.push_back(0);
  TrailPosOf.push_back(0);
  Activity.push_back(0.0);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  HeapPos.push_back(-1);
  heapInsert(V);
  return V;
}

bool Solver::addClause(std::vector<Lit> Lits) {
  // Solving leaves the assumption-prefix trail alive between calls;
  // adding a clause is a root-level operation, so drop back first.
  if (decisionLevel() != 0)
    backtrack(0);
  ++AddClauseSeq;
  if (!OkState)
    return false;

  std::sort(Lits.begin(), Lits.end());
  std::vector<Lit> Out;
  Lit Prev = Lit::undef();
  for (Lit L : Lits) {
    assert(L.var() >= 0 && static_cast<size_t>(L.var()) < numVars() &&
           "literal over unknown variable");
    if (L == Prev)
      continue; // duplicate
    if (!Prev.isUndef() && L == ~Prev)
      return true; // tautology
    LBool V = valueOf(L);
    if (V == LBool::True)
      return true; // already satisfied at root
    if (V == LBool::False)
      continue; // dead literal
    Out.push_back(L);
    Prev = L;
  }

  if (Out.empty()) {
    OkState = false;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason)
      OkState = false;
    return OkState;
  }

  ClauseRef Ref = allocClause(Out, /*Learned=*/false);
  // The proof-id word carries the header record index (negated): what a
  // negative proof hint names.
  Arena[Ref].setProofId(-static_cast<int32_t>(AddClauseSeq));
  ProblemClauses.push_back(Ref);
  attachClause(Ref);
  return true;
}

bool Solver::addXorClause(const std::vector<Lit> &Lits, bool Odd) {
  if (decisionLevel() != 0)
    backtrack(0);
  if (!OkState)
    return false;
  bool Rhs = Odd;
  std::vector<Var> Vars;
  Vars.reserve(Lits.size());
  for (Lit L : Lits) {
    assert(L.var() >= 0 && static_cast<size_t>(L.var()) < numVars() &&
           "XOR literal over unknown variable");
    Rhs ^= L.negated();
    Vars.push_back(L.var());
  }
  std::sort(Vars.begin(), Vars.end());
  std::vector<Var> Kept;
  for (size_t I = 0; I != Vars.size();) {
    size_t J = I;
    while (J != Vars.size() && Vars[J] == Vars[I])
      ++J;
    if ((J - I) & 1)
      Kept.push_back(Vars[I]);
    I = J;
  }
  if (Kept.empty()) {
    if (Rhs)
      OkState = false;
    return OkState;
  }
  Gauss.addRow(std::move(Kept), Rhs);
  return true;
}

ClauseRef Solver::materializeXorClause(std::vector<Lit> Lits) {
  ClauseRef Ref = allocClause(Lits, /*Learned=*/true);
  Arena[Ref].setActivity(static_cast<float>(ClauseInc));
  if (Lits.size() < 2)
    // Empty/unit justifications cannot carry watches; tombstone them at
    // birth. Their literals stay readable for conflict analysis (a
    // tombstone locked as a trail reason survives compaction), and the
    // arena reclaims them once nothing references them.
    Arena.markDeleted(Ref);
  else
    // Never watched (the XOR engine re-implies them as needed), but they
    // are learned clauses all the same: reduceDB candidates.
    {
      LearntClauses.push_back(Ref);
      ++NumLiveLearnts;
    }
  // XOR-materialized clauses are derivations: the checker re-justifies
  // them by GF(2) elimination of the header's x-rows.
  proofDerive(Ref);
  return Ref;
}

ClauseRef Solver::propagateFixpoint() {
  while (true) {
    ClauseRef Confl = propagate();
    if (Confl != NoReason || !Gauss.hasRows())
      return Confl;
    size_t Before = Trail.size();
    Confl = Gauss.propagate(*this);
    if (Confl != NoReason)
      return Confl;
    if (Trail.size() == Before)
      return NoReason;
    // The XOR engine enqueued implications: give CNF propagation
    // another pass, then return to the engine, until neither moves.
  }
}

void Solver::attachClause(ClauseRef Ref) {
  const Clause C = Arena[Ref];
  assert(C.size() >= 2 && "attaching a short clause");
  if (C.size() == 2) {
    // Binary clauses live entirely in their watchers (the blocker IS the
    // other literal; the ~Ref encoding marks the watcher as binary):
    // propagation never touches the clause memory, which is most of the
    // watch traffic — Tseitin gate and counter encodings are dominated
    // by 2-literal clauses.
    Watches[(~C[0]).Code].push_back({binaryMark(Ref), C[1]});
    Watches[(~C[1]).Code].push_back({binaryMark(Ref), C[0]});
    return;
  }
  Watches[(~C[0]).Code].push_back({Ref, C[1]});
  Watches[(~C[1]).Code].push_back({Ref, C[0]});
}

void Solver::enqueue(Lit L, ClauseRef From, int32_t AtLevel) {
  assert(valueOf(L) == LBool::Undef && "enqueueing an assigned literal");
  int32_t Lvl = AtLevel < 0 ? decisionLevel() : AtLevel;
  assert(Lvl <= decisionLevel() && "implication level above current");
  if (Lvl < decisionLevel())
    // Out-of-order assignment: the literal's true implication level is
    // below where the search currently sits, so a later backtrack above
    // Lvl must keep it (backtrack's survivor scan does).
    ++Stats.OutOfOrderAssignments;
  Assigns[L.var()] = lboolOf(!L.negated());
  Reason[L.var()] = From;
  Level[L.var()] = Lvl;
  TrailPosOf[L.var()] = static_cast<uint32_t>(Trail.size());
  Trail.push_back(L);
}

ClauseRef Solver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    std::vector<Watcher> &WatchList = Watches[P.Code];
    size_t KeepIdx = 0;
    for (size_t I = 0; I != WatchList.size(); ++I) {
      Watcher W = WatchList[I];
      // Fast path: the blocker literal already satisfies the clause.
      if (valueOf(W.Blocker) == LBool::True) {
        WatchList[KeepIdx++] = W;
        continue;
      }
      if (isBinaryMark(W.Ref)) {
        // Binary clause, resolved from the watcher alone (the clause
        // memory is only touched when it actually implies something).
        WatchList[KeepIdx++] = W;
        ClauseRef Real = fromBinaryMark(W.Ref);
        if (valueOf(W.Blocker) == LBool::False) {
          for (size_t J = I + 1; J != WatchList.size(); ++J)
            WatchList[KeepIdx++] = WatchList[J];
          WatchList.resize(KeepIdx);
          PropagateHead = Trail.size();
          return Real;
        }
        // Reason clauses keep their implied literal at position 0
        // (analyze() and litRedundant() rely on it).
        Clause C = Arena[Real];
        if (C[0] != W.Blocker)
          std::swap(C[0], C[1]);
        ++Stats.BinPropagations;
        // Lazy reimplication: the implied literal's level is its
        // antecedent's (P may itself sit below the current level).
        enqueue(W.Blocker, Real, Chrono ? Level[P.var()] : -1);
        continue;
      }
      Clause C = Arena[W.Ref];
      assert(!C.deleted() && "deleted clause left in a watch list");
      // Normalize so that the false literal ~P is at position 1.
      Lit NotP = ~P;
      if (C[0] == NotP)
        std::swap(C[0], C[1]);
      assert(C[1] == NotP && "watch invariant broken");
      // If the other watched literal is true, keep watching.
      if (valueOf(C[0]) == LBool::True) {
        WatchList[KeepIdx++] = {W.Ref, C[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool FoundWatch = false;
      for (size_t K = 2; K != C.size(); ++K) {
        if (valueOf(C[K]) != LBool::False) {
          std::swap(C[1], C[K]);
          Watches[(~C[1]).Code].push_back({W.Ref, C[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Clause is unit or conflicting.
      if (valueOf(C[0]) == LBool::False) {
        // Conflict: restore the remaining watchers and report.
        WatchList[KeepIdx++] = W;
        for (size_t J = I + 1; J != WatchList.size(); ++J)
          WatchList[KeepIdx++] = WatchList[J];
        WatchList.resize(KeepIdx);
        PropagateHead = Trail.size();
        return W.Ref;
      }
      ++Stats.LongPropagations;
      int32_t ImplLvl = -1;
      if (Chrono) {
        // Lazy reimplication: the unit's true level is the highest level
        // among the clause's false literals, and THAT literal must be
        // the one watched — the watch then unassigns exactly when the
        // implied literal does, keeping the asserting-literal invariant
        // that C[1] sits at the implied literal's level. If it is not
        // already C[1], migrate the watch there.
        size_t MaxIdx = 1;
        for (size_t K = 2; K != C.size(); ++K)
          if (Level[C[K].var()] > Level[C[MaxIdx].var()])
            MaxIdx = K;
        ImplLvl = Level[C[MaxIdx].var()];
        if (MaxIdx != 1) {
          std::swap(C[1], C[MaxIdx]);
          Watches[(~C[1]).Code].push_back({W.Ref, C[0]});
          enqueue(C[0], W.Ref, ImplLvl);
          continue; // watcher moved off this list: drop W
        }
      }
      WatchList[KeepIdx++] = W;
      enqueue(C[0], W.Ref, ImplLvl);
    }
    WatchList.resize(KeepIdx);
  }
  return NoReason;
}

void Solver::bumpVar(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapPos[V] >= 0)
    heapUpdate(V);
}

void Solver::bumpClause(Clause C) {
  C.setActivity(C.activity() + static_cast<float>(ClauseInc));
  if (C.activity() > 1e20f) {
    for (ClauseRef R : LearntClauses) {
      Clause L = Arena[R];
      L.setActivity(L.activity() * 1e-20f);
    }
    ClauseInc *= 1e-20;
  }
}

void Solver::decayActivities() {
  VarInc /= VarDecay;
  ClauseInc /= ClauseDecay;
}

void Solver::analyze(ClauseRef Confl, std::vector<Lit> &Learnt,
                     int32_t &BtLevel) {
  Learnt.clear();
  Learnt.push_back(Lit::undef()); // slot for the asserting literal
  HintSteps.clear();
  int PathCount = 0;
  Lit P = Lit::undef();
  size_t TrailIdx = Trail.size();

  do {
    assert(Confl != NoReason && "analysis needs a reason");
    if (ProofSink)
      // Antecedent for the proof: the reason of P (keyed by P's trail
      // position), or the conflicting clause itself on the first round
      // (implying nothing, it sorts after every reason).
      HintSteps.emplace_back(P.isUndef() ? UINT32_MAX : TrailPosOf[P.var()],
                             Confl);
    Clause C = Arena[Confl];
    if (C.learned())
      bumpClause(C);
    for (size_t I = (P.isUndef() ? 0 : 1); I != C.size(); ++I) {
      Lit Q = C[I];
      if (Seen[Q.var()] || Level[Q.var()] == 0)
        continue;
      if (corruptOutOfOrderLevel() && Level[Q.var()] < decisionLevel() &&
          TrailPosOf[Q.var()] >=
              static_cast<uint32_t>(TrailLim[Level[Q.var()]]))
        // Planted-bug seam: an out-of-order (reimplied) literal — one
        // sitting on the trail above its own level's segment — has its
        // level misread as 0 and silently falls out of the learnt
        // clause, the way a buggy reimplication level computation goes
        // wrong. The over-strong lemma is unsound from here on.
        continue;
      Seen[Q.var()] = 1;
      bumpVar(Q.var());
      if (Level[Q.var()] >= decisionLevel())
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    // Walk back to the most recent seen conflict-level literal on the
    // trail. Under chronological backtracking, out-of-order entries at
    // lower levels interleave with conflict-level ones; a seen
    // lower-level entry is a clause literal (collected above), not a
    // resolution candidate — skip it, leaving its mark for the clearing
    // pass at the end.
    while (!Seen[Trail[TrailIdx - 1].var()] ||
           Level[Trail[TrailIdx - 1].var()] < decisionLevel())
      --TrailIdx;
    P = Trail[--TrailIdx];
    Confl = Reason[P.var()];
    Seen[P.var()] = 0;
    --PathCount;
  } while (PathCount > 0);
  Learnt[0] = ~P;

  // Clause minimization: drop literals implied by the rest of the clause.
  // Remember every marked literal so the marks can be cleared even for
  // literals that minimization removes from the clause.
  std::vector<Lit> Marked(Learnt.begin() + 1, Learnt.end());
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I != Learnt.size(); ++I)
    AbstractLevels |= 1u << (Level[Learnt[I].var()] & 31);
  size_t KeepIdx = 1;
  for (size_t I = 1; I != Learnt.size(); ++I)
    if (Reason[Learnt[I].var()] == NoReason ||
        !litRedundant(Learnt[I], AbstractLevels))
      Learnt[KeepIdx++] = Learnt[I];
    else if (ProofSink)
      // The removed literal's whole justification cone joins the
      // antecedents: a checker replaying the clause never assigns the
      // literal, so it must re-derive it from the cone's reasons.
      HintSteps.insert(HintSteps.end(), RedundantSteps.begin(),
                       RedundantSteps.end());
  Learnt.resize(KeepIdx);

  // Finalize the proof hints: antecedents ordered by the trail position
  // of the literal they implied make every hint unit (then conflicting)
  // in turn — each reason only cites literals assigned earlier on the
  // trail, so by its turn all are either negated clause literals or
  // already re-derived. An antecedent with no proof identity (an
  // imported lemma) poisons the list; the checker then falls back to
  // full propagation.
  if (ProofSink)
    finalizeHintIds(HintIds);

  // Find the backtrack level: the second-highest level in the clause.
  BtLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxIdx = 1;
    for (size_t I = 2; I != Learnt.size(); ++I)
      if (Level[Learnt[I].var()] > Level[Learnt[MaxIdx].var()])
        MaxIdx = I;
    std::swap(Learnt[1], Learnt[MaxIdx]);
    BtLevel = Level[Learnt[1].var()];
  }

  // Clear the seen marks we still own (including minimized-away ones).
  Seen[Learnt[0].var()] = 0;
  for (Lit L : Marked)
    Seen[L.var()] = 0;
}

bool Solver::litRedundant(Lit L, uint32_t AbstractLevels) {
  // DFS over the implication graph: L is redundant if every path to a
  // decision passes through already-seen literals.
  RedundantSteps.clear();
  std::vector<Lit> Stack = {L};
  std::vector<Var> ToClear;
  while (!Stack.empty()) {
    Lit Cur = Stack.back();
    Stack.pop_back();
    assert(Reason[Cur.var()] != NoReason);
    if (ProofSink)
      RedundantSteps.emplace_back(TrailPosOf[Cur.var()], Reason[Cur.var()]);
    const Clause C = Arena[Reason[Cur.var()]];
    for (size_t I = 1; I != C.size(); ++I) {
      Lit Q = C[I];
      if (Seen[Q.var()] || Level[Q.var()] == 0)
        continue;
      if (Reason[Q.var()] == NoReason ||
          ((1u << (Level[Q.var()] & 31)) & AbstractLevels) == 0) {
        for (Var V : ToClear)
          Seen[V] = 0;
        return false;
      }
      Seen[Q.var()] = 1;
      ToClear.push_back(Q.var());
      Stack.push_back(Q);
    }
  }
  // Keep the marks: they stand for "known redundant" during this analyze()
  // call and are cleared with the learnt clause's marks... except these
  // variables are not in the clause, so clear them here but remember the
  // redundancy result.
  for (Var V : ToClear)
    Seen[V] = 0;
  return true;
}

void Solver::backtrack(int32_t ToLevel) {
  if (decisionLevel() <= ToLevel)
    return;
  size_t Bound = static_cast<size_t>(TrailLim[ToLevel]);
  // Trail saving: out-of-order entries above the cut whose level is at
  // or below the target keep their assignment — the justification
  // (reason clause over literals of level <= their own) survives the
  // backtrack, so unassigning them only to re-propagate the identical
  // implication is pure waste. Without chronological backtracking the
  // segment above the cut is level-ordered and the scan saves nothing,
  // degenerating to the classic full teardown.
  SaveScratch.clear();
  for (size_t I = Trail.size(); I-- > Bound;) {
    Lit L = Trail[I];
    Var V = L.var();
    if (Level[V] <= ToLevel) {
      SaveScratch.push_back(L);
      continue;
    }
    SavedPhase[V] = Assigns[V] == LBool::True;
    Assigns[V] = LBool::Undef;
    Reason[V] = NoReason;
    if (HeapPos[V] < 0)
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLim.resize(ToLevel);
  // The XOR mirror rolls back to the cut; the survivors re-appended
  // below sit past TrailSeen again, so the next syncTrail re-applies
  // them and the row counters net out exactly.
  Gauss.onBacktrack(Bound);
  Stats.TrailSavedLits += SaveScratch.size();
  // The scan above ran top-down, so the survivors are in reverse trail
  // order; restore it — reason literals must keep preceding the
  // literals they imply (the LRAT hint sorter relies on trail order).
  std::reverse(SaveScratch.begin(), SaveScratch.end());
  for (Lit L : SaveScratch) {
    TrailPosOf[L.var()] = static_cast<uint32_t>(Trail.size());
    Trail.push_back(L);
  }
  // Re-scan the survivors: implications they forced at levels above the
  // target were torn down and must be re-derived (at their new, lower
  // implication levels).
  PropagateHead = Bound;
}

Lit Solver::pickBranchLit() {
  // Seeded tie-break: ~2% of decisions branch on a random unassigned
  // variable with a random polarity. The variable stays in the heap; a
  // later pop sees it assigned and skips it.
  if (RandomizeBranching && !Heap.empty() && TieRng.nextBelow(50) == 0) {
    Var V = Heap[TieRng.nextBelow(Heap.size())];
    if (Assigns[V] == LBool::Undef)
      return Lit(V, TieRng.nextBool());
  }
  while (!Heap.empty()) {
    Var V = heapPop();
    if (Assigns[V] == LBool::Undef)
      return Lit(V, !SavedPhase[V]);
  }
  return Lit::undef();
}

ClauseRef Solver::learnClause(std::vector<Lit> Lits) {
  if (Lits.size() == 1)
    return NoReason; // handled by caller via enqueue at level 0
  ClauseRef Ref = allocClause(Lits, /*Learned=*/true);
  Arena[Ref].setActivity(static_cast<float>(ClauseInc));
  LearntClauses.push_back(Ref);
  ++NumLiveLearnts;
  // Only ever called right after analyze(), whose antecedent hints
  // justify exactly this clause.
  proofDerive(Ref, HintIds);
  attachClause(Ref);
  ++Stats.LearnedClauses;
  return Ref;
}

void Solver::reduceDB() {
  obs::TraceSpan Span("reduce_db", {{"learnts", LearntClauses.size()}});
  // Collect learned, non-reason clauses and drop the less retained half.
  // The caller has already checked the live-learnt trigger (locked
  // clauses included — see NumLiveLearnts).
  std::unordered_set<ClauseRef> Locked;
  for (Lit L : Trail)
    if (Reason[L.var()] != NoReason)
      Locked.insert(Reason[L.var()]);

  // Retention order: primarily by how many unsolved cubes a clause's
  // variables participate in (when the cube driver installed a view),
  // then by VSIDS activity. A lemma over variables that many pending
  // cubes assume is shared structure the solver would otherwise
  // re-derive per cube.
  const std::vector<uint32_t> *View = RetentionView.get();
  struct Cand {
    uint32_t CubeScore;
    float Act;
    ClauseRef Ref;
    bool operator<(const Cand &O) const {
      if (Act != O.Act)
        return Act < O.Act;
      return CubeScore < O.CubeScore;
    }
  };
  std::vector<Cand> Candidates;
  Candidates.reserve(LearntClauses.size());
  for (ClauseRef R : LearntClauses) {
    Clause C = Arena[R];
    if (C.deleted() || Locked.count(R))
      continue;
    uint32_t Score = 0;
    if (View)
      for (Lit L : C.lits())
        if (static_cast<size_t>(L.var()) < View->size())
          Score = std::max(Score, (*View)[L.var()]);
    Candidates.push_back({Score, C.activity(), R});
  }

  size_t NumVictims = Candidates.size() / 2;
  if (NumVictims == 0)
    return;
  std::sort(Candidates.begin(), Candidates.end());
  for (size_t I = 0; I != NumVictims; ++I) {
    ClauseRef Victim = Candidates[I].Ref;
    Clause C = Arena[Victim];
    if (ProofSink && C.proofId() > 0)
      ProofSink->onRetire(static_cast<uint64_t>(C.proofId()));
    Arena.markDeleted(Victim);
    --NumLiveLearnts;
  }

  // Drop the victims from the learnt list...
  LearntClauses.erase(
      std::remove_if(LearntClauses.begin(), LearntClauses.end(),
                     [&](ClauseRef R) { return Arena[R].deleted(); }),
      LearntClauses.end());

  // ... and unlink only them from the watch lists: one erase-remove
  // sweep, keeping every survivor's watch positions and blockers (the
  // pre-arena full rebuild reset all watches to the first two literals
  // and re-propagated the whole trail from scratch on every reduction).
  for (auto &WL : Watches) {
    size_t Keep = 0;
    for (Watcher W : WL) {
      ClauseRef R = isBinaryMark(W.Ref) ? fromBinaryMark(W.Ref) : W.Ref;
      if (!Arena[R].deleted())
        WL[Keep++] = W;
    }
    WL.resize(Keep);
    // Re-normalize the surviving watcher order: binary watchers first
    // (they resolve without touching clause memory), then arena-offset
    // order, so problem clauses and older lemmas are tried as reasons
    // before younger ones. The full rebuild this sweep replaces got
    // that ordering for free by re-attaching in clause order; dropping
    // it silently leaves watchers in drifted insertion order, which
    // costs ~30% extra conflicts on surface9 t=4.
    std::stable_sort(WL.begin(), WL.end(), [](Watcher A, Watcher B) {
      bool BinA = isBinaryMark(A.Ref), BinB = isBinaryMark(B.Ref);
      if (BinA != BinB)
        return BinA;
      ClauseRef RA = BinA ? fromBinaryMark(A.Ref) : A.Ref;
      ClauseRef RB = BinB ? fromBinaryMark(B.Ref) : B.Ref;
      return RA < RB;
    });
  }
}

void Solver::checkGarbage() {
  size_t Wasted = Arena.wastedWords();
  if (Wasted == 0 ||
      static_cast<double>(Wasted) <
          GarbageFrac * static_cast<double>(Arena.sizeWords()))
    return;
  garbageCollect();
}

void Solver::garbageCollect() {
  obs::TraceSpan Span(
      "arena_gc", {{"wasted_bytes", Arena.wastedWords() * sizeof(uint32_t)}});
  if (obs::metricsEnabled()) {
    static obs::Histogram &WasteHist =
        obs::Registry::global().histogram("sat.arena_waste_bytes");
    WasteHist.observe(Arena.wastedWords() * sizeof(uint32_t));
  }
  ClauseArena To;
  To.reserveWords(Arena.sizeWords() - Arena.wastedWords());
  relocAll(To);
  Stats.WastedBytes +=
      (Arena.sizeWords() - To.sizeWords()) * sizeof(uint32_t);
  ++Stats.Compactions;
  Arena = std::move(To);
}

void Solver::relocAll(ClauseArena &To) {
  // Watchers (the binary mark round-trips through the relocation).
  for (auto &WL : Watches)
    for (Watcher &W : WL) {
      if (isBinaryMark(W.Ref)) {
        ClauseRef R = fromBinaryMark(W.Ref);
        Arena.reloc(R, To);
        W.Ref = binaryMark(R);
      } else {
        Arena.reloc(W.Ref, To);
      }
    }
  // Reasons of assigned variables. This keeps deleted-but-locked
  // tombstones alive (an XOR unit justification of a prefix literal,
  // say) — their literals must stay readable for conflict analysis.
  for (Lit L : Trail)
    if (Reason[L.var()] != NoReason)
      Arena.reloc(Reason[L.var()], To);
  // Clause lists. Problem clauses are never deleted; learnt tombstones
  // nothing relocated above are garbage and fall out of the list (and
  // the arena) here.
  for (ClauseRef &R : ProblemClauses)
    Arena.reloc(R, To);
  size_t Keep = 0;
  for (ClauseRef R : LearntClauses) {
    Clause C = Arena[R];
    if (C.deleted() && !C.reloced())
      continue;
    Arena.reloc(R, To);
    LearntClauses[Keep++] = R;
  }
  LearntClauses.resize(Keep);
}

void Solver::importSharedClauses() {
  if (!SharedPool)
    return;
  std::vector<std::vector<Lit>> Incoming;
  SharedPool->fetch(PoolOwnerId, PoolCursor, Incoming);
  for (std::vector<Lit> &C : Incoming) {
    if (!OkState)
      return;
    // Mark imported lemmas as learned so reduceDB can reclaim cold ones;
    // addClause may simplify a lemma away entirely (satisfied at root).
    size_t Before = ProblemClauses.size();
    addClause(std::move(C));
    while (ProblemClauses.size() > Before) {
      ClauseRef R = ProblemClauses.back();
      ProblemClauses.pop_back();
      Clause Cl = Arena[R];
      // A fresh import can never carry a derivation serial: addClause
      // only ever writes header-record (negative) ids. The pre-arena
      // bookkeeping violated this — a recycled clause slot could alias a
      // stale serial and retire someone else's derivation.
      assert(Cl.proofId() <= 0 &&
             "imported clause carries a derivation serial");
      // An import is not a header record either; as a hint antecedent it
      // has no proof identity (proofs and pools do not combine anyway).
      Cl.setProofId(0);
      Cl.setLearned(true);
      Cl.setActivity(static_cast<float>(ClauseInc));
      LearntClauses.push_back(R);
      ++NumLiveLearnts;
    }
  }
}

void Solver::analyzeFinal(Lit Failed) {
  ConflictCore.clear();
  ConflictCoreHints.clear();
  ConflictCore.push_back(Failed);
  if (decisionLevel() == 0 || Level[Failed.var()] == 0)
    return; // ~Failed is root-implied: the core is the assumption alone
  // Walk the reason cone of ~Failed down the trail; decisions reached
  // below the current (all-assumption) prefix are the used assumptions.
  // The reasons crossed are the conclusion's proof hints: asserting the
  // core, each becomes unit in trail order until the reason of ~Failed
  // itself — whose head literal contradicts the asserted assumption —
  // closes the replay with a conflict.
  HintSteps.clear();
  Seen[Failed.var()] = 1;
  for (size_t I = Trail.size(); I-- > static_cast<size_t>(TrailLim[0]);) {
    Var V = Trail[I].var();
    if (!Seen[V])
      continue;
    Seen[V] = 0;
    if (Reason[V] == NoReason) {
      ConflictCore.push_back(Trail[I]);
      continue;
    }
    if (ProofSink)
      HintSteps.emplace_back(TrailPosOf[V], Reason[V]);
    const Clause C = Arena[Reason[V]];
    for (size_t J = 0; J != C.size(); ++J)
      if (C[J].var() != V && Level[C[J].var()] > 0)
        Seen[C[J].var()] = 1;
  }
  if (ProofSink)
    finalizeHintIds(ConflictCoreHints);
}

SolveResult Solver::solve(const std::vector<Lit> &Assumptions) {
  ConflictCore.clear();
  ConflictCoreHints.clear();
  if (!OkState)
    return SolveResult::Unsat;
  // Clause import must happen at the root; only pay the full backtrack
  // when a sibling actually published something.
  if (SharedPool && SharedPool->hasNewsFor(PoolOwnerId, PoolCursor)) {
    backtrack(0);
    importSharedClauses();
    if (!OkState)
      return SolveResult::Unsat;
  }
  if (Gauss.hasRows() && Gauss.needsFinalize()) {
    // XOR rows were (re)registered since the last basis build: rebuild
    // it (and its consistency verdict) at the root. The engine re-syncs
    // against the whole trail afterwards, so root units added before
    // the rows are folded in on the first propagation.
    backtrack(0);
    if (!Gauss.finalize()) {
      OkState = false;
      return SolveResult::Unsat;
    }
  }
  if (PropagateHead != Trail.size()) {
    // A budget-aborted call left propagation pending; restart from the
    // root and re-scan rather than reason about a half-propagated trail.
    backtrack(0);
    PropagateHead = 0;
  }
  // Incremental assumption-prefix reuse: keep the trail levels of the
  // longest common prefix with the previous call's assumptions (level
  // i+1 is PrevAssumptions[i]'s decision level — search decisions only
  // ever sit above the full assumption prefix).
  size_t Keep = 0;
  size_t MaxKeep =
      std::min({Assumptions.size(), PrevAssumptions.size(),
                static_cast<size_t>(decisionLevel())});
  while (Keep < MaxKeep && Assumptions[Keep] == PrevAssumptions[Keep])
    ++Keep;
  backtrack(static_cast<int32_t>(Keep));
  PrevAssumptions = Assumptions;

  uint64_t RestartIdx = 1;
  uint64_t ConflictsUntilRestart = 100 * lubySequence(RestartIdx);
  uint64_t ConflictsAtStart = Stats.Conflicts;
  std::vector<Lit> Learnt;

  while (true) {
    if (AbortFlag && AbortFlag->load(std::memory_order_relaxed))
      return SolveResult::Aborted;

    ClauseRef Confl = propagateFixpoint();
    if (Confl != NoReason) {
      ++Stats.Conflicts;
      {
        // The conflict clause may contain no literal of the current
        // decision level — which analyze() requires. XOR conflicts can
        // surface lazily (cross-row eliminations run intermittently),
        // and under chronological backtracking an out-of-order
        // propagation can falsify a clause whose literals all sit at
        // lower levels. Dropping to the clause's highest level first
        // restores the invariant for every conflict source; for
        // eagerly-detected CNF conflicts without chrono this is a no-op.
        int32_t MaxLvl = 0;
        for (Lit L : Arena[Confl].lits())
          MaxLvl = std::max(MaxLvl, Level[L.var()]);
        if (MaxLvl < decisionLevel())
          backtrack(MaxLvl);
      }
      if (decisionLevel() == 0) {
        // Conflict with no decisions (assumptions included): the formula
        // itself is unsatisfiable, for this and every future call.
        OkState = false;
        return SolveResult::Unsat;
      }
      int32_t BtLevel = 0;
      analyze(Confl, Learnt, BtLevel);
      if (SharedPool && Learnt.size() <= PoolMaxShareLen)
        SharedPool->publish(PoolOwnerId, Learnt);
      // Backtrack policy. Chronological (Nadel & Ryvchin): when the
      // non-chronological jump would cross the assumption prefix, step
      // back a single level instead — the trail below stays in place,
      // and the asserting literal is enqueued out of order at its true
      // implication level (lazy reimplication). This deletes the
      // per-conflict prefix re-decide + re-propagate on long-prefix
      // workloads (the distance search's weight-bound assumptions).
      // Without chrono, the classic full backjump to BtLevel (the PR 3
      // prefix cap is gone: measured, full backjumps below the prefix
      // beat capped ones on the cube path — the deep jump lets the
      // learnt clause assert early and prunes the re-extended search).
      int32_t Target = BtLevel;
      if (Chrono && BtLevel < decisionLevel() - 1) {
        int32_t Prefix = static_cast<int32_t>(
            std::min(Assumptions.size(), TrailLim.size()));
        if (BtLevel < Prefix) {
          Target = decisionLevel() - 1;
          ++Stats.ChronoBacktracks;
        }
      }
      backtrack(Target);
      if (static_cast<size_t>(decisionLevel()) <= Assumptions.size() &&
          declareUnsatOnPrefixBackjump())
        return SolveResult::Unsat; // the re-introducible PR 1 bug (seam)
      if (Learnt.size() == 1) {
        // Unit learnts bypass learnClause (no clause object), but they
        // are derivations all the same — and the checker needs them as
        // root facts for every later clause's unit-propagation replay.
        // Enqueued at level 0 (out of order when a chrono step kept
        // higher levels alive): a root fact survives every future
        // backtrack, so nothing above needs tearing down for it.
        if (ProofSink) {
          ProofSink->onDerive(Learnt, HintIds);
          ++DeriveCount;
        }
        if (valueOf(Learnt[0]) == LBool::False) {
          OkState = false;
          return SolveResult::Unsat;
        }
        if (valueOf(Learnt[0]) == LBool::Undef)
          enqueue(Learnt[0], NoReason, 0);
      } else {
        // Asserting at BtLevel — the level of the watched second
        // literal — regardless of where the chrono policy left the
        // search; with a full backjump this IS the current level.
        ClauseRef Ref = learnClause(std::move(Learnt));
        enqueue(Arena[Ref][0], Ref, BtLevel);
        Learnt = {};
      }
      decayActivities();

      if (ConflictBudget &&
          Stats.Conflicts - ConflictsAtStart >= ConflictBudget)
        return SolveResult::Aborted;
      if (Stats.Conflicts - ConflictsAtStart >= ConflictsUntilRestart) {
        ++Stats.Restarts;
        ++RestartIdx;
        ConflictsUntilRestart =
            Stats.Conflicts - ConflictsAtStart + 100 * lubySequence(RestartIdx);
        backtrack(static_cast<int32_t>(
            std::min<size_t>(Assumptions.size(), TrailLim.size())));
        // Hoisted trigger: restarts below the cap skip reduceDB's
        // O(trail + learnts) scan entirely.
        if (NumLiveLearnts >= MaxLearned)
          reduceDB();
        checkGarbage();
      }
      continue;
    }

    // No conflict: extend with assumptions first, then decisions.
    if (static_cast<size_t>(decisionLevel()) < Assumptions.size()) {
      Lit A = Assumptions[decisionLevel()];
      LBool V = valueOf(A);
      if (V == LBool::False) {
        analyzeFinal(A);
        return SolveResult::Unsat;
      }
      TrailLim.push_back(static_cast<int32_t>(Trail.size()));
      if (V == LBool::Undef)
        enqueue(A, NoReason);
      continue;
    }

    Lit Next = pickBranchLit();
    if (Next.isUndef()) {
      // Full model found.
      Model = Assigns;
      backtrack(0);
      return SolveResult::Sat;
    }
    ++Stats.Decisions;
    TrailLim.push_back(static_cast<int32_t>(Trail.size()));
    enqueue(Next, NoReason);
  }
}

// -- Binary max-heap keyed by VSIDS activity --------------------------------

void Solver::heapInsert(Var V) {
  HeapPos[V] = static_cast<int32_t>(Heap.size());
  Heap.push_back(V);
  heapSiftUp(Heap.size() - 1);
}

void Solver::heapUpdate(Var V) {
  heapSiftUp(static_cast<size_t>(HeapPos[V]));
}

Var Solver::heapPop() {
  Var Top = Heap[0];
  HeapPos[Top] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapPos[Heap[0]] = 0;
    heapSiftDown(0);
  }
  return Top;
}

void Solver::heapSiftUp(size_t Idx) {
  Var V = Heap[Idx];
  while (Idx > 0) {
    size_t Parent = (Idx - 1) / 2;
    if (!heapLess(V, Heap[Parent]))
      break;
    Heap[Idx] = Heap[Parent];
    HeapPos[Heap[Idx]] = static_cast<int32_t>(Idx);
    Idx = Parent;
  }
  Heap[Idx] = V;
  HeapPos[V] = static_cast<int32_t>(Idx);
}

void Solver::heapSiftDown(size_t Idx) {
  Var V = Heap[Idx];
  while (true) {
    size_t Child = 2 * Idx + 1;
    if (Child >= Heap.size())
      break;
    if (Child + 1 < Heap.size() && heapLess(Heap[Child + 1], Heap[Child]))
      ++Child;
    if (!heapLess(Heap[Child], V))
      break;
    Heap[Idx] = Heap[Child];
    HeapPos[Heap[Idx]] = static_cast<int32_t>(Idx);
    Idx = Child;
  }
  Heap[Idx] = V;
  HeapPos[V] = static_cast<int32_t>(Idx);
}
