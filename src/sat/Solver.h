//===- sat/Solver.h - CDCL SAT solver ---------------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the MiniSat lineage:
/// two-watched-literal propagation, first-UIP learning with clause
/// minimization, VSIDS branching with phase saving, Luby restarts and
/// activity-based learned-clause deletion. It is the decision engine that
/// replaces Z3/CVC5 in this reproduction (see DESIGN.md, substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SAT_SOLVER_H
#define VERIQEC_SAT_SOLVER_H

#include "sat/ClauseArena.h"
#include "sat/GaussEngine.h"
#include "sat/SatTypes.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace veriqec::sat {

/// Result of a solve() call.
enum class SolveResult { Sat, Unsat, Aborted };

/// A thread-safe exchange of short learned clauses between the solvers
/// attacking cubes of the same problem (the engine's workers). Learned
/// clauses are derived by resolution from the shared clause database, so
/// they are valid for every sibling regardless of its assumptions;
/// sharing them collapses the duplicated learning that otherwise makes
/// per-worker solvers re-derive the same lemmas. Entries are capped to
/// bound memory and import cost.
class SharedClausePool {
public:
  explicit SharedClausePool(size_t MaxEntries = 4096)
      : MaxEntries(MaxEntries) {}

  /// Publishes a learned clause on behalf of \p Owner (dropped once the
  /// pool is full). The full flag is checked before locking so a
  /// saturated pool costs one relaxed load on the conflict hot path.
  void publish(int Owner, const std::vector<Lit> &Lits) {
    if (Full.load(std::memory_order_relaxed))
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Entries.size() < MaxEntries)
      Entries.emplace_back(Owner, Lits);
    else
      Full.store(true, std::memory_order_relaxed);
  }

  /// Appends every clause published by *other* owners since \p Cursor to
  /// \p Out and advances the cursor.
  void fetch(int Owner, size_t &Cursor,
             std::vector<std::vector<Lit>> &Out) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (; Cursor < Entries.size(); ++Cursor)
      if (Entries[Cursor].first != Owner)
        Out.push_back(Entries[Cursor].second);
  }

  /// True iff fetch() would deliver anything; skips \p Cursor past the
  /// owner's own entries so repeated polling stays O(1) amortized. Lets
  /// a solver keep its assumption-prefix trail alive across solve()
  /// calls instead of unconditionally returning to the root to import.
  bool hasNewsFor(int Owner, size_t &Cursor) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    while (Cursor < Entries.size() && Entries[Cursor].first == Owner)
      ++Cursor;
    return Cursor < Entries.size();
  }

private:
  const size_t MaxEntries;
  std::atomic<bool> Full{false};
  mutable std::mutex Mutex;
  std::vector<std::pair<int, std::vector<Lit>>> Entries;
};

/// Observer of the solver's clause derivations, the hook proof logging
/// hangs on (proof/ProofLog.h implements it). Every clause the solver
/// derives — CDCL learnt clauses (units included), clauses materialized
/// by the XOR engine as reasons or conflicts, and root implications of
/// the XOR system — is reported through onDerive() in derivation order;
/// the n-th reported clause has serial n (1-based), and onRetire() names
/// that serial when reduceDB drops the clause. Clauses added through
/// addClause() are NOT reported: they are the problem statement, which
/// the proof header already carries.
///
/// \p Hints, when non-empty, are the LRAT-style antecedents of a CDCL
/// learnt clause: the clauses conflict analysis actually resolved,
/// ordered so a checker that asserts the clause's negation can derive a
/// unit from each hint in turn and reach a conflict at the last — no
/// watched-literal search needed. Positive hints name earlier
/// derivations by serial; negative hints name header clauses (-k is the
/// k-th clause record of the problem statement). Hints are an
/// accelerator only: a checker unable to use them (or a derivation
/// reported without them, like XOR materializations) falls back to full
/// reverse unit propagation.
class ClauseProofSink {
public:
  virtual ~ClauseProofSink() = default;
  virtual void onDerive(std::span<const Lit> Lits,
                        std::span<const int64_t> Hints = {}) = 0;
  virtual void onRetire(uint64_t Serial) = 0;
};

/// Aggregate statistics for benchmarking and diagnostics.
struct SolverStats {
  uint64_t Decisions = 0;
  /// Literals implied through binary watchers (resolved without touching
  /// clause memory) and through long-clause watch traversal. Together
  /// with XorPropagations these partition what used to be one
  /// Propagations counter; propagations() restores the total.
  uint64_t BinPropagations = 0;
  uint64_t LongPropagations = 0;
  uint64_t Conflicts = 0;
  uint64_t LearnedClauses = 0;
  uint64_t Restarts = 0;
  /// Conflicts resolved by stepping back one level (keeping the rest of
  /// the trail in place) instead of a full non-chronological backjump.
  uint64_t ChronoBacktracks = 0;
  /// Assignments enqueued at a level below the current decision level
  /// (lazy reimplication under chronological backtracking).
  uint64_t OutOfOrderAssignments = 0;
  /// Trail literals preserved across backtracks because their level is
  /// at or below the target (the chrono trail-saving win: each one is a
  /// propagation the solver did not redo).
  uint64_t TrailSavedLits = 0;
  /// Literals implied by the native XOR engine (sat/GaussEngine.h).
  uint64_t XorPropagations = 0;
  /// Conflicts the XOR engine detected before CNF propagation could.
  uint64_t XorConflicts = 0;
  /// Cross-row eliminations of the residual GF(2) system.
  uint64_t XorEliminations = 0;
  /// Peak clause-arena footprint in bytes (summed over slot solvers when
  /// aggregated: the total clause-storage high-water mark of a run).
  uint64_t ArenaBytes = 0;
  /// Cumulative bytes reclaimed by arena compaction.
  uint64_t WastedBytes = 0;
  /// Arena compactions (garbageCollect() runs).
  uint64_t Compactions = 0;

  /// Total implied literals across every propagation engine — the
  /// headline number displays want, independent of the split above.
  uint64_t propagations() const {
    return BinPropagations + LongPropagations + XorPropagations;
  }

  /// Aggregation and delta are needed in one place per layer (engine
  /// slot totals, wire-format deltas, coordinator merging, distance
  /// probes); keeping them here means a new counter cannot be summed in
  /// one consumer and silently dropped in another.
  SolverStats &operator+=(const SolverStats &O) {
    Decisions += O.Decisions;
    BinPropagations += O.BinPropagations;
    LongPropagations += O.LongPropagations;
    Conflicts += O.Conflicts;
    LearnedClauses += O.LearnedClauses;
    Restarts += O.Restarts;
    ChronoBacktracks += O.ChronoBacktracks;
    OutOfOrderAssignments += O.OutOfOrderAssignments;
    TrailSavedLits += O.TrailSavedLits;
    XorPropagations += O.XorPropagations;
    XorConflicts += O.XorConflicts;
    XorEliminations += O.XorEliminations;
    ArenaBytes += O.ArenaBytes;
    WastedBytes += O.WastedBytes;
    Compactions += O.Compactions;
    return *this;
  }
  /// Counter-wise delta (all counters are monotone).
  SolverStats operator-(const SolverStats &O) const {
    SolverStats D;
    D.Decisions = Decisions - O.Decisions;
    D.BinPropagations = BinPropagations - O.BinPropagations;
    D.LongPropagations = LongPropagations - O.LongPropagations;
    D.Conflicts = Conflicts - O.Conflicts;
    D.LearnedClauses = LearnedClauses - O.LearnedClauses;
    D.Restarts = Restarts - O.Restarts;
    D.ChronoBacktracks = ChronoBacktracks - O.ChronoBacktracks;
    D.OutOfOrderAssignments = OutOfOrderAssignments - O.OutOfOrderAssignments;
    D.TrailSavedLits = TrailSavedLits - O.TrailSavedLits;
    D.XorPropagations = XorPropagations - O.XorPropagations;
    D.XorConflicts = XorConflicts - O.XorConflicts;
    D.XorEliminations = XorEliminations - O.XorEliminations;
    D.ArenaBytes = ArenaBytes - O.ArenaBytes;
    D.WastedBytes = WastedBytes - O.WastedBytes;
    D.Compactions = Compactions - O.Compactions;
    return D;
  }
};

/// CDCL SAT solver. Typical usage:
/// \code
///   Solver S;
///   Var A = S.newVar(), B = S.newVar();
///   S.addClause({mkLit(A), mkLit(B)});
///   if (S.solve() == SolveResult::Sat) bool VA = S.modelValue(A);
/// \endcode
class Solver {
public:
  Solver();
  // The virtual destructor (for the test seam below) would otherwise
  // suppress the implicit move operations, turning makeSolver() returns
  // into full clause-database copies. Copies stay protected: copying a
  // polymorphic solver by value would silently slice a subclass.
  virtual ~Solver() = default;
  Solver(Solver &&) = default;
  Solver &operator=(Solver &&) = default;

  /// Creates a fresh variable and returns its index.
  Var newVar();

  /// Number of variables created so far.
  size_t numVars() const { return Assigns.size(); }

  /// Adds a clause. Returns false if the formula became trivially
  /// unsatisfiable (empty clause after simplification at level 0).
  bool addClause(std::vector<Lit> Lits);

  /// Convenience overloads.
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Adds a native XOR constraint: XOR over \p Lits == \p Odd. Negated
  /// literals fold into the parity, duplicate variables cancel in pairs.
  /// The constraint is handled by the Gauss-in-the-loop engine instead of
  /// a CNF encoding: no auxiliary variables, and cross-constraint GF(2)
  /// elimination during search. Returns false if the formula became
  /// trivially unsatisfiable (empty XOR with odd parity).
  bool addXorClause(const std::vector<Lit> &Lits, bool Odd);

  /// Rows of the XOR basis (0 before the first solve builds it).
  size_t numXorRows() const { return Gauss.numRows(); }

  /// Solves under the given assumptions (checked before any decision).
  SolveResult solve(const std::vector<Lit> &Assumptions = {});

  /// After Sat: the value of \p V in the found model.
  bool modelValue(Var V) const { return Model[V] == LBool::True; }

  /// Limits the search to approximately \p MaxConflicts conflicts;
  /// 0 means unlimited. Exceeding the budget returns Aborted.
  void setConflictBudget(uint64_t MaxConflicts) {
    ConflictBudget = MaxConflicts;
  }

  /// Installs an external cancellation flag polled during search (used by
  /// the parallel driver to stop siblings once an answer is known).
  void setAbortFlag(const std::atomic<bool> *Flag) { AbortFlag = Flag; }

  /// Connects this solver to a clause exchange: clauses it learns with at
  /// most \p MaxShareLen literals are published under \p OwnerId, and
  /// clauses published by siblings are imported at the start of every
  /// solve() call.
  void attachSharedPool(SharedClausePool *Pool, int OwnerId,
                        uint32_t MaxShareLen = 8) {
    SharedPool = Pool;
    PoolOwnerId = OwnerId;
    PoolMaxShareLen = MaxShareLen;
    PoolCursor = 0;
  }

  /// Enables seeded random branching tie-breaks: occasionally a random
  /// (rather than highest-activity) variable is decided, with a random
  /// polarity. Soundness is unaffected — only the search order changes —
  /// but runs become exactly reproducible per seed, which is what the
  /// fuzzing harness needs to replay a failure. Seed 0 restores the
  /// deterministic pure-VSIDS default.
  void setRandomSeed(uint64_t Seed) {
    RandomizeBranching = Seed != 0;
    TieRng = Rng(Seed);
  }

  /// Installs (or clears, with nullptr) a derivation observer. Attach
  /// before the first solve() call on a freshly loaded solver, so the
  /// observer sees every derived clause from serial 1; do not combine
  /// with attachSharedPool — imported clauses enter through addClause
  /// and would be invisible to the proof. Not owned.
  void setProofSink(ClauseProofSink *Sink) { ProofSink = Sink; }

  /// After solve() returned Unsat: the subset of that call's assumptions
  /// the refutation actually used (the failed core, MiniSat's
  /// analyzeFinal). An empty core means the clause database refutes the
  /// formula regardless of assumptions — the cube engine uses this to
  /// conclude a whole problem is UNSAT from a single cube, and the
  /// distance search to stop tightening a weight selector that no longer
  /// matters. Contents are unspecified after Sat/Aborted.
  const std::vector<Lit> &conflictCore() const { return ConflictCore; }

  /// Proof hints justifying conflictCore(): the reason clauses of the
  /// refutation cone, ordered so each becomes unit in turn when the core
  /// is asserted (the last one conflicting). Empty when no sink is
  /// attached, when the core came without a cone (root-implied), or when
  /// an antecedent has no proof identity. Same id scheme as derivation
  /// hints; the proof's q records carry them.
  const std::vector<int64_t> &conflictCoreHints() const {
    return ConflictCoreHints;
  }

  const SolverStats &stats() const { return Stats; }

  /// Installs (or clears, with nullptr) a shared variable →
  /// pending-cube-count view. While installed, reduceDB retains clauses
  /// whose variables participate in many *unsolved* cubes in preference
  /// to pure activity: those lemmas constrain search the solver has not
  /// run yet, so dropping them means re-deriving them cube after cube.
  /// The cube driver (engine/CubeRun.h) refreshes the view at batch
  /// boundaries; without one, retention is pure activity order.
  void setRetentionView(
      std::shared_ptr<const std::vector<uint32_t>> View) {
    RetentionView = std::move(View);
  }

  /// Arena-compaction trigger: collect when wasted words exceed this
  /// fraction of the arena (default 0.2, the minisat garbage_frac
  /// convention). 0 forces a compaction at every restart that has any
  /// garbage at all — the test batteries use that to shake out
  /// relocation bugs.
  void setGarbageFraction(double Frac) { GarbageFrac = Frac; }

  /// Process-wide default for setGarbageFraction, applied to every
  /// subsequently constructed solver. A test knob (the smt/engine layers
  /// build their slot solvers internally); set it only while no solver
  /// is running.
  static void setDefaultGarbageFraction(double Frac);

  /// Learned-clause cap driving reduceDB (test knob; production default
  /// 8192).
  void setMaxLearned(size_t Max) { MaxLearned = Max; }

  /// Enables chronological backtracking (Nadel & Ryvchin, SAT'18): a
  /// conflict whose backjump would cross the assumption prefix instead
  /// steps back a single level, and the learnt clause's asserting
  /// literal is enqueued out of order at its true implication level
  /// (lazy reimplication, Möhle & Biere SAT'19).
  /// Backtracks additionally save every trail literal whose level is at
  /// or below the target, so sibling-cube solve() calls reuse surviving
  /// segments beyond the longest-common-prefix logic. Off (the default)
  /// restores classic non-chronological backjumping. Verdicts and models
  /// are unaffected either way — only the search path changes.
  void setChrono(bool Enable) { Chrono = Enable; }

  /// Whether chronological backtracking is enabled.
  bool chrono() const { return Chrono; }

  /// Compact the arena unconditionally — even with zero waste, so a
  /// caller can force a full relocation pass between solve() calls.
  /// Used by the test batteries to prove verdicts, models and proof
  /// identities survive relocation without having to provoke the
  /// restart-path trigger on small instances.
  void forceGarbageCollect() { garbageCollect(); }

  /// Live (non-deleted) learned clauses currently in the database.
  size_t liveLearnts() const { return NumLiveLearnts; }

  /// Current clause-arena footprint in bytes (Stats.ArenaBytes is the
  /// peak; the difference is what compaction has handed back).
  size_t arenaBytes() const { return Arena.sizeBytes(); }

protected:
  Solver(const Solver &) = default;
  Solver &operator=(const Solver &) = default;

  /// Test seam for the fuzzing harness: called when a conflict-driven
  /// backjump lands at or below the assumption prefix. Returning true
  /// declares UNSAT right there — the PR 1 soundness bug family
  /// (mistaking a backjump into the prefix for unsatisfiability), which
  /// silently flips satisfiable cubes under solver reuse. The production
  /// solver always returns false (the prefix survives the capped
  /// backjump, or is re-extended by the search loop); harness tests
  /// override this to prove the differential oracles catch the bug.
  virtual bool declareUnsatOnPrefixBackjump() const { return false; }

  /// Test seam for the fuzzing harness: when true, every XOR reason
  /// clause with at least two dependencies is materialized with one
  /// dependency silently dropped — an under-justified reason whose
  /// resolvents over-prune the search, the characteristic way a buggy
  /// Gaussian reason computation goes wrong (it silently flips SAT cubes
  /// to UNSAT). The production solver never corrupts; harness tests
  /// override this to prove the differential oracles catch the bug.
  virtual bool corruptXorReasonClause() const { return false; }

  /// Test seam for the fuzzing harness: when true, conflict analysis
  /// misreads the level of every out-of-order assignment (lazy
  /// reimplication under chronological backtracking) as root level, so
  /// the literal silently falls out of the learnt clause — the
  /// characteristic way a buggy reimplication level computation goes
  /// wrong. The over-strong lemmas unsoundly prune satisfiable cubes
  /// and their derivations are non-RUP, so both the differential layer
  /// and the proof checker have something to catch. The production
  /// solver never corrupts; harness tests override this to prove both
  /// oracles do.
  virtual bool corruptOutOfOrderLevel() const { return false; }

private:
  friend class GaussEngine;

  // -- Internal state ------------------------------------------------------
  // ClauseRef (sat/ClauseArena.h) is a word offset into Arena; always
  // >= 0, so the negative range below stays free for the markers.
  static constexpr ClauseRef NoReason = -1;

  /// Binary clauses are encoded entirely in their watchers: the blocker
  /// is the other literal and the reference is marked (mapped below -1,
  /// clear of NoReason) so propagation can decide satisfied / unit /
  /// conflicting without loading the clause.
  static constexpr ClauseRef binaryMark(ClauseRef R) { return -R - 2; }
  static constexpr bool isBinaryMark(ClauseRef R) { return R <= -2; }
  static constexpr ClauseRef fromBinaryMark(ClauseRef R) { return -R - 2; }

  struct Watcher {
    ClauseRef Ref;
    Lit Blocker;
  };

  /// All clause storage (problem, learnt, XOR-materialized) lives in one
  /// relocating arena; the two lists below index into it. Deleted
  /// clauses are tombstoned in place and reclaimed by garbageCollect().
  ClauseArena Arena;
  std::vector<ClauseRef> ProblemClauses;
  std::vector<ClauseRef> LearntClauses;
  /// Non-deleted learned clauses (locked or not) — the reduceDB trigger.
  /// Counting only unlocked candidates (the pre-arena accounting) lets
  /// the database grow without bound under long assumption prefixes,
  /// where most reasons stay locked across restarts.
  size_t NumLiveLearnts = 0;
  double GarbageFrac;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit.Code
  std::vector<LBool> Assigns;                // indexed by Var
  std::vector<LBool> Model;
  std::vector<bool> SavedPhase;
  std::vector<ClauseRef> Reason;
  std::vector<int32_t> Level;
  /// Trail index of each assigned variable (stale for unassigned ones);
  /// conflict analysis sorts proof hints by it.
  std::vector<uint32_t> TrailPosOf;
  std::vector<Lit> Trail;
  std::vector<int32_t> TrailLim;
  size_t PropagateHead = 0;

  // VSIDS.
  std::vector<double> Activity;
  double VarInc = 1.0;
  double VarDecay = 0.95;
  std::vector<Var> Heap; // binary max-heap of variables by activity
  std::vector<int32_t> HeapPos;

  double ClauseInc = 1.0;
  double ClauseDecay = 0.999;
  size_t MaxLearned = 8192;

  bool RandomizeBranching = false;
  Rng TieRng;

  /// Chronological backtracking (setChrono). Off by default: the smt /
  /// engine layers resolve ChronoMode::Auto per workload.
  bool Chrono = false;
  /// Scratch for backtrack(): out-of-order literals at or below the
  /// target level, re-appended after the teardown.
  std::vector<Lit> SaveScratch;

  bool OkState = true;
  uint64_t ConflictBudget = 0;
  const std::atomic<bool> *AbortFlag = nullptr;
  SharedClausePool *SharedPool = nullptr;
  int PoolOwnerId = -1;
  uint32_t PoolMaxShareLen = 8;
  size_t PoolCursor = 0;
  SolverStats Stats;

  /// Proof logging (null = off, the default: the hooks below then cost
  /// one pointer test each).
  ClauseProofSink *ProofSink = nullptr;
  /// Count of derivations reported to the sink; the serial of the most
  /// recent one. Serials are also stored inside the clause (the proof-id
  /// word, see ClauseArena.h), so they must fit an int32.
  uint64_t DeriveCount = 0;
  /// Count of addClause() calls (stored or simplified away). A stored
  /// clause's proof-id word carries the negated sequence number: the
  /// clause's record index in the proof header, which is what a negative
  /// proof hint names.
  uint32_t AddClauseSeq = 0;
  /// Scratch for conflict analysis: the antecedents of the current
  /// conflict as (trail position of the implied literal, clause) pairs
  /// (the conflicting clause itself implies nothing and sorts last), and
  /// the hint ids they map to. Only filled while a sink is attached.
  std::vector<std::pair<uint32_t, ClauseRef>> HintSteps;
  std::vector<std::pair<uint32_t, ClauseRef>> RedundantSteps;
  std::vector<int64_t> HintIds;
  std::vector<int64_t> ConflictCoreHints;

  /// Reports \p Ref 's literals to the proof sink and binds its serial
  /// into the clause's proof-id word (for the retirement notice when
  /// reduceDB drops it; the id relocates with the clause memory).
  void proofDerive(ClauseRef Ref, std::span<const int64_t> Hints = {}) {
    if (!ProofSink)
      return;
    Clause C = Arena[Ref];
    ProofSink->onDerive(C.lits(), Hints);
    ++DeriveCount;
    assert(DeriveCount <= static_cast<uint64_t>(
                              std::numeric_limits<int32_t>::max()) &&
           "derivation serial exceeds the in-clause id range");
    C.setProofId(static_cast<int32_t>(DeriveCount));
  }

  /// The proof-hint id of \p Ref: its derivation serial (positive), its
  /// header record index (negative), or 0 when the clause is neither — a
  /// lemma imported from a sibling's pool, say — which poisons the
  /// conflict's hint list (the checker falls back to full propagation).
  int64_t proofHintIdOf(ClauseRef Ref) const {
    return Arena[Ref].proofId();
  }

  /// Sorts the collected HintSteps into replay order (ascending trail
  /// position of the implied literal), dedups, and maps them to hint
  /// ids in \p Out. One unmappable antecedent clears the whole list.
  void finalizeHintIds(std::vector<int64_t> &Out) {
    std::sort(HintSteps.begin(), HintSteps.end());
    HintSteps.erase(std::unique(HintSteps.begin(), HintSteps.end()),
                    HintSteps.end());
    Out.clear();
    for (const auto &[Pos, Ref] : HintSteps) {
      int64_t Id = proofHintIdOf(Ref);
      if (Id == 0) {
        Out.clear();
        return;
      }
      Out.push_back(Id);
    }
  }

  // Scratch used by conflict analysis.
  std::vector<uint8_t> Seen;

  std::vector<Lit> ConflictCore;

  /// Native XOR constraints (empty for pure-CNF formulas; every method
  /// call on an empty engine is a cheap no-op).
  GaussEngine Gauss;

  /// The previous solve() call's assumptions: consecutive calls keep the
  /// trail of their longest common assumption prefix alive instead of
  /// re-deciding and re-propagating it from the root (the cube engine's
  /// ET enumeration hands each worker thousands of cubes sharing long
  /// prefixes).
  std::vector<Lit> PrevAssumptions;

  /// Variable → pending-cube participation counts for reduceDB retention
  /// (see setRetentionView); shared read-only with the cube driver.
  std::shared_ptr<const std::vector<uint32_t>> RetentionView;

  // -- Core algorithms -----------------------------------------------------
  LBool valueOf(Lit L) const {
    LBool V = Assigns[L.var()];
    return L.negated() ? negate(V) : V;
  }
  int32_t decisionLevel() const {
    return static_cast<int32_t>(TrailLim.size());
  }

  /// Assigns \p L with reason \p From at \p AtLevel (the default -1
  /// means the current decision level). A level below the current one is
  /// an out-of-order assignment — lazy reimplication under chronological
  /// backtracking; backtrack() then preserves the literal across
  /// teardowns above its level.
  void enqueue(Lit L, ClauseRef From, int32_t AtLevel = -1);
  ClauseRef propagate();
  /// CNF propagation and XOR propagation to their joint fixpoint.
  ClauseRef propagateFixpoint();
  /// Registers a clause implied by the XOR system as a reason/conflict
  /// justification for conflict analysis. Never watched at creation
  /// (sizes < 2 are tombstoned so the reduceDB watch rebuild skips them).
  ClauseRef materializeXorClause(std::vector<Lit> Lits);
  void analyze(ClauseRef Confl, std::vector<Lit> &Learnt, int32_t &BtLevel);
  void analyzeFinal(Lit Failed);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void backtrack(int32_t ToLevel);
  Lit pickBranchLit();
  void attachClause(ClauseRef Ref);
  ClauseRef learnClause(std::vector<Lit> Lits);
  void reduceDB();

  /// Allocates into the arena and keeps the peak-footprint stat current.
  ClauseRef allocClause(std::span<const Lit> Lits, bool Learned) {
    ClauseRef Ref = Arena.alloc(Lits, Learned);
    Stats.ArenaBytes = std::max<uint64_t>(Stats.ArenaBytes,
                                          Arena.sizeBytes());
    return Ref;
  }
  /// Compacts the arena when the wasted fraction crosses GarbageFrac.
  /// Only call from a quiescent point (no ClauseRef held in a local):
  /// the restart path, right after reduceDB.
  void checkGarbage();
  void garbageCollect();
  /// Rewrites every live ClauseRef holder — watch lists, trail reasons,
  /// both clause lists — into \p To. Clauses reachable from none of them
  /// (tombstones nothing locks anymore) are dropped.
  void relocAll(ClauseArena &To);

  // Heap helpers.
  void heapInsert(Var V);
  void heapUpdate(Var V);
  Var heapPop();
  void heapSiftUp(size_t Idx);
  void heapSiftDown(size_t Idx);
  bool heapLess(Var A, Var B) const { return Activity[A] > Activity[B]; }

  void bumpVar(Var V);
  void bumpClause(Clause C);
  void decayActivities();

  /// Pulls clauses published by sibling solvers into the database; must
  /// run at decision level 0. Publishing happens inline at learn time.
  void importSharedClauses();
};

/// Luby restart sequence value (1-based index), used for restart pacing.
uint64_t lubySequence(uint64_t I);

} // namespace veriqec::sat

#endif // VERIQEC_SAT_SOLVER_H
