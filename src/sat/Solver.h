//===- sat/Solver.h - CDCL SAT solver ---------------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the MiniSat lineage:
/// two-watched-literal propagation, first-UIP learning with clause
/// minimization, VSIDS branching with phase saving, Luby restarts and
/// activity-based learned-clause deletion. It is the decision engine that
/// replaces Z3/CVC5 in this reproduction (see DESIGN.md, substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SAT_SOLVER_H
#define VERIQEC_SAT_SOLVER_H

#include "sat/SatTypes.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace veriqec::sat {

/// Result of a solve() call.
enum class SolveResult { Sat, Unsat, Aborted };

/// Aggregate statistics for benchmarking and diagnostics.
struct SolverStats {
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Conflicts = 0;
  uint64_t LearnedClauses = 0;
  uint64_t Restarts = 0;
};

/// CDCL SAT solver. Typical usage:
/// \code
///   Solver S;
///   Var A = S.newVar(), B = S.newVar();
///   S.addClause({mkLit(A), mkLit(B)});
///   if (S.solve() == SolveResult::Sat) bool VA = S.modelValue(A);
/// \endcode
class Solver {
public:
  Solver();

  /// Creates a fresh variable and returns its index.
  Var newVar();

  /// Number of variables created so far.
  size_t numVars() const { return Assigns.size(); }

  /// Adds a clause. Returns false if the formula became trivially
  /// unsatisfiable (empty clause after simplification at level 0).
  bool addClause(std::vector<Lit> Lits);

  /// Convenience overloads.
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Solves under the given assumptions (checked before any decision).
  SolveResult solve(const std::vector<Lit> &Assumptions = {});

  /// After Sat: the value of \p V in the found model.
  bool modelValue(Var V) const { return Model[V] == LBool::True; }

  /// Limits the search to approximately \p MaxConflicts conflicts;
  /// 0 means unlimited. Exceeding the budget returns Aborted.
  void setConflictBudget(uint64_t MaxConflicts) {
    ConflictBudget = MaxConflicts;
  }

  /// Installs an external cancellation flag polled during search (used by
  /// the parallel driver to stop siblings once an answer is known).
  void setAbortFlag(const std::atomic<bool> *Flag) { AbortFlag = Flag; }

  const SolverStats &stats() const { return Stats; }

private:
  // -- Internal state ------------------------------------------------------
  using ClauseRef = int32_t;
  static constexpr ClauseRef NoReason = -1;

  struct Watcher {
    ClauseRef Ref;
    Lit Blocker;
  };

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit.Code
  std::vector<LBool> Assigns;                // indexed by Var
  std::vector<LBool> Model;
  std::vector<bool> SavedPhase;
  std::vector<ClauseRef> Reason;
  std::vector<int32_t> Level;
  std::vector<Lit> Trail;
  std::vector<int32_t> TrailLim;
  size_t PropagateHead = 0;

  // VSIDS.
  std::vector<double> Activity;
  double VarInc = 1.0;
  double VarDecay = 0.95;
  std::vector<Var> Heap; // binary max-heap of variables by activity
  std::vector<int32_t> HeapPos;

  double ClauseInc = 1.0;
  double ClauseDecay = 0.999;
  size_t MaxLearned = 8192;

  bool OkState = true;
  uint64_t ConflictBudget = 0;
  const std::atomic<bool> *AbortFlag = nullptr;
  SolverStats Stats;

  // Scratch used by conflict analysis.
  std::vector<uint8_t> Seen;

  // -- Core algorithms -----------------------------------------------------
  LBool valueOf(Lit L) const {
    LBool V = Assigns[L.var()];
    return L.negated() ? negate(V) : V;
  }
  int32_t decisionLevel() const {
    return static_cast<int32_t>(TrailLim.size());
  }

  void enqueue(Lit L, ClauseRef From);
  ClauseRef propagate();
  void analyze(ClauseRef Confl, std::vector<Lit> &Learnt, int32_t &BtLevel);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void backtrack(int32_t ToLevel);
  Lit pickBranchLit();
  void attachClause(ClauseRef Ref);
  ClauseRef learnClause(std::vector<Lit> Lits);
  void reduceDB();

  // Heap helpers.
  void heapInsert(Var V);
  void heapUpdate(Var V);
  Var heapPop();
  void heapSiftUp(size_t Idx);
  void heapSiftDown(size_t Idx);
  bool heapLess(Var A, Var B) const { return Activity[A] > Activity[B]; }

  void bumpVar(Var V);
  void bumpClause(Clause &C);
  void decayActivities();
};

/// Luby restart sequence value (1-based index), used for restart pacing.
uint64_t lubySequence(uint64_t I);

} // namespace veriqec::sat

#endif // VERIQEC_SAT_SOLVER_H
