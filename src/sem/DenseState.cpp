//===- sem/DenseState.cpp - Dense state-vector simulation ------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "sem/DenseState.h"

#include "support/Assert.h"

#include <cmath>

using namespace veriqec;

namespace {

using Cplx = std::complex<double>;
constexpr Cplx IU{0.0, 1.0};

/// 2x2 matrix of a single-qubit gate.
void singleGateMatrix(GateKind K, Cplx M[2][2]) {
  const double S2 = 1.0 / std::sqrt(2.0);
  switch (K) {
  case GateKind::X:
    M[0][0] = 0;
    M[0][1] = 1;
    M[1][0] = 1;
    M[1][1] = 0;
    return;
  case GateKind::Y:
    M[0][0] = 0;
    M[0][1] = -IU;
    M[1][0] = IU;
    M[1][1] = 0;
    return;
  case GateKind::Z:
    M[0][0] = 1;
    M[0][1] = 0;
    M[1][0] = 0;
    M[1][1] = -1;
    return;
  case GateKind::H:
    M[0][0] = S2;
    M[0][1] = S2;
    M[1][0] = S2;
    M[1][1] = -S2;
    return;
  case GateKind::S:
    M[0][0] = 1;
    M[0][1] = 0;
    M[1][0] = 0;
    M[1][1] = IU;
    return;
  case GateKind::Sdg:
    M[0][0] = 1;
    M[0][1] = 0;
    M[1][0] = 0;
    M[1][1] = -IU;
    return;
  case GateKind::T:
    M[0][0] = 1;
    M[0][1] = 0;
    M[1][0] = 0;
    M[1][1] = std::exp(IU * (M_PI / 4.0));
    return;
  case GateKind::Tdg:
    M[0][0] = 1;
    M[0][1] = 0;
    M[1][0] = 0;
    M[1][1] = std::exp(-IU * (M_PI / 4.0));
    return;
  default:
    unreachable("not a single-qubit gate");
  }
}

/// 4x4 matrix of a two-qubit gate (basis order |q0 q1> = 00,01,10,11).
void doubleGateMatrix(GateKind K, Cplx M[4][4]) {
  for (int I = 0; I != 4; ++I)
    for (int J = 0; J != 4; ++J)
      M[I][J] = 0;
  switch (K) {
  case GateKind::CNOT:
    M[0][0] = M[1][1] = 1;
    M[2][3] = M[3][2] = 1;
    return;
  case GateKind::CZ:
    M[0][0] = M[1][1] = M[2][2] = 1;
    M[3][3] = -1;
    return;
  case GateKind::ISWAP:
    M[0][0] = M[3][3] = 1;
    M[1][2] = M[2][1] = -IU;
    return;
  case GateKind::ISWAPdg:
    M[0][0] = M[3][3] = 1;
    M[1][2] = M[2][1] = IU;
    return;
  default:
    unreachable("not a two-qubit gate");
  }
}

} // namespace

DenseState::DenseState(size_t NumQubits)
    : N(NumQubits), Amp(size_t{1} << NumQubits, Cplx{0, 0}) {
  assert(NumQubits <= 20 && "dense simulation limited to small systems");
  Amp[0] = 1;
}

double DenseState::normSquared() const {
  double S = 0;
  for (const Cplx &A : Amp)
    S += std::norm(A);
  return S;
}

void DenseState::normalize() {
  double Norm = std::sqrt(normSquared());
  assert(Norm > 1e-300 && "normalizing the zero state");
  for (Cplx &A : Amp)
    A /= Norm;
}

void DenseState::applyGate(GateKind Kind, size_t Q0, size_t Q1) {
  assert(Q0 < N && "qubit out of range");
  if (!isTwoQubitGate(Kind)) {
    Cplx M[2][2];
    singleGateMatrix(Kind, M);
    size_t Stride = size_t{1} << (N - 1 - Q0);
    for (size_t Base = 0; Base != Amp.size(); ++Base) {
      if (Base & Stride)
        continue;
      Cplx A0 = Amp[Base], A1 = Amp[Base | Stride];
      Amp[Base] = M[0][0] * A0 + M[0][1] * A1;
      Amp[Base | Stride] = M[1][0] * A0 + M[1][1] * A1;
    }
    return;
  }
  assert(Q1 < N && Q1 != Q0 && "two-qubit gate needs distinct qubits");
  Cplx M[4][4];
  doubleGateMatrix(Kind, M);
  size_t S0 = size_t{1} << (N - 1 - Q0);
  size_t S1 = size_t{1} << (N - 1 - Q1);
  for (size_t Base = 0; Base != Amp.size(); ++Base) {
    if ((Base & S0) || (Base & S1))
      continue;
    size_t Idx[4] = {Base, Base | S1, Base | S0, Base | S0 | S1};
    Cplx In[4];
    for (int I = 0; I != 4; ++I)
      In[I] = Amp[Idx[I]];
    for (int I = 0; I != 4; ++I) {
      Cplx Out = 0;
      for (int J = 0; J != 4; ++J)
        Out += M[I][J] * In[J];
      Amp[Idx[I]] = Out;
    }
  }
}

void DenseState::applyPauli(const Pauli &P) {
  assert(P.numQubits() == N && "Pauli size mismatch");
  // P = i^ph * prod X^x Z^z: on |b>, Z gives (-1)^{z.b}, X maps b -> b^x.
  size_t XMask = 0, ZMask = 0;
  for (size_t Q = 0; Q != N; ++Q) {
    if (P.xBits().get(Q))
      XMask |= size_t{1} << (N - 1 - Q);
    if (P.zBits().get(Q))
      ZMask |= size_t{1} << (N - 1 - Q);
  }
  Cplx Phase = 1;
  for (unsigned I = 0; I != P.phaseExp(); ++I)
    Phase *= IU;
  std::vector<Cplx> Out(Amp.size(), Cplx{0, 0});
  for (size_t B = 0; B != Amp.size(); ++B) {
    double Sign = (std::popcount(B & ZMask) & 1) ? -1.0 : 1.0;
    Out[B ^ XMask] = Phase * Sign * Amp[B];
  }
  Amp = std::move(Out);
}

void DenseState::projectPauli(const Pauli &P, bool Sign) {
  assert(P.isHermitian() && "projector needs a Hermitian Pauli");
  DenseState Rotated = *this;
  Rotated.applyPauli(P);
  double Factor = Sign ? -0.5 : 0.5;
  for (size_t B = 0; B != Amp.size(); ++B)
    Amp[B] = 0.5 * Amp[B] + Factor * Rotated.Amp[B];
}

std::pair<DenseState, DenseState> DenseState::resetBranches(size_t Q) const {
  // Branch A: |0><0| (keep amplitude where the bit is 0).
  // Branch B: |0><1| (move amplitude from bit = 1 down to bit = 0).
  size_t Stride = size_t{1} << (N - 1 - Q);
  DenseState KeepZero = *this;
  DenseState MoveOne(N);
  MoveOne.Amp[0] = 0;
  for (size_t B = 0; B != Amp.size(); ++B) {
    if ((B & Stride) == 0)
      continue;
    KeepZero.Amp[B] = 0;
    MoveOne.Amp[B ^ Stride] = Amp[B];
  }
  return {KeepZero, MoveOne};
}

DenseState::Cplx DenseState::innerProduct(const DenseState &Other) const {
  assert(Other.N == N && "size mismatch");
  Cplx S = 0;
  for (size_t B = 0; B != Amp.size(); ++B)
    S += std::conj(Amp[B]) * Other.Amp[B];
  return S;
}

bool DenseState::approxEqualUpToPhase(const DenseState &Other,
                                      double Eps) const {
  double NA = normSquared(), NB = Other.normSquared();
  if (std::abs(NA - NB) > Eps)
    return false;
  if (NA < Eps)
    return true;
  // |<a|b>| == |a||b| iff parallel.
  Cplx IP = innerProduct(Other);
  return std::abs(std::abs(IP) - std::sqrt(NA * NB)) < Eps;
}
