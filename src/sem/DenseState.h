//===- sem/DenseState.h - Dense state-vector simulation ---------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense complex state vector over n qubits (n small) with exact gate
/// application and Pauli projector arithmetic. This is the ground-truth
/// semantics backend: the soundness test harness checks the proof system
/// of Fig. 3 against it, playing the role of the paper's Coq development
/// on bounded instances (see DESIGN.md substitutions).
///
/// Basis convention: qubit 0 is the most significant bit of the basis
/// index, matching |q0 q1 ... q_{n-1}>.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SEM_DENSESTATE_H
#define VERIQEC_SEM_DENSESTATE_H

#include "pauli/Gates.h"
#include "pauli/Pauli.h"

#include <complex>
#include <vector>

namespace veriqec {

/// Dense (possibly unnormalized) pure state of n qubits.
class DenseState {
public:
  using Cplx = std::complex<double>;

  /// |0...0> on \p NumQubits qubits.
  explicit DenseState(size_t NumQubits);

  size_t numQubits() const { return N; }
  size_t dim() const { return Amp.size(); }

  Cplx &amp(size_t Index) { return Amp[Index]; }
  const Cplx &amp(size_t Index) const { return Amp[Index]; }

  /// Squared norm (branch probability weight for unnormalized states).
  double normSquared() const;

  /// True if the squared norm is below \p Eps.
  bool isZero(double Eps = 1e-12) const { return normSquared() < Eps; }

  void normalize();

  /// Applies a gate (any of the Clifford+T set) on \p Q0 (and \p Q1).
  void applyGate(GateKind Kind, size_t Q0, size_t Q1 = ~size_t{0});

  /// Applies a Pauli operator (including its phase).
  void applyPauli(const Pauli &P);

  /// Projects onto the (-1)^Sign eigenspace of the Hermitian Pauli \p P:
  /// state <- (I + (-1)^Sign P)/2 * state (unnormalized).
  void projectPauli(const Pauli &P, bool Sign);

  /// Resets qubit \p Q to |0>, producing the two Kraus branches
  /// |0><0| and |0><1|; \returns both (unnormalized, possibly zero).
  std::pair<DenseState, DenseState> resetBranches(size_t Q) const;

  /// <this|Other> inner product.
  Cplx innerProduct(const DenseState &Other) const;

  /// Fidelity-style comparison of unnormalized states up to global phase.
  bool approxEqualUpToPhase(const DenseState &Other, double Eps = 1e-9) const;

private:
  size_t bitOf(size_t Index, size_t Q) const { return (Index >> (N - 1 - Q)) & 1; }

  size_t N;
  std::vector<Cplx> Amp;
};

} // namespace veriqec

#endif // VERIQEC_SEM_DENSESTATE_H
