//===- sem/DenseSubspace.cpp - Subspace arithmetic --------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "sem/DenseSubspace.h"

#include "support/Assert.h"

#include <cmath>

using namespace veriqec;

namespace {

/// Gram-Schmidt: orthonormalizes \p Vectors against \p Basis, appending
/// the independent remainder to Basis.
void absorb(std::vector<DenseState> &Basis,
            const std::vector<DenseState> &Vectors, size_t NumQubits) {
  for (const DenseState &VIn : Vectors) {
    DenseState V = VIn;
    for (const DenseState &B : Basis) {
      DenseState::Cplx Coef = B.innerProduct(V);
      for (size_t I = 0; I != V.dim(); ++I)
        V.amp(I) -= Coef * B.amp(I);
    }
    // Re-orthogonalize once for numerical hygiene.
    for (const DenseState &B : Basis) {
      DenseState::Cplx Coef = B.innerProduct(V);
      for (size_t I = 0; I != V.dim(); ++I)
        V.amp(I) -= Coef * B.amp(I);
    }
    if (V.normSquared() > 1e-16) {
      V.normalize();
      Basis.push_back(std::move(V));
    }
  }
  (void)NumQubits;
}

} // namespace

DenseSubspace DenseSubspace::zero(size_t NumQubits) {
  return DenseSubspace(NumQubits);
}

DenseSubspace DenseSubspace::full(size_t NumQubits) {
  DenseSubspace S(NumQubits);
  size_t Dim = size_t{1} << NumQubits;
  for (size_t I = 0; I != Dim; ++I) {
    DenseState V(NumQubits);
    V.amp(0) = 0;
    V.amp(I) = 1;
    S.Basis.push_back(std::move(V));
  }
  return S;
}

DenseSubspace DenseSubspace::eigenspaceOf(const Pauli &P, bool Sign) {
  assert(P.isHermitian() && "eigenspace of a non-Hermitian Pauli");
  size_t N = P.numQubits();
  DenseSubspace S(N);
  size_t Dim = size_t{1} << N;
  // Columns of the projector (I + (-1)^Sign P)/2 span the eigenspace.
  std::vector<DenseState> Columns;
  for (size_t C = 0; C != Dim; ++C) {
    DenseState V(N);
    V.amp(0) = 0;
    V.amp(C) = 1;
    V.projectPauli(P, Sign);
    Columns.push_back(std::move(V));
  }
  absorb(S.Basis, Columns, N);
  return S;
}

DenseSubspace DenseSubspace::span(size_t NumQubits,
                                  const std::vector<DenseState> &Vectors) {
  DenseSubspace S(NumQubits);
  absorb(S.Basis, Vectors, NumQubits);
  return S;
}

DenseState DenseSubspace::project(const DenseState &V) const {
  DenseState Out(N);
  Out.amp(0) = 0;
  for (const DenseState &B : Basis) {
    DenseState::Cplx Coef = B.innerProduct(V);
    for (size_t I = 0; I != Out.dim(); ++I)
      Out.amp(I) += Coef * B.amp(I);
  }
  return Out;
}

bool DenseSubspace::contains(const DenseState &V, double Eps) const {
  DenseState P = project(V);
  double Dist = 0;
  for (size_t I = 0; I != P.dim(); ++I)
    Dist += std::norm(P.amp(I) - V.amp(I));
  return Dist < Eps * Eps;
}

bool DenseSubspace::isSubspaceOf(const DenseSubspace &Other,
                                 double Eps) const {
  for (const DenseState &B : Basis)
    if (!Other.contains(B, Eps))
      return false;
  return true;
}

DenseSubspace DenseSubspace::complement() const {
  // Extend the basis with the standard basis and keep the remainder.
  std::vector<DenseState> Extended = Basis;
  size_t Dim = size_t{1} << N;
  std::vector<DenseState> Std;
  for (size_t I = 0; I != Dim; ++I) {
    DenseState V(N);
    V.amp(0) = 0;
    V.amp(I) = 1;
    Std.push_back(std::move(V));
  }
  size_t Before = Extended.size();
  absorb(Extended, Std, N);
  DenseSubspace Out(N);
  Out.Basis.assign(Extended.begin() + Before, Extended.end());
  return Out;
}

DenseSubspace DenseSubspace::join(const DenseSubspace &Other) const {
  assert(N == Other.N && "qubit count mismatch");
  DenseSubspace Out(N);
  Out.Basis = Basis;
  absorb(Out.Basis, Other.Basis, N);
  return Out;
}

DenseSubspace DenseSubspace::meet(const DenseSubspace &Other) const {
  return complement().join(Other.complement()).complement();
}

DenseSubspace DenseSubspace::sasakiImplies(const DenseSubspace &Other) const {
  return complement().join(meet(Other));
}
