//===- sem/DenseSubspace.h - Subspace arithmetic ----------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Subspaces of the n-qubit Hilbert space with the Birkhoff-von Neumann
/// quantum-logic operations the assertion semantics of Section 3.2 needs:
/// meet (intersection), join (span of union), orthocomplement and Sasaki
/// implication. Represented by an orthonormal basis; n is small (this is
/// the ground-truth backend for testing the logic, not a production
/// simulator).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SEM_DENSESUBSPACE_H
#define VERIQEC_SEM_DENSESUBSPACE_H

#include "sem/DenseState.h"

#include <vector>

namespace veriqec {

/// A subspace of C^(2^n), stored as an orthonormal basis.
class DenseSubspace {
public:
  /// The zero subspace of an n-qubit space.
  static DenseSubspace zero(size_t NumQubits);

  /// The full space.
  static DenseSubspace full(size_t NumQubits);

  /// The (-1)^Sign eigenspace of a Hermitian Pauli (the semantics of a
  /// Pauli-expression atom).
  static DenseSubspace eigenspaceOf(const Pauli &P, bool Sign);

  /// Span of arbitrary (possibly dependent) vectors.
  static DenseSubspace span(size_t NumQubits,
                            const std::vector<DenseState> &Vectors);

  size_t numQubits() const { return N; }
  size_t dimension() const { return Basis.size(); }

  /// Membership: || proj(V) - V || < Eps (V may be unnormalized).
  bool contains(const DenseState &V, double Eps = 1e-8) const;

  /// Subspace inclusion.
  bool isSubspaceOf(const DenseSubspace &Other, double Eps = 1e-8) const;

  bool equals(const DenseSubspace &Other, double Eps = 1e-8) const {
    return isSubspaceOf(Other, Eps) && Other.isSubspaceOf(*this, Eps);
  }

  /// Orthocomplement.
  DenseSubspace complement() const;

  /// Join: span of the union.
  DenseSubspace join(const DenseSubspace &Other) const;

  /// Meet: intersection, computed as (A^perp v B^perp)^perp.
  DenseSubspace meet(const DenseSubspace &Other) const;

  /// Sasaki implication A ~> B = A^perp v (A ^ B).
  DenseSubspace sasakiImplies(const DenseSubspace &Other) const;

  /// Projection of \p V onto this subspace.
  DenseState project(const DenseState &V) const;

private:
  explicit DenseSubspace(size_t NumQubits) : N(NumQubits) {}

  size_t N = 0;
  std::vector<DenseState> Basis; ///< orthonormal
};

} // namespace veriqec

#endif // VERIQEC_SEM_DENSESUBSPACE_H
