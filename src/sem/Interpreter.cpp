//===- sem/Interpreter.cpp - Program semantics executors --------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "sem/Interpreter.h"

#include "support/Assert.h"

using namespace veriqec;

std::vector<int64_t> DecoderRegistry::call(
    const std::string &Name, const std::vector<int64_t> &Args) const {
  auto It = Table.find(Name);
  if (It == Table.end())
    fatalError("undefined decoder function: " + Name);
  return It->second(Args);
}

namespace {

/// Executes one statement on a branch set (dense backend).
void stepDense(const StmtPtr &S, std::vector<DenseBranch> &Branches,
               const DecoderRegistry &Decoders, size_t Fuel);

void runSeqDense(const std::vector<StmtPtr> &Stmts,
                 std::vector<DenseBranch> &Branches,
                 const DecoderRegistry &Decoders, size_t Fuel) {
  for (const StmtPtr &S : Stmts)
    stepDense(S, Branches, Decoders, Fuel);
}

void stepDense(const StmtPtr &S, std::vector<DenseBranch> &Branches,
               const DecoderRegistry &Decoders, size_t Fuel) {
  switch (S->Kind) {
  case StmtKind::Skip:
    return;
  case StmtKind::Init: {
    std::vector<DenseBranch> Out;
    for (DenseBranch &B : Branches) {
      size_t Q = static_cast<size_t>(S->Qubit0->evaluate(B.Mem));
      auto [Zero, One] = B.State.resetBranches(Q);
      if (!Zero.isZero())
        Out.push_back({B.Mem, std::move(Zero)});
      if (!One.isZero())
        Out.push_back({B.Mem, std::move(One)});
    }
    Branches = std::move(Out);
    return;
  }
  case StmtKind::Unitary:
    for (DenseBranch &B : Branches) {
      size_t Q0 = static_cast<size_t>(S->Qubit0->evaluate(B.Mem));
      if (S->Qubit1) {
        size_t Q1 = static_cast<size_t>(S->Qubit1->evaluate(B.Mem));
        B.State.applyGate(S->Gate, Q0, Q1);
      } else {
        B.State.applyGate(S->Gate, Q0);
      }
    }
    return;
  case StmtKind::GuardedGate:
    for (DenseBranch &B : Branches) {
      if (!S->Guard->evaluateBool(B.Mem))
        continue;
      size_t Q = static_cast<size_t>(S->Qubit0->evaluate(B.Mem));
      B.State.applyGate(S->Gate, Q);
    }
    return;
  case StmtKind::Assign:
    for (DenseBranch &B : Branches)
      B.Mem[S->Targets[0]] = S->Value->evaluate(B.Mem);
    return;
  case StmtKind::Measure: {
    std::vector<DenseBranch> Out;
    for (DenseBranch &B : Branches) {
      Pauli P = S->Measured.resolve(B.State.numQubits(), B.Mem);
      bool Phase = S->Measured.phaseBitValue(B.Mem);
      if (Phase)
        P.negate();
      for (int Outcome = 0; Outcome != 2; ++Outcome) {
        DenseBranch NB = B;
        // Outcome 0 projects onto the +1 eigenspace (paper convention).
        NB.State.projectPauli(P, /*Sign=*/Outcome == 1);
        if (NB.State.isZero())
          continue;
        NB.Mem[S->Targets[0]] = Outcome;
        Out.push_back(std::move(NB));
      }
    }
    Branches = std::move(Out);
    return;
  }
  case StmtKind::DecoderCall:
    for (DenseBranch &B : Branches) {
      std::vector<int64_t> Args;
      for (const CExprPtr &A : S->Arguments)
        Args.push_back(A->evaluate(B.Mem));
      std::vector<int64_t> Outs = Decoders.call(S->DecoderName, Args);
      assert(Outs.size() == S->Targets.size() &&
             "decoder arity mismatch");
      for (size_t I = 0; I != Outs.size(); ++I)
        B.Mem[S->Targets[I]] = Outs[I];
    }
    return;
  case StmtKind::Seq:
    runSeqDense(S->Body, Branches, Decoders, Fuel);
    return;
  case StmtKind::If: {
    std::vector<DenseBranch> Then, Else;
    for (DenseBranch &B : Branches)
      (S->Cond->evaluateBool(B.Mem) ? Then : Else).push_back(std::move(B));
    stepDense(S->Body[0], Then, Decoders, Fuel);
    stepDense(S->Body[1], Else, Decoders, Fuel);
    Branches = std::move(Then);
    for (DenseBranch &B : Else)
      Branches.push_back(std::move(B));
    return;
  }
  case StmtKind::While: {
    std::vector<DenseBranch> Done;
    std::vector<DenseBranch> Active = std::move(Branches);
    size_t Rounds = 0;
    while (!Active.empty()) {
      if (++Rounds > Fuel)
        fatalError("while loop exceeded the dense-interpreter fuel bound");
      std::vector<DenseBranch> Continue;
      for (DenseBranch &B : Active)
        (S->Cond->evaluateBool(B.Mem) ? Continue : Done)
            .push_back(std::move(B));
      stepDense(S->Body[0], Continue, Decoders, Fuel);
      Active = std::move(Continue);
    }
    Branches = std::move(Done);
    return;
  }
  case StmtKind::For:
    fatalError("for-loops must be flattened before interpretation");
  }
}

} // namespace

std::vector<DenseBranch> veriqec::runDense(const StmtPtr &Program,
                                           DenseBranch Initial,
                                           const DecoderRegistry &Decoders,
                                           size_t Fuel) {
  std::vector<DenseBranch> Branches;
  Branches.push_back(std::move(Initial));
  stepDense(Program, Branches, Decoders, Fuel);
  return Branches;
}

namespace {

void stepStabilizer(const StmtPtr &S, StabilizerRun &Run,
                    const DecoderRegistry &Decoders, Rng &R, size_t &Fuel) {
  switch (S->Kind) {
  case StmtKind::Skip:
    return;
  case StmtKind::Init:
    Run.State.reset(static_cast<size_t>(S->Qubit0->evaluate(Run.Mem)), R);
    return;
  case StmtKind::Unitary: {
    assert(isCliffordGate(S->Gate) &&
           "stabilizer interpreter cannot run T gates");
    size_t Q0 = static_cast<size_t>(S->Qubit0->evaluate(Run.Mem));
    if (S->Qubit1)
      Run.State.applyGate(S->Gate, Q0,
                          static_cast<size_t>(S->Qubit1->evaluate(Run.Mem)));
    else
      Run.State.applyGate(S->Gate, Q0);
    return;
  }
  case StmtKind::GuardedGate: {
    if (!S->Guard->evaluateBool(Run.Mem))
      return;
    assert(isCliffordGate(S->Gate) && "guarded T gates are not Clifford");
    size_t Q = static_cast<size_t>(S->Qubit0->evaluate(Run.Mem));
    switch (S->Gate) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
      Run.State.applyPauli(Pauli::single(Run.State.numQubits(), Q,
                                         S->Gate == GateKind::X ? PauliKind::X
                                         : S->Gate == GateKind::Y
                                             ? PauliKind::Y
                                             : PauliKind::Z));
      return;
    default:
      Run.State.applyGate(S->Gate, Q);
      return;
    }
  }
  case StmtKind::Assign:
    Run.Mem[S->Targets[0]] = S->Value->evaluate(Run.Mem);
    return;
  case StmtKind::Measure: {
    Pauli P = S->Measured.resolve(Run.State.numQubits(), Run.Mem);
    if (S->Measured.phaseBitValue(Run.Mem))
      P.negate();
    Run.Mem[S->Targets[0]] = Run.State.measure(P, R) ? 1 : 0;
    return;
  }
  case StmtKind::DecoderCall: {
    std::vector<int64_t> Args;
    for (const CExprPtr &A : S->Arguments)
      Args.push_back(A->evaluate(Run.Mem));
    std::vector<int64_t> Outs = Decoders.call(S->DecoderName, Args);
    assert(Outs.size() == S->Targets.size() && "decoder arity mismatch");
    for (size_t I = 0; I != Outs.size(); ++I)
      Run.Mem[S->Targets[I]] = Outs[I];
    return;
  }
  case StmtKind::Seq:
    for (const StmtPtr &Child : S->Body)
      stepStabilizer(Child, Run, Decoders, R, Fuel);
    return;
  case StmtKind::If:
    stepStabilizer(S->Cond->evaluateBool(Run.Mem) ? S->Body[0] : S->Body[1],
                   Run, Decoders, R, Fuel);
    return;
  case StmtKind::While:
    while (S->Cond->evaluateBool(Run.Mem)) {
      if (Fuel-- == 0)
        fatalError("while loop exceeded the stabilizer-interpreter fuel");
      stepStabilizer(S->Body[0], Run, Decoders, R, Fuel);
    }
    return;
  case StmtKind::For:
    fatalError("for-loops must be flattened before interpretation");
  }
}

} // namespace

StabilizerRun veriqec::runStabilizer(const StmtPtr &Program, size_t NumQubits,
                                     CMem InitialMem,
                                     const DecoderRegistry &Decoders, Rng &R,
                                     size_t Fuel) {
  StabilizerRun Run{std::move(InitialMem), Tableau(NumQubits)};
  stepStabilizer(Program, Run, Decoders, R, Fuel);
  return Run;
}

void veriqec::runStabilizerFrom(const StmtPtr &Program, StabilizerRun &Run,
                                const DecoderRegistry &Decoders, Rng &R,
                                size_t Fuel) {
  stepStabilizer(Program, Run, Decoders, R, Fuel);
}
