//===- sem/Interpreter.h - Program semantics executors ----------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable semantics for QEC programs (Fig. 2 of the paper):
///  * DenseInterpreter: exhaustive branch semantics on a dense state
///    vector — the classical-quantum state Delta : CMem -> D(H) realized
///    as an ensemble of (CMem, unnormalized pure state) branches. Exact;
///    used as ground truth (small n).
///  * StabilizerInterpreter: single random trajectory on a tableau —
///    scales to hundreds of qubits; the engine behind the Stim-like
///    sampling baseline.
/// Decoder calls resolve through a DecoderRegistry.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SEM_INTERPRETER_H
#define VERIQEC_SEM_INTERPRETER_H

#include "pauli/Tableau.h"
#include "prog/Ast.h"
#include "sem/DenseState.h"
#include "support/Rng.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace veriqec {

/// Named classical decoder functions callable from programs.
class DecoderRegistry {
public:
  using Fn = std::function<std::vector<int64_t>(const std::vector<int64_t> &)>;

  void define(std::string Name, Fn Function) {
    Table[std::move(Name)] = std::move(Function);
  }
  bool contains(const std::string &Name) const { return Table.count(Name); }

  std::vector<int64_t> call(const std::string &Name,
                            const std::vector<int64_t> &Args) const;

private:
  std::map<std::string, Fn> Table;
};

/// One branch of the classical-quantum state.
struct DenseBranch {
  CMem Mem;
  DenseState State; ///< unnormalized; squared norm = branch weight
};

/// Runs a flattened program on every measurement branch. While loops are
/// bounded by \p Fuel iterations per branch (exceeding aborts).
std::vector<DenseBranch> runDense(const StmtPtr &Program, DenseBranch Initial,
                                  const DecoderRegistry &Decoders,
                                  size_t Fuel = 64);

/// Result of a stabilizer trajectory.
struct StabilizerRun {
  CMem Mem;
  Tableau State;
};

/// Runs one random trajectory of a flattened Clifford program (T gates
/// are rejected) from |0...0>.
StabilizerRun runStabilizer(const StmtPtr &Program, size_t NumQubits,
                            CMem InitialMem, const DecoderRegistry &Decoders,
                            Rng &R, size_t Fuel = 1 << 16);

/// Same, but continuing from an existing (memory, tableau) configuration
/// in place — e.g. from a prepared logical state.
void runStabilizerFrom(const StmtPtr &Program, StabilizerRun &Run,
                       const DecoderRegistry &Decoders, Rng &R,
                       size_t Fuel = 1 << 16);

} // namespace veriqec

#endif // VERIQEC_SEM_INTERPRETER_H
