//===- sim/SamplingTester.cpp - Stim-style sampling baseline ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "sim/SamplingTester.h"

#include "pauli/Tableau.h"
#include "support/Timer.h"

#include <unordered_set>

using namespace veriqec;

uint64_t veriqec::errorConfigurationCount(size_t NumQubits,
                                          size_t MaxWeight) {
  // sum_{w=0..t} C(n, w) * 3^w with saturation.
  long double Total = 0;
  long double Choose = 1; // C(n, 0)
  long double Pow3 = 1;
  for (size_t W = 0; W <= MaxWeight && W <= NumQubits; ++W) {
    Total += Choose * Pow3;
    Choose = Choose * static_cast<long double>(NumQubits - W) /
             static_cast<long double>(W + 1);
    Pow3 *= 3;
  }
  if (Total > static_cast<long double>(UINT64_MAX))
    return UINT64_MAX;
  return static_cast<uint64_t>(Total);
}

SamplingReport veriqec::sampleMemoryCorrection(const StabilizerCode &Code,
                                               Decoder &Dec, size_t MaxWeight,
                                               uint64_t Samples, Rng &R,
                                               const SamplingOptions &Opts) {
  SamplingReport Report;
  Timer Clock;
  size_t N = Code.NumQubits;
  const std::vector<Pauli> &Logicals =
      Opts.XBasis ? Code.LogicalX : Code.LogicalZ;
  std::unordered_set<size_t> Seen;

  for (uint64_t Trial = 0; Trial != Samples; ++Trial) {
    // Random error of weight <= MaxWeight.
    Pauli Error(N);
    size_t W = R.nextBelow(MaxWeight + 1);
    for (size_t I = 0; I != W; ++I)
      Error.setKind(R.nextBelow(N),
                    Opts.OnlyKind
                        ? *Opts.OnlyKind
                        : static_cast<PauliKind>(1 + R.nextBelow(3)));
    Error = Error.abs();
    Seen.insert(Error.hash());

    // Tableau run: prepare a code state by measuring all generators and
    // basis logicals (forcing outcome 0 = the logical all-zero family).
    // Starting from |+...+> (Z basis) resp. |0...0> (X basis) makes every
    // forced measurement either non-deterministic or already 0.
    Tableau State(N);
    if (!Opts.XBasis)
      for (size_t Q = 0; Q != N; ++Q)
        State.applyGate(GateKind::H, Q);
    for (const Pauli &G : Code.Generators)
      State.measure(G, R, /*Forced=*/false);
    for (const Pauli &L : Logicals)
      State.measure(L, R, /*Forced=*/false);

    State.applyPauli(Error);

    // Syndrome extraction + decode + correct.
    BitVector Syndrome(Code.Generators.size());
    for (size_t I = 0; I != Code.Generators.size(); ++I)
      if (State.measure(Code.Generators[I], R))
        Syndrome.set(I);
    bool Failed = false;
    if (std::optional<Pauli> Corr = Dec.decode(Syndrome)) {
      State.applyPauli(*Corr);
      // Logical error iff some logical operator's value flipped.
      for (const Pauli &L : Logicals)
        if (!State.isStabilizedBy(L))
          Failed = true;
      for (const Pauli &G : Code.Generators)
        if (!State.isStabilizedBy(G))
          Failed = true;
    } else {
      Failed = true; // decoder has no answer for this syndrome
    }
    Report.Failures += Failed;
    ++Report.Samples;
  }
  Report.DistinctPatterns = Seen.size();
  Report.Seconds = Clock.seconds();
  return Report;
}
