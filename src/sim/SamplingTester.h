//===- sim/SamplingTester.h - Stim-style sampling baseline ------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulation-based testing baseline of the paper's Section 7.2 /
/// Table 4 comparison (the role Stim plays): draw random error patterns
/// within the weight budget, run the error-correction cycle on the
/// stabilizer tableau with a concrete decoder, and check the logical
/// state. Sampling can only certify the configurations it visits — the
/// bench harness contrasts its throughput with the verifier's exhaustive
/// guarantee (the paper's 19^18 ~ 2^76 sample argument).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SIM_SAMPLINGTESTER_H
#define VERIQEC_SIM_SAMPLINGTESTER_H

#include "decoder/Decoder.h"
#include "qec/StabilizerCode.h"
#include "support/Rng.h"

#include <cstdint>
#include <optional>

namespace veriqec {

/// Aggregate result of a sampling campaign.
struct SamplingReport {
  uint64_t Samples = 0;
  uint64_t Failures = 0;       ///< runs ending in a logical error
  uint64_t DistinctPatterns = 0; ///< distinct error patterns visited
  double Seconds = 0;

  double samplesPerSecond() const {
    return Seconds > 0 ? static_cast<double>(Samples) / Seconds : 0;
  }
};

/// Number of error configurations with weight <= t over n qubits and 3
/// Pauli kinds (the exhaustive-testing workload the paper contrasts
/// against), saturating at UINT64_MAX.
uint64_t errorConfigurationCount(size_t NumQubits, size_t MaxWeight);

/// Restrictions on the sampled error model, so sampling can mirror a
/// verification scenario (which fixes the injected Pauli letter and the
/// logical basis family it certifies).
struct SamplingOptions {
  /// Restrict injected errors to this single Pauli letter (the scenario
  /// error model); nullopt draws X/Y/Z uniformly.
  std::optional<PauliKind> OnlyKind;
  /// Prepare and check the logical X family (|+...+> and LogicalX)
  /// instead of the Z family.
  bool XBasis = false;
};

/// Runs \p Samples random memory-correction trials on \p Code: inject a
/// random Pauli error of weight <= MaxWeight, measure syndromes on the
/// tableau, decode with \p Dec, correct, and test whether the logical
/// operators are preserved.
SamplingReport sampleMemoryCorrection(const StabilizerCode &Code,
                                      Decoder &Dec, size_t MaxWeight,
                                      uint64_t Samples, Rng &R,
                                      const SamplingOptions &Opts = {});

} // namespace veriqec

#endif // VERIQEC_SIM_SAMPLINGTESTER_H
