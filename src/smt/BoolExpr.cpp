//===- smt/BoolExpr.cpp - Boolean expression DAG ---------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "smt/BoolExpr.h"

#include <algorithm>

using namespace veriqec;
using namespace veriqec::smt;

BoolContext::BoolContext() {
  BoolNode T;
  T.Kind = BoolKind::Const;
  T.ConstVal = true;
  TrueRef = intern(std::move(T));
  BoolNode F;
  F.Kind = BoolKind::Const;
  F.ConstVal = false;
  FalseRef = intern(std::move(F));
}

uint64_t BoolContext::hashNode(const BoolNode &N) const {
  uint64_t H = static_cast<uint64_t>(N.Kind) * 0x9e3779b97f4a7c15ull;
  H ^= N.ConstVal ? 0x1234567ull : 0;
  H = H * 31 + N.VarId;
  H = H * 31 + N.K;
  for (ExprRef K : N.Kids)
    H = H * 1099511628211ull + K;
  return H;
}

ExprRef BoolContext::intern(BoolNode N) {
  uint64_t H = hashNode(N);
  auto &Bucket = Interned[H];
  for (ExprRef R : Bucket) {
    const BoolNode &Existing = Nodes[R];
    if (Existing.Kind == N.Kind && Existing.ConstVal == N.ConstVal &&
        Existing.VarId == N.VarId && Existing.K == N.K &&
        Existing.Kids == N.Kids)
      return R;
  }
  Nodes.push_back(std::move(N));
  ExprRef R = static_cast<ExprRef>(Nodes.size() - 1);
  Bucket.push_back(R);
  return R;
}

ExprRef BoolContext::mkVar(const std::string &Name) {
  auto It = VarByName.find(Name);
  if (It != VarByName.end())
    return VarRefs[It->second];
  uint32_t Id = static_cast<uint32_t>(VarNames.size());
  VarNames.push_back(Name);
  VarByName.emplace(Name, Id);
  BoolNode N;
  N.Kind = BoolKind::Var;
  N.VarId = Id;
  ExprRef R = intern(std::move(N));
  VarRefs.push_back(R);
  return R;
}

uint32_t BoolContext::varIdOf(const std::string &Name) const {
  auto It = VarByName.find(Name);
  if (It == VarByName.end())
    fatalError("unknown context variable: " + Name);
  return It->second;
}

ExprRef BoolContext::mkNot(ExprRef A) {
  const BoolNode &N = Nodes[A];
  if (N.Kind == BoolKind::Const)
    return mkConst(!N.ConstVal);
  if (N.Kind == BoolKind::Not)
    return N.Kids[0];
  BoolNode Out;
  Out.Kind = BoolKind::Not;
  Out.Kids = {A};
  return intern(std::move(Out));
}

ExprRef BoolContext::mkAnd(std::vector<ExprRef> Kids) {
  std::vector<ExprRef> Flat;
  for (ExprRef K : Kids) {
    const BoolNode &N = Nodes[K];
    if (N.Kind == BoolKind::Const) {
      if (!N.ConstVal)
        return FalseRef;
      continue;
    }
    if (N.Kind == BoolKind::And) {
      Flat.insert(Flat.end(), N.Kids.begin(), N.Kids.end());
      continue;
    }
    Flat.push_back(K);
  }
  std::sort(Flat.begin(), Flat.end());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  // x AND NOT x == false.
  for (ExprRef K : Flat)
    if (Nodes[K].Kind == BoolKind::Not &&
        std::binary_search(Flat.begin(), Flat.end(), Nodes[K].Kids[0]))
      return FalseRef;
  if (Flat.empty())
    return TrueRef;
  if (Flat.size() == 1)
    return Flat[0];
  BoolNode Out;
  Out.Kind = BoolKind::And;
  Out.Kids = std::move(Flat);
  return intern(std::move(Out));
}

ExprRef BoolContext::mkOr(std::vector<ExprRef> Kids) {
  std::vector<ExprRef> Flat;
  for (ExprRef K : Kids) {
    const BoolNode &N = Nodes[K];
    if (N.Kind == BoolKind::Const) {
      if (N.ConstVal)
        return TrueRef;
      continue;
    }
    if (N.Kind == BoolKind::Or) {
      Flat.insert(Flat.end(), N.Kids.begin(), N.Kids.end());
      continue;
    }
    Flat.push_back(K);
  }
  std::sort(Flat.begin(), Flat.end());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  for (ExprRef K : Flat)
    if (Nodes[K].Kind == BoolKind::Not &&
        std::binary_search(Flat.begin(), Flat.end(), Nodes[K].Kids[0]))
      return TrueRef;
  if (Flat.empty())
    return FalseRef;
  if (Flat.size() == 1)
    return Flat[0];
  BoolNode Out;
  Out.Kind = BoolKind::Or;
  Out.Kids = std::move(Flat);
  return intern(std::move(Out));
}

ExprRef BoolContext::mkXor(std::vector<ExprRef> Kids) {
  // Constants fold into a parity flip; identical pairs cancel.
  bool Flip = false;
  std::vector<ExprRef> Flat;
  for (ExprRef K : Kids) {
    const BoolNode &N = Nodes[K];
    if (N.Kind == BoolKind::Const) {
      Flip ^= N.ConstVal;
      continue;
    }
    if (N.Kind == BoolKind::Xor) {
      Flat.insert(Flat.end(), N.Kids.begin(), N.Kids.end());
      continue;
    }
    if (N.Kind == BoolKind::Not) {
      Flip = !Flip;
      Flat.push_back(N.Kids[0]);
      continue;
    }
    Flat.push_back(K);
  }
  std::sort(Flat.begin(), Flat.end());
  // Cancel equal pairs.
  std::vector<ExprRef> Reduced;
  for (size_t I = 0; I < Flat.size();) {
    if (I + 1 < Flat.size() && Flat[I] == Flat[I + 1]) {
      I += 2;
      continue;
    }
    Reduced.push_back(Flat[I]);
    ++I;
  }
  ExprRef Core;
  if (Reduced.empty())
    Core = FalseRef;
  else if (Reduced.size() == 1)
    Core = Reduced[0];
  else {
    BoolNode Out;
    Out.Kind = BoolKind::Xor;
    Out.Kids = std::move(Reduced);
    Core = intern(std::move(Out));
  }
  return Flip ? mkNot(Core) : Core;
}

ExprRef BoolContext::mkAtMost(std::vector<ExprRef> Kids, uint32_t K) {
  // Peel off constant kids.
  std::vector<ExprRef> Flat;
  for (ExprRef Kid : Kids) {
    const BoolNode &N = Nodes[Kid];
    if (N.Kind == BoolKind::Const) {
      if (N.ConstVal) {
        if (K == 0)
          return FalseRef;
        --K;
      }
      continue;
    }
    Flat.push_back(Kid);
  }
  if (Flat.size() <= K)
    return TrueRef;
  if (K == 0) {
    // All kids must be false.
    std::vector<ExprRef> Negs;
    Negs.reserve(Flat.size());
    for (ExprRef Kid : Flat)
      Negs.push_back(mkNot(Kid));
    return mkAnd(std::move(Negs));
  }
  std::sort(Flat.begin(), Flat.end());
  BoolNode Out;
  Out.Kind = BoolKind::AtMost;
  Out.K = K;
  Out.Kids = std::move(Flat);
  return intern(std::move(Out));
}

ExprRef BoolContext::mkAtLeast(std::vector<ExprRef> Kids, uint32_t K) {
  std::vector<ExprRef> Flat;
  for (ExprRef Kid : Kids) {
    const BoolNode &N = Nodes[Kid];
    if (N.Kind == BoolKind::Const) {
      if (N.ConstVal && K > 0)
        --K;
      continue;
    }
    Flat.push_back(Kid);
  }
  if (K == 0)
    return TrueRef;
  if (Flat.size() < K)
    return FalseRef;
  if (K == 1)
    return mkOr(std::move(Flat));
  std::sort(Flat.begin(), Flat.end());
  BoolNode Out;
  Out.Kind = BoolKind::AtLeast;
  Out.K = K;
  Out.Kids = std::move(Flat);
  return intern(std::move(Out));
}

ExprRef BoolContext::mkSumLeqSum(std::vector<ExprRef> A,
                                 std::vector<ExprRef> B) {
  if (A.empty())
    return TrueRef;
  BoolNode Out;
  Out.Kind = BoolKind::SumLeqSum;
  Out.K = static_cast<uint32_t>(A.size());
  Out.Kids = std::move(A);
  Out.Kids.insert(Out.Kids.end(), B.begin(), B.end());
  return intern(std::move(Out));
}

bool BoolContext::evaluate(ExprRef R, const std::vector<bool> &VarValues) const {
  const BoolNode &N = Nodes[R];
  auto sumKids = [&](size_t Begin, size_t End) {
    size_t Count = 0;
    for (size_t I = Begin; I != End; ++I)
      Count += evaluate(N.Kids[I], VarValues) ? 1 : 0;
    return Count;
  };
  switch (N.Kind) {
  case BoolKind::Const:
    return N.ConstVal;
  case BoolKind::Var:
    assert(N.VarId < VarValues.size() && "assignment misses a variable");
    return VarValues[N.VarId];
  case BoolKind::Not:
    return !evaluate(N.Kids[0], VarValues);
  case BoolKind::And:
    for (ExprRef K : N.Kids)
      if (!evaluate(K, VarValues))
        return false;
    return true;
  case BoolKind::Or:
    for (ExprRef K : N.Kids)
      if (evaluate(K, VarValues))
        return true;
    return false;
  case BoolKind::Xor: {
    bool Acc = false;
    for (ExprRef K : N.Kids)
      Acc ^= evaluate(K, VarValues);
    return Acc;
  }
  case BoolKind::AtMost:
    return sumKids(0, N.Kids.size()) <= N.K;
  case BoolKind::AtLeast:
    return sumKids(0, N.Kids.size()) >= N.K;
  case BoolKind::SumLeqSum:
    return sumKids(0, N.K) <= sumKids(N.K, N.Kids.size());
  }
  unreachable("unknown BoolKind");
}

std::string BoolContext::toString(ExprRef R) const {
  const BoolNode &N = Nodes[R];
  auto joinKids = [&](const char *Sep, size_t Begin, size_t End) {
    std::string S;
    for (size_t I = Begin; I != End; ++I) {
      if (I != Begin)
        S += Sep;
      S += toString(N.Kids[I]);
    }
    return S;
  };
  switch (N.Kind) {
  case BoolKind::Const:
    return N.ConstVal ? "true" : "false";
  case BoolKind::Var:
    return VarNames[N.VarId];
  case BoolKind::Not:
    return "!" + toString(N.Kids[0]);
  case BoolKind::And:
    return "(" + joinKids(" & ", 0, N.Kids.size()) + ")";
  case BoolKind::Or:
    return "(" + joinKids(" | ", 0, N.Kids.size()) + ")";
  case BoolKind::Xor:
    return "(" + joinKids(" ^ ", 0, N.Kids.size()) + ")";
  case BoolKind::AtMost:
    return "atmost<" + std::to_string(N.K) + ">(" +
           joinKids(", ", 0, N.Kids.size()) + ")";
  case BoolKind::AtLeast:
    return "atleast<" + std::to_string(N.K) + ">(" +
           joinKids(", ", 0, N.Kids.size()) + ")";
  case BoolKind::SumLeqSum:
    return "sum(" + joinKids(", ", 0, N.K) + ") <= sum(" +
           joinKids(", ", N.K, N.Kids.size()) + ")";
  }
  unreachable("unknown BoolKind");
}
