//===- smt/BoolExpr.h - Boolean expression DAG ------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed Boolean expressions over named variables, with the
/// connectives the classical verification conditions of QEC programs need:
/// AND/OR/NOT/XOR plus cardinality atoms (at-most-k / at-least-k) and
/// pseudo-Boolean sum comparisons (sum(A) <= sum(B), used by the decoder
/// contract "weight of corrections <= weight of errors" of Section 5.2).
/// This is the expression language the paper encodes into SMT-LIB; here it
/// is encoded into CNF for the built-in CDCL solver.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SMT_BOOLEXPR_H
#define VERIQEC_SMT_BOOLEXPR_H

#include "support/Assert.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace veriqec::smt {

/// Index of a node inside a BoolContext.
using ExprRef = uint32_t;

/// Node kinds after desugaring (Implies/Iff are folded into these).
enum class BoolKind : uint8_t {
  Const,
  Var,
  Not,
  And,
  Or,
  Xor,
  AtMost,    ///< sum(kids) <= K
  AtLeast,   ///< sum(kids) >= K
  SumLeqSum, ///< sum(kids[0..SplitAt)) <= sum(kids[SplitAt..))
};

/// One DAG node. Immutable once created.
struct BoolNode {
  BoolKind Kind;
  bool ConstVal = false;
  uint32_t VarId = 0;
  uint32_t K = 0; ///< cardinality threshold, or the split point (SumLeqSum)
  std::vector<ExprRef> Kids;
};

/// Owning arena of hash-consed Boolean expressions. All mk* functions
/// perform light constant folding so trivially true/false structure
/// collapses before CNF encoding.
class BoolContext {
public:
  BoolContext();

  // -- Construction --------------------------------------------------------
  ExprRef mkConst(bool V) { return V ? TrueRef : FalseRef; }
  ExprRef mkTrue() { return TrueRef; }
  ExprRef mkFalse() { return FalseRef; }

  /// Returns (creating on first use) the variable named \p Name.
  ExprRef mkVar(const std::string &Name);

  /// True if a variable of this name exists already.
  bool hasVar(const std::string &Name) const {
    return VarByName.count(Name) != 0;
  }

  /// Id of an existing variable (fatal if unknown) — const lookup for
  /// layers that must not grow the context.
  uint32_t varIdOf(const std::string &Name) const;

  /// ExprRef of an existing variable (fatal if unknown).
  ExprRef varRef(const std::string &Name) const {
    return VarRefs[varIdOf(Name)];
  }

  ExprRef mkNot(ExprRef A);
  ExprRef mkAnd(std::vector<ExprRef> Kids);
  ExprRef mkOr(std::vector<ExprRef> Kids);
  ExprRef mkXor(std::vector<ExprRef> Kids);
  ExprRef mkAnd(ExprRef A, ExprRef B) { return mkAnd(std::vector{A, B}); }
  ExprRef mkOr(ExprRef A, ExprRef B) { return mkOr(std::vector{A, B}); }
  ExprRef mkXor(ExprRef A, ExprRef B) { return mkXor(std::vector{A, B}); }
  ExprRef mkImplies(ExprRef A, ExprRef B) { return mkOr(mkNot(A), B); }
  ExprRef mkIff(ExprRef A, ExprRef B) { return mkNot(mkXor(A, B)); }

  /// sum over \p Kids of their 0/1 values <= \p K.
  ExprRef mkAtMost(std::vector<ExprRef> Kids, uint32_t K);
  /// sum over \p Kids >= \p K.
  ExprRef mkAtLeast(std::vector<ExprRef> Kids, uint32_t K);
  /// sum(\p A) <= sum(\p B).
  ExprRef mkSumLeqSum(std::vector<ExprRef> A, std::vector<ExprRef> B);

  // -- Inspection ----------------------------------------------------------
  const BoolNode &node(ExprRef R) const { return Nodes[R]; }
  size_t numNodes() const { return Nodes.size(); }
  size_t numVariables() const { return VarNames.size(); }
  const std::string &varName(uint32_t VarId) const { return VarNames[VarId]; }

  /// Evaluates under a total assignment indexed by VarId. Used for model
  /// validation and brute-force cross-checks in tests.
  bool evaluate(ExprRef R, const std::vector<bool> &VarValues) const;

  /// Pretty-prints an expression (diagnostics / golden tests).
  std::string toString(ExprRef R) const;

private:
  ExprRef intern(BoolNode N);
  uint64_t hashNode(const BoolNode &N) const;

  std::vector<BoolNode> Nodes;
  std::unordered_map<uint64_t, std::vector<ExprRef>> Interned;
  std::unordered_map<std::string, uint32_t> VarByName;
  std::vector<std::string> VarNames;
  std::vector<ExprRef> VarRefs;
  ExprRef TrueRef = 0;
  ExprRef FalseRef = 0;
};

} // namespace veriqec::smt

#endif // VERIQEC_SMT_BOOLEXPR_H
