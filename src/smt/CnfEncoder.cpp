//===- smt/CnfEncoder.cpp - Tseitin CNF encoding ---------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "smt/CnfEncoder.h"

#include "support/Assert.h"

#include <algorithm>

using namespace veriqec;
using namespace veriqec::smt;
using sat::Lit;
using sat::Var;

Lit CnfEncoder::trueLit() {
  if (CachedTrue.isUndef()) {
    Var V = Out.newVar();
    CachedTrue = sat::mkLit(V);
    Out.add({CachedTrue});
  }
  return CachedTrue;
}

Var CnfEncoder::satVarOf(uint32_t BoolVarId) {
  auto It = Out.VarOfBoolVar.find(BoolVarId);
  if (It != Out.VarOfBoolVar.end())
    return It->second;
  Var V = Out.newVar();
  Out.VarOfBoolVar.emplace(BoolVarId, V);
  return V;
}

Lit CnfEncoder::mkAndLits(const std::vector<Lit> &Lits) {
  assert(!Lits.empty());
  if (Lits.size() == 1)
    return Lits[0];
  Lit Y = sat::mkLit(Out.newVar());
  std::vector<Lit> Long{Y};
  for (Lit L : Lits) {
    Out.add({~Y, L});
    Long.push_back(~L);
  }
  Out.add(std::move(Long));
  return Y;
}

Lit CnfEncoder::mkOrLits(const std::vector<Lit> &Lits) {
  assert(!Lits.empty());
  if (Lits.size() == 1)
    return Lits[0];
  Lit Y = sat::mkLit(Out.newVar());
  std::vector<Lit> Long{~Y};
  for (Lit L : Lits) {
    Out.add({Y, ~L});
    Long.push_back(L);
  }
  Out.add(std::move(Long));
  return Y;
}

Lit CnfEncoder::mkXorLits(Lit A, Lit B) {
  Lit Y = sat::mkLit(Out.newVar());
  Out.add({~Y, A, B});
  Out.add({~Y, ~A, ~B});
  Out.add({Y, ~A, B});
  Out.add({Y, A, ~B});
  return Y;
}

Lit CnfEncoder::parityLit(const std::vector<Lit> &Lits, size_t Begin,
                          size_t End) {
  if (End - Begin == 1)
    return Lits[Begin];
  size_t Mid = Begin + (End - Begin) / 2;
  return mkXorLits(parityLit(Lits, Begin, Mid), parityLit(Lits, Mid, End));
}

void CnfEncoder::assertParity(const std::vector<Lit> &Lits, bool Odd) {
  size_t N = Lits.size();
  if (N == 0) {
    if (Odd)
      Out.add({}); // 0 == 1: unsatisfiable
    return;
  }
  if (N == 1) {
    Out.add({Odd ? Lits[0] : ~Lits[0]});
    return;
  }
  if (N == 3) {
    // Direct aux-free ternary parity; flipping one literal flips parity.
    Lit A = Odd ? Lits[0] : ~Lits[0], B = Lits[1], C = Lits[2];
    Out.add({A, B, C});
    Out.add({A, ~B, ~C});
    Out.add({~A, B, ~C});
    Out.add({~A, ~B, C});
    return;
  }
  // Balanced split; equating the two halves' parity literals with two
  // binary clauses saves the topmost auxiliary variable.
  Lit A = parityLit(Lits, 0, N / 2);
  Lit B = parityLit(Lits, N / 2, N);
  if (Odd) {
    Out.add({A, B});
    Out.add({~A, ~B});
  } else {
    Out.add({A, ~B});
    Out.add({~A, B});
  }
}

const std::vector<Lit> &
CnfEncoder::unaryCounter(const std::vector<Lit> &Inputs, size_t MaxJ) {
  MaxJ = std::min(MaxJ, Inputs.size());
  std::vector<int32_t> Key;
  Key.reserve(Inputs.size());
  for (Lit L : Inputs)
    Key.push_back(L.Code);

  // Registers: Cols[i][j-1] <=> (first i+1 inputs have >= j ones). The
  // whole register bank is cached, and a deeper request EXTENDS it in
  // place — row j only reads rows j and j-1 of the previous column —
  // so request order never matters and nothing is re-encoded. Counters
  // are built only to the deepest depth ever requested: a truncated
  // counter is O(n*MaxJ) auxiliaries, and the weight-budget caps keep
  // MaxJ tiny on the verification hot path.
  std::vector<std::vector<Lit>> &Cols = CounterCache[Key];
  size_t Have = Cols.empty() ? 0 : Cols.back().size();
  if (!Cols.empty() && Have >= MaxJ)
    return Cols.back();
  Cols.resize(Inputs.size());

  Lit True = trueLit();
  Lit False = ~True;
  for (size_t I = 0; I != Inputs.size(); ++I) {
    std::vector<Lit> &Cur = Cols[I];
    size_t Cap = std::min(MaxJ, I + 1);
    for (size_t J = Cur.size() + 1; J <= Cap; ++J) {
      // Prev = Cols[I-1]: counts over the first I inputs.
      Lit GePrevJ = (I > 0 && J <= I) ? Cols[I - 1][J - 1] : False;
      Lit GePrevJm1 =
          (J == 1) ? True : ((I > 0 && J - 1 <= I) ? Cols[I - 1][J - 2] : False);
      // Cur[j] <=> GePrevJ | (x_i & GePrevJm1)
      Lit Carry;
      if (GePrevJm1 == True)
        Carry = Inputs[I];
      else if (GePrevJm1 == False)
        Carry = False;
      else
        Carry = mkAndLits({Inputs[I], GePrevJm1});
      if (GePrevJ == False)
        Cur.push_back(Carry);
      else if (Carry == False)
        Cur.push_back(GePrevJ);
      else
        Cur.push_back(mkOrLits({GePrevJ, Carry}));
    }
  }
  return Cols.back();
}

Lit CnfEncoder::encodeCardinalityGE(const std::vector<Lit> &Inputs,
                                    uint32_t K) {
  if (K == 0)
    return trueLit();
  if (K > Inputs.size())
    return ~trueLit();

  if (CardEnc == CardinalityEncoding::PairwiseNaive) {
    // sum >= K  <=>  OR over all K-subsets of (AND of the subset).
    // Exponential; used only in the ablation benchmark for tiny K.
    std::vector<Lit> Disjuncts;
    std::vector<size_t> Idx(K);
    for (size_t I = 0; I != K; ++I)
      Idx[I] = I;
    while (true) {
      std::vector<Lit> Conj;
      for (size_t I : Idx)
        Conj.push_back(Inputs[I]);
      Disjuncts.push_back(mkAndLits(Conj));
      // Next combination.
      size_t P = K;
      while (P > 0 && Idx[P - 1] == Inputs.size() - (K - P) - 1)
        --P;
      if (P == 0)
        break;
      ++Idx[P - 1];
      for (size_t I = P; I != K; ++I)
        Idx[I] = Idx[I - 1] + 1;
    }
    return mkOrLits(Disjuncts);
  }

  const std::vector<Lit> &Counter = unaryCounter(Inputs, K);
  return Counter[K - 1];
}

Lit CnfEncoder::encode(ExprRef R) {
  auto It = Memo.find(R);
  if (It != Memo.end())
    return It->second;

  const BoolNode &N = Ctx.node(R);
  Lit Result;
  switch (N.Kind) {
  case BoolKind::Const:
    Result = N.ConstVal ? trueLit() : ~trueLit();
    break;
  case BoolKind::Var: {
    auto AIt = Alias.find(N.VarId);
    if (AIt == Alias.end()) {
      Result = sat::mkLit(satVarOf(N.VarId));
    } else {
      Result = sat::mkLit(satVarOf(AIt->second.first));
      if (AIt->second.second)
        Result = ~Result;
    }
    break;
  }
  case BoolKind::Not:
    Result = ~encode(N.Kids[0]);
    break;
  case BoolKind::And: {
    std::vector<Lit> Lits;
    Lits.reserve(N.Kids.size());
    for (ExprRef K : N.Kids)
      Lits.push_back(encode(K));
    Result = mkAndLits(Lits);
    break;
  }
  case BoolKind::Or: {
    std::vector<Lit> Lits;
    Lits.reserve(N.Kids.size());
    for (ExprRef K : N.Kids)
      Lits.push_back(encode(K));
    Result = mkOrLits(Lits);
    break;
  }
  case BoolKind::Xor: {
    Lit Acc = encode(N.Kids[0]);
    for (size_t I = 1; I != N.Kids.size(); ++I)
      Acc = mkXorLits(Acc, encode(N.Kids[I]));
    Result = Acc;
    break;
  }
  case BoolKind::AtMost: {
    std::vector<Lit> Lits;
    for (ExprRef K : N.Kids)
      Lits.push_back(encode(K));
    Result = ~encodeCardinalityGE(Lits, N.K + 1);
    break;
  }
  case BoolKind::AtLeast: {
    std::vector<Lit> Lits;
    for (ExprRef K : N.Kids)
      Lits.push_back(encode(K));
    Result = encodeCardinalityGE(Lits, N.K);
    break;
  }
  case BoolKind::SumLeqSum: {
    std::vector<Lit> A, B;
    for (size_t I = 0; I != N.K; ++I)
      A.push_back(encode(N.Kids[I]));
    for (size_t I = N.K; I != N.Kids.size(); ++I)
      B.push_back(encode(N.Kids[I]));
    // sum(A) <= sum(B)  <=>  for every threshold j: sum(A) >= j implies
    // sum(B) >= j. When the right-hand side consists solely of budget
    // terms whose sum is pinned below CounterCap (setBudgetTruncation),
    // thresholds above the cap are implied by the threshold-Cap
    // implication (it forces sum(A) < Cap) and are not encoded — this
    // keeps the counters shallow.
    size_t Depth = A.size();
    if (CounterCap) {
      // Truncation is valid only when sum(RHS) provably stays below the
      // cap: every RHS term must be a budget term AND distinct — a
      // repeated term is counted with multiplicity by the sum, so a
      // duplicate could push sum(RHS) past the budget bound.
      std::unordered_set<ExprRef> SeenRhs;
      bool RhsIsBudget = true;
      for (size_t I = N.K; I != N.Kids.size(); ++I)
        if (!BudgetSet.count(N.Kids[I]) ||
            !SeenRhs.insert(N.Kids[I]).second) {
          RhsIsBudget = false;
          break;
        }
      if (RhsIsBudget)
        Depth = std::min(Depth, CounterCap);
    }
    const std::vector<Lit> &CA = unaryCounter(A, Depth);
    std::vector<Lit> Imps;
    for (size_t J = 1; J <= Depth; ++J) {
      Lit GeA = CA[J - 1];
      Lit GeB;
      if (J > B.size())
        GeB = ~trueLit();
      else
        GeB = unaryCounter(B, std::min(B.size(), Depth))[J - 1];
      Imps.push_back(mkOrLits({~GeA, GeB}));
    }
    Result = mkAndLits(Imps);
    break;
  }
  }
  Memo.emplace(R, Result);
  return Result;
}
