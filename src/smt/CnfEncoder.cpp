//===- smt/CnfEncoder.cpp - Tseitin CNF encoding ---------------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "smt/CnfEncoder.h"

#include "support/Assert.h"

#include <algorithm>

using namespace veriqec;
using namespace veriqec::smt;
using sat::Lit;
using sat::Var;

Lit CnfEncoder::trueLit() {
  if (CachedTrue.isUndef()) {
    Var V = Out.newVar();
    CachedTrue = sat::mkLit(V);
    Out.add({CachedTrue});
  }
  return CachedTrue;
}

Var CnfEncoder::satVarOf(uint32_t BoolVarId) {
  auto It = Out.VarOfBoolVar.find(BoolVarId);
  if (It != Out.VarOfBoolVar.end())
    return It->second;
  Var V = Out.newVar();
  Out.VarOfBoolVar.emplace(BoolVarId, V);
  return V;
}

Lit CnfEncoder::mkAndLits(const std::vector<Lit> &Lits) {
  assert(!Lits.empty());
  if (Lits.size() == 1)
    return Lits[0];
  Lit Y = sat::mkLit(Out.newVar());
  std::vector<Lit> Long{Y};
  for (Lit L : Lits) {
    Out.add({~Y, L});
    Long.push_back(~L);
  }
  Out.add(std::move(Long));
  return Y;
}

Lit CnfEncoder::mkOrLits(const std::vector<Lit> &Lits) {
  assert(!Lits.empty());
  if (Lits.size() == 1)
    return Lits[0];
  Lit Y = sat::mkLit(Out.newVar());
  std::vector<Lit> Long{~Y};
  for (Lit L : Lits) {
    Out.add({Y, ~L});
    Long.push_back(L);
  }
  Out.add(std::move(Long));
  return Y;
}

Lit CnfEncoder::mkXorLits(Lit A, Lit B) {
  Lit Y = sat::mkLit(Out.newVar());
  Out.add({~Y, A, B});
  Out.add({~Y, ~A, ~B});
  Out.add({Y, ~A, B});
  Out.add({Y, A, ~B});
  return Y;
}

const std::vector<Lit> &
CnfEncoder::unaryCounter(const std::vector<Lit> &Inputs, size_t MaxJ) {
  MaxJ = std::min(MaxJ, Inputs.size());
  std::vector<int32_t> Key;
  Key.reserve(Inputs.size());
  for (Lit L : Inputs)
    Key.push_back(L.Code);

  auto It = CounterCache.find(Key);
  if (It != CounterCache.end() && It->second.size() >= MaxJ)
    return It->second;
  // (Re)build the full counter once; further thresholds reuse it.
  MaxJ = Inputs.size();

  // Registers: Prev[j-1] <=> (first i inputs have >= j ones).
  Lit True = trueLit();
  Lit False = ~True;
  std::vector<Lit> Prev; // i = 0: empty prefix has >= j ones only for j = 0
  for (size_t I = 0; I != Inputs.size(); ++I) {
    std::vector<Lit> Next(MaxJ, False);
    size_t Cap = std::min(MaxJ, I + 1);
    for (size_t J = 1; J <= Cap; ++J) {
      Lit GePrevJ = (J <= Prev.size() && J <= I) ? Prev[J - 1] : False;
      Lit GePrevJm1 = (J == 1) ? True : ((J - 1 <= I) ? Prev[J - 2] : False);
      // Next[j] <=> GePrevJ | (x_i & GePrevJm1)
      Lit Carry;
      if (GePrevJm1 == True)
        Carry = Inputs[I];
      else if (GePrevJm1 == False)
        Carry = False;
      else
        Carry = mkAndLits({Inputs[I], GePrevJm1});
      if (GePrevJ == False)
        Next[J - 1] = Carry;
      else if (Carry == False)
        Next[J - 1] = GePrevJ;
      else
        Next[J - 1] = mkOrLits({GePrevJ, Carry});
    }
    Prev = std::move(Next);
  }
  auto [Slot, Inserted] = CounterCache.insert_or_assign(Key, std::move(Prev));
  (void)Inserted;
  return Slot->second;
}

Lit CnfEncoder::encodeCardinalityGE(const std::vector<Lit> &Inputs,
                                    uint32_t K) {
  if (K == 0)
    return trueLit();
  if (K > Inputs.size())
    return ~trueLit();

  if (CardEnc == CardinalityEncoding::PairwiseNaive) {
    // sum >= K  <=>  OR over all K-subsets of (AND of the subset).
    // Exponential; used only in the ablation benchmark for tiny K.
    std::vector<Lit> Disjuncts;
    std::vector<size_t> Idx(K);
    for (size_t I = 0; I != K; ++I)
      Idx[I] = I;
    while (true) {
      std::vector<Lit> Conj;
      for (size_t I : Idx)
        Conj.push_back(Inputs[I]);
      Disjuncts.push_back(mkAndLits(Conj));
      // Next combination.
      size_t P = K;
      while (P > 0 && Idx[P - 1] == Inputs.size() - (K - P) - 1)
        --P;
      if (P == 0)
        break;
      ++Idx[P - 1];
      for (size_t I = P; I != K; ++I)
        Idx[I] = Idx[I - 1] + 1;
    }
    return mkOrLits(Disjuncts);
  }

  const std::vector<Lit> &Counter = unaryCounter(Inputs, K);
  return Counter[K - 1];
}

Lit CnfEncoder::encode(ExprRef R) {
  auto It = Memo.find(R);
  if (It != Memo.end())
    return It->second;

  const BoolNode &N = Ctx.node(R);
  Lit Result;
  switch (N.Kind) {
  case BoolKind::Const:
    Result = N.ConstVal ? trueLit() : ~trueLit();
    break;
  case BoolKind::Var:
    Result = sat::mkLit(satVarOf(N.VarId));
    break;
  case BoolKind::Not:
    Result = ~encode(N.Kids[0]);
    break;
  case BoolKind::And: {
    std::vector<Lit> Lits;
    Lits.reserve(N.Kids.size());
    for (ExprRef K : N.Kids)
      Lits.push_back(encode(K));
    Result = mkAndLits(Lits);
    break;
  }
  case BoolKind::Or: {
    std::vector<Lit> Lits;
    Lits.reserve(N.Kids.size());
    for (ExprRef K : N.Kids)
      Lits.push_back(encode(K));
    Result = mkOrLits(Lits);
    break;
  }
  case BoolKind::Xor: {
    Lit Acc = encode(N.Kids[0]);
    for (size_t I = 1; I != N.Kids.size(); ++I)
      Acc = mkXorLits(Acc, encode(N.Kids[I]));
    Result = Acc;
    break;
  }
  case BoolKind::AtMost: {
    std::vector<Lit> Lits;
    for (ExprRef K : N.Kids)
      Lits.push_back(encode(K));
    Result = ~encodeCardinalityGE(Lits, N.K + 1);
    break;
  }
  case BoolKind::AtLeast: {
    std::vector<Lit> Lits;
    for (ExprRef K : N.Kids)
      Lits.push_back(encode(K));
    Result = encodeCardinalityGE(Lits, N.K);
    break;
  }
  case BoolKind::SumLeqSum: {
    std::vector<Lit> A, B;
    for (size_t I = 0; I != N.K; ++I)
      A.push_back(encode(N.Kids[I]));
    for (size_t I = N.K; I != N.Kids.size(); ++I)
      B.push_back(encode(N.Kids[I]));
    // sum(A) <= sum(B)  <=>  for every threshold j: sum(A) >= j implies
    // sum(B) >= j.
    const std::vector<Lit> &CA = unaryCounter(A, A.size());
    std::vector<Lit> Imps;
    for (size_t J = 1; J <= A.size(); ++J) {
      Lit GeA = CA[J - 1];
      Lit GeB;
      if (J > B.size())
        GeB = ~trueLit();
      else
        GeB = unaryCounter(B, B.size())[J - 1];
      Imps.push_back(mkOrLits({~GeA, GeB}));
    }
    Result = mkAndLits(Imps);
    break;
  }
  }
  Memo.emplace(R, Result);
  return Result;
}
