//===- smt/CnfEncoder.h - Tseitin CNF encoding ------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates BoolContext expressions into CNF: plain Tseitin for the
/// logical connectives, XOR chains for parities, and sequential-counter
/// unary sums for cardinality and pseudo-Boolean comparison atoms. The
/// output CnfFormula is solver-neutral so the parallel driver can hand the
/// same clause set to many Solver instances.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SMT_CNFENCODER_H
#define VERIQEC_SMT_CNFENCODER_H

#include "sat/SatTypes.h"
#include "smt/BoolExpr.h"

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace veriqec::smt {

/// A CNF instance decoupled from any Solver, plus the mapping from
/// BoolContext variables to CNF variables (needed for model read-back and
/// cube assumptions).
struct CnfFormula {
  size_t NumVars = 0;
  std::vector<std::vector<sat::Lit>> Clauses;
  std::unordered_map<uint32_t, sat::Var> VarOfBoolVar;

  sat::Var newVar() { return static_cast<sat::Var>(NumVars++); }
  void add(std::vector<sat::Lit> C) { Clauses.push_back(std::move(C)); }
};

/// Available cardinality encodings (the ablation benchmark compares them).
enum class CardinalityEncoding {
  SequentialCounter, ///< O(n*k) auxiliary counter registers (default)
  PairwiseNaive,     ///< O(n^{k+1}) direct clauses; only sane for tiny k
};

/// Encoder: one per (context, formula) pair; memoizes node literals and
/// unary counters so shared sub-sums are built once.
class CnfEncoder {
public:
  CnfEncoder(const BoolContext &Ctx, CnfFormula &Out,
             CardinalityEncoding CardEnc =
                 CardinalityEncoding::SequentialCounter)
      : Ctx(Ctx), Out(Out), CardEnc(CardEnc) {}

  /// Returns a literal equivalent to the expression (defining auxiliary
  /// clauses as needed).
  sat::Lit encode(ExprRef R);

  /// Asserts the expression as a top-level fact.
  void assertTrue(ExprRef R) { Out.add({encode(R)}); }

  /// CNF variable carrying the named BoolContext variable, creating the
  /// mapping if needed.
  sat::Var satVarOf(uint32_t BoolVarId);

  /// Routes every encoding of Bool variable \p VarId through the literal
  /// of \p ToVarId (negated when \p Negated) instead of materializing a
  /// CNF variable for it — the encoder half of the preprocessor's
  /// equivalence-literal substitution (2-literal parity rows x = y /
  /// x != y). Must be registered before the first encode() call reaches
  /// the variable; \p ToVarId must not itself be aliased.
  void aliasVar(uint32_t VarId, uint32_t ToVarId, bool Negated) {
    Alias.emplace(VarId, std::make_pair(ToVarId, Negated));
  }

  /// Asserts XOR over \p Lits == \p Odd as a top-level fact: unit/binary
  /// clauses for short rows, a direct aux-free encoding for ternary rows,
  /// and a balanced tree of XOR gates above that. This is how the
  /// preprocessor's reduced GF(2) rows reach the solver.
  void assertParity(const std::vector<sat::Lit> &Lits, bool Odd);

  /// Two-sided unary counter over \p Inputs: result[j-1] <=> (sum >= j)
  /// for j = 1..min(MaxJ, Inputs.size()) (MaxJ = 0 means full depth).
  /// Shares the counter cache with cardinality atoms over the same
  /// inputs. This is the substrate of the assumption-activated weight
  /// layers: one encoding serves every bound up to its depth, because
  /// assuming ~result[K] enforces sum <= K and result[K-1] enforces
  /// sum >= K at solve time.
  const std::vector<sat::Lit> &counterOver(const std::vector<sat::Lit> &Inputs,
                                           size_t MaxJ = 0) {
    return unaryCounter(Inputs, MaxJ ? MaxJ : Inputs.size());
  }

  /// Enables budget-driven counter truncation: the caller guarantees
  /// (by a root-level unit on the budget counter) that the sum over
  /// \p BudgetTerms never reaches \p Cap. SumLeqSum atoms whose
  /// right-hand side consists solely of budget terms then only encode
  /// comparison thresholds up to Cap — the threshold-Cap implication
  /// pins the left sum below Cap, making every higher threshold vacuous
  /// — which keeps the unary counters shallow (O(n*Cap) instead of
  /// O(n^2) auxiliaries on the verification hot path).
  void setBudgetTruncation(size_t Cap,
                           const std::vector<ExprRef> &BudgetTerms) {
    CounterCap = Cap;
    BudgetSet.insert(BudgetTerms.begin(), BudgetTerms.end());
  }

private:
  sat::Lit parityLit(const std::vector<sat::Lit> &Lits, size_t Begin,
                     size_t End);
  sat::Lit trueLit();
  sat::Lit mkAndLits(const std::vector<sat::Lit> &Lits);
  sat::Lit mkOrLits(const std::vector<sat::Lit> &Lits);
  sat::Lit mkXorLits(sat::Lit A, sat::Lit B);

  /// Unary counter over \p Inputs: result[j-1] <=> (sum >= j), for
  /// j = 1..MaxJ. The full register bank is cached per input list and
  /// deepened in place on a later deeper request, so request order does
  /// not matter and nothing is ever re-encoded.
  const std::vector<sat::Lit> &unaryCounter(const std::vector<sat::Lit> &Inputs,
                                            size_t MaxJ);

  sat::Lit encodeCardinalityGE(const std::vector<sat::Lit> &Inputs,
                               uint32_t K);

  const BoolContext &Ctx;
  CnfFormula &Out;
  CardinalityEncoding CardEnc;
  std::unordered_map<ExprRef, sat::Lit> Memo;
  /// Equivalence-substituted variables: VarId -> (partner, negated).
  std::unordered_map<uint32_t, std::pair<uint32_t, bool>> Alias;
  /// Per input list: the counter register bank, Cols[i][j-1] <=>
  /// (first i+1 inputs have >= j ones), deepened on demand.
  std::map<std::vector<int32_t>, std::vector<std::vector<sat::Lit>>>
      CounterCache;
  size_t CounterCap = 0;
  std::unordered_set<ExprRef> BudgetSet;
  sat::Lit CachedTrue = sat::Lit::undef();
};

} // namespace veriqec::smt

#endif // VERIQEC_SMT_CNFENCODER_H
