//===- smt/CnfEncoder.h - Tseitin CNF encoding ------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates BoolContext expressions into CNF: plain Tseitin for the
/// logical connectives, XOR chains for parities, and sequential-counter
/// unary sums for cardinality and pseudo-Boolean comparison atoms. The
/// output CnfFormula is solver-neutral so the parallel driver can hand the
/// same clause set to many Solver instances.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SMT_CNFENCODER_H
#define VERIQEC_SMT_CNFENCODER_H

#include "sat/SatTypes.h"
#include "smt/BoolExpr.h"

#include <map>
#include <unordered_map>
#include <vector>

namespace veriqec::smt {

/// A CNF instance decoupled from any Solver, plus the mapping from
/// BoolContext variables to CNF variables (needed for model read-back and
/// cube assumptions).
struct CnfFormula {
  size_t NumVars = 0;
  std::vector<std::vector<sat::Lit>> Clauses;
  std::unordered_map<uint32_t, sat::Var> VarOfBoolVar;

  sat::Var newVar() { return static_cast<sat::Var>(NumVars++); }
  void add(std::vector<sat::Lit> C) { Clauses.push_back(std::move(C)); }
};

/// Available cardinality encodings (the ablation benchmark compares them).
enum class CardinalityEncoding {
  SequentialCounter, ///< O(n*k) auxiliary counter registers (default)
  PairwiseNaive,     ///< O(n^{k+1}) direct clauses; only sane for tiny k
};

/// Encoder: one per (context, formula) pair; memoizes node literals and
/// unary counters so shared sub-sums are built once.
class CnfEncoder {
public:
  CnfEncoder(const BoolContext &Ctx, CnfFormula &Out,
             CardinalityEncoding CardEnc =
                 CardinalityEncoding::SequentialCounter)
      : Ctx(Ctx), Out(Out), CardEnc(CardEnc) {}

  /// Returns a literal equivalent to the expression (defining auxiliary
  /// clauses as needed).
  sat::Lit encode(ExprRef R);

  /// Asserts the expression as a top-level fact.
  void assertTrue(ExprRef R) { Out.add({encode(R)}); }

  /// CNF variable carrying the named BoolContext variable, creating the
  /// mapping if needed.
  sat::Var satVarOf(uint32_t BoolVarId);

private:
  sat::Lit trueLit();
  sat::Lit mkAndLits(const std::vector<sat::Lit> &Lits);
  sat::Lit mkOrLits(const std::vector<sat::Lit> &Lits);
  sat::Lit mkXorLits(sat::Lit A, sat::Lit B);

  /// Unary counter over \p Inputs: result[j-1] <=> (sum >= j), for
  /// j = 1..MaxJ. Cached per input list.
  const std::vector<sat::Lit> &unaryCounter(const std::vector<sat::Lit> &Inputs,
                                            size_t MaxJ);

  sat::Lit encodeCardinalityGE(const std::vector<sat::Lit> &Inputs,
                               uint32_t K);

  const BoolContext &Ctx;
  CnfFormula &Out;
  CardinalityEncoding CardEnc;
  std::unordered_map<ExprRef, sat::Lit> Memo;
  std::map<std::vector<int32_t>, std::vector<sat::Lit>> CounterCache;
  sat::Lit CachedTrue = sat::Lit::undef();
};

} // namespace veriqec::smt

#endif // VERIQEC_SMT_CNFENCODER_H
