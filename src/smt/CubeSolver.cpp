//===- smt/CubeSolver.cpp - Sequential & parallel solving ------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "smt/CubeSolver.h"

#include "support/Assert.h"

#include <atomic>
#include <mutex>
#include <thread>

using namespace veriqec;
using namespace veriqec::smt;
using sat::Lit;
using sat::SolveResult;
using sat::Var;

namespace {

/// Builds the CNF for Root and remembers enough mapping to read models and
/// to translate split variables into assumption literals.
struct EncodedProblem {
  CnfFormula Cnf;
  std::vector<std::pair<std::string, Var>> NamedVars;

  EncodedProblem(const BoolContext &Ctx, ExprRef Root,
                 CardinalityEncoding CardEnc) {
    CnfEncoder Encoder(Ctx, Cnf, CardEnc);
    // Materialize every named variable so models are always total (a
    // variable can be optimized away by constant folding yet still be
    // interesting to the caller).
    for (uint32_t Id = 0; Id != Ctx.numVariables(); ++Id)
      NamedVars.emplace_back(Ctx.varName(Id), Encoder.satVarOf(Id));
    Encoder.assertTrue(Root);
  }

  sat::Solver makeSolver() const {
    sat::Solver S;
    for (size_t I = 0; I != Cnf.NumVars; ++I)
      S.newVar();
    for (const auto &C : Cnf.Clauses)
      S.addClause(C);
    return S;
  }

  void readModel(const sat::Solver &S,
                 std::unordered_map<std::string, bool> &Model) const {
    for (const auto &[Name, V] : NamedVars)
      Model[Name] = S.modelValue(V);
  }

  Var varOfName(const std::string &Name) const {
    for (const auto &[N, V] : NamedVars)
      if (N == Name)
        return V;
    fatalError("unknown split variable: " + Name);
  }
};

/// Enumerates cubes over the split variables using the paper's heuristic:
/// extend the cube while ET = 2d*ones + bits stays <= threshold.
void enumerateCubes(const std::vector<Var> &SplitVars, uint32_t Distance,
                    uint32_t Threshold, uint32_t MaxOnes,
                    std::vector<Lit> &Prefix, uint32_t Ones,
                    std::vector<std::vector<Lit>> &Out) {
  uint32_t Bits = static_cast<uint32_t>(Prefix.size());
  bool Exhausted = Bits >= SplitVars.size();
  if (Exhausted || 2 * Distance * Ones + Bits > Threshold) {
    Out.push_back(Prefix);
    return;
  }
  Var Next = SplitVars[Bits];
  // Zero branch first: low-weight cubes are cheap and likely decisive.
  Prefix.push_back(~sat::mkLit(Next));
  enumerateCubes(SplitVars, Distance, Threshold, MaxOnes, Prefix, Ones, Out);
  Prefix.pop_back();
  if (Ones + 1 <= MaxOnes) {
    Prefix.push_back(sat::mkLit(Next));
    enumerateCubes(SplitVars, Distance, Threshold, MaxOnes, Prefix, Ones + 1,
                   Out);
    Prefix.pop_back();
  }
}

} // namespace

SolveOutcome veriqec::smt::solveExpr(const BoolContext &Ctx, ExprRef Root,
                                     const SolveOptions &Opts) {
  EncodedProblem Problem(Ctx, Root, Opts.CardEnc);
  sat::Solver S = Problem.makeSolver();
  if (Opts.ConflictBudget)
    S.setConflictBudget(Opts.ConflictBudget);
  SolveOutcome Outcome;
  Outcome.Result = S.solve();
  Outcome.Stats = S.stats();
  if (Outcome.Result == SolveResult::Sat)
    Problem.readModel(S, Outcome.Model);
  return Outcome;
}

SolveOutcome veriqec::smt::solveExprParallel(const BoolContext &Ctx,
                                             ExprRef Root,
                                             const SolveOptions &Opts) {
  EncodedProblem Problem(Ctx, Root, Opts.CardEnc);

  // Build the cube list.
  std::vector<Var> SplitVars;
  for (const std::string &Name : Opts.SplitVars)
    SplitVars.push_back(Problem.varOfName(Name));
  std::vector<std::vector<Lit>> Cubes;
  std::vector<Lit> Prefix;
  enumerateCubes(SplitVars, Opts.DistanceHint, Opts.SplitThreshold,
                 Opts.MaxOnes, Prefix, 0, Cubes);

  size_t NumThreads = Opts.NumThreads
                          ? Opts.NumThreads
                          : std::max(1u, std::thread::hardware_concurrency());
  NumThreads = std::min(NumThreads, Cubes.size());

  std::atomic<bool> FoundSat{false};
  std::atomic<bool> AnyAborted{false};
  std::atomic<size_t> NextCube{0};
  std::mutex ResultMutex;
  SolveOutcome Outcome;
  Outcome.NumCubes = Cubes.size();

  auto Worker = [&]() {
    sat::Solver S = Problem.makeSolver();
    S.setAbortFlag(&FoundSat);
    if (Opts.ConflictBudget)
      S.setConflictBudget(Opts.ConflictBudget);
    while (!FoundSat.load(std::memory_order_relaxed)) {
      size_t Idx = NextCube.fetch_add(1);
      if (Idx >= Cubes.size())
        break;
      SolveResult R = S.solve(Cubes[Idx]);
      if (R == SolveResult::Sat) {
        std::lock_guard<std::mutex> Lock(ResultMutex);
        if (!FoundSat.exchange(true)) {
          Outcome.Result = SolveResult::Sat;
          Problem.readModel(S, Outcome.Model);
        }
        break;
      }
      if (R == SolveResult::Aborted &&
          !FoundSat.load(std::memory_order_relaxed))
        AnyAborted.store(true);
    }
    std::lock_guard<std::mutex> Lock(ResultMutex);
    Outcome.Stats.Decisions += S.stats().Decisions;
    Outcome.Stats.Propagations += S.stats().Propagations;
    Outcome.Stats.Conflicts += S.stats().Conflicts;
    Outcome.Stats.LearnedClauses += S.stats().LearnedClauses;
    Outcome.Stats.Restarts += S.stats().Restarts;
  };

  std::vector<std::thread> Threads;
  for (size_t I = 0; I != NumThreads; ++I)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();

  if (!FoundSat.load())
    Outcome.Result =
        AnyAborted.load() ? SolveResult::Aborted : SolveResult::Unsat;
  return Outcome;
}
