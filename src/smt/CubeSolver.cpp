//===- smt/CubeSolver.cpp - Sequential solving & problem encoding ----------===//
//
// Part of the veriqec project.
//
// The parallel entry point solveExprParallel() lives in
// engine/CubeEngine.cpp: all threading is owned by the engine layer.
//
//===----------------------------------------------------------------------===//

#include "smt/CubeSolver.h"

#include "obs/Trace.h"
#include "proof/ProofLog.h"
#include "support/Assert.h"
#include "support/Timer.h"

#include <algorithm>
#include <unordered_set>

using namespace veriqec;
using namespace veriqec::smt;
using sat::Lit;
using sat::SolveResult;
using sat::Var;

VerificationProblem::VerificationProblem(const BoolContext &Ctx_, ExprRef Root,
                                         const ProblemOptions &Opts) {
  VarNames.reserve(Ctx_.numVariables());
  for (uint32_t Id = 0; Id != Ctx_.numVariables(); ++Id)
    VarNames.push_back(Ctx_.varName(Id));
  PreprocessOptions PO;
  PO.Enable = Opts.Preprocess;
  for (const std::string &Name : Opts.ProtectedVars)
    PO.KeepVarIds.push_back(Ctx_.varIdOf(Name));
  PO.KeepUsedExprs = Opts.BudgetTerms;
  PO.CaptureOriginalRows = Opts.CaptureProofData;
  PreprocessedFormula P = [&] {
    obs::TraceSpan Span("gf2_preprocess", {{"vars", Ctx_.numVariables()}});
    return preprocess(Ctx_, Root, PO);
  }();
  Prep = P.Stats;
  TriviallyUnsat = P.TriviallyUnsat;
  OriginalRows = std::move(P.OriginalRows);
  Eliminated = std::move(P.Eliminated);
  Pruner = ParityPropagator(P.Rows);
  PruneByElimination = Opts.NativeXor;

  // Everything below is CNF materialization; the span's clause count is
  // attached on the normal exit (a trivially-UNSAT formula encodes none).
  obs::TraceSpan EncodeSpan("cnf_encode");
  CnfEncoder Encoder(Ctx_, Cnf, Opts.CardEnc);
  if (Opts.CounterCap)
    Encoder.setBudgetTruncation(Opts.CounterCap, Opts.BudgetTerms);
  // Equivalence substitutions must be registered before anything is
  // encoded: every later occurrence of an aliased variable — residue,
  // budget terms — must resolve to its partner's literal.
  for (const VarAlias &A : P.Aliases)
    Encoder.aliasVar(A.VarId, A.ToVarId, A.Negated);
  // Materialize every non-eliminated named variable so models are always
  // total (a variable can be optimized away by constant folding yet still
  // be interesting to the caller); eliminated variables are reconstructed
  // at model read-back instead.
  std::unordered_set<uint32_t> Dropped;
  for (const VarReconstruction &R : Eliminated)
    Dropped.insert(R.VarId);
  for (uint32_t Id = 0; Id != Ctx_.numVariables(); ++Id) {
    if (Dropped.count(Id))
      continue;
    Var V = Encoder.satVarOf(Id);
    NamedVars.emplace_back(Ctx_.varName(Id), V);
    BoolVarOfSat.emplace(V, Id);
  }
  if (TriviallyUnsat)
    return; // refuted before any clause exists

  // Reduced parity rows — native XOR constraints for the solver's
  // Gauss engine, or CNF parity chains when NativeXor is off — then the
  // irreducible residue, then the weight layer.
  std::vector<Lit> RowLits;
  for (const ParityRow &R : P.Rows) {
    if (Opts.NativeXor) {
      std::vector<sat::Var> RowVars;
      RowVars.reserve(R.Vars.size());
      for (uint32_t V : R.Vars)
        RowVars.push_back(Encoder.satVarOf(V));
      XorRows.emplace_back(std::move(RowVars), R.Rhs);
      continue;
    }
    RowLits.clear();
    for (uint32_t V : R.Vars)
      RowLits.push_back(sat::mkLit(Encoder.satVarOf(V)));
    Encoder.assertParity(RowLits, R.Rhs);
  }
  for (ExprRef C : P.Residue)
    Encoder.assertTrue(C);
  if (!Opts.BudgetTerms.empty()) {
    std::vector<Lit> Terms;
    Terms.reserve(Opts.BudgetTerms.size());
    for (ExprRef T : Opts.BudgetTerms)
      Terms.push_back(Encoder.encode(T));
    BudgetCounter = Encoder.counterOver(Terms, Opts.CounterCap);
    NumBudgetTerms = Terms.size();
  }
  EncodeSpan.arg("clauses", Cnf.Clauses.size());
}

sat::Solver VerificationProblem::makeSolver() const {
  sat::Solver S;
  loadInto(S);
  return S;
}

void VerificationProblem::loadInto(sat::Solver &S) const {
  for (size_t I = 0; I != Cnf.NumVars; ++I)
    S.newVar();
  for (const auto &C : Cnf.Clauses)
    S.addClause(C);
  std::vector<Lit> RowLits;
  for (const auto &[Vars, Rhs] : XorRows) {
    RowLits.clear();
    for (sat::Var V : Vars)
      RowLits.push_back(sat::mkLit(V));
    S.addXorClause(RowLits, Rhs);
  }
}

void VerificationProblem::readModel(
    const sat::Solver &S, std::unordered_map<std::string, bool> &Model) const {
  for (const auto &[Name, V] : NamedVars)
    Model[Name] = S.modelValue(V);
  // Eliminated variables, replayed in REVERSE elimination order: a
  // record's dependencies are either surviving variables (already in the
  // model) or variables eliminated later (already reconstructed).
  for (auto It = Eliminated.rbegin(); It != Eliminated.rend(); ++It) {
    bool B = It->Constant;
    for (uint32_t D : It->Deps)
      B ^= Model.at(VarNames[D]);
    Model[VarNames[It->VarId]] = B;
  }
}

Var VerificationProblem::varOfName(const std::string &Name) const {
  for (const auto &[N, V] : NamedVars)
    if (N == Name)
      return V;
  fatalError("unknown split variable: " + Name);
}

void VerificationProblem::appendWeightAssumptions(uint32_t MaxW,
                                                 std::vector<Lit> &Out,
                                                 uint32_t MinW) const {
  assert(NumBudgetTerms != 0 && "problem built without a weight layer");
  if (MinW > 0) {
    assert(MinW <= BudgetCounter.size() && "bound beyond the counter depth");
    Out.push_back(BudgetCounter[MinW - 1]);
  }
  if (MaxW < NumBudgetTerms) {
    assert(MaxW < BudgetCounter.size() && "bound beyond the counter depth");
    Out.push_back(~BudgetCounter[MaxW]);
  }
}

void VerificationProblem::assertWeightBound(sat::Solver &S, uint32_t MaxW,
                                            uint32_t MinW) const {
  std::vector<Lit> Units;
  appendWeightAssumptions(MaxW, Units, MinW);
  for (Lit L : Units)
    S.addClause(L);
}

bool VerificationProblem::cubeRefuted(std::span<const Lit> Cube) const {
  if (Pruner.numRows() == 0 || Cube.empty())
    return false;
  std::vector<std::pair<uint32_t, bool>> Fixed;
  Fixed.reserve(Cube.size());
  for (Lit L : Cube) {
    auto It = BoolVarOfSat.find(L.var());
    if (It != BoolVarOfSat.end())
      Fixed.emplace_back(It->second, !L.negated());
  }
  return PruneByElimination ? Pruner.refutesByElimination(Fixed)
                            : Pruner.refutes(Fixed);
}

size_t VerificationProblem::parityParticipation(sat::Var V) const {
  auto It = BoolVarOfSat.find(V);
  if (It == BoolVarOfSat.end())
    return 0;
  uint32_t BoolVar = It->second;
  size_t Count = 0;
  for (const ParityRow &Row : Pruner.rows())
    // Row variables are kept sorted (Preprocessor invariant).
    if (std::binary_search(Row.Vars.begin(), Row.Vars.end(), BoolVar))
      ++Count;
  return Count;
}

ProblemOptions veriqec::smt::makeProblemOptions(const BoolContext &Ctx,
                                                const SolveOptions &Opts) {
  ProblemOptions PO;
  PO.CardEnc = Opts.CardEnc;
  PO.Preprocess = Opts.Preprocess;
  PO.NativeXor = Opts.Xor == XorMode::On;
  PO.ProtectedVars = Opts.SplitVars;
  for (const std::string &Name : Opts.BudgetVars)
    PO.BudgetTerms.push_back(Ctx.varRef(Name));
  if (!Opts.BudgetVars.empty())
    // Every consumer hardens the bound at the root (assertWeightBound),
    // so counters past it are dead weight.
    PO.CounterCap = static_cast<size_t>(Opts.BudgetBound) + 1;
  PO.CaptureProofData = Opts.LogProofs;
  return PO;
}

SolveOutcome veriqec::smt::solveExpr(const BoolContext &Ctx, ExprRef Root,
                                     const SolveOptions &Opts) {
  Timer Clock;
  VerificationProblem Problem(Ctx, Root, makeProblemOptions(Ctx, Opts));

  SolveOutcome Outcome;
  Outcome.Prep = Problem.Prep;
  Outcome.CnfVars = Problem.Cnf.NumVars;
  Outcome.CnfClauses = Problem.Cnf.Clauses.size();
  if (Problem.TriviallyUnsat) {
    Outcome.Result = SolveResult::Unsat;
    if (Opts.LogProofs)
      Outcome.Proof = proof::buildTrivialProof(Problem);
    Outcome.SolveSeconds = Clock.seconds();
    return Outcome;
  }

  sat::Solver S = Problem.makeSolver();
  // Auto resolves to OFF here: a one-shot sequential solve has no
  // assumption prefix to keep alive, so chrono only perturbs the search.
  S.setChrono(Opts.Chrono == ChronoMode::On);
  proof::SlotProofLog Log;
  if (Opts.LogProofs)
    S.setProofSink(&Log);
  // One bound per solver: harden it at the root (encode-once, activate
  // per solver; the CnfFormula itself stays bound-independent).
  if (!Opts.BudgetVars.empty())
    Problem.assertWeightBound(S, Opts.BudgetBound);
  if (Opts.ConflictBudget)
    S.setConflictBudget(Opts.ConflictBudget);
  if (Opts.RandomSeed)
    S.setRandomSeed(Opts.RandomSeed);
  Outcome.Result = S.solve();
  Outcome.Stats = S.stats();
  if (Outcome.Result == SolveResult::Sat)
    Problem.readModel(S, Outcome.Model);
  else if (Outcome.Result == SolveResult::Unsat && Opts.LogProofs) {
    // No assumptions were used, so the clause database alone refutes
    // the problem: one stream, one empty-core conclusion.
    Log.logConclusion({}, {});
    const std::string Streams[] = {Log.drain()};
    Outcome.Proof = proof::assembleProof(
        proof::buildProofHeader(Problem, !Opts.BudgetVars.empty(),
                                Opts.BudgetBound),
        Streams, std::nullopt);
  }
  Outcome.SolveSeconds = Clock.seconds();
  return Outcome;
}
