//===- smt/CubeSolver.cpp - Sequential solving & problem encoding ----------===//
//
// Part of the veriqec project.
//
// The parallel entry point solveExprParallel() lives in
// engine/CubeEngine.cpp: all threading is owned by the engine layer.
//
//===----------------------------------------------------------------------===//

#include "smt/CubeSolver.h"

#include "support/Assert.h"
#include "support/Timer.h"

using namespace veriqec;
using namespace veriqec::smt;
using sat::SolveResult;
using sat::Var;

EncodedProblem::EncodedProblem(const BoolContext &Ctx, ExprRef Root,
                               CardinalityEncoding CardEnc) {
  CnfEncoder Encoder(Ctx, Cnf, CardEnc);
  // Materialize every named variable so models are always total (a
  // variable can be optimized away by constant folding yet still be
  // interesting to the caller).
  for (uint32_t Id = 0; Id != Ctx.numVariables(); ++Id)
    NamedVars.emplace_back(Ctx.varName(Id), Encoder.satVarOf(Id));
  Encoder.assertTrue(Root);
}

sat::Solver EncodedProblem::makeSolver() const {
  sat::Solver S;
  loadInto(S);
  return S;
}

void EncodedProblem::loadInto(sat::Solver &S) const {
  for (size_t I = 0; I != Cnf.NumVars; ++I)
    S.newVar();
  for (const auto &C : Cnf.Clauses)
    S.addClause(C);
}

void EncodedProblem::readModel(
    const sat::Solver &S, std::unordered_map<std::string, bool> &Model) const {
  for (const auto &[Name, V] : NamedVars)
    Model[Name] = S.modelValue(V);
}

Var EncodedProblem::varOfName(const std::string &Name) const {
  for (const auto &[N, V] : NamedVars)
    if (N == Name)
      return V;
  fatalError("unknown split variable: " + Name);
}

SolveOutcome veriqec::smt::solveExpr(const BoolContext &Ctx, ExprRef Root,
                                     const SolveOptions &Opts) {
  Timer Clock;
  EncodedProblem Problem(Ctx, Root, Opts.CardEnc);
  sat::Solver S = Problem.makeSolver();
  if (Opts.ConflictBudget)
    S.setConflictBudget(Opts.ConflictBudget);
  if (Opts.RandomSeed)
    S.setRandomSeed(Opts.RandomSeed);
  SolveOutcome Outcome;
  Outcome.Result = S.solve();
  Outcome.Stats = S.stats();
  if (Outcome.Result == SolveResult::Sat)
    Problem.readModel(S, Outcome.Model);
  Outcome.SolveSeconds = Clock.seconds();
  return Outcome;
}
