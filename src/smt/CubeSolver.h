//===- smt/CubeSolver.h - Sequential & parallel solving ---------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solving facade used by the verifier: a sequential entry point and a
/// cube-and-conquer parallel driver reproducing the paper's
/// parallelization (Section 7.1 / Appendix D.4): selected error variables
/// are enumerated until the heuristic ET = 2d*N(ones) + N(bits) exceeds a
/// threshold; each resulting cube is an independent SAT call; a SAT cube
/// aborts the siblings and surfaces its counterexample model.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SMT_CUBESOLVER_H
#define VERIQEC_SMT_CUBESOLVER_H

#include "sat/Solver.h"
#include "smt/BoolExpr.h"
#include "smt/CnfEncoder.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace veriqec::smt {

/// Outcome of a (possibly parallel) solve.
struct SolveOutcome {
  sat::SolveResult Result = sat::SolveResult::Aborted;
  /// For Sat: values of the named BoolContext variables.
  std::unordered_map<std::string, bool> Model;
  /// Aggregate statistics (summed over workers in the parallel case).
  sat::SolverStats Stats;
  /// Number of cubes dispatched (1 for sequential solving).
  uint64_t NumCubes = 1;
  /// Cubes actually solved; < NumCubes when a SAT cube cancelled the rest.
  uint64_t CubesSolved = 1;
  /// Wall time of the SAT discharge (excludes VC assembly).
  double SolveSeconds = 0;
};

/// Options shared by the sequential and parallel drivers.
struct SolveOptions {
  CardinalityEncoding CardEnc = CardinalityEncoding::SequentialCounter;
  uint64_t ConflictBudget = 0; ///< 0 = unlimited
  /// Nonzero seeds the solver's random branching tie-breaks (each engine
  /// worker derives its own stream from this), making runs reproducible
  /// for fuzzing; 0 keeps the deterministic pure-VSIDS order.
  uint64_t RandomSeed = 0;

  // Parallel-only knobs.
  size_t NumThreads = 0; ///< 0 = hardware concurrency
  /// Variables to enumerate (typically the error indicators e_i).
  std::vector<std::string> SplitVars;
  /// The d in ET = 2d*N(ones) + N(bits); usually the code distance.
  uint32_t DistanceHint = 3;
  /// Enumeration stops once ET exceeds this (the paper uses n, the number
  /// of qubits). 0 disables splitting (one cube).
  uint32_t SplitThreshold = 0;
  /// Cubes whose enumerated ones-count exceeds this are pruned as
  /// infeasible (weight constraint); ~0 disables pruning.
  uint32_t MaxOnes = ~uint32_t{0};
};

/// CNF encoding of one (context, root) problem plus the mapping needed to
/// read models back and to translate split-variable names into assumption
/// literals. Immutable after construction, so the engine's workers share
/// one instance per problem: each worker instantiates its own Solver from
/// the encoded clauses once and then discharges every cube it picks up
/// with assumptions, reusing learned clauses across cubes instead of
/// re-encoding the shared prefix.
struct EncodedProblem {
  CnfFormula Cnf;
  std::vector<std::pair<std::string, sat::Var>> NamedVars;

  EncodedProblem(const BoolContext &Ctx, ExprRef Root,
                 CardinalityEncoding CardEnc);

  /// A fresh solver loaded with the encoded clauses.
  sat::Solver makeSolver() const;

  /// Loads the encoded clauses into an existing empty solver — the same
  /// loading makeSolver() performs, shared so factory-made solvers (the
  /// testing harness's injectable subclasses) cannot diverge from it.
  void loadInto(sat::Solver &S) const;

  /// Reads the named-variable assignment out of a Sat solver.
  void readModel(const sat::Solver &S,
                 std::unordered_map<std::string, bool> &Model) const;

  /// CNF variable of a named BoolContext variable (fatal if unknown).
  sat::Var varOfName(const std::string &Name) const;
};

/// Solves \p Root (checking satisfiability) on one thread.
SolveOutcome solveExpr(const BoolContext &Ctx, ExprRef Root,
                       const SolveOptions &Opts = {});

/// Cube-and-conquer parallel solve of \p Root. Facade over the
/// engine::CubeEngine work-stealing scheduler (defined in
/// engine/CubeEngine.cpp): Opts.NumThreads selects the pool size, with 0
/// (or the shared pool's width) reusing the process-wide engine.
SolveOutcome solveExprParallel(const BoolContext &Ctx, ExprRef Root,
                               const SolveOptions &Opts);

} // namespace veriqec::smt

#endif // VERIQEC_SMT_CUBESOLVER_H
