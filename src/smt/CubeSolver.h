//===- smt/CubeSolver.h - Sequential & parallel solving ---------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solving facade used by the verifier: a sequential entry point and a
/// cube-and-conquer parallel driver reproducing the paper's
/// parallelization (Section 7.1 / Appendix D.4): selected error variables
/// are enumerated until the heuristic ET = 2d*N(ones) + N(bits) exceeds a
/// threshold; each resulting cube is an independent SAT call; a SAT cube
/// aborts the siblings and surfaces its counterexample model.
///
/// Both drivers run on VerificationProblem, the reusable middle of the
/// pipeline: GF(2)/XOR preprocessing (smt/Preprocessor.h), then one CNF
/// encoding shared read-only by every worker and cube, with the weight
/// budget as an assumption-activated counter layer so different bounds
/// reuse the same solver and its learnt clauses.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SMT_CUBESOLVER_H
#define VERIQEC_SMT_CUBESOLVER_H

#include "sat/Solver.h"
#include "smt/BoolExpr.h"
#include "smt/CnfEncoder.h"
#include "smt/Preprocessor.h"

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace veriqec::dist {
class ProblemCodec;
} // namespace veriqec::dist

namespace veriqec::smt {

/// Outcome of a (possibly parallel) solve.
struct SolveOutcome {
  sat::SolveResult Result = sat::SolveResult::Aborted;
  /// For Sat: values of the named BoolContext variables.
  std::unordered_map<std::string, bool> Model;
  /// Aggregate statistics (summed over workers in the parallel case).
  sat::SolverStats Stats;
  /// Number of cubes dispatched (1 for sequential solving).
  uint64_t NumCubes = 1;
  /// Cubes actually solved; < NumCubes when a SAT cube cancelled the rest.
  uint64_t CubesSolved = 1;
  /// Cubes refuted before any SAT call (included in CubesSolved):
  /// CubesPrunedGf2 by the GF(2) parity oracle, CubesPrunedCore by a
  /// sibling cube's stored UNSAT core. CubesPruned is their sum.
  uint64_t CubesPruned = 0;
  uint64_t CubesPrunedGf2 = 0;
  uint64_t CubesPrunedCore = 0;
  /// Preprocessing telemetry and CNF size (for --bench-out).
  PreprocessStats Prep;
  size_t CnfVars = 0;
  size_t CnfClauses = 0;
  /// The ET threshold the cube enumeration actually ran with (0 when the
  /// problem was not split). Differs from SolveOptions::SplitThreshold
  /// when the slot-targeting heuristic picked a tighter cut.
  uint32_t SplitThresholdUsed = 0;
  /// Wall time of the SAT discharge (excludes VC assembly).
  double SolveSeconds = 0;
  /// With SolveOptions::LogProofs and an Unsat result: the assembled
  /// clause proof (proof/ProofLog.h format), checkable by
  /// proof::checkProof or the standalone veriqec-check tool. Empty
  /// otherwise (Sat verdicts carry their model as the certificate).
  std::string Proof;
};

/// Native XOR policy. On keeps the preprocessor's parity rows as
/// Gauss-in-the-loop solver constraints (sat/GaussEngine.h) and
/// upgrades cube pruning to full GF(2) elimination; Off CNF-encodes the
/// rows (the pre-XOR pipeline). Auto lets the workload decide: the
/// distance search — whose constraint system is almost pure parity and
/// where the engine is worth 6-60x on the LDPC rows — resolves to On,
/// while scenario verification — where the residue dominates and the
/// CNF parity auxiliaries actually help VSIDS/learning (measured ~3x
/// fewer conflicts on surface7 t=3) — resolves to Off.
enum class XorMode { Auto, On, Off };

/// Chronological-backtracking policy (sat::Solver::setChrono). On keeps
/// the trail in place across prefix-crossing backjumps (lazy
/// reimplication + trail saving); Off restores classic
/// non-chronological backjumping. Auto lets the workload decide by
/// measurement: the distance search — hundreds of weight-bound
/// assumption literals re-propagated after every prefix-crossing
/// conflict — resolves to On (~20% faster on the tanner codes), while
/// cube verification (short prefixes, where the deep backjump's early
/// asserting literal wins) and sequential solves resolve to Off.
enum class ChronoMode { Auto, On, Off };

/// Options shared by the sequential and parallel drivers.
struct SolveOptions {
  CardinalityEncoding CardEnc = CardinalityEncoding::SequentialCounter;
  /// GF(2)/XOR preprocessing before CNF encoding (see smt/Preprocessor.h).
  bool Preprocess = true;
  /// Native XOR policy; Auto resolves to Off at this generic layer
  /// (expression workloads are scenario-shaped unless the caller knows
  /// better). Only effective with Preprocess on (without the lift there
  /// are no rows to keep native).
  XorMode Xor = XorMode::Auto;
  /// Chronological-backtracking policy; Auto resolves to Off both for
  /// the sequential driver (no assumption prefix to keep alive) and for
  /// the cube engine's slot solvers (measured negative there).
  ChronoMode Chrono = ChronoMode::Auto;
  uint64_t ConflictBudget = 0; ///< 0 = unlimited
  /// Nonzero seeds the solver's random branching tie-breaks (each engine
  /// worker derives its own stream from this), making runs reproducible
  /// for fuzzing; 0 keeps the deterministic pure-VSIDS order.
  uint64_t RandomSeed = 0;
  /// Emit a machine-checkable clause proof for Unsat outcomes
  /// (SolveOutcome::Proof). Logging disables the shared learnt-clause
  /// pool — imported lemmas are not replayable from one stream — and
  /// costs derivation bookkeeping, so it is opt-in.
  bool LogProofs = false;

  /// Assumption-activated weight layer: when BudgetVars is non-empty the
  /// Root expression must NOT contain the corresponding cardinality atom;
  /// sum(BudgetVars) <= BudgetBound is enforced with counter assumptions
  /// at solve time instead, so re-solves under other bounds reuse the
  /// encoding and learnt clauses.
  std::vector<std::string> BudgetVars;
  uint32_t BudgetBound = ~uint32_t{0};

  // Parallel-only knobs.
  size_t NumThreads = 0; ///< 0 = hardware concurrency
  /// Variables to enumerate (typically the error indicators e_i).
  std::vector<std::string> SplitVars;
  /// The d in ET = 2d*N(ones) + N(bits); usually the code distance.
  uint32_t DistanceHint = 3;
  /// Enumeration stops once ET exceeds this (the paper uses n, the number
  /// of qubits). 0 disables splitting (one cube).
  uint32_t SplitThreshold = 0;
  /// SplitThreshold came from the auto policy, not the user: the engine
  /// may lower it so the emitted cube count targets ~8x the total worker
  /// slots (engine::pickSplitThreshold) instead of taking the flat
  /// budget-exhaustion cut. SplitThreshold stays the upper bound.
  bool AutoSplitThreshold = false;
  /// Cubes whose enumerated ones-count exceeds this are pruned as
  /// infeasible (weight constraint); ~0 disables pruning.
  uint32_t MaxOnes = ~uint32_t{0};
};

/// How a VerificationProblem is built from a (context, root) pair.
struct ProblemOptions {
  CardinalityEncoding CardEnc = CardinalityEncoding::SequentialCounter;
  /// GF(2)/XOR preprocessing (extraction, elimination, trivial-UNSAT).
  bool Preprocess = true;
  /// Hand kept parity rows to solvers as native XOR constraints
  /// (Solver::addXorClause) rather than CNF-encoding them; also selects
  /// elimination-strength cube refutation. This is the resolved form of
  /// XorMode (the drivers translate their policy here); the default is
  /// On so direct VerificationProblem users and the property tests
  /// exercise the engine.
  bool NativeXor = true;
  /// Variables that must survive preprocessing as CNF variables — cube
  /// split variables, whose assumption literals would otherwise dangle.
  std::vector<std::string> ProtectedVars;
  /// When non-empty, a two-sided unary counter over these terms is
  /// encoded once and weight bounds become solve-time assumptions
  /// (appendWeightAssumptions). Terms may be arbitrary expressions (e.g.
  /// per-qubit support x_q | z_q for the distance search).
  std::vector<ExprRef> BudgetTerms;
  /// Nonzero caps every counter touching the budget at this depth
  /// (CnfEncoder::setBudgetTruncation): valid when the solve enforces
  /// sum(BudgetTerms) < CounterCap at the root (assertWeightBound), which
  /// shrinks the cardinality machinery from O(n^2) to O(n*Cap). Leave 0
  /// for searches that probe many bounds (distance mode).
  size_t CounterCap = 0;
  /// Capture the data proof emission needs (the preprocessor's original
  /// parity rows, VerificationProblem::OriginalRows). The resolved form
  /// of SolveOptions::LogProofs.
  bool CaptureProofData = false;
};

/// The reusable middle of the verification pipeline: one (context, root)
/// problem preprocessed and encoded once, plus everything needed to read
/// models back (including reconstruction of preprocessor-eliminated
/// variables), translate split-variable names into assumption literals,
/// refute cubes by GF(2) propagation, and activate weight bounds by
/// assumption. Immutable after construction, so the engine's workers
/// share one instance per problem: each worker instantiates its own
/// Solver from the encoded clauses once and then discharges every cube it
/// picks up with assumptions, reusing learned clauses across cubes
/// instead of re-encoding the shared prefix.
///
/// The struct is fully self-contained (no live BoolContext reference):
/// names, reconstruction records and pruning rows are copied in at build
/// time, which is what lets the distributed layer serialize a problem,
/// ship it to a remote worker, and run the identical makeSolver()/
/// readModel()/cubeRefuted() machinery there.
struct VerificationProblem {
  CnfFormula Cnf;
  std::vector<std::pair<std::string, sat::Var>> NamedVars;
  /// The preprocessor's kept parity rows when built with NativeXor: CNF
  /// variables per row plus the right-hand side, loaded into every
  /// solver as native XOR constraints by loadInto(). Empty otherwise
  /// (the rows are then part of Cnf).
  std::vector<std::pair<std::vector<sat::Var>, bool>> XorRows;
  /// The preprocessor refuted the conjunction outright; the CNF is empty
  /// and no solver needs to run.
  bool TriviallyUnsat = false;
  /// With ProblemOptions::CaptureProofData: the parity rows as lifted
  /// from the conjunction before reduction, the base of the proof
  /// header's replay records. Empty otherwise.
  std::vector<ParityRow> OriginalRows;
  PreprocessStats Prep;

  VerificationProblem(const BoolContext &Ctx, ExprRef Root,
                      const ProblemOptions &Opts = {});

  /// A fresh solver loaded with the encoded clauses.
  sat::Solver makeSolver() const;

  /// Loads the encoded clauses into an existing empty solver — the same
  /// loading makeSolver() performs, shared so factory-made solvers (the
  /// testing harness's injectable subclasses) cannot diverge from it.
  void loadInto(sat::Solver &S) const;

  /// Reads the named-variable assignment out of a Sat solver; variables
  /// the preprocessor eliminated are reconstructed from their GF(2)
  /// defining rows, so models stay total.
  void readModel(const sat::Solver &S,
                 std::unordered_map<std::string, bool> &Model) const;

  /// CNF variable of a named BoolContext variable (fatal if unknown).
  sat::Var varOfName(const std::string &Name) const;

  /// Appends assumptions enforcing MinW <= sum(BudgetTerms) <= MaxW to
  /// \p Out (bounds at or beyond the trivial ones contribute nothing).
  /// Only valid when the problem was built with BudgetTerms. Use for
  /// searches that probe MANY bounds on one solver (learnt clauses
  /// survive across bounds); a solver serving a single bound should
  /// harden it with assertWeightBound instead.
  void appendWeightAssumptions(uint32_t MaxW, std::vector<sat::Lit> &Out,
                               uint32_t MinW = 0) const;

  /// Asserts MinW <= sum(BudgetTerms) <= MaxW as root-level unit clauses
  /// of \p S. Root-level units propagate once and permanently simplify
  /// the search — much stronger than re-deciding the bound as an
  /// assumption on every solve — while the bound-independent CnfFormula
  /// is still encoded only once and shared by solvers with different
  /// bounds.
  void assertWeightBound(sat::Solver &S, uint32_t MaxW,
                         uint32_t MinW = 0) const;

  /// True iff the cube (assumption literals over protected variables) is
  /// provably inconsistent with the preprocessor's reduced parity rows —
  /// the cube is UNSAT without any SAT call.
  bool cubeRefuted(std::span<const sat::Lit> Cube) const;

  /// Number of kept GF(2) parity rows the CNF variable \p V participates
  /// in (0 for variables the preprocessor does not track). The cube
  /// engine orders split variables by this — most-constrained first —
  /// so each enumerated assignment feeds the parity machinery maximal
  /// propagation.
  size_t parityParticipation(sat::Var V) const;

  /// Proof-header accessors (proof/ProofLog.h): the kept parity rows the
  /// cube pruner runs on, and the eliminated-variable records, both in
  /// BoolContext variable space.
  const std::vector<ParityRow> &keptRows() const { return Pruner.rows(); }
  const std::vector<VarReconstruction> &reconstructions() const {
    return Eliminated;
  }

private:
  /// The wire codec rebuilds instances field-by-field (dist/Codec.cpp).
  friend class veriqec::dist::ProblemCodec;
  VerificationProblem() = default;

  /// BoolContext variable id -> name, captured at build time so model
  /// reconstruction needs no live context.
  std::vector<std::string> VarNames;
  std::vector<VarReconstruction> Eliminated;
  ParityPropagator Pruner;
  /// Elimination-strength cube refutation (tracks ProblemOptions::
  /// NativeXor: the solver reasons by elimination, so the pruner should
  /// refute everything the solver would).
  bool PruneByElimination = false;
  std::vector<sat::Lit> BudgetCounter;
  size_t NumBudgetTerms = 0;
  std::unordered_map<int32_t, uint32_t> BoolVarOfSat;
};

/// The one SolveOptions -> ProblemOptions translation shared by the
/// sequential driver and the cube engine, so the two pipelines cannot
/// desynchronize: split variables become protected, budget variables
/// become counter terms, and — because both paths harden the bound at
/// the root via assertWeightBound — the counters are truncated just
/// past it.
ProblemOptions makeProblemOptions(const BoolContext &Ctx,
                                  const SolveOptions &Opts);

/// Solves \p Root (checking satisfiability) on one thread.
SolveOutcome solveExpr(const BoolContext &Ctx, ExprRef Root,
                       const SolveOptions &Opts = {});

/// Cube-and-conquer parallel solve of \p Root. Facade over the
/// engine::CubeEngine work-stealing scheduler (defined in
/// engine/CubeEngine.cpp): Opts.NumThreads selects the pool size, with 0
/// (or the shared pool's width) reusing the process-wide engine.
SolveOutcome solveExprParallel(const BoolContext &Ctx, ExprRef Root,
                               const SolveOptions &Opts);

} // namespace veriqec::smt

#endif // VERIQEC_SMT_CUBESOLVER_H
