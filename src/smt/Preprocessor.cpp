//===- smt/Preprocessor.cpp - GF(2)/XOR-aware preprocessing ----------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "smt/Preprocessor.h"

#include "gf2/BitMatrix.h"
#include "support/Assert.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace veriqec;
using namespace veriqec::smt;

namespace {

/// Interprets a conjunct as a parity equation over variables, if it is
/// one. After BoolContext folding a parity conjunct has one of four
/// shapes: Var (v = 1), Not(Var) (v = 0), Xor of Vars (parity = 1) or
/// Not(Xor of Vars) (parity = 0); Xor kids are never Not/Const/Xor (the
/// folder lifts those out).
bool asParityRow(const BoolContext &Ctx, ExprRef R, ParityRow &Out) {
  const BoolNode *N = &Ctx.node(R);
  Out.Rhs = true;
  if (N->Kind == BoolKind::Not) {
    Out.Rhs = false;
    N = &Ctx.node(N->Kids[0]);
  }
  if (N->Kind == BoolKind::Var) {
    Out.Vars = {N->VarId};
    return true;
  }
  if (N->Kind != BoolKind::Xor)
    return false;
  Out.Vars.clear();
  for (ExprRef K : N->Kids) {
    const BoolNode &Kid = Ctx.node(K);
    if (Kid.Kind != BoolKind::Var)
      return false;
    Out.Vars.push_back(Kid.VarId);
  }
  return true;
}

/// Collects every variable id reachable from \p Roots (shared subgraphs
/// visited once).
void collectVars(const BoolContext &Ctx, const std::vector<ExprRef> &Roots,
                 std::unordered_set<uint32_t> &Out) {
  std::unordered_set<ExprRef> Visited;
  std::vector<ExprRef> Stack(Roots.begin(), Roots.end());
  while (!Stack.empty()) {
    ExprRef R = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(R).second)
      continue;
    const BoolNode &N = Ctx.node(R);
    if (N.Kind == BoolKind::Var)
      Out.insert(N.VarId);
    for (ExprRef K : N.Kids)
      Stack.push_back(K);
  }
}

} // namespace

PreprocessedFormula veriqec::smt::preprocess(const BoolContext &Ctx,
                                             ExprRef Root,
                                             const PreprocessOptions &Opts) {
  PreprocessedFormula Out;

  const BoolNode &RootNode = Ctx.node(Root);
  if (RootNode.Kind == BoolKind::Const) {
    if (!RootNode.ConstVal) {
      Out.TriviallyUnsat = true;
      Out.Stats.TriviallyUnsat = true;
      if (Opts.CaptureOriginalRows)
        Out.OriginalRows.push_back({{}, true}); // the lift of "false"
    }
    return Out; // true: empty conjunction
  }
  if (!Opts.Enable) {
    Out.Residue = {Root};
    Out.Stats.ResidueConjuncts = 1;
    return Out;
  }

  std::vector<ExprRef> Conjuncts;
  if (RootNode.Kind == BoolKind::And)
    Conjuncts = RootNode.Kids;
  else
    Conjuncts = {Root};

  // -- Lift the parity subsystem --------------------------------------------
  std::vector<ParityRow> Linear;
  ParityRow Row;
  for (ExprRef C : Conjuncts) {
    if (asParityRow(Ctx, C, Row))
      Linear.push_back(std::move(Row));
    else
      Out.Residue.push_back(C);
  }
  Out.Stats.LinearConjuncts = Linear.size();
  Out.Stats.ResidueConjuncts = Out.Residue.size();
  if (Opts.CaptureOriginalRows)
    Out.OriginalRows = Linear;
  if (Linear.empty())
    return Out;

  // Dense column map over the subsystem's variables; the last column is
  // the right-hand side.
  std::vector<uint32_t> VarOfCol;
  std::unordered_map<uint32_t, size_t> ColOfVar;
  for (const ParityRow &L : Linear)
    for (uint32_t V : L.Vars)
      if (ColOfVar.emplace(V, VarOfCol.size()).second)
        VarOfCol.push_back(V);
  Out.Stats.LinearVars = VarOfCol.size();
  size_t RhsCol = VarOfCol.size();

  // Exact (un)satisfiability of the subsystem by dense Gaussian
  // elimination on a scratch copy. Only the verdict is taken from the
  // dense pass: reduced-echelon rows are globally entangled, and trading
  // the sparse local syndrome equations for dense rows is exactly the
  // structure the solver chokes on.
  {
    BitMatrix M(Linear.size(), RhsCol + 1);
    for (size_t R = 0; R != Linear.size(); ++R) {
      for (uint32_t V : Linear[R].Vars)
        // A variable repeated inside one equation cancels over GF(2); the
        // BoolContext folder already cancels pairs, so flipping is exact.
        M.row(R).flip(ColOfVar.at(V));
      if (Linear[R].Rhs)
        M.row(R).flip(RhsCol);
    }
    std::vector<size_t> Pivots = M.rowReduce();
    if (!Pivots.empty() && Pivots.back() == RhsCol) {
      // 0 = 1 after elimination: the conjunction is unsatisfiable before
      // any CNF is built.
      Out.TriviallyUnsat = true;
      Out.Stats.TriviallyUnsat = true;
      return Out;
    }
  }

  // -- Sparsity-preserving variable elimination ------------------------------
  // A variable that occurs in no residue conjunct, is not pinned, and
  // occurs in at most two rows of the subsystem is eliminated the sparse
  // way: one occurrence — its row *defines* it, so the row is dropped;
  // two occurrences — the rows are summed (the variable cancels), which
  // keeps rows local instead of the dense fill-in a full row reduction
  // causes. Syndrome variables (defined once, consumed once by the
  // decoder contract) fall to the two-occurrence rule, which is where
  // the bulk of the win comes from. Each elimination records how to
  // rebuild the variable; records are emitted in elimination order and
  // replayed in reverse, so dependencies on later-eliminated variables
  // resolve.
  std::unordered_set<uint32_t> Pinned(Opts.KeepVarIds.begin(),
                                      Opts.KeepVarIds.end());
  std::unordered_set<uint32_t> UsedOutside;
  collectVars(Ctx, Out.Residue, UsedOutside);
  collectVars(Ctx, Opts.KeepUsedExprs, UsedOutside);
  auto eligible = [&](uint32_t V) {
    return !Pinned.count(V) && !UsedOutside.count(V);
  };

  // Canonicalize rows: sorted variable lists (XOR-cancelling duplicates
  // is already done by the folder within one conjunct).
  std::vector<ParityRow> Rows = std::move(Linear);
  std::vector<bool> Alive(Rows.size(), true);
  for (ParityRow &R : Rows)
    std::sort(R.Vars.begin(), R.Vars.end());
  std::unordered_map<uint32_t, std::vector<uint32_t>> RowsOf;
  for (size_t R = 0; R != Rows.size(); ++R)
    for (uint32_t V : Rows[R].Vars)
      RowsOf[V].push_back(static_cast<uint32_t>(R));

  // Live occurrence positions of a variable (compacts the lazy list).
  auto liveRows = [&](uint32_t V) {
    std::vector<uint32_t> &Slots = RowsOf[V];
    std::vector<uint32_t> Live;
    for (uint32_t R : Slots) {
      const ParityRow &Row = Rows[R];
      if (Alive[R] &&
          std::binary_search(Row.Vars.begin(), Row.Vars.end(), V))
        Live.push_back(R);
    }
    std::sort(Live.begin(), Live.end());
    Live.erase(std::unique(Live.begin(), Live.end()), Live.end());
    Slots = Live;
    return Live;
  };

  std::vector<uint32_t> Work;
  for (const auto &[V, Slots] : RowsOf)
    if (eligible(V))
      Work.push_back(V);
  std::sort(Work.begin(), Work.end()); // deterministic order

  while (!Work.empty()) {
    uint32_t V = Work.back();
    Work.pop_back();
    std::vector<uint32_t> Occ = liveRows(V);
    if (Occ.empty() || Occ.size() > 2)
      continue;

    VarReconstruction Rec;
    Rec.VarId = V;
    const ParityRow &Def = Rows[Occ[0]];
    Rec.Constant = Def.Rhs;
    for (uint32_t U : Def.Vars)
      if (U != V)
        Rec.Deps.push_back(U);

    if (Occ.size() == 1) {
      Alive[Occ[0]] = false;
      for (uint32_t U : Rec.Deps)
        if (eligible(U))
          Work.push_back(U);
    } else {
      // Sum the two rows: V cancels, everything else stays local.
      const ParityRow &A = Rows[Occ[0]], &B = Rows[Occ[1]];
      ParityRow Sum;
      Sum.Rhs = A.Rhs != B.Rhs;
      std::set_symmetric_difference(A.Vars.begin(), A.Vars.end(),
                                    B.Vars.begin(), B.Vars.end(),
                                    std::back_inserter(Sum.Vars));
      // Fill-in guard: a single merge grows a row by at most
      // |A|+|B|-2, which is fine (syndrome-definition + decoder-parity
      // pairs merge into rows of ~2x the stabilizer weight), but
      // repeated merging must not snowball short local equations into
      // the long global rows a full row reduction produces — that
      // dense structure is exactly what the solver chokes on.
      if (Sum.Vars.size() >
          std::max({A.Vars.size(), B.Vars.size(), size_t(12)}))
        continue;
      Alive[Occ[0]] = Alive[Occ[1]] = false;
      if (!Sum.Vars.empty()) {
        // (An empty sum has Rhs 0 — the dense pass proved consistency.)
        uint32_t NewIdx = static_cast<uint32_t>(Rows.size());
        for (uint32_t U : Sum.Vars) {
          RowsOf[U].push_back(NewIdx);
          if (eligible(U))
            Work.push_back(U);
        }
        Rows.push_back(std::move(Sum));
        Alive.push_back(true);
      }
    }
    Out.Eliminated.push_back(std::move(Rec));
  }

  Out.Stats.VarsEliminated = Out.Eliminated.size();

  // -- Equivalence-literal substitution --------------------------------------
  // A surviving 2-variable row u ^ v = c says v = u ^ c: instead of
  // keeping the row (a binary XOR the solver re-derives over and over),
  // substitute v away entirely. The encoder will route every occurrence
  // of v — residue conjuncts included, which the elimination loop above
  // must not touch — through u's literal (negated when c = 1), and model
  // read-back rebuilds v through a reconstruction record. Substituting v
  // out of the remaining rows (XOR the equivalence in) can cascade new
  // 2-variable rows, so run to fixpoint. Pinned variables (cube split
  // variables, whose assumption literals must stay plain CNF variables)
  // are never substituted away.
  std::unordered_map<uint32_t, std::pair<uint32_t, bool>> AliasOf;
  std::vector<uint32_t> AliasOrder;
  std::vector<uint32_t> EquivWork;
  for (size_t R = 0; R != Rows.size(); ++R)
    if (Alive[R] && Rows[R].Vars.size() == 2)
      EquivWork.push_back(static_cast<uint32_t>(R));
  while (!EquivWork.empty()) {
    uint32_t R = EquivWork.back();
    EquivWork.pop_back();
    if (!Alive[R] || Rows[R].Vars.size() != 2)
      continue;
    uint32_t U = Rows[R].Vars[0], V = Rows[R].Vars[1];
    bool C = Rows[R].Rhs;
    uint32_t Victim, Target;
    if (!Pinned.count(V)) {
      Victim = V;
      Target = U;
    } else if (!Pinned.count(U)) {
      Victim = U;
      Target = V;
    } else {
      continue; // both ends pinned: the row must survive
    }
    Alive[R] = false;
    AliasOf.emplace(Victim, std::make_pair(Target, C));
    AliasOrder.push_back(Victim);
    // XOR the equivalence into every other live row containing the
    // victim: the victim cancels, the target (possibly) appears.
    for (uint32_t O : liveRows(Victim)) {
      if (O == R)
        continue;
      ParityRow &Other = Rows[O];
      ParityRow Sum;
      Sum.Rhs = Other.Rhs != C;
      std::set_symmetric_difference(Other.Vars.begin(), Other.Vars.end(),
                                    Rows[R].Vars.begin(), Rows[R].Vars.end(),
                                    std::back_inserter(Sum.Vars));
      Other = std::move(Sum);
      if (Other.Vars.empty()) {
        // Row operations preserve the solution space and the dense pass
        // proved the system consistent, so an empty row is 0 = 0.
        assert(!Other.Rhs && "inconsistent row surfaced after substitution");
        Alive[O] = false;
        continue;
      }
      for (uint32_t W : Other.Vars)
        RowsOf[W].push_back(O);
      if (Other.Vars.size() == 2)
        EquivWork.push_back(O);
    }
  }
  // Resolve alias chains (v -> u recorded before u -> w was found): every
  // published target must be a surviving variable.
  auto resolveAlias = [&](uint32_t V0, bool Neg0) {
    uint32_t V = V0;
    bool Neg = Neg0;
    for (auto It = AliasOf.find(V); It != AliasOf.end();
         It = AliasOf.find(V)) {
      Neg ^= It->second.second;
      V = It->second.first;
    }
    return std::make_pair(V, Neg);
  };
  for (uint32_t V : AliasOrder) {
    auto [Target, Neg] = resolveAlias(AliasOf.at(V).first,
                                      AliasOf.at(V).second);
    Out.Aliases.push_back({V, Target, Neg});
    VarReconstruction Rec;
    Rec.VarId = V;
    Rec.Deps = {Target};
    Rec.Constant = Neg;
    // Appended after the elimination records: reverse replay rebuilds
    // aliases first, so earlier elimination records may depend on them.
    Out.Eliminated.push_back(std::move(Rec));
  }
  Out.Stats.EquivAliased = AliasOrder.size();

  for (size_t R = 0; R != Rows.size(); ++R) {
    if (!Alive[R])
      continue;
    Out.Stats.UnitsFixed += Rows[R].Vars.size() == 1;
    Out.Rows.push_back(std::move(Rows[R]));
  }
  Out.Stats.RowsKept = Out.Rows.size();
  return Out;
}

// -- ParityPropagator --------------------------------------------------------

ParityPropagator::ParityPropagator(std::vector<ParityRow> RowsIn)
    : Rows(std::move(RowsIn)) {
  for (const ParityRow &R : Rows)
    for (uint32_t V : R.Vars)
      MaxVarId = std::max(MaxVarId, V);
  RowsOfVar.resize(static_cast<size_t>(MaxVarId) + 1);
  for (size_t R = 0; R != Rows.size(); ++R)
    for (uint32_t V : Rows[R].Vars)
      RowsOfVar[V].push_back(static_cast<uint32_t>(R));
}

bool ParityPropagator::refutes(
    std::span<const std::pair<uint32_t, bool>> Fixed) const {
  return refutesImpl(Fixed, /*Eliminate=*/false);
}

bool ParityPropagator::refutesByElimination(
    std::span<const std::pair<uint32_t, bool>> Fixed) const {
  return refutesImpl(Fixed, /*Eliminate=*/true);
}

bool ParityPropagator::refutesImpl(
    std::span<const std::pair<uint32_t, bool>> Fixed, bool Eliminate) const {
  if (Rows.empty() || Fixed.empty())
    return false;

  // Generation-stamped thread-local scratch: this runs once per cube,
  // and a fresh O(#vars) assignment vector per call would dwarf the
  // check itself. A slot is known for the current call iff its stamp
  // matches the generation; concurrent checks on the shared problem
  // need no locking because every thread owns its scratch.
  static thread_local std::vector<uint32_t> Stamp;
  static thread_local std::vector<uint8_t> Value;
  static thread_local std::vector<uint32_t> Dirty;
  static thread_local uint32_t Generation = 0;
  size_t Need = static_cast<size_t>(MaxVarId) + 1;
  if (Stamp.size() < Need) {
    Stamp.resize(Need, 0);
    Value.resize(Need, 0);
  }
  if (++Generation == 0) {
    std::fill(Stamp.begin(), Stamp.end(), 0);
    Generation = 1;
  }
  Dirty.clear();

  auto assign = [&](uint32_t V, bool B) {
    if (V >= Need)
      return true; // variable foreign to the rows: irrelevant
    if (Stamp[V] == Generation)
      return Value[V] == static_cast<uint8_t>(B);
    Stamp[V] = Generation;
    Value[V] = B;
    Dirty.push_back(V);
    return true;
  };
  for (const auto &[V, B] : Fixed)
    if (!assign(V, B))
      return true; // caller contradicts itself

  // Worklist unit propagation: a row with one unknown forces it; a row
  // with none must check out.
  for (size_t Head = 0; Head != Dirty.size(); ++Head) {
    for (uint32_t RI : RowsOfVar[Dirty[Head]]) {
      const ParityRow &R = Rows[RI];
      uint32_t Unknown = ~uint32_t{0};
      bool Parity = R.Rhs;
      bool Skip = false;
      for (uint32_t V : R.Vars) {
        if (Stamp[V] != Generation) {
          if (Unknown != ~uint32_t{0}) {
            Skip = true; // >= 2 unknowns: nothing to learn yet
            break;
          }
          Unknown = V;
        } else {
          Parity ^= Value[V] != 0;
        }
      }
      if (Skip)
        continue;
      if (Unknown == ~uint32_t{0}) {
        if (Parity)
          return true; // fully assigned row with odd residual parity
        continue;
      }
      if (!assign(Unknown, Parity))
        return true;
    }
  }
  if (!Eliminate)
    return false;

  // Unit propagation converged without a contradiction: finish the job
  // with a Gaussian elimination of the rows that still have >= 2
  // unknowns. Assigned variables fold into the right-hand side, so the
  // matrix ranges over the unknown columns only; a zero row with an odd
  // right-hand side is a linear combination the propagation chain could
  // not see (two rows sharing the same unknowns, say).
  std::vector<uint32_t> UnknownVars;
  std::vector<uint32_t> Active;
  for (size_t RI = 0; RI != Rows.size(); ++RI) {
    const ParityRow &R = Rows[RI];
    size_t NumUnknown = 0;
    for (uint32_t V : R.Vars)
      if (Stamp[V] != Generation)
        ++NumUnknown;
    if (NumUnknown < 2)
      continue; // resolved (and checked) by the propagation pass
    Active.push_back(static_cast<uint32_t>(RI));
    for (uint32_t V : R.Vars)
      if (Stamp[V] != Generation)
        UnknownVars.push_back(V);
  }
  if (Active.size() < 2)
    return false;
  std::sort(UnknownVars.begin(), UnknownVars.end());
  UnknownVars.erase(std::unique(UnknownVars.begin(), UnknownVars.end()),
                    UnknownVars.end());
  size_t NC = UnknownVars.size();
  auto colOf = [&](uint32_t V) {
    return static_cast<size_t>(
        std::lower_bound(UnknownVars.begin(), UnknownVars.end(), V) -
        UnknownVars.begin());
  };

  std::vector<BitVector> M;
  M.reserve(Active.size());
  for (uint32_t RI : Active) {
    const ParityRow &R = Rows[RI];
    BitVector Row(NC + 1);
    bool Rhs = R.Rhs;
    for (uint32_t V : R.Vars) {
      if (Stamp[V] != Generation)
        Row.flip(colOf(V));
      else
        Rhs ^= Value[V] != 0;
    }
    if (Rhs)
      Row.flip(NC);
    M.push_back(std::move(Row));
  }

  BitMatrix System = BitMatrix::fromRows(std::move(M));
  std::vector<size_t> Pivots = System.rowReduce();
  // A pivot in the right-hand-side column is 0 == 1: the cube
  // contradicts the rows.
  return !Pivots.empty() && Pivots.back() == NC;
}
