//===- smt/Preprocessor.h - GF(2)/XOR-aware preprocessing -------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algebraic preprocessing of verification conditions before CNF encoding.
/// The negations of QEC verification conditions are dominated by GF(2)
/// syndrome equations — exactly the structure a CDCL solver handles worst
/// once Tseitin-flattened. The preprocessor lifts the parity subsystem of
/// a BoolExpr conjunction into a gf2::BitMatrix, Gaussian-eliminates it,
/// detects trivial unsatisfiability, drops variables that occur only in
/// the linear subsystem (recording how to reconstruct their values from a
/// model of the residue), and hands the encoder the irreducible residue
/// plus the reduced row basis. The kept rows double as a fast GF(2)
/// unit-propagation oracle that refutes cube assumption sets before a SAT
/// solver ever runs.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SMT_PREPROCESSOR_H
#define VERIQEC_SMT_PREPROCESSOR_H

#include "smt/BoolExpr.h"

#include <cstdint>
#include <span>
#include <vector>

namespace veriqec::smt {

/// One linear GF(2) equation over BoolContext variables:
/// XOR over Vars == Rhs. Vars are sorted and duplicate-free.
struct ParityRow {
  std::vector<uint32_t> Vars;
  bool Rhs = false;
};

/// How to rebuild an eliminated variable from a model of the residue:
/// value(VarId) = XOR over value(Deps) + Constant. Records are emitted in
/// elimination order; a record's Deps may contain variables eliminated
/// LATER, so reconstruction replays the records in reverse.
struct VarReconstruction {
  uint32_t VarId = 0;
  std::vector<uint32_t> Deps;
  bool Constant = false;
};

/// Telemetry of one preprocessing run (surfaced by --bench-out).
struct PreprocessStats {
  /// Conjuncts of the top-level AND recognized as parity equations.
  size_t LinearConjuncts = 0;
  /// Distinct variables of the parity subsystem.
  size_t LinearVars = 0;
  /// Rows of the reduced basis that stay in the encoding.
  size_t RowsKept = 0;
  /// Single-variable rows (turn into unit clauses).
  size_t UnitsFixed = 0;
  /// Variables dropped from the encoding entirely.
  size_t VarsEliminated = 0;
  /// Variables substituted away through a 2-literal equivalence row
  /// (x = y / x != y). Counted separately from VarsEliminated: the
  /// variable keeps a literal in the CNF (its partner's), it just never
  /// materializes a CNF variable or a parity row of its own.
  size_t EquivAliased = 0;
  /// Conjuncts the linear lift could not absorb.
  size_t ResidueConjuncts = 0;
  bool TriviallyUnsat = false;
};

/// A 2-literal equivalence distilled from a kept parity row u ^ v = c:
/// VarId (= v) is eliminated from the encoding entirely; every occurrence
/// of it — rows, residue, budget terms — encodes as the literal of
/// ToVarId, negated when \p Negated. Model read-back reconstructs the
/// value through the matching VarReconstruction record.
struct VarAlias {
  uint32_t VarId = 0;
  uint32_t ToVarId = 0;
  bool Negated = false;
};

struct PreprocessOptions {
  /// Master switch; disabled, preprocess() returns the whole input as
  /// residue (the legacy pipeline).
  bool Enable = true;
  /// Variables that must survive as encoder variables regardless of
  /// occurrence (cube split variables, weight-layer inputs).
  std::vector<uint32_t> KeepVarIds;
  /// Expressions encoded outside the preprocessed conjunction (e.g. the
  /// weight layer's counter inputs); every variable they reach is pinned.
  std::vector<ExprRef> KeepUsedExprs;
  /// Keep a copy of the lifted parity rows as they entered reduction
  /// (PreprocessedFormula::OriginalRows). Proof emission replays kept
  /// rows and elimination records against them; off by default because
  /// the copy is pure overhead otherwise.
  bool CaptureOriginalRows = false;
};

/// Result of preprocessing one conjunction: the formula is equivalent to
/// AND(Residue) ∧ AND(Rows) ∧ (the dropped defining rows of Eliminated),
/// and every model of Residue ∧ Rows extends uniquely to the eliminated
/// variables via the reconstruction records.
struct PreprocessedFormula {
  bool TriviallyUnsat = false;
  std::vector<ExprRef> Residue;
  std::vector<ParityRow> Rows;
  std::vector<VarReconstruction> Eliminated;
  /// Equivalence substitutions (2-literal rows) the encoder must apply
  /// while encoding Residue/Rows; every alias also has a reconstruction
  /// record in Eliminated. Targets are fully resolved: an alias never
  /// points at another aliased variable.
  std::vector<VarAlias> Aliases;
  /// With PreprocessOptions::CaptureOriginalRows: the parity rows as
  /// lifted from the conjunction, before any reduction — the base the
  /// proof checker verifies Rows and Eliminated against. A trivially
  /// unsatisfiable constant-false root captures the single row 0 == 1
  /// (the lift of "false"). Empty otherwise.
  std::vector<ParityRow> OriginalRows;
  PreprocessStats Stats;
};

/// Lifts and reduces the parity subsystem of \p Root (interpreted as a
/// top-level conjunction in \p Ctx).
PreprocessedFormula preprocess(const BoolContext &Ctx, ExprRef Root,
                               const PreprocessOptions &Opts = {});

/// GF(2) refutation oracle over a fixed row set: given a partial
/// assignment (cube), repeatedly substitutes known values and propagates
/// rows with a single unknown until fixpoint; a fully-assigned row with
/// the wrong parity refutes the cube. Sound (only provably inconsistent
/// cubes are refuted); unit propagation alone is incomplete, and
/// refutesByElimination() closes the gap with a full Gaussian elimination
/// of the residual system — the same cross-row strength the solver's
/// sat::GaussEngine applies during search.
class ParityPropagator {
public:
  ParityPropagator() = default;
  explicit ParityPropagator(std::vector<ParityRow> Rows);

  size_t numRows() const { return Rows.size(); }

  /// The fixed row set (read-only; the distributed codec serializes it so
  /// remote workers can rebuild an identical propagator).
  const std::vector<ParityRow> &rows() const { return Rows; }

  /// True iff the assignment {VarId -> Value} provably contradicts the
  /// rows, by unit propagation alone. Thread-safe (scratch is
  /// thread-local).
  bool refutes(std::span<const std::pair<uint32_t, bool>> Fixed) const;

  /// Complete GF(2) refutation: unit propagation first (the cheap filter),
  /// then Gaussian elimination of the rows that still have >= 2 unknowns.
  /// Refutes every cube whose assignment is linearly inconsistent with
  /// the rows, not just those a single-row propagation chain exposes.
  bool refutesByElimination(
      std::span<const std::pair<uint32_t, bool>> Fixed) const;

private:
  std::vector<ParityRow> Rows;
  /// Rows indexed by variable (positions into Rows), for the worklist.
  std::vector<std::vector<uint32_t>> RowsOfVar;
  uint32_t MaxVarId = 0;

  bool refutesImpl(std::span<const std::pair<uint32_t, bool>> Fixed,
                   bool Eliminate) const;
};

} // namespace veriqec::smt

#endif // VERIQEC_SMT_PREPROCESSOR_H
