//===- support/Assert.h - Fatal errors and assertion helpers ---*- C++ -*-===//
//
// Part of the veriqec project: a C++ reproduction of "Efficient Formal
// Verification of Quantum Error Correcting Programs" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program-invariant checking utilities. Library code never throws; broken
/// invariants abort with a message, mirroring llvm_unreachable/report_fatal.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SUPPORT_ASSERT_H
#define VERIQEC_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace veriqec {

/// Aborts the process with \p Msg. Use for conditions that indicate a bug in
/// this library (not user input); user-input errors are reported through
/// result types instead.
[[noreturn]] inline void fatalError(const std::string &Msg) {
  std::fprintf(stderr, "veriqec fatal error: %s\n", Msg.c_str());
  std::abort();
}

/// Marks a point in the control flow that must be unreachable if the
/// program's invariants hold.
[[noreturn]] inline void unreachable(const char *Msg) {
  std::fprintf(stderr, "veriqec unreachable: %s\n", Msg);
  std::abort();
}

} // namespace veriqec

#endif // VERIQEC_SUPPORT_ASSERT_H
