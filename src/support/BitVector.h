//===- support/BitVector.h - Dense dynamic bit vector ----------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, word-packed bit vector used throughout the Pauli/GF(2)
/// subsystems. Supports the bulk operations stabilizer algebra needs:
/// XOR/AND accumulation, popcount, and parity of pairwise AND (the
/// symplectic building block).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SUPPORT_BITVECTOR_H
#define VERIQEC_SUPPORT_BITVECTOR_H

#include "support/Assert.h"

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace veriqec {

/// Dense bit vector of fixed (but resizable) length.
class BitVector {
public:
  BitVector() = default;

  /// Creates a vector of \p NumBits bits, all zero (or all one if \p Value).
  explicit BitVector(size_t NumBits, bool Value = false)
      : NumBits(NumBits), Words(numWords(NumBits), Value ? ~uint64_t{0} : 0) {
    clearUnusedBits();
  }

  size_t size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  bool get(size_t Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }
  bool operator[](size_t Idx) const { return get(Idx); }

  void set(size_t Idx, bool Value = true) {
    assert(Idx < NumBits && "bit index out of range");
    uint64_t Mask = uint64_t{1} << (Idx % 64);
    if (Value)
      Words[Idx / 64] |= Mask;
    else
      Words[Idx / 64] &= ~Mask;
  }

  void flip(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] ^= uint64_t{1} << (Idx % 64);
  }

  /// Sets every bit to zero without changing the size.
  void reset() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Grows or shrinks to \p NewSize bits; new bits are zero.
  void resize(size_t NewSize) {
    Words.resize(numWords(NewSize), 0);
    NumBits = NewSize;
    clearUnusedBits();
  }

  /// Number of set bits.
  size_t count() const {
    size_t Total = 0;
    for (uint64_t W : Words)
      Total += static_cast<size_t>(std::popcount(W));
    return Total;
  }

  /// True if any bit is set.
  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }
  bool none() const { return !any(); }

  /// Index of the first set bit, or size() if none.
  size_t findFirst() const {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I])
        return I * 64 + static_cast<size_t>(std::countr_zero(Words[I]));
    return NumBits;
  }

  /// Index of the first set bit at or after \p From, or size() if none.
  size_t findNext(size_t From) const {
    if (From >= NumBits)
      return NumBits;
    size_t WordIdx = From / 64;
    uint64_t W = Words[WordIdx] & (~uint64_t{0} << (From % 64));
    while (true) {
      if (W)
        return WordIdx * 64 + static_cast<size_t>(std::countr_zero(W));
      if (++WordIdx == Words.size())
        return NumBits;
      W = Words[WordIdx];
    }
  }

  /// In-place bitwise XOR with \p Other (same size required).
  BitVector &operator^=(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] ^= Other.Words[I];
    return *this;
  }

  /// In-place bitwise AND with \p Other (same size required).
  BitVector &operator&=(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= Other.Words[I];
    return *this;
  }

  /// In-place bitwise OR with \p Other (same size required).
  BitVector &operator|=(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= Other.Words[I];
    return *this;
  }

  friend BitVector operator^(BitVector A, const BitVector &B) { return A ^= B; }
  friend BitVector operator&(BitVector A, const BitVector &B) { return A &= B; }
  friend BitVector operator|(BitVector A, const BitVector &B) { return A |= B; }

  /// Parity (mod 2) of the number of positions where both vectors are set.
  /// This is the GF(2) inner product, the symplectic-form building block.
  bool dotParity(const BitVector &Other) const {
    assert(NumBits == Other.NumBits && "size mismatch");
    uint64_t Acc = 0;
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Acc ^= Words[I] & Other.Words[I];
    return std::popcount(Acc) & 1;
  }

  /// Number of positions where both vectors are set.
  size_t andCount(const BitVector &Other) const {
    assert(NumBits == Other.NumBits && "size mismatch");
    size_t Total = 0;
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Total += static_cast<size_t>(std::popcount(Words[I] & Other.Words[I]));
    return Total;
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }
  bool operator!=(const BitVector &Other) const { return !(*this == Other); }

  /// Lexicographic comparison for deterministic ordering in containers.
  bool operator<(const BitVector &Other) const {
    if (NumBits != Other.NumBits)
      return NumBits < Other.NumBits;
    return Words < Other.Words;
  }

  /// Renders the vector as a 0/1 string, index 0 first.
  std::string toString() const {
    std::string S;
    S.reserve(NumBits);
    for (size_t I = 0; I != NumBits; ++I)
      S.push_back(get(I) ? '1' : '0');
    return S;
  }

  /// FNV-style hash usable as a map key.
  size_t hash() const {
    uint64_t H = 1469598103934665603ull;
    for (uint64_t W : Words) {
      H ^= W;
      H *= 1099511628211ull;
    }
    return static_cast<size_t>(H ^ NumBits);
  }

private:
  static size_t numWords(size_t Bits) { return (Bits + 63) / 64; }

  void clearUnusedBits() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (~uint64_t{0} >> (64 - NumBits % 64));
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace veriqec

/// std::hash support so BitVector can key unordered containers.
template <> struct std::hash<veriqec::BitVector> {
  size_t operator()(const veriqec::BitVector &V) const { return V.hash(); }
};

#endif // VERIQEC_SUPPORT_BITVECTOR_H
