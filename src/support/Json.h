//===- support/Json.h - Minimal JSON output helpers -------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The string escaping and number formatting shared by every tool that
/// emits --json output (and by the obs trace/metrics writers).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SUPPORT_JSON_H
#define VERIQEC_SUPPORT_JSON_H

#include <cmath>
#include <cstdio>
#include <string>

namespace veriqec {

/// Escapes a string for embedding in a JSON string literal.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (C == '\n') {
      Out += "\\n";
    } else if (U < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", U);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  return Out;
}

/// Formats a double as a JSON number. JSON has no NaN/Infinity tokens,
/// so non-finite values render as "null" — a reader sees an explicit
/// hole instead of a parse error. Finite values use %.12g: enough
/// digits for every quantity the tools emit (timings, ratios, means),
/// and never scientific-notation forms JSON rejects ("1e+05" is valid
/// JSON; "nan"/"inf" are not and are caught by the finite check).
inline std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.12g", V);
  return Buf;
}

} // namespace veriqec

#endif // VERIQEC_SUPPORT_JSON_H
