//===- support/Json.h - Minimal JSON output helpers -------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The string escaping shared by every tool that emits --json output.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SUPPORT_JSON_H
#define VERIQEC_SUPPORT_JSON_H

#include <cstdio>
#include <string>

namespace veriqec {

/// Escapes a string for embedding in a JSON string literal.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (C == '\n') {
      Out += "\\n";
    } else if (U < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", U);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  return Out;
}

} // namespace veriqec

#endif // VERIQEC_SUPPORT_JSON_H
