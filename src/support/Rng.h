//===- support/Rng.h - Deterministic pseudo random numbers -----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small xoshiro256** generator. Deterministic across platforms so tests
/// and benchmarks are reproducible (std::mt19937 distributions are not
/// guaranteed to be portable).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SUPPORT_RNG_H
#define VERIQEC_SUPPORT_RNG_H

#include <cstdint>

namespace veriqec {

/// xoshiro256** pseudo random generator with convenience helpers.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, the reference initialization for xoshiro.
    uint64_t X = Seed;
    for (uint64_t &SI : S) {
      X += 0x9e3779b97f4a7c15ull;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      SI = Z ^ (Z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Fair coin.
  bool nextBool() { return next() & 1; }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t S[4];
};

} // namespace veriqec

#endif // VERIQEC_SUPPORT_RNG_H
