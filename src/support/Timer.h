//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock stopwatch used by the verification drivers and the
/// experiment harnesses. Pinned to std::chrono::steady_clock: every
/// timed section in the stack (bench, engine, dist, obs) must be
/// monotonic — a wall-clock (system_clock) source can jump backwards
/// under NTP adjustment and report negative elapsed time. The clock is
/// a template parameter only so the clamp below is testable against a
/// simulated skewing clock; production code uses the `Timer` alias.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SUPPORT_TIMER_H
#define VERIQEC_SUPPORT_TIMER_H

#include <chrono>

namespace veriqec {

/// Wall-clock stopwatch started at construction.
template <typename ClockT> class BasicTimer {
public:
  BasicTimer() : Start(ClockT::now()) {}

  /// Seconds elapsed since construction or the last restart(), clamped
  /// to >= 0. steady_clock makes negative readings impossible; the
  /// clamp is defense in depth for non-monotonic ClockT substitutes.
  double seconds() const {
    double S = std::chrono::duration<double>(ClockT::now() - Start).count();
    return S < 0 ? 0 : S;
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

  void restart() { Start = ClockT::now(); }

private:
  typename ClockT::time_point Start;
};

using Timer = BasicTimer<std::chrono::steady_clock>;

} // namespace veriqec

#endif // VERIQEC_SUPPORT_TIMER_H
