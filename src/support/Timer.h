//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock stopwatch used by the verification drivers and the
/// experiment harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SUPPORT_TIMER_H
#define VERIQEC_SUPPORT_TIMER_H

#include <chrono>

namespace veriqec {

/// Wall-clock stopwatch started at construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace veriqec

#endif // VERIQEC_SUPPORT_TIMER_H
