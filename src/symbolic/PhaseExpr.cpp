//===- symbolic/PhaseExpr.cpp - GF(2)-affine phase expressions -------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "symbolic/PhaseExpr.h"

#include <algorithm>

using namespace veriqec;

void PhaseExpr::xorWith(const PhaseExpr &Other) {
  Constant ^= Other.Constant;
  // Symmetric difference of sorted variable lists.
  std::vector<uint32_t> Merged;
  Merged.reserve(Vars.size() + Other.Vars.size());
  std::set_symmetric_difference(Vars.begin(), Vars.end(), Other.Vars.begin(),
                                Other.Vars.end(), std::back_inserter(Merged));
  Vars = std::move(Merged);
}

bool PhaseExpr::evaluate(const std::function<bool(uint32_t)> &Value) const {
  bool Acc = Constant;
  for (uint32_t V : Vars)
    Acc ^= Value(V);
  return Acc;
}

smt::ExprRef PhaseExpr::toBoolExpr(smt::BoolContext &Ctx,
                                   const VarTable &Table) const {
  std::vector<smt::ExprRef> Terms;
  Terms.push_back(Ctx.mkConst(Constant));
  for (uint32_t V : Vars)
    Terms.push_back(Ctx.mkVar(Table.name(V)));
  return Ctx.mkXor(std::move(Terms));
}

void PhaseExpr::substitute(uint32_t Id, const PhaseExpr &Replacement) {
  auto It = std::lower_bound(Vars.begin(), Vars.end(), Id);
  if (It == Vars.end() || *It != Id)
    return;
  Vars.erase(It);
  xorWith(Replacement);
}

std::string PhaseExpr::toString(const VarTable &Table) const {
  if (isConstant())
    return Constant ? "1" : "0";
  std::string S = Constant ? "1" : "";
  for (uint32_t V : Vars) {
    if (!S.empty())
      S += "+";
    S += Table.name(V);
  }
  return S;
}
