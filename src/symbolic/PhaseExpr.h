//===- symbolic/PhaseExpr.h - GF(2)-affine phase expressions ----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic phases of stabilizer generators: GF(2)-affine expressions
/// (constant + XOR of named program bits e_i, x_i, z_i, s_i, b, ...).
/// Every phase the paper's Eqn. (8) manipulates — r_i(s) + h_i(e) — lives
/// in this form; a VarTable interns the names.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_SYMBOLIC_PHASEEXPR_H
#define VERIQEC_SYMBOLIC_PHASEEXPR_H

#include "smt/BoolExpr.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace veriqec {

/// Interning table for symbolic bit variables.
class VarTable {
public:
  /// Id of \p Name, creating it on first use.
  uint32_t id(const std::string &Name) {
    auto It = Ids.find(Name);
    if (It != Ids.end())
      return It->second;
    uint32_t NewId = static_cast<uint32_t>(Names.size());
    Names.push_back(Name);
    Ids.emplace(Name, NewId);
    return NewId;
  }

  const std::string &name(uint32_t Id) const { return Names[Id]; }
  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, uint32_t> Ids;
};

/// A GF(2)-affine expression: Constant XOR (sum of the variables in Vars).
class PhaseExpr {
public:
  PhaseExpr() = default;
  explicit PhaseExpr(bool Constant) : Constant(Constant) {}

  /// The expression consisting of the single variable \p Id.
  static PhaseExpr variable(uint32_t Id) {
    PhaseExpr E;
    E.Vars.push_back(Id);
    return E;
  }

  bool isConstant() const { return Vars.empty(); }
  bool constantValue() const { return Constant; }
  const std::vector<uint32_t> &variables() const { return Vars; }

  /// Flips the constant part (multiplication by -1).
  void flip() { Constant = !Constant; }

  /// XOR-accumulates \p Other into this expression.
  void xorWith(const PhaseExpr &Other);

  /// XOR with a single variable.
  void xorVar(uint32_t Id) { xorWith(variable(Id)); }

  friend PhaseExpr operator^(PhaseExpr A, const PhaseExpr &B) {
    A.xorWith(B);
    return A;
  }

  bool operator==(const PhaseExpr &Other) const {
    return Constant == Other.Constant && Vars == Other.Vars;
  }

  /// Evaluates under an assignment function id -> bool.
  bool evaluate(const std::function<bool(uint32_t)> &Value) const;

  /// Lowers to a BoolContext expression (an XOR chain over mkVar names).
  smt::ExprRef toBoolExpr(smt::BoolContext &Ctx, const VarTable &Table) const;

  /// Substitutes \p Replacement for variable \p Id.
  void substitute(uint32_t Id, const PhaseExpr &Replacement);

  std::string toString(const VarTable &Table) const;

private:
  bool Constant = false;
  std::vector<uint32_t> Vars; ///< sorted, unique
};

} // namespace veriqec

#endif // VERIQEC_SYMBOLIC_PHASEEXPR_H
