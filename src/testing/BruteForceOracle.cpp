//===- testing/BruteForceOracle.cpp - Exhaustive scenario oracle -----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "testing/BruteForceOracle.h"

#include <algorithm>
#include <set>

using namespace veriqec;
using namespace veriqec::testing;

namespace {

/// One weight constraint, reinterpreted as an enumeration group over its
/// decoder output variables.
struct Group {
  std::vector<std::string> Plain; ///< CSS-style sum(Lhs) <= bound
  std::vector<std::pair<std::string, std::string>> Pairs; ///< |x or z| form
  bool UseConstant = false;
  uint32_t Constant = 0;
  std::vector<std::string> Rhs;

  uint32_t boundUnder(const CMem &Mem) const {
    if (UseConstant)
      return Constant;
    uint32_t B = 0;
    for (const std::string &V : Rhs) {
      auto It = Mem.find(V);
      B += It != Mem.end() && (It->second & 1);
    }
    return B;
  }

  size_t numVars() const { return Plain.size() + Pairs.size(); }
};

/// Collects the decoder output variables of the program, in order.
void collectDecoderVars(const StmtPtr &St, std::vector<std::string> &Out) {
  if (St->Kind == StmtKind::DecoderCall) {
    Out.insert(Out.end(), St->Targets.begin(), St->Targets.end());
    return;
  }
  for (const StmtPtr &Child : St->Body)
    collectDecoderVars(Child, Out);
}

/// Builds the enumeration groups; empty result + false = unsupported.
bool buildGroups(const Scenario &S, std::vector<Group> &Groups,
                 std::string &Why) {
  std::vector<std::string> DecoderVars;
  collectDecoderVars(S.Program, DecoderVars);
  std::set<std::string> Uncovered(DecoderVars.begin(), DecoderVars.end());

  for (const WeightConstraint &W : S.Weights) {
    Group G;
    G.Plain = W.Lhs;
    G.Pairs = W.LhsPairs;
    G.UseConstant = W.UseConstant;
    G.Constant = W.RhsConstant;
    G.Rhs = W.Rhs;
    auto Claim = [&](const std::string &V) {
      if (!Uncovered.erase(V)) {
        Why = "variable '" + V +
              "' is not a (still uncovered) decoder output";
        return false;
      }
      return true;
    };
    for (const std::string &V : G.Plain)
      if (!Claim(V))
        return false;
    for (const auto &[A, B] : G.Pairs)
      if (!Claim(A) || !Claim(B))
        return false;
    Groups.push_back(std::move(G));
  }
  if (!Uncovered.empty()) {
    Why = "decoder output '" + *Uncovered.begin() +
          "' is not bounded by any weight constraint";
    return false;
  }
  return true;
}

uint64_t satMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > UINT64_MAX / B)
    return UINT64_MAX;
  return A * B;
}

/// Sum over w = 0..bound of C(n, w) * perChoice^w, saturating.
uint64_t boundedSubsetCount(size_t N, size_t Bound, uint64_t PerChoice) {
  uint64_t Total = 0, Choose = 1, Pow = 1;
  for (size_t W = 0; W <= Bound && W <= N; ++W) {
    uint64_t Term = satMul(Choose, Pow);
    Total = Total > UINT64_MAX - Term ? UINT64_MAX : Total + Term;
    Choose = satMul(Choose, N - W) / (W + 1);
    Pow = satMul(Pow, PerChoice);
  }
  return Total;
}

/// Recursive enumeration driver.
struct Enumerator {
  const Scenario &S;
  const OracleOptions &O;
  std::vector<Group> Groups;
  OracleResult Result;
  CMem Mem;
  bool Done = false; ///< counterexample found or budget exhausted

  /// Innermost step: replay the complete assignment.
  void check() {
    if (Done)
      return;
    if (++Result.Executions > O.WorkBudget) {
      Result.Status = OracleStatus::Skipped;
      Result.Detail = "work budget exhausted";
      Done = true;
      return;
    }
    ReplayResult R = executeScenario(S, Mem);
    if (!R.Ok) {
      Result.Status = OracleStatus::Unsupported;
      Result.Detail = "replay failed: " + R.Error;
      Done = true;
      return;
    }
    if (!scenarioContractHolds(S, R.Mem))
      return; // vacuous: the syndrome-match parity filtered this decoder
    if (!R.PostconditionHolds) {
      Result.Status = OracleStatus::CounterExample;
      Result.CounterExample = R.Mem;
      Done = true;
    }
  }

  /// Enumerates subsets of size <= Bound of Group Idx's plain variables,
  /// then (for pair groups) the per-qubit letter choices.
  void enumeratePlain(const Group &G, size_t From, uint32_t Left,
                      size_t GroupIdx) {
    enumerateGroups(GroupIdx + 1);
    if (Left == 0 || Done)
      return;
    for (size_t I = From; I != G.Plain.size() && !Done; ++I) {
      Mem[G.Plain[I]] = 1;
      enumeratePlain(G, I + 1, Left - 1, GroupIdx);
      Mem[G.Plain[I]] = 0;
    }
  }

  void enumeratePairs(const Group &G, size_t From, uint32_t Left,
                      size_t GroupIdx) {
    enumerateGroups(GroupIdx + 1);
    if (Left == 0 || Done)
      return;
    for (size_t I = From; I != G.Pairs.size() && !Done; ++I) {
      const auto &[A, B] = G.Pairs[I];
      for (int Letter = 0; Letter != 3 && !Done; ++Letter) {
        Mem[A] = Letter != 1;
        Mem[B] = Letter != 0;
        enumeratePairs(G, I + 1, Left - 1, GroupIdx);
      }
      Mem[A] = 0;
      Mem[B] = 0;
    }
  }

  void enumerateGroups(size_t GroupIdx) {
    if (Done)
      return;
    if (GroupIdx == Groups.size()) {
      check();
      return;
    }
    const Group &G = Groups[GroupIdx];
    uint32_t Bound = G.boundUnder(Mem);
    if (!G.Pairs.empty())
      enumeratePairs(G, 0, Bound, GroupIdx);
    else
      enumeratePlain(G, 0, Bound, GroupIdx);
  }

  void enumerateErrors(size_t From, uint32_t Left) {
    if (Done)
      return;
    if (!O.Extra || O.Extra(Mem))
      enumerateGroups(0);
    if (Left == 0)
      return;
    for (size_t I = From; I != S.ErrorVars.size() && !Done; ++I) {
      Mem[S.ErrorVars[I]] = 1;
      enumerateErrors(I + 1, Left - 1);
      Mem[S.ErrorVars[I]] = 0;
    }
  }
};

} // namespace

uint64_t veriqec::testing::bruteForceWorkEstimate(const Scenario &S) {
  if (S.MaxErrors == ~uint32_t{0})
    return UINT64_MAX;
  std::vector<Group> Groups;
  std::string Why;
  if (!buildGroups(S, Groups, Why))
    return UINT64_MAX;
  uint64_t Total =
      boundedSubsetCount(S.ErrorVars.size(), S.MaxErrors, 1);
  for (const Group &G : Groups) {
    size_t Bound = G.UseConstant ? G.Constant : S.MaxErrors;
    uint64_t Count =
        G.Pairs.empty()
            ? boundedSubsetCount(G.Plain.size(), Bound, 1)
            : boundedSubsetCount(G.Pairs.size(), Bound, 3);
    Total = satMul(Total, Count);
  }
  return Total;
}

OracleResult veriqec::testing::bruteForceVerify(const Scenario &S,
                                                const OracleOptions &O) {
  OracleResult Out;
  if (S.MaxErrors == ~uint32_t{0}) {
    Out.Detail = "unbounded error budget";
    return Out;
  }
  Enumerator E{S, O, {}, {}, {}, false};
  if (!buildGroups(S, E.Groups, Out.Detail))
    return Out;

  // Decoder outputs default to 0 so replays always see them assigned.
  std::vector<std::string> DecoderVars;
  collectDecoderVars(S.Program, DecoderVars);
  for (const std::string &V : DecoderVars)
    E.Mem[V] = 0;
  for (const std::string &V : S.ErrorVars)
    E.Mem[V] = 0;

  E.Result.Status = OracleStatus::Verified;
  E.enumerateErrors(0, std::min<uint32_t>(
                           S.MaxErrors,
                           static_cast<uint32_t>(S.ErrorVars.size())));
  return E.Result;
}
