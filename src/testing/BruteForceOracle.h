//===- testing/BruteForceOracle.h - Exhaustive scenario oracle --*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trusted second opinion for small instances: enumerate every error
/// assignment within the scenario's budget and, for each, every decoder
/// output assignment the minimum-weight contract allows, replay the pair
/// through the reference executor, and look for a contract-satisfying run
/// that violates the postcondition. The verdict is derived from nothing
/// but gf2/pauli arithmetic and the tableau, so agreement with the engine
/// certifies the whole symbolic/SAT stack on that instance.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_TESTING_BRUTEFORCEORACLE_H
#define VERIQEC_TESTING_BRUTEFORCEORACLE_H

#include "testing/ReferenceExecutor.h"

#include <cstdint>
#include <string>

namespace veriqec::testing {

enum class OracleStatus {
  Verified,       ///< no contract-conforming run violates the postcondition
  CounterExample, ///< a violating assignment was found (in CounterExample)
  Skipped,        ///< enumeration exceeded the work budget
  Unsupported,    ///< scenario shape outside the oracle's fragment
};

struct OracleResult {
  OracleStatus Status = OracleStatus::Unsupported;
  std::string Detail; ///< reason for Skipped/Unsupported
  CMem CounterExample;
  uint64_t Executions = 0; ///< replays actually performed
};

struct OracleOptions {
  /// Rough cap on the number of replays; enumeration stops (Skipped) when
  /// exceeded mid-flight.
  uint64_t WorkBudget = 4000000;
  /// Input filter mirroring a VerifyOptions::ExtraConstraint.
  InputPredicate Extra;
};

/// Upper bound on the number of replays bruteForceVerify would perform
/// (UINT64_MAX when the scenario is outside the supported fragment).
uint64_t bruteForceWorkEstimate(const Scenario &S);

/// Exhaustively decides the scenario. Requires a finite error budget and
/// weight constraints that partition the decoder output variables (true
/// for every builder in verifier/Scenarios).
OracleResult bruteForceVerify(const Scenario &S, const OracleOptions &O = {});

} // namespace veriqec::testing

#endif // VERIQEC_TESTING_BRUTEFORCEORACLE_H
