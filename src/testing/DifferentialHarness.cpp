//===- testing/DifferentialHarness.cpp - Cross-engine differential ---------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "testing/DifferentialHarness.h"

#include "decoder/Decoder.h"
#include "dist/Coordinator.h"
#include "dist/Transport.h"
#include "dist/Worker.h"
#include "engine/CubeEngine.h"
#include "engine/VerificationEngine.h"
#include "proof/ProofCheck.h"
#include "proof/ProofLog.h"
#include "sim/SamplingTester.h"
#include "support/Timer.h"
#include "testing/BruteForceOracle.h"
#include "testing/ModelChecker.h"

#include <thread>

using namespace veriqec;
using namespace veriqec::testing;
using namespace veriqec::smt;

namespace {

char verdictOf(const VerificationResult &R) {
  if (!R.StructuralOk)
    return 'E';
  if (R.Aborted)
    return 'A';
  return R.Verified ? 'V' : 'F';
}

/// Validates one SAT model at both the Boolean and the tableau level.
void validateModel(const FuzzCase &C, const VerifyOptions &VO,
                   const std::string &Config,
                   const std::unordered_map<std::string, bool> &Model,
                   CaseReport &Report) {
  BoolContext Ctx;
  BuiltVc Vc = engine::buildScenarioVc(Ctx, C.Scn, VO);
  if (!Vc.Ok) {
    Report.Discrepancies.push_back(Config + ": VC rebuild failed: " +
                                   Vc.Error);
    return;
  }
  ModelCheckResult MC = evaluateUnderModel(Ctx, Vc.NegatedVc, Model);
  if (MC.MissingVars)
    Report.Discrepancies.push_back(
        Config + ": model misses " + std::to_string(MC.MissingVars) +
        " context variables");
  if (!MC.Satisfies)
    Report.Discrepancies.push_back(
        Config + ": model does not satisfy the negated VC "
                 "(encoder or solver certificate bug)");
  CertificateCheck CC =
      replayCounterExample(C.Scn, Model, C.Constraint.predicate(C.Scn));
  if (!CC.Genuine)
    Report.Discrepancies.push_back(Config + ": counterexample replay: " +
                                   CC.Why);
}

/// The proof oracle (HarnessOptions::CheckProofs): every verified
/// verdict must come with a clause proof the independent checker
/// accepts. Rejected proofs are kept verbatim for artifact dumping.
void checkProofOracle(const std::string &Config, const std::string &Proof,
                      CaseReport &Report) {
  if (Proof.empty()) {
    Report.Discrepancies.push_back(Config +
                                   ": verified verdict carries no proof");
    return;
  }
  proof::CheckResult CR = proof::checkProof(Proof);
  if (!CR.Ok) {
    Report.Discrepancies.push_back(Config + ": proof rejected: " + CR.Error);
    Report.RejectedProofs.emplace_back(Config, Proof);
    return;
  }
  ++Report.ProofsChecked;
}

/// The harness's own cube discharge: one reused solver (from the
/// injectable factory) walks the ET cube enumeration under assumptions —
/// the exact reuse pattern that exposed the PR 1 soundness bug — with
/// each UNSAT cube optionally re-solved by a fresh baseline solver.
ConfigVerdict runDirectReuse(const FuzzCase &C, const VerifyOptions &VO,
                             const HarnessOptions &O, CaseReport &Report) {
  ConfigVerdict Out;
  Out.Name = "cube-reuse-direct";
  BoolContext Ctx;
  BuiltVc Vc = engine::buildScenarioVc(Ctx, C.Scn, VO);
  if (!Vc.Ok) {
    Out.Verdict = 'E';
    Out.Detail = Vc.Error;
    return Out;
  }
  // Preprocessing and native XOR stay ON here: the reused solver then
  // exercises model reconstruction (eliminated-variable read-back) AND
  // the Gauss engine under the exact assumption-reuse pattern the
  // engine runs — this is the configuration through which a corrupted
  // XOR reason (the injectable solver's seam) must be caught — while
  // the split variables are pinned so the cube literals cannot dangle.
  ProblemOptions PO;
  PO.Preprocess = true;
  PO.NativeXor = true;
  PO.ProtectedVars = C.Scn.ErrorVars;
  // The proof header replays the preprocessor's GF(2) bridge, which
  // needs the original rows captured at encode time.
  PO.CaptureProofData = O.CheckProofs;
  VerificationProblem Enc(Ctx, Vc.NegatedVc, PO);
  if (Enc.TriviallyUnsat) {
    if (O.CheckProofs)
      checkProofOracle(Out.Name, proof::buildTrivialProof(Enc), Report);
    Out.Verdict = 'V';
    return Out;
  }
  std::vector<sat::Var> SplitVars;
  for (const std::string &Name : C.Scn.ErrorVars)
    SplitVars.push_back(Enc.varOfName(Name));
  uint32_t Dist = std::max<uint32_t>(
      2, C.Scn.MaxErrors == ~uint32_t{0} ? 2 : 2 * C.Scn.MaxErrors + 1);
  std::vector<std::vector<sat::Lit>> Cubes = engine::enumerateCubes(
      SplitVars, Dist, static_cast<uint32_t>(C.Scn.NumQubits),
      C.Scn.MaxErrors);

  // The proof sink must outlive the solver holding the raw pointer.
  proof::SlotProofLog Log;
  uint64_t Concluded = 0;
  std::unique_ptr<sat::Solver> Reused =
      O.SolverFactory ? O.SolverFactory() : std::make_unique<sat::Solver>();
  Enc.loadInto(*Reused);
  // Chronological backtracking stays ON for the direct walk: the
  // reused solver then takes prefix-crossing conflicts through the
  // chrono path (out-of-order assignments, trail saving) under the
  // exact assumption-reuse pattern — the configuration through which a
  // corrupted reimplication level (the corruptOutOfOrderLevel seam)
  // must be caught — while every other configuration cross-checks it
  // with chrono resolved off.
  Reused->setChrono(true);
  if (O.RandomSeed)
    Reused->setRandomSeed(O.RandomSeed);
  if (O.CheckProofs)
    Reused->setProofSink(&Log);

  bool Recheck = O.RecheckUnsatCubes && Cubes.size() <= O.MaxCubesRecheck;
  for (size_t I = 0; I != Cubes.size(); ++I) {
    sat::SolveResult R = Reused->solve(Cubes[I]);
    if (R == sat::SolveResult::Sat) {
      std::unordered_map<std::string, bool> Model;
      Enc.readModel(*Reused, Model);
      validateModel(C, VO, Out.Name, Model, Report);
      Out.Verdict = 'F';
      return Out;
    }
    if (R == sat::SolveResult::Aborted) {
      Out.Verdict = 'A';
      return Out;
    }
    if (O.CheckProofs) {
      Log.logConclusion(Reused->conflictCore(), Cubes[I],
                        Reused->conflictCoreHints());
      ++Concluded;
    }
    if (Recheck) {
      sat::Solver Fresh = Enc.makeSolver();
      if (Fresh.solve(Cubes[I]) == sat::SolveResult::Sat) {
        Report.Discrepancies.push_back(
            Out.Name + ": cube #" + std::to_string(I) +
            " flipped SAT -> UNSAT under solver reuse "
            "(assumption-handling soundness bug)");
        std::unordered_map<std::string, bool> Model;
        Enc.readModel(Fresh, Model);
        validateModel(C, VO, Out.Name + "(fresh)", Model, Report);
        Out.Verdict = 'F';
        return Out;
      }
    }
  }
  // The proof oracle on the direct-reuse stream: this is the
  // configuration that runs the injectable (possibly planted-buggy)
  // solver, so a corrupted derivation — e.g. an under-justified XOR
  // reason from the corruptXorReasonClause seam — surfaces here as a
  // rejected addition even when every verdict agrees.
  if (O.CheckProofs) {
    const std::string Streams[] = {Log.drain()};
    checkProofOracle(Out.Name,
                     proof::assembleProof(proof::buildProofHeader(
                                              Enc, /*HardenBudget=*/false, 0),
                                          Streams, Concluded),
                     Report);
  }
  Out.Verdict = 'V';
  return Out;
}

} // namespace

CaseReport veriqec::testing::runDifferential(const FuzzCase &C,
                                             const HarnessOptions &O) {
  CaseReport Report;
  Report.Seed = C.Seed;
  Report.Description = C.describe();
  Timer Clock;

  VerifyOptions Base;
  Base.RandomSeed = O.RandomSeed;
  Base.ExtraConstraint = C.Constraint.builder(C.Scn);
  Base.LogProofs = O.CheckProofs;

  struct EngineConfig {
    std::string Name;
    VerifyOptions Opts;
  };
  std::vector<EngineConfig> Configs;
  Configs.push_back({"sequential", Base});
  {
    // The legacy monolithic-Tseitin pipeline: no GF(2) preprocessing, no
    // weight layer. Everything downstream cross-checks verdicts and
    // reconstructed counterexample models against this path.
    VerifyOptions VO = Base;
    VO.Preprocess = false;
    Configs.push_back({"seq-noprep", VO});
  }
  {
    // Native XOR on (scenario workloads resolve XorMode::Auto to off,
    // so this is the explicit A/B side): the Gauss-in-the-loop engine
    // (reason clauses, conflict analysis integration, elimination
    // pruning) is cross-checked against the plain-CNF pipeline on
    // every case.
    VerifyOptions VO = Base;
    VO.Xor = XorMode::On;
    Configs.push_back({"seq-xor", VO});
  }
  {
    VerifyOptions VO = Base;
    VO.Parallel = true;
    VO.Threads = 1;
    Configs.push_back({"cube-j1", VO});
  }
  {
    VerifyOptions VO = Base;
    VO.Parallel = true;
    VO.Threads = 1;
    VO.Xor = XorMode::On;
    Configs.push_back({"cube-j1-xor", VO});
  }
  {
    VerifyOptions VO = Base;
    VO.Parallel = true;
    VO.Threads = 1;
    VO.Preprocess = false;
    Configs.push_back({"cube-j1-noprep", VO});
  }
  {
    // Chronological backtracking on (cube workloads resolve
    // ChronoMode::Auto to off, so this is the explicit A/B side): the
    // chrono machinery — out-of-order assignments, survivor-preserving
    // backtracks, reimplication levels — is cross-checked against the
    // classic-backjumping pipeline on every case.
    VerifyOptions VO = Base;
    VO.Parallel = true;
    VO.Threads = 1;
    VO.Chrono = smt::ChronoMode::On;
    Configs.push_back({"cube-j1-chrono", VO});
  }
  if (O.Jobs > 1) {
    VerifyOptions VO = Base;
    VO.Parallel = true;
    VO.Threads = O.Jobs;
    Configs.push_back({"cube-j" + std::to_string(O.Jobs), VO});
  }
  {
    VerifyOptions VO = Base;
    VO.Parallel = true;
    VO.Threads = 2;
    VO.SplitThreshold = static_cast<uint32_t>(2 * C.Scn.NumQubits);
    Configs.push_back({"cube-deep-split", VO});
  }
  // The pairwise encoding is O(n^(k+1)); only sane on small instances.
  if (C.Scn.ErrorVars.size() <= 24 && C.Scn.MaxErrors <= 2) {
    VerifyOptions VO = Base;
    VO.CardEnc = CardinalityEncoding::PairwiseNaive;
    Configs.push_back({"seq-pairwise", VO});
  }

  for (const EngineConfig &Cfg : Configs) {
    VerificationResult R = verifyScenario(C.Scn, Cfg.Opts);
    ConfigVerdict V;
    V.Name = Cfg.Name;
    V.Verdict = verdictOf(R);
    V.Detail = R.Error;
    if (V.Verdict == 'F' && !R.CounterExample.empty())
      validateModel(C, Cfg.Opts, Cfg.Name, R.CounterExample, Report);
    if (V.Verdict == 'V' && O.CheckProofs)
      checkProofOracle(Cfg.Name, R.Proof, Report);
    Report.Verdicts.push_back(std::move(V));
  }

  // Distributed loopback: the identical scenario through the wire codec
  // and the coordinator's sharding/broadcast scheduler. Counterexample
  // models crossed the wire (read back worker-side, reconstruction
  // included), so the model validation below checks the codec too.
  if (O.DistWorkers) {
    ConfigVerdict V;
    V.Name = "dist-loopback";
    dist::Coordinator Coord;
    std::vector<std::thread> Threads =
        dist::spawnLoopbackWorkers(Coord, O.DistWorkers);
    if (!Coord.waitForWorkers(O.DistWorkers, 10000)) {
      V.Verdict = 'E';
      V.Detail = "loopback workers failed to register";
    } else {
      VerifyOptions VO = Base;
      VO.Parallel = true;
      engine::VerificationEngine Prep(1);
      VerificationResult R = Prep.verifyAll({&C.Scn, 1}, VO, Coord)[0];
      V.Verdict = verdictOf(R);
      V.Detail = R.Error;
      if (V.Verdict == 'F' && !R.CounterExample.empty())
        validateModel(C, VO, V.Name, R.CounterExample, Report);
      if (V.Verdict == 'V' && O.CheckProofs)
        checkProofOracle(V.Name, R.Proof, Report);
    }
    Coord.shutdownWorkers();
    for (std::thread &T : Threads)
      T.join();
    Report.Verdicts.push_back(std::move(V));
  }

  Report.Verdicts.push_back(runDirectReuse(C, Base, O, Report));

  // Verdict consensus across every configuration.
  Report.Consensus = Report.Verdicts.front().Verdict;
  for (const ConfigVerdict &V : Report.Verdicts)
    if (V.Verdict != Report.Consensus) {
      std::string Disagreement = "verdicts disagree:";
      for (const ConfigVerdict &W : Report.Verdicts) {
        Disagreement += " " + W.Name + "=";
        Disagreement += W.Verdict;
      }
      Report.Discrepancies.push_back(std::move(Disagreement));
      Report.Consensus = '?';
      break;
    }

  // Brute-force oracle on small instances.
  if (Report.Consensus == 'V' || Report.Consensus == 'F') {
    uint64_t Estimate = bruteForceWorkEstimate(C.Scn);
    if (Estimate <= O.BruteBudget) {
      OracleOptions OO;
      OO.WorkBudget = O.BruteBudget;
      OO.Extra = C.Constraint.predicate(C.Scn);
      OracleResult Oracle = bruteForceVerify(C.Scn, OO);
      Report.BruteExecutions = Oracle.Executions;
      if (Oracle.Status == OracleStatus::Verified ||
          Oracle.Status == OracleStatus::CounterExample) {
        Report.BruteRan = true;
        char OracleVerdict =
            Oracle.Status == OracleStatus::Verified ? 'V' : 'F';
        if (OracleVerdict != Report.Consensus)
          Report.Discrepancies.push_back(
              std::string("brute-force oracle says ") + OracleVerdict +
              " but engines agreed on " + Report.Consensus);
      }
    }
  }

  // Sampling refuter: a verified memory scenario must survive random
  // trials against a concrete (contract-conforming) minimum-weight
  // decoder.
  if (Report.Consensus == 'V' && C.Shape == FuzzShape::Memory &&
      C.Constraint.K == ConstraintSpec::Kind::None && O.SamplingTrials) {
    LookupDecoder Dec(C.Code, C.MaxErrors);
    Rng R(C.Seed ^ 0x5a5a5a5a5a5a5a5aull);
    SamplingOptions SO;
    SO.OnlyKind = C.ErrorKind;
    SO.XBasis = C.Basis == LogicalBasis::X;
    SamplingReport SR = sampleMemoryCorrection(
        C.Code, Dec, C.MaxErrors, O.SamplingTrials, R, SO);
    Report.SamplingRan = true;
    if (SR.Failures)
      Report.Discrepancies.push_back(
          "sampling refuted the verified verdict (" +
          std::to_string(SR.Failures) + "/" + std::to_string(SR.Samples) +
          " trials hit a logical error)");
  }

  Report.Seconds = Clock.seconds();
  return Report;
}
