//===- testing/DifferentialHarness.h - Cross-engine differential -*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one fuzz case through every engine configuration (sequential,
/// cube-and-conquer at several widths and split depths, both cardinality
/// encodings, the GF(2)-preprocessed pipeline against the legacy
/// unpreprocessed one, chronological backtracking against classic
/// backjumping, and a direct solver-reuse cube loop) and demands a
/// single verdict. Every SAT verdict's model is validated twice — against the
/// BoolExpr by the independent evaluator, and against the tableau
/// semantics by the reference executor — and the consensus verdict is
/// cross-checked against the brute-force oracle (small instances) and a
/// sampling refuter (verified memory scenarios). The direct cube loop's
/// solver comes from an injectable factory so tests can substitute a
/// deliberately buggy solver and prove the harness catches it.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_TESTING_DIFFERENTIALHARNESS_H
#define VERIQEC_TESTING_DIFFERENTIALHARNESS_H

#include "sat/Solver.h"
#include "testing/ScenarioFuzzer.h"

#include <memory>
#include <string>
#include <vector>

namespace veriqec::testing {

struct HarnessOptions {
  /// Width of the widest parallel configuration.
  size_t Jobs = 4;
  /// Work cap for the brute-force oracle (replays); larger scenarios are
  /// skipped rather than enumerated.
  uint64_t BruteBudget = 300000;
  /// Trials for the sampling refuter; 0 disables it.
  uint64_t SamplingTrials = 1500;
  /// Threaded into the solvers' random tie-breaking (0 = deterministic).
  uint64_t RandomSeed = 0;
  /// Solver factory for the direct cube-reuse configuration. Defaults to
  /// the production solver; tests inject buggy subclasses here.
  std::function<std::unique_ptr<sat::Solver>()> SolverFactory;
  /// Re-solve each UNSAT cube of the direct configuration with a fresh
  /// baseline solver (bounded by MaxCubesRecheck): a cube whose verdict
  /// depends on reused solver state is exactly the PR 1 failure mode.
  bool RecheckUnsatCubes = true;
  size_t MaxCubesRecheck = 512;
  /// Workers of the dist-loopback configuration: the case additionally
  /// runs through a coordinator + in-process worker fleet behind the
  /// full wire codec (problem serialization, batch sharding, core
  /// broadcast, model read-back on the worker side), cross-checked
  /// against every other configuration. 0 disables.
  size_t DistWorkers = 2;
  /// The proof oracle: force clause-proof logging in every engine
  /// configuration and replay each verified verdict's proof with the
  /// independent checker. A verified verdict whose proof is missing or
  /// rejected is a discrepancy like any other.
  bool CheckProofs = false;
};

/// Verdict letters: V = verified, F = counterexample found, A = aborted,
/// E = structural error.
struct ConfigVerdict {
  std::string Name;
  char Verdict = '?';
  std::string Detail; ///< error text for 'E'
};

struct CaseReport {
  uint64_t Seed = 0;
  std::string Description;
  std::vector<ConfigVerdict> Verdicts;
  char Consensus = '?';
  /// Human-readable descriptions of every disagreement or failed
  /// certificate/oracle check. Empty = the case is clean.
  std::vector<std::string> Discrepancies;
  bool BruteRan = false;
  uint64_t BruteExecutions = 0;
  bool SamplingRan = false;
  /// Proofs the proof oracle replayed successfully (CheckProofs only).
  uint64_t ProofsChecked = 0;
  /// Proofs the checker rejected, as (configuration, proof text) — kept
  /// verbatim so a fuzz driver can save the offending certificate next
  /// to the failing seed.
  std::vector<std::pair<std::string, std::string>> RejectedProofs;
  double Seconds = 0;

  bool clean() const { return Discrepancies.empty(); }
};

/// Runs the full differential + oracle pipeline on one case.
CaseReport runDifferential(const FuzzCase &C, const HarnessOptions &O = {});

} // namespace veriqec::testing

#endif // VERIQEC_TESTING_DIFFERENTIALHARNESS_H
