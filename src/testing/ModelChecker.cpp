//===- testing/ModelChecker.cpp - Certificate evaluation -------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "testing/ModelChecker.h"

using namespace veriqec;
using namespace veriqec::testing;

ModelCheckResult veriqec::testing::evaluateUnderModel(
    const smt::BoolContext &Ctx, smt::ExprRef Root,
    const std::unordered_map<std::string, bool> &Model) {
  ModelCheckResult Out;
  std::vector<bool> Values(Ctx.numVariables(), false);
  for (uint32_t Id = 0; Id != Ctx.numVariables(); ++Id) {
    auto It = Model.find(Ctx.varName(Id));
    if (It == Model.end())
      ++Out.MissingVars;
    else
      Values[Id] = It->second;
  }
  Out.Satisfies = Ctx.evaluate(Root, Values);
  return Out;
}
