//===- testing/ModelChecker.h - Certificate evaluation ----------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates SAT certificates at the Boolean level: a model claimed by
/// the solver is re-evaluated against the original BoolExpr DAG with the
/// context's own evaluator, bypassing the CNF encoding and the solver
/// entirely. A model that does not satisfy the root expression convicts
/// the encoder or the solver.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_TESTING_MODELCHECKER_H
#define VERIQEC_TESTING_MODELCHECKER_H

#include "smt/BoolExpr.h"

#include <string>
#include <unordered_map>

namespace veriqec::testing {

/// Result of evaluating an expression under a named-variable model.
struct ModelCheckResult {
  bool Satisfies = false; ///< the root evaluates to true under the model
  /// Named variables of the context that the model did not assign (they
  /// default to false; nonzero counts usually indicate a mismatched
  /// context).
  size_t MissingVars = 0;
};

/// Evaluates \p Root under \p Model. Model entries whose names are not
/// context variables are ignored; context variables absent from the model
/// default to false and are counted in MissingVars.
ModelCheckResult
evaluateUnderModel(const smt::BoolContext &Ctx, smt::ExprRef Root,
                   const std::unordered_map<std::string, bool> &Model);

} // namespace veriqec::testing

#endif // VERIQEC_TESTING_MODELCHECKER_H
