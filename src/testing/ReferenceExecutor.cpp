//===- testing/ReferenceExecutor.cpp - Concrete scenario replay ------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "testing/ReferenceExecutor.h"

#include "gf2/BitMatrix.h"
#include "pauli/Tableau.h"
#include "support/Rng.h"

using namespace veriqec;
using namespace veriqec::testing;

namespace {

bool bitOf(const CMem &Mem, const std::string &Name) {
  auto It = Mem.find(Name);
  return It != Mem.end() && (It->second & 1) != 0;
}

/// Symplectic row [z | x] of a Pauli, so that dotParity against a [x | z]
/// candidate row computes the anticommutation parity.
BitVector swappedRow(const Pauli &P) {
  size_t N = P.numQubits();
  BitVector Row(2 * N);
  for (size_t Q = 0; Q != N; ++Q) {
    if (P.zBits().get(Q))
      Row.set(Q);
    if (P.xBits().get(Q))
      Row.set(N + Q);
  }
  return Row;
}

Pauli pauliFromRow(const BitVector &Row) {
  size_t N = Row.size() / 2;
  Pauli P(N);
  for (size_t Q = 0; Q != N; ++Q) {
    bool X = Row.get(Q), Z = Row.get(N + Q);
    if (X && Z)
      P.setKind(Q, PauliKind::Y);
    else if (X)
      P.setKind(Q, PauliKind::X);
    else if (Z)
      P.setKind(Q, PauliKind::Z);
  }
  return P.abs();
}

/// The whole execution state, threaded through the statement walk.
struct Executor {
  const Scenario &S;
  ReplayResult &Out;
  Tableau State;
  Rng R{0x5eed5eed};

  Executor(const Scenario &Scn, ReplayResult &Result)
      : S(Scn), Out(Result), State(Scn.NumQubits) {}

  bool fail(std::string Why) {
    Out.Error = std::move(Why);
    return false;
  }

  /// Desired measurement outcome of a GenSpec under the current memory:
  /// the state must be stabilized by (-1)^(PhaseConstant + PhaseVar) Base,
  /// i.e. measuring Base must yield that phase as its outcome.
  bool desiredOutcome(const GenSpec &G) const {
    bool V = G.PhaseConstant;
    if (!G.PhaseVar.empty())
      V ^= bitOf(Out.Mem, G.PhaseVar);
    return V;
  }

  /// Prepares the precondition state: measure every Pre generator (any
  /// outcomes), then apply one Pauli fix-up whose anticommutation pattern
  /// flips exactly the generators that came out with the wrong sign. The
  /// fix-up exists because the Pre set has full rank, and is found by a
  /// GF(2) solve over the symplectic form.
  bool prepare() {
    std::vector<bool> Observed;
    for (const GenSpec &G : S.Pre) {
      if (G.Base.numQubits() != S.NumQubits)
        return fail("precondition generator size mismatch");
      Observed.push_back(State.measure(G.Base, R));
    }
    BitVector Flips(S.Pre.size());
    bool AnyFlip = false;
    for (size_t I = 0; I != S.Pre.size(); ++I)
      if (Observed[I] != desiredOutcome(S.Pre[I])) {
        Flips.set(I);
        AnyFlip = true;
      }
    if (AnyFlip) {
      BitMatrix M(0, 2 * S.NumQubits);
      for (const GenSpec &G : S.Pre)
        M.appendRow(swappedRow(G.Base));
      std::optional<BitVector> Fix = M.solve(Flips);
      if (!Fix)
        return fail("precondition fix-up has no solution (dependent Pre?)");
      State.applyPauli(pauliFromRow(*Fix));
    }
    for (const GenSpec &G : S.Pre) {
      std::optional<bool> Det = State.deterministicOutcome(G.Base);
      if (!Det || *Det != desiredOutcome(G))
        return fail("precondition preparation failed for " +
                    G.Base.toString());
    }
    return true;
  }

  size_t qubitOf(const CExprPtr &E, bool &Okay) {
    int64_t V = E ? E->evaluate(Out.Mem) : -1;
    if (V < 0 || static_cast<size_t>(V) >= S.NumQubits) {
      Okay = false;
      return 0;
    }
    Okay = true;
    return static_cast<size_t>(V);
  }

  bool applyUnitary(GateKind G, const CExprPtr &Q0E, const CExprPtr &Q1E) {
    if (!isCliffordGate(G))
      return fail("reference executor cannot apply non-Clifford gate");
    bool Okay = true;
    size_t Q0 = qubitOf(Q0E, Okay);
    if (!Okay)
      return fail("qubit index out of range");
    if (isTwoQubitGate(G)) {
      size_t Q1 = qubitOf(Q1E, Okay);
      if (!Okay)
        return fail("qubit index out of range");
      State.applyGate(G, Q0, Q1);
    } else {
      State.applyGate(G, Q0);
    }
    return true;
  }

  bool exec(const StmtPtr &St) {
    switch (St->Kind) {
    case StmtKind::Skip:
      return true;
    case StmtKind::Seq:
      for (const StmtPtr &Child : St->Body)
        if (!exec(Child))
          return false;
      return true;
    case StmtKind::Unitary:
      return applyUnitary(St->Gate, St->Qubit0, St->Qubit1);
    case StmtKind::GuardedGate:
      if (!St->Guard->evaluateBool(Out.Mem))
        return true;
      return applyUnitary(St->Gate, St->Qubit0, St->Qubit1);
    case StmtKind::Init: {
      bool Okay = true;
      size_t Q = qubitOf(St->Qubit0, Okay);
      if (!Okay)
        return fail("qubit index out of range");
      State.reset(Q, R);
      return true;
    }
    case StmtKind::Assign:
      Out.Mem[St->Targets[0]] = St->Value->evaluate(Out.Mem);
      return true;
    case StmtKind::Measure: {
      Pauli P = St->Measured.resolve(S.NumQubits, Out.Mem);
      std::optional<bool> Det = State.deterministicOutcome(P);
      if (!Det)
        return fail("non-deterministic measurement of " + P.toString());
      bool Outcome = *Det ^ St->Measured.phaseBitValue(Out.Mem);
      Out.Mem[St->Targets[0]] = Outcome;
      Out.MeasureLog.emplace_back(St->Targets[0], Outcome);
      return true;
    }
    case StmtKind::DecoderCall:
      // Decoder outputs are inputs of the replay (they are universally
      // quantified in the VC); they must have been provided.
      for (const std::string &Target : St->Targets)
        if (!Out.Mem.count(Target))
          return fail("decoder output '" + Target + "' not assigned");
      return true;
    case StmtKind::If:
      return exec(St->Cond->evaluateBool(Out.Mem) ? St->Body[0]
                                                  : St->Body[1]);
    case StmtKind::While:
      for (size_t Guard = 0; St->Cond->evaluateBool(Out.Mem); ++Guard) {
        if (Guard > 100000)
          return fail("while loop exceeded the replay iteration cap");
        if (!exec(St->Body[0]))
          return false;
      }
      return true;
    case StmtKind::For:
      return fail("for statement in a supposedly flattened program");
    }
    return fail("unknown statement kind");
  }

  void run() {
    if (!prepare() || !exec(S.Program))
      return;
    Out.PostconditionHolds = true;
    for (const GenSpec &G : S.Post) {
      std::optional<bool> Det = State.deterministicOutcome(G.Base);
      if (!Det || *Det != desiredOutcome(G))
        Out.PostconditionHolds = false;
    }
    Out.Ok = true;
  }
};

} // namespace

ReplayResult veriqec::testing::executeScenario(const Scenario &S,
                                               const CMem &Inputs) {
  ReplayResult Out;
  Out.Mem = Inputs;
  Executor E(S, Out);
  E.run();
  return Out;
}

bool veriqec::testing::scenarioContractHolds(const Scenario &S,
                                             const CMem &Mem) {
  if (S.MaxErrors != ~uint32_t{0}) {
    uint64_t Total = 0;
    for (const std::string &E : S.ErrorVars)
      Total += bitOf(Mem, E);
    if (Total > S.MaxErrors)
      return false;
  }
  for (const ParityConstraint &P : S.Parity) {
    bool Sum = false;
    for (const std::string &T : P.Terms)
      Sum ^= bitOf(Mem, T);
    if (Sum != bitOf(Mem, P.EqualsVar))
      return false;
  }
  for (const WeightConstraint &W : S.Weights) {
    uint64_t Lhs = 0;
    for (const std::string &V : W.Lhs)
      Lhs += bitOf(Mem, V);
    for (const auto &[A, B] : W.LhsPairs)
      Lhs += bitOf(Mem, A) || bitOf(Mem, B);
    uint64_t Rhs = W.RhsConstant;
    if (!W.UseConstant) {
      Rhs = 0;
      for (const std::string &V : W.Rhs)
        Rhs += bitOf(Mem, V);
    }
    if (Lhs > Rhs)
      return false;
  }
  return true;
}

CertificateCheck veriqec::testing::replayCounterExample(
    const Scenario &S, const std::unordered_map<std::string, bool> &Model,
    const InputPredicate &Extra) {
  CertificateCheck Check;
  CMem Inputs;
  for (const auto &[Name, Value] : Model)
    Inputs[Name] = Value;

  if (Extra && !Extra(Inputs)) {
    Check.Why = "model violates the extra user constraint";
    return Check;
  }

  ReplayResult R = executeScenario(S, Inputs);
  if (!R.Ok) {
    Check.Why = "replay failed: " + R.Error;
    return Check;
  }
  for (const auto &[Name, Outcome] : R.MeasureLog) {
    auto It = Model.find(Name);
    if (It != Model.end() && It->second != Outcome) {
      Check.Why = "measured value of '" + Name +
                  "' disagrees between the symbolic flow and the tableau";
      return Check;
    }
  }
  if (!scenarioContractHolds(S, R.Mem)) {
    Check.Why = "model violates the scenario contract";
    return Check;
  }
  if (R.PostconditionHolds) {
    Check.Why = "model satisfies the postcondition (not a counterexample)";
    return Check;
  }
  Check.Genuine = true;
  return Check;
}
