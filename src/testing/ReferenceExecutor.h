//===- testing/ReferenceExecutor.h - Concrete scenario replay ---*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent reference semantics for verification scenarios: given a
/// complete classical input assignment (error indicators, decoder outputs,
/// symbolic phase bits), the scenario's program is executed concretely on
/// the stabilizer tableau and the postcondition phase equations are
/// checked on the resulting state. Nothing here touches the symbolic
/// flow, the VC builder or the SAT layer, which is the point: the fuzzing
/// oracles replay engine verdicts against this executor, so a bug in any
/// of those layers shows up as a replay mismatch.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_TESTING_REFERENCEEXECUTOR_H
#define VERIQEC_TESTING_REFERENCEEXECUTOR_H

#include "verifier/Scenarios.h"

#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace veriqec::testing {

/// Classical predicate over an input assignment; the oracle-side mirror
/// of a VerifyOptions::ExtraConstraint.
using InputPredicate = std::function<bool(const CMem &)>;

/// Outcome of concretely executing a scenario under one assignment.
struct ReplayResult {
  bool Ok = false;    ///< executed without structural problems
  std::string Error;  ///< when !Ok
  bool PostconditionHolds = false;
  /// Inputs plus every measured value (measurement targets overwrite any
  /// input value of the same name).
  CMem Mem;
  /// Measurement log in program order (variable, outcome).
  std::vector<std::pair<std::string, bool>> MeasureLog;
};

/// Prepares the precondition state, runs the program with the classical
/// bits of \p Inputs, and checks the postcondition. Measurements must be
/// deterministic (true for every scenario the builders produce); a
/// genuinely random outcome is reported as an execution error.
ReplayResult executeScenario(const Scenario &S, const CMem &Inputs);

/// The scenario's classical assumptions under a complete memory: error
/// budget, syndrome-match parities and minimum-weight bounds. Variables
/// missing from \p Mem count as 0.
bool scenarioContractHolds(const Scenario &S, const CMem &Mem);

/// Verdict of validating one SAT counterexample model.
struct CertificateCheck {
  bool Genuine = false;
  std::string Why; ///< failure reason when !Genuine
};

/// Replays a solver counterexample through the reference executor: the
/// model must execute cleanly, reproduce every measured value it claims,
/// satisfy the scenario contract (and \p Extra, when given), and violate
/// the postcondition. Anything else means some layer above the solver
/// lied.
CertificateCheck
replayCounterExample(const Scenario &S,
                     const std::unordered_map<std::string, bool> &Model,
                     const InputPredicate &Extra = {});

} // namespace veriqec::testing

#endif // VERIQEC_TESTING_REFERENCEEXECUTOR_H
