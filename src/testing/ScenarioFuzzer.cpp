//===- testing/ScenarioFuzzer.cpp - Random scenario generation -------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "testing/ScenarioFuzzer.h"

#include "gf2/BitMatrix.h"
#include "support/Rng.h"

#include <algorithm>

using namespace veriqec;
using namespace veriqec::testing;

const char *veriqec::testing::shapeName(FuzzShape Shape) {
  switch (Shape) {
  case FuzzShape::Memory:
    return "memory";
  case FuzzShape::LogicalH:
    return "logical-h";
  case FuzzShape::MultiCycle:
    return "multicycle";
  case FuzzShape::CorrectionStep:
    return "correction-step";
  case FuzzShape::Ghz:
    return "ghz";
  case FuzzShape::Cnot:
    return "cnot";
  }
  return "?";
}

std::function<smt::ExprRef(smt::BoolContext &)>
ConstraintSpec::builder(const Scenario &S) const {
  if (K == Kind::None)
    return {};
  std::vector<std::string> Names;
  for (size_t I : Indices)
    Names.push_back(S.ErrorVars[I]);
  Kind Which = K;
  return [Names, Which](smt::BoolContext &Ctx) {
    std::vector<smt::ExprRef> Vars;
    for (const std::string &N : Names)
      Vars.push_back(Ctx.mkVar(N));
    if (Which == Kind::ForbidQubits) {
      std::vector<smt::ExprRef> Negs;
      for (smt::ExprRef V : Vars)
        Negs.push_back(Ctx.mkNot(V));
      return Ctx.mkAnd(std::move(Negs));
    }
    return Ctx.mkAtMost(std::move(Vars), 1);
  };
}

InputPredicate ConstraintSpec::predicate(const Scenario &S) const {
  if (K == Kind::None)
    return {};
  std::vector<std::string> Names;
  for (size_t I : Indices)
    Names.push_back(S.ErrorVars[I]);
  Kind Which = K;
  return [Names, Which](const CMem &Mem) {
    uint32_t Ones = 0;
    for (const std::string &N : Names) {
      auto It = Mem.find(N);
      Ones += It != Mem.end() && (It->second & 1);
    }
    return Which == Kind::ForbidQubits ? Ones == 0 : Ones <= 1;
  };
}

std::string ConstraintSpec::describe() const {
  if (K == Kind::None)
    return "none";
  std::string Out =
      K == Kind::ForbidQubits ? "forbid{" : "at-most-one{";
  for (size_t I = 0; I != Indices.size(); ++I)
    Out += (I ? "," : "") + std::to_string(Indices[I]);
  return Out + "}";
}

std::string FuzzCase::describe() const {
  std::string Out = "seed=" + std::to_string(Seed) + " code=" + Code.Name +
                    "[[" + std::to_string(Code.NumQubits) + "," +
                    std::to_string(Code.NumLogical) + "," +
                    std::to_string(Code.Distance) + "]] shape=" +
                    shapeName(Shape);
  Out += std::string(" error=") + (ErrorKind == PauliKind::X   ? "X"
                                   : ErrorKind == PauliKind::Y ? "Y"
                                                               : "Z");
  Out += std::string(" basis=") + (Basis == LogicalBasis::X ? "X" : "Z");
  Out += " t=" + std::to_string(MaxErrors);
  if (Shape == FuzzShape::MultiCycle)
    Out += " cycles=" + std::to_string(Cycles);
  Out += " constraint=" + Constraint.describe();
  return Out;
}

bool veriqec::testing::isHSelfDual(const StabilizerCode &Code) {
  if (!Code.isCss())
    return false;
  BitMatrix Sym = Code.symplecticMatrix();
  size_t N = Code.NumQubits;
  for (const Pauli &G : Code.Generators) {
    // Transversal H swaps the X and Z halves of the symplectic row.
    BitVector Swapped(2 * N);
    for (size_t Q = 0; Q != N; ++Q) {
      if (G.zBits().get(Q))
        Swapped.set(Q);
      if (G.xBits().get(Q))
        Swapped.set(N + Q);
    }
    if (!Sym.rowSpaceContains(Swapped))
      return false;
  }
  return true;
}

namespace {

/// Draws a random CSS code: a random X check matrix, and Z checks picked
/// from its GF(2) nullspace so the generators commute by construction.
/// Returns nullopt when the draw degenerates (no logical qubit left).
std::optional<StabilizerCode> drawRandomCss(Rng &R, size_t N,
                                            uint64_t Seed) {
  size_t MaxXChecks = N - 2;
  size_t NumX = 1 + R.nextBelow(MaxXChecks);
  BitMatrix Hx(0, N);
  for (size_t I = 0; I != NumX; ++I) {
    BitVector Row(N);
    for (size_t Q = 0; Q != N; ++Q)
      if (R.nextBool())
        Row.set(Q);
    if (Row.none())
      Row.set(R.nextBelow(N));
    Hx.appendRow(std::move(Row));
  }
  std::vector<BitVector> Basis = Hx.nullspaceBasis();
  if (Basis.size() < 2)
    return std::nullopt; // need >= 1 Z check and >= 1 logical qubit
  // Shuffle and keep a strict subset so at least one logical survives.
  for (size_t I = Basis.size(); I-- > 1;)
    std::swap(Basis[I], Basis[R.nextBelow(I + 1)]);
  size_t NumZ = 1 + R.nextBelow(Basis.size() - 1);
  BitMatrix Hz(0, N);
  for (size_t I = 0; I != NumZ; ++I)
    Hz.appendRow(Basis[I]);

  StabilizerCode Code = StabilizerCode::fromCss(
      "fuzz-css-" + std::to_string(Seed), Hx, Hz);
  if (Code.NumLogical < 1 || Code.validate())
    return std::nullopt;
  size_t Probe = std::min<size_t>(4, N);
  size_t D = estimateDistance(Code, Probe);
  Code.Distance = D ? D : Probe + 1;
  Code.DistanceIsEstimate = true;
  return Code;
}

StabilizerCode drawCode(Rng &R, const FuzzerOptions &O, uint64_t Seed) {
  if (O.RandomCodes && O.MaxQubits >= 4 && R.nextBelow(3) == 0) {
    size_t N = 4 + R.nextBelow(O.MaxQubits - 3);
    for (int Attempt = 0; Attempt != 8; ++Attempt)
      if (std::optional<StabilizerCode> Code =
              drawRandomCss(R, N, Seed + static_cast<uint64_t>(Attempt)))
        return *Code;
  }
  std::vector<StabilizerCode> Registry;
  auto Add = [&](StabilizerCode C) {
    if (C.NumQubits <= O.MaxQubits)
      Registry.push_back(std::move(C));
  };
  Add(makeRepetitionCode(3));
  Add(makeRepetitionCode(5));
  Add(makeFiveQubitCode());
  Add(makeSixQubitCode());
  Add(makeSteaneCode());
  Add(makeReedMullerCode(3));
  Add(makeCube832());
  Add(makeRotatedSurfaceCode(3));
  Add(makeXzzxSurfaceCode(3, 3));
  if (Registry.empty())
    return makeRepetitionCode(3);
  return Registry[R.nextBelow(Registry.size())];
}

FuzzShape drawShape(Rng &R, const StabilizerCode &Code,
                    const FuzzerOptions &O) {
  size_t N = Code.NumQubits;
  std::vector<FuzzShape> Pool = {FuzzShape::Memory, FuzzShape::Memory,
                                 FuzzShape::Memory,
                                 FuzzShape::MultiCycle,
                                 FuzzShape::CorrectionStep};
  if (isHSelfDual(Code)) {
    Pool.push_back(FuzzShape::LogicalH);
    Pool.push_back(FuzzShape::LogicalH);
  }
  // The GHZ gadget opens with a transversal H on block 0; the logical
  // CNOT needs a CSS code for the transversal CNOT to be logical.
  if (3 * N <= O.MaxQubits && isHSelfDual(Code))
    Pool.push_back(FuzzShape::Ghz);
  if (2 * N <= O.MaxQubits && Code.isCss())
    Pool.push_back(FuzzShape::Cnot);
  return Pool[R.nextBelow(Pool.size())];
}

ConstraintSpec drawConstraint(Rng &R, size_t NumErrorVars) {
  ConstraintSpec Spec;
  if (NumErrorVars == 0 || R.nextBelow(10) < 6)
    return Spec;
  if (R.nextBelow(2) == 0) {
    Spec.K = ConstraintSpec::Kind::ForbidQubits;
    size_t Count = 1 + R.nextBelow(std::max<size_t>(1, NumErrorVars / 4));
    while (Spec.Indices.size() < Count) {
      size_t I = R.nextBelow(NumErrorVars);
      if (std::find(Spec.Indices.begin(), Spec.Indices.end(), I) ==
          Spec.Indices.end())
        Spec.Indices.push_back(I);
    }
    std::sort(Spec.Indices.begin(), Spec.Indices.end());
  } else {
    Spec.K = ConstraintSpec::Kind::AtMostOneInWindow;
    size_t Start = R.nextBelow(NumErrorVars);
    size_t Len = std::min(NumErrorVars - Start, 2 + R.nextBelow(4));
    for (size_t I = 0; I != Len; ++I)
      Spec.Indices.push_back(Start + I);
  }
  return Spec;
}

} // namespace

FuzzCase veriqec::testing::generateFuzzCase(uint64_t Seed,
                                            const FuzzerOptions &O) {
  Rng R(Seed ^ 0x76657269716563ull); // "veriqec"
  FuzzCase C;
  C.Seed = Seed;
  C.Code = drawCode(R, O, Seed);
  C.Shape = drawShape(R, C.Code, O);
  C.ErrorKind = static_cast<PauliKind>(1 + R.nextBelow(3));
  C.Basis = R.nextBool() ? LogicalBasis::X : LogicalBasis::Z;
  uint32_t MaxT = std::max<uint32_t>(1, O.MaxErrorBudget);
  C.MaxErrors = 1 + static_cast<uint32_t>(R.nextBelow(MaxT));
  C.Cycles = 2;

  switch (C.Shape) {
  case FuzzShape::Memory:
    C.Scn = makeMemoryScenario(C.Code, C.ErrorKind, C.Basis, C.MaxErrors);
    break;
  case FuzzShape::LogicalH:
    C.Scn = makeLogicalHScenario(C.Code, C.ErrorKind, C.Basis, C.MaxErrors);
    break;
  case FuzzShape::MultiCycle:
    C.Scn = makeMultiCycleScenario(C.Code, C.ErrorKind, C.Basis, C.Cycles,
                                   C.MaxErrors);
    break;
  case FuzzShape::CorrectionStep:
    C.Scn = makeCorrectionStepErrorScenario(C.Code, C.ErrorKind, C.Basis,
                                            C.MaxErrors);
    break;
  case FuzzShape::Ghz:
    C.Scn = makeGhzScenario(C.Code, C.ErrorKind, C.Basis, C.MaxErrors);
    break;
  case FuzzShape::Cnot:
    C.Scn = makeLogicalCnotScenario(C.Code, C.ErrorKind, C.Basis,
                                    C.MaxErrors);
    break;
  }
  C.Constraint = drawConstraint(R, C.Scn.ErrorVars.size());
  return C;
}
