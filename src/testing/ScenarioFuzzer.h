//===- testing/ScenarioFuzzer.h - Random scenario generation ----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generation of verification scenarios for the
/// differential harness: a random stabilizer code (registry classics plus
/// freshly drawn random CSS codes), a random fault-tolerance scenario
/// shape, a random injected Pauli letter, logical basis, error budget and
/// optionally a random user error constraint. Every case is a pure
/// function of its 64-bit seed, so any failure the harness reports is
/// reproducible from the seed alone.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_TESTING_SCENARIOFUZZER_H
#define VERIQEC_TESTING_SCENARIOFUZZER_H

#include "qec/Codes.h"
#include "smt/BoolExpr.h"
#include "testing/ReferenceExecutor.h"
#include "verifier/Scenarios.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace veriqec::testing {

/// The scenario families the fuzzer draws from (the Pauli-error shapes of
/// verifier/Scenarios; the non-Pauli T shape is excluded because the
/// tableau-based oracles cannot replay non-Clifford errors).
enum class FuzzShape {
  Memory,
  LogicalH,
  MultiCycle,
  CorrectionStep,
  Ghz,
  Cnot,
};

const char *shapeName(FuzzShape Shape);

/// A randomly drawn user error constraint, kept as data so the same
/// restriction can be handed to the VC builder (as a BoolExpr) and to the
/// oracles (as an input predicate).
struct ConstraintSpec {
  enum class Kind { None, ForbidQubits, AtMostOneInWindow };
  Kind K = Kind::None;
  std::vector<size_t> Indices; ///< indices into Scenario::ErrorVars

  /// VC-side form, closed over the error variable names of \p S.
  std::function<smt::ExprRef(smt::BoolContext &)>
  builder(const Scenario &S) const;

  /// Oracle-side form (empty function when K == None).
  InputPredicate predicate(const Scenario &S) const;

  std::string describe() const;
};

struct FuzzerOptions {
  size_t MaxQubits = 9;        ///< cap on the scenario's *total* qubits
  uint32_t MaxErrorBudget = 2; ///< cap on the drawn MaxErrors
  bool RandomCodes = true;     ///< also draw fresh random CSS codes
};

/// One generated case: the ingredients plus the built scenario.
struct FuzzCase {
  uint64_t Seed = 0;
  StabilizerCode Code;
  FuzzShape Shape = FuzzShape::Memory;
  PauliKind ErrorKind = PauliKind::Y;
  LogicalBasis Basis = LogicalBasis::Z;
  uint32_t MaxErrors = 1;
  size_t Cycles = 2;
  ConstraintSpec Constraint;
  Scenario Scn;

  std::string describe() const;
};

/// Deterministically generates the case of \p Seed.
FuzzCase generateFuzzCase(uint64_t Seed, const FuzzerOptions &O = {});

/// True if transversal H maps the stabilizer group of \p Code to itself
/// (the requirement of the logical-H scenario builder).
bool isHSelfDual(const StabilizerCode &Code);

} // namespace veriqec::testing

#endif // VERIQEC_TESTING_SCENARIOFUZZER_H
