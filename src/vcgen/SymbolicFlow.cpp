//===- vcgen/SymbolicFlow.cpp - Symbolic stabilizer execution --------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "vcgen/SymbolicFlow.h"

#include "support/Assert.h"

using namespace veriqec;

namespace {

/// Symplectic row [x | z] of a Pauli.
BitVector rowOf(const Pauli &P) {
  size_t N = P.numQubits();
  BitVector Row(2 * N);
  for (size_t Q = P.xBits().findFirst(); Q < N; Q = P.xBits().findNext(Q + 1))
    Row.set(Q);
  for (size_t Q = P.zBits().findFirst(); Q < N; Q = P.zBits().findNext(Q + 1))
    Row.set(N + Q);
  return Row;
}

/// True if the taint is transparent to \p P: P acts as I or as the taint
/// axis on the tainted qubit, so U^dagger P U = P for the pi/4 rotation U.
bool taintTransparent(const Pauli &P, int TaintQubit, PauliKind Axis) {
  if (TaintQubit < 0)
    return true;
  PauliKind K = P.kindAt(static_cast<size_t>(TaintQubit));
  return K == PauliKind::I || K == Axis;
}

} // namespace

void SymbolicFlow::addInitialGenerator(Pauli Base, PhaseExpr Phase) {
  assert(Base.numQubits() == N && "generator size mismatch");
  assert(Base.isHermitian() && !Base.signBit() && "expect +1 Hermitian base");
  Gens.push_back({std::move(Base), std::move(Phase), -1});
}

uint32_t SymbolicFlow::freshBit(const std::string &Name) {
  uint32_t Version = VersionOf[Name]++;
  std::string Unique =
      Version == 0 ? Name : Name + "#" + std::to_string(Version);
  uint32_t Id = Vars.id(Unique);
  Env[Name] = PhaseExpr::variable(Id);
  return Id;
}

std::optional<PhaseExpr> SymbolicFlow::toPhase(const CExprPtr &E) {
  if (!E)
    return PhaseExpr(false);
  switch (E->Kind) {
  case CExprKind::Const:
    return PhaseExpr((E->Value & 1) != 0);
  case CExprKind::Var: {
    auto It = Env.find(E->Name);
    if (It != Env.end())
      return It->second;
    // First reference introduces the symbolic bit.
    uint32_t Id = Vars.id(E->Name);
    Env[E->Name] = PhaseExpr::variable(Id);
    VersionOf.emplace(E->Name, 1);
    return Env[E->Name];
  }
  case CExprKind::Xor: {
    auto L = toPhase(E->Lhs), R = toPhase(E->Rhs);
    if (!L || !R)
      return std::nullopt;
    L->xorWith(*R);
    return L;
  }
  case CExprKind::Not: {
    auto L = toPhase(E->Lhs);
    if (!L)
      return std::nullopt;
    L->flip();
    return L;
  }
  case CExprKind::Eq: {
    // b == 0 / b == 1 patterns reduce to affine form.
    auto L = toPhase(E->Lhs), R = toPhase(E->Rhs);
    if (!L || !R)
      return std::nullopt;
    L->xorWith(*R);
    L->flip(); // equality is the complement of XOR on bits
    return L;
  }
  default:
    return std::nullopt;
  }
}

void SymbolicFlow::conjugateAll(GateKind Kind, size_t Q0, size_t Q1) {
  for (SymGen &G : Gens) {
    bool TouchesTaint =
        G.TaintQubit >= 0 &&
        (Q0 == static_cast<size_t>(G.TaintQubit) ||
         (isTwoQubitGate(Kind) && Q1 == static_cast<size_t>(G.TaintQubit)));
    if (TouchesTaint) {
      // C (U g U^dag) C^dag = (C U C^dag)(C g C^dag)(C U C^dag)^dag: for
      // a single-qubit Clifford C the rotation axis follows C; a
      // two-qubit gate would smear the taint and is unsupported.
      if (isTwoQubitGate(Kind))
        fatalError("two-qubit gate applied to a tainted qubit");
      Pauli Axis = Pauli::single(G.Base.numQubits(),
                                 static_cast<size_t>(G.TaintQubit),
                                 G.TaintAxis);
      Axis.conjugate(Kind, Q0, Q1);
      G.TaintAxis = Axis.kindAt(static_cast<size_t>(G.TaintQubit));
    }
    G.Base.conjugate(Kind, Q0, Q1);
    if (G.Base.signBit()) {
      G.Base.negate();
      G.Phase.flip();
    }
  }
}

void SymbolicFlow::flipAnticommuting(const Pauli &ErrorOp,
                                     const PhaseExpr &Guard) {
  for (SymGen &G : Gens) {
    // For tainted generators the commutation test applies to the base;
    // Pauli errors on the taint qubit itself are rejected upstream.
    if (!G.Base.commutesWith(ErrorOp))
      G.Phase.xorWith(Guard);
  }
}

void SymbolicFlow::applyTaint(size_t Qubit) {
  for (SymGen &G : Gens) {
    PauliKind K = G.Base.kindAt(Qubit);
    if (K == PauliKind::X || K == PauliKind::Y) {
      if (G.TaintQubit >= 0) {
        fatalError("multiple taints on one generator are unsupported");
      }
      G.TaintQubit = static_cast<int>(Qubit);
    }
  }
}

bool SymbolicFlow::applyGuardedGate(const StmtPtr &S) {
  std::optional<PhaseExpr> Guard = toPhase(S->Guard);
  if (!Guard) {
    Error = "guard is not a GF(2)-affine expression";
    return false;
  }
  CMem Empty;
  size_t Q = static_cast<size_t>(S->Qubit0->evaluate(Empty));

  // Pauli errors support fully symbolic guards: only phases move.
  if (S->Gate == GateKind::X || S->Gate == GateKind::Y ||
      S->Gate == GateKind::Z) {
    PauliKind K = S->Gate == GateKind::X   ? PauliKind::X
                  : S->Gate == GateKind::Y ? PauliKind::Y
                                           : PauliKind::Z;
    for (const SymGen &G : Gens)
      if (G.TaintQubit == static_cast<int>(Q) && K != G.TaintAxis) {
        Error = "Pauli error on a tainted qubit is unsupported";
        return false;
      }
    flipAnticommuting(Pauli::single(N, Q, K), *Guard);
    return true;
  }

  // Non-Pauli errors need a constant guard (the verifier enumerates
  // error locations, mirroring the paper's Section 5.2.2 treatment).
  if (!Guard->isConstant()) {
    Error = "non-Pauli error guards must be constant (enumerate locations)";
    return false;
  }
  if (!Guard->constantValue())
    return true; // error absent
  if (S->Gate == GateKind::T || S->Gate == GateKind::Tdg) {
    applyTaint(Q);
    return true;
  }
  // Clifford error (e.g. H): ordinary conjugation.
  conjugateAll(S->Gate, Q, ~size_t{0});
  return true;
}

bool SymbolicFlow::execMeasure(const StmtPtr &S) {
  CMem Empty;
  Pauli P = S->Measured.resolve(N, Empty);
  std::optional<PhaseExpr> PhaseBit = toPhase(S->Measured.PhaseBit);
  if (!PhaseBit) {
    Error = "measurement phase bit is not GF(2)-affine";
    return false;
  }

  // 1. Try a deterministic binding: P expressible over untainted bases.
  BitMatrix Untainted(0, 2 * N);
  std::vector<size_t> UntaintedIdx;
  for (size_t I = 0; I != Gens.size(); ++I)
    if (Gens[I].TaintQubit < 0) {
      Untainted.appendRow(rowOf(Gens[I].Base));
      UntaintedIdx.push_back(I);
    }
  if (std::optional<BitVector> Sel = Untainted.expressInRowSpace(rowOf(P))) {
    Pauli Product(N);
    PhaseExpr Phase = *PhaseBit;
    for (size_t R = Sel->findFirst(); R < Sel->size();
         R = Sel->findNext(R + 1)) {
      Product *= Gens[UntaintedIdx[R]].Base;
      Phase.xorWith(Gens[UntaintedIdx[R]].Phase);
    }
    assert(Product.sameLetters(P) && "selector must rebuild the letters");
    if (Product.signBit())
      Phase.flip();
    uint32_t SVar = freshBit(S->Targets[0]);
    Defs.push_back({SVar, std::move(Phase)});
    return true;
  }

  // 2. Random outcome. First handle untainted anticommuting generators by
  // the standard anchor update.
  size_t Anchor = Gens.size();
  for (size_t I = 0; I != Gens.size(); ++I)
    if (Gens[I].TaintQubit < 0 && !Gens[I].Base.commutesWith(P)) {
      Anchor = I;
      break;
    }
  uint32_t SVar = freshBit(S->Targets[0]);
  FreeVars.push_back(SVar);
  PhaseExpr NewPhase = PhaseExpr::variable(SVar);
  NewPhase.xorWith(*PhaseBit);

  if (Anchor != Gens.size()) {
    // All taints must be transparent to P here; a taint hit is resolved
    // by the pivot path below instead.
    for (const SymGen &G : Gens)
      if (!taintTransparent(P, G.TaintQubit, G.TaintAxis)) {
        Error = "measurement mixes an anticommuting Pauli with a taint";
        return false;
      }
    const SymGen AnchorGen = Gens[Anchor];
    for (size_t I = 0; I != Gens.size(); ++I) {
      if (I == Anchor || Gens[I].Base.commutesWith(P))
        continue;
      Pauli NewBase = Gens[I].Base * AnchorGen.Base;
      PhaseExpr Phase = Gens[I].Phase;
      Phase.xorWith(AnchorGen.Phase);
      if (NewBase.signBit()) {
        NewBase.negate();
        Phase.flip();
      }
      Gens[I].Base = std::move(NewBase);
      Gens[I].Phase = std::move(Phase);
      // Taint survives the multiplication (the anchor is I/Z on the
      // taint qubit by the untainted invariant).
    }
    Gens[Anchor] = {P, std::move(NewPhase), -1};
    return true;
  }

  // 3. Taint pivot path: P needs a tainted generator. Multiply sibling
  // taints into the pivot's cosets so the pivot is the unique taint, then
  // collapse the pivot to (-1)^s P.
  size_t Pivot = Gens.size();
  for (size_t I = 0; I != Gens.size(); ++I) {
    if (Gens[I].TaintQubit < 0)
      continue;
    BitMatrix Extended = Untainted;
    Extended.appendRow(rowOf(Gens[I].Base));
    if (Extended.rowSpaceContains(rowOf(P))) {
      Pivot = I;
      break;
    }
  }
  if (Pivot == Gens.size()) {
    Error = "measured operator is independent of the tracked group";
    return false;
  }
  const SymGen PivotGen = Gens[Pivot];
  for (size_t I = 0; I != Gens.size(); ++I) {
    if (I == Pivot || Gens[I].TaintQubit != PivotGen.TaintQubit ||
        Gens[I].TaintQubit < 0)
      continue;
    if (Gens[I].TaintAxis != PivotGen.TaintAxis) {
      Error = "sibling taints with mismatched axes are unsupported";
      return false;
    }
    // Both tainted at the same qubit with non-axis letters: the product
    // acts as I or the axis there and the taint cancels
    // (U (ab) U^dagger = ab).
    Pauli NewBase = Gens[I].Base * PivotGen.Base;
    PhaseExpr Phase = Gens[I].Phase;
    Phase.xorWith(PivotGen.Phase);
    if (NewBase.signBit()) {
      NewBase.negate();
      Phase.flip();
    }
    assert(taintTransparent(NewBase, PivotGen.TaintQubit,
                            PivotGen.TaintAxis) &&
           "sibling taint must cancel against the pivot");
    Gens[I] = {std::move(NewBase), std::move(Phase), -1};
    if (!Gens[I].Base.commutesWith(P)) {
      Error = "untainted residue anticommutes with the measured operator";
      return false;
    }
  }
  Gens[Pivot] = {P, std::move(NewPhase), -1};
  return true;
}

bool SymbolicFlow::exec(const StmtPtr &S) {
  CMem Empty;
  switch (S->Kind) {
  case StmtKind::Skip:
    return true;
  case StmtKind::Seq:
    for (const StmtPtr &Child : S->Body)
      if (!exec(Child))
        return false;
    return true;
  case StmtKind::Unitary: {
    if (!isCliffordGate(S->Gate)) {
      Error = "plain T gates are unsupported in the symbolic flow (use "
              "guarded T errors)";
      return false;
    }
    size_t Q0 = static_cast<size_t>(S->Qubit0->evaluate(Empty));
    size_t Q1 =
        S->Qubit1 ? static_cast<size_t>(S->Qubit1->evaluate(Empty)) : ~size_t{0};
    conjugateAll(S->Gate, Q0, Q1);
    return true;
  }
  case StmtKind::GuardedGate:
    return applyGuardedGate(S);
  case StmtKind::Assign: {
    std::optional<PhaseExpr> Value = toPhase(S->Value);
    if (!Value) {
      Error = "assignment rhs is not GF(2)-affine";
      return false;
    }
    Env[S->Targets[0]] = *Value;
    VersionOf[S->Targets[0]]++;
    return true;
  }
  case StmtKind::Measure:
    return execMeasure(S);
  case StmtKind::DecoderCall:
    // Decoder outputs are adversarial bits constrained only by the
    // contract P_f, which the verifier adds to the VC.
    for (const std::string &Out : S->Targets)
      freshBit(Out);
    return true;
  case StmtKind::If: {
    std::optional<PhaseExpr> Cond = toPhase(S->Cond);
    if (!Cond || !Cond->isConstant()) {
      Error = "if-guards must be constant in the symbolic flow (use "
              "guarded gates for conditional corrections)";
      return false;
    }
    return exec(Cond->constantValue() ? S->Body[0] : S->Body[1]);
  }
  case StmtKind::Init:
    Error = "qubit initialization inside verified fragments is unsupported";
    return false;
  case StmtKind::While:
    Error = "while loops are unsupported in the symbolic flow";
    return false;
  case StmtKind::For:
    Error = "programs must be flattened before symbolic execution";
    return false;
  }
  unreachable("unknown StmtKind");
}

FlowResult SymbolicFlow::run(const StmtPtr &Flat) {
  FlowResult Result;
  assert(Gens.size() == N && "precondition must be a full-rank group");
  if (!exec(Flat)) {
    Result.Error = Error;
    return Result;
  }
  Result.Ok = true;
  Result.Generators = Gens;
  Result.SyndromeDefs = Defs;
  Result.FreeOutcomeVars = FreeVars;
  return Result;
}
