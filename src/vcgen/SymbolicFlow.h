//===- vcgen/SymbolicFlow.h - Symbolic stabilizer execution -----*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification-condition engine. A QEC program acting on a stabilizer
/// precondition is executed symbolically: the tracked state is a full
/// generating set (code generators plus signed logical operators) whose
/// phases are GF(2)-affine expressions over the program's error /
/// correction / syndrome bits. This computes exactly the Eqn. (8) data of
/// the paper — r_i(s) + h_i(e) phase polynomials plus syndrome
/// definitions — as the forward dual of the backward wlp pass (the literal
/// backward rules live in logic/ and are cross-validated against this
/// engine and the dense semantics by the test suite).
///
/// Non-Pauli T errors are handled by per-generator taint: a generator
/// marked tainted at qubit q stands for T_q * Base * T_q^dagger (a sum of
/// Paulis). The paper's Section 5.1 case-3 heuristic — localize the taint
/// by generator multiplication, then eliminate via (P^Q)v(~P^Q)=Q — is
/// realized operationally when a syndrome measurement hits the taint: the
/// pivot is replaced by the measured Pauli with a *free* outcome variable,
/// and sibling taints are multiplied away.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_VCGEN_SYMBOLICFLOW_H
#define VERIQEC_VCGEN_SYMBOLICFLOW_H

#include "prog/Ast.h"
#include "qec/StabilizerCode.h"
#include "symbolic/PhaseExpr.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace veriqec {

/// One symbolically tracked stabilizer generator.
struct SymGen {
  Pauli Base;      ///< Hermitian, + sign; the symbolic phase lives in Phase
  PhaseExpr Phase; ///< the operator is (-1)^Phase * (taint-transform of Base)
  /// >= 0: the operator is U_q Base U_q^dagger for a non-Clifford
  /// pi/4-rotation U about TaintAxis on TaintQubit (Z for a T error; the
  /// axis follows Clifford conjugation, e.g. H turns it into X).
  int TaintQubit = -1;
  PauliKind TaintAxis = PauliKind::Z;
};

/// A recorded syndrome definition s = Def (only for deterministic
/// outcomes; genuinely random outcomes stay as free variables).
struct SyndromeDef {
  uint32_t Var;
  PhaseExpr Def;
};

/// Outcome of running the flow.
struct FlowResult {
  bool Ok = false;
  std::string Error;
  std::vector<SymGen> Generators; ///< final state (rank n)
  std::vector<SyndromeDef> SyndromeDefs;
  std::vector<uint32_t> FreeOutcomeVars; ///< genuinely random measurements
};

/// Forward symbolic executor over a flattened (loop-free) program.
class SymbolicFlow {
public:
  explicit SymbolicFlow(size_t NumQubits) : N(NumQubits) {}

  VarTable &vars() { return Vars; }

  /// Installs the precondition: a full-rank generating set of the initial
  /// state (n-k code generators with phase 0 plus k signed logicals,
  /// typically with symbolic phase bits b_k).
  void addInitialGenerator(Pauli Base, PhaseExpr Phase);

  /// Runs a flattened program. Supported statements: Clifford unitaries,
  /// guarded Pauli errors (symbolic guards), guarded Clifford/T errors
  /// with *constant* guards, assignments over GF(2)-affine expressions,
  /// Pauli measurements, decoder calls (outputs become fresh symbolic
  /// bits), if-statements with constant guards, skip and seq.
  FlowResult run(const StmtPtr &Flat);

private:
  bool exec(const StmtPtr &S);
  bool execMeasure(const StmtPtr &S);
  bool applyGuardedGate(const StmtPtr &S);
  void conjugateAll(GateKind Kind, size_t Q0, size_t Q1);
  void flipAnticommuting(const Pauli &ErrorOp, const PhaseExpr &Guard);
  void applyTaint(size_t Qubit);

  /// Converts a classical guard/assignment expression to a GF(2)-affine
  /// phase expression (resolving prior assignments through Env).
  std::optional<PhaseExpr> toPhase(const CExprPtr &E);

  /// Fresh symbolic bit carrying the *current* value of program variable
  /// \p Name (versioned so re-assignment works).
  uint32_t freshBit(const std::string &Name);

  size_t N;
  VarTable Vars;
  std::vector<SymGen> Gens;
  std::vector<SyndromeDef> Defs;
  std::vector<uint32_t> FreeVars;
  std::unordered_map<std::string, PhaseExpr> Env; ///< classical bindings
  std::unordered_map<std::string, uint32_t> VersionOf;
  std::string Error;
};

} // namespace veriqec

#endif // VERIQEC_VCGEN_SYMBOLICFLOW_H
