//===- vcgen/VcBuilder.h - VC assembly and reduction ------------*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the output of the symbolic flow into a classical verification
/// condition (Section 5.1): every postcondition generator is re-expressed
/// over the final generating set by GF(2) symplectic elimination
/// (Proposition 5.2) yielding one phase equation per generator; the
/// negated VC — assumptions (error bound, syndrome definitions, decoder
/// contract P_f, user constraints) plus the violation of some phase
/// equation — goes to the SAT layer. UNSAT means verified; a model is a
/// concrete counterexample error pattern.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_VCGEN_VCBUILDER_H
#define VERIQEC_VCGEN_VCBUILDER_H

#include "smt/BoolExpr.h"
#include "vcgen/SymbolicFlow.h"

#include <functional>
#include <string>
#include <vector>

namespace veriqec {

/// Postcondition generator: the state must be stabilized by
/// (-1)^Phase * Base.
struct TargetGen {
  Pauli Base;
  PhaseExpr Phase;
};

/// Sum of Terms (mod 2) must equal the bit variable EqualsVar — the
/// "corrections reproduce the syndrome" half of the decoder contract P_f.
struct ParityConstraint {
  std::vector<std::string> Terms;
  std::string EqualsVar;
};

/// sum(Lhs) + sum(a|b over LhsPairs) <= sum(Rhs) over bit variables —
/// the minimum-weight half of the decoder contract (sum of corrections
/// <= sum of errors). Pairs express per-qubit Pauli support |x_q or z_q|
/// for non-CSS decoders.
struct WeightConstraint {
  std::vector<std::string> Lhs;
  std::vector<std::pair<std::string, std::string>> LhsPairs;
  std::vector<std::string> Rhs;
  /// When UseConstant is set, the bound is the constant RhsConstant
  /// instead of sum(Rhs) (used by fixed-error scenarios).
  bool UseConstant = false;
  uint32_t RhsConstant = 0;
};

/// Full specification of one verification condition.
struct VcSpec {
  const VarTable *Vars = nullptr;
  FlowResult Flow;
  std::vector<TargetGen> Targets;

  std::vector<std::string> ErrorVars; ///< all error indicator bits
  uint32_t MaxTotalErrors = ~uint32_t{0}; ///< sum(ErrorVars) <= bound

  std::vector<ParityConstraint> ParityConstraints;
  std::vector<WeightConstraint> WeightConstraints;

  /// Optional extra user constraint (the Section 7.2 locality /
  /// discreteness style restrictions), built against the VC's context.
  std::function<smt::ExprRef(smt::BoolContext &)> ExtraConstraint;
};

/// Assembled (negated) VC ready for the SAT layer.
struct BuiltVc {
  bool Ok = false;
  std::string Error;
  smt::ExprRef NegatedVc = 0; ///< SAT = counterexample, UNSAT = verified
  /// NegatedVc without the total-error-budget cardinality atom. The
  /// engine encodes this one and enforces sum(BudgetVars) <= BudgetBound
  /// through the assumption-activated weight layer instead, so the same
  /// encoding (and a worker's learnt clauses) serves every bound.
  /// Equal to NegatedVc when the spec carries no budget.
  smt::ExprRef NegatedVcBase = 0;
  /// Error indicator variables under the budget; empty = no budget.
  std::vector<std::string> BudgetVars;
  uint32_t BudgetBound = ~uint32_t{0};
  size_t NumGoals = 0;
};

/// Builds the negated VC into \p Ctx.
BuiltVc buildVc(smt::BoolContext &Ctx, const VcSpec &Spec);

} // namespace veriqec

#endif // VERIQEC_VCGEN_VCBUILDER_H
