//===- verifier/Scenarios.cpp - Fault-tolerant scenario builders -----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "verifier/Scenarios.h"

#include "support/Assert.h"

using namespace veriqec;

namespace {

CExprPtr num(int64_t V) { return ClassicalExpr::constant(V); }
CExprPtr var(const std::string &Name) { return ClassicalExpr::var(Name); }

/// Embeds a block-local Pauli at qubit offset \p Offset of a
/// \p Total-qubit system.
Pauli embed(const Pauli &P, size_t Offset, size_t Total) {
  Pauli Out(Total);
  for (size_t Q = 0; Q != P.numQubits(); ++Q)
    Out.setKind(Offset + Q, P.kindAt(Q));
  Out = Out.abs();
  if (P.signBit())
    Out.negate();
  return Out;
}

/// Program Pauli (constant indices) from a concrete Pauli.
ProgPauli progPauliOf(const Pauli &P) {
  ProgPauli Out;
  for (size_t Q = 0; Q != P.numQubits(); ++Q) {
    PauliKind K = P.kindAt(Q);
    if (K != PauliKind::I)
      Out.Factors.push_back({K, num(static_cast<int64_t>(Q))});
  }
  return Out;
}

/// One error-injection sweep: [Prefix_q] q *= Kind for every qubit of the
/// block. Appends the created variable names to \p ErrorVars.
void appendErrorSweep(std::vector<StmtPtr> &Stmts, PauliKind Kind,
                      size_t Offset, size_t Count, const std::string &Prefix,
                      std::vector<std::string> &ErrorVars) {
  GateKind G = Kind == PauliKind::X   ? GateKind::X
               : Kind == PauliKind::Y ? GateKind::Y
                                      : GateKind::Z;
  for (size_t Q = 0; Q != Count; ++Q) {
    std::string Name = Prefix + std::to_string(Q);
    ErrorVars.push_back(Name);
    Stmts.push_back(Stmt::guardedGate(var(Name), G,
                                      num(static_cast<int64_t>(Offset + Q))));
  }
}

/// The syndrome-measure / decode / correct cycle of Table 1, for one code
/// block at \p Offset inside a \p Total-qubit system. Variable names are
/// tag-qualified so multiple rounds and blocks coexist.
struct RoundParts {
  std::vector<StmtPtr> Stmts;
  std::vector<ParityConstraint> Parity;
  std::vector<std::string> XCorrVars; ///< X-correction bits (fix Z checks)
  std::vector<std::string> ZCorrVars;
};

RoundParts makeRound(const StabilizerCode &Code, size_t Offset, size_t Total,
                     const std::string &Tag) {
  RoundParts Out;
  size_t N = Code.NumQubits;
  std::vector<std::string> SyndromeVars;

  // Syndrome measurements s<tag><i> := meas[g_i].
  for (size_t I = 0; I != Code.Generators.size(); ++I) {
    std::string SVar = "s" + Tag + "_" + std::to_string(I);
    SyndromeVars.push_back(SVar);
    Out.Stmts.push_back(Stmt::measure(
        SVar, progPauliOf(embed(Code.Generators[I], Offset, Total))));
  }

  // Decoder call(s): outputs are the correction bits.
  std::vector<std::string> XCorr, ZCorr;
  for (size_t Q = 0; Q != N; ++Q) {
    XCorr.push_back("x" + Tag + "_" + std::to_string(Q));
    ZCorr.push_back("z" + Tag + "_" + std::to_string(Q));
  }
  std::vector<CExprPtr> AllSyndromes;
  for (const std::string &S : SyndromeVars)
    AllSyndromes.push_back(var(S));
  Out.Stmts.push_back(Stmt::decoderCall(XCorr, "decode_x" + Tag,
                                        AllSyndromes));
  Out.Stmts.push_back(Stmt::decoderCall(ZCorr, "decode_z" + Tag,
                                        AllSyndromes));

  // Correction sweeps: [x_q] q *= X; [z_q] q *= Z.
  for (size_t Q = 0; Q != N; ++Q)
    Out.Stmts.push_back(Stmt::guardedGate(
        var(XCorr[Q]), GateKind::X, num(static_cast<int64_t>(Offset + Q))));
  for (size_t Q = 0; Q != N; ++Q)
    Out.Stmts.push_back(Stmt::guardedGate(
        var(ZCorr[Q]), GateKind::Z, num(static_cast<int64_t>(Offset + Q))));

  // Contract, part 1 (syndrome match): for generator g_i, the corrections
  // anticommuting with it must reproduce s_i.
  for (size_t I = 0; I != Code.Generators.size(); ++I) {
    const Pauli &G = Code.Generators[I];
    ParityConstraint P;
    for (size_t Q = 0; Q != N; ++Q) {
      PauliKind K = G.kindAt(Q);
      if (K == PauliKind::Z || K == PauliKind::Y)
        P.Terms.push_back(XCorr[Q]); // X corrections flip Z/Y checks
      if (K == PauliKind::X || K == PauliKind::Y)
        P.Terms.push_back(ZCorr[Q]);
    }
    P.EqualsVar = SyndromeVars[I];
    if (!P.Terms.empty())
      Out.Parity.push_back(std::move(P));
  }

  Out.XCorrVars = std::move(XCorr);
  Out.ZCorrVars = std::move(ZCorr);
  return Out;
}

/// Minimum-weight contract for one round against the given error bits.
void appendWeights(std::vector<WeightConstraint> &Weights,
                   const StabilizerCode &Code, const RoundParts &Round,
                   const std::vector<std::string> &ErrorVars) {
  if (Code.isCss()) {
    Weights.push_back({Round.XCorrVars, {}, ErrorVars});
    Weights.push_back({Round.ZCorrVars, {}, ErrorVars});
    return;
  }
  // Non-CSS: bound the Pauli support |x_q or z_q|.
  WeightConstraint W;
  for (size_t Q = 0; Q != Round.XCorrVars.size(); ++Q)
    W.LhsPairs.emplace_back(Round.XCorrVars[Q], Round.ZCorrVars[Q]);
  W.Rhs = ErrorVars;
  Weights.push_back(std::move(W));
}

/// Pre/postcondition: the code generators (phase 0) plus the logical
/// operators of the chosen basis with symbolic phase bits b<j>.
std::vector<GenSpec> codeStateSpec(const StabilizerCode &Code, size_t Offset,
                                   size_t Total, LogicalBasis Basis,
                                   const std::string &PhasePrefix) {
  std::vector<GenSpec> Out;
  for (const Pauli &G : Code.Generators)
    Out.push_back({embed(G, Offset, Total), "", false});
  const std::vector<Pauli> &Logicals =
      Basis == LogicalBasis::Z ? Code.LogicalZ : Code.LogicalX;
  for (size_t J = 0; J != Logicals.size(); ++J)
    Out.push_back({embed(Logicals[J], Offset, Total),
                   PhasePrefix + std::to_string(J), false});
  return Out;
}

/// Applies a physical circuit (list of gates) to a GenSpec list,
/// conjugating the bases and folding signs into the constant phase.
struct PhysGate {
  GateKind Kind;
  size_t Q0;
  size_t Q1 = ~size_t{0};
};

std::vector<GenSpec> conjugateSpecs(std::vector<GenSpec> Specs,
                                    const std::vector<PhysGate> &Circuit) {
  for (GenSpec &S : Specs) {
    for (const PhysGate &G : Circuit)
      S.Base.conjugate(G.Kind, G.Q0, G.Q1);
    if (S.Base.signBit()) {
      S.Base.negate();
      S.PhaseConstant = !S.PhaseConstant;
    }
  }
  return Specs;
}

} // namespace

Scenario veriqec::makeMemoryScenario(const StabilizerCode &Code,
                                     PauliKind ErrorKind, LogicalBasis Basis,
                                     uint32_t MaxErrors) {
  size_t N = Code.NumQubits;
  Scenario S;
  S.Name = Code.Name + "-memory";
  S.NumQubits = N;

  std::vector<StmtPtr> Stmts;
  appendErrorSweep(Stmts, ErrorKind, 0, N, "e", S.ErrorVars);
  RoundParts Round = makeRound(Code, 0, N, "");
  Stmts.insert(Stmts.end(), Round.Stmts.begin(), Round.Stmts.end());
  S.Program = Stmt::flatten(Stmt::seq(std::move(Stmts)));

  S.Pre = codeStateSpec(Code, 0, N, Basis, "b");
  S.Post = S.Pre;
  S.MaxErrors = MaxErrors;
  S.Parity = Round.Parity;
  appendWeights(S.Weights, Code, Round, S.ErrorVars);
  return S;
}

Scenario veriqec::makeLogicalHScenario(const StabilizerCode &Code,
                                       PauliKind ErrorKind,
                                       LogicalBasis Basis,
                                       uint32_t MaxErrors) {
  size_t N = Code.NumQubits;
  Scenario S;
  S.Name = Code.Name + "-logical-H";
  S.NumQubits = N;

  std::vector<StmtPtr> Stmts;
  std::vector<PhysGate> Transversal;
  appendErrorSweep(Stmts, ErrorKind, 0, N, "ep", S.ErrorVars);
  for (size_t Q = 0; Q != N; ++Q) {
    Stmts.push_back(Stmt::unitary1(GateKind::H, num(static_cast<int64_t>(Q))));
    Transversal.push_back({GateKind::H, Q});
  }
  appendErrorSweep(Stmts, ErrorKind, 0, N, "e", S.ErrorVars);
  RoundParts Round = makeRound(Code, 0, N, "");
  Stmts.insert(Stmts.end(), Round.Stmts.begin(), Round.Stmts.end());
  S.Program = Stmt::flatten(Stmt::seq(std::move(Stmts)));

  S.Pre = codeStateSpec(Code, 0, N, Basis, "b");
  S.Post = conjugateSpecs(S.Pre, Transversal);
  S.MaxErrors = MaxErrors;
  S.Parity = Round.Parity;
  appendWeights(S.Weights, Code, Round, S.ErrorVars);
  return S;
}

Scenario veriqec::makeNonPauliErrorScenario(const StabilizerCode &Code,
                                            GateKind Error, size_t Location,
                                            LogicalBasis Basis) {
  assert((Error == GateKind::T || Error == GateKind::H ||
          Error == GateKind::S) &&
         "non-Pauli error scenario expects a non-Pauli gate");
  size_t N = Code.NumQubits;
  Scenario S;
  S.Name = Code.Name + "-" + gateName(Error) + "-error-at-" +
           std::to_string(Location);
  S.NumQubits = N;

  std::vector<StmtPtr> Stmts;
  std::vector<PhysGate> Transversal;
  // The propagated non-Pauli error at a fixed location (guard = true),
  // mirroring the paper's e_p5 = 1 case study.
  Stmts.push_back(Stmt::guardedGate(ClassicalExpr::boolean(true), Error,
                                    num(static_cast<int64_t>(Location))));
  for (size_t Q = 0; Q != N; ++Q) {
    Stmts.push_back(Stmt::unitary1(GateKind::H, num(static_cast<int64_t>(Q))));
    Transversal.push_back({GateKind::H, Q});
  }
  RoundParts Round = makeRound(Code, 0, N, "");
  Stmts.insert(Stmts.end(), Round.Stmts.begin(), Round.Stmts.end());
  S.Program = Stmt::flatten(Stmt::seq(std::move(Stmts)));

  S.Pre = codeStateSpec(Code, 0, N, Basis, "b");
  S.Post = conjugateSpecs(S.Pre, Transversal);
  S.Parity = Round.Parity;
  // Minimum-weight: corrections bounded by the single injected error.
  if (Code.isCss()) {
    WeightConstraint WX;
    WX.Lhs = Round.XCorrVars;
    WX.UseConstant = true;
    WX.RhsConstant = 1;
    WeightConstraint WZ;
    WZ.Lhs = Round.ZCorrVars;
    WZ.UseConstant = true;
    WZ.RhsConstant = 1;
    S.Weights.push_back(std::move(WX));
    S.Weights.push_back(std::move(WZ));
  } else {
    WeightConstraint W;
    for (size_t Q = 0; Q != N; ++Q)
      W.LhsPairs.emplace_back(Round.XCorrVars[Q], Round.ZCorrVars[Q]);
    W.UseConstant = true;
    W.RhsConstant = 1;
    S.Weights.push_back(std::move(W));
  }
  S.MaxErrors = ~uint32_t{0}; // no symbolic error indicators in this scenario
  return S;
}

Scenario veriqec::makeMultiCycleScenario(const StabilizerCode &Code,
                                         PauliKind ErrorKind,
                                         LogicalBasis Basis, size_t Cycles,
                                         uint32_t MaxErrors) {
  size_t N = Code.NumQubits;
  Scenario S;
  S.Name = Code.Name + "-" + std::to_string(Cycles) + "cycles";
  S.NumQubits = N;

  std::vector<StmtPtr> Stmts;
  for (size_t C = 0; C != Cycles; ++C) {
    std::string Tag = "c" + std::to_string(C);
    appendErrorSweep(Stmts, ErrorKind, 0, N, "e" + Tag + "_", S.ErrorVars);
    RoundParts Round = makeRound(Code, 0, N, Tag);
    Stmts.insert(Stmts.end(), Round.Stmts.begin(), Round.Stmts.end());
    S.Parity.insert(S.Parity.end(), Round.Parity.begin(), Round.Parity.end());
    appendWeights(S.Weights, Code, Round, S.ErrorVars);
  }
  S.Program = Stmt::flatten(Stmt::seq(std::move(Stmts)));
  S.Pre = codeStateSpec(Code, 0, N, Basis, "b");
  S.Post = S.Pre;
  S.MaxErrors = MaxErrors;
  return S;
}

Scenario veriqec::makeCorrectionStepErrorScenario(const StabilizerCode &Code,
                                                  PauliKind ErrorKind,
                                                  LogicalBasis Basis,
                                                  uint32_t MaxErrors) {
  size_t N = Code.NumQubits;
  Scenario S;
  S.Name = Code.Name + "-correction-step-error";
  S.NumQubits = N;

  std::vector<StmtPtr> Stmts;
  appendErrorSweep(Stmts, ErrorKind, 0, N, "e", S.ErrorVars);
  std::vector<std::string> FirstRoundErrors = S.ErrorVars;

  // Round a, but with errors injected between measurement and correction:
  // build the round, then splice the extra error sweep before the
  // correction statements (the first Generators.size() + 2 statements are
  // measurement + the two decoder calls).
  RoundParts RoundA = makeRound(Code, 0, N, "a");
  size_t SpliceAt = Code.Generators.size() + 2;
  std::vector<StmtPtr> RoundAStmts(RoundA.Stmts.begin(),
                                   RoundA.Stmts.begin() + SpliceAt);
  std::vector<std::string> MidErrors;
  appendErrorSweep(RoundAStmts, ErrorKind, 0, N, "f", MidErrors);
  RoundAStmts.insert(RoundAStmts.end(), RoundA.Stmts.begin() + SpliceAt,
                     RoundA.Stmts.end());
  Stmts.insert(Stmts.end(), RoundAStmts.begin(), RoundAStmts.end());

  // Round b cleans up the residual.
  RoundParts RoundB = makeRound(Code, 0, N, "b");
  Stmts.insert(Stmts.end(), RoundB.Stmts.begin(), RoundB.Stmts.end());

  S.Program = Stmt::flatten(Stmt::seq(std::move(Stmts)));
  S.Pre = codeStateSpec(Code, 0, N, Basis, "b");
  S.Post = S.Pre;

  S.Parity = RoundA.Parity;
  S.Parity.insert(S.Parity.end(), RoundB.Parity.begin(), RoundB.Parity.end());
  // Round a's decoder sees only the pre-measurement errors; round b's may
  // respond to everything.
  appendWeights(S.Weights, Code, RoundA, FirstRoundErrors);
  S.ErrorVars.insert(S.ErrorVars.end(), MidErrors.begin(), MidErrors.end());
  appendWeights(S.Weights, Code, RoundB, S.ErrorVars);
  S.MaxErrors = MaxErrors;
  return S;
}

namespace {

/// Shared skeleton for the multi-block logical-circuit scenarios.
Scenario makeBlockCircuitScenario(const StabilizerCode &Code,
                                  size_t NumBlocks,
                                  const std::vector<PhysGate> &LogicalCircuit,
                                  PauliKind ErrorKind, LogicalBasis Basis,
                                  uint32_t MaxErrors, std::string Name,
                                  bool PropagationErrorsOnBlock0) {
  size_t N = Code.NumQubits;
  size_t Total = N * NumBlocks;
  Scenario S;
  S.Name = std::move(Name);
  S.NumQubits = Total;

  std::vector<StmtPtr> Stmts;
  if (PropagationErrorsOnBlock0)
    appendErrorSweep(Stmts, ErrorKind, 0, N, "ep", S.ErrorVars);
  for (const PhysGate &G : LogicalCircuit) {
    if (isTwoQubitGate(G.Kind))
      Stmts.push_back(Stmt::unitary2(G.Kind, num(static_cast<int64_t>(G.Q0)),
                                     num(static_cast<int64_t>(G.Q1))));
    else
      Stmts.push_back(
          Stmt::unitary1(G.Kind, num(static_cast<int64_t>(G.Q0))));
  }
  for (size_t B = 0; B != NumBlocks; ++B)
    appendErrorSweep(Stmts, ErrorKind, B * N, N,
                     "e" + std::to_string(B) + "_", S.ErrorVars);

  S.Pre.clear();
  for (size_t B = 0; B != NumBlocks; ++B) {
    std::vector<GenSpec> BlockSpec = codeStateSpec(
        Code, B * N, Total, Basis, "b" + std::to_string(B) + "_");
    S.Pre.insert(S.Pre.end(), BlockSpec.begin(), BlockSpec.end());
  }
  S.Post = conjugateSpecs(S.Pre, LogicalCircuit);

  for (size_t B = 0; B != NumBlocks; ++B) {
    RoundParts Round = makeRound(Code, B * N, Total, "b" + std::to_string(B));
    Stmts.insert(Stmts.end(), Round.Stmts.begin(), Round.Stmts.end());
    S.Parity.insert(S.Parity.end(), Round.Parity.begin(), Round.Parity.end());
    appendWeights(S.Weights, Code, Round, S.ErrorVars);
  }

  S.Program = Stmt::flatten(Stmt::seq(std::move(Stmts)));
  S.MaxErrors = MaxErrors;
  return S;
}

} // namespace

Scenario veriqec::makeGhzScenario(const StabilizerCode &Code,
                                  PauliKind ErrorKind, LogicalBasis Basis,
                                  uint32_t MaxErrors) {
  size_t N = Code.NumQubits;
  // Logical circuit of Fig. 9: H on block 0, CNOT 0->1, CNOT 1->2,
  // implemented transversally.
  std::vector<PhysGate> Circuit;
  for (size_t Q = 0; Q != N; ++Q)
    Circuit.push_back({GateKind::H, Q});
  for (size_t Q = 0; Q != N; ++Q)
    Circuit.push_back({GateKind::CNOT, Q, N + Q});
  for (size_t Q = 0; Q != N; ++Q)
    Circuit.push_back({GateKind::CNOT, N + Q, 2 * N + Q});
  return makeBlockCircuitScenario(Code, 3, Circuit, ErrorKind, Basis,
                                  MaxErrors, Code.Name + "-ghz",
                                  /*PropagationErrorsOnBlock0=*/false);
}

Scenario veriqec::makeLogicalCnotScenario(const StabilizerCode &Code,
                                          PauliKind ErrorKind,
                                          LogicalBasis Basis,
                                          uint32_t MaxErrors) {
  size_t N = Code.NumQubits;
  std::vector<PhysGate> Circuit;
  for (size_t Q = 0; Q != N; ++Q)
    Circuit.push_back({GateKind::CNOT, Q, N + Q});
  return makeBlockCircuitScenario(Code, 2, Circuit, ErrorKind, Basis,
                                  MaxErrors, Code.Name + "-logical-cnot",
                                  /*PropagationErrorsOnBlock0=*/true);
}
