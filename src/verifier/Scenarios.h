//===- verifier/Scenarios.h - Fault-tolerant scenario builders --*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the verification scenarios of the paper (Table 1, Fig. 8,
/// Fig. 9, Fig. 10 and Table 4's scenario rows): one error-correction
/// cycle with injected errors (logical-free, E M C), logical transversal
/// operations with standard and propagated errors (one cycle,
/// E L E M C), multi-cycle memory, fault-tolerant GHZ preparation and the
/// logical CNOT with propagated errors. Each builder produces the program
/// (Table 1 style), the pre/postcondition generator specs and the decoder
/// contract pieces.
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_VERIFIER_SCENARIOS_H
#define VERIQEC_VERIFIER_SCENARIOS_H

#include "prog/Ast.h"
#include "qec/StabilizerCode.h"
#include "vcgen/VcBuilder.h"

#include <string>
#include <vector>

namespace veriqec {

/// A pre/postcondition generator: (-1)^(PhaseConstant + PhaseVar) * Base.
struct GenSpec {
  Pauli Base;
  std::string PhaseVar;      ///< empty = no symbolic part
  bool PhaseConstant = false;
};

/// A complete verification scenario (one Hoare triple + contract).
struct Scenario {
  std::string Name;
  size_t NumQubits = 0;
  StmtPtr Program; ///< flattened
  std::vector<GenSpec> Pre;
  std::vector<GenSpec> Post;
  std::vector<std::string> ErrorVars;
  uint32_t MaxErrors = 0;
  std::vector<ParityConstraint> Parity;
  std::vector<WeightConstraint> Weights;
};

/// Which logical basis family a scenario verifies (footnote 1 of the
/// paper: correctness on the (-1)^b Z-family and (-1)^b X-family of
/// predicates suffices by the adequacy theorem).
enum class LogicalBasis { Z, X };

/// One error-correction cycle with errors: for i: [e_i] q_i *= E; then
/// syndrome measurement, decoding and correction (Table 1, right column,
/// without the logical operation). Verifies that any <= MaxErrors errors
/// are corrected.
Scenario makeMemoryScenario(const StabilizerCode &Code, PauliKind ErrorKind,
                            LogicalBasis Basis, uint32_t MaxErrors);

/// Table 1's Steane(E, H): propagation errors, transversal logical H,
/// standard errors, then one correction cycle. Requires a self-dual CSS
/// code (transversal H implements logical H). The postcondition applies
/// the logical Hadamard to the logical operators (Eqn. (2)).
Scenario makeLogicalHScenario(const StabilizerCode &Code, PauliKind ErrorKind,
                              LogicalBasis Basis, uint32_t MaxErrors);

/// A single non-Pauli error (H or T) at qubit \p Location injected before
/// the logical-H cycle of Table 1 (the paper's Section 5.2.2 case). The
/// T case exercises the case-3 taint machinery.
Scenario makeNonPauliErrorScenario(const StabilizerCode &Code, GateKind Error,
                                   size_t Location, LogicalBasis Basis);

/// Multi-cycle memory: \p Cycles rounds of (errors; measure; decode;
/// correct) with a global error budget (the E L E M C E M C ... row of
/// Table 4).
Scenario makeMultiCycleScenario(const StabilizerCode &Code,
                                PauliKind ErrorKind, LogicalBasis Basis,
                                size_t Cycles, uint32_t MaxErrors);

/// Errors injected *between* syndrome measurement and correction (the
/// error-in-correction-step scenario, L M C_E): a trailing verification
/// cycle shows the residual is still corrected.
Scenario makeCorrectionStepErrorScenario(const StabilizerCode &Code,
                                         PauliKind ErrorKind,
                                         LogicalBasis Basis,
                                         uint32_t MaxErrors);

/// Fault-tolerant GHZ preparation on three code blocks (Fig. 9):
/// transversal H on block 0, CNOT 0->1, CNOT 1->2, with one correction
/// cycle per block and injected errors. Precondition: logical |000>
/// family; postcondition: the conjugated logical operators.
Scenario makeGhzScenario(const StabilizerCode &Code, PauliKind ErrorKind,
                         LogicalBasis Basis, uint32_t MaxErrors);

/// Logical CNOT with propagated errors (Fig. 10): errors left over from a
/// previous cycle on the control block propagate through the transversal
/// CNOT; one correction cycle per block afterwards.
Scenario makeLogicalCnotScenario(const StabilizerCode &Code,
                                 PauliKind ErrorKind, LogicalBasis Basis,
                                 uint32_t MaxErrors);

} // namespace veriqec

#endif // VERIQEC_VERIFIER_SCENARIOS_H
