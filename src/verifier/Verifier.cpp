//===- verifier/Verifier.cpp - Veri-QEC style verification driver ----------===//
//
// Part of the veriqec project.
//
// The scenario pipeline (symbolic flow, VC assembly, cube-and-conquer
// discharge) lives in engine/VerificationEngine.cpp; this file keeps the
// historical free-function entry points plus the precise-detection check,
// whose VC is an expression over the code alone (no program).
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "engine/VerificationEngine.h"
#include "support/Timer.h"

using namespace veriqec;
using namespace veriqec::smt;

namespace {

/// Picks the engine for a call: the process-wide pool unless the caller
/// asked for a specific different width.
template <typename Fn> auto onEngine(const VerifyOptions &Opts, Fn &&F) {
  engine::VerificationEngine &Shared = engine::VerificationEngine::shared();
  if (!Opts.Parallel || Opts.Threads == 0 ||
      Opts.Threads == Shared.numWorkers())
    return F(Shared);
  engine::VerificationEngine Local(Opts.Threads);
  return F(Local);
}

} // namespace

VerificationResult veriqec::verifyScenario(const Scenario &S,
                                           const VerifyOptions &Opts) {
  return onEngine(Opts, [&](engine::VerificationEngine &E) {
    return E.verify(S, Opts);
  });
}

std::vector<VerificationResult>
veriqec::verifyAll(std::span<const Scenario> Scenarios,
                   const VerifyOptions &Opts) {
  return onEngine(Opts, [&](engine::VerificationEngine &E) {
    return E.verifyAll(Scenarios, Opts);
  });
}

DetectionResult veriqec::verifyDetection(const StabilizerCode &Code,
                                         size_t MaxWeight,
                                         const VerifyOptions &Opts) {
  DetectionResult Result;
  Timer Clock;
  size_t N = Code.NumQubits;

  BoolContext Ctx;
  std::vector<ExprRef> XVars, ZVars, Support;
  for (size_t Q = 0; Q != N; ++Q) {
    XVars.push_back(Ctx.mkVar("x" + std::to_string(Q)));
    ZVars.push_back(Ctx.mkVar("z" + std::to_string(Q)));
    Support.push_back(Ctx.mkOr(XVars[Q], ZVars[Q]));
  }
  auto anticommutes = [&](const Pauli &G) {
    std::vector<ExprRef> Terms;
    for (size_t Q = 0; Q != N; ++Q) {
      if (G.zBits().get(Q))
        Terms.push_back(XVars[Q]);
      if (G.xBits().get(Q))
        Terms.push_back(ZVars[Q]);
    }
    return Terms.empty() ? Ctx.mkFalse() : Ctx.mkXor(std::move(Terms));
  };

  std::vector<ExprRef> Cs;
  // All syndromes zero, logically acting, weight within 1..MaxWeight.
  for (const Pauli &G : Code.Generators)
    Cs.push_back(Ctx.mkNot(anticommutes(G)));
  std::vector<ExprRef> Logical;
  for (size_t J = 0; J != Code.NumLogical; ++J) {
    Logical.push_back(anticommutes(Code.LogicalX[J]));
    Logical.push_back(anticommutes(Code.LogicalZ[J]));
  }
  Cs.push_back(Ctx.mkOr(std::move(Logical)));
  Cs.push_back(Ctx.mkAtLeast(Support, 1));
  Cs.push_back(Ctx.mkAtMost(Support, static_cast<uint32_t>(MaxWeight)));

  SolveOptions SO;
  SO.CardEnc = Opts.CardEnc;
  SO.ConflictBudget = Opts.ConflictBudget;
  SO.RandomSeed = Opts.RandomSeed;
  SolveOutcome Outcome;
  ExprRef Root = Ctx.mkAnd(std::move(Cs));
  if (Opts.Parallel) {
    SO.NumThreads = Opts.Threads;
    for (size_t Q = 0; Q != N; ++Q)
      SO.SplitVars.push_back("x" + std::to_string(Q));
    SO.DistanceHint = static_cast<uint32_t>(
        Code.Distance ? Code.Distance : MaxWeight + 1);
    SO.SplitThreshold = Opts.SplitThreshold
                            ? Opts.SplitThreshold
                            : static_cast<uint32_t>(N);
    SO.MaxOnes = static_cast<uint32_t>(MaxWeight);
    Outcome = solveExprParallel(Ctx, Root, SO);
  } else {
    Outcome = solveExpr(Ctx, Root, SO);
  }

  Result.Stats = Outcome.Stats;
  Result.Detects = Outcome.Result == sat::SolveResult::Unsat;
  Result.Aborted = Outcome.Result == sat::SolveResult::Aborted;
  if (Outcome.Result == sat::SolveResult::Sat) {
    Pauli P(N);
    for (size_t Q = 0; Q != N; ++Q) {
      bool X = Outcome.Model.at("x" + std::to_string(Q));
      bool Z = Outcome.Model.at("z" + std::to_string(Q));
      if (X && Z)
        P.setKind(Q, PauliKind::Y);
      else if (X)
        P.setKind(Q, PauliKind::X);
      else if (Z)
        P.setKind(Q, PauliKind::Z);
    }
    Result.CounterExample = P.abs();
  }
  Result.Seconds = Clock.seconds();
  return Result;
}
