//===- verifier/Verifier.cpp - Veri-QEC style verification driver ----------===//
//
// Part of the veriqec project.
//
// The scenario pipeline (symbolic flow, VC assembly, cube-and-conquer
// discharge) lives in engine/VerificationEngine.cpp; this file keeps the
// historical free-function entry points plus the precise-detection check,
// whose VC is an expression over the code alone (no program).
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "dist/Coordinator.h"
#include "engine/VerificationEngine.h"
#include "proof/ProofLog.h"
#include "support/Timer.h"

#include <algorithm>
#include <optional>

using namespace veriqec;
using namespace veriqec::smt;

namespace {

/// Picks the engine for a call: the process-wide pool unless the caller
/// asked for a specific different width.
template <typename Fn> auto onEngine(const VerifyOptions &Opts, Fn &&F) {
  engine::VerificationEngine &Shared = engine::VerificationEngine::shared();
  if (!Opts.Parallel || Opts.Threads == 0 ||
      Opts.Threads == Shared.numWorkers())
    return F(Shared);
  engine::VerificationEngine Local(Opts.Threads);
  return F(Local);
}

} // namespace

VerificationResult veriqec::verifyScenario(const Scenario &S,
                                           const VerifyOptions &Opts) {
  return onEngine(Opts, [&](engine::VerificationEngine &E) {
    return E.verify(S, Opts);
  });
}

std::vector<VerificationResult>
veriqec::verifyAll(std::span<const Scenario> Scenarios,
                   const VerifyOptions &Opts) {
  return onEngine(Opts, [&](engine::VerificationEngine &E) {
    return E.verifyAll(Scenarios, Opts);
  });
}

namespace {

/// Shared symbolic skeleton of the detection / distance workloads: an
/// unknown Pauli (x_q, z_q per qubit) that commutes with every generator
/// (pure parity rows — the preprocessor's home turf) yet anticommutes
/// with some logical operator.
struct UndetectableLogicalVc {
  BoolContext Ctx;
  std::vector<ExprRef> XVars, ZVars, Support;
  std::vector<ExprRef> Constraints;
};

void buildUndetectableLogicalVc(const StabilizerCode &Code,
                                UndetectableLogicalVc &Out,
                                PauliFamily Family = PauliFamily::Any) {
  size_t N = Code.NumQubits;
  BoolContext &Ctx = Out.Ctx;
  for (size_t Q = 0; Q != N; ++Q) {
    Out.XVars.push_back(Family == PauliFamily::ZOnly
                            ? Ctx.mkFalse()
                            : Ctx.mkVar("x" + std::to_string(Q)));
    Out.ZVars.push_back(Family == PauliFamily::XOnly
                            ? Ctx.mkFalse()
                            : Ctx.mkVar("z" + std::to_string(Q)));
    Out.Support.push_back(Ctx.mkOr(Out.XVars[Q], Out.ZVars[Q]));
  }
  auto anticommutes = [&](const Pauli &G) {
    std::vector<ExprRef> Terms;
    for (size_t Q = 0; Q != N; ++Q) {
      if (G.zBits().get(Q))
        Terms.push_back(Out.XVars[Q]);
      if (G.xBits().get(Q))
        Terms.push_back(Out.ZVars[Q]);
    }
    return Terms.empty() ? Ctx.mkFalse() : Ctx.mkXor(std::move(Terms));
  };
  for (const Pauli &G : Code.Generators)
    Out.Constraints.push_back(Ctx.mkNot(anticommutes(G)));
  std::vector<ExprRef> Logical;
  for (size_t J = 0; J != Code.NumLogical; ++J) {
    Logical.push_back(anticommutes(Code.LogicalX[J]));
    Logical.push_back(anticommutes(Code.LogicalZ[J]));
  }
  Out.Constraints.push_back(Ctx.mkOr(std::move(Logical)));
}

/// Model lookup defaulting to false — family-restricted searches never
/// create the suppressed letter's variables.
bool modelBit(const std::unordered_map<std::string, bool> &Model,
              const std::string &Name) {
  auto It = Model.find(Name);
  return It != Model.end() && It->second;
}

Pauli pauliFromModel(const std::unordered_map<std::string, bool> &Model,
                     size_t N) {
  Pauli P(N);
  for (size_t Q = 0; Q != N; ++Q) {
    bool X = modelBit(Model, "x" + std::to_string(Q));
    bool Z = modelBit(Model, "z" + std::to_string(Q));
    if (X && Z)
      P.setKind(Q, PauliKind::Y);
    else if (X)
      P.setKind(Q, PauliKind::X);
    else if (Z)
      P.setKind(Q, PauliKind::Z);
  }
  return P.abs();
}

} // namespace

DetectionResult veriqec::verifyDetection(const StabilizerCode &Code,
                                         size_t MaxWeight,
                                         const VerifyOptions &Opts) {
  DetectionResult Result;
  Timer Clock;
  size_t N = Code.NumQubits;

  UndetectableLogicalVc D;
  buildUndetectableLogicalVc(Code, D);
  BoolContext &Ctx = D.Ctx;
  std::vector<ExprRef> Cs = D.Constraints;
  // Weight within 1..MaxWeight (the two atoms share one counter bank;
  // unaryCounter deepens it on demand, so request order is free).
  Cs.push_back(Ctx.mkAtMost(D.Support, static_cast<uint32_t>(MaxWeight)));
  Cs.push_back(Ctx.mkAtLeast(D.Support, 1));

  SolveOptions SO;
  SO.CardEnc = Opts.CardEnc;
  SO.Preprocess = Opts.Preprocess;
  SO.Xor = Opts.Xor;
  SO.Chrono = Opts.Chrono;
  SO.ConflictBudget = Opts.ConflictBudget;
  SO.RandomSeed = Opts.RandomSeed;
  SO.LogProofs = Opts.LogProofs;
  SolveOutcome Outcome;
  ExprRef Root = Ctx.mkAnd(std::move(Cs));
  if (Opts.Parallel) {
    SO.NumThreads = Opts.Threads;
    for (size_t Q = 0; Q != N; ++Q)
      SO.SplitVars.push_back("x" + std::to_string(Q));
    SO.DistanceHint = static_cast<uint32_t>(
        Code.Distance ? Code.Distance : MaxWeight + 1);
    // Same budget-exhaustion cutoff as the engine's scenario path.
    uint32_t Auto = static_cast<uint32_t>(std::min<uint64_t>(
        N, 2ull * SO.DistanceHint * MaxWeight + 4));
    SO.AutoSplitThreshold = Opts.SplitThreshold == 0;
    SO.SplitThreshold = Opts.SplitThreshold ? Opts.SplitThreshold : Auto;
    SO.MaxOnes = static_cast<uint32_t>(MaxWeight);
    Outcome = solveExprParallel(Ctx, Root, SO);
  } else {
    Outcome = solveExpr(Ctx, Root, SO);
  }

  Result.Stats = Outcome.Stats;
  Result.Detects = Outcome.Result == sat::SolveResult::Unsat;
  Result.Aborted = Outcome.Result == sat::SolveResult::Aborted;
  Result.Proof = std::move(Outcome.Proof);
  if (Outcome.Result == sat::SolveResult::Sat)
    Result.CounterExample = pauliFromModel(Outcome.Model, N);
  Result.Seconds = Clock.seconds();
  return Result;
}

DistanceResult veriqec::computeDistance(const StabilizerCode &Code,
                                        const VerifyOptions &Opts,
                                        PauliFamily Family,
                                        dist::Coordinator *Remote) {
  DistanceResult Result;
  Timer Clock;
  size_t N = Code.NumQubits;
  if (Code.NumLogical == 0) {
    Result.Error = "code has no logical qubits";
    return Result;
  }

  UndetectableLogicalVc D;
  buildUndetectableLogicalVc(Code, D, Family);

  // Encode once: the parity system plus the logical-action residue, with
  // the per-qubit supports feeding the assumption-activated weight layer.
  // Every probe of the search is then a pure assumption change on one
  // solver, which keeps all learnt clauses live across bounds.
  ProblemOptions PO;
  PO.CardEnc = CardinalityEncoding::SequentialCounter;
  PO.Preprocess = Opts.Preprocess;
  // Auto resolves to ON here: the undetectable-logical system is almost
  // pure parity, exactly the Gauss engine's home turf (the LDPC rows of
  // the registry are intractable without it — see BENCH_table3.json).
  PO.NativeXor = Opts.Xor != XorMode::Off;
  PO.BudgetTerms = D.Support;
  PO.CaptureProofData = Opts.LogProofs;
  VerificationProblem Problem(D.Ctx, D.Ctx.mkAnd(D.Constraints), PO);
  Result.Prep = Problem.Prep;
  Result.CnfVars = Problem.Cnf.NumVars;
  Result.CnfClauses = Problem.Cnf.Clauses.size();
  Result.XorRows = Problem.XorRows.size();
  if (Problem.TriviallyUnsat) {
    Result.Error = "undetectable-logical system is inconsistent";
    Result.Seconds = Clock.seconds();
    return Result;
  }

  // One probe = one solve under "1 <= weight <= MaxW" assumptions, on a
  // persistent solver: locally the reused sat::Solver, remotely the
  // fleet's slot solver behind an open problem handle (the assumptions
  // ride inside a one-cube batch). Either way learnt clauses survive
  // across bounds.
  proof::SlotProofLog DistLog; // declared before Local: the solver keeps
                               // a raw pointer to it until destruction
  uint64_t UnsatProbes = 0;
  std::optional<sat::Solver> Local;
  std::shared_ptr<smt::VerificationProblem> Shipped;
  uint32_t Handle = 0;
  if (Remote) {
    Shipped = std::make_shared<smt::VerificationProblem>(std::move(Problem));
    engine::CubeRunConfig Cfg;
    Cfg.ConflictBudget = Opts.ConflictBudget;
    Cfg.RandomSeed = Opts.RandomSeed;
    Cfg.LogProofs = Opts.LogProofs;
    // Auto resolves to ON for distance: every probe re-solves the same
    // encoding under a long weight-assumption prefix, which is exactly
    // the trail chronological backtracking keeps alive.
    Cfg.Chrono = Opts.Chrono != ChronoMode::Off;
    Handle = Remote->openProblem(Shipped, Cfg);
  } else {
    Local.emplace(Problem.makeSolver());
    Local->setChrono(Opts.Chrono != ChronoMode::Off);
    if (Opts.LogProofs)
      Local->setProofSink(&DistLog);
    if (Opts.ConflictBudget)
      Local->setConflictBudget(Opts.ConflictBudget);
    if (Opts.RandomSeed)
      Local->setRandomSeed(Opts.RandomSeed);
  }
  const smt::VerificationProblem &Prob = Remote ? *Shipped : Problem;
  auto probe = [&](size_t MaxW,
                   std::unordered_map<std::string, bool> &Model) {
    std::vector<sat::Lit> Assumptions;
    Prob.appendWeightAssumptions(static_cast<uint32_t>(MaxW), Assumptions,
                                 1);
    ++Result.SolverCalls;
    if (Remote) {
      smt::SolveOutcome O =
          Remote->solveCubes(Handle, {std::move(Assumptions)});
      // Per-call statistics deltas accumulate into the search total.
      Result.Stats += O.Stats;
      if (O.Result == sat::SolveResult::Unsat && !O.Proof.empty())
        // Streams are cumulative across probes (the remote slot solvers
        // persist), so the LAST UNSAT probe's certificate covers every
        // earlier one too.
        Result.Proof = std::move(O.Proof);
      if (O.Result == sat::SolveResult::Sat)
        Model = std::move(O.Model);
      return O.Result;
    }
    sat::SolveResult R = Local->solve(Assumptions);
    if (R == sat::SolveResult::Unsat && Opts.LogProofs) {
      DistLog.logConclusion(Local->conflictCore(), Assumptions,
                            Local->conflictCoreHints());
      ++UnsatProbes;
    }
    if (R == sat::SolveResult::Sat)
      Prob.readModel(*Local, Model);
    return R;
  };

  auto modelWeight = [&](const std::unordered_map<std::string, bool> &M) {
    size_t W = 0;
    for (size_t Q = 0; Q != N; ++Q)
      W += modelBit(M, "x" + std::to_string(Q)) ||
           modelBit(M, "z" + std::to_string(Q));
    return W;
  };
  auto finish = [&](sat::SolveResult R) {
    if (!Remote) {
      Result.Stats = Local->stats();
      if (Opts.LogProofs) {
        // One persistent solver = one stream; every UNSAT probe's
        // assumption set is a distinct concluded cube (distinct bounds
        // select distinct counter literals).
        const std::string Streams[] = {DistLog.drain()};
        Result.Proof = proof::assembleProof(
            proof::buildProofHeader(Prob, /*HardenBudget=*/false, 0),
            Streams, UnsatProbes);
      }
    } else {
      Remote->closeProblem(Handle);
    }
    Result.Aborted = R == sat::SolveResult::Aborted;
    Result.Seconds = Clock.seconds();
  };

  // Existence probe (weight >= 1, unbounded above): every code with a
  // logical qubit has an undetectable logical operator of weight <= n.
  std::unordered_map<std::string, bool> Best;
  sat::SolveResult R = probe(N, Best);
  if (R != sat::SolveResult::Sat) {
    finish(R);
    if (!Result.Aborted)
      Result.Error = "no undetectable logical operator exists";
    return Result;
  }
  size_t Lo = 1, Hi = modelWeight(Best);

  // Binary search for the least satisfiable weight bound; a SAT probe
  // tightens Hi to the witness's actual weight, not just the bound.
  while (Lo < Hi) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    std::unordered_map<std::string, bool> M;
    R = probe(Mid, M);
    if (R == sat::SolveResult::Aborted) {
      finish(R);
      return Result;
    }
    if (R == sat::SolveResult::Sat) {
      Hi = modelWeight(M);
      Best = std::move(M);
    } else {
      Lo = Mid + 1;
    }
  }

  Result.Distance = Lo;
  Result.Witness = pauliFromModel(Best, N);
  Result.Ok = true;
  finish(R);
  return Result;
}
