//===- verifier/Verifier.cpp - Veri-QEC style verification driver ----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "support/Assert.h"
#include "support/Timer.h"
#include "vcgen/SymbolicFlow.h"

using namespace veriqec;
using namespace veriqec::smt;

VerificationResult veriqec::verifyScenario(const Scenario &S,
                                           const VerifyOptions &Opts) {
  VerificationResult Result;
  Timer Clock;

  // 1. Symbolic execution from the precondition.
  SymbolicFlow Flow(S.NumQubits);
  for (const GenSpec &G : S.Pre) {
    PhaseExpr Phase(G.PhaseConstant);
    if (!G.PhaseVar.empty())
      Phase.xorVar(Flow.vars().id(G.PhaseVar));
    Flow.addInitialGenerator(G.Base, Phase);
  }
  FlowResult FR = Flow.run(S.Program);
  if (!FR.Ok) {
    Result.Error = "symbolic flow: " + FR.Error;
    Result.Seconds = Clock.seconds();
    return Result;
  }

  // 2. VC assembly.
  VcSpec Spec;
  Spec.Vars = &Flow.vars();
  Spec.Flow = std::move(FR);
  for (const GenSpec &G : S.Post) {
    PhaseExpr Phase(G.PhaseConstant);
    if (!G.PhaseVar.empty())
      Phase.xorVar(Flow.vars().id(G.PhaseVar));
    Spec.Targets.push_back({G.Base, std::move(Phase)});
  }
  Spec.ErrorVars = S.ErrorVars;
  Spec.MaxTotalErrors = S.MaxErrors;
  Spec.ParityConstraints = S.Parity;
  Spec.WeightConstraints = S.Weights;
  Spec.ExtraConstraint = Opts.ExtraConstraint;

  BoolContext Ctx;
  BuiltVc Vc = buildVc(Ctx, Spec);
  if (!Vc.Ok) {
    Result.Error = "vc assembly: " + Vc.Error;
    Result.Seconds = Clock.seconds();
    return Result;
  }
  Result.StructuralOk = true;
  Result.NumGoals = Vc.NumGoals;

  // 3. Discharge.
  SolveOptions SO;
  SO.CardEnc = Opts.CardEnc;
  SO.ConflictBudget = Opts.ConflictBudget;
  SolveOutcome Outcome;
  if (Opts.Parallel && !S.ErrorVars.empty()) {
    SO.NumThreads = Opts.Threads;
    SO.SplitVars = S.ErrorVars;
    SO.DistanceHint = std::max<uint32_t>(
        2, S.MaxErrors == ~uint32_t{0} ? 2 : 2 * S.MaxErrors + 1);
    SO.SplitThreshold = Opts.SplitThreshold
                            ? Opts.SplitThreshold
                            : static_cast<uint32_t>(S.NumQubits);
    SO.MaxOnes = S.MaxErrors;
    Outcome = solveExprParallel(Ctx, Vc.NegatedVc, SO);
  } else {
    Outcome = solveExpr(Ctx, Vc.NegatedVc, SO);
  }

  Result.Stats = Outcome.Stats;
  Result.NumCubes = Outcome.NumCubes;
  Result.Verified = Outcome.Result == sat::SolveResult::Unsat;
  if (Outcome.Result == sat::SolveResult::Sat)
    Result.CounterExample = std::move(Outcome.Model);
  Result.Seconds = Clock.seconds();
  return Result;
}

DetectionResult veriqec::verifyDetection(const StabilizerCode &Code,
                                         size_t MaxWeight,
                                         const VerifyOptions &Opts) {
  DetectionResult Result;
  Timer Clock;
  size_t N = Code.NumQubits;

  BoolContext Ctx;
  std::vector<ExprRef> XVars, ZVars, Support;
  for (size_t Q = 0; Q != N; ++Q) {
    XVars.push_back(Ctx.mkVar("x" + std::to_string(Q)));
    ZVars.push_back(Ctx.mkVar("z" + std::to_string(Q)));
    Support.push_back(Ctx.mkOr(XVars[Q], ZVars[Q]));
  }
  auto anticommutes = [&](const Pauli &G) {
    std::vector<ExprRef> Terms;
    for (size_t Q = 0; Q != N; ++Q) {
      if (G.zBits().get(Q))
        Terms.push_back(XVars[Q]);
      if (G.xBits().get(Q))
        Terms.push_back(ZVars[Q]);
    }
    return Terms.empty() ? Ctx.mkFalse() : Ctx.mkXor(std::move(Terms));
  };

  std::vector<ExprRef> Cs;
  // All syndromes zero, logically acting, weight within 1..MaxWeight.
  for (const Pauli &G : Code.Generators)
    Cs.push_back(Ctx.mkNot(anticommutes(G)));
  std::vector<ExprRef> Logical;
  for (size_t J = 0; J != Code.NumLogical; ++J) {
    Logical.push_back(anticommutes(Code.LogicalX[J]));
    Logical.push_back(anticommutes(Code.LogicalZ[J]));
  }
  Cs.push_back(Ctx.mkOr(std::move(Logical)));
  Cs.push_back(Ctx.mkAtLeast(Support, 1));
  Cs.push_back(Ctx.mkAtMost(Support, static_cast<uint32_t>(MaxWeight)));

  SolveOptions SO;
  SO.CardEnc = Opts.CardEnc;
  SO.ConflictBudget = Opts.ConflictBudget;
  SolveOutcome Outcome;
  ExprRef Root = Ctx.mkAnd(std::move(Cs));
  if (Opts.Parallel) {
    SO.NumThreads = Opts.Threads;
    for (size_t Q = 0; Q != N; ++Q)
      SO.SplitVars.push_back("x" + std::to_string(Q));
    SO.DistanceHint = static_cast<uint32_t>(
        Code.Distance ? Code.Distance : MaxWeight + 1);
    SO.SplitThreshold = Opts.SplitThreshold
                            ? Opts.SplitThreshold
                            : static_cast<uint32_t>(N);
    SO.MaxOnes = static_cast<uint32_t>(MaxWeight);
    Outcome = solveExprParallel(Ctx, Root, SO);
  } else {
    Outcome = solveExpr(Ctx, Root, SO);
  }

  Result.Stats = Outcome.Stats;
  Result.Detects = Outcome.Result == sat::SolveResult::Unsat;
  if (Outcome.Result == sat::SolveResult::Sat) {
    Pauli P(N);
    for (size_t Q = 0; Q != N; ++Q) {
      bool X = Outcome.Model.at("x" + std::to_string(Q));
      bool Z = Outcome.Model.at("z" + std::to_string(Q));
      if (X && Z)
        P.setKind(Q, PauliKind::Y);
      else if (X)
        P.setKind(Q, PauliKind::X);
      else if (Z)
        P.setKind(Q, PauliKind::Z);
    }
    Result.CounterExample = P.abs();
  }
  Result.Seconds = Clock.seconds();
  return Result;
}
