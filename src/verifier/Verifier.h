//===- verifier/Verifier.h - Veri-QEC style verification driver -*- C++ -*-===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the stack: runs a Scenario through the symbolic flow, builds
/// the VC, and discharges it with the built-in SAT layer, either
/// sequentially or with the paper's cube-and-conquer parallelization
/// (splitting on error indicator bits with the ET heuristic). Also
/// provides the precise-detection check of Eqn. (15).
///
//===----------------------------------------------------------------------===//

#ifndef VERIQEC_VERIFIER_VERIFIER_H
#define VERIQEC_VERIFIER_VERIFIER_H

#include "qec/StabilizerCode.h"
#include "smt/CubeSolver.h"
#include "verifier/Scenarios.h"

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace veriqec::dist {
class Coordinator;
} // namespace veriqec::dist

namespace veriqec {

/// Solver configuration for one verification run.
struct VerifyOptions {
  bool Parallel = false;
  size_t Threads = 0;            ///< 0 = hardware concurrency
  uint32_t SplitThreshold = 0;   ///< 0 = auto (the number of qubits)
  smt::CardinalityEncoding CardEnc =
      smt::CardinalityEncoding::SequentialCounter;
  /// GF(2)/XOR preprocessing of the VC before CNF encoding (syndrome
  /// equations are Gaussian-eliminated, defined variables dropped); off
  /// reproduces the legacy monolithic-Tseitin pipeline.
  bool Preprocess = true;
  /// Native XOR reasoning (`--xor on|off`): kept parity rows become
  /// Gauss-in-the-loop solver constraints instead of CNF parity chains,
  /// and cube pruning runs full GF(2) elimination. Auto resolves per
  /// workload — On for the distance search (pure parity, 6-60x on the
  /// LDPC rows), Off for scenario verification and detection (measured
  /// neutral-to-negative there). No effect without Preprocess.
  smt::XorMode Xor = smt::XorMode::Auto;
  /// Chronological backtracking in the solvers (sat::Solver::setChrono).
  /// Auto resolves per workload — On for the distance search (long
  /// weight-bound assumption prefixes, ~20% faster on the tanner
  /// codes), Off for scenario verification and detection (measured
  /// negative there: short cube prefixes favor the deep backjump).
  smt::ChronoMode Chrono = smt::ChronoMode::Auto;
  uint64_t ConflictBudget = 0;
  /// Nonzero seeds the solvers' random branching tie-breaks so a run (in
  /// particular a fuzz failure) is exactly reproducible; 0 keeps the
  /// deterministic default order.
  uint64_t RandomSeed = 0;
  /// Optional user error constraint (locality/discreteness, Section 7.2),
  /// conjoined with the assumptions.
  std::function<smt::ExprRef(smt::BoolContext &)> ExtraConstraint;
  /// Emit a machine-checkable clause proof for UNSAT verdicts (the
  /// Proof fields of the result structs), independently replayable with
  /// proof::checkProof / the veriqec-check tool. Disables cross-slot
  /// learnt-clause sharing and adds logging overhead.
  bool LogProofs = false;
};

/// Result of a verification run.
struct VerificationResult {
  bool StructuralOk = false; ///< flow + VC assembly succeeded
  std::string Error;         ///< when !StructuralOk
  bool Verified = false;     ///< VC valid (negation UNSAT)
  /// The solver gave up (conflict budget exhausted) on at least one cube:
  /// !Verified then means "inconclusive", not "counterexample found".
  bool Aborted = false;
  /// For failed verification: a model of the negated VC — a concrete
  /// error pattern plus decoder behaviour exposing the bug.
  std::unordered_map<std::string, bool> CounterExample;
  sat::SolverStats Stats;
  uint64_t NumCubes = 1;
  /// Cubes actually discharged; < NumCubes when the first SAT cube
  /// cancelled its outstanding siblings.
  uint64_t CubesSolved = 1;
  /// Cubes refuted with no SAT call (CubesPrunedGf2 by the GF(2) parity
  /// oracle + CubesPrunedCore by sibling UNSAT cores).
  uint64_t CubesPruned = 0;
  uint64_t CubesPrunedGf2 = 0;
  uint64_t CubesPrunedCore = 0;
  /// Preprocessing telemetry and CNF size for this scenario's encoding.
  smt::PreprocessStats Prep;
  size_t CnfVars = 0;
  size_t CnfClauses = 0;
  /// The ET threshold the cube enumeration actually used (0 = unsplit);
  /// lower than the auto cap when the slot-targeting heuristic cut it.
  uint32_t SplitThresholdUsed = 0;
  size_t NumGoals = 0;
  double Seconds = 0;
  /// With VerifyOptions::LogProofs and Verified: the clause proof of the
  /// negated VC's unsatisfiability (empty otherwise).
  std::string Proof;
};

/// Verifies one scenario. Facade over engine::VerificationEngine: the
/// process-wide engine is used unless Opts.Parallel requests a thread
/// count different from its pool width, in which case a private pool of
/// Opts.Threads workers is spun up for this call.
VerificationResult verifyScenario(const Scenario &S,
                                  const VerifyOptions &Opts = {});

/// Verifies a batch of scenarios, multiplexing all of their cubes over one
/// shared work-stealing pool; one result per scenario, in order.
std::vector<VerificationResult> verifyAll(std::span<const Scenario> Scenarios,
                                          const VerifyOptions &Opts = {});

/// Precise-detection property (Eqn. (15)): no Pauli error of weight
/// 1..MaxWeight is simultaneously syndrome-free and logically acting.
struct DetectionResult {
  bool Detects = false; ///< true = property holds (UNSAT)
  /// The solver gave up (conflict budget exhausted): !Detects then means
  /// "inconclusive", not "an undetectable error exists".
  bool Aborted = false;
  /// When the property fails: the offending logical operator.
  std::optional<Pauli> CounterExample;
  sat::SolverStats Stats;
  double Seconds = 0;
  /// With VerifyOptions::LogProofs and Detects: the clause proof.
  std::string Proof;
};

DetectionResult verifyDetection(const StabilizerCode &Code, size_t MaxWeight,
                                const VerifyOptions &Opts = {});

/// Which Pauli family the distance search ranges over. Any is the true
/// stabilizer distance; XOnly/ZOnly restrict to pure-X / pure-Z logical
/// operators (the registry documents the X-type distance for
/// bit-flip-only codes such as repetition<N>).
enum class PauliFamily { Any, XOnly, ZOnly };

/// Result of a code-distance search (the `veriqec distance` workload).
struct DistanceResult {
  bool Ok = false;   ///< search ran to completion
  std::string Error; ///< when !Ok && !Aborted
  /// The conflict budget ran out before the search converged.
  bool Aborted = false;
  /// Minimum weight of an undetectable logical operator.
  size_t Distance = 0;
  /// A logical operator attaining the minimum.
  std::optional<Pauli> Witness;
  sat::SolverStats Stats;
  /// Incremental SAT calls the binary search issued (all on one solver).
  uint64_t SolverCalls = 0;
  smt::PreprocessStats Prep;
  /// CNF size of the encode-once problem (XOR rows excluded when native).
  size_t CnfVars = 0;
  size_t CnfClauses = 0;
  /// Parity rows the solver carries natively (0 with --xor off).
  size_t XorRows = 0;
  double Seconds = 0;
  /// With VerifyOptions::LogProofs and Ok: one certificate covering
  /// every UNSAT probe of the search — each probe's weight-bound
  /// assumption set is a concluded cube. SAT probes are witnessed by
  /// the returned model, not the proof.
  std::string Proof;
};

/// Computes the code distance by incremental binary search over the
/// weight bound: the undetectable-logical constraint system is
/// preprocessed and encoded ONCE, with a two-sided unary counter over the
/// per-qubit supports; each probe activates "1 <= weight <= W" purely by
/// assumptions, so a single solver (and its learnt clauses) serves the
/// whole search. Contrast qec/StabilizerCode.h's estimateDistance, which
/// re-encodes from scratch at every weight.
///
/// With \p Remote set, the search runs distributed: the encoded problem
/// ships to the fleet once (dist::Coordinator::openProblem) and every
/// probe travels as a one-cube batch carrying the weight-bound
/// assumption literals, so the remote slot solver keeps its learnt
/// clauses across bounds exactly like the local loop.
DistanceResult computeDistance(const StabilizerCode &Code,
                               const VerifyOptions &Opts = {},
                               PauliFamily Family = PauliFamily::Any,
                               dist::Coordinator *Remote = nullptr);

} // namespace veriqec

#endif // VERIQEC_VERIFIER_VERIFIER_H
