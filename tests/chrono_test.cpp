//===- tests/chrono_test.cpp - Chronological backtracking battery ---------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Soundness battery for chronological backtracking (sat::Solver's
/// setChrono): verdict and model-count equality against classic
/// backjumping across both cardinality encodings and xor on/off,
/// assumption-reuse soundness on a cube walk that actually takes the
/// chrono path (out-of-order assignments, survivor-preserving
/// backtracks), proof round-trips with chrono on — hinted conflict
/// records included — and workload-level equality of the verifier's
/// distance search, whose long weight-bound prefixes are the workload
/// chrono exists for.
///
//===----------------------------------------------------------------------===//

#include "proof/ProofCheck.h"
#include "proof/ProofLog.h"
#include "qec/Codes.h"
#include "smt/CubeSolver.h"
#include "verifier/Verifier.h"

#include <gtest/gtest.h>

using namespace veriqec;
using namespace veriqec::sat;

namespace {

/// Unsatisfiable (Pigeons > Holes) or satisfiable (Pigeons <= Holes)
/// pigeonhole CNF: at-least-one-hole per pigeon + at-most-one-pigeon per
/// hole. Dense enough in conflicts that prefix-crossing backjumps — the
/// chrono trigger — occur under almost any assumption prefix.
std::vector<std::vector<Lit>> pigeonhole(size_t Pigeons, size_t Holes,
                                         size_t &NumVars) {
  NumVars = Pigeons * Holes;
  auto VarOf = [Holes](size_t P, size_t H) {
    return static_cast<Var>(P * Holes + H);
  };
  std::vector<std::vector<Lit>> Clauses;
  for (size_t P = 0; P != Pigeons; ++P) {
    std::vector<Lit> C;
    for (size_t H = 0; H != Holes; ++H)
      C.push_back(mkLit(VarOf(P, H)));
    Clauses.push_back(std::move(C));
  }
  for (size_t H = 0; H != Holes; ++H)
    for (size_t P = 0; P != Pigeons; ++P)
      for (size_t Q = P + 1; Q != Pigeons; ++Q)
        Clauses.push_back({~mkLit(VarOf(P, H)), ~mkLit(VarOf(Q, H))});
  return Clauses;
}

Solver loadedSolver(size_t NumVars,
                    const std::vector<std::vector<Lit>> &Clauses) {
  Solver S;
  for (size_t V = 0; V != NumVars; ++V)
    S.newVar();
  for (const auto &C : Clauses)
    EXPECT_TRUE(S.addClause(C));
  return S;
}

} // namespace

TEST(Chrono, ModelCountsMatchClassicAcrossEncodings) {
  // Verdict + model-count equality chrono on vs off, across both
  // cardinality encodings and xor on/off. Models are counted per
  // assumption cube (all 8 assignments of three named variables) so the
  // chrono side actually takes prefix-crossing conflicts through the
  // chrono path rather than degenerating to an assumption-free search.
  using smt::BoolContext;
  using smt::CardinalityEncoding;
  using smt::ExprRef;
  constexpr size_t N = 8;
  BoolContext Ctx;
  std::vector<std::string> Names;
  std::vector<ExprRef> Vars;
  for (size_t I = 0; I != N; ++I) {
    Names.push_back("e" + std::to_string(I));
    Vars.push_back(Ctx.mkVar(Names.back()));
  }
  ExprRef Root = Ctx.mkAnd({Ctx.mkAtMost(Vars, 3), Ctx.mkAtLeast(Vars, 2),
                            Ctx.mkXor(Vars[0], Vars[N - 1])});
  size_t Expected = 0;
  for (uint64_t Mask = 0; Mask != (uint64_t{1} << N); ++Mask) {
    std::vector<bool> A;
    for (size_t I = 0; I != N; ++I)
      A.push_back((Mask >> I) & 1);
    Expected += Ctx.evaluate(Root, A);
  }
  ASSERT_GT(Expected, 0u);

  for (CardinalityEncoding Enc : {CardinalityEncoding::SequentialCounter,
                                  CardinalityEncoding::PairwiseNaive}) {
    for (bool NativeXor : {false, true}) {
      smt::SolveOptions Opts;
      Opts.CardEnc = Enc;
      Opts.Xor = NativeXor ? smt::XorMode::On : smt::XorMode::Off;
      Opts.SplitVars = Names; // protect every named var from elimination
      smt::VerificationProblem Problem(
          Ctx, Root, smt::makeProblemOptions(Ctx, Opts));
      ASSERT_FALSE(Problem.TriviallyUnsat);
      for (bool Chrono : {false, true}) {
        Solver S = Problem.makeSolver();
        S.setChrono(Chrono);
        size_t Models = 0;
        for (uint64_t Cube = 0; Cube != 8; ++Cube) {
          std::vector<Lit> Assume;
          for (size_t I = 0; I != 3; ++I) {
            Var V = Problem.varOfName(Names[I]);
            Assume.push_back((Cube >> I) & 1 ? mkLit(V) : ~mkLit(V));
          }
          while (S.solve(Assume) == SolveResult::Sat) {
            ++Models;
            ASSERT_LE(Models, Expected)
                << "enc " << int(Enc) << " xor " << NativeXor << " chrono "
                << Chrono;
            std::vector<Lit> Block;
            for (const auto &[Name, V] : Problem.NamedVars)
              Block.push_back(S.modelValue(V) ? ~mkLit(V) : mkLit(V));
            if (!S.addClause(Block))
              break; // blocking clause empty at root: no models left
          }
        }
        EXPECT_EQ(Models, Expected) << "enc " << int(Enc) << " xor "
                                    << NativeXor << " chrono " << Chrono;
      }
    }
  }
}

TEST(Chrono, AssumptionReuseVerdictsMatchFreshClassicSolvers) {
  // The exact reuse pattern the cube engine runs, with chrono on: one
  // solver walks every hole assignment of the first two pigeons of an
  // unsatisfiable pigeonhole instance (plus the satisfiable
  // one-fewer-pigeon instance), and every verdict is cross-checked
  // against a fresh chrono-off solver on the same cube. The chrono
  // machinery must actually engage: the reused solver has to report
  // chronological backtracks, out-of-order assignments and saved trail
  // literals, or the battery is vacuous.
  size_t NumVars = 0;
  std::vector<std::vector<Lit>> Clauses = pigeonhole(7, 6, NumVars);
  Solver Reused = loadedSolver(NumVars, Clauses);
  Reused.setChrono(true);
  ASSERT_TRUE(Reused.chrono());
  for (size_t H0 = 0; H0 != 6; ++H0)
    for (size_t H1 = 0; H1 != 6; ++H1) {
      std::vector<Lit> Cube = {mkLit(static_cast<Var>(H0)),
                               mkLit(static_cast<Var>(6 + H1))};
      SolveResult R = Reused.solve(Cube);
      EXPECT_EQ(R, SolveResult::Unsat) << "cube " << H0 << "," << H1;
      // The failed-assumption core must be a subset of the cube.
      for (Lit L : Reused.conflictCore())
        EXPECT_TRUE(L == Cube[0] || L == Cube[1]);
      Solver Fresh = loadedSolver(NumVars, Clauses);
      EXPECT_EQ(Fresh.solve(Cube), R) << "cube " << H0 << "," << H1
                                      << " flipped under chrono reuse";
    }
  SolverStats Stats = Reused.stats();
  EXPECT_GT(Stats.ChronoBacktracks, 0u);
  EXPECT_GT(Stats.OutOfOrderAssignments, 0u);
  EXPECT_GT(Stats.TrailSavedLits, 0u);
  EXPECT_EQ(Stats.propagations(),
            Stats.BinPropagations + Stats.LongPropagations +
                Stats.XorPropagations);

  // Satisfiable side: every cube of the 6-pigeon instance must stay SAT
  // under chrono reuse, with a model that satisfies every clause.
  size_t SatVars = 0;
  std::vector<std::vector<Lit>> SatClauses = pigeonhole(6, 6, SatVars);
  Solver SatReused = loadedSolver(SatVars, SatClauses);
  SatReused.setChrono(true);
  for (size_t H0 = 0; H0 != 6; ++H0) {
    std::vector<Lit> Cube = {mkLit(static_cast<Var>(H0))};
    ASSERT_EQ(SatReused.solve(Cube), SolveResult::Sat) << "hole " << H0;
    for (const auto &C : SatClauses) {
      bool SatClause = false;
      for (Lit L : C)
        SatClause |= SatReused.modelValue(L.var()) != L.negated();
      EXPECT_TRUE(SatClause) << "model violates a clause under chrono";
    }
    EXPECT_TRUE(SatReused.modelValue(static_cast<Var>(H0)));
  }
}

TEST(Chrono, ProofRoundTripWithHintedRecords) {
  // A chrono-on UNSAT cube walk must still emit certificates the
  // independent checker accepts: the LRAT-style hints attached to every
  // derivation and conclusion are sorted by trail position, an order the
  // survivor-compacting backtrack is required to preserve. The walk
  // must actually take chronological backtracks for the round-trip to
  // mean anything.
  size_t NumVars = 0;
  std::vector<std::vector<Lit>> Clauses = pigeonhole(8, 7, NumVars);
  Solver S;
  proof::SlotProofLog Log;
  S.setProofSink(&Log);
  S.setChrono(true);
  for (size_t V = 0; V != NumVars; ++V)
    S.newVar();
  for (const auto &C : Clauses)
    ASSERT_TRUE(S.addClause(C));
  uint64_t Concluded = 0;
  bool GlobalUnsat = false;
  for (size_t H0 = 0; H0 != 7 && !GlobalUnsat; ++H0)
    for (size_t H1 = 0; H1 != 7 && !GlobalUnsat; ++H1) {
      std::vector<Lit> Cube = {mkLit(static_cast<Var>(H0)),
                               mkLit(static_cast<Var>(7 + H1))};
      ASSERT_EQ(S.solve(Cube), SolveResult::Unsat);
      Log.logConclusion(S.conflictCore(), Cube, S.conflictCoreHints());
      ++Concluded;
      // Once the empty clause is derived, later cubes add nothing.
      GlobalUnsat = S.conflictCore().empty();
    }
  EXPECT_GT(S.stats().ChronoBacktracks, 0u)
      << "the proof battery never exercised the chrono path";

  std::string Proof = "p veriqec proof 1\nv " + std::to_string(NumVars) +
                      "\n";
  for (const auto &C : Clauses) {
    Proof += 'o';
    for (Lit L : C) {
      Proof += ' ';
      Proof += std::to_string(L.negated() ? -(L.var() + 1) : (L.var() + 1));
    }
    Proof += " 0\n";
  }
  Proof += "s 0\n";
  Proof += Log.drain();
  proof::CheckResult CR = proof::checkProof(Proof);
  EXPECT_TRUE(CR.Ok) << CR.Error;
  EXPECT_EQ(CR.Conclusions, Concluded);
}

TEST(Chrono, DistanceSearchAgreesAndProvesAcrossModes) {
  // The workload chrono is on by default for: the incremental distance
  // search. Distances must be bit-identical chrono on vs off, and the
  // chrono-on search must still emit a certificate the checker accepts
  // (every UNSAT probe a concluded cube).
  struct Case {
    StabilizerCode Code;
    size_t Distance;
  };
  const Case Cases[] = {{makeSteaneCode(), 3},
                        {makeFiveQubitCode(), 3},
                        {makeRepetitionCode(5), 5}};
  for (const Case &C : Cases) {
    PauliFamily Family = C.Code.Name.rfind("repetition", 0) == 0
                             ? PauliFamily::XOnly
                             : PauliFamily::Any;
    for (smt::ChronoMode Mode : {smt::ChronoMode::Off, smt::ChronoMode::On}) {
      VerifyOptions O;
      O.Chrono = Mode;
      O.LogProofs = Mode == smt::ChronoMode::On;
      DistanceResult R = computeDistance(C.Code, O, Family);
      ASSERT_TRUE(R.Ok) << C.Code.Name << ": " << R.Error;
      EXPECT_EQ(R.Distance, C.Distance) << C.Code.Name << " chrono "
                                        << int(Mode);
      if (O.LogProofs) {
        ASSERT_FALSE(R.Proof.empty()) << C.Code.Name;
        proof::CheckResult CR = proof::checkProof(R.Proof);
        EXPECT_TRUE(CR.Ok) << C.Code.Name << ": " << CR.Error;
      }
    }
  }
}

TEST(Chrono, ScenarioVerdictsMatchAcrossModes) {
  // Workload-level A/B: cube-split scenario verification must reach
  // identical verdicts with chrono forced on, forced off, and auto —
  // on both a verified scenario and one with a counterexample.
  StabilizerCode Code = makeSteaneCode();
  for (uint32_t MaxErrors : {1u, 2u}) {
    Scenario S =
        makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, MaxErrors);
    bool Expected = MaxErrors == 1;
    for (smt::ChronoMode Mode : {smt::ChronoMode::Auto, smt::ChronoMode::On,
                                 smt::ChronoMode::Off}) {
      VerifyOptions O;
      O.Parallel = true;
      O.Threads = 2;
      O.Chrono = Mode;
      VerificationResult R = verifyScenario(S, O);
      ASSERT_TRUE(R.StructuralOk) << R.Error;
      EXPECT_EQ(R.Verified, Expected)
          << "t=" << MaxErrors << " chrono mode " << int(Mode);
      if (!Expected) {
        EXPECT_FALSE(R.CounterExample.empty());
      }
    }
  }
}
