//===- tests/cnf_encoder_test.cpp - Cardinality encoding properties -------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for smt/CnfEncoder: on random at-most-k / at-least-k
/// instances over n <= 12 variables, both cardinality encodings must be
/// equisatisfiable — verified the strong way, by enumerating *all* models
/// with blocking clauses and comparing the counts against the binomial
/// sums — and random mixed formulas must get the same verdict plus
/// self-validating models from either encoding.
///
//===----------------------------------------------------------------------===//

#include "smt/CubeSolver.h"
#include "support/Rng.h"
#include "testing/ModelChecker.h"

#include <gtest/gtest.h>

using namespace veriqec;
using namespace veriqec::smt;

namespace {

/// Counts the models of (Ctx, Root) projected onto the named variables by
/// iterated solving with blocking clauses.
uint64_t countModels(const BoolContext &Ctx, ExprRef Root,
                     CardinalityEncoding Enc) {
  ProblemOptions PO;
  PO.CardEnc = Enc;
  VerificationProblem Problem(Ctx, Root, PO);
  if (Problem.TriviallyUnsat)
    return 0;
  sat::Solver S = Problem.makeSolver();
  uint64_t Count = 0;
  while (S.solve() == sat::SolveResult::Sat) {
    ++Count;
    EXPECT_LE(Count, 1u << 13) << "runaway model enumeration";
    std::vector<sat::Lit> Blocking;
    for (const auto &[Name, V] : Problem.NamedVars)
      Blocking.push_back(sat::Lit(V, S.modelValue(V)));
    if (!S.addClause(std::move(Blocking)))
      break;
  }
  return Count;
}

uint64_t binomial(uint64_t N, uint64_t K) {
  if (K > N)
    return 0;
  uint64_t R = 1;
  for (uint64_t I = 0; I != K; ++I)
    R = R * (N - I) / (I + 1);
  return R;
}

uint64_t countAtMost(uint64_t N, uint64_t K) {
  uint64_t Total = 0;
  for (uint64_t W = 0; W <= K && W <= N; ++W)
    Total += binomial(N, W);
  return Total;
}

std::vector<ExprRef> makeVars(BoolContext &Ctx, size_t N) {
  std::vector<ExprRef> Vars;
  for (size_t I = 0; I != N; ++I)
    Vars.push_back(Ctx.mkVar("v" + std::to_string(I)));
  return Vars;
}

/// Random expression over the given variables (depth-bounded).
ExprRef randomExpr(BoolContext &Ctx, const std::vector<ExprRef> &Vars,
                   Rng &R, int Depth) {
  if (Depth == 0 || R.nextBelow(4) == 0)
    return Vars[R.nextBelow(Vars.size())];
  switch (R.nextBelow(6)) {
  case 0:
    return Ctx.mkNot(randomExpr(Ctx, Vars, R, Depth - 1));
  case 1:
    return Ctx.mkAnd(randomExpr(Ctx, Vars, R, Depth - 1),
                     randomExpr(Ctx, Vars, R, Depth - 1));
  case 2:
    return Ctx.mkOr(randomExpr(Ctx, Vars, R, Depth - 1),
                    randomExpr(Ctx, Vars, R, Depth - 1));
  case 3:
    return Ctx.mkXor(randomExpr(Ctx, Vars, R, Depth - 1),
                     randomExpr(Ctx, Vars, R, Depth - 1));
  case 4: {
    std::vector<ExprRef> Subset;
    for (ExprRef V : Vars)
      if (R.nextBool())
        Subset.push_back(V);
    if (Subset.empty())
      Subset.push_back(Vars[0]);
    uint32_t K = static_cast<uint32_t>(R.nextBelow(Subset.size() + 1));
    return Ctx.mkAtMost(std::move(Subset), K);
  }
  default: {
    std::vector<ExprRef> Subset;
    for (ExprRef V : Vars)
      if (R.nextBool())
        Subset.push_back(V);
    if (Subset.empty())
      Subset.push_back(Vars[0]);
    uint32_t K = static_cast<uint32_t>(R.nextBelow(Subset.size() + 1));
    return Ctx.mkAtLeast(std::move(Subset), K);
  }
  }
}

} // namespace

TEST(CnfEncoder, AtMostModelCountsMatchAcrossEncodings) {
  Rng R(31337);
  for (int Iter = 0; Iter != 25; ++Iter) {
    size_t N = 3 + R.nextBelow(10); // 3..12
    uint32_t K = static_cast<uint32_t>(R.nextBelow(N + 1));
    BoolContext Ctx;
    ExprRef Root = Ctx.mkAtMost(makeVars(Ctx, N), K);
    uint64_t Expected = countAtMost(N, K);
    EXPECT_EQ(countModels(Ctx, Root, CardinalityEncoding::SequentialCounter),
              Expected)
        << "seq n=" << N << " k=" << K;
    EXPECT_EQ(countModels(Ctx, Root, CardinalityEncoding::PairwiseNaive),
              Expected)
        << "pairwise n=" << N << " k=" << K;
  }
}

TEST(CnfEncoder, AtLeastModelCountsMatchAcrossEncodings) {
  Rng R(4242);
  for (int Iter = 0; Iter != 15; ++Iter) {
    size_t N = 3 + R.nextBelow(9); // 3..11
    uint32_t K = static_cast<uint32_t>(R.nextBelow(N + 1));
    BoolContext Ctx;
    ExprRef Root = Ctx.mkAtLeast(makeVars(Ctx, N), K);
    uint64_t Expected = (1ull << N) - (K ? countAtMost(N, K - 1) : 0);
    EXPECT_EQ(countModels(Ctx, Root, CardinalityEncoding::SequentialCounter),
              Expected)
        << "seq n=" << N << " k=" << K;
    EXPECT_EQ(countModels(Ctx, Root, CardinalityEncoding::PairwiseNaive),
              Expected)
        << "pairwise n=" << N << " k=" << K;
  }
}

TEST(CnfEncoder, RandomFormulasAreEquisatisfiableWithValidModels) {
  Rng R(777);
  int SatCases = 0;
  for (int Iter = 0; Iter != 60; ++Iter) {
    size_t N = 3 + R.nextBelow(8);
    BoolContext Ctx;
    std::vector<ExprRef> Vars = makeVars(Ctx, N);
    std::vector<ExprRef> Conjuncts;
    size_t Terms = 1 + R.nextBelow(3);
    for (size_t T = 0; T != Terms; ++T)
      Conjuncts.push_back(randomExpr(Ctx, Vars, R, 3));
    ExprRef Root = Ctx.mkAnd(std::move(Conjuncts));

    SolveOptions Seq, Pair;
    Pair.CardEnc = CardinalityEncoding::PairwiseNaive;
    SolveOutcome A = solveExpr(Ctx, Root, Seq);
    SolveOutcome B = solveExpr(Ctx, Root, Pair);
    ASSERT_EQ(A.Result, B.Result) << "iter " << Iter;
    for (const SolveOutcome *O : {&A, &B}) {
      if (O->Result != sat::SolveResult::Sat)
        continue;
      ++SatCases;
      veriqec::testing::ModelCheckResult MC =
          veriqec::testing::evaluateUnderModel(Ctx, Root, O->Model);
      EXPECT_TRUE(MC.Satisfies) << "iter " << Iter;
      EXPECT_EQ(MC.MissingVars, 0u);
    }
  }
  EXPECT_GT(SatCases, 0);
}
