//===- tests/dist_test.cpp - Distributed verification layer ----------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
//
// The dist/ subsystem: codec round trips over fuzzer-generated
// verification problems, strict rejection of truncated/corrupted frames,
// the version handshake, loopback and TCP end-to-end verification
// equality with the in-process engine, worker-drop recovery, cross-node
// pruning plumbing, the incremental distance handle API, and the
// cube-split sizing heuristic.
//
//===----------------------------------------------------------------------===//

#include "dist/Codec.h"
#include "dist/Coordinator.h"
#include "dist/Transport.h"
#include "dist/Worker.h"
#include "engine/CubeEngine.h"
#include "engine/VerificationEngine.h"
#include "qec/Codes.h"
#include "testing/ModelChecker.h"
#include "testing/ScenarioFuzzer.h"
#include "verifier/Verifier.h"

#include <gtest/gtest.h>

#include <thread>

using namespace veriqec;
using namespace veriqec::dist;
using sat::Lit;
namespace vt = veriqec::testing;

namespace {

/// Canonical bytes of a problem message (the codec sorts map entries, so
/// byte equality is exact structural equality, private fields included).
std::vector<uint8_t> problemFrame(const smt::VerificationProblem &P) {
  ProblemMsg M;
  M.ProblemId = 7;
  M.Config.HardenBudget = true;
  M.Config.BudgetBound = 2;
  M.Config.ConflictBudget = 123;
  M.Config.RandomSeed = 99;
  M.Problem = std::const_pointer_cast<smt::VerificationProblem>(
      std::shared_ptr<const smt::VerificationProblem>(
          &P, [](const smt::VerificationProblem *) {}));
  return encodeMessage(M);
}

/// An in-process fleet: a coordinator with N loopback workers.
struct Fleet {
  Coordinator Coord;
  std::vector<std::thread> Threads;

  explicit Fleet(size_t NumWorkers, size_t JobsPerWorker = 1,
                 uint64_t MaxBatches = 0, CoordinatorOptions CO = {})
      : Coord(CO) {
    std::vector<WorkerOptions> PerWorker(NumWorkers);
    for (size_t I = 0; I != NumWorkers; ++I) {
      PerWorker[I].Jobs = JobsPerWorker;
      // Only the first worker gets the crash hook.
      PerWorker[I].MaxBatches = I == 0 ? MaxBatches : 0;
    }
    Threads = spawnLoopbackWorkers(Coord, std::move(PerWorker));
    EXPECT_TRUE(Coord.waitForWorkers(NumWorkers, 10000));
  }

  ~Fleet() {
    Coord.shutdownWorkers();
    for (std::thread &T : Threads)
      T.join();
  }
};

} // namespace

// -- Codec -------------------------------------------------------------------

TEST(DistCodec, RoundTripsFuzzerGeneratedProblems) {
  vt::FuzzerOptions FO;
  FO.MaxQubits = 8;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    vt::FuzzCase C = vt::generateFuzzCase(Seed, FO);
    smt::BoolContext Ctx;
    BuiltVc Vc = engine::buildScenarioVc(Ctx, C.Scn);
    ASSERT_TRUE(Vc.Ok) << "seed " << Seed;
    smt::ProblemOptions PO;
    PO.NativeXor = Seed % 2 == 0;
    PO.ProtectedVars = C.Scn.ErrorVars;
    smt::VerificationProblem P(Ctx, Vc.NegatedVc, PO);

    std::vector<uint8_t> Frame = problemFrame(P);
    Message M;
    ASSERT_TRUE(decodeMessage(Frame, M)) << "seed " << Seed;
    ProblemMsg *PM = std::get_if<ProblemMsg>(&M);
    ASSERT_NE(PM, nullptr);
    EXPECT_EQ(PM->ProblemId, 7u);
    EXPECT_TRUE(PM->Config.HardenBudget);
    EXPECT_EQ(PM->Config.BudgetBound, 2u);
    EXPECT_EQ(PM->Config.ConflictBudget, 123u);
    EXPECT_EQ(PM->Config.RandomSeed, 99u);

    // Exact structural equality: the canonical re-encoding is identical
    // byte-for-byte (covers every private field too).
    EXPECT_EQ(problemFrame(*PM->Problem), Frame) << "seed " << Seed;

    // Behavioral equality: the decoded problem solves and reads back
    // models exactly like the original.
    sat::Solver A = P.makeSolver(), B = PM->Problem->makeSolver();
    sat::SolveResult RA = A.solve(), RB = B.solve();
    EXPECT_EQ(RA, RB) << "seed " << Seed;
    if (RA == sat::SolveResult::Sat && RB == sat::SolveResult::Sat) {
      std::unordered_map<std::string, bool> MB;
      PM->Problem->readModel(B, MB);
      // The decoded problem's model (reconstruction included) satisfies
      // the original negated VC.
      vt::ModelCheckResult MC =
          vt::evaluateUnderModel(Ctx, Vc.NegatedVc, MB);
      EXPECT_EQ(MC.MissingVars, 0u) << "seed " << Seed;
      EXPECT_TRUE(MC.Satisfies) << "seed " << Seed;
    }
    // Cube refutation agrees on the split literals.
    if (!C.Scn.ErrorVars.empty()) {
      std::vector<Lit> Cube;
      for (const std::string &Name : C.Scn.ErrorVars)
        Cube.push_back(sat::mkLit(P.varOfName(Name)));
      EXPECT_EQ(P.cubeRefuted(Cube), PM->Problem->cubeRefuted(Cube));
    }
  }
}

TEST(DistCodec, RoundTripsBatchResultsModelsAndCores) {
  BatchResultMsg R;
  R.ProblemId = 3;
  R.BatchId = 11;
  R.Status = BatchStatus::Sat;
  R.Model = {{"e0", true}, {"e1", false}, {"m__3", true}};
  R.Stats.Conflicts = 17;
  R.Stats.BinPropagations = 12345678901234ull;
  R.Stats.LongPropagations = 98765432109876ull;
  R.Stats.XorEliminations = 5;
  R.Stats.ChronoBacktracks = 21;
  R.Stats.OutOfOrderAssignments = 404;
  R.Stats.TrailSavedLits = 777;
  R.Solved = 41;
  R.PrunedGf2 = 4;
  R.PrunedCore = 2;
  R.NewCores = {{sat::mkLit(3), ~sat::mkLit(7)}, {~sat::mkLit(1)}};
  std::vector<uint8_t> Frame = encodeMessage(R);
  Message M;
  ASSERT_TRUE(decodeMessage(Frame, M));
  BatchResultMsg *D = std::get_if<BatchResultMsg>(&M);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->ProblemId, 3u);
  EXPECT_EQ(D->BatchId, 11u);
  EXPECT_EQ(D->Status, BatchStatus::Sat);
  EXPECT_EQ(D->Model, R.Model);
  EXPECT_EQ(D->Stats.Conflicts, 17u);
  EXPECT_EQ(D->Stats.BinPropagations, 12345678901234ull);
  EXPECT_EQ(D->Stats.LongPropagations, 98765432109876ull);
  EXPECT_EQ(D->Stats.XorEliminations, 5u);
  EXPECT_EQ(D->Stats.ChronoBacktracks, 21u);
  EXPECT_EQ(D->Stats.OutOfOrderAssignments, 404u);
  EXPECT_EQ(D->Stats.TrailSavedLits, 777u);
  EXPECT_EQ(D->Solved, 41u);
  EXPECT_EQ(D->PrunedGf2, 4u);
  EXPECT_EQ(D->PrunedCore, 2u);
  EXPECT_EQ(D->NewCores, R.NewCores);
}

TEST(DistCodec, RoundTripsHeartbeatAndEvictedFrames) {
  HeartbeatMsg H;
  H.BatchesInFlight = 3;
  H.CubesDelta = 123456789ull;
  H.ConflictsDelta = 9876543210123ull;
  std::vector<uint8_t> HF = encodeMessage(H);
  Message M;
  ASSERT_TRUE(decodeMessage(HF, M));
  HeartbeatMsg *DH = std::get_if<HeartbeatMsg>(&M);
  ASSERT_NE(DH, nullptr);
  EXPECT_EQ(DH->BatchesInFlight, 3u);
  EXPECT_EQ(DH->CubesDelta, 123456789ull);
  EXPECT_EQ(DH->ConflictsDelta, 9876543210123ull);

  EvictedMsg E;
  E.Reason = "silence timeout (600 ms)";
  std::vector<uint8_t> EF = encodeMessage(E);
  ASSERT_TRUE(decodeMessage(EF, M));
  EvictedMsg *DE = std::get_if<EvictedMsg>(&M);
  ASSERT_NE(DE, nullptr);
  EXPECT_EQ(DE->Reason, E.Reason);

  // Strict decoding extends to the v5 frames: every proper prefix (and
  // trailing garbage) must be rejected.
  for (size_t Len = 0; Len != HF.size(); ++Len)
    EXPECT_FALSE(decodeMessage({HF.data(), Len}, M)) << "prefix " << Len;
  for (size_t Len = 0; Len != EF.size(); ++Len)
    EXPECT_FALSE(decodeMessage({EF.data(), Len}, M)) << "prefix " << Len;
  HF.push_back(0);
  EXPECT_FALSE(decodeMessage(HF, M));
}

TEST(DistCodec, RejectsTruncatedFrames) {
  // Every proper prefix of a small message must be rejected.
  CubeBatchMsg B;
  B.ProblemId = 1;
  B.BatchId = 2;
  B.Cubes = {{sat::mkLit(0), ~sat::mkLit(1)}, {sat::mkLit(2)}};
  std::vector<uint8_t> Frame = encodeMessage(B);
  for (size_t Len = 0; Len != Frame.size(); ++Len) {
    Message M;
    EXPECT_FALSE(decodeMessage({Frame.data(), Len}, M))
        << "prefix of length " << Len << " decoded";
  }
  // Ditto for a sampled set of prefixes of a whole problem frame.
  StabilizerCode Steane = makeSteaneCode();
  Scenario S = makeMemoryScenario(Steane, PauliKind::Y, LogicalBasis::Z, 1);
  smt::BoolContext Ctx;
  BuiltVc Vc = engine::buildScenarioVc(Ctx, S);
  ASSERT_TRUE(Vc.Ok);
  smt::VerificationProblem P(Ctx, Vc.NegatedVc, {});
  std::vector<uint8_t> PF = problemFrame(P);
  for (size_t Len = 0; Len < PF.size(); Len += 97) {
    Message M;
    EXPECT_FALSE(decodeMessage({PF.data(), Len}, M));
  }
  // Trailing garbage is rejected too.
  Frame.push_back(0);
  Message M;
  EXPECT_FALSE(decodeMessage(Frame, M));
}

TEST(DistCodec, SurvivesCorruptedFramesWithoutCrashing) {
  StabilizerCode Code = makeFiveQubitCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 1);
  smt::BoolContext Ctx;
  BuiltVc Vc = engine::buildScenarioVc(Ctx, S);
  ASSERT_TRUE(Vc.Ok);
  smt::VerificationProblem P(Ctx, Vc.NegatedVc, {});
  std::vector<uint8_t> Frame = problemFrame(P);
  // Bit flips must never crash or hang the decoder (the ASan CI job
  // gives this teeth); most corruptions are rejected outright. Sampled
  // positions — a dense sweep of full problem decodes is minutes under
  // ASan; the CubeBatch sweep below covers every offset of a frame.
  size_t Stride = std::max<size_t>(1, Frame.size() / 64);
  for (size_t Pos = 0; Pos < Frame.size(); Pos += Stride) {
    std::vector<uint8_t> Bad = Frame;
    Bad[Pos] ^= 0xff;
    Message M;
    (void)decodeMessage(Bad, M);
  }
  {
    CubeBatchMsg B;
    B.ProblemId = 1;
    B.BatchId = 2;
    B.Cubes = {{sat::mkLit(0), ~sat::mkLit(1)}, {sat::mkLit(2)}};
    std::vector<uint8_t> Small = encodeMessage(B);
    for (size_t Pos = 0; Pos != Small.size(); ++Pos)
      for (uint8_t Flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
        std::vector<uint8_t> Bad = Small;
        Bad[Pos] ^= Flip;
        Message M;
        (void)decodeMessage(Bad, M);
      }
  }
  // A count field blown up to claim gigabytes must be rejected, not
  // allocated: the kind byte + problem id + config precede the clause
  // count (u64 NumVars is next); corrupt the clause-count field.
  std::vector<uint8_t> Bad = Frame;
  size_t ClauseCountAt = 1 + 4 + (1 + 4 + 8 + 8) + 8;
  for (int I = 0; I != 4; ++I)
    Bad[ClauseCountAt + I] = 0xff;
  Message M;
  EXPECT_FALSE(decodeMessage(Bad, M));
}

// -- Handshake ---------------------------------------------------------------

TEST(DistHandshake, WorkerRejectsVersionMismatchedCoordinator) {
  LoopbackPair Pair = makeLoopbackPair();
  std::thread T([End = std::move(Pair.B)]() mutable {
    EXPECT_EQ(runWorker(std::move(End)), 1);
  });
  std::vector<uint8_t> Frame;
  ASSERT_TRUE(Pair.A->receive(Frame, 5000));
  Message M;
  ASSERT_TRUE(decodeMessage(Frame, M));
  HelloMsg *Hello = std::get_if<HelloMsg>(&M);
  ASSERT_NE(Hello, nullptr);
  EXPECT_EQ(Hello->Version, WireVersion);
  HelloAckMsg Ack;
  Ack.Version = WireVersion + 1;
  Ack.Accepted = false;
  Ack.Reason = "version skew";
  Pair.A->send(encodeMessage(Ack));
  T.join();
}

TEST(DistHandshake, CoordinatorRejectsVersionMismatchedWorker) {
  Coordinator Coord;
  LoopbackPair Pair = makeLoopbackPair();
  Coord.addWorker(std::move(Pair.A));
  HelloMsg Hello;
  Hello.Version = WireVersion + 1;
  Hello.Slots = 4;
  Pair.B->send(encodeMessage(Hello));
  EXPECT_FALSE(Coord.waitForWorkers(1, 300));
  std::vector<uint8_t> Frame;
  ASSERT_TRUE(Pair.B->receive(Frame, 5000));
  Message M;
  ASSERT_TRUE(decodeMessage(Frame, M));
  HelloAckMsg *Ack = std::get_if<HelloAckMsg>(&M);
  ASSERT_NE(Ack, nullptr);
  EXPECT_FALSE(Ack->Accepted);
  EXPECT_NE(Ack->Reason.find("version"), std::string::npos);
  EXPECT_EQ(Coord.numWorkers(), 0u);
}

// -- End-to-end --------------------------------------------------------------

TEST(DistLoopback, VerdictsMatchInProcessEngine) {
  StabilizerCode Steane = makeSteaneCode();
  std::vector<Scenario> Scenarios;
  // A verified case, a counterexample case (budget beyond correctable),
  // and a multi-cycle case.
  Scenarios.push_back(
      makeMemoryScenario(Steane, PauliKind::Y, LogicalBasis::Z, 1));
  Scenarios.push_back(
      makeMemoryScenario(Steane, PauliKind::Y, LogicalBasis::Z, 3));
  Scenarios.push_back(makeMultiCycleScenario(Steane, PauliKind::X,
                                             LogicalBasis::Z, 2, 1));

  VerifyOptions VO;
  VO.Parallel = true;
  engine::VerificationEngine Engine(2);
  std::vector<VerificationResult> Local = Engine.verifyAll(Scenarios, VO);

  Fleet F(2, 2);
  std::vector<VerificationResult> Remote =
      Engine.verifyAll(Scenarios, VO, F.Coord);

  ASSERT_EQ(Local.size(), Remote.size());
  for (size_t I = 0; I != Scenarios.size(); ++I) {
    EXPECT_EQ(Local[I].Verified, Remote[I].Verified) << Scenarios[I].Name;
    EXPECT_EQ(Local[I].Aborted, Remote[I].Aborted) << Scenarios[I].Name;
    if (!Remote[I].Verified) {
      // The remote counterexample is a genuine model of the negated VC.
      ASSERT_FALSE(Remote[I].CounterExample.empty());
      smt::BoolContext Ctx;
      BuiltVc Vc = engine::buildScenarioVc(Ctx, Scenarios[I], VO);
      ASSERT_TRUE(Vc.Ok);
      vt::ModelCheckResult MC = vt::evaluateUnderModel(
          Ctx, Vc.NegatedVc, Remote[I].CounterExample);
      EXPECT_TRUE(MC.Satisfies) << Scenarios[I].Name;
      EXPECT_EQ(MC.MissingVars, 0u) << Scenarios[I].Name;
    }
  }
}

TEST(DistLoopback, WorkerDropMidRunRecoversToTheCorrectVerdict) {
  std::vector<Scenario> Scenarios;
  Scenarios.push_back(makeMemoryScenario(makeRotatedSurfaceCode(3),
                                         PauliKind::Y, LogicalBasis::Z, 1));
  // A heavier second scenario keeps the surviving worker busy long past
  // the crash, so the drop is always observed mid-run.
  Scenarios.push_back(makeMemoryScenario(makeRotatedSurfaceCode(5),
                                         PauliKind::X, LogicalBasis::X, 2));

  VerifyOptions VO;
  VO.Parallel = true;
  // First worker vanishes after one batch; the second finishes the run.
  Fleet F(2, 1, /*MaxBatches=*/1);
  engine::VerificationEngine Engine(1);
  std::vector<VerificationResult> Remote =
      Engine.verifyAll(Scenarios, VO, F.Coord);
  for (const VerificationResult &R : Remote) {
    EXPECT_TRUE(R.StructuralOk);
    EXPECT_TRUE(R.Verified);
    EXPECT_FALSE(R.Aborted);
  }
  EXPECT_EQ(F.Coord.stats().WorkersDropped, 1u);
  EXPECT_GE(F.Coord.stats().BatchesRequeued, 1u);
}

TEST(DistLoopback, TimedOutWorkerIsDroppedAndItsBatchesRequeued) {
  CoordinatorOptions CO;
  // Wide enough that a briefly descheduled LIVE worker is never dropped
  // on a loaded CI box (its batches take ~1 ms each); the mute worker
  // stays silent forever, so it always trips the timer.
  CO.WorkerTimeoutMs = 600;
  Coordinator Coord(CO);
  // A mute worker: completes the handshake by hand, then never answers.
  LoopbackPair Mute = makeLoopbackPair();
  Coord.addWorker(std::move(Mute.A));
  HelloMsg Hello;
  Hello.Slots = 1;
  Mute.B->send(encodeMessage(Hello));
  ASSERT_TRUE(Coord.waitForWorkers(1, 2000));
  // And one real worker that joins late, after the mute one times out.
  LoopbackPair Live = makeLoopbackPair();
  Coord.addWorker(std::move(Live.A));
  std::thread T([End = std::move(Live.B)]() mutable {
    runWorker(std::move(End));
  });
  StabilizerCode Steane = makeSteaneCode();
  Scenario S = makeMemoryScenario(Steane, PauliKind::Y, LogicalBasis::Z, 1);
  VerifyOptions VO;
  VO.Parallel = true;
  engine::VerificationEngine Engine(1);
  std::vector<VerificationResult> R = Engine.verifyAll({&S, 1}, VO, Coord);
  EXPECT_TRUE(R[0].Verified);
  EXPECT_EQ(Coord.stats().WorkersDropped, 1u);
  EXPECT_GE(Coord.stats().BatchesRequeued, 1u);
  Coord.shutdownWorkers();
  T.join();
  Mute.B->close();
}

TEST(DistLoopback, HeartbeatingGrinderOutlivesTheSilenceTimeout) {
  CoordinatorOptions CO;
  CO.WorkerTimeoutMs = 600;
  Coordinator Coord(CO);
  // The fleet's only worker sits on its first batch for >3x the silence
  // timeout. With heartbeats flowing well inside the timeout, the
  // coordinator must treat it as grinding, not dead — evicting it would
  // strand the whole run (there is nobody else to requeue to).
  WorkerOptions WO;
  WO.HeartbeatMs = 25;
  WO.GrindFirstBatchMs = 2000;
  std::vector<std::thread> Threads =
      spawnLoopbackWorkers(Coord, std::vector<WorkerOptions>{WO});
  ASSERT_TRUE(Coord.waitForWorkers(1, 10000));

  StabilizerCode Steane = makeSteaneCode();
  Scenario S = makeMemoryScenario(Steane, PauliKind::Y, LogicalBasis::Z, 1);
  VerifyOptions VO;
  VO.Parallel = true;
  engine::VerificationEngine Engine(1);
  std::vector<VerificationResult> R = Engine.verifyAll({&S, 1}, VO, Coord);
  EXPECT_TRUE(R[0].Verified);
  EXPECT_FALSE(R[0].Aborted);
  EXPECT_EQ(Coord.stats().WorkersDropped, 0u);
  EXPECT_EQ(Coord.stats().BatchesRequeued, 0u);
  EXPECT_GT(Coord.stats().HeartbeatsReceived, 0u);
  Coord.shutdownWorkers();
  for (std::thread &T : Threads)
    T.join();
}

TEST(DistLoopback, SilentGrinderIsEvictedAndItsBatchesRequeued) {
  CoordinatorOptions CO;
  CO.WorkerTimeoutMs = 600;
  Coordinator Coord(CO);
  // The grinder: heartbeats off, and its first batch "runs" far past
  // the timeout — by silence alone it is indistinguishable from a dead
  // worker, so the coordinator must evict it and requeue its batches.
  LoopbackPair Grinder = makeLoopbackPair();
  Coord.addWorker(std::move(Grinder.A));
  int GrinderExit = -1;
  std::thread GT([&GrinderExit, End = std::move(Grinder.B)]() mutable {
    WorkerOptions WO;
    WO.GrindFirstBatchMs = 60000;
    GrinderExit = runWorker(std::move(End), WO);
  });
  // The grinder must be the whole fleet when batches shard, so its
  // first grant arrives (and starts grinding) before anyone else can
  // absorb the work; the healthy worker joins during the run — its
  // handshake completes inside the solve pumps — steals the grinder's
  // queued batches, and finishes the requeued in-flight one after the
  // eviction.
  ASSERT_TRUE(Coord.waitForWorkers(1, 10000));
  LoopbackPair Live = makeLoopbackPair();
  Coord.addWorker(std::move(Live.A));
  std::thread LT(
      [End = std::move(Live.B)]() mutable { runWorker(std::move(End)); });

  StabilizerCode Steane = makeSteaneCode();
  Scenario S = makeMemoryScenario(Steane, PauliKind::Y, LogicalBasis::Z, 1);
  VerifyOptions VO;
  VO.Parallel = true;
  engine::VerificationEngine Engine(1);
  std::vector<VerificationResult> R = Engine.verifyAll({&S, 1}, VO, Coord);
  EXPECT_TRUE(R[0].Verified);
  EXPECT_FALSE(R[0].Aborted);
  EXPECT_EQ(Coord.stats().WorkersDropped, 1u);
  EXPECT_GE(Coord.stats().BatchesRequeued, 1u);
  Coord.shutdownWorkers();
  GT.join();
  LT.join();
  // The Evicted frame reached the grinder before its link closed: it
  // exited through the eviction path, not a bare link error.
  EXPECT_EQ(GrinderExit, 3);
}

TEST(DistLoopback, DistanceHandleApiMatchesLocalSearch) {
  Fleet F(2, 1);
  for (const StabilizerCode &Code :
       {makeSteaneCode(), makeFiveQubitCode(), makeRotatedSurfaceCode(3)}) {
    VerifyOptions VO;
    DistanceResult Local = computeDistance(Code, VO);
    DistanceResult Remote =
        computeDistance(Code, VO, PauliFamily::Any, &F.Coord);
    ASSERT_TRUE(Local.Ok) << Code.Name;
    ASSERT_TRUE(Remote.Ok) << Code.Name;
    EXPECT_EQ(Local.Distance, Remote.Distance) << Code.Name;
    EXPECT_EQ(Local.SolverCalls, Remote.SolverCalls) << Code.Name;
    ASSERT_TRUE(Remote.Witness.has_value());
    EXPECT_EQ(Remote.Witness->weight(), Remote.Distance) << Code.Name;
  }
}

TEST(DistTcp, TwoWorkersOverRealSocketsMatchLocalVerdicts) {
  std::string Err;
  std::unique_ptr<Listener> L = listenTcp("127.0.0.1:0", Err);
  if (!L)
    GTEST_SKIP() << "cannot bind a local TCP socket: " << Err;
  uint16_t Port = L->port();
  Coordinator Coord;
  Coord.attachListener(std::move(L));
  std::vector<std::thread> Threads;
  for (int I = 0; I != 2; ++I)
    Threads.emplace_back([Port] {
      std::string ConnectErr;
      std::unique_ptr<Link> W =
          connectTcp("127.0.0.1:" + std::to_string(Port), ConnectErr);
      ASSERT_NE(W, nullptr) << ConnectErr;
      WorkerOptions WO;
      WO.Jobs = 2;
      runWorker(std::move(W), WO);
    });
  ASSERT_TRUE(Coord.waitForWorkers(2, 10000));
  EXPECT_EQ(Coord.numSlots(), 4u);

  StabilizerCode Steane = makeSteaneCode();
  std::vector<Scenario> Scenarios;
  Scenarios.push_back(
      makeMemoryScenario(Steane, PauliKind::Y, LogicalBasis::Z, 1));
  Scenarios.push_back(
      makeMemoryScenario(Steane, PauliKind::Z, LogicalBasis::X, 3));
  VerifyOptions VO;
  VO.Parallel = true;
  engine::VerificationEngine Engine(1);
  std::vector<VerificationResult> Remote =
      Engine.verifyAll(Scenarios, VO, Coord);
  std::vector<VerificationResult> Local = Engine.verifyAll(Scenarios, VO);
  for (size_t I = 0; I != Scenarios.size(); ++I) {
    EXPECT_EQ(Local[I].Verified, Remote[I].Verified) << I;
    EXPECT_EQ(Local[I].Aborted, Remote[I].Aborted) << I;
  }
  Coord.shutdownWorkers();
  for (std::thread &T : Threads)
    T.join();
}

// -- Cube-split sizing heuristic ---------------------------------------------

TEST(CubeSplitHeuristic, CountMatchesEnumeration) {
  for (uint32_t Threshold : {0u, 3u, 9u, 20u, 35u}) {
    for (uint32_t MaxOnes : {0u, 1u, 2u, ~0u}) {
      std::vector<sat::Var> Vars;
      for (sat::Var V = 0; V != 12; ++V)
        Vars.push_back(V);
      uint64_t Expect =
          engine::enumerateCubes(Vars, 5, Threshold, MaxOnes).size();
      EXPECT_EQ(engine::countCubes(Vars.size(), 5, Threshold, MaxOnes,
                                   1 << 20),
                Expect)
          << "T=" << Threshold << " MaxOnes=" << MaxOnes;
    }
  }
}

TEST(CubeSplitHeuristic, PicksTheSmallestThresholdReachingTheTarget) {
  // 40 split vars, distance hint 9, budget 4: the flat cut would be
  // 2*9*4+4 = 76. The heuristic must choose the least threshold whose
  // cube count reaches the floor/slot target, never exceeding the cap.
  uint64_t Count = 0;
  uint32_t T1 = engine::pickSplitThreshold(40, 9, 76, 4, 1, &Count);
  EXPECT_LE(T1, 76u);
  EXPECT_GE(Count, 8192u); // the single-slot floor
  if (T1 > 1) {
    uint64_t Below = engine::countCubes(40, 9, T1 - 1, 4, 1 << 24);
    EXPECT_LT(Below, 8192u) << "threshold not minimal";
  }
  // More slots never shrink the threshold.
  uint32_t T2 = engine::pickSplitThreshold(40, 9, 76, 4, 4096, &Count);
  EXPECT_GE(T2, T1);
  // A tiny problem can never reach the target: the cap is kept.
  EXPECT_EQ(engine::pickSplitThreshold(3, 2, 10, 1, 64, &Count), 10u);
}
