//===- tests/distance_test.cpp - Incremental distance search --------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `veriqec distance` workload: computeDistance() must return the
/// documented distance for every registry code up to surface7 (the
/// bit-flip codes document their X-family distance), the witness must be
/// a genuine minimal undetectable logical operator, the whole search must
/// run on one incremental solver (O(log n) calls), and the verdict must
/// agree with the legacy per-weight estimator.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <gtest/gtest.h>

using namespace veriqec;

namespace {

size_t weightOf(const Pauli &P) {
  size_t W = 0;
  for (size_t Q = 0; Q != P.numQubits(); ++Q)
    W += P.kindAt(Q) != PauliKind::I;
  return W;
}

void expectDistance(const StabilizerCode &Code, size_t Documented,
                    PauliFamily Family = PauliFamily::Any) {
  DistanceResult R = computeDistance(Code, {}, Family);
  ASSERT_TRUE(R.Ok) << Code.Name << ": " << R.Error;
  EXPECT_EQ(R.Distance, Documented) << Code.Name;
  ASSERT_TRUE(R.Witness.has_value()) << Code.Name;
  EXPECT_EQ(weightOf(*R.Witness), R.Distance) << Code.Name;
  if (Family == PauliFamily::Any) {
    EXPECT_TRUE(Code.isLogicalOperator(*R.Witness))
        << Code.Name << ": witness " << R.Witness->toString()
        << " is not an undetectable logical operator";
  }
  // Binary search over an incremental solver: a handful of calls, not
  // one per weight.
  EXPECT_LE(R.SolverCalls, 12u) << Code.Name;
}

} // namespace

TEST(Distance, MatchesDocumentedDistanceForRegistryCodesUpToSurface7) {
  expectDistance(makeSteaneCode(), 3);
  expectDistance(makeFiveQubitCode(), 3);
  expectDistance(makeSixQubitCode(), makeSixQubitCode().Distance);
  expectDistance(makeRotatedSurfaceCode(3), 3);
  expectDistance(makeRotatedSurfaceCode(5), 5);
  expectDistance(makeRotatedSurfaceCode(7), 7);
  expectDistance(makeXzzxSurfaceCode(3, 3), 3);
  expectDistance(makeReedMullerCode(3), makeReedMullerCode(3).Distance);
  expectDistance(makeDodecacodeSubstitute(),
                 makeDodecacodeSubstitute().Distance);
  expectDistance(makeHoneycombSubstitute(),
                 makeHoneycombSubstitute().Distance);
}

TEST(Distance, RepetitionCodesDocumentTheBitFlipFamily) {
  // The repetition code corrects bit flips only: its true stabilizer
  // distance is 1 (a single Z is an undetectable logical), while the
  // documented distance N is attained by the pure-X family.
  for (size_t N : {3u, 5u}) {
    StabilizerCode Rep = makeRepetitionCode(N);
    DistanceResult Any = computeDistance(Rep);
    ASSERT_TRUE(Any.Ok);
    EXPECT_EQ(Any.Distance, 1u);
    expectDistance(Rep, N, PauliFamily::XOnly);
  }
}

TEST(Distance, LdpcRegistryRowsMatchDocumentedDistances) {
  // The Table 3 LDPC rows (hypergraph products). These are the rows the
  // native XOR engine exists for: without Gauss-in-the-loop the larger
  // members run minutes-to-hours (tanner1 ~41 s, tanner1-full >> 60 s on
  // the reference box; see BENCH_table3.json), which is why this test is
  // guarded by a ctest TIMEOUT rather than trimmed down. Documented
  // distances: every hypergraph product here inherits d = 4 from the
  // [7,3,4] simplex kernel (resp. [8,4,4] for tanner2).
  expectDistance(makeHgp98(), 4);
  expectDistance(makeTannerIISubstitute(), 4);
  expectDistance(makeTannerISubstitute(), 4);
  expectDistance(makeTannerIFull(), 4);
}

TEST(Distance, AgreesWithTheLegacyPerWeightEstimator) {
  for (const StabilizerCode &Code :
       {makeSteaneCode(), makeGottesmanCode(3), makeCube832()}) {
    DistanceResult R = computeDistance(Code);
    ASSERT_TRUE(R.Ok) << Code.Name;
    EXPECT_EQ(R.Distance, estimateDistance(Code, Code.NumQubits))
        << Code.Name;
  }
}

TEST(Distance, PreprocessingToggleDoesNotChangeTheAnswer) {
  VerifyOptions Off;
  Off.Preprocess = false;
  for (const StabilizerCode &Code :
       {makeSteaneCode(), makeRotatedSurfaceCode(5)}) {
    DistanceResult A = computeDistance(Code);
    DistanceResult B = computeDistance(Code, Off);
    ASSERT_TRUE(A.Ok && B.Ok) << Code.Name;
    EXPECT_EQ(A.Distance, B.Distance) << Code.Name;
  }
}

TEST(Distance, ExhaustedConflictBudgetReportsAborted) {
  VerifyOptions VO;
  VO.ConflictBudget = 1;
  DistanceResult R = computeDistance(makeRotatedSurfaceCode(5), VO);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Aborted);
}
