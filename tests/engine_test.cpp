//===- tests/engine_test.cpp - Verification engine tests -------------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing engine: pool and queue mechanics, ET cube
/// enumeration, verdict determinism across 1/2/4/8 workers for both
/// UNSAT (verified) and SAT (counterexample) workloads, first-SAT-cube
/// cancellation, and batch verifyAll consistency with one-at-a-time
/// verification.
///
//===----------------------------------------------------------------------===//

#include "engine/CubeEngine.h"
#include "engine/VerificationEngine.h"
#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace veriqec;
using namespace veriqec::engine;
using smt::BoolContext;
using smt::ExprRef;
using smt::SolveOptions;
using smt::SolveOutcome;
using smt::XorMode;

TEST(WorkStealingQueue, OwnerFifoThiefLifo) {
  WorkStealingQueue<int> Q;
  for (int I = 0; I != 4; ++I)
    Q.push(I);
  int V = -1;
  ASSERT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 0); // owner pops in submission order
  ASSERT_TRUE(Q.trySteal(V));
  EXPECT_EQ(V, 3); // thief takes the opposite end
  ASSERT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 1);
  ASSERT_TRUE(Q.trySteal(V));
  EXPECT_EQ(V, 2);
  EXPECT_FALSE(Q.tryPop(V));
  EXPECT_FALSE(Q.trySteal(V));
}

TEST(ThreadPool, RunsEveryTaskOnAWorker) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numWorkers(), 4u);
  std::atomic<int> Count{0};
  std::atomic<bool> OffPool{false};
  WaitGroup Wg;
  constexpr int N = 200;
  Wg.add(N);
  for (int I = 0; I != N; ++I)
    Pool.submit([&] {
      if (ThreadPool::currentWorkerIndex() < 0)
        OffPool.store(true);
      Count.fetch_add(1);
      Wg.done();
    });
  Wg.wait();
  EXPECT_EQ(Count.load(), N);
  EXPECT_FALSE(OffPool.load());
  EXPECT_EQ(ThreadPool::currentWorkerIndex(), -1); // the test thread
}

TEST(CubeEnumeration, RespectsEtThresholdAndMaxOnes) {
  std::vector<sat::Var> Vars{0, 1, 2, 3};
  // Distance 0 degenerates ET to the bit count: full expansion to depth 4.
  auto Full = enumerateCubes(Vars, 0, 4, ~uint32_t{0});
  EXPECT_EQ(Full.size(), 16u);
  // Distance 1: ET = 2*ones + bits, so one-heavy branches terminate
  // early and the tree has 8 leaves (hand-enumerated).
  auto All = enumerateCubes(Vars, 1, 4, ~uint32_t{0});
  EXPECT_EQ(All.size(), 8u);
  // MaxOnes 1 additionally prunes every second-one branch: 5 leaves.
  auto Pruned = enumerateCubes(Vars, 1, 4, 1);
  EXPECT_EQ(Pruned.size(), 5u);
  // Threshold 0 disables splitting: one empty cube.
  auto Single = enumerateCubes(Vars, 1, 0, ~uint32_t{0});
  ASSERT_EQ(Single.size(), 1u);
  EXPECT_TRUE(Single[0].empty());
  // Deterministic order: the all-zero cube first.
  for (sat::Lit L : All.front())
    EXPECT_TRUE(L.negated());
}

namespace {

/// Exactly 3 of 10 variables set, plus a parity side condition. UNSAT
/// variant adds a contradiction.
ExprRef makeCountingFormula(BoolContext &Ctx, std::vector<std::string> &Names,
                            bool Satisfiable) {
  std::vector<ExprRef> Vars;
  for (int I = 0; I != 10; ++I) {
    Names.push_back("e" + std::to_string(I));
    Vars.push_back(Ctx.mkVar(Names.back()));
  }
  ExprRef Root = Ctx.mkAnd({Ctx.mkAtMost(Vars, 3), Ctx.mkAtLeast(Vars, 3),
                            Ctx.mkXor(Vars[0], Vars[9])});
  if (!Satisfiable)
    Root = Ctx.mkAnd(Root, Ctx.mkAtLeast(Vars, 5));
  return Root;
}

SolveOptions splitOptions(const std::vector<std::string> &Names) {
  SolveOptions Opts;
  Opts.SplitVars = Names;
  Opts.DistanceHint = 2;
  Opts.SplitThreshold = 8;
  return Opts;
}

} // namespace

TEST(CubeEngine, VerdictIsThreadCountInvariant) {
  for (bool Satisfiable : {false, true}) {
    BoolContext Ctx;
    std::vector<std::string> Names;
    ExprRef Root = makeCountingFormula(Ctx, Names, Satisfiable);
    SolveOptions Opts = splitOptions(Names);
    uint64_t BaselineCubes = 0;
    for (size_t Threads : {1u, 2u, 4u, 8u}) {
      CubeEngine Engine(Threads);
      SolveOutcome Out = Engine.solve(Ctx, Root, Opts);
      EXPECT_EQ(Out.Result, Satisfiable ? sat::SolveResult::Sat
                                        : sat::SolveResult::Unsat)
          << "threads=" << Threads;
      // The ET cube set does not depend on the pool width.
      if (!BaselineCubes)
        BaselineCubes = Out.NumCubes;
      EXPECT_EQ(Out.NumCubes, BaselineCubes) << "threads=" << Threads;
      EXPECT_GT(Out.NumCubes, 1u);
      if (Satisfiable) {
        std::vector<bool> Assignment;
        for (const std::string &Name : Names)
          Assignment.push_back(Out.Model.at(Name));
        EXPECT_TRUE(Ctx.evaluate(Root, Assignment))
            << "threads=" << Threads;
      } else {
        // All cubes are accounted for, though not necessarily all solved:
        // an UNSAT cube whose refutation used none of its own assumption
        // literals (sat::Solver::conflictCore) proves the whole problem
        // UNSAT and cancels its siblings.
        EXPECT_GE(Out.CubesSolved, 1u) << "threads=" << Threads;
        EXPECT_LE(Out.CubesSolved, Out.NumCubes) << "threads=" << Threads;
      }
    }
  }
}

TEST(CubeEngine, FirstSatCubeCancelsSiblings) {
  // Every cube of this problem is satisfiable (the aux variable is free),
  // so whichever cube finishes first must cancel all outstanding ones.
  BoolContext Ctx;
  std::vector<std::string> Names;
  for (int I = 0; I != 10; ++I) {
    Names.push_back("e" + std::to_string(I));
    Ctx.mkVar(Names.back());
  }
  ExprRef Root = Ctx.mkVar("aux");
  SolveOptions Opts = splitOptions(Names);

  CubeEngine Sequential(1);
  SolveOutcome SeqOut = Sequential.solve(Ctx, Root, Opts);
  EXPECT_EQ(SeqOut.Result, sat::SolveResult::Sat);
  EXPECT_GT(SeqOut.NumCubes, 8u);
  // One worker: the first cube answers and every sibling is skipped.
  EXPECT_EQ(SeqOut.CubesSolved, 1u);

  CubeEngine Parallel(4);
  SolveOutcome ParOut = Parallel.solve(Ctx, Root, Opts);
  EXPECT_EQ(ParOut.Result, sat::SolveResult::Sat);
  // Racing workers may each decide one cube before observing the cancel
  // flag, but the bulk of the queue must be skipped.
  EXPECT_LT(ParOut.CubesSolved, ParOut.NumCubes);
}

namespace {

struct EngineCase {
  const char *Label;
  StabilizerCode (*Make)();
  PauliKind ErrorKind;
  uint32_t MaxErrors;
  bool ExpectVerified;
};

StabilizerCode steane() { return makeSteaneCode(); }
StabilizerCode surface3() { return makeRotatedSurfaceCode(3); }
StabilizerCode repetition3() { return makeRepetitionCode(3); }

const EngineCase EngineCases[] = {
    {"repetition3_X_t1", repetition3, PauliKind::X, 1, true},
    {"steane_Y_t1", steane, PauliKind::Y, 1, true},
    {"steane_Y_t2_fails", steane, PauliKind::Y, 2, false},
    {"surface3_Y_t1", surface3, PauliKind::Y, 1, true},
};

} // namespace

TEST(VerificationEngine, ParallelVerdictMatchesSequentialAcrossWidths) {
  for (const EngineCase &C : EngineCases) {
    StabilizerCode Code = C.Make();
    Scenario S =
        makeMemoryScenario(Code, C.ErrorKind, LogicalBasis::Z, C.MaxErrors);
    VerificationResult Seq = verifyScenario(S, {});
    ASSERT_TRUE(Seq.StructuralOk) << C.Label;
    EXPECT_EQ(Seq.Verified, C.ExpectVerified) << C.Label;
    for (size_t Threads : {2u, 4u, 8u}) {
      VerificationEngine Engine(Threads);
      VerifyOptions Opts;
      Opts.Parallel = true;
      VerificationResult Par = Engine.verify(S, Opts);
      ASSERT_TRUE(Par.StructuralOk) << C.Label << " threads=" << Threads;
      EXPECT_EQ(Par.Verified, Seq.Verified)
          << C.Label << " threads=" << Threads;
      EXPECT_GT(Par.NumCubes, 1u) << C.Label;
      if (!Par.Verified) {
        EXPECT_FALSE(Par.CounterExample.empty()) << C.Label;
      }
    }
  }
}

TEST(VerificationEngine, BatchMatchesOneAtATime) {
  std::vector<Scenario> Scenarios;
  std::vector<bool> Expected;
  for (const EngineCase &C : EngineCases) {
    StabilizerCode Code = C.Make();
    Scenarios.push_back(
        makeMemoryScenario(Code, C.ErrorKind, LogicalBasis::Z, C.MaxErrors));
    Expected.push_back(C.ExpectVerified);
  }
  VerifyOptions Opts;
  Opts.Parallel = true;
  VerificationEngine Engine(4);
  std::vector<VerificationResult> Batch = Engine.verifyAll(Scenarios, Opts);
  ASSERT_EQ(Batch.size(), Scenarios.size());
  for (size_t I = 0; I != Batch.size(); ++I) {
    EXPECT_TRUE(Batch[I].StructuralOk) << Scenarios[I].Name;
    EXPECT_EQ(Batch[I].Verified, Expected[I]) << Scenarios[I].Name;
    EXPECT_GT(Batch[I].Stats.propagations(), 0u) << Scenarios[I].Name;
  }
  // A SAT scenario in the batch must not poison its neighbours: the
  // counterexample belongs to the failing scenario only.
  EXPECT_FALSE(Batch[2].CounterExample.empty());
  EXPECT_TRUE(Batch[3].CounterExample.empty());
}

TEST(VerificationEngine, FreeFunctionFacadeHonorsThreadOption) {
  StabilizerCode Code = makeRotatedSurfaceCode(3);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 1);
  for (size_t Threads : {2u, 4u}) {
    VerifyOptions Opts;
    Opts.Parallel = true;
    Opts.Threads = Threads;
    VerificationResult R = verifyScenario(S, Opts);
    EXPECT_TRUE(R.Verified) << "threads=" << Threads;
    EXPECT_GT(R.NumCubes, 1u);
  }
  std::vector<Scenario> Batch{S, S};
  VerifyOptions Opts;
  Opts.Parallel = true;
  std::vector<VerificationResult> Rs = verifyAll(Batch, Opts);
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_TRUE(Rs[0].Verified);
  EXPECT_TRUE(Rs[1].Verified);
}

TEST(CubeEngine, EliminationPruningBeatsUnitPropagationOnSeededCase) {
  // The two rows imply e0 ^ e1 = 1 after their shared aux pair cancels,
  // so the cubes {e0=0,e1=0} and {e0=1,e1=1} are inconsistent — but
  // every single row still has two unknowns under either cube, which is
  // exactly what GF(2) *unit propagation* cannot refute and Gaussian
  // *elimination* can. The AtMost residue pins a and b so the
  // preprocessor cannot merge the rows at encode time.
  BoolContext Ctx;
  ExprRef E0 = Ctx.mkVar("e0"), E1 = Ctx.mkVar("e1");
  ExprRef A = Ctx.mkVar("a"), B = Ctx.mkVar("b");
  ExprRef Root = Ctx.mkAnd({
      Ctx.mkNot(Ctx.mkXor(E0, Ctx.mkXor(A, B))), // e0 ^ a ^ b = 0
      Ctx.mkXor(E1, Ctx.mkXor(A, B)),            // e1 ^ a ^ b = 1
      Ctx.mkAtMost({A, B}, 1),
  });
  SolveOptions Opts;
  Opts.SplitVars = {"e0", "e1"};
  Opts.DistanceHint = 2;
  Opts.SplitThreshold = 16;

  SolveOptions OnOpts = Opts;
  OnOpts.Xor = XorMode::On;
  CubeEngine WithXor(1);
  SolveOutcome On = WithXor.solve(Ctx, Root, OnOpts);
  SolveOptions OffOpts = Opts;
  OffOpts.Xor = XorMode::Off;
  CubeEngine WithoutXor(1);
  SolveOutcome Off = WithoutXor.solve(Ctx, Root, OffOpts);

  // Same verdict either way; the satellite property is the pruning rate:
  // XOR-mode (elimination) cube pruning must dominate unit propagation.
  EXPECT_EQ(On.Result, sat::SolveResult::Sat);
  EXPECT_EQ(Off.Result, sat::SolveResult::Sat);
  EXPECT_GE(On.CubesPrunedGf2, Off.CubesPrunedGf2);
  EXPECT_GT(On.CubesPrunedGf2, 0u)
      << "elimination must refute the parity-inconsistent cube";
  EXPECT_EQ(Off.CubesPrunedGf2, 0u)
      << "unit propagation alone cannot see the cross-row contradiction";
  // The split counters are what --bench-out reports; they must add up.
  EXPECT_EQ(On.CubesPruned, On.CubesPrunedGf2 + On.CubesPrunedCore);
}
