//===- tests/fuzz_test.cpp - Differential fuzzing harness tests -----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the testing/ subsystem itself: the reference executor against
/// hand-computed runs, the brute-force oracle against known verdicts,
/// certificate validation against real and corrupted models, a clean
/// deterministic fuzz sweep, and — the critical one — proof that a
/// re-introduced copy of the PR 1 assumption-prefix soundness bug (via a
/// test-only solver subclass) is caught by the harness.
///
//===----------------------------------------------------------------------===//

#include "engine/VerificationEngine.h"
#include "qec/Codes.h"
#include "testing/BruteForceOracle.h"
#include "testing/DifferentialHarness.h"
#include "testing/ModelChecker.h"

#include <gtest/gtest.h>

using namespace veriqec;
using namespace veriqec::testing;

namespace {

/// Inputs with every error and decoder output bit cleared.
CMem allZeroInputs(const Scenario &S) {
  CMem In;
  for (const std::string &E : S.ErrorVars)
    In[E] = 0;
  for (const WeightConstraint &W : S.Weights) {
    for (const std::string &V : W.Lhs)
      In[V] = 0;
    for (const auto &[A, B] : W.LhsPairs) {
      In[A] = 0;
      In[B] = 0;
    }
  }
  return In;
}

} // namespace

TEST(ReferenceExecutor, CleanRunPreservesPostcondition) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 1);
  ReplayResult R = executeScenario(S, allZeroInputs(S));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.PostconditionHolds);
  EXPECT_TRUE(scenarioContractHolds(S, R.Mem));
  for (const auto &[Name, Value] : R.MeasureLog)
    EXPECT_FALSE(Value) << "nonzero syndrome " << Name << " without errors";
}

TEST(ReferenceExecutor, LogicalErrorViolatesPostcondition) {
  // A single Z on the repetition code is syndrome-free but logical: with
  // the zero correction the contract holds and the X-family
  // postcondition must fail.
  StabilizerCode Code = makeRepetitionCode(3);
  Scenario S = makeMemoryScenario(Code, PauliKind::Z, LogicalBasis::X, 1);
  CMem In = allZeroInputs(S);
  In[S.ErrorVars[0]] = 1;
  ReplayResult R = executeScenario(S, In);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(scenarioContractHolds(S, R.Mem));
  EXPECT_FALSE(R.PostconditionHolds);

  // The same error is invisible to the Z family.
  Scenario SZ = makeMemoryScenario(Code, PauliKind::Z, LogicalBasis::Z, 1);
  CMem InZ = allZeroInputs(SZ);
  InZ[SZ.ErrorVars[0]] = 1;
  ReplayResult RZ = executeScenario(SZ, InZ);
  ASSERT_TRUE(RZ.Ok) << RZ.Error;
  EXPECT_TRUE(RZ.PostconditionHolds);
}

TEST(ReferenceExecutor, PhaseVariablesSelectTheLogicalFamily) {
  // Replays must honour the symbolic phase bits b_j: the |1>_L member of
  // the family behaves like the |0>_L member.
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::X, LogicalBasis::Z, 1);
  CMem In = allZeroInputs(S);
  In["b0"] = 1;
  ReplayResult R = executeScenario(S, In);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.PostconditionHolds);
}

TEST(BruteForceOracle, MatchesKnownVerdicts) {
  StabilizerCode Code = makeSteaneCode();
  Scenario Good = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 1);
  OracleResult R1 = bruteForceVerify(Good);
  EXPECT_EQ(R1.Status, OracleStatus::Verified) << R1.Detail;
  EXPECT_GT(R1.Executions, 0u);

  Scenario Bad = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 2);
  OracleResult R2 = bruteForceVerify(Bad);
  ASSERT_EQ(R2.Status, OracleStatus::CounterExample) << R2.Detail;
  // The counterexample must replay as genuine.
  ReplayResult Replay = executeScenario(Bad, R2.CounterExample);
  ASSERT_TRUE(Replay.Ok) << Replay.Error;
  EXPECT_TRUE(scenarioContractHolds(Bad, Replay.Mem));
  EXPECT_FALSE(Replay.PostconditionHolds);
}

TEST(BruteForceOracle, RespectsWorkBudget) {
  StabilizerCode Code = makeRotatedSurfaceCode(3);
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 2);
  OracleOptions O;
  O.WorkBudget = 10;
  OracleResult R = bruteForceVerify(S, O);
  EXPECT_EQ(R.Status, OracleStatus::Skipped);
  EXPECT_GT(bruteForceWorkEstimate(S), 10u);
}

TEST(ModelChecker, RealCounterexamplesSatisfyTheVc) {
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 2);
  VerificationResult R = verifyScenario(S);
  ASSERT_TRUE(R.StructuralOk);
  ASSERT_FALSE(R.Verified);
  ASSERT_FALSE(R.CounterExample.empty());

  smt::BoolContext Ctx;
  BuiltVc Vc = engine::buildScenarioVc(Ctx, S);
  ASSERT_TRUE(Vc.Ok) << Vc.Error;
  ModelCheckResult MC = evaluateUnderModel(Ctx, Vc.NegatedVc,
                                           R.CounterExample);
  EXPECT_EQ(MC.MissingVars, 0u);
  EXPECT_TRUE(MC.Satisfies);

  CertificateCheck CC = replayCounterExample(S, R.CounterExample);
  EXPECT_TRUE(CC.Genuine) << CC.Why;
}

TEST(ModelChecker, FabricatedCertificatesAreRejected) {
  // A zero-error "counterexample" for a verified scenario must fail the
  // semantic replay (the postcondition holds).
  StabilizerCode Code = makeSteaneCode();
  Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z, 1);
  std::unordered_map<std::string, bool> Fake;
  for (const std::string &E : S.ErrorVars)
    Fake[E] = false;
  for (const WeightConstraint &W : S.Weights)
    for (const std::string &V : W.Lhs)
      Fake[V] = false;
  CertificateCheck CC = replayCounterExample(S, Fake);
  EXPECT_FALSE(CC.Genuine);
}

TEST(DifferentialHarness, DeterministicSweepIsClean) {
  FuzzerOptions FO;
  FO.MaxQubits = 7;
  HarnessOptions HO;
  HO.Jobs = 2;
  HO.BruteBudget = 100000;
  HO.SamplingTrials = 300;
  for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
    FuzzCase C = generateFuzzCase(Seed, FO);
    HO.RandomSeed = Seed;
    CaseReport R = runDifferential(C, HO);
    EXPECT_TRUE(R.clean()) << R.Description << ": "
                           << (R.Discrepancies.empty()
                                   ? ""
                                   : R.Discrepancies.front());
  }
}

TEST(DifferentialHarness, GenerationIsDeterministic) {
  FuzzCase A = generateFuzzCase(42);
  FuzzCase B = generateFuzzCase(42);
  EXPECT_EQ(A.describe(), B.describe());
  EXPECT_EQ(A.Scn.Name, B.Scn.Name);
  EXPECT_EQ(A.Scn.ErrorVars, B.Scn.ErrorVars);
}

namespace {

/// The PR 1 soundness bug, re-introduced through the solver's test seam:
/// a conflict-driven backjump below the assumption prefix is declared
/// UNSAT instead of re-extending the prefix, silently flipping
/// satisfiable cubes under solver reuse.
class BuggyPrefixSolver : public sat::Solver {
protected:
  bool declareUnsatOnPrefixBackjump() const override { return true; }
};

/// A corrupted Gauss-in-the-loop engine, re-introduced through the
/// solver's XOR test seam: every XOR reason clause with two or more
/// dependencies is materialized with one dependency dropped. The
/// under-justified reasons resolve into over-strong learnt clauses that
/// prune satisfiable cubes — the characteristic failure of a buggy
/// Gaussian reason computation.
class BuggyXorReasonSolver : public sat::Solver {
protected:
  bool corruptXorReasonClause() const override { return true; }
};

/// An unsound chronological-backtracking implementation, re-introduced
/// through the solver's reimplication test seam: conflict analysis
/// misreads every out-of-order assignment's level as root level, so
/// reimplied literals silently fall out of learnt clauses — the
/// characteristic way a buggy lazy-reimplication level computation
/// goes wrong. The over-strong lemmas flip satisfiable cubes to UNSAT
/// and are non-RUP.
class BuggyChronoLevelSolver : public sat::Solver {
protected:
  bool corruptOutOfOrderLevel() const override { return true; }
};

} // namespace

TEST(DifferentialHarness, CatchesReintroducedAssumptionPrefixBug) {
  FuzzerOptions FO;
  FO.MaxQubits = 9;
  HarnessOptions HO;
  HO.Jobs = 2;
  HO.SamplingTrials = 0; // isolate the solver-level oracles
  HO.BruteBudget = 50000;
  HO.SolverFactory = [] { return std::make_unique<BuggyPrefixSolver>(); };
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 25 && !Caught; ++Seed) {
    FuzzCase C = generateFuzzCase(Seed, FO);
    HO.RandomSeed = Seed;
    CaseReport R = runDifferential(C, HO);
    Caught = !R.clean();
  }
  EXPECT_TRUE(Caught)
      << "the harness failed to expose the planted assumption-prefix bug";
}

TEST(DifferentialHarness, CatchesPlantedXorReasonCorruption) {
  // With the proof oracle on, the forgery need not even flip a verdict
  // to be caught: the under-justified XOR reason clause is logged as a
  // derivation, and the checker's GF(2) replay refuses it because the
  // dropped dependency leaves the clause outside the x-rows' span.
  FuzzerOptions FO;
  FO.MaxQubits = 9;
  HarnessOptions HO;
  HO.Jobs = 2;
  HO.SamplingTrials = 0; // isolate the solver-level oracles
  HO.BruteBudget = 50000;
  HO.CheckProofs = true;
  HO.SolverFactory = [] { return std::make_unique<BuggyXorReasonSolver>(); };
  bool Caught = false, CaughtByProof = false;
  for (uint64_t Seed = 1; Seed <= 40 && !CaughtByProof; ++Seed) {
    FuzzCase C = generateFuzzCase(Seed, FO);
    HO.RandomSeed = Seed;
    CaseReport R = runDifferential(C, HO);
    Caught |= !R.clean();
    for (const std::string &D : R.Discrepancies)
      CaughtByProof |= D.find("proof rejected") != std::string::npos;
  }
  EXPECT_TRUE(Caught)
      << "the harness failed to expose the planted XOR reason corruption";
  EXPECT_TRUE(CaughtByProof)
      << "the proof oracle never rejected an under-justified XOR reason";
}

TEST(DifferentialHarness, CatchesPlantedChronoReimplicationBug) {
  // The direct-reuse walk runs its injectable solver with chronological
  // backtracking on, so prefix-crossing conflicts produce out-of-order
  // assignments for the seam to corrupt. Two independent oracles must
  // notice: the differential layer (a flipped cube verdict against the
  // fresh-solver recheck or the chrono-off consensus), and the proof
  // oracle (the over-strong learnt clauses are not RUP, so the
  // checker's unit-propagation replay refuses their derivations).
  FuzzerOptions FO;
  FO.MaxQubits = 9;
  HarnessOptions HO;
  HO.Jobs = 2;
  HO.SamplingTrials = 0; // isolate the solver-level oracles
  HO.BruteBudget = 50000;
  HO.CheckProofs = true;
  HO.SolverFactory = [] {
    return std::make_unique<BuggyChronoLevelSolver>();
  };
  bool Caught = false, CaughtByProof = false;
  for (uint64_t Seed = 1; Seed <= 40 && !(Caught && CaughtByProof);
       ++Seed) {
    FuzzCase C = generateFuzzCase(Seed, FO);
    HO.RandomSeed = Seed;
    CaseReport R = runDifferential(C, HO);
    Caught |= !R.clean();
    for (const std::string &D : R.Discrepancies)
      CaughtByProof |= D.find("proof rejected") != std::string::npos;
  }
  EXPECT_TRUE(Caught)
      << "the harness failed to expose the planted reimplication bug";
  EXPECT_TRUE(CaughtByProof)
      << "the proof oracle never rejected a certificate built over "
         "under-leveled out-of-order assignments";
}

TEST(DifferentialHarness, XorReasonCorruptionStillCaughtUnderForcedGc) {
  // Same planted bug as above, but with the arena collector forced to
  // compact at every restart of every slot solver: the corrupted XOR
  // reason clauses are locked tombstones the relocator must keep
  // readable, and the proof oracle must still reject the forged
  // derivations after their clause memory has moved.
  sat::Solver::setDefaultGarbageFraction(0.0);
  FuzzerOptions FO;
  FO.MaxQubits = 9;
  HarnessOptions HO;
  HO.Jobs = 2;
  HO.SamplingTrials = 0;
  HO.BruteBudget = 50000;
  HO.CheckProofs = true;
  HO.SolverFactory = [] { return std::make_unique<BuggyXorReasonSolver>(); };
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 40 && !Caught; ++Seed) {
    FuzzCase C = generateFuzzCase(Seed, FO);
    HO.RandomSeed = Seed;
    CaseReport R = runDifferential(C, HO);
    Caught = !R.clean();
  }
  sat::Solver::setDefaultGarbageFraction(0.2);
  EXPECT_TRUE(Caught) << "the planted XOR reason corruption went unnoticed "
                         "once compaction was forced";
}
