//===- tests/gauss_test.cpp - Gauss-in-the-loop XOR engine ----------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-test battery for the native XOR subsystem (sat/GaussEngine):
/// solver-level semantics of addXorClause against exhaustive truth
/// tables, soundness under assumption reuse, and — the strong property —
/// verdict *and model count* agreement between the XOR-enabled pipeline
/// and the plain-CNF encoding on random GF(2) systems, across both
/// cardinality encodings and with preprocessing on and off. A new
/// inference engine only ships with an independent cross-check; this
/// file is that check.
///
//===----------------------------------------------------------------------===//

#include "qec/Codes.h"
#include "sat/Solver.h"
#include "smt/CubeSolver.h"
#include "support/Rng.h"
#include "testing/ModelChecker.h"
#include "verifier/Verifier.h"

#include <gtest/gtest.h>

using namespace veriqec;
using namespace veriqec::smt;
using sat::Lit;
using sat::SolveResult;
using sat::Var;

namespace {

/// A random XOR system at the raw solver level.
struct XorSystem {
  size_t NumVars = 0;
  std::vector<std::pair<std::vector<Lit>, bool>> Rows;
};

XorSystem randomXorSystem(Rng &R, size_t MaxVars, size_t MaxRows) {
  XorSystem S;
  S.NumVars = 3 + R.nextBelow(MaxVars - 2);
  size_t NumRows = 1 + R.nextBelow(MaxRows);
  for (size_t I = 0; I != NumRows; ++I) {
    std::vector<Lit> Row;
    size_t Len = 1 + R.nextBelow(std::min<size_t>(S.NumVars, 5));
    for (size_t J = 0; J != Len; ++J)
      Row.push_back(Lit(static_cast<Var>(R.nextBelow(S.NumVars)),
                        R.nextBool()));
    S.Rows.emplace_back(std::move(Row), R.nextBool());
  }
  return S;
}

/// Exhaustive truth-table model count of an XOR system.
uint64_t truthTableCount(const XorSystem &S) {
  uint64_t Count = 0;
  for (uint64_t M = 0; M != (uint64_t{1} << S.NumVars); ++M) {
    bool Ok = true;
    for (const auto &[Row, Odd] : S.Rows) {
      bool Parity = false;
      for (Lit L : Row)
        Parity ^= (((M >> L.var()) & 1) != 0) != L.negated();
      if (Parity != Odd) {
        Ok = false;
        break;
      }
    }
    Count += Ok;
  }
  return Count;
}

/// Solver-side model count by blocking-clause enumeration.
uint64_t solverCount(const XorSystem &S, uint64_t Seed = 0) {
  sat::Solver Solver;
  std::vector<Var> Vars;
  for (size_t I = 0; I != S.NumVars; ++I)
    Vars.push_back(Solver.newVar());
  for (const auto &[Row, Odd] : S.Rows)
    if (!Solver.addXorClause(Row, Odd))
      return 0;
  if (Seed)
    Solver.setRandomSeed(Seed);
  uint64_t Count = 0;
  while (Solver.solve() == SolveResult::Sat) {
    ++Count;
    EXPECT_LE(Count, uint64_t{1} << S.NumVars) << "runaway enumeration";
    std::vector<Lit> Blocking;
    for (Var V : Vars)
      Blocking.push_back(Lit(V, Solver.modelValue(V)));
    if (!Solver.addClause(std::move(Blocking)))
      break;
  }
  return Count;
}

std::vector<ExprRef> makeVars(BoolContext &Ctx, size_t N) {
  std::vector<ExprRef> Vars;
  for (size_t I = 0; I != N; ++I)
    Vars.push_back(Ctx.mkVar("v" + std::to_string(I)));
  return Vars;
}

/// Model count over the problem's named variables (reconstruction makes
/// eliminated variables functionally determined, so the count is
/// invariant under preprocessing AND under the XOR/CNF row choice).
uint64_t countModels(const BoolContext &Ctx, ExprRef Root,
                     const ProblemOptions &PO) {
  VerificationProblem Problem(Ctx, Root, PO);
  if (Problem.TriviallyUnsat)
    return 0;
  sat::Solver S = Problem.makeSolver();
  uint64_t Count = 0;
  while (S.solve() == SolveResult::Sat) {
    ++Count;
    EXPECT_LE(Count, 1u << 13) << "runaway model enumeration";
    std::unordered_map<std::string, bool> Model;
    Problem.readModel(S, Model);
    veriqec::testing::ModelCheckResult MC =
        veriqec::testing::evaluateUnderModel(Ctx, Root, Model);
    EXPECT_TRUE(MC.Satisfies)
        << "model from the XOR/CNF pipeline violates the root";
    EXPECT_EQ(MC.MissingVars, 0u);
    std::vector<Lit> Blocking;
    for (const auto &[Name, V] : Problem.NamedVars)
      Blocking.push_back(Lit(V, S.modelValue(V)));
    if (!S.addClause(std::move(Blocking)))
      break;
  }
  return Count;
}

/// Random conjunction dominated by parity rows, with a cardinality
/// residue — the shape of a negated QEC verification condition.
ExprRef randomParityExpr(BoolContext &Ctx, const std::vector<ExprRef> &Vars,
                         Rng &R) {
  std::vector<ExprRef> Conjuncts;
  size_t NumRows = 2 + R.nextBelow(5);
  for (size_t I = 0; I != NumRows; ++I) {
    std::vector<ExprRef> Kids;
    size_t Len = 2 + R.nextBelow(4);
    for (size_t J = 0; J != Len; ++J)
      Kids.push_back(Vars[R.nextBelow(Vars.size())]);
    ExprRef Row = Ctx.mkXor(std::move(Kids));
    Conjuncts.push_back(R.nextBool() ? Row : Ctx.mkNot(Row));
  }
  if (R.nextBool()) {
    std::vector<ExprRef> Subset;
    for (ExprRef V : Vars)
      if (R.nextBool())
        Subset.push_back(V);
    if (Subset.empty())
      Subset.push_back(Vars[0]);
    Conjuncts.push_back(
        Ctx.mkAtMost(std::move(Subset),
                     static_cast<uint32_t>(R.nextBelow(Vars.size()))));
  }
  return Ctx.mkAnd(std::move(Conjuncts));
}

} // namespace

// -- Solver-level semantics --------------------------------------------------

TEST(GaussEngine, BasicXorSemantics) {
  sat::Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  // a ^ b ^ c = 1, a ^ b = 0  =>  c = 1, a = b free.
  ASSERT_TRUE(S.addXorClause({sat::mkLit(A), sat::mkLit(B), sat::mkLit(C)},
                             true));
  ASSERT_TRUE(S.addXorClause({sat::mkLit(A), sat::mkLit(B)}, false));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(C));
  EXPECT_EQ(S.modelValue(A), S.modelValue(B));
  EXPECT_EQ(S.numXorRows(), 2u);

  // Pinning a = ~b contradicts the second row.
  ASSERT_EQ(S.solve({sat::mkLit(A), ~sat::mkLit(B)}), SolveResult::Unsat);
  // And the system is still satisfiable without the assumptions.
  ASSERT_EQ(S.solve(), SolveResult::Sat);
}

TEST(GaussEngine, NegatedLiteralsFoldIntoTheParity) {
  sat::Solver S;
  Var A = S.newVar(), B = S.newVar();
  // (~a) ^ b = 0  <=>  a ^ b = 1.
  ASSERT_TRUE(S.addXorClause({~sat::mkLit(A), sat::mkLit(B)}, false));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_NE(S.modelValue(A), S.modelValue(B));
}

TEST(GaussEngine, DuplicateVariablesCancel) {
  sat::Solver S;
  Var A = S.newVar(), B = S.newVar();
  // a ^ a ^ b = 1 reduces to b = 1.
  ASSERT_TRUE(
      S.addXorClause({sat::mkLit(A), sat::mkLit(A), sat::mkLit(B)}, true));
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
  // a ^ a = 1 is the empty odd XOR: trivially unsatisfiable.
  sat::Solver T;
  Var C = T.newVar();
  EXPECT_FALSE(T.addXorClause({sat::mkLit(C), sat::mkLit(C)}, true));
  EXPECT_EQ(T.solve(), SolveResult::Unsat);
}

TEST(GaussEngine, InconsistentRowsAreUnsatBeforeAnyDecision) {
  sat::Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addXorClause({sat::mkLit(A), sat::mkLit(B)}, false));
  ASSERT_TRUE(S.addXorClause({sat::mkLit(B), sat::mkLit(C)}, false));
  ASSERT_TRUE(S.addXorClause({sat::mkLit(A), sat::mkLit(C)}, true));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_EQ(S.stats().Decisions, 0u);
}

TEST(GaussEngine, MixesWithCnfClauses) {
  sat::Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addXorClause({sat::mkLit(A), sat::mkLit(B), sat::mkLit(C)},
                             true));
  ASSERT_TRUE(S.addClause(~sat::mkLit(A)));      // a = 0
  ASSERT_TRUE(S.addClause(sat::mkLit(B), sat::mkLit(C))); // b | c
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_NE(S.modelValue(B), S.modelValue(C));
}

TEST(GaussEngine, RandomSystemsMatchTruthTableCounts) {
  Rng R(20260729);
  for (int Case = 0; Case != 200; ++Case) {
    XorSystem S = randomXorSystem(R, 11, 8);
    uint64_t Expected = truthTableCount(S);
    EXPECT_EQ(solverCount(S), Expected) << "case " << Case;
    if (Case % 4 == 0) {
      EXPECT_EQ(solverCount(S, /*Seed=*/Case + 1), Expected)
          << "seeded case " << Case;
    }
  }
}

TEST(GaussEngine, SoundUnderAssumptionReuseAcrossCubes) {
  // One reused solver walking assumption cubes over an XOR system must
  // agree with a fresh solver on every cube — the reuse pattern the cube
  // engine runs, where the PR 1 family of prefix bugs lives.
  Rng R(987654321);
  for (int Case = 0; Case != 40; ++Case) {
    XorSystem S = randomXorSystem(R, 9, 6);
    sat::Solver Reused;
    std::vector<Var> Vars;
    for (size_t I = 0; I != S.NumVars; ++I)
      Vars.push_back(Reused.newVar());
    bool Ok = true;
    for (const auto &[Row, Odd] : S.Rows)
      Ok &= Reused.addXorClause(Row, Odd);
    for (uint64_t Cube = 0; Cube != 8 && Ok; ++Cube) {
      std::vector<Lit> Assumptions;
      for (size_t B = 0; B != 3 && B < S.NumVars; ++B)
        Assumptions.push_back(Lit(Vars[B], ((Cube >> B) & 1) == 0));
      SolveResult Got = Reused.solve(Assumptions);
      sat::Solver Fresh;
      for (size_t I = 0; I != S.NumVars; ++I)
        Fresh.newVar();
      for (const auto &[Row, Odd] : S.Rows)
        Fresh.addXorClause(Row, Odd);
      SolveResult Want = Fresh.solve(Assumptions);
      EXPECT_EQ(Got, Want) << "case " << Case << " cube " << Cube;
    }
  }
}

TEST(GaussEngine, UnsatCoreOverXorRowsIsGenuine) {
  sat::Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar(), D = S.newVar();
  ASSERT_TRUE(S.addXorClause({sat::mkLit(A), sat::mkLit(B)}, false));
  ASSERT_TRUE(S.addXorClause({sat::mkLit(B), sat::mkLit(C)}, false));
  // Assume a = 1, c = 0 (contradicts the chain), d = 1 (irrelevant).
  ASSERT_EQ(S.solve({sat::mkLit(D), sat::mkLit(A), ~sat::mkLit(C)}),
            SolveResult::Unsat);
  // The core must refute on its own in a fresh solver.
  std::vector<Lit> Core = S.conflictCore();
  ASSERT_FALSE(Core.empty());
  sat::Solver Fresh;
  for (int I = 0; I != 4; ++I)
    Fresh.newVar();
  Fresh.addXorClause({sat::mkLit(A), sat::mkLit(B)}, false);
  Fresh.addXorClause({sat::mkLit(B), sat::mkLit(C)}, false);
  EXPECT_EQ(Fresh.solve(Core), SolveResult::Unsat);
}

// -- Pipeline equisatisfiability --------------------------------------------

TEST(GaussEngine, PipelineAgreesWithPlainCnfOnRandomParitySystems) {
  Rng R(424242);
  for (int Case = 0; Case != 60; ++Case) {
    BoolContext Ctx;
    std::vector<ExprRef> Vars = makeVars(Ctx, 6 + R.nextBelow(3));
    ExprRef Root = randomParityExpr(Ctx, Vars, R);

    ProblemOptions XorOn;
    XorOn.NativeXor = true;
    ProblemOptions XorOff;
    XorOff.NativeXor = false;
    ProblemOptions NoPrep;
    NoPrep.Preprocess = false;

    uint64_t WithXor = countModels(Ctx, Root, XorOn);
    EXPECT_EQ(WithXor, countModels(Ctx, Root, XorOff)) << "case " << Case;
    EXPECT_EQ(WithXor, countModels(Ctx, Root, NoPrep)) << "case " << Case;

    if (Case % 3 == 0) {
      ProblemOptions Pairwise = XorOn;
      Pairwise.CardEnc = CardinalityEncoding::PairwiseNaive;
      EXPECT_EQ(WithXor, countModels(Ctx, Root, Pairwise))
          << "pairwise case " << Case;
    }
  }
}

TEST(GaussEngine, ScenarioVerdictsAgreeWithXorOnAndOff) {
  StabilizerCode Code = makeSteaneCode();
  for (uint32_t Budget : {1u, 2u}) {
    Scenario S = makeMemoryScenario(Code, PauliKind::Y, LogicalBasis::Z,
                                    Budget);
    VerifyOptions On;
    On.Xor = XorMode::On;
    VerifyOptions Off;
    Off.Xor = XorMode::Off;
    VerificationResult A = verifyScenario(S, On);
    VerificationResult B = verifyScenario(S, Off);
    ASSERT_TRUE(A.StructuralOk && B.StructuralOk);
    EXPECT_EQ(A.Verified, B.Verified) << "budget " << Budget;
  }
}

TEST(GaussEngine, DistanceSearchAgreesWithXorOnAndOff) {
  // computeDistance resolves XorMode::Auto to On; Off is the plain-CNF
  // baseline.
  VerifyOptions Off;
  Off.Xor = XorMode::Off;
  for (const StabilizerCode &Code :
       {makeSteaneCode(), makeRotatedSurfaceCode(3), makeCube832()}) {
    DistanceResult A = computeDistance(Code);
    DistanceResult B = computeDistance(Code, Off);
    ASSERT_TRUE(A.Ok && B.Ok) << Code.Name;
    EXPECT_EQ(A.Distance, B.Distance) << Code.Name;
  }
}
