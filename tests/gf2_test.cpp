//===- tests/gf2_test.cpp - GF(2) matrix algebra unit tests ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "gf2/BitMatrix.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace veriqec;

namespace {

BitMatrix randomMatrix(size_t Rows, size_t Cols, Rng &R) {
  BitMatrix M(Rows, Cols);
  for (size_t I = 0; I != Rows; ++I)
    for (size_t J = 0; J != Cols; ++J)
      if (R.nextBool())
        M.set(I, J);
  return M;
}

BitVector randomVector(size_t N, Rng &R) {
  BitVector V(N);
  for (size_t I = 0; I != N; ++I)
    if (R.nextBool())
      V.set(I);
  return V;
}

} // namespace

TEST(BitMatrix, IdentityBasics) {
  BitMatrix I = BitMatrix::identity(5);
  EXPECT_EQ(I.rank(), 5u);
  BitVector V(5);
  V.set(2);
  V.set(4);
  EXPECT_EQ(I.multiply(V), V);
}

TEST(BitMatrix, RankOfDependentRows) {
  BitMatrix M(3, 4);
  M.set(0, 0);
  M.set(0, 1);
  M.set(1, 1);
  M.set(1, 2);
  // Row 2 = row 0 XOR row 1.
  M.set(2, 0);
  M.set(2, 2);
  EXPECT_EQ(M.rank(), 2u);
}

TEST(BitMatrix, RowReduceProducesPivots) {
  BitMatrix M(2, 3);
  M.set(0, 1);
  M.set(1, 2);
  std::vector<size_t> Pivots = M.rowReduce();
  ASSERT_EQ(Pivots.size(), 2u);
  EXPECT_EQ(Pivots[0], 1u);
  EXPECT_EQ(Pivots[1], 2u);
}

TEST(BitMatrix, SolveConsistentSystem) {
  Rng R(17);
  for (int Trial = 0; Trial != 30; ++Trial) {
    BitMatrix A = randomMatrix(8, 12, R);
    BitVector X0 = randomVector(12, R);
    BitVector B = A.multiply(X0);
    std::optional<BitVector> X = A.solve(B);
    ASSERT_TRUE(X.has_value());
    EXPECT_EQ(A.multiply(*X), B);
  }
}

TEST(BitMatrix, SolveDetectsInconsistency) {
  // x1 = 0 and x1 = 1 simultaneously.
  BitMatrix A(2, 2);
  A.set(0, 0);
  A.set(1, 0);
  BitVector B(2);
  B.set(1);
  EXPECT_FALSE(A.solve(B).has_value());
}

TEST(BitMatrix, NullspaceVectorsAreKernelElements) {
  Rng R(23);
  for (int Trial = 0; Trial != 20; ++Trial) {
    BitMatrix A = randomMatrix(6, 10, R);
    std::vector<BitVector> Basis = A.nullspaceBasis();
    EXPECT_EQ(Basis.size(), 10u - A.rank());
    for (const BitVector &V : Basis) {
      EXPECT_TRUE(A.multiply(V).none());
      EXPECT_TRUE(V.any());
    }
    // Basis vectors are independent.
    BitMatrix B = BitMatrix::fromRows(Basis);
    EXPECT_EQ(B.rank(), Basis.size());
  }
}

TEST(BitMatrix, ExpressInRowSpaceRoundTrip) {
  Rng R(5);
  for (int Trial = 0; Trial != 30; ++Trial) {
    BitMatrix A = randomMatrix(7, 9, R);
    // Take a random combination of rows as the target.
    BitVector Sel = randomVector(7, R);
    BitVector Target(9);
    for (size_t I = 0; I != 7; ++I)
      if (Sel.get(I))
        Target ^= A.row(I);
    std::optional<BitVector> C = A.expressInRowSpace(Target);
    ASSERT_TRUE(C.has_value());
    BitVector Rebuilt(9);
    for (size_t I = 0; I != 7; ++I)
      if (C->get(I))
        Rebuilt ^= A.row(I);
    EXPECT_EQ(Rebuilt, Target);
  }
}

TEST(BitMatrix, ExpressInRowSpaceRejectsOutside) {
  BitMatrix A(1, 3);
  A.set(0, 0);
  BitVector Target(3);
  Target.set(1);
  EXPECT_FALSE(A.expressInRowSpace(Target).has_value());
  EXPECT_FALSE(A.rowSpaceContains(Target));
}

TEST(BitMatrix, TransposeInvolution) {
  Rng R(9);
  BitMatrix A = randomMatrix(5, 8, R);
  EXPECT_EQ(A.transposed().transposed(), A);
}

TEST(BitMatrix, MultiplyAssociatesWithVector) {
  Rng R(31);
  BitMatrix A = randomMatrix(4, 6, R);
  BitMatrix B = randomMatrix(6, 5, R);
  BitVector V = randomVector(5, R);
  EXPECT_EQ(A.multiply(B).multiply(V), A.multiply(B.multiply(V)));
}

TEST(BitMatrix, AppendRowDefinesWidth) {
  BitMatrix M;
  BitVector R0(4);
  R0.set(2);
  M.appendRow(R0);
  EXPECT_EQ(M.numRows(), 1u);
  EXPECT_EQ(M.numCols(), 4u);
  EXPECT_TRUE(M.get(0, 2));
}
