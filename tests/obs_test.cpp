//===- tests/obs_test.cpp - Tracing and metrics registry unit tests -------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
//
// The obs/ subsystem: Chrome trace-event recording (span/instant shape,
// argument capture and caps, epoch reset, file flush) and the metrics
// registry (bucketing, gating, snapshot JSON, reset semantics). The
// trace/metrics gates are process-global, so every test restores the
// disabled state it started from.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

using namespace veriqec;

namespace {

/// Structural well-formedness without a JSON parser dependency: braces
/// and brackets balance outside string literals, escapes are sane. The
/// CI smoke runs a real json.loads over tool-emitted traces; this keeps
/// the unit test self-contained.
bool balancedJson(const std::string &S) {
  int Depth = 0;
  bool InString = false, Escaped = false;
  for (char C : S) {
    if (InString) {
      if (Escaped)
        Escaped = false;
      else if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{' || C == '[')
      ++Depth;
    else if (C == '}' || C == ']') {
      if (--Depth < 0)
        return false;
    }
  }
  return Depth == 0 && !InString;
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t N = 0;
  for (size_t At = Haystack.find(Needle); At != std::string::npos;
       At = Haystack.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

} // namespace

// -- Tracing -----------------------------------------------------------------

TEST(Trace, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(obs::traceEnabled());
  {
    obs::TraceSpan Span("should_not_appear", {{"k", 1}});
    Span.arg("late", 2);
  }
  obs::traceInstant("also_not");
  std::string Json = obs::renderTraceJson();
  EXPECT_EQ(Json.find("should_not_appear"), std::string::npos);
  EXPECT_EQ(Json.find("also_not"), std::string::npos);
  EXPECT_TRUE(balancedJson(Json));
}

TEST(Trace, RecordsSpansInstantsAndArgsAcrossThreads) {
  obs::beginTrace();
  {
    obs::TraceSpan Outer("outer", {{"cubes", 42}});
    obs::TraceSpan Inner("inner");
    Inner.arg("conflicts", 7);
    obs::traceInstant("tick", {{"n", 3}});
  }
  std::thread T([] { obs::TraceSpan Span("from_worker"); });
  T.join();
  obs::stopTrace();
  std::string Json = obs::renderTraceJson();

  EXPECT_TRUE(balancedJson(Json));
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  // Complete events carry ph:X with ts/dur; the instant is ph:i scoped
  // to its thread.
  EXPECT_NE(Json.find("\"name\":\"outer\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"inner\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"tick\",\"ph\":\"i\",\"s\":\"t\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"from_worker\""), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":"), std::string::npos);
  // Construction-time, mid-span and instant arguments all land.
  EXPECT_NE(Json.find("\"cubes\":42"), std::string::npos);
  EXPECT_NE(Json.find("\"conflicts\":7"), std::string::npos);
  EXPECT_NE(Json.find("\"n\":3"), std::string::npos);
  // The spawned thread renders on its own track.
  EXPECT_GE(countOccurrences(Json, "\"tid\":"), 4u);
}

TEST(Trace, ArgsPastTheCapAreDropped) {
  obs::beginTrace();
  {
    obs::TraceSpan Span("capped");
    for (uint64_t I = 0; I != obs::MaxTraceArgs + 3; ++I)
      Span.arg("arg", 100 + I);
  }
  obs::stopTrace();
  std::string Json = obs::renderTraceJson();
  EXPECT_EQ(countOccurrences(Json, "\"arg\":"), obs::MaxTraceArgs);
  EXPECT_NE(Json.find("\"arg\":100"), std::string::npos);
  EXPECT_EQ(Json.find("\"arg\":" +
                      std::to_string(100 + obs::MaxTraceArgs)),
            std::string::npos);
  EXPECT_TRUE(balancedJson(Json));
}

TEST(Trace, BeginTraceDiscardsEarlierEventsAndResetsTheEpoch) {
  obs::beginTrace();
  { obs::TraceSpan Span("stale"); }
  obs::beginTrace();
  { obs::TraceSpan Span("fresh"); }
  obs::stopTrace();
  std::string Json = obs::renderTraceJson();
  EXPECT_EQ(Json.find("stale"), std::string::npos);
  EXPECT_NE(Json.find("fresh"), std::string::npos);
}

TEST(Trace, EndTraceWritesTheRenderedJsonToTheFile) {
  std::filesystem::path Path =
      std::filesystem::temp_directory_path() / "veriqec_obs_test_trace.json";
  obs::beginTrace();
  { obs::TraceSpan Span("flushed_span", {{"bytes", 17}}); }
  std::string Err;
  ASSERT_TRUE(obs::endTrace(Path.string(), Err)) << Err;
  EXPECT_FALSE(obs::traceEnabled()); // endTrace stops collection

  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Json = Buf.str();
  EXPECT_TRUE(balancedJson(Json));
  EXPECT_NE(Json.find("\"name\":\"flushed_span\""), std::string::npos);
  EXPECT_NE(Json.find("\"bytes\":17"), std::string::npos);
  std::filesystem::remove(Path);

  // An unwritable path fails with a diagnostic instead of dying.
  obs::beginTrace();
  obs::stopTrace();
  std::string Err2;
  EXPECT_FALSE(obs::endTrace("/nonexistent-dir/veriqec/trace.json", Err2));
  EXPECT_NE(Err2.find("cannot open"), std::string::npos);
}

// -- Metrics -----------------------------------------------------------------

TEST(Metrics, HistogramBucketOfIsFloorLog2) {
  EXPECT_EQ(obs::Histogram::bucketOf(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketOf(1), 0u);
  EXPECT_EQ(obs::Histogram::bucketOf(2), 1u);
  EXPECT_EQ(obs::Histogram::bucketOf(3), 1u);
  EXPECT_EQ(obs::Histogram::bucketOf(4), 2u);
  EXPECT_EQ(obs::Histogram::bucketOf(7), 2u);
  EXPECT_EQ(obs::Histogram::bucketOf(8), 3u);
  EXPECT_EQ(obs::Histogram::bucketOf(1023), 9u);
  EXPECT_EQ(obs::Histogram::bucketOf(1024), 10u);
  EXPECT_EQ(obs::Histogram::bucketOf(uint64_t{1} << 63), 63u);
  EXPECT_EQ(obs::Histogram::bucketOf(std::numeric_limits<uint64_t>::max()),
            63u);
}

TEST(Metrics, HotPathsAreGatedOnTheEnableFlag) {
  ASSERT_FALSE(obs::metricsEnabled());
  obs::Histogram H;
  obs::Counter C;
  H.observe(5);
  C.add(3);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(C.value(), 0u);

  obs::setMetricsEnabled(true);
  H.observe(5);
  C.add(3);
  obs::setMetricsEnabled(false);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(C.value(), 3u);
  // set() is the ungated end-of-run publishing path.
  C.set(99);
  EXPECT_EQ(C.value(), 99u);
}

TEST(Metrics, HistogramTracksCountSumMaxAndShape) {
  obs::setMetricsEnabled(true);
  obs::Histogram H;
  for (uint64_t Sample : {0ull, 1ull, 2ull, 3ull, 1000ull})
    H.observe(Sample);
  obs::setMetricsEnabled(false);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1006u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.bucket(0), 2u); // 0 and 1
  EXPECT_EQ(H.bucket(1), 2u); // 2 and 3
  EXPECT_EQ(H.bucket(9), 1u); // 1000 in [512, 1024)
  H.clear();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.bucket(9), 0u);
}

TEST(Metrics, RegistrySnapshotRendersEveryKind) {
  obs::Registry &R = obs::Registry::global();
  obs::setMetricsEnabled(true);
  R.counter("test.snapshot.ctr").add(5);
  R.gauge("test.snapshot.gauge").set(12);
  obs::Histogram &H = R.histogram("test.snapshot.hist");
  H.observe(1);
  H.observe(700);
  obs::setMetricsEnabled(false);

  std::string Json = R.snapshotJson();
  EXPECT_TRUE(balancedJson(Json));
  EXPECT_NE(Json.find("\"test.snapshot.ctr\":5"), std::string::npos);
  EXPECT_NE(Json.find("\"test.snapshot.gauge\":12"), std::string::npos);
  EXPECT_NE(Json.find("\"test.snapshot.hist\":{\"count\":2,\"sum\":701"),
            std::string::npos);
  EXPECT_NE(Json.find("\"max\":700"), std::string::npos);
  // Bucket labels are exclusive upper bounds: 1 -> lt_2, 700 -> lt_1024.
  EXPECT_NE(Json.find("\"lt_2\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"lt_1024\":1"), std::string::npos);
}

TEST(Metrics, ResetZeroesValuesButKeepsCachedReferencesValid) {
  obs::Registry &R = obs::Registry::global();
  // The hot-site idiom resolves once and caches the reference; reset()
  // must zero values WITHOUT dropping entries, or the cache dangles.
  obs::Counter &C = R.counter("test.reset.ctr");
  obs::setMetricsEnabled(true);
  C.add(7);
  R.reset();
  EXPECT_EQ(C.value(), 0u);
  C.add(2); // through the pre-reset reference
  obs::setMetricsEnabled(false);
  EXPECT_EQ(C.value(), 2u);
  EXPECT_EQ(&R.counter("test.reset.ctr"), &C);
  EXPECT_NE(R.snapshotJson().find("\"test.reset.ctr\":2"),
            std::string::npos);
}
