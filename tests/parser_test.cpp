//===- tests/parser_test.cpp - Lexer/parser/printer tests -----------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "prog/Parser.h"

#include <gtest/gtest.h>

using namespace veriqec;

namespace {

StmtPtr parseOk(const std::string &Src) {
  ParseResult R = parseProgram(Src);
  if (auto *Err = std::get_if<ParseError>(&R)) {
    ADD_FAILURE() << Err->render() << "\nsource:\n" << Src;
    return Stmt::skip();
  }
  return std::get<StmtPtr>(R);
}

ParseError parseFail(const std::string &Src) {
  ParseResult R = parseProgram(Src);
  if (auto *P = std::get_if<StmtPtr>(&R)) {
    ADD_FAILURE() << "expected failure, parsed:\n" << (*P)->toString();
    return {};
  }
  return std::get<ParseError>(R);
}

} // namespace

TEST(Parser, SkipAndSequence) {
  StmtPtr S = parseOk("skip # skip # skip");
  EXPECT_EQ(S->Kind, StmtKind::Skip); // sequencing folds skips away
}

TEST(Parser, QubitStatements) {
  StmtPtr S = parseOk("q[0] := |0> # q[1] *= H # q[0], q[1] *= CNOT");
  ASSERT_EQ(S->Kind, StmtKind::Seq);
  ASSERT_EQ(S->Body.size(), 3u);
  EXPECT_EQ(S->Body[0]->Kind, StmtKind::Init);
  EXPECT_EQ(S->Body[1]->Kind, StmtKind::Unitary);
  EXPECT_EQ(S->Body[1]->Gate, GateKind::H);
  EXPECT_EQ(S->Body[2]->Gate, GateKind::CNOT);
}

TEST(Parser, GuardedErrorSugar) {
  StmtPtr S = parseOk("[e1] q[3] *= Y");
  ASSERT_EQ(S->Kind, StmtKind::GuardedGate);
  EXPECT_EQ(S->Gate, GateKind::Y);
  EXPECT_EQ(S->Guard->toString(), "e1");
}

TEST(Parser, MeasurementWithPhase) {
  StmtPtr S = parseOk("s1 := meas[(-1)^(b) X[0] X[2]]");
  ASSERT_EQ(S->Kind, StmtKind::Measure);
  EXPECT_EQ(S->Targets[0], "s1");
  ASSERT_EQ(S->Measured.Factors.size(), 2u);
  EXPECT_EQ(S->Measured.Factors[0].Kind, PauliKind::X);
  ASSERT_TRUE(S->Measured.PhaseBit != nullptr);
}

TEST(Parser, DecoderCall) {
  StmtPtr S = parseOk("x1, x2, x3 := fz(s1, s2 + 1, s3)");
  ASSERT_EQ(S->Kind, StmtKind::DecoderCall);
  EXPECT_EQ(S->DecoderName, "fz");
  EXPECT_EQ(S->Targets.size(), 3u);
  EXPECT_EQ(S->Arguments.size(), 3u);
}

TEST(Parser, ControlFlow) {
  StmtPtr S = parseOk("if b == 1 then q[0] *= X else skip end");
  ASSERT_EQ(S->Kind, StmtKind::If);
  StmtPtr W = parseOk("while !done do x := x + 1 end");
  ASSERT_EQ(W->Kind, StmtKind::While);
  StmtPtr F = parseOk("for i in 1..7 do q[i - 1] *= H end");
  ASSERT_EQ(F->Kind, StmtKind::For);
  EXPECT_EQ(F->LoopVar, "i");
}

TEST(Parser, ForLoopFlattensToConstants) {
  StmtPtr F = parseOk("for i in 0..2 do q[i] *= H end");
  StmtPtr Flat = Stmt::flatten(F);
  ASSERT_EQ(Flat->Kind, StmtKind::Seq);
  ASSERT_EQ(Flat->Body.size(), 3u);
  CMem Empty;
  for (size_t I = 0; I != 3; ++I)
    EXPECT_EQ(Flat->Body[I]->Qubit0->evaluate(Empty),
              static_cast<int64_t>(I));
}

TEST(Parser, NestedForLoopsWithIndexArithmetic) {
  StmtPtr F = parseOk(
      "for i in 0..1 do for j in 0..1 do q[2*i + j] *= X end end");
  StmtPtr Flat = Stmt::flatten(F);
  ASSERT_EQ(Flat->Body.size(), 4u);
  CMem Empty;
  EXPECT_EQ(Flat->Body[3]->Qubit0->evaluate(Empty), 3);
}

TEST(Parser, Table1SteaneProgramParses) {
  // The full Steane(E, H) program of Table 1 in concrete syntax.
  const char *Src = R"(
    for i in 0..6 do [ep_i] q[i] *= Y end #
    for i in 0..6 do q[i] *= H end #
    for i in 0..6 do [e_i] q[i] *= Y end #
    s1 := meas[X[0] X[2] X[4] X[6]] #
    s2 := meas[X[1] X[2] X[5] X[6]] #
    s3 := meas[X[3] X[4] X[5] X[6]] #
    s4 := meas[Z[0] Z[2] Z[4] Z[6]] #
    s5 := meas[Z[1] Z[2] Z[5] Z[6]] #
    s6 := meas[Z[3] Z[4] Z[5] Z[6]] #
    z1, z2, z3, z4, z5, z6, z7 := fz(s1, s2, s3) #
    x1, x2, x3, x4, x5, x6, x7 := fx(s4, s5, s6) #
    for i in 0..6 do [x_i] q[i] *= X end #
    for i in 0..6 do [z_i] q[i] *= Z end
  )";
  StmtPtr S = parseOk(Src);
  StmtPtr Flat = Stmt::flatten(S);
  EXPECT_EQ(Flat->Kind, StmtKind::Seq);
  // 7 + 7 + 7 + 6 + 2 + 7 + 7 statements after flattening.
  EXPECT_EQ(Flat->Body.size(), 43u);
}

TEST(Parser, RoundTripThroughPrinter) {
  const char *Src = "if e <= 2 then [g] q[1] *= Z else q[2] := |0> end";
  StmtPtr S = parseOk(Src);
  StmtPtr Again = parseOk(S->toString());
  EXPECT_EQ(S->toString(), Again->toString());
}

TEST(Parser, ExpressionPrecedence) {
  auto R = parseClassicalExpr("a + b * c <= 7 && !d || e -> f");
  ASSERT_TRUE(std::holds_alternative<CExprPtr>(R));
  CExprPtr E = std::get<CExprPtr>(R);
  // Implication binds last.
  EXPECT_EQ(E->Kind, CExprKind::Imp);
  CMem Mem{{"a", 1}, {"b", 2}, {"c", 3}, {"d", 0}, {"e", 0}, {"f", 1}};
  EXPECT_TRUE(E->evaluateBool(Mem));
}

TEST(Parser, XorChainsForSyndromes) {
  auto R = parseClassicalExpr("s1 ^ s2 ^ s3");
  ASSERT_TRUE(std::holds_alternative<CExprPtr>(R));
  CMem Mem{{"s1", 1}, {"s2", 1}, {"s3", 1}};
  EXPECT_EQ(std::get<CExprPtr>(R)->evaluate(Mem), 1);
}

TEST(Parser, ErrorsCarryPositions) {
  ParseError E = parseFail("q[0] *= BOGUS");
  EXPECT_NE(E.Message.find("unknown gate"), std::string::npos);
  EXPECT_EQ(E.Line, 1u);

  ParseError E2 = parseFail("if b then skip end"); // missing else
  EXPECT_NE(E2.Message.find("else"), std::string::npos);

  ParseError E3 = parseFail("x := meas[QQ]");
  (void)E3;

  ParseError E4 = parseFail("q[0] q[1] *= CNOT"); // missing comma
  (void)E4;
}

TEST(Parser, CommentsAndWhitespace) {
  StmtPtr S = parseOk("// leading comment\n  skip # // tail\n skip");
  EXPECT_EQ(S->Kind, StmtKind::Skip);
}

TEST(Parser, TwoQubitArityEnforced) {
  parseFail("q[0] *= CNOT");
  parseFail("q[0], q[1] *= H");
}
