//===- tests/pauli_test.cpp - Pauli algebra vs dense matrices -------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the symplectic Pauli representation (multiplication phases,
/// commutation, Clifford conjugation incl. iSWAP) against an independent
/// dense complex-matrix implementation written directly in this test.
///
//===----------------------------------------------------------------------===//

#include "pauli/Pauli.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

using namespace veriqec;

namespace {

using Cplx = std::complex<double>;
using Matrix = std::vector<std::vector<Cplx>>;

Matrix zeros(size_t N) { return Matrix(N, std::vector<Cplx>(N, Cplx{0, 0})); }

Matrix matMul(const Matrix &A, const Matrix &B) {
  size_t N = A.size();
  Matrix C = zeros(N);
  for (size_t I = 0; I != N; ++I)
    for (size_t K = 0; K != N; ++K) {
      if (A[I][K] == Cplx{0, 0})
        continue;
      for (size_t J = 0; J != N; ++J)
        C[I][J] += A[I][K] * B[K][J];
    }
  return C;
}

Matrix kron(const Matrix &A, const Matrix &B) {
  size_t NA = A.size(), NB = B.size();
  Matrix C = zeros(NA * NB);
  for (size_t I = 0; I != NA; ++I)
    for (size_t J = 0; J != NA; ++J)
      for (size_t K = 0; K != NB; ++K)
        for (size_t L = 0; L != NB; ++L)
          C[I * NB + K][J * NB + L] = A[I][J] * B[K][L];
  return C;
}

Matrix dagger(const Matrix &A) {
  size_t N = A.size();
  Matrix C = zeros(N);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      C[I][J] = std::conj(A[J][I]);
  return C;
}

bool approxEqual(const Matrix &A, const Matrix &B) {
  size_t N = A.size();
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      if (std::abs(A[I][J] - B[I][J]) > 1e-9)
        return false;
  return true;
}

const Cplx IU{0, 1};

Matrix singleQubitMatrix(PauliKind K) {
  switch (K) {
  case PauliKind::I:
    return {{1, 0}, {0, 1}};
  case PauliKind::X:
    return {{0, 1}, {1, 0}};
  case PauliKind::Y:
    return {{0, -IU}, {IU, 0}};
  case PauliKind::Z:
    return {{1, 0}, {0, -1}};
  }
  return {};
}

/// Dense matrix of an n-qubit Pauli, including its i^k phase.
Matrix denseMatrix(const Pauli &P) {
  Matrix M = {{1}};
  for (size_t Q = 0; Q != P.numQubits(); ++Q)
    M = kron(M, singleQubitMatrix(P.kindAt(Q)));
  // The stored representation is i^Phase * prod X^x Z^z; kindAt-based
  // letters carry an i per Y, so correct by i^(Phase - #Y).
  size_t NumY = 0;
  for (size_t Q = 0; Q != P.numQubits(); ++Q)
    if (P.kindAt(Q) == PauliKind::Y)
      ++NumY;
  unsigned Rel = (P.phaseExp() + 4u - (NumY % 4)) & 3u;
  Cplx Factor = 1;
  for (unsigned I = 0; I != Rel; ++I)
    Factor *= IU;
  for (auto &Row : M)
    for (Cplx &V : Row)
      V *= Factor;
  return M;
}

Matrix gateMatrix(GateKind K) {
  const double S2 = 1.0 / std::sqrt(2.0);
  switch (K) {
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
    return singleQubitMatrix(K == GateKind::X   ? PauliKind::X
                             : K == GateKind::Y ? PauliKind::Y
                                                : PauliKind::Z);
  case GateKind::H:
    return {{S2, S2}, {S2, -S2}};
  case GateKind::S:
    return {{1, 0}, {0, IU}};
  case GateKind::Sdg:
    return {{1, 0}, {0, -IU}};
  case GateKind::T:
    return {{1, 0}, {0, std::exp(IU * (M_PI / 4))}};
  case GateKind::Tdg:
    return {{1, 0}, {0, std::exp(-IU * (M_PI / 4))}};
  case GateKind::CNOT:
    return {{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}};
  case GateKind::CZ:
    return {{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, -1}};
  case GateKind::ISWAP:
    // The paper's iSWAP (Section 2.1): swaps with -i on the swapped
    // amplitudes.
    return {{1, 0, 0, 0}, {0, 0, -IU, 0}, {0, -IU, 0, 0}, {0, 0, 0, 1}};
  case GateKind::ISWAPdg:
    return dagger(Matrix{
        {1, 0, 0, 0}, {0, 0, -IU, 0}, {0, -IU, 0, 0}, {0, 0, 0, 1}});
  }
  return {};
}

/// Embeds a 1- or 2-qubit gate matrix on qubits (Q0[,Q1]) of an n-qubit
/// system (dense, for n <= 3).
Matrix embedGate(GateKind K, size_t N, size_t Q0, size_t Q1) {
  size_t Dim = size_t{1} << N;
  Matrix G = gateMatrix(K);
  Matrix M = zeros(Dim);
  bool Two = isTwoQubitGate(K);
  for (size_t Row = 0; Row != Dim; ++Row) {
    // Bit of qubit q in basis index: qubit 0 is the most significant bit
    // (matching the kron order used in denseMatrix()).
    auto bitOf = [&](size_t Index, size_t Q) {
      return (Index >> (N - 1 - Q)) & 1;
    };
    size_t RIn = Two ? (bitOf(Row, Q0) * 2 + bitOf(Row, Q1)) : bitOf(Row, Q0);
    for (size_t GCol = 0; GCol != G.size(); ++GCol) {
      if (G[RIn][GCol] == Cplx{0, 0})
        continue;
      size_t Col = Row;
      auto setBit = [&](size_t Index, size_t Q, size_t B) {
        size_t Mask = size_t{1} << (N - 1 - Q);
        return B ? (Index | Mask) : (Index & ~Mask);
      };
      if (Two) {
        Col = setBit(Col, Q0, (GCol >> 1) & 1);
        Col = setBit(Col, Q1, GCol & 1);
      } else {
        Col = setBit(Col, Q0, GCol & 1);
      }
      M[Row][Col] = G[RIn][GCol];
    }
  }
  // We built M[row][col] = G[rowbits][colbits]; that is the correct dense
  // embedding of G acting on the selected qubits.
  return M;
}

Pauli randomPauli(size_t N, Rng &R) {
  Pauli P(N);
  for (size_t Q = 0; Q != N; ++Q)
    P.setKind(Q, static_cast<PauliKind>(R.nextBelow(4)));
  return P;
}

} // namespace

TEST(Pauli, SingleLetterRoundTrip) {
  for (PauliKind K :
       {PauliKind::I, PauliKind::X, PauliKind::Y, PauliKind::Z}) {
    Pauli P = Pauli::single(3, 1, K);
    EXPECT_EQ(P.kindAt(1), K);
    EXPECT_EQ(P.kindAt(0), PauliKind::I);
    EXPECT_TRUE(P.isHermitian());
    EXPECT_FALSE(P.signBit());
  }
}

TEST(Pauli, FromStringParsesSignsAndLetters) {
  auto P = Pauli::fromString("-XIYZ");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->numQubits(), 4u);
  EXPECT_EQ(P->kindAt(0), PauliKind::X);
  EXPECT_EQ(P->kindAt(2), PauliKind::Y);
  EXPECT_TRUE(P->isHermitian());
  EXPECT_TRUE(P->signBit());
  EXPECT_EQ(P->toString(), "-XIYZ");

  EXPECT_FALSE(Pauli::fromString("XQ").has_value());

  auto Q = Pauli::fromString("iZ");
  ASSERT_TRUE(Q.has_value());
  EXPECT_FALSE(Q->isHermitian());
}

TEST(Pauli, MultiplicationMatchesDense) {
  Rng R(77);
  for (int Trial = 0; Trial != 60; ++Trial) {
    Pauli A = randomPauli(2, R);
    Pauli B = randomPauli(2, R);
    if (R.nextBool())
      A.negate();
    if (R.nextBool())
      B.negate();
    Pauli C = A * B;
    EXPECT_TRUE(approxEqual(denseMatrix(C),
                            matMul(denseMatrix(A), denseMatrix(B))))
        << A.toString() << " * " << B.toString() << " != " << C.toString();
  }
}

TEST(Pauli, CommutationMatchesDense) {
  Rng R(13);
  for (int Trial = 0; Trial != 60; ++Trial) {
    Pauli A = randomPauli(3, R);
    Pauli B = randomPauli(3, R);
    Matrix AB = matMul(denseMatrix(A), denseMatrix(B));
    Matrix BA = matMul(denseMatrix(B), denseMatrix(A));
    EXPECT_EQ(A.commutesWith(B), approxEqual(AB, BA));
  }
}

TEST(Pauli, WellKnownIdentities) {
  Pauli X = Pauli::single(1, 0, PauliKind::X);
  Pauli Y = Pauli::single(1, 0, PauliKind::Y);
  Pauli Z = Pauli::single(1, 0, PauliKind::Z);
  // XY = iZ.
  Pauli XY = X * Y;
  EXPECT_TRUE(XY.sameLetters(Z));
  EXPECT_FALSE(XY.isHermitian());
  // X^2 = I.
  EXPECT_TRUE((X * X).isIdentity());
  EXPECT_TRUE((Y * Y).isIdentity());
  EXPECT_TRUE((Z * Z).isIdentity());
  // XYZ = iI.
  Pauli XYZ = X * Y * Z;
  EXPECT_TRUE(XYZ.isIdentityUpToPhase());
  EXPECT_EQ(XYZ.phaseExp(), 1);
}

struct ConjugationCase {
  GateKind Gate;
  size_t NumQubits;
  size_t Q0;
  size_t Q1;
};

class PauliConjugation : public ::testing::TestWithParam<ConjugationCase> {};

TEST_P(PauliConjugation, MatchesDenseConjugation) {
  const ConjugationCase &C = GetParam();
  Rng R(101 + static_cast<uint64_t>(C.Gate));
  Matrix U = embedGate(C.Gate, C.NumQubits, C.Q0, C.Q1);
  Matrix Udg = dagger(U);
  for (int Trial = 0; Trial != 40; ++Trial) {
    Pauli P = randomPauli(C.NumQubits, R);
    if (R.nextBool())
      P.negate();
    Pauli Conj = P;
    Conj.conjugate(C.Gate, C.Q0, C.Q1);
    Matrix Expected = matMul(U, matMul(denseMatrix(P), Udg));
    EXPECT_TRUE(approxEqual(denseMatrix(Conj), Expected))
        << gateName(C.Gate) << " on " << P.toString() << " gave "
        << Conj.toString();

    // conjugateInverse must invert conjugate.
    Pauli Back = Conj;
    Back.conjugateInverse(C.Gate, C.Q0, C.Q1);
    EXPECT_EQ(Back, P);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCliffordGates, PauliConjugation,
    ::testing::Values(
        ConjugationCase{GateKind::X, 2, 0, 0}, //
        ConjugationCase{GateKind::Y, 2, 1, 0},
        ConjugationCase{GateKind::Z, 2, 0, 0},
        ConjugationCase{GateKind::H, 2, 1, 0},
        ConjugationCase{GateKind::S, 2, 0, 0},
        ConjugationCase{GateKind::Sdg, 2, 1, 0},
        ConjugationCase{GateKind::CNOT, 2, 0, 1},
        ConjugationCase{GateKind::CNOT, 2, 1, 0},
        ConjugationCase{GateKind::CNOT, 3, 2, 0},
        ConjugationCase{GateKind::CZ, 2, 0, 1},
        ConjugationCase{GateKind::CZ, 3, 1, 2},
        ConjugationCase{GateKind::ISWAP, 2, 0, 1},
        ConjugationCase{GateKind::ISWAP, 3, 2, 1},
        ConjugationCase{GateKind::ISWAPdg, 2, 0, 1}));

TEST(Pauli, PaperSubstitutionTablesBackward) {
  // Spot-check the Fig. 3 substitution direction: wlp of q*=U substitutes
  // P -> U^dagger P U. For H: X<->Z; for S: X -> -Y... wait, (U-S) says
  // A[-Y/X, X/Y], i.e. U^dagger X U = -Y and U^dagger Y U = X.
  Pauli X = Pauli::single(1, 0, PauliKind::X);
  Pauli Y = Pauli::single(1, 0, PauliKind::Y);

  Pauli P = X;
  P.conjugateInverse(GateKind::S, 0);
  Pauli MinusY = Y;
  MinusY.negate();
  EXPECT_EQ(P, MinusY);

  P = Y;
  P.conjugateInverse(GateKind::S, 0);
  EXPECT_EQ(P, X);

  // (U-iSWAP): U^dagger X_i U = Z_i Y_j.
  Pauli Xi = Pauli::single(2, 0, PauliKind::X);
  Xi.conjugateInverse(GateKind::ISWAP, 0, 1);
  Pauli ZiYj =
      Pauli::single(2, 0, PauliKind::Z) * Pauli::single(2, 1, PauliKind::Y);
  EXPECT_EQ(Xi, ZiYj);

  // (U-iSWAP): U^dagger Y_i U = -Z_i X_j.
  Pauli Yi = Pauli::single(2, 0, PauliKind::Y);
  Yi.conjugateInverse(GateKind::ISWAP, 0, 1);
  Pauli ZiXj =
      Pauli::single(2, 0, PauliKind::Z) * Pauli::single(2, 1, PauliKind::X);
  ZiXj.negate();
  EXPECT_EQ(Yi, ZiXj);
}

TEST(Pauli, WeightCountsSupport) {
  auto P = Pauli::fromString("XIYZI");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->weight(), 3u);
  EXPECT_EQ(Pauli(5).weight(), 0u);
}
