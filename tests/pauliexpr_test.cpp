//===- tests/pauliexpr_test.cpp - Theorem 3.1 closure tests ---------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies the closedness of Pauli expressions under Clifford + T
/// (Theorem 3.1) by comparing the algebraic conjugation rules against
/// dense matrices, and the identities of the Section 5.2.2 case study
/// (the tainted Steane generators like (1/sqrt2) X1 X3 (X5 - Y5) X7).
///
//===----------------------------------------------------------------------===//

#include "assertion/PauliExpr.h"
#include "sem/DenseState.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

using namespace veriqec;

namespace {

using Cplx = std::complex<double>;

/// Dense matrix of a PauliExpr via the DenseState Pauli applicator.
std::vector<std::vector<Cplx>> denseOf(const PauliExpr &E, size_t N) {
  size_t Dim = size_t{1} << N;
  std::vector<std::vector<Cplx>> M(Dim, std::vector<Cplx>(Dim, Cplx{0, 0}));
  for (const auto &[P, C] : E.terms()) {
    for (size_t Col = 0; Col != Dim; ++Col) {
      DenseState V(N);
      V.amp(0) = 0;
      V.amp(Col) = 1;
      V.applyPauli(P);
      for (size_t Row = 0; Row != Dim; ++Row)
        M[Row][Col] += C.toDouble() * V.amp(Row);
    }
  }
  return M;
}

/// Dense matrix of U^dagger * A * U for a gate applied to basis columns.
std::vector<std::vector<Cplx>>
conjugateDense(const std::vector<std::vector<Cplx>> &A, GateKind Kind,
               size_t N, size_t Q0, size_t Q1) {
  size_t Dim = A.size();
  // Compute column by column: (U^dag A U) e_c = U^dag (A (U e_c)).
  std::vector<std::vector<Cplx>> Out(Dim, std::vector<Cplx>(Dim, Cplx{0, 0}));
  for (size_t Col = 0; Col != Dim; ++Col) {
    DenseState V(N);
    V.amp(0) = 0;
    V.amp(Col) = 1;
    V.applyGate(Kind, Q0, Q1);
    // Multiply by A.
    std::vector<Cplx> Mid(Dim, Cplx{0, 0});
    for (size_t R = 0; R != Dim; ++R)
      for (size_t K = 0; K != Dim; ++K)
        Mid[R] += A[R][K] * V.amp(K);
    DenseState W(N);
    W.amp(0) = 0;
    for (size_t R = 0; R != Dim; ++R)
      W.amp(R) = Mid[R];
    W.applyGate(inverseGate(Kind), Q0, Q1);
    for (size_t R = 0; R != Dim; ++R)
      Out[R][Col] = W.amp(R);
  }
  return Out;
}

bool approxEqual(const std::vector<std::vector<Cplx>> &A,
                 const std::vector<std::vector<Cplx>> &B) {
  for (size_t I = 0; I != A.size(); ++I)
    for (size_t J = 0; J != A.size(); ++J)
      if (std::abs(A[I][J] - B[I][J]) > 1e-9)
        return false;
  return true;
}

Pauli randomHermitianPauli(size_t N, Rng &R) {
  Pauli P(N);
  for (size_t Q = 0; Q != N; ++Q)
    P.setKind(Q, static_cast<PauliKind>(R.nextBelow(4)));
  return P.abs();
}

} // namespace

TEST(PauliExpr, SinglePauliRoundTrip) {
  Pauli P = *Pauli::fromString("-XZ");
  PauliExpr E(P);
  EXPECT_TRUE(E.isSinglePauli());
  auto Terms = E.terms();
  ASSERT_EQ(Terms.size(), 1u);
  EXPECT_EQ(Terms[0].second, Sqrt2Ring(-1));
}

TEST(PauliExpr, AdditionCancels) {
  Pauli P = *Pauli::fromString("XI");
  PauliExpr E = PauliExpr(P) + (-PauliExpr(P));
  EXPECT_TRUE(E.isZero());
}

struct ClosureCase {
  GateKind Gate;
  size_t N, Q0, Q1;
};

class PauliExprClosure : public ::testing::TestWithParam<ClosureCase> {};

TEST_P(PauliExprClosure, ConjugationMatchesDense) {
  const ClosureCase &C = GetParam();
  Rng R(37 + static_cast<uint64_t>(C.Gate));
  for (int Trial = 0; Trial != 15; ++Trial) {
    Pauli P = randomHermitianPauli(C.N, R);
    PauliExpr E(P);
    // Pre-scramble with one T so multi-term expressions get exercised.
    E.conjugateInverse(GateKind::T, 0);
    auto Before = denseOf(E, C.N);
    PauliExpr EC = E;
    EC.conjugateInverse(C.Gate, C.Q0, C.Q1);
    auto Expected = conjugateDense(Before, C.Gate, C.N, C.Q0, C.Q1);
    EXPECT_TRUE(approxEqual(denseOf(EC, C.N), Expected))
        << gateName(C.Gate) << " on " << E.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    CliffordPlusT, PauliExprClosure,
    ::testing::Values(ClosureCase{GateKind::H, 2, 1, 0},
                      ClosureCase{GateKind::S, 2, 0, 0},
                      ClosureCase{GateKind::T, 2, 0, 0},
                      ClosureCase{GateKind::T, 2, 1, 0},
                      ClosureCase{GateKind::Tdg, 2, 0, 0},
                      ClosureCase{GateKind::X, 2, 0, 0},
                      ClosureCase{GateKind::CNOT, 2, 0, 1},
                      ClosureCase{GateKind::CZ, 2, 1, 0},
                      ClosureCase{GateKind::ISWAP, 2, 0, 1}));

TEST(PauliExpr, UTRuleExactly) {
  // (U-T): T^dagger X T = (X - Y)/sqrt2.
  PauliExpr E(Pauli::single(1, 0, PauliKind::X));
  E.conjugateInverse(GateKind::T, 0);
  auto Terms = E.terms();
  ASSERT_EQ(Terms.size(), 2u);
  for (const auto &[P, C] : Terms) {
    if (P.kindAt(0) == PauliKind::X)
      EXPECT_EQ(C, Sqrt2Ring::invSqrt2());
    else {
      EXPECT_EQ(P.kindAt(0), PauliKind::Y);
      EXPECT_EQ(C, -Sqrt2Ring::invSqrt2());
    }
  }
  // Applying T twice equals the S rule: X -> -Y (exact cancellation in
  // the ring: ((X - Y) - (X + Y))/2 = -Y).
  E.conjugateInverse(GateKind::T, 0);
  EXPECT_EQ(E, -PauliExpr(Pauli::single(1, 0, PauliKind::Y)));
  PauliExpr SExp(Pauli::single(1, 0, PauliKind::X));
  SExp.conjugateInverse(GateKind::S, 0);
  EXPECT_EQ(E, SExp);
}

TEST(PauliExpr, SteaneTaintedGeneratorOfSection522) {
  // The paper's g'_1 = (1/sqrt2) X1 X3 (X5 - Y5) X7 arises from
  // conjugating g_1 = X1 X3 X5 X7 by a T error on qubit 5 (1-based).
  PauliExpr G1(*Pauli::fromString("XIXIXIX"));
  PauliExpr GPrime = G1;
  GPrime.conjugateInverse(GateKind::T, 4); // 0-based qubit 5
  auto Terms = GPrime.terms();
  ASSERT_EQ(Terms.size(), 2u);
  bool SawX = false, SawY = false;
  for (const auto &[P, C] : Terms) {
    if (P.kindAt(4) == PauliKind::X) {
      SawX = true;
      EXPECT_EQ(C, Sqrt2Ring::invSqrt2());
    }
    if (P.kindAt(4) == PauliKind::Y) {
      SawY = true;
      EXPECT_EQ(C, -Sqrt2Ring::invSqrt2());
    }
  }
  EXPECT_TRUE(SawX && SawY);
  // Z-type generators are invariant under the T error (footnote 6).
  PauliExpr G4(*Pauli::fromString("ZIZIZIZ"));
  PauliExpr G4Prime = G4;
  G4Prime.conjugateInverse(GateKind::T, 4);
  EXPECT_EQ(G4, G4Prime);
}

TEST(PauliExpr, ProductOfTaintedSiblingsUntaints) {
  // The algebraic fact behind the case-3 sibling cancellation: for two
  // generators both carrying X on the tainted qubit, the product of
  // their T-conjugates is the plain product (T (ab) T^dag = ab).
  PauliExpr A(*Pauli::fromString("XXI"));
  PauliExpr B(*Pauli::fromString("XIX"));
  PauliExpr TA = A, TB = B;
  TA.conjugateInverse(GateKind::T, 0);
  TB.conjugateInverse(GateKind::T, 0);
  PauliExpr Product = TA * TB;
  PauliExpr Plain = A * B;
  EXPECT_EQ(Product, Plain);
  EXPECT_TRUE(Product.isSinglePauli());
}
