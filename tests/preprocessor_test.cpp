//===- tests/preprocessor_test.cpp - GF(2) preprocessing properties -------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for smt/Preprocessor and the preprocessed
/// pipeline: XOR extraction, Gaussian trivial-UNSAT detection, sparse
/// variable elimination with model reconstruction, cube refutation by
/// GF(2) unit propagation, the assumption-activated weight layer, and —
/// the strong property — equisatisfiability of the preprocessed and
/// legacy pipelines verified by exhaustive model counting (reusing the
/// blocking-clause harness of cnf_encoder_test) across both cardinality
/// encodings, plus verdict/certificate agreement on registry-code
/// verification conditions.
///
//===----------------------------------------------------------------------===//

#include "engine/VerificationEngine.h"
#include "qec/Codes.h"
#include "smt/CubeSolver.h"
#include "smt/Preprocessor.h"
#include "support/Rng.h"
#include "testing/ModelChecker.h"
#include "verifier/Verifier.h"

#include <gtest/gtest.h>

using namespace veriqec;
using namespace veriqec::smt;

namespace {

std::vector<ExprRef> makeVars(BoolContext &Ctx, size_t N) {
  std::vector<ExprRef> Vars;
  for (size_t I = 0; I != N; ++I)
    Vars.push_back(Ctx.mkVar("v" + std::to_string(I)));
  return Vars;
}

/// Counts models over the named variables by blocking-clause enumeration.
/// Eliminated variables are functionally determined by the rest, so the
/// count is invariant under preprocessing.
uint64_t countModels(const BoolContext &Ctx, ExprRef Root,
                     const ProblemOptions &PO) {
  VerificationProblem Problem(Ctx, Root, PO);
  if (Problem.TriviallyUnsat)
    return 0;
  sat::Solver S = Problem.makeSolver();
  uint64_t Count = 0;
  while (S.solve() == sat::SolveResult::Sat) {
    ++Count;
    EXPECT_LE(Count, 1u << 13) << "runaway model enumeration";
    // Cross-check: the total model (with reconstruction) satisfies the
    // original expression.
    std::unordered_map<std::string, bool> Model;
    Problem.readModel(S, Model);
    veriqec::testing::ModelCheckResult MC =
        veriqec::testing::evaluateUnderModel(Ctx, Root, Model);
    EXPECT_TRUE(MC.Satisfies) << "reconstructed model violates the root";
    EXPECT_EQ(MC.MissingVars, 0u);
    std::vector<sat::Lit> Blocking;
    for (const auto &[Name, V] : Problem.NamedVars)
      Blocking.push_back(sat::Lit(V, S.modelValue(V)));
    if (!S.addClause(std::move(Blocking)))
      break;
  }
  return Count;
}

/// Random expression mixing parity structure with cardinality atoms.
ExprRef randomExpr(BoolContext &Ctx, const std::vector<ExprRef> &Vars, Rng &R,
                   int Depth) {
  if (Depth == 0 || R.nextBelow(4) == 0)
    return Vars[R.nextBelow(Vars.size())];
  switch (R.nextBelow(6)) {
  case 0:
    return Ctx.mkNot(randomExpr(Ctx, Vars, R, Depth - 1));
  case 1:
    return Ctx.mkAnd(randomExpr(Ctx, Vars, R, Depth - 1),
                     randomExpr(Ctx, Vars, R, Depth - 1));
  case 2:
    return Ctx.mkOr(randomExpr(Ctx, Vars, R, Depth - 1),
                    randomExpr(Ctx, Vars, R, Depth - 1));
  case 3: {
    std::vector<ExprRef> Kids;
    size_t K = 2 + R.nextBelow(4);
    for (size_t I = 0; I != K; ++I)
      Kids.push_back(Vars[R.nextBelow(Vars.size())]);
    return Ctx.mkXor(std::move(Kids));
  }
  case 4: {
    std::vector<ExprRef> Subset;
    for (ExprRef V : Vars)
      if (R.nextBool())
        Subset.push_back(V);
    if (Subset.empty())
      Subset.push_back(Vars[0]);
    uint32_t K = static_cast<uint32_t>(R.nextBelow(Subset.size() + 1));
    return Ctx.mkAtMost(std::move(Subset), K);
  }
  default: {
    std::vector<ExprRef> A, B;
    for (ExprRef V : Vars)
      (R.nextBool() ? A : B).push_back(V);
    if (A.empty())
      A.push_back(Vars[0]);
    return Ctx.mkSumLeqSum(std::move(A), std::move(B));
  }
  }
}

} // namespace

// -- XOR extraction ----------------------------------------------------------

TEST(Preprocessor, LiftsParityConjunctsAndKeepsResidue) {
  BoolContext Ctx;
  std::vector<ExprRef> V = makeVars(Ctx, 6);
  ExprRef Root = Ctx.mkAnd({
      Ctx.mkXor({V[0], V[1], V[2]}),            // parity = 1
      Ctx.mkNot(Ctx.mkXor({V[2], V[3], V[4]})), // parity = 0
      Ctx.mkVar("v5"),                          // unit
      Ctx.mkAtMost({V[0], V[1], V[3]}, 2),      // residue
  });
  PreprocessOptions PO;
  // Pin everything so no elimination obscures the lift itself.
  for (uint32_t I = 0; I != 6; ++I)
    PO.KeepVarIds.push_back(I);
  PreprocessedFormula P = preprocess(Ctx, Root, PO);
  EXPECT_FALSE(P.TriviallyUnsat);
  EXPECT_EQ(P.Stats.LinearConjuncts, 3u);
  EXPECT_EQ(P.Rows.size(), 3u);
  EXPECT_EQ(P.Residue.size(), 1u);
  EXPECT_EQ(P.Eliminated.size(), 0u);
  EXPECT_EQ(P.Stats.UnitsFixed, 1u);
}

TEST(Preprocessor, DetectsInconsistentParitySystem) {
  BoolContext Ctx;
  std::vector<ExprRef> V = makeVars(Ctx, 8);
  // P1 ^ P2 ^ P3 ^ P4 == 0 always; demanding odd parity is UNSAT — and
  // provably so by Gaussian elimination alone.
  ExprRef P1 = Ctx.mkXor({V[0], V[1], V[2], V[3]});
  ExprRef P2 = Ctx.mkXor({V[2], V[3], V[4], V[5]});
  ExprRef P3 = Ctx.mkXor({V[4], V[5], V[6], V[7]});
  ExprRef P4 = Ctx.mkXor({V[0], V[1], V[6], V[7]});
  ExprRef Root = Ctx.mkAnd({P1, P2, P3, Ctx.mkNot(P4)});
  PreprocessedFormula P = preprocess(Ctx, Root, {});
  EXPECT_TRUE(P.TriviallyUnsat);

  // The full problem layer short-circuits without a solver.
  VerificationProblem Problem(Ctx, Root, {});
  EXPECT_TRUE(Problem.TriviallyUnsat);
  SolveOutcome Out = solveExpr(Ctx, Root);
  EXPECT_EQ(Out.Result, sat::SolveResult::Unsat);
  EXPECT_EQ(Out.Stats.Conflicts, 0u);
}

// -- Variable elimination & reconstruction -----------------------------------

TEST(Preprocessor, EliminatesDefinedVariablesAndReconstructsModels) {
  BoolContext Ctx;
  std::vector<ExprRef> V = makeVars(Ctx, 4);
  ExprRef S0 = Ctx.mkVar("s0"); // defined once, consumed once: eliminable
  ExprRef C0 = Ctx.mkVar("c0");
  ExprRef Root = Ctx.mkAnd({
      Ctx.mkIff(S0, Ctx.mkXor({V[0], V[1], V[2]})), // s0 := v0^v1^v2
      Ctx.mkIff(Ctx.mkXor(C0, S0), Ctx.mkFalse()),  // c0 == s0
      Ctx.mkAtMost({V[0], V[1], V[2], V[3]}, 1),
  });
  PreprocessedFormula P = preprocess(Ctx, Root, {});
  EXPECT_GE(P.Stats.VarsEliminated, 1u);

  // Equal model counts with and without preprocessing, and every
  // reconstructed model satisfies the original root (checked inside
  // countModels).
  ProblemOptions On, Off;
  Off.Preprocess = false;
  EXPECT_EQ(countModels(Ctx, Root, On), countModels(Ctx, Root, Off));
}

TEST(Preprocessor, ProtectedVariablesSurviveElimination) {
  BoolContext Ctx;
  std::vector<ExprRef> V = makeVars(Ctx, 3);
  Ctx.mkVar("s");
  ExprRef Root = Ctx.mkAnd({
      Ctx.mkIff(Ctx.mkVar("s"), Ctx.mkXor(V[0], V[1])),
      Ctx.mkOr(V[0], V[2]),
  });
  ProblemOptions PO;
  PO.ProtectedVars = {"s", "v0", "v1"};
  VerificationProblem Problem(Ctx, Root, PO);
  // varOfName must not throw: "s" stayed materialized.
  sat::Var SV = Problem.varOfName("s");
  sat::Solver S = Problem.makeSolver();
  // Assuming s while forcing v0 = v1 refutes: s <-> v0^v1 is in the CNF.
  ASSERT_EQ(S.solve({sat::mkLit(SV), ~sat::mkLit(Problem.varOfName("v0")),
                     ~sat::mkLit(Problem.varOfName("v1"))}),
            sat::SolveResult::Unsat);
}

// -- Equivalence-literal substitution ----------------------------------------

TEST(Preprocessor, EquivalenceRowsSubstituteThroughTheEncoder) {
  BoolContext Ctx;
  std::vector<ExprRef> V = makeVars(Ctx, 4);
  // Both 2-literal rows connect variables the residue also uses, so the
  // occurrence-based elimination must leave them alone — only the
  // equivalence substitution can remove them. v0 != v1 and v2 == v3.
  ExprRef Root = Ctx.mkAnd({
      Ctx.mkXor(V[0], V[1]),
      Ctx.mkNot(Ctx.mkXor(V[2], V[3])),
      Ctx.mkOr(V[0], V[2]),
      Ctx.mkOr(V[1], V[3]),
  });
  PreprocessedFormula P = preprocess(Ctx, Root);
  EXPECT_EQ(P.Stats.EquivAliased, 2u);
  EXPECT_EQ(P.Stats.RowsKept, 0u);
  ASSERT_EQ(P.Aliases.size(), 2u);
  for (const VarAlias &A : P.Aliases) {
    // Targets are survivors: never another aliased variable.
    for (const VarAlias &B : P.Aliases)
      EXPECT_NE(A.ToVarId, B.VarId);
    // Every alias has a matching reconstruction record.
    bool Found = false;
    for (const VarReconstruction &R : P.Eliminated)
      Found |= R.VarId == A.VarId && R.Deps.size() == 1 &&
               R.Deps[0] == A.ToVarId && R.Constant == A.Negated;
    EXPECT_TRUE(Found);
  }
  // The substituted encoding is model-count-equivalent to the legacy
  // pipeline over the named variables, with total reconstructed models.
  ProblemOptions On, Off;
  Off.Preprocess = false;
  EXPECT_EQ(countModels(Ctx, Root, On), countModels(Ctx, Root, Off));
}

TEST(Preprocessor, EquivalenceChainsResolveToSurvivingTargets) {
  BoolContext Ctx;
  std::vector<ExprRef> V = makeVars(Ctx, 3);
  // v0 != v1, v1 == v2, all three used by the residue: substitution
  // cascades (rewriting one row re-exposes a 2-literal row) and the
  // published targets must be fully resolved.
  ExprRef Root = Ctx.mkAnd({
      Ctx.mkXor(V[0], V[1]),
      Ctx.mkNot(Ctx.mkXor(V[1], V[2])),
      Ctx.mkOr({V[0], V[1], V[2]}),
  });
  PreprocessedFormula P = preprocess(Ctx, Root);
  EXPECT_EQ(P.Stats.EquivAliased, 2u);
  EXPECT_EQ(P.Stats.RowsKept, 0u);
  for (const VarAlias &A : P.Aliases)
    for (const VarAlias &B : P.Aliases)
      EXPECT_NE(A.ToVarId, B.VarId) << "alias points at an aliased var";
  ProblemOptions On, Off;
  Off.Preprocess = false;
  EXPECT_EQ(countModels(Ctx, Root, On), countModels(Ctx, Root, Off));
}

TEST(Preprocessor, PinnedVariablesAreNeverAliased) {
  BoolContext Ctx;
  std::vector<ExprRef> V = makeVars(Ctx, 3);
  ExprRef Root = Ctx.mkAnd({
      Ctx.mkXor(V[0], V[1]),
      Ctx.mkOr(V[0], V[2]),
      Ctx.mkOr(V[1], V[2]),
  });
  {
    // Both ends pinned: the row must survive as a row.
    PreprocessOptions PO;
    PO.KeepVarIds = {Ctx.varIdOf("v0"), Ctx.varIdOf("v1")};
    PreprocessedFormula P = preprocess(Ctx, Root, PO);
    EXPECT_EQ(P.Stats.EquivAliased, 0u);
    EXPECT_EQ(P.Stats.RowsKept, 1u);
  }
  {
    // One end pinned: the other is substituted away, toward the pin.
    PreprocessOptions PO;
    PO.KeepVarIds = {Ctx.varIdOf("v1")};
    PreprocessedFormula P = preprocess(Ctx, Root, PO);
    ASSERT_EQ(P.Aliases.size(), 1u);
    EXPECT_EQ(P.Aliases[0].VarId, Ctx.varIdOf("v0"));
    EXPECT_EQ(P.Aliases[0].ToVarId, Ctx.varIdOf("v1"));
    EXPECT_TRUE(P.Aliases[0].Negated);
  }
  // Through the problem layer: protected (split) variables keep plain
  // CNF variables, and assuming v0 = v1 under protection refutes.
  ProblemOptions PO;
  PO.ProtectedVars = {"v0", "v1"};
  VerificationProblem Problem(Ctx, Root, PO);
  sat::Solver S = Problem.makeSolver();
  ASSERT_EQ(S.solve({sat::mkLit(Problem.varOfName("v0")),
                     sat::mkLit(Problem.varOfName("v1"))}),
            sat::SolveResult::Unsat);
}

// -- Cube refutation ---------------------------------------------------------

TEST(Preprocessor, ParityPropagatorRefutesInconsistentCubes) {
  // Rows: a^b = 1, b^c = 0. Cube {a=1, c=1} forces b=0 (row 1) then
  // violates row 2.
  std::vector<ParityRow> Rows;
  Rows.push_back({{0, 1}, true});
  Rows.push_back({{1, 2}, false});
  ParityPropagator Prop(Rows);
  std::vector<std::pair<uint32_t, bool>> Cube;

  Cube = {{0, true}, {2, true}};
  EXPECT_TRUE(Prop.refutes(Cube));
  Cube = {{0, true}, {2, false}};
  EXPECT_FALSE(Prop.refutes(Cube));
  Cube = {{0, true}, {0, false}};
  EXPECT_TRUE(Prop.refutes(Cube)) << "self-contradictory cube";
  Cube = {{7, true}};
  EXPECT_FALSE(Prop.refutes(Cube)) << "foreign variable is unconstrained";
}

TEST(Preprocessor, CubeRefutationPrunesWithoutChangingVerdicts) {
  // v0^v1 = 1 pinned as rows (protected split vars); the cube v0=v1=0
  // is refuted by GF(2) propagation, no solver involved.
  BoolContext Ctx;
  std::vector<ExprRef> V = makeVars(Ctx, 3);
  ExprRef Root = Ctx.mkAnd({Ctx.mkXor(V[0], V[1]), Ctx.mkOr(V[1], V[2])});
  ProblemOptions PO;
  PO.ProtectedVars = {"v0", "v1"};
  VerificationProblem Problem(Ctx, Root, PO);
  std::vector<sat::Lit> Cube{~sat::mkLit(Problem.varOfName("v0")),
                             ~sat::mkLit(Problem.varOfName("v1"))};
  EXPECT_TRUE(Problem.cubeRefuted(Cube));
  std::vector<sat::Lit> Sat{sat::mkLit(Problem.varOfName("v0")),
                            ~sat::mkLit(Problem.varOfName("v1"))};
  EXPECT_FALSE(Problem.cubeRefuted(Sat));
  sat::Solver S = Problem.makeSolver();
  EXPECT_EQ(S.solve(Cube), sat::SolveResult::Unsat)
      << "pruned cube must really be UNSAT";
  EXPECT_EQ(S.solve(Sat), sat::SolveResult::Sat);
}

// -- Weight layer ------------------------------------------------------------

TEST(Preprocessor, WeightLayerMatchesBakedCardinalityAtEveryBound) {
  // One encoding; every bound activated by assumptions must match the
  // model count of the separately-encoded AtMost formula.
  constexpr size_t N = 6;
  BoolContext Ctx;
  std::vector<ExprRef> V = makeVars(Ctx, N);
  ExprRef Root = Ctx.mkOr(V[0], V[1]); // some side constraint

  ProblemOptions PO;
  PO.BudgetTerms = V;
  VerificationProblem Problem(Ctx, Root, PO);
  sat::Solver S = Problem.makeSolver();

  for (uint32_t K = 0; K <= N; ++K) {
    // Reference count: fresh context-free formula with the baked atom.
    BoolContext Ref;
    std::vector<ExprRef> RV = makeVars(Ref, N);
    ExprRef RefRoot =
        Ref.mkAnd(Ref.mkOr(RV[0], RV[1]), Ref.mkAtMost(RV, K));
    uint64_t Expected = countModels(Ref, RefRoot, {});

    // Count under the reusable solver with assumption-activated bound.
    uint64_t Got = 0;
    std::vector<sat::Lit> Assumptions;
    Problem.appendWeightAssumptions(K, Assumptions);
    std::vector<std::vector<sat::Lit>> Blockers;
    while (S.solve(Assumptions) == sat::SolveResult::Sat) {
      ++Got;
      ASSERT_LE(Got, 1u << 10);
      std::vector<sat::Lit> Blocking;
      for (const auto &[Name, Var] : Problem.NamedVars)
        Blocking.push_back(sat::Lit(Var, S.modelValue(Var)));
      Blockers.push_back(Blocking);
      S.addClause(std::move(Blocking));
    }
    EXPECT_EQ(Got, Expected) << "bound K=" << K;
    // Un-block for the next bound by rebuilding the solver (clauses are
    // permanent); the encoding itself is reused untouched.
    S = Problem.makeSolver();
  }
}

TEST(Preprocessor, TruncatedCountersStayExactUnderTheBudget) {
  // sum(A) <= sum(B) with sum(B) <= K hardened at the root: the
  // truncated encoding (CounterCap) must agree with the full one on
  // every model, for every K.
  constexpr size_t N = 5;
  Rng R(2024);
  for (uint32_t K = 0; K <= 3; ++K) {
    BoolContext Ctx;
    std::vector<ExprRef> A, B;
    for (size_t I = 0; I != N; ++I)
      A.push_back(Ctx.mkVar("a" + std::to_string(I)));
    for (size_t I = 0; I != N; ++I)
      B.push_back(Ctx.mkVar("b" + std::to_string(I)));
    ExprRef Root =
        Ctx.mkAnd(Ctx.mkSumLeqSum(A, B), Ctx.mkOr(A[0], Ctx.mkNot(B[0])));

    ProblemOptions Full, Capped;
    Full.BudgetTerms = B;
    Capped.BudgetTerms = B;
    Capped.CounterCap = K + 1;

    auto countAtBound = [&](const ProblemOptions &PO) {
      VerificationProblem Problem(Ctx, Root, PO);
      sat::Solver S = Problem.makeSolver();
      Problem.assertWeightBound(S, K);
      uint64_t Count = 0;
      while (S.solve() == sat::SolveResult::Sat) {
        ++Count;
        EXPECT_LE(Count, 1u << 12);
        std::unordered_map<std::string, bool> Model;
        Problem.readModel(S, Model);
        veriqec::testing::ModelCheckResult MC =
            veriqec::testing::evaluateUnderModel(Ctx, Root, Model);
        EXPECT_TRUE(MC.Satisfies);
        std::vector<sat::Lit> Blocking;
        for (const auto &[Name, V] : Problem.NamedVars)
          Blocking.push_back(sat::Lit(V, S.modelValue(V)));
        if (!S.addClause(std::move(Blocking)))
          break;
      }
      return Count;
    };
    EXPECT_EQ(countAtBound(Capped), countAtBound(Full)) << "K=" << K;
  }
}

// -- Pipeline equisatisfiability ---------------------------------------------

TEST(Preprocessor, RandomFormulasCountModelsEquallyAcrossPipelines) {
  Rng R(90210);
  for (int Iter = 0; Iter != 40; ++Iter) {
    size_t N = 3 + R.nextBelow(7);
    BoolContext Ctx;
    std::vector<ExprRef> Vars = makeVars(Ctx, N);
    std::vector<ExprRef> Conjuncts;
    size_t Terms = 1 + R.nextBelow(4);
    for (size_t T = 0; T != Terms; ++T)
      Conjuncts.push_back(randomExpr(Ctx, Vars, R, 3));
    // Inject explicit parity conjuncts so the linear lift always has
    // something to chew on.
    std::vector<ExprRef> Par;
    size_t NumPar = 1 + R.nextBelow(3);
    for (size_t I = 0; I != NumPar; ++I)
      Par.push_back(Vars[R.nextBelow(N)]);
    Conjuncts.push_back(R.nextBool() ? Ctx.mkXor(Par)
                                     : Ctx.mkNot(Ctx.mkXor(Par)));
    ExprRef Root = Ctx.mkAnd(std::move(Conjuncts));

    ProblemOptions PrepSeq, PrepPair, PlainSeq, PlainPair;
    PrepPair.CardEnc = CardinalityEncoding::PairwiseNaive;
    PlainSeq.Preprocess = false;
    PlainPair.Preprocess = false;
    PlainPair.CardEnc = CardinalityEncoding::PairwiseNaive;

    uint64_t Baseline = countModels(Ctx, Root, PlainSeq);
    EXPECT_EQ(countModels(Ctx, Root, PrepSeq), Baseline) << "iter " << Iter;
    EXPECT_EQ(countModels(Ctx, Root, PrepPair), Baseline) << "iter " << Iter;
    EXPECT_EQ(countModels(Ctx, Root, PlainPair), Baseline) << "iter " << Iter;
  }
}

// -- Registry-code pipeline agreement ----------------------------------------

TEST(Preprocessor, ScenarioVerdictsAgreeWithLegacyPipelineOnRegistryCodes) {
  struct Case {
    StabilizerCode Code;
    uint32_t Budget;
    bool ExpectVerified;
  };
  std::vector<Case> Cases;
  Cases.push_back({makeSteaneCode(), 1, true});
  Cases.push_back({makeSteaneCode(), 2, false}); // beyond (d-1)/2
  Cases.push_back({makeFiveQubitCode(), 1, true});
  Cases.push_back({makeRotatedSurfaceCode(3), 1, true});

  for (const Case &C : Cases) {
    Scenario S = makeMemoryScenario(C.Code, PauliKind::Y, LogicalBasis::Z,
                                    C.Budget);
    for (bool Parallel : {false, true}) {
      VerifyOptions On, Off;
      On.Parallel = Off.Parallel = Parallel;
      On.Threads = Off.Threads = 1;
      Off.Preprocess = false;
      VerificationResult ROn = verifyScenario(S, On);
      VerificationResult ROff = verifyScenario(S, Off);
      ASSERT_TRUE(ROn.StructuralOk);
      ASSERT_TRUE(ROff.StructuralOk);
      EXPECT_EQ(ROn.Verified, C.ExpectVerified)
          << C.Code.Name << " budget " << C.Budget;
      EXPECT_EQ(ROn.Verified, ROff.Verified);
      // A counterexample from the preprocessed path must satisfy the
      // exact negated VC the engine solved (reconstruction check).
      if (!ROn.Verified) {
        BoolContext Ctx;
        BuiltVc Vc = engine::buildScenarioVc(Ctx, S, On);
        ASSERT_TRUE(Vc.Ok);
        veriqec::testing::ModelCheckResult MC =
            veriqec::testing::evaluateUnderModel(Ctx, Vc.NegatedVc,
                                                 ROn.CounterExample);
        EXPECT_TRUE(MC.Satisfies);
        EXPECT_EQ(MC.MissingVars, 0u);
      }
    }
  }
}
