//===- tests/proof_test.cpp - Clause-proof emission and checking ----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The proof pipeline end to end: verified scenarios (sequential,
/// parallel, and the distance search) emit certificates the independent
/// checker accepts, and the checker rejects every class of forgery it is
/// trusted to catch — non-RUP additions, uses of deleted clauses,
/// replay records outside the preprocessor's row span, corrupted record
/// tags, and conclusion counts that do not cover the cube space.
///
//===----------------------------------------------------------------------===//

#include "proof/ProofCheck.h"
#include "qec/Codes.h"
#include "verifier/Verifier.h"

#include <gtest/gtest.h>

using namespace veriqec;
using proof::CheckResult;
using proof::checkProof;

namespace {

/// One real certificate, produced once: Steane memory-X at budget 1
/// (verified, so the negated VC is UNSAT and a proof exists).
const std::string &steaneProof() {
  static const std::string Proof = [] {
    Scenario S = makeMemoryScenario(makeSteaneCode(), PauliKind::X,
                                    LogicalBasis::Z, 1);
    VerifyOptions O;
    O.LogProofs = true;
    VerificationResult R = verifyScenario(S, O);
    EXPECT_TRUE(R.StructuralOk) << R.Error;
    EXPECT_TRUE(R.Verified);
    return R.Proof;
  }();
  return Proof;
}

} // namespace

TEST(ProofEmission, VerifiedScenarioEmitsCheckingProof) {
  const std::string &Proof = steaneProof();
  ASSERT_FALSE(Proof.empty());
  CheckResult CR = checkProof(Proof);
  EXPECT_TRUE(CR.Ok) << CR.Error;
  EXPECT_TRUE(CR.GlobalUnsat);
  EXPECT_GT(CR.HeaderClauses, 0u);
  EXPECT_GE(CR.Streams, 1u);
}

TEST(ProofEmission, ParallelRunEmitsCheckingProof) {
  Scenario S = makeMemoryScenario(makeSteaneCode(), PauliKind::X,
                                  LogicalBasis::Z, 1);
  VerifyOptions O;
  O.LogProofs = true;
  O.Parallel = true;
  O.Threads = 2;
  VerificationResult R = verifyScenario(S, O);
  ASSERT_TRUE(R.StructuralOk) << R.Error;
  ASSERT_TRUE(R.Verified);
  ASSERT_FALSE(R.Proof.empty());
  CheckResult CR = checkProof(R.Proof);
  EXPECT_TRUE(CR.Ok) << CR.Error;
  EXPECT_TRUE(CR.GlobalUnsat);
}

TEST(ProofEmission, DistanceSearchEmitsCheckingProof) {
  // The distance path exercises assumptions-as-cubes: every UNSAT probe
  // of the binary search is one concluded cube of the same certificate.
  VerifyOptions O;
  O.LogProofs = true;
  DistanceResult R = computeDistance(makeSteaneCode(), O);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Distance, 3u);
  ASSERT_FALSE(R.Proof.empty());
  CheckResult CR = checkProof(R.Proof);
  EXPECT_TRUE(CR.Ok) << CR.Error;
  EXPECT_GE(CR.Conclusions, 1u);
}

TEST(ProofCheck, HandCraftedGlobalUnsatAccepted) {
  CheckResult CR = checkProof("p veriqec proof 1\n"
                              "v 2\n"
                              "o 1 2 0\no -1 2 0\no 1 -2 0\no -1 -2 0\n"
                              "s 0\n"
                              "a 1 0\n"
                              "a 2 0\n"
                              "q 0 0\n");
  EXPECT_TRUE(CR.Ok) << CR.Error;
  EXPECT_TRUE(CR.GlobalUnsat);
  EXPECT_EQ(CR.Additions, 2u);
}

TEST(ProofCheck, NonRupAdditionRejected) {
  // Variable 3 is unconstrained: no unit propagation can refute it.
  CheckResult CR = checkProof("p veriqec proof 1\n"
                              "v 3\n"
                              "o 1 2 0\no -1 2 0\no 1 -2 0\no -1 -2 0\n"
                              "s 0\n"
                              "a 3 0\n");
  EXPECT_FALSE(CR.Ok);
  EXPECT_NE(CR.Error.find("not RUP"), std::string::npos) << CR.Error;
}

TEST(ProofCheck, DeletedClauseCannotJustifyLaterAddition) {
  // (1 2) is needed to derive the unit 1; deleting it first must sink
  // the proof, and the identical proof without the deletion must check.
  const char *Header = "p veriqec proof 1\n"
                       "v 3\n"
                       "o 1 2 3 0\no 1 2 -3 0\no 1 -2 3 0\no 1 -2 -3 0\n"
                       "o -1 2 3 0\no -1 2 -3 0\no -1 -2 3 0\no -1 -2 -3 0\n"
                       "s 0\n"
                       "a 1 2 0\n";
  CheckResult Deleted =
      checkProof(std::string(Header) + "d 1\na 1 0\n");
  EXPECT_FALSE(Deleted.Ok);
  EXPECT_NE(Deleted.Error.find("not RUP"), std::string::npos)
      << Deleted.Error;
  CheckResult Kept = checkProof(std::string(Header) + "a 1 0\na 2 0\nq 0 0\n");
  EXPECT_TRUE(Kept.Ok) << Kept.Error;
}

TEST(ProofCheck, DuplicateLiteralHeaderClausesStillPropagate) {
  // A parity chain over an aliased variable emits clauses with repeated
  // literals ((x1 x1 x2) is logically (x1 x2)) and tautologies. The
  // checker must normalize at install: raw watched-literal propagation
  // would treat the two copies as distinct non-false literals and
  // reject this valid derivation.
  CheckResult CR = checkProof("p veriqec proof 1\n"
                              "v 3\n"
                              "o 1 1 2 0\n"
                              "o -1 -1 2 0\n"
                              "o 3 -3 0\n"
                              "s 0\n"
                              "a 2 0\n"
                              "q -2 0 -2 0\n");
  EXPECT_TRUE(CR.Ok) << CR.Error;
  EXPECT_EQ(CR.Additions, 1u);
}

TEST(ProofCheck, TamperedEliminationRecordRejected) {
  // Flip one elimination record's parity: the row leaves the span of
  // the original system (a consistent system spans each row under at
  // most one right-hand side).
  std::string Proof = steaneProof();
  size_t Pe = Proof.find("\npe ");
  ASSERT_NE(Pe, std::string::npos) << "expected an elimination record";
  size_t Rhs = Proof.find(' ', Pe + 4); // skip "pe <var>"
  ASSERT_NE(Rhs, std::string::npos);
  ++Rhs;
  ASSERT_TRUE(Proof[Rhs] == '0' || Proof[Rhs] == '1');
  Proof[Rhs] = Proof[Rhs] == '0' ? '1' : '0';
  CheckResult CR = checkProof(Proof);
  EXPECT_FALSE(CR.Ok);
  EXPECT_NE(CR.Error.find("span"), std::string::npos) << CR.Error;
}

TEST(ProofCheck, CorruptedRecordTagRejected) {
  // The CI mutation smoke in binary form: damage one addition's tag.
  std::string Proof = steaneProof();
  size_t A = Proof.find("\na ");
  ASSERT_NE(A, std::string::npos);
  Proof[A + 1] = 'z';
  CheckResult CR = checkProof(Proof);
  EXPECT_FALSE(CR.Ok);
  EXPECT_NE(CR.Error.find("unknown record"), std::string::npos) << CR.Error;
}

TEST(ProofCheck, ConclusionCountMismatchRejected) {
  // A non-global conclusion set must cover exactly the declared number
  // of cubes; claiming two while proving one is a coverage hole.
  const char *Body = "p veriqec proof 1\n"
                     "v 2\n"
                     "o 1 2 0\no 1 -2 0\n"
                     "s 0\n"
                     "q -1 0 -1 0\n";
  CheckResult Mismatch = checkProof(std::string(Body) + "n 2\n");
  EXPECT_FALSE(Mismatch.Ok);
  EXPECT_NE(Mismatch.Error.find("distinct cubes"), std::string::npos)
      << Mismatch.Error;
  CheckResult Exact = checkProof(std::string(Body) + "n 1\n");
  EXPECT_TRUE(Exact.Ok) << Exact.Error;
}
