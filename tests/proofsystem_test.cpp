//===- tests/proofsystem_test.cpp - Fig. 11 proof-system tests ------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "logic/ProofSystem.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace veriqec;

namespace {

AssertPtr atom(const char *P) {
  return Assertion::pauliAtom(*Pauli::fromString(P));
}
AssertPtr top() { return Assertion::boolAtom(ClassicalExpr::boolean(true)); }
AssertPtr bottom() {
  return Assertion::boolAtom(ClassicalExpr::boolean(false));
}

const std::vector<CMem> NoMems = {CMem{}};

} // namespace

TEST(ProofSystem, AxiomsValidateStructurallyAndSemantically) {
  Derivation D(2);
  AssertPtr A = atom("XI");

  // 2. A |- A.
  auto Id = D.addStep({ProofRule::Identity, {}, {A, A}, 0});
  ASSERT_TRUE(Id.has_value()) << D.lastError();
  // 1. !!A |- A.
  auto DN = D.addStep({ProofRule::DoubleNegation,
                       {},
                       {Assertion::logicalNot(Assertion::logicalNot(A)), A},
                       0});
  ASSERT_TRUE(DN.has_value()) << D.lastError();
  // 3. A |- true; 4. false |- A.
  ASSERT_TRUE(D.addStep({ProofRule::TrueIntro, {}, {A, top()}, 0}));
  ASSERT_TRUE(D.addStep({ProofRule::FalseElim, {}, {bottom(), A}, 0}));

  EXPECT_FALSE(D.checkSemantics(NoMems).has_value());
}

TEST(ProofSystem, ConjunctionRules) {
  Derivation D(2);
  AssertPtr A = atom("XI"), B = atom("IZ");
  AssertPtr AB = Assertion::conj(A, B);

  auto S0 = D.addStep({ProofRule::Identity, {}, {AB, AB}, 0});
  ASSERT_TRUE(S0);
  auto S1 = D.addStep({ProofRule::AndElim, {*S0}, {AB, A}, 0});
  ASSERT_TRUE(S1) << D.lastError();
  auto S2 = D.addStep({ProofRule::AndElim, {*S0}, {AB, B}, 1});
  ASSERT_TRUE(S2) << D.lastError();
  auto S3 = D.addStep({ProofRule::AndIntro, {*S1, *S2}, {AB, AB}, 0});
  ASSERT_TRUE(S3) << D.lastError();
  EXPECT_FALSE(D.checkSemantics(NoMems).has_value());

  // Malformed: eliminating a conjunct that is not there.
  EXPECT_FALSE(D.addStep({ProofRule::AndElim, {*S0}, {AB, atom("YY")}, 0}));
}

TEST(ProofSystem, DisjunctionRules) {
  Derivation D(2);
  AssertPtr A = atom("XI"), B = atom("IZ");
  auto S0 = D.addStep({ProofRule::Identity, {}, {A, A}, 0});
  auto S1 = D.addStep(
      {ProofRule::OrIntro, {*S0}, {A, Assertion::disj(A, B)}, 0});
  ASSERT_TRUE(S1) << D.lastError();
  auto S2 = D.addStep({ProofRule::Identity, {}, {B, B}, 0});
  auto S3 = D.addStep(
      {ProofRule::OrIntro, {*S2}, {B, Assertion::disj(A, B)}, 1});
  ASSERT_TRUE(S3) << D.lastError();
  auto S4 = D.addStep({ProofRule::OrElim,
                       {*S1, *S3},
                       {Assertion::disj(A, B), Assertion::disj(A, B)},
                       0});
  ASSERT_TRUE(S4) << D.lastError();
  EXPECT_FALSE(D.checkSemantics(NoMems).has_value());
}

TEST(ProofSystem, SasakiImportExportWithCommutingAtoms) {
  // X0 and Z1 commute, so from (X0 && Z1) |- (X0 && Z1) we may derive
  // X0 |- Z1 => (X0 && Z1) (the compatible import-export law).
  Derivation D(2);
  AssertPtr A = atom("XI"), B = atom("IZ");
  AssertPtr AB = Assertion::conj(A, B);
  auto S0 = D.addStep({ProofRule::Identity, {}, {AB, AB}, 0});
  auto S1 = D.addStep({ProofRule::SasakiIntro,
                       {*S0},
                       {A, Assertion::implies(B, AB)},
                       0});
  ASSERT_TRUE(S1) << D.lastError();
  EXPECT_FALSE(D.checkSemantics(NoMems).has_value());
}

TEST(ProofSystem, SasakiSideConditionRejectsAnticommutingAtoms) {
  // X0 and Z0 do NOT commute: the same derivation must fail the
  // semantic side condition.
  Derivation D(1);
  AssertPtr A = atom("X"), B = atom("Z");
  AssertPtr AB = Assertion::conj(A, B);
  auto S0 = D.addStep({ProofRule::Identity, {}, {AB, AB}, 0});
  auto S1 = D.addStep({ProofRule::SasakiIntro,
                       {*S0},
                       {A, Assertion::implies(B, AB)},
                       0});
  ASSERT_TRUE(S1) << D.lastError(); // structurally fine
  std::optional<size_t> Bad = D.checkSemantics(NoMems);
  ASSERT_TRUE(Bad.has_value());
  EXPECT_EQ(*Bad, *S1);
}

TEST(ProofSystem, ModusPonensOnSasakiImplication) {
  Derivation D(2);
  AssertPtr A = atom("XI"), B = atom("IZ");
  AssertPtr AB = Assertion::conj(A, B);
  AssertPtr Imp = Assertion::implies(B, AB);
  AssertPtr Ctx = Assertion::conj(Imp, B); // context proving both parts

  auto SImp = D.addStep({ProofRule::AndElim,
                         {D.addStep({ProofRule::Identity, {}, {Ctx, Ctx}, 0})
                              .value()},
                         {Ctx, Imp},
                         0});
  ASSERT_TRUE(SImp) << D.lastError();
  auto SArg = D.addStep({ProofRule::AndElim, {0}, {Ctx, B}, 1});
  ASSERT_TRUE(SArg) << D.lastError();
  auto SMp =
      D.addStep({ProofRule::ModusPonens, {*SImp, *SArg}, {Ctx, AB}, 0});
  ASSERT_TRUE(SMp) << D.lastError();
  EXPECT_FALSE(D.checkSemantics(NoMems).has_value());
}

TEST(ProofSystem, RandomRuleInstancesAreSound) {
  // Property sweep: random commuting Pauli atoms through AndIntro /
  // AndElim / OrIntro chains always pass the semantic check.
  Rng R(55);
  for (int Trial = 0; Trial != 25; ++Trial) {
    Pauli P1(2), P2(2);
    P1.setKind(R.nextBelow(2), PauliKind::X);
    P2.setKind(R.nextBelow(2), PauliKind::Z);
    if (!P1.commutesWith(P2))
      continue;
    AssertPtr A = Assertion::pauliAtom(P1.abs());
    AssertPtr B = Assertion::pauliAtom(P2.abs());
    AssertPtr AB = Assertion::conj(A, B);
    Derivation D(2);
    auto S0 = D.addStep({ProofRule::Identity, {}, {AB, AB}, 0});
    auto S1 = D.addStep({ProofRule::AndElim, {*S0}, {AB, A}, 0});
    auto S2 = D.addStep(
        {ProofRule::OrIntro, {*S1}, {AB, Assertion::disj(A, B)}, 0});
    ASSERT_TRUE(S2) << D.lastError();
    EXPECT_FALSE(D.checkSemantics(NoMems).has_value()) << "trial " << Trial;
  }
}
