//===- tests/qec_codes_test.cpp - Code construction validation ------------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every code construction is structurally validated (commuting
/// independent generators, correctly paired logicals) and its distance is
/// pinned by the SAT-based estimator where affordable.
///
//===----------------------------------------------------------------------===//

#include "decoder/Decoder.h"
#include "qec/Codes.h"

#include <gtest/gtest.h>

using namespace veriqec;

namespace {

struct CodeCase {
  std::string Label;
  StabilizerCode (*Make)();
  size_t N, K;
  size_t ExpectDistance; ///< 0 = skip the distance check
};

StabilizerCode makeSurface3() { return makeRotatedSurfaceCode(3); }
StabilizerCode makeSurface5() { return makeRotatedSurfaceCode(5); }
StabilizerCode makeXzzx35() { return makeXzzxSurfaceCode(3, 5); }
StabilizerCode makeRm4() { return makeReedMullerCode(4); }
StabilizerCode makeRm5() { return makeReedMullerCode(5); }
StabilizerCode makeGottesman3() { return makeGottesmanCode(3); }
StabilizerCode makeGottesman4() { return makeGottesmanCode(4); }
StabilizerCode makeRep5() { return makeRepetitionCode(5); }
StabilizerCode makeTriSub8() { return makeTriorthogonalSubstitute(8); }
StabilizerCode makeCh2() { return makeCampbellHowardSubstitute(2); }

} // namespace

class CodeConstruction : public ::testing::TestWithParam<CodeCase> {};

TEST_P(CodeConstruction, ValidatesAndHasExpectedParameters) {
  const CodeCase &C = GetParam();
  StabilizerCode Code = C.Make();
  EXPECT_EQ(Code.NumQubits, C.N) << C.Label;
  EXPECT_EQ(Code.NumLogical, C.K) << C.Label;
  std::optional<std::string> Err = Code.validate();
  EXPECT_FALSE(Err.has_value()) << C.Label << ": " << Err.value_or("");
}

TEST_P(CodeConstruction, DistanceMatchesDeclaration) {
  const CodeCase &C = GetParam();
  if (C.ExpectDistance == 0)
    return;
  StabilizerCode Code = C.Make();
  EXPECT_EQ(estimateDistance(Code, C.ExpectDistance + 1), C.ExpectDistance)
      << C.Label;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, CodeConstruction,
    ::testing::Values(
        CodeCase{"steane", makeSteaneCode, 7, 1, 3},
        CodeCase{"five-qubit", makeFiveQubitCode, 5, 1, 3},
        CodeCase{"six-qubit", makeSixQubitCode, 6, 1, 3},
        CodeCase{"surface-3", makeSurface3, 9, 1, 3},
        CodeCase{"surface-5", makeSurface5, 25, 1, 5},
        CodeCase{"xzzx-3x5", makeXzzx35, 15, 1, 3},
        CodeCase{"reed-muller-4", makeRm4, 15, 1, 3},
        CodeCase{"reed-muller-5", makeRm5, 31, 1, 3},
        CodeCase{"gottesman-3", makeGottesman3, 8, 3, 3},
        CodeCase{"gottesman-4", makeGottesman4, 16, 10, 3},
        CodeCase{"cube-832", makeCube832, 8, 3, 2},
        CodeCase{"carbon-sub", makeCarbonSubstitute, 16, 6, 4},
        CodeCase{"dodeca-sub", makeDodecacodeSubstitute, 11, 1, 0},
        CodeCase{"honeycomb-sub", makeHoneycombSubstitute, 19, 1, 0},
        CodeCase{"hgp-98", makeHgp98, 98, 18, 0},
        CodeCase{"tanner-i-sub", makeTannerISubstitute, 210, 24, 0},
        CodeCase{"tanner-ii-sub", makeTannerIISubstitute, 80, 16, 0},
        CodeCase{"repetition-5", makeRep5, 5, 1, 0},
        CodeCase{"triorthogonal-sub", makeTriSub8, 32, 8, 2},
        CodeCase{"campbell-howard-sub", makeCh2, 14, 6, 2}),
    [](const ::testing::TestParamInfo<CodeCase> &Info) {
      std::string Name = Info.param.Label;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(CyclicCodes, MeasuredDistances) {
  // Pin the tool-measured distances of the cyclic substitutes.
  StabilizerCode Dodeca = makeDodecacodeSubstitute();
  EXPECT_EQ(estimateDistance(Dodeca, 6), 3u) << "dodecacode substitute";
  StabilizerCode Honey = makeHoneycombSubstitute();
  EXPECT_EQ(estimateDistance(Honey, 6), 5u) << "honeycomb substitute";
}

TEST(RepetitionCode, DistanceProfile) {
  StabilizerCode Rep = makeRepetitionCode(5);
  // Overall distance 1 (a single Z is logical), X-type distance 5.
  EXPECT_EQ(estimateDistance(Rep, 2), 1u);
  EXPECT_EQ(estimateDistanceOfType(Rep, /*XType=*/true, 6), 5u);
}

TEST(SurfaceCode, CssStructureAndLogicals) {
  StabilizerCode Code = makeRotatedSurfaceCode(5);
  EXPECT_TRUE(Code.isCss());
  EXPECT_EQ(Code.xCheckMatrix().numRows() + Code.zCheckMatrix().numRows(),
            Code.Generators.size());
  // Logical X and Z have weight d.
  ASSERT_EQ(Code.LogicalX.size(), 1u);
  EXPECT_EQ(estimateDistanceOfType(Code, true, 6), 5u);
  EXPECT_EQ(estimateDistanceOfType(Code, false, 6), 5u);
}

TEST(XzzxCode, ChecksAreMixedType) {
  StabilizerCode Code = makeXzzxSurfaceCode(3, 3);
  EXPECT_FALSE(Code.isCss());
  EXPECT_FALSE(Code.validate().has_value());
  EXPECT_EQ(estimateDistance(Code, 4), 3u);
}

TEST(SteaneCode, SyndromesSeparateSingleErrors) {
  StabilizerCode Code = makeSteaneCode();
  // All 21 single-qubit Pauli errors have distinct nonzero syndromes.
  std::vector<BitVector> Seen;
  for (size_t Q = 0; Q != 7; ++Q)
    for (PauliKind K : {PauliKind::X, PauliKind::Y, PauliKind::Z}) {
      BitVector Syn = Code.syndromeOf(Pauli::single(7, Q, K));
      EXPECT_TRUE(Syn.any());
      for (const BitVector &Prev : Seen)
        EXPECT_NE(Syn, Prev);
      Seen.push_back(Syn);
    }
}

TEST(GottesmanCode, IsPerfectSingleErrorCorrecting) {
  StabilizerCode Code = makeGottesmanCode(3);
  // [[8,3,3]]: 24 single-qubit errors + identity = 25 <= 2^5 = 32, and
  // all syndromes distinct (the code nearly saturates the Hamming bound).
  std::vector<BitVector> Seen;
  for (size_t Q = 0; Q != 8; ++Q)
    for (PauliKind K : {PauliKind::X, PauliKind::Y, PauliKind::Z}) {
      BitVector Syn = Code.syndromeOf(Pauli::single(8, Q, K));
      EXPECT_TRUE(Syn.any());
      for (const BitVector &Prev : Seen)
        EXPECT_NE(Syn, Prev);
      Seen.push_back(Syn);
    }
}

TEST(StabilizerCode, InStabilizerGroupAndLogicalQueries) {
  StabilizerCode Code = makeSteaneCode();
  // Product of two generators is in the group.
  Pauli Product = Code.Generators[0] * Code.Generators[1];
  EXPECT_TRUE(Code.inStabilizerGroup(Product));
  EXPECT_FALSE(Code.isLogicalOperator(Product));
  // The logical X is a logical operator, not a stabilizer.
  EXPECT_FALSE(Code.inStabilizerGroup(Code.LogicalX[0]));
  EXPECT_TRUE(Code.isLogicalOperator(Code.LogicalX[0]));
  // A single X error is neither (it has a syndrome).
  EXPECT_FALSE(Code.isLogicalOperator(Pauli::single(7, 0, PauliKind::X)));
}

TEST(BenchmarkSuite, AllEntriesValidate) {
  for (const BenchmarkCodeEntry &Entry : makeBenchmarkSuite(true)) {
    std::optional<std::string> Err = Entry.Code.validate();
    EXPECT_FALSE(Err.has_value())
        << Entry.Code.Name << ": " << Err.value_or("");
  }
}

TEST(LookupDecoder, CorrectsAllSingleErrorsOnSteane) {
  StabilizerCode Code = makeSteaneCode();
  LookupDecoder Dec(Code, 1);
  for (size_t Q = 0; Q != 7; ++Q)
    for (PauliKind K : {PauliKind::X, PauliKind::Y, PauliKind::Z}) {
      Pauli Error = Pauli::single(7, Q, K);
      auto Corr = Dec.decode(Code.syndromeOf(Error));
      ASSERT_TRUE(Corr.has_value());
      // Correction * error must be a stabilizer (not a logical).
      Pauli Residual = Corr->abs() * Error.abs();
      EXPECT_TRUE(Code.syndromeOf(Residual).none());
      EXPECT_FALSE(Code.isLogicalOperator(Residual));
    }
}

TEST(SatDecoder, AgreesWithLookupOnSurface3) {
  StabilizerCode Code = makeRotatedSurfaceCode(3);
  LookupDecoder Lookup(Code, 1);
  SatDecoder Sat(Code);
  for (size_t Q = 0; Q != 9; ++Q)
    for (PauliKind K : {PauliKind::X, PauliKind::Y, PauliKind::Z}) {
      Pauli Error = Pauli::single(9, Q, K);
      BitVector Syn = Code.syndromeOf(Error);
      auto A = Lookup.decode(Syn);
      auto B = Sat.decode(Syn);
      ASSERT_TRUE(A.has_value());
      ASSERT_TRUE(B.has_value());
      // Same weight (both minimum weight) and both valid corrections.
      EXPECT_EQ(A->weight(), B->weight());
      EXPECT_EQ(Code.syndromeOf(*B), Syn);
    }
}

TEST(SatDecoder, HandlesWeightTwoSyndromes) {
  StabilizerCode Code = makeRotatedSurfaceCode(5);
  SatDecoder Sat(Code);
  Pauli Error =
      Pauli::single(25, 3, PauliKind::X) * Pauli::single(25, 17, PauliKind::Z);
  auto Corr = Sat.decode(Code.syndromeOf(Error));
  ASSERT_TRUE(Corr.has_value());
  EXPECT_LE(Corr->weight(), 2u);
  Pauli Residual = Corr->abs() * Error.abs();
  EXPECT_TRUE(Code.syndromeOf(Residual).none());
  EXPECT_FALSE(Code.isLogicalOperator(Residual));
}
