//===- tests/ring_sim_test.cpp - Ring + sampling baseline tests -----------===//
//
// Part of the veriqec project.
//
//===----------------------------------------------------------------------===//

#include "decoder/Decoder.h"
#include "qec/Codes.h"
#include "ring/Sqrt2Ring.h"
#include "sim/SamplingTester.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace veriqec;

TEST(Sqrt2Ring, BasicAlgebra) {
  Sqrt2Ring Two(2);
  Sqrt2Ring S2 = Sqrt2Ring::sqrt2();
  EXPECT_EQ(S2 * S2, Two);
  Sqrt2Ring Inv = Sqrt2Ring::invSqrt2();
  EXPECT_EQ(S2 * Inv, Sqrt2Ring(1));
  EXPECT_EQ(Inv * Inv + Inv * Inv, Sqrt2Ring(1));
  EXPECT_TRUE((S2 - S2).isZero());
}

TEST(Sqrt2Ring, CanonicalFormIsMinimal) {
  // (2 + 2 sqrt2)/2 canonicalizes to 1 + sqrt2.
  Sqrt2Ring V(2, 2, 1);
  EXPECT_EQ(V.denomLog2(), 0u);
  EXPECT_EQ(V.intPart(), 1);
  EXPECT_EQ(V.sqrt2Part(), 1);
}

TEST(Sqrt2Ring, MatchesFloatingPoint) {
  Rng R(8);
  for (int I = 0; I != 200; ++I) {
    Sqrt2Ring A(static_cast<int64_t>(R.nextBelow(9)) - 4,
                static_cast<int64_t>(R.nextBelow(9)) - 4,
                static_cast<uint32_t>(R.nextBelow(3)));
    Sqrt2Ring B(static_cast<int64_t>(R.nextBelow(9)) - 4,
                static_cast<int64_t>(R.nextBelow(9)) - 4,
                static_cast<uint32_t>(R.nextBelow(3)));
    EXPECT_NEAR((A + B).toDouble(), A.toDouble() + B.toDouble(), 1e-9);
    EXPECT_NEAR((A * B).toDouble(), A.toDouble() * B.toDouble(), 1e-9);
    EXPECT_NEAR((A - B).toDouble(), A.toDouble() - B.toDouble(), 1e-9);
  }
}

TEST(Sqrt2Ring, TGateFactorBookkeeping) {
  // T^dagger X T = (X - Y)/sqrt2: applying the substitution twice must
  // reproduce the S-gate rule X -> -Y exactly: ((X-Y) - (X+Y))/2 = -Y.
  // At the scalar level: coefficient of X after two steps is
  // (1 - 1)/2 = 0 and of Y is (-1 - 1)/2 = -1.
  Sqrt2Ring Half(1, 0, 1);
  Sqrt2Ring CoefX = (Sqrt2Ring(1) - Sqrt2Ring(1)) * Half;
  Sqrt2Ring CoefY = (Sqrt2Ring(-1) - Sqrt2Ring(1)) * Half;
  EXPECT_TRUE(CoefX.isZero());
  EXPECT_EQ(CoefY, Sqrt2Ring(-1));
}

TEST(SamplingTester, ConfigurationCounts) {
  // n=7, t=1: 1 + 7*3 = 22.
  EXPECT_EQ(errorConfigurationCount(7, 1), 22u);
  // n=5, t=2: 1 + 15 + C(5,2)*9 = 106.
  EXPECT_EQ(errorConfigurationCount(5, 2), 106u);
  // The paper's d=19 exhaustive-testing blow-up saturates.
  EXPECT_EQ(errorConfigurationCount(361, 180), UINT64_MAX);
}

TEST(SamplingTester, SteaneWithGoodDecoderNeverFails) {
  StabilizerCode Code = makeSteaneCode();
  LookupDecoder Dec(Code, 1);
  Rng R(99);
  SamplingReport Report = sampleMemoryCorrection(Code, Dec, 1, 300, R);
  EXPECT_EQ(Report.Samples, 300u);
  EXPECT_EQ(Report.Failures, 0u);
  EXPECT_GT(Report.DistinctPatterns, 5u);
}

TEST(SamplingTester, OverweightErrorsProduceFailures) {
  StabilizerCode Code = makeSteaneCode();
  LookupDecoder Dec(Code, 1);
  Rng R(7);
  // Weight-2 errors exceed the Steane code's correction radius: some
  // samples must fail (this is exactly what testing can show — and the
  // verifier proves — about over-budget errors).
  SamplingReport Report = sampleMemoryCorrection(Code, Dec, 2, 400, R);
  EXPECT_GT(Report.Failures, 0u);
  EXPECT_LT(Report.Failures, Report.Samples);
}

TEST(SamplingTester, SurfaceCodeSamplingAtScale) {
  StabilizerCode Code = makeRotatedSurfaceCode(5);
  SatDecoder Dec(Code);
  Rng R(21);
  SamplingReport Report = sampleMemoryCorrection(Code, Dec, 2, 20, R);
  EXPECT_EQ(Report.Failures, 0u);
}
